package churnnet_test

// One benchmark per table/figure of the reproduction suite (see the
// experiment index in DESIGN.md). Each runs the corresponding experiment at
// smoke scale, so `go test -bench=.` regenerates a miniature of every
// result; cmd/tablegen produces the full-scale versions recorded in
// EXPERIMENTS.md.

import (
	"testing"

	churnnet "github.com/dyngraph/churnnet"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := churnnet.RunExperiment(id, churnnet.ScaleSmoke, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1ResultGrid(b *testing.B)              { benchExperiment(b, "T1") }
func BenchmarkF1IsolatedStreaming(b *testing.B)           { benchExperiment(b, "F1") }
func BenchmarkF2IsolatedPoisson(b *testing.B)             { benchExperiment(b, "F2") }
func BenchmarkF3LargeSetExpansionStreaming(b *testing.B)  { benchExperiment(b, "F3") }
func BenchmarkF4LargeSetExpansionPoisson(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkF5FloodingFailureNoRegen(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkF6FloodingMostStreaming(b *testing.B)       { benchExperiment(b, "F6") }
func BenchmarkF7FloodingMostPoisson(b *testing.B)         { benchExperiment(b, "F7") }
func BenchmarkF8ExpansionStreamingRegen(b *testing.B)     { benchExperiment(b, "F8") }
func BenchmarkF9ExpansionPoissonRegen(b *testing.B)       { benchExperiment(b, "F9") }
func BenchmarkF10FloodingTimeStreamingRegen(b *testing.B) { benchExperiment(b, "F10") }
func BenchmarkF11FloodingTimePoissonRegen(b *testing.B)   { benchExperiment(b, "F11") }
func BenchmarkF12DegreeStats(b *testing.B)                { benchExperiment(b, "F12") }
func BenchmarkF13EdgeAgeBias(b *testing.B)                { benchExperiment(b, "F13") }
func BenchmarkF14PoissonPopulation(b *testing.B)          { benchExperiment(b, "F14") }
func BenchmarkF15JumpChain(b *testing.B)                  { benchExperiment(b, "F15") }
func BenchmarkF16MaxAge(b *testing.B)                     { benchExperiment(b, "F16") }
func BenchmarkF17OnionSkin(b *testing.B)                  { benchExperiment(b, "F17") }
func BenchmarkF18StaticBaseline(b *testing.B)             { benchExperiment(b, "F18") }
func BenchmarkF19RegenAblation(b *testing.B)              { benchExperiment(b, "F19") }
func BenchmarkF20Demographics(b *testing.B)               { benchExperiment(b, "F20") }
func BenchmarkF21OverlayRealism(b *testing.B)             { benchExperiment(b, "F21") }
func BenchmarkF22BoundedDegree(b *testing.B)              { benchExperiment(b, "F22") }
func BenchmarkF23GiantComponent(b *testing.B)             { benchExperiment(b, "F23") }
func BenchmarkF24OverlayAblation(b *testing.B)            { benchExperiment(b, "F24") }

// Serial-vs-parallel suite benchmarks. The trial engine guarantees
// bit-identical output at every parallelism, so these measure pure
// wall-clock: Serial pins Parallelism=1 (the old per-experiment loops),
// Parallel uses every core. Expect the Parallel variants to approach a
// GOMAXPROCS-fold speedup on the trial-dominated experiments (run with
// -benchtime=1x for one timed pass of the whole suite).

func benchSuite(b *testing.B, scale churnnet.Scale, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, e := range churnnet.Experiments() {
			tab, err := churnnet.RunExperimentWith(e.ID, churnnet.ExperimentConfig{
				Scale: scale, Seed: uint64(i), Parallelism: parallelism,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				b.Fatalf("%s produced no rows", e.ID)
			}
		}
	}
}

func BenchmarkSuiteSmokeSerial(b *testing.B)   { benchSuite(b, churnnet.ScaleSmoke, 1) }
func BenchmarkSuiteSmokeParallel(b *testing.B) { benchSuite(b, churnnet.ScaleSmoke, 0) }

// The standard-scale pair runs the full tablegen workload and takes
// minutes per pass; select it explicitly, e.g.
//
//	go test -bench 'SuiteStandard' -benchtime 1x -timeout 2h

func BenchmarkSuiteStandardSerial(b *testing.B)   { benchSuite(b, churnnet.ScaleStandard, 1) }
func BenchmarkSuiteStandardParallel(b *testing.B) { benchSuite(b, churnnet.ScaleStandard, 0) }

// Library-level micro-benchmarks: the building blocks downstream users pay
// for most often.

func BenchmarkModelWarmUpSDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		churnnet.NewWarmModel(churnnet.SDGR, 5000, 21, uint64(i))
	}
}

func BenchmarkModelWarmUpPDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		churnnet.NewWarmModel(churnnet.PDGR, 5000, 35, uint64(i))
	}
}

// The stationary-sampling pairs of the two warm-up benchmarks above: same
// state distribution, built directly (see BENCH_warmup.json for the
// large-n record).

func BenchmarkModelSampleStationarySDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		churnnet.NewStationaryModel(churnnet.SDGR, 5000, 21, uint64(i))
	}
}

func BenchmarkModelSampleStationaryPDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		churnnet.NewStationaryModel(churnnet.PDGR, 5000, 35, uint64(i))
	}
}

func BenchmarkFloodCompletePDGR(b *testing.B) {
	m := churnnet.NewWarmModel(churnnet.PDGR, 5000, 35, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := churnnet.Flood(m, churnnet.FloodOptions{})
		if !res.Completed {
			b.Fatal("flooding did not complete")
		}
	}
}

func BenchmarkExpansionEstimate(b *testing.B) {
	m := churnnet.NewWarmModel(churnnet.SDGR, 2000, 14, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnnet.EstimateExpansion(m.Graph(), uint64(i), churnnet.ExpansionConfig{})
	}
}
