package churnnet_test

import (
	"math"
	"strings"
	"testing"

	churnnet "github.com/dyngraph/churnnet"
)

// These tests exercise the public facade end to end: they are the
// library-level integration tests of the whole reproduction.

func TestQuickstartFlow(t *testing.T) {
	m := churnnet.NewWarmModel(churnnet.SDGR, 500, 21, 1)
	res := churnnet.Flood(m, churnnet.FloodOptions{})
	if !res.Completed {
		t.Fatalf("SDGR flooding did not complete: %+v", res)
	}
	if res.CompletionRound <= 0 || res.CompletionRound > 30 {
		t.Fatalf("completion round %d", res.CompletionRound)
	}
}

// TestStationaryModelFacade exercises the fast-warm-up facade: sampled
// models must be measurement-ready (full population, floodable to
// completion at the paper's degrees) and deterministic given the seed.
func TestStationaryModelFacade(t *testing.T) {
	for _, kind := range churnnet.ModelKinds() {
		m := churnnet.NewStationaryModel(kind, 500, 21, 1)
		if m.Kind() != kind {
			t.Fatalf("kind %v", m.Kind())
		}
		alive := m.Graph().NumAlive()
		if alive < 400 || alive > 600 {
			t.Fatalf("%v: population %d far from n=500", kind, alive)
		}
	}
	m := churnnet.NewStationaryModel(churnnet.SDGR, 500, 21, 1)
	res := churnnet.Flood(m, churnnet.FloodOptions{})
	if !res.Completed || res.CompletionRound > 30 {
		t.Fatalf("SDGR flooding from sampled snapshot: %+v", res)
	}
	again := churnnet.Flood(churnnet.NewStationaryModel(churnnet.SDGR, 500, 21, 1),
		churnnet.FloodOptions{})
	if res.CompletionRound != again.CompletionRound || res.EverInformed != again.EverInformed {
		t.Fatal("NewStationaryModel is not deterministic given the seed")
	}
}

func TestModelKinds(t *testing.T) {
	kinds := churnnet.ModelKinds()
	if len(kinds) != 4 {
		t.Fatalf("kinds: %v", kinds)
	}
	names := map[string]bool{}
	for _, k := range kinds {
		names[k.String()] = true
	}
	for _, want := range []string{"SDG", "SDGR", "PDG", "PDGR"} {
		if !names[want] {
			t.Fatalf("missing kind %s", want)
		}
	}
}

func TestAllKindsBuildAndFlood(t *testing.T) {
	for _, kind := range churnnet.ModelKinds() {
		m := churnnet.NewWarmModel(kind, 300, 20, 2)
		if m.Kind() != kind {
			t.Fatalf("kind mismatch: %v", m.Kind())
		}
		res := churnnet.Flood(m, churnnet.FloodOptions{MaxRounds: 40})
		if res.EverInformed < 2 {
			t.Fatalf("%v: flooding went nowhere", kind)
		}
	}
}

func TestStaticBaseline(t *testing.T) {
	g, hs := churnnet.NewDOutGraph(200, 3, 3)
	if g.NumAlive() != 200 || len(hs) != 200 {
		t.Fatal("DOut size")
	}
	m := churnnet.NewStaticModel(g, 3)
	if m.Kind() != churnnet.Static {
		t.Fatal("static kind")
	}
	res := churnnet.Flood(m, churnnet.FloodOptions{Source: hs[0]})
	if !res.Completed {
		t.Fatalf("static d-out flooding: %+v", res)
	}
}

func TestExpansionFacade(t *testing.T) {
	g, hs := churnnet.NewDOutGraph(12, 3, 4)
	exact, witness := churnnet.ExactExpansion(g)
	if exact <= 0 {
		t.Fatalf("exact expansion %v (random 3-out graphs are connected whp)", exact)
	}
	if len(witness) == 0 {
		t.Fatal("no witness")
	}
	prof := churnnet.EstimateExpansion(g, 5, churnnet.ExpansionConfig{})
	est, _ := prof.Min()
	if est < exact-1e-12 {
		t.Fatalf("estimate %v below exact %v", est, exact)
	}
	if b := churnnet.BoundarySize(g, hs[:3]); b < 0 || b > 9 {
		t.Fatalf("boundary %d", b)
	}
}

func TestExpansionTrackerFacade(t *testing.T) {
	m := churnnet.NewWarmModel(churnnet.SDGR, 300, 14, 7)
	tr := churnnet.TrackExpansion(m, 8, churnnet.ExpansionTrackerConfig{ReseedEvery: 2})
	defer tr.Close()
	var last churnnet.ExpansionObservation
	for round := 1; round <= 8; round++ {
		m.AdvanceRound()
		last = tr.Observe()
	}
	if last.N == 0 || last.Profile == nil || len(last.Profile.BestBySize) == 0 {
		t.Fatalf("empty tracked observation: %+v", last)
	}
	if last.Min < 0.1 {
		t.Fatalf("SDGR d=14 tracked witness below 0.1: %+v", last.MinWitness)
	}
	// Tracked numbers must be exactly what a fresh rescan computes.
	g := m.Graph()
	for i, st := range tr.Sets() {
		if st.Boundary != churnnet.BoundarySize(g, st.Members) {
			t.Fatalf("set %d (%v): tracked boundary %d != rescan", i, st.Family, st.Boundary)
		}
	}
	// Flooding shares the hook chain with an attached tracker.
	for !g.IsAlive(m.LastBorn()) {
		m.AdvanceRound()
	}
	if res := churnnet.Flood(m, churnnet.FloodOptions{Parallelism: churnnet.FloodAuto}); !res.Completed {
		t.Fatalf("SDGR flood under a tracker did not complete: %+v", res)
	}
}

func TestAutoParallelismFacade(t *testing.T) {
	if w := churnnet.AutoParallelism(1000); w != 1 {
		t.Fatalf("small-n auto parallelism %d, want 1", w)
	}
	if w := churnnet.AutoParallelism(1 << 22); w < 1 {
		t.Fatalf("auto parallelism %d", w)
	}
	m := churnnet.NewReadyModelPar(churnnet.PDGR, 2000, 8, 9, true, churnnet.FloodAuto)
	if m.Graph().NumAlive() == 0 {
		t.Fatal("auto-worker stationary build produced an empty model")
	}
}

func TestAnalysisFacade(t *testing.T) {
	m := churnnet.NewWarmModel(churnnet.SDG, 1000, 2, 6)
	g := m.Graph()
	if churnnet.IsolatedFraction(g) <= 0 {
		t.Fatal("SDG d=2 should have isolated nodes")
	}
	ds := churnnet.Degrees(g)
	if math.Abs(ds.Mean-2) > 0.3 {
		t.Fatalf("mean degree %v", ds.Mean)
	}
	res := churnnet.LifetimeIsolation(m, 0)
	if res.WatchedAtStart == 0 {
		t.Fatal("no watched nodes")
	}
	m2 := churnnet.NewWarmModel(churnnet.SDGR, 500, 10, 7)
	q := churnnet.InDegreeByAgeQuantile(m2.Graph(), 5)
	if len(q) != 5 || q[0] <= q[4] {
		t.Fatalf("age bias quantiles %v", q)
	}
	profile := churnnet.AgeProfile(m2.Graph(), m2.Now(), 100)
	total := 0
	for _, c := range profile {
		total += c
	}
	if total != m2.Graph().NumAlive() {
		t.Fatalf("profile total %d != alive %d", total, m2.Graph().NumAlive())
	}
}

func TestOnionFacade(t *testing.T) {
	res := churnnet.OnionStreaming(50000, 250, 8)
	if !res.Reached && !res.DiedOut {
		t.Fatal("onion cascade must terminate")
	}
	ext := churnnet.OnionExtended(50000, 1200, 0, 9)
	if ext.Target <= 0 {
		t.Fatalf("extended target %d", ext.Target)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(churnnet.Experiments()) != 25 {
		t.Fatalf("suite size %d", len(churnnet.Experiments()))
	}
	tab, err := churnnet.RunExperiment("F16", churnnet.ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Markdown(), "Lemma 4.8") {
		t.Fatal("table markdown missing reference")
	}
	if _, err := churnnet.RunExperiment("F99", churnnet.ScaleSmoke, 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestParseScaleFacade(t *testing.T) {
	s, err := churnnet.ParseScale("paper")
	if err != nil || s != churnnet.ScalePaper {
		t.Fatal("ParseScale")
	}
}

func TestDeterministicFacade(t *testing.T) {
	a := churnnet.NewWarmModel(churnnet.PDGR, 400, 20, 42)
	b := churnnet.NewWarmModel(churnnet.PDGR, 400, 20, 42)
	if a.Graph().NumAlive() != b.Graph().NumAlive() {
		t.Fatal("same seed, different size")
	}
	ra := churnnet.Flood(a, churnnet.FloodOptions{})
	rb := churnnet.Flood(b, churnnet.FloodOptions{})
	if ra.CompletionRound != rb.CompletionRound || ra.EverInformed != rb.EverInformed {
		t.Fatal("same seed, different flooding")
	}
}

func TestHooksFacade(t *testing.T) {
	m := churnnet.NewModel(churnnet.SDG, 50, 2, 10)
	births := 0
	m.SetHooks(churnnet.Hooks{OnBirth: func(churnnet.Handle) { births++ }})
	for i := 0; i < 30; i++ {
		m.AdvanceRound()
	}
	if births != 30 {
		t.Fatalf("births %d", births)
	}
}

func TestTableOneShapeIntegration(t *testing.T) {
	// The headline qualitative reproduction, via the public API only.
	// Constant d (here 3) with e^{−2d}·n >> 1 puts SDG in the
	// isolated-node regime: most nodes get informed, completion never
	// happens. Regeneration at the theorem's d ≥ 21 flips the outcome to
	// complete O(log n) broadcast.
	const n = 4000
	noRegen := churnnet.Flood(churnnet.NewWarmModel(churnnet.SDG, n, 3, 11), churnnet.FloodOptions{})
	regen := churnnet.Flood(churnnet.NewWarmModel(churnnet.SDGR, n, 21, 11), churnnet.FloodOptions{})
	if noRegen.Completed {
		t.Fatal("SDG completed despite isolated nodes")
	}
	if noRegen.PeakFraction < 0.6 {
		t.Fatalf("SDG peak fraction %v, want most nodes informed", noRegen.PeakFraction)
	}
	if !regen.Completed {
		t.Fatal("SDGR must complete")
	}
}

// TestTrafficFacade exercises the multi-message traffic plane through the
// public API: a staggered schedule of broadcasts over one churn stream,
// each delivering (the regime of TestQuickstartFlow), with retirement
// releasing finished messages while later ones are still in flight.
func TestTrafficFacade(t *testing.T) {
	m := churnnet.NewWarmModel(churnnet.SDGR, 500, 21, 1)
	tr := churnnet.NewTraffic(m, churnnet.TrafficOptions{Parallelism: churnnet.FloodAuto})
	defer tr.Close()

	steps, err := churnnet.TrafficSchedule("staggered", 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ids []churnnet.MessageID
	next := 0
	for step := 0; next < len(steps) || tr.Live() > 0; step++ {
		for next < len(steps) && steps[next] == step {
			ids = append(ids, tr.Inject(churnnet.Handle{}))
			next++
		}
		tr.Step()
		// Retire messages as they finish — the production pattern.
		for _, id := range ids {
			if tr.Status(id) == churnnet.MessageDone {
				tr.Retire(id)
			}
		}
		if step > 200 {
			t.Fatal("traffic plane did not drain")
		}
	}
	if tr.Injected() != 3 {
		t.Fatalf("injected %d messages, want 3", tr.Injected())
	}
	for i, id := range ids {
		if tr.Status(id) != churnnet.MessageRetired {
			t.Fatalf("message %d not retired: %v", i, tr.Status(id))
		}
		res := tr.Result(id)
		if !res.Completed || res.CompletionRound <= 0 || res.CompletionRound > 30 {
			t.Fatalf("message %d: %+v", i, res)
		}
	}
}
