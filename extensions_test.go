package churnnet_test

import (
	"bytes"
	"strings"
	"testing"

	churnnet "github.com/dyngraph/churnnet"
)

// Facade-level tests of the extension APIs: overlay, degree policies,
// components, snapshot serialization.

func TestOverlayFacade(t *testing.T) {
	ov := churnnet.NewOverlay(churnnet.OverlayConfig{N: 300, D: 12, MaxIn: 60}, 1)
	ov.WarmUp()
	if ov.Kind().String() != "OVERLAY" {
		t.Fatalf("kind %v", ov.Kind())
	}
	size := ov.Graph().NumAlive()
	if size < 200 || size > 400 {
		t.Fatalf("population %d", size)
	}
	if !ov.Graph().IsAlive(ov.LastBorn()) {
		ov.AdvanceRound()
	}
	res := churnnet.Flood(ov, churnnet.FloodOptions{})
	if !res.Completed {
		t.Fatalf("overlay flooding: %+v", res)
	}
}

func TestDegreePolicyFacade(t *testing.T) {
	policy := churnnet.DegreePolicy{Choices: 2}
	m := churnnet.NewPoissonVariantModel(500, 10, true, policy, 2)
	for i := 0; i < 3000; i++ {
		m.AdvanceRound()
	}
	ds := churnnet.Degrees(m.Graph())
	// Least-loaded choice compresses the maximum total degree well below
	// the uniform model's Θ(log n) tail.
	plain := churnnet.NewWarmModel(churnnet.PDGR, 500, 10, 2)
	if ds.Max >= churnnet.Degrees(plain.Graph()).Max+5 {
		t.Fatalf("2-choice max degree %d not compressed", ds.Max)
	}
}

func TestComponentsFacade(t *testing.T) {
	m := churnnet.NewWarmModel(churnnet.SDG, 1500, 3, 3)
	cs := churnnet.Components(m.Graph())
	if cs.Count < 2 {
		t.Fatalf("SDG d=3 should be disconnected: %+v", cs)
	}
	if cs.GiantFraction < 0.7 || cs.GiantFraction >= 1 {
		t.Fatalf("giant fraction %v", cs.GiantFraction)
	}
}

func TestSerializationFacade(t *testing.T) {
	g, _ := churnnet.NewDOutGraph(40, 3, 4)
	var dot bytes.Buffer
	if err := churnnet.WriteDOT(&dot, g, "sample"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), `graph "sample"`) {
		t.Fatal("DOT output malformed")
	}

	var edges bytes.Buffer
	if err := churnnet.WriteEdgeList(&edges, g); err != nil {
		t.Fatal(err)
	}
	g2, hs, err := churnnet.ReadEdgeList(&edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAlive() != 40 || len(hs) != 40 {
		t.Fatal("round trip size")
	}
	if g2.NumEdgesLive() != g.NumEdgesLive() {
		t.Fatal("round trip edges")
	}
	// The reloaded snapshot is usable as a static model.
	res := churnnet.Flood(churnnet.NewStaticModel(g2, 3), churnnet.FloodOptions{Source: hs[0]})
	if res.EverInformed < 2 {
		t.Fatal("reloaded graph not floodable")
	}
}

func TestSpectralGapFacade(t *testing.T) {
	// Regen model: constant gap; no-regen with small d: gap ~ 0.
	regen := churnnet.NewWarmModel(churnnet.SDGR, 500, 14, 5)
	if gap := churnnet.SpectralGap(regen.Graph(), 80, 1); gap < 0.05 {
		t.Fatalf("SDGR gap %v", gap)
	}
	noRegen := churnnet.NewWarmModel(churnnet.SDG, 1000, 2, 5)
	if gap := churnnet.SpectralGap(noRegen.Graph(), 80, 1); gap > 0.02 {
		t.Fatalf("SDG d=2 gap %v", gap)
	}
}
