package churnnet_test

import (
	"fmt"

	churnnet "github.com/dyngraph/churnnet"
)

// The quickstart: build a warmed Poisson network with edge regeneration
// and broadcast from its newest node.
func ExampleFlood() {
	m := churnnet.NewWarmModel(churnnet.PDGR, 2000, 35, 1)
	res := churnnet.Flood(m, churnnet.FloodOptions{})
	fmt.Println("completed:", res.Completed)
	// Output: completed: true
}

// Static baseline of Lemma B.1: every node makes d uniform requests.
func ExampleNewDOutGraph() {
	g, hs := churnnet.NewDOutGraph(1000, 3, 7)
	fmt.Println("nodes:", g.NumAlive(), "edges:", g.NumEdgesLive())
	res := churnnet.Flood(churnnet.NewStaticModel(g, 3), churnnet.FloodOptions{Source: hs[0]})
	fmt.Println("completed:", res.Completed)
	// Output:
	// nodes: 1000 edges: 3000
	// completed: true
}

// Isolated nodes appear in the models without edge regeneration
// (Lemma 3.5) and vanish with regeneration.
func ExampleIsolatedFraction() {
	noRegen := churnnet.NewWarmModel(churnnet.SDG, 2000, 2, 1)
	regen := churnnet.NewWarmModel(churnnet.SDGR, 2000, 2, 1)
	fmt.Println("SDG has isolated nodes:", churnnet.IsolatedFraction(noRegen.Graph()) > 0)
	fmt.Println("SDGR has isolated nodes:", churnnet.IsolatedFraction(regen.Graph()) > 0)
	// Output:
	// SDG has isolated nodes: true
	// SDGR has isolated nodes: false
}
