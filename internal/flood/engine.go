package flood

import (
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
)

// engine is the incremental cut-set flooding engine behind Run.
//
// Where RunReference rescans every informed node's full multigraph
// neighborhood each round — O(informed · degree) work plus an O(alive)
// accounting pass — the engine maintains the set of live candidate edges
// (informed sender → uninformed receiver) as a persistent structure and
// updates it only on the events that can change the cut:
//
//   - a node crossing the cut (admission, or the source seed): its
//     uninformed neighbors gain it as a sender — one neighborhood scan per
//     node per broadcast, not per round;
//   - a death (Hooks.OnDeath): cut edges incident to the dead node vanish —
//     receiver-side eagerly, sender-side lazily at the next freeze;
//   - an edge creation or regeneration (Hooks.OnEdge, rules 1 and 3): a
//     request whose endpoints straddle the cut becomes a candidate.
//
// Completion detection is O(1) per round via two counters maintained by the
// same events: informedAlive (informed nodes currently alive; every
// informed node predates the running round, so it equals the reference's
// requiredInformed) and preRoundAlive (alive nodes born before the round,
// decremented when a pre-round node dies). Definition 3.3 completion is
// informedAlive == preRoundAlive; strict completion is informedAlive ==
// NumAlive.
//
// The per-receiver sender lists are slot-indexed and generation-tagged so
// slot reuse under churn never leaks entries between node incarnations.
// Lists may hold duplicate or dead senders between freezes; the freeze pass
// before each round compacts them, which keeps every round's frozen
// candidates exactly the live cut of the pre-advance snapshot — the same
// pairs RunReference captures, so results match bit for bit (pinned by
// TestEngineMatchesReference and the cut recompute check in engine_test.go).
type engine struct {
	m    core.Model
	g    *graph.Graph
	opts Options

	maxRounds int
	src       graph.Handle

	informed graph.Marks // ever-informed nodes (marks of dead handles are inert)
	scan     graph.Marks // per-crossing receiver dedup scratch

	// frontier holds nodes that crossed the cut but whose neighborhoods
	// have not been scanned yet. Scanning is deferred to the next freeze:
	// a run that stops at completion (or die-out) never pays for scanning
	// its final admission wave — on fast-completing models that wave is
	// nearly the whole network. No event can intervene between a crossing
	// and the next freeze, so deferral observes the same snapshot an eager
	// scan would; edges created later reach the cut via noteEdge, which
	// needs only the informed marks (set eagerly).
	frontier []graph.Handle

	senders   [][]graph.Handle // per slot: informed senders adjacent to the tracked receiver
	recvGen   []uint32         // per slot: generation the list belongs to; 0 = untracked
	receivers []graph.Handle   // tracked (possibly stale) receivers; compacted at freeze
	frozenLen []int            // per frozen receiver: sender-list length at freeze

	informedAlive int    // informed ∧ alive — the reference's requiredInformed
	preRoundAlive int    // alive ∧ born before the running round — the reference's required
	roundStartSeq uint64 // birth-seq horizon of the running round

	res Result

	// onFreeze, when non-nil, observes the frozen cut (receivers[:nFrozen]
	// with frozenLen) right before the model advances — test-only
	// instrumentation for the recomputed-from-scratch cut comparison.
	onFreeze func(nFrozen int)
}

// runEngine is Run's fast path; see the engine type for the contract.
func runEngine(m core.Model, opts Options) Result {
	return newEngine(m, opts).run()
}

func newEngine(m core.Model, opts Options) *engine {
	g := m.Graph()
	src := opts.Source
	if src.IsNil() {
		src = m.LastBorn()
	}
	if !g.IsAlive(src) {
		panic("flood: source is not an alive node")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(m.N())
	}
	e := &engine{m: m, g: g, opts: opts, maxRounds: maxRounds, src: src}
	e.growTo(g.NumSlots())
	return e
}

func (e *engine) growTo(n int) {
	if n <= len(e.senders) {
		return
	}
	ns := make([][]graph.Handle, n*2)
	copy(ns, e.senders)
	e.senders = ns
	ng := make([]uint32, n*2)
	copy(ng, e.recvGen)
	e.recvGen = ng
}

// appendSender records s as an informed neighbor of the uninformed receiver
// x, re-tagging the slot-indexed list when x is its first tracked owner (or
// the slot's previous incarnation was dropped).
func (e *engine) appendSender(x, s graph.Handle) {
	e.growTo(int(x.Slot) + 1)
	if e.recvGen[x.Slot] != x.Gen {
		e.senders[x.Slot] = e.senders[x.Slot][:0]
		e.recvGen[x.Slot] = x.Gen
		e.receivers = append(e.receivers, x)
	}
	e.senders[x.Slot] = append(e.senders[x.Slot], s)
}

// untrack clears h's receiver tracking if the list is still h's.
func (e *engine) untrack(h graph.Handle) {
	if int(h.Slot) < len(e.recvGen) && e.recvGen[h.Slot] == h.Gen {
		e.senders[h.Slot] = e.senders[h.Slot][:0]
		e.recvGen[h.Slot] = 0
	}
}

// cross moves v to the informed side of the cut: v stops being a receiver
// immediately, and its neighborhood scan — which turns its uninformed
// neighbors into receivers — is queued for the next freeze.
func (e *engine) cross(v graph.Handle) {
	e.informed.Mark(v)
	e.untrack(v)
	e.frontier = append(e.frontier, v)
}

// drainFrontier performs the one-off neighborhood scan of every node that
// crossed the cut since the last freeze. This replaces the reference's
// per-round rescan of all informed nodes; the scratch marks dedup
// multigraph parallel edges and the out+in double visit of Neighbors, so
// each neighbor is appended at most once per crossing.
func (e *engine) drainFrontier() {
	for _, v := range e.frontier {
		e.scan.Reset()
		e.g.Neighbors(v, func(x graph.Handle) bool {
			if !e.informed.Has(x) && e.scan.Mark(x) {
				e.appendSender(x, v)
			}
			return true
		})
	}
	e.frontier = e.frontier[:0]
}

// noteDeath maintains the completion counters and drops the dead node's
// receiver side of the cut. Sender-side entries naming the dead node stay
// in other receivers' lists until the next freeze compacts them.
func (e *engine) noteDeath(h graph.Handle) {
	if e.informed.Has(h) {
		e.informedAlive--
	}
	if e.g.BirthSeq(h) < e.roundStartSeq {
		e.preRoundAlive--
	}
	e.untrack(h)
}

// noteEdge classifies a freshly created request edge u→v against the cut:
// only edges with exactly one informed endpoint are candidates. Edges made
// during a round join the cut for the next round — they are appended after
// the freeze, so the running round's frozen candidates are untouched,
// matching the reference's pre-advance capture.
func (e *engine) noteEdge(u, v graph.Handle) {
	ui, vi := e.informed.Has(u), e.informed.Has(v)
	if ui == vi {
		return
	}
	if ui {
		e.appendSender(v, u)
	} else {
		e.appendSender(u, v)
	}
}

// freeze compacts the tracked receivers into the live cut of the current
// snapshot and returns how many receivers carry candidates this round:
// dead or informed receivers are dropped, dead senders are compacted out of
// the surviving lists, and the per-receiver list lengths are recorded so
// edges created during the upcoming advance are excluded from this round's
// admission.
func (e *engine) freeze() int {
	e.drainFrontier()
	g := e.g
	n := 0
	e.frozenLen = e.frozenLen[:0]
	for _, v := range e.receivers {
		if !g.IsAlive(v) || e.informed.Has(v) {
			e.untrack(v)
			continue
		}
		lst := e.senders[v.Slot]
		w := 0
		for _, s := range lst {
			if g.IsAlive(s) {
				lst[w] = s
				w++
			}
		}
		e.senders[v.Slot] = lst[:w]
		if w == 0 {
			e.recvGen[v.Slot] = 0
			continue
		}
		e.receivers[n] = v
		e.frozenLen = append(e.frozenLen, w)
		n++
	}
	e.receivers = e.receivers[:n]
	return n
}

func (e *engine) run() Result {
	m, g := e.m, e.g
	prev := m.Hooks()
	m.SetHooks(core.Hooks{
		OnBirth: prev.OnBirth, // newborns are uninformed; their edges arrive via OnEdge
		OnDeath: func(h graph.Handle) {
			e.noteDeath(h)
			if prev.OnDeath != nil {
				prev.OnDeath(h)
			}
		},
		OnEdge: func(u, v graph.Handle) {
			e.noteEdge(u, v)
			if prev.OnEdge != nil {
				prev.OnEdge(u, v)
			}
		},
	})
	defer m.SetHooks(prev)

	e.res = Result{
		Source:                e.src,
		CompletionRound:       -1,
		StrictCompletionRound: -1,
		DiedOutRound:          -1,
		PeakInformed:          1,
		EverInformed:          1,
	}
	res := &e.res
	alive0 := g.NumAlive()
	if alive0 > 0 {
		res.PeakFraction = 1 / float64(alive0)
	}
	if e.opts.KeepTrajectory {
		res.Informed = append(res.Informed, 1)
		res.Alive = append(res.Alive, alive0)
	}
	e.informedAlive = 1
	e.cross(e.src)

	for round := 1; round <= e.maxRounds; round++ {
		nFrozen := e.freeze()
		e.roundStartSeq = g.NextBirthSeq()
		e.preRoundAlive = g.NumAlive()
		if e.onFreeze != nil {
			e.onFreeze(nFrozen)
		}

		m.AdvanceRound()
		res.Rounds = round

		// Admission over the frozen candidates: a receiver still alive is
		// informed when some frozen sender qualifies — any of them under
		// Asynchronous semantics (the edge existed in the previous
		// snapshot), a still-alive one under Discretized.
		for i := 0; i < nFrozen; i++ {
			v := e.receivers[i]
			if !g.IsAlive(v) || e.informed.Has(v) {
				continue
			}
			admit := false
			for _, s := range e.senders[v.Slot][:e.frozenLen[i]] {
				if e.opts.Mode == Asynchronous || g.IsAlive(s) {
					admit = true
					break
				}
			}
			if admit {
				res.EverInformed++
				e.informedAlive++
				e.cross(v)
			}
		}

		// Round accounting from the counters alone — no graph pass. Every
		// informed alive node predates the round (admission only reaches
		// nodes alive at the freeze), so informedAlive doubles as the
		// count of informed pre-round nodes.
		informedAlive := e.informedAlive
		alive := g.NumAlive()
		if e.opts.KeepTrajectory {
			res.Informed = append(res.Informed, informedAlive)
			res.Alive = append(res.Alive, alive)
		}
		if informedAlive > res.PeakInformed {
			res.PeakInformed = informedAlive
		}
		if alive > 0 {
			if f := float64(informedAlive) / float64(alive); f > res.PeakFraction {
				res.PeakFraction = f
			}
		}
		res.FinalInformed, res.FinalAlive = informedAlive, alive

		if informedAlive == e.preRoundAlive && !res.Completed {
			res.Completed = true
			res.CompletionRound = round
		}
		if informedAlive == alive && !res.StrictlyCompleted {
			res.StrictlyCompleted = true
			res.StrictCompletionRound = round
		}
		if informedAlive == 0 {
			res.DiedOut = true
			res.DiedOutRound = round
			break // absorbing: nobody is left to transmit
		}
		if res.Completed && !e.opts.RunToMax {
			break
		}
	}
	return e.res
}
