package flood

import (
	"sync"
	"sync/atomic"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
)

// engine is the incremental cut-set flooding engine behind Run.
//
// Where RunReference rescans every informed node's full multigraph
// neighborhood each round — O(informed · degree) work plus an O(alive)
// accounting pass — the engine maintains the set of live candidate edges
// (informed sender → uninformed receiver) as a persistent structure and
// updates it only on the events that can change the cut:
//
//   - a node crossing the cut (admission, or the source seed): its
//     uninformed neighbors gain it as a sender — one neighborhood scan per
//     node per broadcast, not per round;
//   - a death (Hooks.OnDeath): cut edges incident to the dead node vanish —
//     receiver-side eagerly, sender-side lazily at the next freeze;
//   - an edge creation or regeneration (Hooks.OnEdge, rules 1 and 3): a
//     request whose endpoints straddle the cut becomes a candidate.
//
// Completion detection is O(1) per round via two counters maintained by the
// same events: informedAlive (informed nodes currently alive; every
// informed node predates the running round, so it equals the reference's
// requiredInformed) and preRoundAlive (alive nodes born before the round,
// decremented when a pre-round node dies). Definition 3.3 completion is
// informedAlive == preRoundAlive; strict completion is informedAlive ==
// NumAlive.
//
// The per-receiver sender lists are slot-indexed and generation-tagged so
// slot reuse under churn never leaks entries between node incarnations.
// Lists may hold duplicate or dead senders between freezes; the freeze pass
// before each round compacts them, which keeps every round's frozen
// candidates exactly the live cut of the pre-advance snapshot — the same
// pairs RunReference captures, so results match bit for bit (pinned by
// TestEngineMatchesReference and the cut recompute check in engine_test.go).
//
// # Sharded execution (Options.Parallelism > 1)
//
// The cut is partitioned across par worker shards by arena slot: slot s
// belongs to shard (s/shardBlock) mod par — a block-cyclic assignment that
// never changes as the arena grows and spreads dense slot ranges across all
// shards. Each shard owns the receiver bookkeeping of its slots (their
// compacted sender lists, the receivers slice, the frozen lengths), and the
// three O(cut)-sized passes of a round fan out across the shards:
//
//   - the frontier drain: workers claim contiguous frontier chunks, scan
//     their neighborhoods, and stage each discovered (receiver, sender)
//     pair in a per-(chunk, owner-shard) buffer; after the scan barrier,
//     every shard drains the buffers addressed to it in chunk order;
//   - the freeze/compaction pass: each shard compacts its own receivers;
//   - the admission sweep: each shard collects its admitted receivers, and
//     the collected lists are applied serially in shard order.
//
// The merge order — shards in index order, each shard's receivers in
// (chunk, scan) insertion order — is deterministic at any scheduling, so a
// run is reproducible at any fixed par. Results are moreover identical
// *across* par settings, because every observable of a round is a function
// of the frozen cut as a set: admission is an existence test over a
// receiver's frozen senders and the Result fields are counts over admitted
// sets, so the insertion order the sharding changes never surfaces (pinned
// by the par sweep in TestEngineMatchesReference and by
// TestFloodParallelismInvariance). Model advancement — and with it every
// hook — stays strictly serial; parallel phases only read the snapshot
// (graph reads are safe concurrently except for same-node in-list
// compaction, and every frontier node is scanned by exactly one worker).
type engine struct {
	m    core.Model
	g    *graph.Graph
	opts Options
	par  int // effective worker-shard count, >= 1

	maxRounds int
	src       graph.Handle

	informed graph.Marks // ever-informed nodes (marks of dead handles are inert)

	// frontier holds nodes that crossed the cut but whose neighborhoods
	// have not been scanned yet. Scanning is deferred to the next freeze:
	// a run that stops at completion (or die-out) never pays for scanning
	// its final admission wave — on fast-completing models that wave is
	// nearly the whole network. No event can intervene between a crossing
	// and the next freeze, so deferral observes the same snapshot an eager
	// scan would; edges created later reach the cut via noteEdge, which
	// needs only the informed marks (set eagerly).
	frontier []graph.Handle

	// Global slot-indexed cut state. Under sharded execution the arrays
	// are partitioned by slot ownership: only slot s's owner shard ever
	// touches senders[s] or recvGen[s] during a parallel phase, and the
	// arrays are pre-grown before fan-out (growth is forbidden inside).
	senders [][]graph.Handle // per slot: informed senders adjacent to the tracked receiver
	recvGen []uint32         // per slot: generation the list belongs to; 0 = untracked

	shards []engineShard

	// stage holds the parallel frontier drain's routing buffers: frontier
	// chunk c stages the cut edges it discovers for shard s in
	// stage[c*par+s]. Buffers are retained across rounds.
	stage     [][]cutEdge
	chunkNext atomic.Int64

	informedAlive int    // informed ∧ alive — the reference's requiredInformed
	preRoundAlive int    // alive ∧ born before the running round — the reference's required
	roundStartSeq uint64 // birth-seq horizon of the running round

	res Result

	// onFreeze, when non-nil, observes the frozen cut (each shard's
	// receivers[:nFrozen] with frozenLen) right before the model advances —
	// test-only instrumentation for the recomputed-from-scratch cut
	// comparison.
	onFreeze func(nFrozen int)
}

// engineShard owns the receiver-side bookkeeping of the arena slots mapped
// to it, plus its worker's scratch. With par == 1 a single shard owns
// every slot and the engine runs the exact serial algorithm.
type engineShard struct {
	receivers []graph.Handle // tracked (possibly stale) receivers; compacted at freeze
	frozenLen []int          // per frozen receiver: sender-list length at freeze
	nFrozen   int            // receivers[:nFrozen] carry candidates this round
	admitted  []graph.Handle // admission-sweep output, applied at the serial merge
	scan      graph.Marks    // per-worker neighborhood-dedup scratch
}

// cutEdge stages one discovered candidate edge of the cut for its
// receiver's owner shard.
type cutEdge struct {
	recv, sender graph.Handle
}

// shardBlock is the number of consecutive arena slots per ownership block:
// slot s belongs to shard (s/shardBlock) mod par. Block-cyclic ownership
// keeps the assignment stable as the arena grows (a slot never changes
// owners) while spreading any dense slot range across all shards; the
// block width keeps different shards' writes to the slot-indexed arrays a
// few cache lines apart.
const shardBlock = 64

// scanChunksPerWorker over-decomposes the frontier scan: workers claim
// chunks atomically, so a chunk of expensive neighborhoods does not
// serialize the tail of the pass. Chunk-indexed staging keeps the merge
// order independent of which worker claimed what.
const scanChunksPerWorker = 4

// runEngine is Run's fast path; see the engine type for the contract.
func runEngine(m core.Model, opts Options) Result {
	return newEngine(m, opts).run()
}

func newEngine(m core.Model, opts Options) *engine {
	g := m.Graph()
	src := opts.Source
	if src.IsNil() {
		src = m.LastBorn()
	}
	if !g.IsAlive(src) {
		panic("flood: source is not an alive node")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(m.N())
	}
	par := resolveParallelism(opts.Parallelism, m.N())
	e := &engine{m: m, g: g, opts: opts, par: par, maxRounds: maxRounds, src: src}
	e.shards = make([]engineShard, par)
	e.growTo(g.NumSlots())
	return e
}

// owner maps an arena slot to its shard index.
func (e *engine) owner(slot uint32) int {
	if e.par == 1 {
		return 0
	}
	return int(slot/shardBlock) % e.par
}

func (e *engine) growTo(n int) {
	if n <= len(e.senders) {
		return
	}
	ns := make([][]graph.Handle, n*2)
	copy(ns, e.senders)
	e.senders = ns
	ng := make([]uint32, n*2)
	copy(ng, e.recvGen)
	e.recvGen = ng
}

// forEachShard runs fn once per shard index: inline for the serial engine,
// on one goroutine per shard otherwise. Parallel phases must confine
// writes to shard-owned state (or disjoint staging slots) — the barrier is
// the only synchronization.
func (e *engine) forEachShard(fn func(w int)) {
	forEachWorker(e.par, fn)
}

// forEachWorker is the shard fan-out shared by the single-message engine
// and the traffic plane: inline for par == 1, one goroutine per worker
// index otherwise, returning at the barrier.
func forEachWorker(par int, fn func(w int)) {
	if par == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// appendSender records s as an informed neighbor of the uninformed receiver
// x, re-tagging the slot-indexed list when x is its first tracked owner (or
// the slot's previous incarnation was dropped). Serial-context path: it may
// grow the slot arrays (hooks fire during AdvanceRound, after births).
func (e *engine) appendSender(x, s graph.Handle) {
	e.growTo(int(x.Slot) + 1)
	e.appendSenderShard(&e.shards[e.owner(x.Slot)], x, s)
}

// appendSenderShard is appendSender for the shard that owns x's slot; the
// global arrays must already span it (parallel phases pre-grow and must
// not reallocate).
func (e *engine) appendSenderShard(sh *engineShard, x, s graph.Handle) {
	if e.recvGen[x.Slot] != x.Gen {
		e.senders[x.Slot] = e.senders[x.Slot][:0]
		e.recvGen[x.Slot] = x.Gen
		sh.receivers = append(sh.receivers, x)
	}
	e.senders[x.Slot] = append(e.senders[x.Slot], s)
}

// untrack clears h's receiver tracking if the list is still h's.
func (e *engine) untrack(h graph.Handle) {
	if int(h.Slot) < len(e.recvGen) && e.recvGen[h.Slot] == h.Gen {
		e.senders[h.Slot] = e.senders[h.Slot][:0]
		e.recvGen[h.Slot] = 0
	}
}

// cross moves v to the informed side of the cut: v stops being a receiver
// immediately, and its neighborhood scan — which turns its uninformed
// neighbors into receivers — is queued for the next freeze.
func (e *engine) cross(v graph.Handle) {
	e.informed.Mark(v)
	e.untrack(v)
	e.frontier = append(e.frontier, v)
}

// drainFrontier performs the one-off neighborhood scan of every node that
// crossed the cut since the last freeze. This replaces the reference's
// per-round rescan of all informed nodes; the scratch marks dedup
// multigraph parallel edges and the out+in double visit of Neighbors, so
// each neighbor is appended at most once per crossing.
func (e *engine) drainFrontier() {
	if len(e.frontier) == 0 {
		return
	}
	if e.par == 1 {
		sh := &e.shards[0]
		for _, v := range e.frontier {
			sh.scan.Reset()
			e.g.Neighbors(v, func(x graph.Handle) bool {
				if !e.informed.Has(x) && sh.scan.Mark(x) {
					e.appendSender(x, v)
				}
				return true
			})
		}
		e.frontier = e.frontier[:0]
		return
	}
	e.drainFrontierSharded()
}

// drainFrontierSharded fans the neighborhood scans out across the workers
// in two barriered passes — scan into chunk-indexed staging buffers, then
// shard-owned merge in chunk order — so the per-shard receiver insertion
// order is a pure function of the frontier, not of scheduling.
func (e *engine) drainFrontierSharded() {
	// Parallel phases must not reallocate the slot arrays; every handle
	// they touch lives in the current snapshot, so spanning the arena up
	// front suffices.
	e.growTo(e.g.NumSlots())
	nFront := len(e.frontier)
	nChunks := nFront
	if max := e.par * scanChunksPerWorker; nChunks > max {
		nChunks = max
	}
	if need := nChunks * e.par; len(e.stage) < need {
		grown := make([][]cutEdge, need)
		copy(grown, e.stage)
		e.stage = grown
	}

	// Scan: each claimed chunk walks its frontier nodes' neighborhoods
	// and stages every discovered cut edge for its receiver's owner.
	// Scanned nodes are distinct, so the in-list compaction side effect of
	// graph.Neighbors stays confined to the scanned node.
	e.chunkNext.Store(0)
	e.forEachShard(func(w int) {
		scratch := &e.shards[w].scan
		for {
			c := int(e.chunkNext.Add(1)) - 1
			if c >= nChunks {
				return
			}
			buf := e.stage[c*e.par : (c+1)*e.par]
			for _, v := range e.frontier[c*nFront/nChunks : (c+1)*nFront/nChunks] {
				scratch.Reset()
				e.g.Neighbors(v, func(x graph.Handle) bool {
					if !e.informed.Has(x) && scratch.Mark(x) {
						s := e.owner(x.Slot)
						buf[s] = append(buf[s], cutEdge{recv: x, sender: v})
					}
					return true
				})
			}
		}
	})

	// Merge: each shard drains the buffers addressed to it in chunk order.
	e.forEachShard(func(w int) {
		sh := &e.shards[w]
		for c := 0; c < nChunks; c++ {
			buf := e.stage[c*e.par+w]
			for _, ce := range buf {
				e.appendSenderShard(sh, ce.recv, ce.sender)
			}
			e.stage[c*e.par+w] = buf[:0]
		}
	})
	e.frontier = e.frontier[:0]
}

// noteDeath maintains the completion counters and drops the dead node's
// receiver side of the cut. Sender-side entries naming the dead node stay
// in other receivers' lists until the next freeze compacts them.
func (e *engine) noteDeath(h graph.Handle) {
	if e.informed.Has(h) {
		e.informedAlive--
	}
	if e.g.BirthSeq(h) < e.roundStartSeq {
		e.preRoundAlive--
	}
	e.untrack(h)
}

// noteEdge classifies a freshly created request edge u→v against the cut:
// only edges with exactly one informed endpoint are candidates. Edges made
// during a round join the cut for the next round — they are appended after
// the freeze, so the running round's frozen candidates are untouched,
// matching the reference's pre-advance capture.
func (e *engine) noteEdge(u, v graph.Handle) {
	ui, vi := e.informed.Has(u), e.informed.Has(v)
	if ui == vi {
		return
	}
	if ui {
		e.appendSender(v, u)
	} else {
		e.appendSender(u, v)
	}
}

// freeze compacts the tracked receivers into the live cut of the current
// snapshot and returns how many receivers carry candidates this round:
// dead or informed receivers are dropped, dead senders are compacted out of
// the surviving lists, and the per-receiver list lengths are recorded so
// edges created during the upcoming advance are excluded from this round's
// admission. Drain and compaction fan out across the shards.
func (e *engine) freeze() int {
	e.drainFrontier()
	e.forEachShard(func(w int) { e.shards[w].compact(e) })
	n := 0
	for i := range e.shards {
		n += e.shards[i].nFrozen
	}
	return n
}

// compact is the freeze pass over one shard's receivers; it touches only
// shard-owned slots, so shards compact concurrently.
func (sh *engineShard) compact(e *engine) {
	g := e.g
	n := 0
	sh.frozenLen = sh.frozenLen[:0]
	for _, v := range sh.receivers {
		if !g.IsAlive(v) || e.informed.Has(v) {
			e.untrack(v)
			continue
		}
		lst := e.senders[v.Slot]
		w := 0
		for _, s := range lst {
			if g.IsAlive(s) {
				lst[w] = s
				w++
			}
		}
		e.senders[v.Slot] = lst[:w]
		if w == 0 {
			e.recvGen[v.Slot] = 0
			continue
		}
		sh.receivers[n] = v
		sh.frozenLen = append(sh.frozenLen, w)
		n++
	}
	sh.receivers = sh.receivers[:n]
	sh.nFrozen = n
}

// admitFrozen runs the admission test over one shard's frozen receivers
// and collects the admitted ones; the serial merge applies them. The pass
// only reads the snapshot, the informed marks and shard-owned state, so
// shards sweep concurrently, and the outcome per receiver is an existence
// test over its frozen senders — independent of every iteration order.
func (sh *engineShard) admitFrozen(e *engine) {
	g := e.g
	sh.admitted = sh.admitted[:0]
	for i := 0; i < sh.nFrozen; i++ {
		v := sh.receivers[i]
		if !g.IsAlive(v) || e.informed.Has(v) {
			continue
		}
		admit := false
		for _, s := range e.senders[v.Slot][:sh.frozenLen[i]] {
			if e.opts.Mode == Asynchronous || g.IsAlive(s) {
				admit = true
				break
			}
		}
		if admit {
			sh.admitted = append(sh.admitted, v)
		}
	}
}

func (e *engine) run() Result {
	m, g := e.m, e.g
	prev := m.Hooks()
	// Newborns are uninformed, so the engine needs no OnBirth of its own;
	// their edges arrive via OnEdge. Chaining keeps any earlier observer —
	// a caller's hooks, an expansion.Tracker — on the stream for the run.
	m.SetHooks(core.ChainHooks(core.Hooks{OnDeath: e.noteDeath, OnEdge: e.noteEdge}, prev))
	defer m.SetHooks(prev)

	e.res = Result{
		Source:                e.src,
		CompletionRound:       -1,
		StrictCompletionRound: -1,
		DiedOutRound:          -1,
		PeakInformed:          1,
		EverInformed:          1,
	}
	res := &e.res
	alive0 := g.NumAlive()
	if alive0 > 0 {
		res.PeakFraction = 1 / float64(alive0)
	}
	if e.opts.KeepTrajectory {
		res.Informed = append(res.Informed, 1)
		res.Alive = append(res.Alive, alive0)
	}
	e.informedAlive = 1
	e.cross(e.src)

	for round := 1; round <= e.maxRounds; round++ {
		nFrozen := e.freeze()
		e.roundStartSeq = g.NextBirthSeq()
		e.preRoundAlive = g.NumAlive()
		if e.onFreeze != nil {
			e.onFreeze(nFrozen)
		}

		m.AdvanceRound()
		res.Rounds = round

		// Admission over the frozen candidates: a receiver still alive is
		// informed when some frozen sender qualifies — any of them under
		// Asynchronous semantics (the edge existed in the previous
		// snapshot), a still-alive one under Discretized. Shards sweep
		// their own receivers; crossings apply at the serial merge, in
		// shard order.
		e.forEachShard(func(w int) { e.shards[w].admitFrozen(e) })
		for i := range e.shards {
			for _, v := range e.shards[i].admitted {
				res.EverInformed++
				e.informedAlive++
				e.cross(v)
			}
		}

		// Round accounting from the counters alone — no graph pass. Every
		// informed alive node predates the round (admission only reaches
		// nodes alive at the freeze), so informedAlive doubles as the
		// count of informed pre-round nodes.
		informedAlive := e.informedAlive
		alive := g.NumAlive()
		if e.opts.KeepTrajectory {
			res.Informed = append(res.Informed, informedAlive)
			res.Alive = append(res.Alive, alive)
		}
		if informedAlive > res.PeakInformed {
			res.PeakInformed = informedAlive
		}
		if alive > 0 {
			if f := float64(informedAlive) / float64(alive); f > res.PeakFraction {
				res.PeakFraction = f
			}
		}
		res.FinalInformed, res.FinalAlive = informedAlive, alive

		if informedAlive == e.preRoundAlive && !res.Completed {
			res.Completed = true
			res.CompletionRound = round
		}
		if informedAlive == alive && !res.StrictlyCompleted {
			res.StrictlyCompleted = true
			res.StrictCompletionRound = round
		}
		if informedAlive == 0 {
			res.DiedOut = true
			res.DiedOutRound = round
			break // absorbing: nobody is left to transmit
		}
		if res.Completed && !e.opts.RunToMax {
			break
		}
	}
	return e.res
}
