package flood

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
)

// lb returns a laneBits ready for tests at the given stride.
func lb(stride int) *laneBits {
	b := &laneBits{}
	b.init(stride)
	return b
}

func h(slot, gen uint32) graph.Handle { return graph.Handle{Slot: slot, Gen: gen} }

// TestLaneBitsSetHasClear pins the basic membership contract at lane
// indices on both sides of every word seam the suite cares about:
// set/has/clear per (slot, lane), independence across lanes sharing a
// slot, and the slotWasEmpty transition that keys receiver-list dedup.
func TestLaneBitsSetHasClear(t *testing.T) {
	t.Parallel()
	b := lb(3) // lanes 0..191
	v := h(5, 1)
	for _, li := range []int{0, 1, 62, 63, 64, 65, 126, 127, 128, 191} {
		if b.has(v, li) {
			t.Fatalf("lane %d set before any write", li)
		}
	}
	if empty := b.set(v, 63); !empty {
		t.Fatal("first set of a slot must report slotWasEmpty")
	}
	if empty := b.set(v, 64); empty {
		t.Fatal("second set of a tracked slot must not report slotWasEmpty")
	}
	if !b.has(v, 63) || !b.has(v, 64) {
		t.Fatal("bits straddling the 64-lane seam not both set")
	}
	if b.has(v, 62) || b.has(v, 65) {
		t.Fatal("neighboring lanes leaked")
	}
	if got := b.onesOf(v, nil); got != 2 {
		t.Fatalf("onesOf = %d, want 2", got)
	}
	mask := []uint64{1 << 63, 0, 0}
	if got := b.onesOf(v, mask); got != 1 {
		t.Fatalf("masked onesOf = %d, want 1", got)
	}
	b.clear(v, 63)
	if b.has(v, 63) || !b.has(v, 64) {
		t.Fatal("clear(63) did not confine itself to lane 63")
	}
	b.clear(v, 64)
	// The slot is current but all-zero: the next set is a fresh claim
	// again, which is exactly when the plane re-enters a receiver list.
	if empty := b.set(v, 128); !empty {
		t.Fatal("set on an all-zero current slot must report slotWasEmpty")
	}
}

// TestLaneBitsGenCurrency pins the shared-generation discipline: a
// handle from a previous occupant of the slot reads as all-zero, its
// clear is a no-op on the current occupant's bits, and claiming the slot
// for a new generation zeroes the stale words.
func TestLaneBitsGenCurrency(t *testing.T) {
	t.Parallel()
	b := lb(2)
	old, cur := h(3, 1), h(3, 2)
	b.set(old, 70)
	if b.wordsOf(cur) != nil {
		t.Fatal("new generation read the old occupant's words")
	}
	if empty := b.set(cur, 5); !empty {
		t.Fatal("claim for a new generation must report slotWasEmpty")
	}
	if b.has(cur, 70) {
		t.Fatal("stale bit survived the generation claim")
	}
	if b.wordsOf(old) != nil {
		t.Fatal("old generation still reads after the slot moved on")
	}
	b.clear(old, 5) // stale handle: must not touch the current bits
	if !b.has(cur, 5) {
		t.Fatal("clear through a stale handle mutated current state")
	}
}

// TestLaneBitsEpochReset pins the O(1) reset: after reset every slot
// reads as all-zero, and a post-reset claim does not resurrect pre-reset
// bits.
func TestLaneBitsEpochReset(t *testing.T) {
	t.Parallel()
	b := lb(1)
	v := h(9, 4)
	b.set(v, 3)
	b.reset()
	if b.wordsOf(v) != nil || b.has(v, 3) {
		t.Fatal("bits survived reset")
	}
	if empty := b.set(v, 7); !empty {
		t.Fatal("post-reset claim must be fresh")
	}
	if b.has(v, 3) {
		t.Fatal("pre-reset bit resurrected by the claim")
	}
}

// TestLaneBitsClearSlot pins the death path: one call drops the slot for
// every lane, stale handles are a no-op, and the slot claims fresh
// afterward.
func TestLaneBitsClearSlot(t *testing.T) {
	t.Parallel()
	b := lb(2)
	v := h(6, 3)
	b.set(v, 10)
	b.set(v, 100)
	b.clearSlot(h(6, 2)) // stale generation: no-op
	if !b.has(v, 10) || !b.has(v, 100) {
		t.Fatal("clearSlot with a stale handle dropped current bits")
	}
	b.clearSlot(v)
	if b.wordsOf(v) != nil {
		t.Fatal("slot still current after clearSlot")
	}
	if empty := b.set(v, 100); !empty || b.has(v, 10) {
		t.Fatal("slot did not claim fresh after clearSlot")
	}
}

// TestLaneBitsClearLane pins lane-index reuse: clearing a lane column
// zeroes that lane's bit on every slot while leaving all other lanes
// untouched.
func TestLaneBitsClearLane(t *testing.T) {
	t.Parallel()
	b := lb(2)
	vs := []graph.Handle{h(0, 1), h(4, 2), h(9, 1)}
	for _, v := range vs {
		b.set(v, 64)
		b.set(v, 65)
	}
	b.clearLane(64)
	for _, v := range vs {
		if b.has(v, 64) {
			t.Fatalf("slot %d kept lane 64 after clearLane", v.Slot)
		}
		if !b.has(v, 65) {
			t.Fatalf("slot %d lost lane 65 to clearLane(64)", v.Slot)
		}
	}
}

// TestLaneBitsReshape pins stride growth at the word seams the plane
// crosses as lanes 64 and 128 are allocated: every previously set bit
// survives a reshape, validity metadata included, and the widened words
// accept bits in the new high word.
func TestLaneBitsReshape(t *testing.T) {
	t.Parallel()
	b := lb(1)
	alive, stale := h(2, 5), h(7, 1)
	b.set(alive, 0)
	b.set(alive, 63)
	b.set(stale, 40)
	b.clearSlot(stale) // an invalidated slot must stay invalid across reshape

	for _, stride := range []int{2, 3} {
		b.reshape(stride)
		if !b.has(alive, 0) || !b.has(alive, 63) {
			t.Fatalf("stride %d: bits lost in reshape", stride)
		}
		if b.wordsOf(stale) != nil {
			t.Fatalf("stride %d: invalidated slot resurrected by reshape", stride)
		}
		hi := stride*64 - 1
		b.set(alive, hi)
		if !b.has(alive, hi) {
			t.Fatalf("stride %d: high word not writable after reshape", stride)
		}
		b.clear(alive, hi)
	}
	if got := b.onesOf(alive, nil); got != 2 {
		t.Fatalf("onesOf after reshapes = %d, want 2", got)
	}
}

// TestLaneBitsFootprint sanity-checks the memory accounting MemStats
// reports: words + shared epoch/gen, so per-lane cost at capacity M is
// slots·(stride·8 + 12)/M bytes — at M = 64 (stride 1) that is 20 bytes
// per slot shared by 64 lanes versus 12 bytes per slot for EACH
// Marks-per-lane.
func TestLaneBitsFootprint(t *testing.T) {
	t.Parallel()
	b := lb(1)
	b.grow(100)
	slots := b.slots()
	want := slots*8 + slots*8 + slots*4
	if got := b.footprintBytes(); got != want {
		t.Fatalf("footprintBytes = %d, want %d", got, want)
	}
	marksPerLane := 12 * slots * 64 // 64 lanes of Marks at the same span
	if got := b.footprintBytes(); got*4 > marksPerLane {
		t.Fatalf("packed footprint %d not >= 4x smaller than %d", got, marksPerLane)
	}
}
