package flood

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

func TestSizeOneNetworkVacuousCompletion(t *testing.T) {
	// n = 1 streaming: the source is the only node and dies next round.
	// Definition 3.3's completion condition I_t ⊇ N_{t−1} ∩ N_t is
	// vacuously true once the intersection is empty; the run also dies
	// out. Both flags must be set consistently rather than panicking.
	m := core.NewStreaming(1, 2, false, rng.New(1))
	m.WarmUp()
	res := Run(m, Options{MaxRounds: 5})
	if !res.DiedOut {
		t.Fatalf("expected die-out: %+v", res)
	}
	if res.Completed && res.CompletionRound > res.DiedOutRound {
		t.Fatalf("inconsistent rounds: %+v", res)
	}
}
