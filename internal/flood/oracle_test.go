package flood

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// oracle is an independent, deliberately naive implementation of the
// flooding definitions: it snapshots the full adjacency into maps before
// every round and recomputes informed sets from scratch. Differential
// testing against Run catches any bookkeeping error in the optimized
// engine (stale marks, missed in-edges, survival conditions).
type oracle struct {
	informed map[graph.Handle]bool
}

func newOracle(src graph.Handle) *oracle {
	return &oracle{informed: map[graph.Handle]bool{src: true}}
}

// snapshotAdjacency captures every (alive node -> alive neighbors) pair.
func snapshotAdjacency(g *graph.Graph) map[graph.Handle][]graph.Handle {
	adj := map[graph.Handle][]graph.Handle{}
	g.ForEachAlive(func(u graph.Handle) bool {
		var ns []graph.Handle
		g.Neighbors(u, func(v graph.Handle) bool {
			ns = append(ns, v)
			return true
		})
		adj[u] = ns
		return true
	})
	return adj
}

// step applies one flooding round per Definition 3.3 / 4.3 given the
// pre-advance adjacency and the post-advance liveness.
func (o *oracle) step(adj map[graph.Handle][]graph.Handle, g *graph.Graph, mode Mode) {
	next := map[graph.Handle]bool{}
	for u := range o.informed {
		if g.IsAlive(u) {
			next[u] = true
		}
	}
	for u, ns := range adj {
		if !o.informed[u] {
			continue
		}
		if mode == Discretized && !g.IsAlive(u) {
			continue
		}
		for _, v := range ns {
			if g.IsAlive(v) {
				next[v] = true
			}
		}
	}
	// Asynchronous semantics also keep ever-informed alive nodes — which
	// is exactly what the survivor rule above already does.
	o.informed = next
}

func (o *oracle) countAlive(g *graph.Graph) int {
	n := 0
	for h := range o.informed {
		if g.IsAlive(h) {
			n++
		}
	}
	return n
}

func runOracle(m core.Model, src graph.Handle, rounds int, mode Mode) []int {
	o := newOracle(src)
	g := m.Graph()
	counts := []int{1}
	for r := 0; r < rounds; r++ {
		adj := snapshotAdjacency(g)
		m.AdvanceRound()
		o.step(adj, g, mode)
		counts = append(counts, o.countAlive(g))
	}
	return counts
}

func TestRunMatchesOracle(t *testing.T) {
	cases := []struct {
		kind core.Kind
		n, d int
		mode Mode
	}{
		{core.SDG, 200, 3, Discretized},
		{core.SDG, 200, 3, Asynchronous},
		{core.SDGR, 150, 6, Discretized},
		{core.PDG, 200, 4, Discretized},
		{core.PDG, 200, 4, Asynchronous},
		{core.PDGR, 150, 8, Discretized},
		{core.PDGR, 150, 8, Asynchronous},
	}
	impls := []struct {
		name string
		run  func(core.Model, Options) Result
	}{
		{"engine", Run},
		{"reference", RunReference},
	}
	const rounds = 12
	for _, impl := range impls {
		for _, c := range cases {
			c, impl := c, impl
			t.Run(impl.name+"/"+c.kind.String()+"-"+c.mode.String(), func(t *testing.T) {
				for seed := uint64(0); seed < 3; seed++ {
					// Two identically seeded models: one for the tested
					// implementation, one for the oracle; their churn
					// streams are identical.
					mImpl := core.New(c.kind, c.n, c.d, rng.New(seed))
					mOracle := core.New(c.kind, c.n, c.d, rng.New(seed))
					core.WarmUp(mImpl)
					core.WarmUp(mOracle)
					src := mImpl.LastBorn()
					srcO := mOracle.LastBorn()
					if src.Slot != srcO.Slot || src.Gen != srcO.Gen {
						t.Fatal("models diverged before flooding")
					}
					res := impl.run(mImpl, Options{
						Source: src, Mode: c.mode, MaxRounds: rounds,
						KeepTrajectory: true, RunToMax: true,
					})
					want := runOracle(mOracle, srcO, rounds, c.mode)
					// The implementation stops as soon as the broadcast dies
					// out; the oracle keeps counting zeros. Prefixes must
					// match exactly and any early stop must be a genuine
					// die-out.
					if len(res.Informed) < len(want) {
						if !res.DiedOut {
							t.Fatalf("seed %d: run stopped early without dying out", seed)
						}
						for _, c := range want[len(res.Informed):] {
							if c != 0 {
								t.Fatalf("seed %d: run died out but oracle counts %v", seed, want)
							}
						}
						want = want[:len(res.Informed)]
					}
					if len(res.Informed) != len(want) {
						t.Fatalf("seed %d: trajectory lengths %d vs %d", seed, len(res.Informed), len(want))
					}
					for i := range want {
						if res.Informed[i] != want[i] {
							t.Fatalf("seed %d round %d: run %d, oracle %d\nrun %v\noracle %v",
								seed, i, res.Informed[i], want[i], res.Informed, want)
						}
					}
				}
			})
		}
	}
}

func TestOracleCompletionAgrees(t *testing.T) {
	// Completion flag cross-check on a regenerating model.
	mEngine := core.New(core.SDGR, 300, 21, rng.New(9))
	mOracle := core.New(core.SDGR, 300, 21, rng.New(9))
	core.WarmUp(mEngine)
	core.WarmUp(mOracle)
	src := mEngine.LastBorn()
	res := Run(mEngine, Options{Source: src, KeepTrajectory: true})
	counts := runOracle(mOracle, mOracle.LastBorn(), res.Rounds, Discretized)
	final := counts[len(counts)-1]
	// At the engine's completion round the oracle must also have informed
	// every pre-round node; sizes agree exactly on streaming models.
	if final != res.FinalInformed {
		t.Fatalf("final informed: engine %d, oracle %d", res.FinalInformed, final)
	}
	if !res.Completed {
		t.Fatal("engine did not complete")
	}
}
