package flood

import (
	"fmt"
	"sync/atomic"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Traffic is the multi-message generalization of the cut-set engine: M
// in-flight broadcasts share one model, one churn event stream and one
// hook chain, instead of M sequential single-message runs each paying its
// own model and advancement.
//
// Every message occupies a *lane* — an independent copy of the single
// engine's per-message state (informed marks, pending frontier, per-slot
// sender lists, the O(1) informedAlive completion counter) — while the
// per-round quantities that are functions of the graph alone (the
// pre-round population, the birth-sequence horizon) are maintained once
// and shared by every lane. One Step advances the model by one
// transmission unit and executes one flooding round for every in-flight
// message:
//
//   - the combined frontier drain: the nodes that crossed any lane's cut
//     since the last Step are deduplicated across lanes, each distinct
//     node's neighborhood is scanned exactly once, and every discovered
//     cut edge fans out to the lanes that queued the node (filtered per
//     lane by its own informed marks);
//   - one model advance, with OnDeath/OnEdge dispatched across the
//     in-flight lanes from a single chained hook installation
//     (core.ChainHooks keeps any earlier observer — a caller's hooks, an
//     expansion.Tracker — on the stream);
//   - per-lane freeze/admission exactly as in the single engine.
//
// Under Options.Parallelism-style sharding (TrafficOptions.Parallelism)
// the three O(cut) passes batch *across messages* inside the same
// per-slot-range worker sweep the single engine uses: worker w owns arena
// slots (s/shardBlock) mod par == w for every lane at once, so one
// barrier per pass covers all M messages instead of M barriers.
//
// # Determinism and the differential oracle
//
// A message injected when the plane has executed j Steps produces a
// Result bit-for-bit identical to flood.Run on an identically seeded
// model advanced j rounds, flooding from the same source with the same
// Options — the multi-message run is indistinguishable, message by
// message, from M independent single-message runs replaying the same
// churn stream (flooding consumes no randomness, so the streams align).
// This is pinned by TestTrafficMatchesSingleMessageOracle across models,
// injection schedules, worker counts and seeds, with a corrupted-engine
// negative control proving the harness has teeth.
//
// Internal orders differ from the single engine's — a lane's receiver
// insertion order follows the combined scan order, not the lane's own
// frontier order — but no Result bit depends on them: admission is an
// existence test over a receiver's frozen senders and every Result field
// is a count over admitted sets, the same argument that makes the single
// engine's Results invariant across worker counts. The admission order of
// messages injected in the same Step is likewise unobservable: lanes
// never read each other's state, so permuting same-round Inject calls
// permutes MessageIDs and nothing else (TestTrafficInjectionOrderInvariance).
//
// # Admission and retirement
//
// Inject admits a message (its lane allocates per-slot state lazily, and
// the source's one-off neighborhood scan is deferred to the next Step's
// freeze, exactly like the single engine). A message leaves the in-flight
// set on its own terms — completion (unless RunToMax), die-out, or its
// MaxRounds cap — after which its lane is dormant but still allocated;
// Retire releases the lane's per-slot state for reuse by later
// injections, keeping engine memory O(live messages) · O(slots) plus a
// constant-size record per message ever injected (the Result survives
// retirement). A reused lane starts from freshly allocated state, so late
// injections behave bit-for-bit like a fresh engine
// (TestTrafficRetireReleasesAndReuses).
//
// The plane owns the model between NewTraffic and Close: callers must not
// advance the model themselves, and observer lifetimes must nest (Close
// restores the hooks saved at NewTraffic).
type Traffic struct {
	m    core.Model
	g    *graph.Graph
	opts TrafficOptions
	par  int // effective worker-shard count, >= 1

	maxRounds int
	prevHooks core.Hooks
	closed    bool

	steps int // plane rounds executed (Step calls)

	msgs      []message // indexed by MessageID; constant-size each
	lanes     []*lane   // lane slots; nil when retired
	freeLanes []int     // retired lane slots available for reuse
	inFlight  []int     // lane indices of in-flight messages, admission order

	// Shared per-round state: functions of the graph and the round alone,
	// identical for every lane (see engine.preRoundAlive).
	preRoundAlive int
	roundStartSeq uint64

	// Combined frontier-drain staging. scanNodes holds the distinct nodes
	// to scan this drain; scanLanes[k] the in-flight lane indices that
	// queued scanNodes[k]; nodeIdx maps an arena slot to its scanNodes
	// index during a drain (-1 outside one). Every frontier handle is
	// alive at drain time (no event intervenes between a crossing and the
	// next freeze), so a slot identifies at most one node per drain.
	scanNodes []graph.Handle
	scanLanes [][]int32
	nodeIdx   []int32

	// stage holds the parallel drain's routing buffers, exactly like the
	// single engine's: chunk c stages the cut edges it discovers for
	// shard s in stage[c*par+s].
	stage     [][]laneCutEdge
	chunkNext atomic.Int64
	scratch   []graph.Marks // per-worker neighborhood-dedup scratch

	// onStage, when non-nil, filters every discovered cut edge right
	// before it is recorded for lane li (false = drop). Test-only: the
	// corrupted-engine negative control drops one cross-message frontier
	// event and asserts the differential oracle catches the divergence.
	// Called from shard-owned merge context; serial unless par > 1.
	onStage func(li int, recv, sender graph.Handle) bool
}

// TrafficOptions configures a Traffic plane. Every option applies
// uniformly to all injected messages.
type TrafficOptions struct {
	// Mode selects Discretized (default) or Asynchronous semantics.
	Mode Mode
	// MaxRounds caps each message's rounds counted from its injection;
	// 0 selects DefaultMaxRounds(model.N()).
	MaxRounds int
	// KeepTrajectory records per-round informed/alive counts per message.
	KeepTrajectory bool
	// RunToMax keeps completed messages flooding until their round cap.
	RunToMax bool
	// Parallelism is the worker-shard count of the batched cut passes,
	// with the same contract as Options.Parallelism: 0 or 1 runs serial,
	// any negative value selects the Auto policy, and per-message Results
	// are bit-for-bit identical at every setting.
	Parallelism int
}

// MessageID identifies one message admitted to a Traffic plane. IDs are
// dense and monotone in admission order and are never reused, even when
// the lane slot backing the message is.
type MessageID int

// MessageStatus is the lifecycle state of an injected message.
type MessageStatus uint8

// Message lifecycle states.
const (
	// MessageInFlight: the message still floods on every Step.
	MessageInFlight MessageStatus = iota
	// MessageDone: the message finished (completed, died out or hit its
	// round cap); its lane is dormant until Retire.
	MessageDone
	// MessageRetired: the lane's per-slot state has been released; the
	// Result remains queryable.
	MessageRetired
)

// String names the status.
func (s MessageStatus) String() string {
	switch s {
	case MessageInFlight:
		return "in-flight"
	case MessageDone:
		return "done"
	case MessageRetired:
		return "retired"
	default:
		return fmt.Sprintf("MessageStatus(%d)", uint8(s))
	}
}

// message is the constant-size per-message record that survives
// retirement.
type message struct {
	laneIdx int // -1 after retirement
	status  MessageStatus
	step    int    // plane steps executed at injection
	res     Result // final copy, written when the message finishes
}

// lane is one message's private flooding state — the single engine's
// per-message fields, owned by exactly one in-flight message.
type lane struct {
	id  MessageID
	src graph.Handle

	round int // per-message rounds executed (relative to injection)

	informed graph.Marks
	frontier []graph.Handle

	// Per-slot cut state, partitioned by shard ownership exactly like the
	// single engine's: only the owner shard touches senders[s]/recvGen[s]
	// during a parallel phase.
	senders [][]graph.Handle
	recvGen []uint32

	shards []laneShard

	informedAlive int
	res           Result
}

// laneShard owns one shard's receiver-side bookkeeping for one lane.
type laneShard struct {
	receivers []graph.Handle
	frozenLen []int
	nFrozen   int
	admitted  []graph.Handle
}

// laneCutEdge stages one discovered candidate edge for its receiver's
// owner shard; scan indexes the drain's scanNodes/scanLanes (the sender
// and the lanes the edge fans out to).
type laneCutEdge struct {
	recv graph.Handle
	scan int32
}

// NewTraffic opens a multi-message traffic plane over m. It installs the
// engine's hooks chained over any existing observer (restored by Close)
// and panics if the model does not guarantee the edge-event contract of
// core.EdgeEventSource — the incremental cut bookkeeping requires it, and
// unlike Run there is no per-message reference fallback to hide behind.
func NewTraffic(m core.Model, opts TrafficOptions) *Traffic {
	if es, ok := m.(core.EdgeEventSource); !ok || !es.EmitsEdgeEvents() {
		panic("flood: NewTraffic requires a model with the edge-event contract")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(m.N())
	}
	t := &Traffic{
		m:         m,
		g:         m.Graph(),
		opts:      opts,
		par:       resolveParallelism(opts.Parallelism, m.N()),
		maxRounds: maxRounds,
	}
	t.scratch = make([]graph.Marks, t.par)
	t.prevHooks = m.Hooks()
	m.SetHooks(core.ChainHooks(core.Hooks{OnDeath: t.noteDeath, OnEdge: t.noteEdge}, t.prevHooks))
	return t
}

// Close detaches the plane from the model's hook chain, restoring the
// hooks saved at NewTraffic. In-flight messages stop flooding; every
// finished message's Result stays queryable. Closing twice is a no-op.
func (t *Traffic) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.m.SetHooks(t.prevHooks)
	t.inFlight = t.inFlight[:0]
}

// Inject admits a new message sourced at src (Nil selects the model's
// most recently born node, the single-run convention) and returns its
// MessageID. The message's first flooding round is the next Step; its
// Result is bit-for-bit what a single flood.Run from the same source and
// model state would produce. It panics if the source is not alive or the
// plane is closed.
func (t *Traffic) Inject(src graph.Handle) MessageID {
	if t.closed {
		panic("flood: Inject on a closed Traffic plane")
	}
	if src.IsNil() {
		src = t.m.LastBorn()
	}
	if !t.g.IsAlive(src) {
		panic("flood: traffic source is not an alive node")
	}
	id := MessageID(len(t.msgs))

	var li int
	if n := len(t.freeLanes); n > 0 {
		li = t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
	} else {
		li = len(t.lanes)
		t.lanes = append(t.lanes, nil)
	}
	// A reused lane slot gets freshly allocated state: retirement released
	// the old arrays, so late injections are bit-for-bit a fresh engine.
	ln := &lane{id: id, src: src, shards: make([]laneShard, t.par)}
	t.lanes[li] = ln

	ln.res = Result{
		Source:                src,
		CompletionRound:       -1,
		StrictCompletionRound: -1,
		DiedOutRound:          -1,
		PeakInformed:          1,
		EverInformed:          1,
	}
	alive0 := t.g.NumAlive()
	if alive0 > 0 {
		ln.res.PeakFraction = 1 / float64(alive0)
	}
	if t.opts.KeepTrajectory {
		ln.res.Informed = append(ln.res.Informed, 1)
		ln.res.Alive = append(ln.res.Alive, alive0)
	}
	ln.informedAlive = 1
	t.cross(ln, src)

	t.inFlight = append(t.inFlight, li)
	t.msgs = append(t.msgs, message{laneIdx: li, status: MessageInFlight, step: t.steps})
	return id
}

// Steps returns the number of plane rounds executed so far.
func (t *Traffic) Steps() int { return t.steps }

// Live returns the number of in-flight messages.
func (t *Traffic) Live() int { return len(t.inFlight) }

// Injected returns the number of messages ever admitted.
func (t *Traffic) Injected() int { return len(t.msgs) }

// Status reports where id is in its lifecycle.
func (t *Traffic) Status(id MessageID) MessageStatus { return t.msgs[id].status }

// Result returns id's flooding outcome: the final Result once the message
// is done or retired, or a snapshot of the in-progress one (fields cover
// the rounds executed so far).
func (t *Traffic) Result(id MessageID) Result {
	msg := &t.msgs[id]
	if msg.status == MessageInFlight {
		res := t.lanes[msg.laneIdx].res
		// Detach the trajectories: the lane keeps appending to its own.
		res.Informed = append([]int(nil), res.Informed...)
		res.Alive = append([]int(nil), res.Alive...)
		return res
	}
	return msg.res
}

// Retire releases a done message's lane — the per-slot sender lists,
// informed marks and receiver bookkeeping — for reuse by later
// injections; the Result remains queryable. It panics unless the message
// is MessageDone: in-flight messages run to their own finish, and
// retiring twice is a bug.
func (t *Traffic) Retire(id MessageID) {
	msg := &t.msgs[id]
	if msg.status != MessageDone {
		panic("flood: Retire of a message that is " + msg.status.String())
	}
	t.lanes[msg.laneIdx] = nil
	t.freeLanes = append(t.freeLanes, msg.laneIdx)
	msg.laneIdx = -1
	msg.status = MessageRetired
}

// Step advances the plane one transmission unit: freeze every in-flight
// lane's cut, advance the model one round (churn events update all lanes
// through the shared hook chain), then run every lane's admission and
// round accounting. Messages that finish this round leave the in-flight
// set with their Result final.
func (t *Traffic) Step() {
	if t.closed {
		panic("flood: Step on a closed Traffic plane")
	}
	t.steps++
	g := t.g

	t.freeze()
	t.roundStartSeq = g.NextBirthSeq()
	t.preRoundAlive = g.NumAlive()

	t.m.AdvanceRound()

	// Admission over each lane's frozen candidates; shards sweep all
	// lanes inside one fan-out, crossings apply at the serial merge in
	// (lane admission order, shard order).
	t.forEachShard(func(w int) {
		for _, li := range t.inFlight {
			t.lanes[li].admitFrozen(t, w)
		}
	})
	alive := g.NumAlive()
	keep := t.inFlight[:0]
	for _, li := range t.inFlight {
		ln := t.lanes[li]
		for s := range ln.shards {
			for _, v := range ln.shards[s].admitted {
				ln.res.EverInformed++
				ln.informedAlive++
				t.cross(ln, v)
			}
		}
		if t.roundAccounting(ln, alive) {
			keep = append(keep, li)
		} else {
			msg := &t.msgs[ln.id]
			msg.status = MessageDone
			msg.res = ln.res
		}
	}
	t.inFlight = keep
}

// roundAccounting mirrors the single engine's per-round bookkeeping for
// one lane and reports whether the message stays in flight.
func (t *Traffic) roundAccounting(ln *lane, alive int) bool {
	ln.round++
	res := &ln.res
	res.Rounds = ln.round

	informedAlive := ln.informedAlive
	if t.opts.KeepTrajectory {
		res.Informed = append(res.Informed, informedAlive)
		res.Alive = append(res.Alive, alive)
	}
	if informedAlive > res.PeakInformed {
		res.PeakInformed = informedAlive
	}
	if alive > 0 {
		if f := float64(informedAlive) / float64(alive); f > res.PeakFraction {
			res.PeakFraction = f
		}
	}
	res.FinalInformed, res.FinalAlive = informedAlive, alive

	if informedAlive == t.preRoundAlive && !res.Completed {
		res.Completed = true
		res.CompletionRound = ln.round
	}
	if informedAlive == alive && !res.StrictlyCompleted {
		res.StrictlyCompleted = true
		res.StrictCompletionRound = ln.round
	}
	if informedAlive == 0 {
		res.DiedOut = true
		res.DiedOutRound = ln.round
		return false // absorbing: nobody is left to transmit
	}
	if res.Completed && !t.opts.RunToMax {
		return false
	}
	return ln.round < t.maxRounds
}

// --- cut bookkeeping (per lane) ---

// owner maps an arena slot to its shard index — the single engine's
// block-cyclic assignment, shared by every lane.
func (t *Traffic) owner(slot uint32) int {
	if t.par == 1 {
		return 0
	}
	return int(slot/shardBlock) % t.par
}

// forEachShard fans fn out exactly like the single engine's.
func (t *Traffic) forEachShard(fn func(w int)) {
	forEachWorker(t.par, fn)
}

// cross moves v to ln's informed side: it stops being a receiver for this
// lane and its neighborhood scan is queued for the next freeze.
func (t *Traffic) cross(ln *lane, v graph.Handle) {
	ln.informed.Mark(v)
	ln.untrack(v)
	ln.frontier = append(ln.frontier, v)
}

func (ln *lane) growTo(n int) {
	if n <= len(ln.senders) {
		return
	}
	ns := make([][]graph.Handle, n*2)
	copy(ns, ln.senders)
	ln.senders = ns
	ng := make([]uint32, n*2)
	copy(ng, ln.recvGen)
	ln.recvGen = ng
}

// untrack clears h's receiver tracking in this lane if the list is still
// h's.
func (ln *lane) untrack(h graph.Handle) {
	if int(h.Slot) < len(ln.recvGen) && ln.recvGen[h.Slot] == h.Gen {
		ln.senders[h.Slot] = ln.senders[h.Slot][:0]
		ln.recvGen[h.Slot] = 0
	}
}

// appendSender records s as an informed sender toward the uninformed
// receiver x in lane ln. Serial-context path: it may grow the lane's slot
// arrays (hooks fire during AdvanceRound, after births).
func (t *Traffic) appendSender(ln *lane, x, s graph.Handle) {
	ln.growTo(int(x.Slot) + 1)
	t.appendSenderShard(ln, &ln.shards[t.owner(x.Slot)], x, s)
}

// appendSenderShard is appendSender for the shard that owns x's slot; the
// lane's arrays must already span it in parallel phases.
func (t *Traffic) appendSenderShard(ln *lane, sh *laneShard, x, s graph.Handle) {
	if ln.recvGen[x.Slot] != x.Gen {
		ln.senders[x.Slot] = ln.senders[x.Slot][:0]
		ln.recvGen[x.Slot] = x.Gen
		sh.receivers = append(sh.receivers, x)
	}
	ln.senders[x.Slot] = append(ln.senders[x.Slot], s)
}

// noteDeath maintains the shared pre-round counter and every in-flight
// lane's informed counter and receiver tracking.
func (t *Traffic) noteDeath(h graph.Handle) {
	if t.g.BirthSeq(h) < t.roundStartSeq {
		t.preRoundAlive--
	}
	for _, li := range t.inFlight {
		ln := t.lanes[li]
		if ln.informed.Has(h) {
			ln.informedAlive--
		}
		ln.untrack(h)
	}
}

// noteEdge classifies a fresh request edge against every in-flight lane's
// cut; a single event can be a candidate for some messages and internal
// or irrelevant for others.
func (t *Traffic) noteEdge(u, v graph.Handle) {
	for _, li := range t.inFlight {
		ln := t.lanes[li]
		ui, vi := ln.informed.Has(u), ln.informed.Has(v)
		if ui == vi {
			continue
		}
		x, s := u, v
		if ui {
			x, s = v, u
		}
		if t.onStage != nil && !t.onStage(li, x, s) {
			continue
		}
		t.appendSender(ln, x, s)
	}
}

// --- the batched freeze ---

// freeze drains the combined frontier and compacts every in-flight lane's
// receivers into the live cut of the current snapshot, one worker sweep
// across all messages.
func (t *Traffic) freeze() {
	if len(t.inFlight) == 0 {
		return
	}
	t.drainFrontiers()
	t.forEachShard(func(w int) {
		for _, li := range t.inFlight {
			t.lanes[li].compact(t, w)
		}
	})
}

// growNodeIdx spans the slot → scan-index map, keeping new entries at the
// -1 sentinel.
func (t *Traffic) growNodeIdx(n int) {
	if n <= len(t.nodeIdx) {
		return
	}
	grown := make([]int32, n*2)
	for i := len(t.nodeIdx); i < len(grown); i++ {
		grown[i] = -1
	}
	copy(grown, t.nodeIdx)
	t.nodeIdx = grown
}

// collectScan gathers the distinct frontier nodes across all in-flight
// lanes into scanNodes, with scanLanes[k] listing the lanes that queued
// node k. Frontier handles are all alive (no event intervenes between a
// crossing and the next freeze), so arena slots identify nodes uniquely
// within one drain.
func (t *Traffic) collectScan() {
	t.scanNodes = t.scanNodes[:0]
	for _, li := range t.inFlight {
		ln := t.lanes[li]
		for _, v := range ln.frontier {
			t.growNodeIdx(int(v.Slot) + 1)
			k := t.nodeIdx[v.Slot]
			if k < 0 {
				k = int32(len(t.scanNodes))
				t.nodeIdx[v.Slot] = k
				t.scanNodes = append(t.scanNodes, v)
				if int(k) < len(t.scanLanes) {
					t.scanLanes[k] = t.scanLanes[k][:0]
				} else {
					t.scanLanes = append(t.scanLanes, nil)
				}
			}
			t.scanLanes[k] = append(t.scanLanes[k], int32(li))
		}
		ln.frontier = ln.frontier[:0]
	}
	for _, v := range t.scanNodes {
		t.nodeIdx[v.Slot] = -1
	}
}

// drainFrontiers performs the one-off neighborhood scans of every node
// that crossed any lane's cut since the last freeze. Each distinct node is
// scanned exactly once — deduplicating the work M separate engines would
// repeat, and confining graph.Neighbors' in-list compaction side effect to
// a single scanner — and each discovered cut edge fans out to the lanes
// that queued the node, filtered by their own informed marks. The
// per-scan scratch dedups the multigraph neighborhood once; filtering per
// lane after the shared dedup appends exactly the pairs the single
// engine's informed-check-then-mark would.
func (t *Traffic) drainFrontiers() {
	t.collectScan()
	if len(t.scanNodes) == 0 {
		return
	}
	if t.par == 1 {
		scratch := &t.scratch[0]
		for k, v := range t.scanNodes {
			scratch.Reset()
			t.g.Neighbors(v, func(x graph.Handle) bool {
				if scratch.Mark(x) {
					t.fanOut(int32(k), x, v)
				}
				return true
			})
		}
		return
	}
	t.drainFrontiersSharded()
}

// fanOut records the discovered cut edge (v → x) for every lane that
// queued scan node k and does not already consider x informed. Owner-shard
// context: the caller guarantees x's slot belongs to the running shard
// (or the engine is serial).
func (t *Traffic) fanOut(k int32, x, v graph.Handle) {
	for _, li := range t.scanLanes[k] {
		ln := t.lanes[li]
		if ln.informed.Has(x) {
			continue
		}
		if t.onStage != nil && !t.onStage(int(li), x, v) {
			continue
		}
		// Growth only happens on the serial path: parallel drains pre-grow
		// every in-flight lane to the arena size, making this a no-op there.
		ln.growTo(int(x.Slot) + 1)
		t.appendSenderShard(ln, &ln.shards[t.owner(x.Slot)], x, v)
	}
}

// drainFrontiersSharded is the parallel drain: chunk-claimed scans over
// the distinct node list stage each discovered edge for its receiver's
// owner shard, then every shard drains its buffers in chunk order — the
// single engine's two-barrier pattern, batched across lanes.
func (t *Traffic) drainFrontiersSharded() {
	// Parallel phases must not reallocate slot arrays: span every
	// in-flight lane's arrays up front.
	nSlots := t.g.NumSlots()
	for _, li := range t.inFlight {
		t.lanes[li].growTo(nSlots)
	}
	nScan := len(t.scanNodes)
	nChunks := nScan
	if max := t.par * scanChunksPerWorker; nChunks > max {
		nChunks = max
	}
	if need := nChunks * t.par; len(t.stage) < need {
		grown := make([][]laneCutEdge, need)
		copy(grown, t.stage)
		t.stage = grown
	}

	// Scan: lane-independent — informed marks are read-only here, so the
	// staged edges carry only the receiver and the scan index; the
	// per-lane filter runs at the owner-shard merge.
	t.chunkNext.Store(0)
	t.forEachShard(func(w int) {
		scratch := &t.scratch[w]
		for {
			c := int(t.chunkNext.Add(1)) - 1
			if c >= nChunks {
				return
			}
			buf := t.stage[c*t.par : (c+1)*t.par]
			for k := c * nScan / nChunks; k < (c+1)*nScan/nChunks; k++ {
				v := t.scanNodes[k]
				scratch.Reset()
				t.g.Neighbors(v, func(x graph.Handle) bool {
					if scratch.Mark(x) {
						s := t.owner(x.Slot)
						buf[s] = append(buf[s], laneCutEdge{recv: x, scan: int32(k)})
					}
					return true
				})
			}
		}
	})

	// Merge: each shard drains the buffers addressed to it in chunk
	// order, fanning each edge out across its lanes.
	t.forEachShard(func(w int) {
		for c := 0; c < nChunks; c++ {
			buf := t.stage[c*t.par+w]
			for _, ce := range buf {
				t.fanOut(ce.scan, ce.recv, t.scanNodes[ce.scan])
			}
			t.stage[c*t.par+w] = buf[:0]
		}
	})
}

// compact is the freeze pass over one shard's receivers of one lane —
// the single engine's engineShard.compact against lane-owned arrays.
func (ln *lane) compact(t *Traffic, w int) {
	sh := &ln.shards[w]
	g := t.g
	n := 0
	sh.frozenLen = sh.frozenLen[:0]
	for _, v := range sh.receivers {
		if !g.IsAlive(v) || ln.informed.Has(v) {
			ln.untrack(v)
			continue
		}
		lst := ln.senders[v.Slot]
		k := 0
		for _, s := range lst {
			if g.IsAlive(s) {
				lst[k] = s
				k++
			}
		}
		ln.senders[v.Slot] = lst[:k]
		if k == 0 {
			ln.recvGen[v.Slot] = 0
			continue
		}
		sh.receivers[n] = v
		sh.frozenLen = append(sh.frozenLen, k)
		n++
	}
	sh.receivers = sh.receivers[:n]
	sh.nFrozen = n
}

// admitFrozen runs the admission test over one shard's frozen receivers
// of one lane — the single engine's pass with lane-owned state.
func (ln *lane) admitFrozen(t *Traffic, w int) {
	sh := &ln.shards[w]
	g := t.g
	sh.admitted = sh.admitted[:0]
	for i := 0; i < sh.nFrozen; i++ {
		v := sh.receivers[i]
		if !g.IsAlive(v) || ln.informed.Has(v) {
			continue
		}
		admit := false
		for _, s := range ln.senders[v.Slot][:sh.frozenLen[i]] {
			if t.opts.Mode == Asynchronous || g.IsAlive(s) {
				admit = true
				break
			}
		}
		if admit {
			sh.admitted = append(sh.admitted, v)
		}
	}
}

// laneFootprint reports the allocated lane count and the summed per-slot
// state length across allocated lanes — the quantities the retirement
// property test tracks to pin memory at O(live messages), not O(all ever
// injected).
func (t *Traffic) laneFootprint() (lanes, slotState int) {
	for _, ln := range t.lanes {
		if ln == nil {
			continue
		}
		lanes++
		slotState += len(ln.senders) + len(ln.recvGen)
	}
	return lanes, slotState
}

// --- injection schedules ---

// TrafficSchedule generates the injection steps of the named schedule:
// message i of `messages` is injected after schedule[i] plane Steps.
// Schedules:
//
//   - "burst": every message at step 0;
//   - "staggered": one message every `gap` steps (0, gap, 2·gap, …);
//   - "poisson": Poisson arrivals at rate 1/gap per step (the continuous
//     analogue of staggered), drawn deterministically from seed.
//
// gap must be >= 1 (it is ignored for burst); the steps come back sorted.
func TrafficSchedule(schedule string, messages, gap int, seed uint64) ([]int, error) {
	if messages < 1 {
		return nil, fmt.Errorf("flood: schedule needs messages >= 1, got %d", messages)
	}
	if gap < 1 && schedule != "burst" {
		return nil, fmt.Errorf("flood: schedule %q needs gap >= 1, got %d", schedule, gap)
	}
	steps := make([]int, 0, messages)
	switch schedule {
	case "burst":
		for i := 0; i < messages; i++ {
			steps = append(steps, 0)
		}
	case "staggered":
		for i := 0; i < messages; i++ {
			steps = append(steps, i*gap)
		}
	case "poisson":
		r := rng.New(seed)
		rate := 1 / float64(gap)
		for step := 0; len(steps) < messages; step++ {
			for k := dist.Poisson(r, rate); k > 0 && len(steps) < messages; k-- {
				steps = append(steps, step)
			}
		}
	default:
		return nil, fmt.Errorf("flood: unknown schedule %q (want burst, staggered or poisson)", schedule)
	}
	return steps, nil
}
