package flood

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Traffic is the multi-message generalization of the cut-set engine: M
// in-flight broadcasts share one model, one churn event stream and one
// hook chain, instead of M sequential single-message runs each paying its
// own model and advancement.
//
// Every message occupies a *lane* — an index into the plane's packed
// per-slot state plus a small private record (its slot-indexed sender
// lists, the O(1) informedAlive completion counter, its Result). Unlike
// the single engine, the per-slot membership state is not one
// graph.Marks per lane: the plane owns two packed bitsets (laneBits)
// holding, per arena slot, one bit per lane — 64 lanes per word — for
// "lane considers this node informed" and "lane tracks this node as a
// receiver", under one *shared* per-slot epoch/generation (a slot's
// generation is a property of the node occupying it, not of any
// message). That layout costs ⌈M/64⌉ words per slot instead of ~12
// bytes per slot per lane, and it makes every cross-lane operation
// word-parallel:
//
//   - noteEdge classifies a churn edge against all M cuts at once: the
//     XOR of the endpoints' informed words, masked by the in-flight
//     lanes, is exactly the lanes for which the edge straddles the cut,
//     and the fan-out iterates only its set bits;
//   - noteDeath decrements the informed counters of exactly the lanes
//     whose bit is set on the dead slot, one masked word at a time, and
//     drops the slot's receiver tracking for all lanes with one epoch
//     store;
//   - the frontier drain dedups scan nodes across lanes at crossing
//     time (scanLanes is a packed lane bitmask per pending node), scans
//     each distinct node's neighborhood exactly once, and fans each
//     discovered cut edge out over set bits only;
//   - freeze/compaction and admission batch across lanes *inside* each
//     shard sweep: every shard keeps one receiver list shared by all
//     lanes (a node tracked by k lanes appears once), so per-receiver
//     work — the liveness check, the neighborhood bookkeeping — is paid
//     once, with the per-lane candidate lists visited by bit iteration.
//
// One Step advances the model by one transmission unit and executes one
// flooding round for every in-flight message; per-round quantities that
// are functions of the graph alone (the pre-round population, the
// birth-sequence horizon) are maintained once and shared by every lane.
//
// Under TrafficOptions.Parallelism the O(cut) passes batch across
// messages inside the same per-slot-range worker sweep the single engine
// uses: worker w owns arena slots (s/shardBlock) mod par == w for every
// lane at once, so one barrier per pass covers all M messages instead of
// M barriers.
//
// # Determinism and the differential oracle
//
// A message injected when the plane has executed j Steps produces a
// Result bit-for-bit identical to flood.Run on an identically seeded
// model advanced j rounds, flooding from the same source with the same
// Options — the multi-message run is indistinguishable, message by
// message, from M independent single-message runs replaying the same
// churn stream (flooding consumes no randomness, so the streams align).
// This is pinned by TestTrafficMatchesSingleMessageOracle across models,
// injection schedules, worker counts, seeds and M straddling the 64-lane
// word boundary, with a corrupted-engine negative control proving the
// harness has teeth.
//
// Internal orders differ from the single engine's — a lane's receiver
// insertion order follows the combined scan order, and admissions apply
// in (shard, receiver, ascending lane) order rather than lane-major —
// but no Result bit depends on them: admission is an existence test over
// a receiver's frozen senders and every Result field is a count over
// admitted sets, the same argument that makes the single engine's
// Results invariant across worker counts. The admission order of
// messages injected in the same Step is likewise unobservable: lanes
// never read each other's state, so permuting same-round Inject calls
// permutes MessageIDs and nothing else (TestTrafficInjectionOrderInvariance).
//
// # Admission and retirement
//
// Inject admits a message; its lane index claims a bit column in the
// packed bitsets and the source's one-off neighborhood scan is deferred
// to the next Step's freeze, exactly like the single engine. A message
// leaves the in-flight set on its own terms — completion (unless
// RunToMax), die-out, or its MaxRounds cap — after which its lane is
// dormant (masked out of every event by the in-flight lane mask) but
// still allocated; Retire releases the lane's sender lists for reuse by
// later injections, keeping engine memory O(live messages) · O(slots)
// plus a constant-size record per message ever injected (the Result
// survives retirement). A reused lane index starts from an all-zero bit
// column and freshly allocated sender lists, so late injections behave
// bit-for-bit like a fresh engine (TestTrafficRetireReleasesAndReuses).
//
// The plane owns the model between NewTraffic and Close: callers must not
// advance the model themselves, and observer lifetimes must nest (Close
// restores the hooks saved at NewTraffic).
type Traffic struct {
	m    core.Model
	g    *graph.Graph
	opts TrafficOptions
	par  int // effective worker-shard count, >= 1

	maxRounds int
	prevHooks core.Hooks
	closed    bool

	steps int // plane rounds executed (Step calls)

	msgs      []message // indexed by MessageID; constant-size each
	lanes     []*lane   // lane slots; nil when retired
	freeLanes []int     // retired lane slots available for reuse
	inFlight  []int     // lane indices of in-flight messages, admission order

	// Packed lane-membership state, one bit per (slot, lane), 64 lanes
	// per word. stride = ceil(len(lanes)/64) words per slot; liveMask
	// holds the in-flight lane indices (stride words) and masks every
	// event read, so bits of dormant or retired lanes are inert.
	stride   int
	liveMask []uint64
	informed laneBits // lanes that consider the slot's node informed
	tracked  laneBits // lanes tracking the slot's node as a receiver

	// Shared per-round state: functions of the graph and the round alone,
	// identical for every lane (see engine.preRoundAlive).
	preRoundAlive int
	roundStartSeq uint64

	// Pending frontier, deduplicated across lanes at crossing time:
	// scanNodes holds the distinct nodes to scan at the next freeze,
	// scanLanes[k*stride:(k+1)*stride] the packed lanes that queued
	// scanNodes[k], and nodeIdx maps an arena slot to its scanNodes
	// index (-1 when absent). Every pending handle is alive until the
	// next freeze (no event intervenes between a crossing and it), so a
	// slot identifies at most one pending node.
	scanNodes []graph.Handle
	scanLanes []uint64
	nodeIdx   []int32

	shards []trafficShard

	// stage holds the parallel drain's routing buffers, exactly like the
	// single engine's: chunk c stages the cut edges it discovers for
	// shard s in stage[c*par+s].
	stage     [][]laneCutEdge
	chunkNext atomic.Int64
	scratch   []graph.Marks // per-worker neighborhood-dedup scratch

	// onStage, when non-nil, filters every discovered cut edge right
	// before it is recorded for lane li (false = drop). Test-only: the
	// corrupted-engine negative control drops one cross-message frontier
	// event and asserts the differential oracle catches the divergence.
	onStage func(li int, recv, sender graph.Handle) bool
}

// TrafficOptions configures a Traffic plane. Every option applies
// uniformly to all injected messages.
type TrafficOptions struct {
	// Mode selects Discretized (default) or Asynchronous semantics.
	Mode Mode
	// MaxRounds caps each message's rounds counted from its injection;
	// 0 selects DefaultMaxRounds(model.N()).
	MaxRounds int
	// KeepTrajectory records per-round informed/alive counts per message.
	KeepTrajectory bool
	// RunToMax keeps completed messages flooding until their round cap.
	RunToMax bool
	// Parallelism is the worker-shard count of the batched cut passes,
	// with the same contract as Options.Parallelism: 0 or 1 runs serial,
	// any negative value selects the Auto policy, and per-message Results
	// are bit-for-bit identical at every setting.
	Parallelism int
}

// MessageID identifies one message admitted to a Traffic plane. IDs are
// dense and monotone in admission order and are never reused, even when
// the lane slot backing the message is.
type MessageID int

// MessageStatus is the lifecycle state of an injected message.
type MessageStatus uint8

// Message lifecycle states.
const (
	// MessageInFlight: the message still floods on every Step.
	MessageInFlight MessageStatus = iota
	// MessageDone: the message finished (completed, died out or hit its
	// round cap); its lane is dormant until Retire.
	MessageDone
	// MessageRetired: the lane's per-slot state has been released; the
	// Result remains queryable.
	MessageRetired
)

// String names the status.
func (s MessageStatus) String() string {
	switch s {
	case MessageInFlight:
		return "in-flight"
	case MessageDone:
		return "done"
	case MessageRetired:
		return "retired"
	default:
		return fmt.Sprintf("MessageStatus(%d)", uint8(s))
	}
}

// message is the constant-size per-message record that survives
// retirement.
type message struct {
	laneIdx int // -1 after retirement
	status  MessageStatus
	step    int    // plane steps executed at injection
	res     Result // final copy, written when the message finishes
}

// lane is one message's private flooding state: everything that is not
// packed into the plane's shared bitsets. The informed/receiver
// membership itself lives in Traffic.informed/Traffic.tracked under this
// lane's bit index.
type lane struct {
	id  MessageID
	src graph.Handle

	round int // per-message rounds executed (relative to injection)

	// senders[s] lists the informed senders toward the node in arena
	// slot s; the list is meaningful only while this lane's bit is set
	// on s in Traffic.tracked (it is reset when the bit transitions
	// 0 -> 1). Partitioned by shard ownership exactly like the single
	// engine's: only s's owner shard touches senders[s] during a
	// parallel phase.
	senders [][]graph.Handle

	informedAlive int
	res           Result
}

// trafficShard owns one shard's receiver-side bookkeeping, shared by
// every lane: a node tracked as a receiver by k lanes appears once.
type trafficShard struct {
	// receivers lists tracked (possibly stale or duplicate) receiver
	// handles owned by this shard; compacted at every freeze.
	receivers []graph.Handle
	seen      graph.Marks // compact-time duplicate-entry dedup scratch

	// The frozen cut of the running round, flat in receiver order:
	// frozenRecv[i] carries candidates for the lanes set in
	// frozenWords[i*stride:(i+1)*stride], and frozenLen lists — in
	// (receiver, ascending lane) order — each frozen sender-list length.
	frozenRecv  []graph.Handle
	frozenWords []uint64
	frozenLen   []int32

	// Admission-sweep output, applied at the serial merge: admRecv[j]
	// was admitted by the lanes set in admWords[j*stride:(j+1)*stride].
	admRecv  []graph.Handle
	admWords []uint64
}

// laneCutEdge stages one discovered candidate edge for its receiver's
// owner shard; scan indexes the drain's scanNodes/scanLanes (the sender
// and the packed lanes the edge fans out to).
type laneCutEdge struct {
	recv graph.Handle
	scan int32
}

// NewTraffic opens a multi-message traffic plane over m. It installs the
// engine's hooks chained over any existing observer (restored by Close)
// and panics if the model does not guarantee the edge-event contract of
// core.EdgeEventSource — the incremental cut bookkeeping requires it, and
// unlike Run there is no per-message reference fallback to hide behind.
func NewTraffic(m core.Model, opts TrafficOptions) *Traffic {
	if es, ok := m.(core.EdgeEventSource); !ok || !es.EmitsEdgeEvents() {
		panic("flood: NewTraffic requires a model with the edge-event contract")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(m.N())
	}
	t := &Traffic{
		m:         m,
		g:         m.Graph(),
		opts:      opts,
		par:       resolveParallelism(opts.Parallelism, m.N()),
		maxRounds: maxRounds,
		stride:    1,
		liveMask:  make([]uint64, 1),
	}
	t.informed.init(1)
	t.tracked.init(1)
	t.shards = make([]trafficShard, t.par)
	t.scratch = make([]graph.Marks, t.par)
	t.prevHooks = m.Hooks()
	m.SetHooks(core.ChainHooks(core.Hooks{OnDeath: t.noteDeath, OnEdge: t.noteEdge}, t.prevHooks))
	return t
}

// Close detaches the plane from the model's hook chain, restoring the
// hooks saved at NewTraffic. In-flight messages stop flooding; every
// message's Status and Result stay queryable. Closing twice is a no-op.
func (t *Traffic) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.m.SetHooks(t.prevHooks)
	t.inFlight = t.inFlight[:0]
}

// Inject admits a new message sourced at src (Nil selects the model's
// most recently born node, the single-run convention) and returns its
// MessageID. The message's first flooding round is the next Step; its
// Result is bit-for-bit what a single flood.Run from the same source and
// model state would produce. It panics if the source is not alive or the
// plane is closed.
func (t *Traffic) Inject(src graph.Handle) MessageID {
	if t.closed {
		panic("flood: Inject on a closed Traffic plane")
	}
	if src.IsNil() {
		src = t.m.LastBorn()
	}
	if !t.g.IsAlive(src) {
		panic("flood: traffic source is not an alive node")
	}
	id := MessageID(len(t.msgs))

	var li int
	if n := len(t.freeLanes); n > 0 {
		li = t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		// A reused lane index must start from an all-zero bit column:
		// while the lane was free its stale bits were masked out of every
		// read by liveMask, but re-granting the index makes them live.
		t.informed.clearLane(li)
		t.tracked.clearLane(li)
		t.clearScanLane(li)
	} else {
		li = len(t.lanes)
		t.lanes = append(t.lanes, nil)
		if need := (len(t.lanes) + 63) / 64; need > t.stride {
			t.reshape(need)
		}
	}
	// A reused lane slot gets freshly allocated sender lists: retirement
	// released the old arrays, so late injections are bit-for-bit a
	// fresh engine.
	ln := &lane{id: id, src: src}
	t.lanes[li] = ln

	ln.res = Result{
		Source:                src,
		CompletionRound:       -1,
		StrictCompletionRound: -1,
		DiedOutRound:          -1,
		PeakInformed:          1,
		EverInformed:          1,
	}
	alive0 := t.g.NumAlive()
	if alive0 > 0 {
		ln.res.PeakFraction = 1 / float64(alive0)
	}
	if t.opts.KeepTrajectory {
		ln.res.Informed = append(ln.res.Informed, 1)
		ln.res.Alive = append(ln.res.Alive, alive0)
	}
	ln.informedAlive = 1
	t.setLive(li)
	t.cross(li, src)

	t.inFlight = append(t.inFlight, li)
	t.msgs = append(t.msgs, message{laneIdx: li, status: MessageInFlight, step: t.steps})
	return id
}

// Steps returns the number of plane rounds executed so far.
func (t *Traffic) Steps() int { return t.steps }

// Live returns the number of in-flight messages.
func (t *Traffic) Live() int { return len(t.inFlight) }

// Injected returns the number of messages ever admitted.
func (t *Traffic) Injected() int { return len(t.msgs) }

// msg resolves id, panicking with a diagnosable message on an id this
// plane never issued — Status, Result and Retire share the check, so a
// caller's stale or foreign MessageID fails loudly instead of as a raw
// index-out-of-range deep in slice code.
func (t *Traffic) msg(id MessageID) *message {
	if id < 0 || int(id) >= len(t.msgs) {
		panic(fmt.Sprintf("flood: unknown MessageID %d (plane has admitted %d messages)", id, len(t.msgs)))
	}
	return &t.msgs[id]
}

// Status reports where id is in its lifecycle. It panics on a MessageID
// the plane never issued; it remains valid on a closed plane.
func (t *Traffic) Status(id MessageID) MessageStatus { return t.msg(id).status }

// Result returns id's flooding outcome: the final Result once the message
// is done or retired, or a snapshot of the in-progress one (fields cover
// the rounds executed so far). It panics on a MessageID the plane never
// issued; it remains valid on a closed plane.
func (t *Traffic) Result(id MessageID) Result {
	msg := t.msg(id)
	if msg.status == MessageInFlight {
		res := t.lanes[msg.laneIdx].res
		// Detach the trajectories: the lane keeps appending to its own.
		res.Informed = append([]int(nil), res.Informed...)
		res.Alive = append([]int(nil), res.Alive...)
		return res
	}
	return msg.res
}

// Retire releases a done message's lane — its sender lists and its bit
// column in the packed membership state — for reuse by later injections;
// the Result remains queryable. It panics on a MessageID the plane never
// issued, on a closed plane, and unless the message is MessageDone:
// in-flight messages run to their own finish, and retiring twice is a
// bug.
func (t *Traffic) Retire(id MessageID) {
	if t.closed {
		panic("flood: Retire on a closed Traffic plane")
	}
	msg := t.msg(id)
	if msg.status != MessageDone {
		panic("flood: Retire of a message that is " + msg.status.String())
	}
	t.lanes[msg.laneIdx] = nil
	t.freeLanes = append(t.freeLanes, msg.laneIdx)
	msg.laneIdx = -1
	msg.status = MessageRetired
}

// Step advances the plane one transmission unit: freeze every in-flight
// lane's cut, advance the model one round (churn events update all lanes
// through the shared hook chain), then run every lane's admission and
// round accounting. Messages that finish this round leave the in-flight
// set with their Result final.
func (t *Traffic) Step() {
	if t.closed {
		panic("flood: Step on a closed Traffic plane")
	}
	t.steps++
	g := t.g

	t.freeze()
	t.roundStartSeq = g.NextBirthSeq()
	t.preRoundAlive = g.NumAlive()

	t.m.AdvanceRound()

	// Admission over the frozen candidates; every shard sweeps its own
	// frozen receivers across all lanes at once, crossings apply at the
	// serial merge in (shard, receiver, ascending lane) order.
	t.forEachShard(func(w int) { t.admitShard(w) })
	alive := g.NumAlive()
	for w := range t.shards {
		sh := &t.shards[w]
		for j, v := range sh.admRecv {
			aw := sh.admWords[j*t.stride : (j+1)*t.stride]
			for i, m := range aw {
				for ; m != 0; m &= m - 1 {
					li := i<<6 | bits.TrailingZeros64(m)
					ln := t.lanes[li]
					ln.res.EverInformed++
					ln.informedAlive++
					t.cross(li, v)
				}
			}
		}
	}
	keep := t.inFlight[:0]
	for _, li := range t.inFlight {
		ln := t.lanes[li]
		if t.roundAccounting(ln, alive) {
			keep = append(keep, li)
		} else {
			msg := &t.msgs[ln.id]
			msg.status = MessageDone
			msg.res = ln.res
			t.clearLive(li)
		}
	}
	t.inFlight = keep
}

// roundAccounting mirrors the single engine's per-round bookkeeping for
// one lane and reports whether the message stays in flight.
func (t *Traffic) roundAccounting(ln *lane, alive int) bool {
	ln.round++
	res := &ln.res
	res.Rounds = ln.round

	informedAlive := ln.informedAlive
	if t.opts.KeepTrajectory {
		res.Informed = append(res.Informed, informedAlive)
		res.Alive = append(res.Alive, alive)
	}
	if informedAlive > res.PeakInformed {
		res.PeakInformed = informedAlive
	}
	if alive > 0 {
		if f := float64(informedAlive) / float64(alive); f > res.PeakFraction {
			res.PeakFraction = f
		}
	}
	res.FinalInformed, res.FinalAlive = informedAlive, alive

	if informedAlive == t.preRoundAlive && !res.Completed {
		res.Completed = true
		res.CompletionRound = ln.round
	}
	if informedAlive == alive && !res.StrictlyCompleted {
		res.StrictlyCompleted = true
		res.StrictCompletionRound = ln.round
	}
	if informedAlive == 0 {
		res.DiedOut = true
		res.DiedOutRound = ln.round
		return false // absorbing: nobody is left to transmit
	}
	if res.Completed && !t.opts.RunToMax {
		return false
	}
	return ln.round < t.maxRounds
}

// --- packed lane plumbing ---

// owner maps an arena slot to its shard index — the single engine's
// block-cyclic assignment, shared by every lane.
func (t *Traffic) owner(slot uint32) int {
	if t.par == 1 {
		return 0
	}
	return int(slot/shardBlock) % t.par
}

// forEachShard fans fn out exactly like the single engine's.
func (t *Traffic) forEachShard(fn func(w int)) {
	forEachWorker(t.par, fn)
}

func (t *Traffic) setLive(li int)   { t.liveMask[li>>6] |= 1 << (li & 63) }
func (t *Traffic) clearLive(li int) { t.liveMask[li>>6] &^= 1 << (li & 63) }

// reshape widens the packed state to a new words-per-slot stride when
// the allocated lane count crosses a 64-lane word boundary. Serial
// context only (Inject); frozen/admission words are ephemeral within one
// Step and need no migration, the pending scan masks do.
func (t *Traffic) reshape(stride int) {
	t.informed.reshape(stride)
	t.tracked.reshape(stride)
	lm := make([]uint64, stride)
	copy(lm, t.liveMask)
	t.liveMask = lm
	if n := len(t.scanNodes); n > 0 {
		ns := make([]uint64, n*stride)
		for k := 0; k < n; k++ {
			copy(ns[k*stride:], t.scanLanes[k*t.stride:(k+1)*t.stride])
		}
		t.scanLanes = ns
	} else {
		t.scanLanes = t.scanLanes[:0]
	}
	t.stride = stride
}

func (ln *lane) growTo(n int) {
	if n <= len(ln.senders) {
		return
	}
	ns := make([][]graph.Handle, n*2)
	copy(ns, ln.senders)
	ln.senders = ns
}

// appendSender records s as an informed sender toward the uninformed
// receiver x in lane li: it sets the lane's tracking bit on x's slot
// (resetting the lane's sender list on a 0 -> 1 transition) and enters x
// into its owner shard's shared receiver list when the slot was tracked
// by no lane at all. Callable from the serial hook context (it may grow
// the slot-indexed arrays) and from x's owner shard during a parallel
// merge (the arrays are pre-grown there, making growth a no-op).
func (t *Traffic) appendSender(li int, x, s graph.Handle) {
	ln := t.lanes[li]
	ln.growTo(int(x.Slot) + 1)
	w, slotWasEmpty := t.tracked.claim(x)
	wi, mask := li>>6, uint64(1)<<(li&63)
	if w[wi]&mask == 0 {
		w[wi] |= mask
		ln.senders[x.Slot] = ln.senders[x.Slot][:0]
	}
	if slotWasEmpty {
		sh := &t.shards[t.owner(x.Slot)]
		sh.receivers = append(sh.receivers, x)
	}
	ln.senders[x.Slot] = append(ln.senders[x.Slot], s)
}

// cross moves v to lane li's informed side: its receiver tracking for
// this lane stops and its neighborhood scan is queued for the next
// freeze (deduplicated across lanes at this call). Serial context only.
func (t *Traffic) cross(li int, v graph.Handle) {
	t.informed.set(v, li)
	t.tracked.clear(v, li)
	t.scanAdd(li, v)
}

// growNodeIdx spans the slot -> scan-index map, keeping new entries at
// the -1 sentinel.
func (t *Traffic) growNodeIdx(n int) {
	if n <= len(t.nodeIdx) {
		return
	}
	grown := make([]int32, n*2)
	for i := len(t.nodeIdx); i < len(grown); i++ {
		grown[i] = -1
	}
	copy(grown, t.nodeIdx)
	t.nodeIdx = grown
}

// scanAdd queues v's neighborhood scan for lane li at the next freeze.
// Distinct nodes are deduplicated here, at crossing time: a node queued
// by k lanes holds one scanNodes entry with k bits in its packed lane
// mask. Pending handles stay alive until the next freeze (no churn event
// intervenes), so the slot -> entry map cannot go stale.
func (t *Traffic) scanAdd(li int, v graph.Handle) {
	t.growNodeIdx(int(v.Slot) + 1)
	k := t.nodeIdx[v.Slot]
	if k < 0 {
		k = int32(len(t.scanNodes))
		t.nodeIdx[v.Slot] = k
		t.scanNodes = append(t.scanNodes, v)
		for i := 0; i < t.stride; i++ {
			t.scanLanes = append(t.scanLanes, 0)
		}
	}
	t.scanLanes[int(k)*t.stride+li>>6] |= 1 << (li & 63)
}

// clearScans drops every pending scan entry, resetting the slot map.
// Called after a drain, and on a Step with no in-flight lanes — pending
// entries must never survive an AdvanceRound, or the slot map could go
// stale under churn.
func (t *Traffic) clearScans() {
	for _, v := range t.scanNodes {
		t.nodeIdx[v.Slot] = -1
	}
	t.scanNodes = t.scanNodes[:0]
	t.scanLanes = t.scanLanes[:0]
}

// clearScanLane clears lane li's bit from every pending scan mask (lane
// index reuse; see Inject).
func (t *Traffic) clearScanLane(li int) {
	wi, mask := li>>6, uint64(1)<<(li&63)
	for k := range t.scanNodes {
		t.scanLanes[k*t.stride+wi] &^= mask
	}
}

// noteDeath maintains the shared pre-round counter, decrements the
// informed counter of exactly the in-flight lanes whose bit is set on
// the dead slot, and drops the slot's receiver tracking for all lanes
// with one epoch store.
func (t *Traffic) noteDeath(h graph.Handle) {
	if t.g.BirthSeq(h) < t.roundStartSeq {
		t.preRoundAlive--
	}
	if len(t.inFlight) == 0 {
		return
	}
	if iw := t.informed.wordsOf(h); iw != nil {
		for i, w := range iw {
			w &= t.liveMask[i]
			for ; w != 0; w &= w - 1 {
				t.lanes[i<<6|bits.TrailingZeros64(w)].informedAlive--
			}
		}
	}
	t.tracked.clearSlot(h)
}

// noteEdge classifies a fresh request edge against every in-flight
// lane's cut at once: the XOR of the endpoints' informed words, masked
// by the in-flight lanes, is exactly the lanes for which the edge has
// one informed endpoint — a single event can be a candidate for some
// messages and internal or irrelevant for others, and the fan-out
// iterates only the set bits.
func (t *Traffic) noteEdge(u, v graph.Handle) {
	if len(t.inFlight) == 0 {
		return
	}
	uw := t.informed.wordsOf(u)
	vw := t.informed.wordsOf(v)
	if uw == nil && vw == nil {
		return // no lane informs either endpoint: internal to no cut
	}
	for i := 0; i < t.stride; i++ {
		var uwi, vwi uint64
		if uw != nil {
			uwi = uw[i]
		}
		if vw != nil {
			vwi = vw[i]
		}
		cand := (uwi ^ vwi) & t.liveMask[i]
		for ; cand != 0; cand &= cand - 1 {
			bit := cand & -cand
			li := i<<6 | bits.TrailingZeros64(cand)
			x, s := u, v
			if uwi&bit != 0 {
				x, s = v, u
			}
			if t.onStage != nil && !t.onStage(li, x, s) {
				continue
			}
			t.appendSender(li, x, s)
		}
	}
}

// --- the batched freeze ---

// freeze drains the combined pending frontier and compacts the shared
// receiver lists into the live cut of the current snapshot, one worker
// sweep across all messages per pass.
func (t *Traffic) freeze() {
	if len(t.inFlight) == 0 {
		// Pending scans of lanes that finished last round must not
		// survive the upcoming advance (see clearScans).
		t.clearScans()
		return
	}
	t.drainFrontiers()
	t.forEachShard(func(w int) { t.compactShard(w) })
}

// drainFrontiers performs the one-off neighborhood scans of every node
// that crossed any lane's cut since the last freeze. Each distinct node
// is scanned exactly once — deduplicating the work M separate engines
// would repeat, and confining graph.Neighbors' in-list compaction side
// effect to a single scanner — and each discovered cut edge fans out
// over the set bits of the node's pending lane mask, minus the lanes
// already considering the neighbor informed. The per-scan scratch dedups
// the multigraph neighborhood once; filtering per lane after the shared
// dedup appends exactly the pairs the single engine's
// informed-check-then-mark would.
func (t *Traffic) drainFrontiers() {
	if len(t.scanNodes) == 0 {
		return
	}
	if t.par == 1 {
		scratch := &t.scratch[0]
		for k, v := range t.scanNodes {
			if !t.scanLive(k) {
				continue // queued only by lanes that since finished
			}
			scratch.Reset()
			t.g.Neighbors(v, func(x graph.Handle) bool {
				if scratch.Mark(x) {
					t.fanOut(k, x, v)
				}
				return true
			})
		}
	} else {
		t.drainFrontiersSharded()
	}
	t.clearScans()
}

// scanLive reports whether any in-flight lane queued scan entry k.
func (t *Traffic) scanLive(k int) bool {
	lw := t.scanLanes[k*t.stride : (k+1)*t.stride]
	for i, w := range lw {
		if w&t.liveMask[i] != 0 {
			return true
		}
	}
	return false
}

// fanOut records the discovered cut edge (v -> x) for every in-flight
// lane that queued scan entry k and does not already consider x
// informed — one masked word operation per 64 lanes, iterating set bits
// only. Owner-shard context: the caller guarantees x's slot belongs to
// the running shard (or the engine is serial).
func (t *Traffic) fanOut(k int, x, v graph.Handle) {
	lw := t.scanLanes[k*t.stride : (k+1)*t.stride]
	iw := t.informed.wordsOf(x)
	for i, w := range lw {
		w &= t.liveMask[i]
		if iw != nil {
			w &^= iw[i]
		}
		for ; w != 0; w &= w - 1 {
			li := i<<6 | bits.TrailingZeros64(w)
			if t.onStage != nil && !t.onStage(li, x, v) {
				continue
			}
			t.appendSender(li, x, v)
		}
	}
}

// growPlane spans every slot-indexed structure a parallel phase touches:
// fan-out inside a shard sweep must never reallocate shared arrays.
func (t *Traffic) growPlane(nSlots int) {
	t.informed.grow(nSlots)
	t.tracked.grow(nSlots)
	for _, li := range t.inFlight {
		t.lanes[li].growTo(nSlots)
	}
}

// drainFrontiersSharded is the parallel drain: chunk-claimed scans over
// the distinct node list stage each discovered edge for its receiver's
// owner shard, then every shard drains its buffers in chunk order — the
// single engine's two-barrier pattern, batched across lanes.
func (t *Traffic) drainFrontiersSharded() {
	t.growPlane(t.g.NumSlots())
	nScan := len(t.scanNodes)
	nChunks := nScan
	if max := t.par * scanChunksPerWorker; nChunks > max {
		nChunks = max
	}
	if need := nChunks * t.par; len(t.stage) < need {
		grown := make([][]laneCutEdge, need)
		copy(grown, t.stage)
		t.stage = grown
	}

	// Scan: lane-independent — the packed masks and informed words are
	// read-only here, so the staged edges carry only the receiver and
	// the scan index; the per-lane filter runs at the owner-shard merge.
	t.chunkNext.Store(0)
	t.forEachShard(func(w int) {
		scratch := &t.scratch[w]
		for {
			c := int(t.chunkNext.Add(1)) - 1
			if c >= nChunks {
				return
			}
			buf := t.stage[c*t.par : (c+1)*t.par]
			for k := c * nScan / nChunks; k < (c+1)*nScan/nChunks; k++ {
				if !t.scanLive(k) {
					continue
				}
				v := t.scanNodes[k]
				scratch.Reset()
				t.g.Neighbors(v, func(x graph.Handle) bool {
					if scratch.Mark(x) {
						s := t.owner(x.Slot)
						buf[s] = append(buf[s], laneCutEdge{recv: x, scan: int32(k)})
					}
					return true
				})
			}
		}
	})

	// Merge: each shard drains the buffers addressed to it in chunk
	// order, fanning each edge out across its packed lane mask.
	t.forEachShard(func(w int) {
		for c := 0; c < nChunks; c++ {
			buf := t.stage[c*t.par+w]
			for _, ce := range buf {
				t.fanOut(int(ce.scan), ce.recv, t.scanNodes[ce.scan])
			}
			t.stage[c*t.par+w] = buf[:0]
		}
	})
}

// compactShard is the freeze pass over one shard's shared receivers,
// batched across every lane: each distinct receiver is visited once —
// its liveness checked once, duplicate entries dropped via the seen
// scratch — and its per-lane candidate lists compacted by iterating only
// the set bits of its masked tracking word. It records the frozen cut
// flat in (receiver, ascending lane) order for the admission sweep.
func (t *Traffic) compactShard(w int) {
	sh := &t.shards[w]
	g := t.g
	sh.seen.Reset()
	sh.frozenRecv = sh.frozenRecv[:0]
	sh.frozenWords = sh.frozenWords[:0]
	sh.frozenLen = sh.frozenLen[:0]
	n := 0
	for _, v := range sh.receivers {
		if !sh.seen.Mark(v) {
			continue // duplicate entry (re-tracked within one window)
		}
		tw := t.tracked.wordsOf(v)
		if tw == nil || !g.IsAlive(v) {
			continue // tracking invalidated (death, slot reuse) or stale entry
		}
		iw := t.informed.wordsOf(v)
		wordBase := len(sh.frozenWords)
		any := false
		for i := 0; i < t.stride; i++ {
			// Live lanes still tracking v as uninformed; dormant lanes'
			// and crossed-over lanes' bits drop here.
			cand := tw[i] & t.liveMask[i]
			if iw != nil {
				cand &^= iw[i]
			}
			var frozen uint64
			for m := cand; m != 0; m &= m - 1 {
				bit := m & -m
				li := i<<6 | bits.TrailingZeros64(m)
				ln := t.lanes[li]
				lst := ln.senders[v.Slot]
				k := 0
				for _, s := range lst {
					if g.IsAlive(s) {
						lst[k] = s
						k++
					}
				}
				ln.senders[v.Slot] = lst[:k]
				if k == 0 {
					cand &^= bit // every sender died: lane stops tracking v
					continue
				}
				frozen |= bit
				sh.frozenLen = append(sh.frozenLen, int32(k))
				any = true
			}
			tw[i] = cand
			sh.frozenWords = append(sh.frozenWords, frozen)
		}
		if !any {
			sh.frozenWords = sh.frozenWords[:wordBase]
			continue // no lane holds live candidates: entry dropped
		}
		sh.frozenRecv = append(sh.frozenRecv, v)
		sh.receivers[n] = v
		n++
	}
	sh.receivers = sh.receivers[:n]
}

// admitShard runs the admission test over one shard's frozen receivers,
// batched across lanes: per receiver the liveness check is paid once,
// and each frozen lane's test — some frozen sender qualifies (any under
// Asynchronous semantics, a still-alive one under Discretized) — reads
// exactly the freeze-time prefix of the lane's sender list, so edges
// created during the advance are excluded. Output is staged per shard
// and applied at the serial merge.
func (t *Traffic) admitShard(w int) {
	sh := &t.shards[w]
	g := t.g
	async := t.opts.Mode == Asynchronous
	sh.admRecv = sh.admRecv[:0]
	sh.admWords = sh.admWords[:0]
	cur := 0
	for fi, v := range sh.frozenRecv {
		fw := sh.frozenWords[fi*t.stride : (fi+1)*t.stride]
		if !g.IsAlive(v) {
			// Died during the advance: skip, consuming the receiver's
			// frozen lengths (one per set bit, counted by popcount).
			for _, x := range fw {
				cur += bits.OnesCount64(x)
			}
			continue
		}
		iw := t.informed.wordsOf(v)
		wordBase := len(sh.admWords)
		any := false
		for i, m := range fw {
			var admitted uint64
			for ; m != 0; m &= m - 1 {
				bit := m & -m
				li := i<<6 | bits.TrailingZeros64(m)
				flen := int(sh.frozenLen[cur])
				cur++
				if iw != nil && iw[i]&bit != 0 {
					continue // already informed (defensive; mirrors the single engine)
				}
				for _, s := range t.lanes[li].senders[v.Slot][:flen] {
					if async || g.IsAlive(s) {
						admitted |= bit
						any = true
						break
					}
				}
			}
			sh.admWords = append(sh.admWords, admitted)
		}
		if !any {
			sh.admWords = sh.admWords[:wordBase]
			continue
		}
		sh.admRecv = append(sh.admRecv, v)
	}
}

// laneFootprint reports the allocated lane count and the summed per-slot
// sender-list headers across allocated lanes — the quantities the
// retirement property test tracks to pin memory at O(live messages), not
// O(all ever injected).
func (t *Traffic) laneFootprint() (lanes, slotState int) {
	for _, ln := range t.lanes {
		if ln == nil {
			continue
		}
		lanes++
		slotState += len(ln.senders)
	}
	return lanes, slotState
}

// TrafficMemStats describes a plane's packed informed-state layout; see
// MemStats.
type TrafficMemStats struct {
	// Slots is the arena-slot span of the packed state (grown
	// amortized-doubling, exactly as graph.Marks grows).
	Slots int
	// Lanes is the number of lane slots allocated — the peak simultaneous
	// message count, the packed layout's capacity denominator.
	Lanes int
	// WordsPerSlot is ceil(Lanes/64): the packed words each arena slot
	// carries.
	WordsPerSlot int
	// PackedInformedBytes is the plane-owned informed-state footprint:
	// the lane-membership words plus the shared per-slot epoch and
	// generation, for all lanes together.
	PackedInformedBytes int
	// MarksBaselineBytes is what the same membership state costs in the
	// pre-packing layout of one graph.Marks per lane: 12 bytes (an
	// 8-byte epoch plus a 4-byte generation) per slot per lane.
	MarksBaselineBytes int
}

// MemStats reports the plane's informed-state memory layout — the
// numbers behind the packed-bitset design: PackedInformedBytes/Lanes
// versus MarksBaselineBytes/Lanes is the per-lane saving (≈ 96× at
// M = 1024, since an epoch+gen pair per slot per lane collapses to one
// bit plus a 1/M share of the shared per-slot epoch/gen).
func (t *Traffic) MemStats() TrafficMemStats {
	st := TrafficMemStats{
		Slots:        t.informed.slots(),
		Lanes:        len(t.lanes),
		WordsPerSlot: t.stride,
	}
	st.PackedInformedBytes = t.informed.footprintBytes()
	st.MarksBaselineBytes = st.Slots * 12 * st.Lanes
	return st
}

// --- injection schedules ---

// TrafficSchedule generates the injection steps of the named schedule:
// message i of `messages` is injected after schedule[i] plane Steps.
// Schedules:
//
//   - "burst": every message at step 0;
//   - "staggered": one message every `gap` steps (0, gap, 2·gap, …);
//   - "poisson": Poisson arrivals at rate 1/gap per step (the continuous
//     analogue of staggered), drawn deterministically from seed.
//
// gap must be >= 1 (it is ignored for burst); the steps come back sorted.
func TrafficSchedule(schedule string, messages, gap int, seed uint64) ([]int, error) {
	if messages < 1 {
		return nil, fmt.Errorf("flood: schedule needs messages >= 1, got %d", messages)
	}
	if gap < 1 && schedule != "burst" {
		return nil, fmt.Errorf("flood: schedule %q needs gap >= 1, got %d", schedule, gap)
	}
	steps := make([]int, 0, messages)
	switch schedule {
	case "burst":
		for i := 0; i < messages; i++ {
			steps = append(steps, 0)
		}
	case "staggered":
		for i := 0; i < messages; i++ {
			steps = append(steps, i*gap)
		}
	case "poisson":
		r := rng.New(seed)
		rate := 1 / float64(gap)
		for step := 0; len(steps) < messages; step++ {
			for k := dist.Poisson(r, rate); k > 0 && len(steps) < messages; k-- {
				steps = append(steps, step)
			}
		}
	default:
		return nil, fmt.Errorf("flood: unknown schedule %q (want burst, staggered or poisson)", schedule)
	}
	return steps, nil
}
