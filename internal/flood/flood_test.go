package flood

import (
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestModeString(t *testing.T) {
	if Discretized.String() != "discretized" || Asynchronous.String() != "asynchronous" {
		t.Fatal("mode strings")
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if DefaultMaxRounds(0) <= 0 || DefaultMaxRounds(1) <= 0 {
		t.Fatal("non-positive default")
	}
	if DefaultMaxRounds(1<<20) <= DefaultMaxRounds(16) {
		t.Fatal("default must grow with n")
	}
}

func TestCompleteGraphOneRound(t *testing.T) {
	g, _ := staticgraph.Complete(10)
	m := core.NewStaticModel(g, 9)
	res := Run(m, Options{})
	if !res.Completed || res.CompletionRound != 1 {
		t.Fatalf("K10: %+v", res)
	}
	if !res.StrictlyCompleted || res.StrictCompletionRound != 1 {
		t.Fatal("K10 strict completion")
	}
	if res.FinalInformed != 10 || res.EverInformed != 10 {
		t.Fatalf("K10 counts: %+v", res)
	}
}

func TestCycleCompletionTime(t *testing.T) {
	// From any cycle node the broadcast spreads one hop each way per
	// round: ceil((n-1)/2) rounds.
	for _, n := range []int{7, 10, 11} {
		g, hs := staticgraph.Cycle(n)
		m := core.NewStaticModel(g, 2)
		res := Run(m, Options{Source: hs[0]})
		want := (n - 1 + 1) / 2
		if !res.Completed || res.CompletionRound != want {
			t.Fatalf("C%d: completed=%v round=%d want=%d", n, res.Completed, res.CompletionRound, want)
		}
	}
}

func TestPathFromEnd(t *testing.T) {
	g, hs := staticgraph.Path(6)
	m := core.NewStaticModel(g, 1)
	res := Run(m, Options{Source: hs[0], KeepTrajectory: true})
	if !res.Completed || res.CompletionRound != 5 {
		t.Fatalf("P6: %+v", res)
	}
	// Trajectory: 1, 2, 3, 4, 5, 6.
	want := []int{1, 2, 3, 4, 5, 6}
	if len(res.Informed) != len(want) {
		t.Fatalf("trajectory %v", res.Informed)
	}
	for i, v := range want {
		if res.Informed[i] != v {
			t.Fatalf("trajectory %v, want %v", res.Informed, want)
		}
	}
}

func TestStarFromLeafAndCenter(t *testing.T) {
	g, hs := staticgraph.Star(9)
	m := core.NewStaticModel(g, 1)
	leaf := Run(m, Options{Source: hs[3]})
	if !leaf.Completed || leaf.CompletionRound != 2 {
		t.Fatalf("star from leaf: %+v", leaf)
	}
	center := Run(m, Options{Source: hs[0]})
	if !center.Completed || center.CompletionRound != 1 {
		t.Fatalf("star from center: %+v", center)
	}
}

func TestDisconnectedNeverCompletes(t *testing.T) {
	g, hs := staticgraph.Disconnected(5, 5)
	m := core.NewStaticModel(g, 4)
	res := Run(m, Options{Source: hs[7], MaxRounds: 20})
	if res.Completed || res.StrictlyCompleted {
		t.Fatal("disconnected graph cannot complete")
	}
	if res.DiedOut {
		t.Fatal("informed clique persists: must not die out")
	}
	if res.Rounds != 20 {
		t.Fatalf("rounds = %d, want cap", res.Rounds)
	}
	if res.FinalInformed != 5 || res.FinalFraction() != 0.5 {
		t.Fatalf("final: %+v", res)
	}
}

func TestSourceDefaultsToLastBorn(t *testing.T) {
	m := core.NewStreaming(50, 3, true, rng.New(1))
	m.WarmUp()
	res := Run(m, Options{MaxRounds: 5})
	if res.Source != m.Graph().Newest() && !res.Completed {
		// Source captured before flooding; it equals the newest node at
		// start. (Newest may have changed since; just check non-nil.)
		t.Fatalf("source %v", res.Source)
	}
	if res.Source.IsNil() {
		t.Fatal("nil source")
	}
}

func TestRunPanicsOnDeadSource(t *testing.T) {
	g, hs := staticgraph.Path(3)
	g.RemoveNode(hs[1], nil)
	m := core.NewStaticModel(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(m, Options{Source: hs[1]})
}

func TestSDGRFloodingCompletesFast(t *testing.T) {
	// Theorem 3.16 shape: SDGR with d >= 21 completes in O(log n) w.h.p.
	m := core.NewStreaming(1000, 21, true, rng.New(2))
	m.WarmUp()
	res := Run(m, Options{})
	if !res.Completed {
		t.Fatalf("SDGR flooding did not complete: %+v", res)
	}
	if res.CompletionRound > 25 {
		t.Fatalf("completion took %d rounds, want O(log n) ~ <= 25", res.CompletionRound)
	}
}

func TestPDGRFloodingCompletesFast(t *testing.T) {
	// Theorem 4.20 shape: PDGR with d >= 35 completes in O(log n) w.h.p.
	m := core.NewPoisson(600, 35, true, rng.New(3))
	m.WarmUpRounds(8 * 600)
	res := Run(m, Options{})
	if !res.Completed {
		t.Fatalf("PDGR flooding did not complete: %+v", res)
	}
	if res.CompletionRound > 25 {
		t.Fatalf("completion took %d rounds", res.CompletionRound)
	}
}

func TestSDGFloodingInformsMostButNotAll(t *testing.T) {
	// Lemma 3.5 + Theorem 3.8 shape: SDG with small d has isolated nodes
	// (no completion) yet most nodes get informed quickly.
	m := core.NewStreaming(2000, 4, false, rng.New(4))
	m.WarmUp()
	res := Run(m, Options{})
	if res.Completed {
		t.Fatal("SDG d=4 should not complete (isolated nodes)")
	}
	if res.PeakFraction < 0.5 {
		t.Fatalf("peak fraction %v, want most nodes informed", res.PeakFraction)
	}
}

func TestFloodingDiesOutWithoutEdges(t *testing.T) {
	// d = 0: no edges ever exist, the source is informed until it dies
	// after its lifetime of n rounds.
	const n = 30
	m := core.NewStreaming(n, 0, false, rng.New(5))
	m.WarmUp()
	res := Run(m, Options{MaxRounds: 3 * n})
	if !res.DiedOut {
		t.Fatalf("flooding did not die out: %+v", res)
	}
	if res.DiedOutRound != n {
		t.Fatalf("died at round %d, want %d (source lifetime)", res.DiedOutRound, n)
	}
	if res.PeakInformed != 1 || res.EverInformed != 1 {
		t.Fatalf("counts: %+v", res)
	}
}

func TestAsynchronousInformsAtLeastDiscretized(t *testing.T) {
	// With identical seeds, asynchronous flooding dominates discretized
	// flooding round by round.
	for seed := uint64(0); seed < 5; seed++ {
		mA := core.NewPoisson(300, 8, false, rng.New(seed))
		mD := core.NewPoisson(300, 8, false, rng.New(seed))
		mA.WarmUpRounds(2000)
		mD.WarmUpRounds(2000)
		resA := Run(mA, Options{Mode: Asynchronous, MaxRounds: 30, RunToMax: true})
		resD := Run(mD, Options{Mode: Discretized, MaxRounds: 30, RunToMax: true})
		if resA.EverInformed < resD.EverInformed {
			t.Fatalf("seed %d: async %d < discretized %d", seed, resA.EverInformed, resD.EverInformed)
		}
	}
}

func TestTrajectoryShape(t *testing.T) {
	m := core.NewStreaming(200, 21, true, rng.New(6))
	m.WarmUp()
	res := Run(m, Options{KeepTrajectory: true})
	if len(res.Informed) != res.Rounds+1 || len(res.Alive) != res.Rounds+1 {
		t.Fatalf("trajectory lengths %d/%d vs rounds %d", len(res.Informed), len(res.Alive), res.Rounds)
	}
	if res.Informed[0] != 1 {
		t.Fatalf("initial informed %d", res.Informed[0])
	}
	for _, a := range res.Alive {
		if a != 200 {
			t.Fatalf("streaming alive count %d", a)
		}
	}
}

func TestRunToMax(t *testing.T) {
	g, _ := staticgraph.Complete(5)
	m := core.NewStaticModel(g, 4)
	res := Run(m, Options{MaxRounds: 7, RunToMax: true})
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
	if !res.Completed || res.CompletionRound != 1 {
		t.Fatal("completion must still be recorded at round 1")
	}
}

func TestStopAtCompletionByDefault(t *testing.T) {
	g, _ := staticgraph.Complete(5)
	m := core.NewStaticModel(g, 4)
	res := Run(m, Options{MaxRounds: 7})
	if res.Rounds != res.CompletionRound {
		t.Fatalf("run continued after completion: %+v", res)
	}
}

func TestPeakTracksFractionUnderChurn(t *testing.T) {
	m := core.NewPoisson(300, 20, true, rng.New(7))
	m.WarmUpRounds(3000)
	res := Run(m, Options{MaxRounds: 40, RunToMax: true, KeepTrajectory: true})
	if res.PeakInformed < res.FinalInformed {
		t.Fatal("peak below final")
	}
	if res.PeakFraction <= 0 || res.PeakFraction > 1 {
		t.Fatalf("peak fraction %v", res.PeakFraction)
	}
}

func TestEverInformedCountsDeadNodes(t *testing.T) {
	// Under churn, some informed nodes die; EverInformed >= FinalInformed.
	m := core.NewPoisson(200, 10, false, rng.New(8))
	m.WarmUpRounds(2000)
	res := Run(m, Options{MaxRounds: 60, RunToMax: true})
	if res.EverInformed < res.FinalInformed {
		t.Fatalf("EverInformed %d < FinalInformed %d", res.EverInformed, res.FinalInformed)
	}
	if res.EverInformed <= 1 {
		t.Fatalf("flooding spread nowhere: %+v", res)
	}
}

func TestFinalFractionEmptyNetwork(t *testing.T) {
	var r Result
	if r.FinalFraction() != 0 {
		t.Fatal("empty network fraction")
	}
}

func TestStreamingNewbornsGetInformed(t *testing.T) {
	// In SDGR completion holds per Definition 3.3 even though each round
	// births one uninformed node; with RunToMax the strict completion
	// (including the newborn before it is reached) generally lags by one
	// round but must eventually hold in a long run... strictly it can
	// never hold at the round a node is born, so check Completed only.
	m := core.NewStreaming(300, 21, true, rng.New(9))
	m.WarmUp()
	res := Run(m, Options{MaxRounds: 60, RunToMax: true})
	if !res.Completed {
		t.Fatalf("no completion: %+v", res)
	}
	// After completion the informed fraction stays near 1.
	if res.FinalFraction() < 0.99 {
		t.Fatalf("final fraction %v", res.FinalFraction())
	}
}

func BenchmarkFloodSDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := core.NewStreaming(2000, 21, true, rng.New(uint64(i)))
		m.WarmUp()
		res := Run(m, Options{})
		if !res.Completed {
			b.Fatal("unexpected non-completion")
		}
	}
}

func BenchmarkFloodPDGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := core.NewPoisson(2000, 35, true, rng.New(uint64(i)))
		m.WarmUpRounds(10000)
		Run(m, Options{})
	}
}

var sinkResult Result

// The engine-vs-reference pairs below time the same workloads on both
// implementations; cmd/benchjson emits the machine-readable version
// (BENCH_flood.json) including the large-n record.

func benchImpl(b *testing.B, run func(core.Model, Options) Result, opts Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := core.NewStreaming(5000, 21, true, rng.New(uint64(i)))
		m.WarmUp()
		b.StartTimer()
		sinkResult = run(m, opts)
	}
}

func BenchmarkFloodEngineSDGRComplete(b *testing.B) {
	benchImpl(b, Run, Options{})
}

func BenchmarkFloodReferenceSDGRComplete(b *testing.B) {
	benchImpl(b, RunReference, Options{})
}

func BenchmarkFloodEngineSDGRWindow(b *testing.B) {
	benchImpl(b, Run, Options{MaxRounds: 60, RunToMax: true})
}

func BenchmarkFloodReferenceSDGRWindow(b *testing.B) {
	benchImpl(b, RunReference, Options{MaxRounds: 60, RunToMax: true})
}

// The sharded-engine variants time the same workloads at
// Options.Parallelism = GOMAXPROCS; on a single-core box they measure
// the sharding overhead (BENCH_floodpar.json carries the swept record).

func BenchmarkFloodEngineSDGRCompleteSharded(b *testing.B) {
	benchImpl(b, Run, Options{Parallelism: runtime.GOMAXPROCS(0)})
}

func BenchmarkFloodEngineSDGRWindowSharded(b *testing.B) {
	benchImpl(b, Run, Options{MaxRounds: 60, RunToMax: true, Parallelism: runtime.GOMAXPROCS(0)})
}

func BenchmarkFloodStatic(b *testing.B) {
	g, _ := staticgraph.DOut(5000, 8, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewStaticModel(g, 8)
		sinkResult = Run(m, Options{})
	}
}

var _ = graph.Nil // keep import for helper clarity
