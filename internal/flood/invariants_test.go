package flood

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

// deterministicRand pins testing/quick's input generation (its default is
// time-seeded).
func deterministicRand() *rand.Rand { return rand.New(rand.NewSource(7)) }

// TestResultInvariantsQuick drives flooding over randomized model
// configurations and checks the structural invariants every Result must
// satisfy, regardless of model, mode or outcome.
func TestResultInvariantsQuick(t *testing.T) {
	kinds := core.Kinds()
	f := func(seed uint64, kindRaw, nRaw, dRaw uint8, async, runToMax bool) bool {
		kind := kinds[int(kindRaw)%len(kinds)]
		n := 30 + int(nRaw)%200
		d := int(dRaw) % 12
		mode := Discretized
		if async {
			mode = Asynchronous
		}
		m := core.New(kind, n, d, rng.New(seed))
		core.WarmUp(m)
		for !m.Graph().IsAlive(m.LastBorn()) {
			m.AdvanceRound() // Poisson warm-up can leave the newest node dead
		}
		res := Run(m, Options{
			Source:         m.LastBorn(),
			Mode:           mode,
			MaxRounds:      25,
			KeepTrajectory: true,
			RunToMax:       runToMax,
		})
		return checkInvariants(t, res)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: deterministicRand()}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func checkInvariants(t *testing.T, res Result) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...any) {
		t.Logf(format, args...)
		ok = false
	}
	if res.Rounds < 1 || res.Rounds > 25 {
		fail("rounds %d out of range", res.Rounds)
	}
	if len(res.Informed) != res.Rounds+1 || len(res.Alive) != res.Rounds+1 {
		fail("trajectory length %d/%d vs rounds %d", len(res.Informed), len(res.Alive), res.Rounds)
	}
	if res.Informed[0] != 1 {
		fail("initial informed %d", res.Informed[0])
	}
	peak := 0
	for i, inf := range res.Informed {
		if inf < 0 || inf > res.Alive[i] {
			fail("round %d: informed %d vs alive %d", i, inf, res.Alive[i])
		}
		if inf > peak {
			peak = inf
		}
	}
	if res.PeakInformed != peak {
		fail("peak %d, trajectory max %d", res.PeakInformed, peak)
	}
	if res.EverInformed < res.PeakInformed {
		fail("ever %d < peak %d", res.EverInformed, res.PeakInformed)
	}
	if res.FinalInformed != res.Informed[len(res.Informed)-1] {
		fail("final informed mismatch")
	}
	if res.Completed != (res.CompletionRound >= 0) {
		fail("completion flag/round inconsistent: %v %d", res.Completed, res.CompletionRound)
	}
	if res.StrictlyCompleted && !res.Completed {
		fail("strict completion without completion")
	}
	if res.StrictlyCompleted && res.StrictCompletionRound < res.CompletionRound {
		fail("strict completion before completion")
	}
	if res.DiedOut {
		if res.DiedOutRound != res.Rounds {
			fail("die-out must end the run: %d vs %d", res.DiedOutRound, res.Rounds)
		}
		if res.FinalInformed != 0 {
			fail("died out with %d informed", res.FinalInformed)
		}
	}
	if res.PeakFraction < 0 || res.PeakFraction > 1 {
		fail("peak fraction %v", res.PeakFraction)
	}
	if res.Source.IsNil() {
		fail("nil source")
	}
	return ok
}
