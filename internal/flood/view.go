package flood

import (
	"github.com/dyngraph/churnnet/internal/graph"
)

// Read-side accessors for serving layers (internal/serve): per-node and
// per-message informed state queried between Steps, and a copyable view
// of the packed informed bitsets so a publisher can answer probes from an
// immutable snapshot without touching the plane again.

// InformedAlive returns the number of currently-alive informed nodes of
// message id: the live counter for an in-flight message, the final count
// for a done or retired one. It panics on a MessageID the plane never
// issued.
func (t *Traffic) InformedAlive(id MessageID) int {
	msg := t.msg(id)
	if msg.status == MessageInFlight {
		return t.lanes[msg.laneIdx].informedAlive
	}
	return msg.res.FinalInformed
}

// Informed reports whether h is an alive node currently informed of
// message id. Meaningful for in-flight messages only: once a message is
// done its per-node membership goes stale against further churn, so done
// and retired messages report false for every node (their aggregate
// outcome stays queryable through Result). It panics on a MessageID the
// plane never issued. Call only between Steps (single-writer discipline).
func (t *Traffic) Informed(id MessageID, h graph.Handle) bool {
	msg := t.msg(id)
	if msg.status != MessageInFlight {
		return false
	}
	return t.g.IsAlive(h) && t.informed.has(h, msg.laneIdx)
}

// TrafficView is an immutable copy of a plane's packed informed state for
// the messages in flight at capture time. A serving layer captures one
// view per published snapshot version and answers node/message probes
// from it without synchronizing with the plane again; the view stays
// internally consistent (it describes exactly the capture instant) even
// as the plane advances.
type TrafficView struct {
	stride int
	words  []uint64 // slot-major informed bits, live lanes only
	gens   []uint32 // per slot: generation the bits belong to (0 = none)
	laneOf map[MessageID]int
	ids    []MessageID // in-flight messages in admission order
}

// CaptureView copies the plane's informed state for every in-flight
// message into a TrafficView, reusing reuse's storage when non-nil. Call
// only between Steps, from the goroutine driving the plane.
func (t *Traffic) CaptureView(reuse *TrafficView) *TrafficView {
	v := reuse
	if v == nil {
		v = &TrafficView{}
	}
	slots := t.informed.slots()
	v.stride = t.stride
	if cap(v.words) < slots*t.stride {
		v.words = make([]uint64, slots*t.stride)
	}
	v.words = v.words[:slots*t.stride]
	if cap(v.gens) < slots {
		v.gens = make([]uint32, slots)
	}
	v.gens = v.gens[:slots]

	for s := 0; s < slots; s++ {
		gen := t.informed.gen[s]
		h := graph.Handle{Slot: uint32(s), Gen: gen}
		w := t.informed.wordsOf(h)
		dst := v.words[s*t.stride : (s+1)*t.stride]
		if w == nil || !t.g.IsAlive(h) {
			v.gens[s] = 0
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		v.gens[s] = gen
		for i := range dst {
			dst[i] = w[i] & t.liveMask[i]
		}
	}

	v.laneOf = make(map[MessageID]int, len(t.inFlight))
	v.ids = v.ids[:0]
	for _, li := range t.inFlight {
		id := t.lanes[li].id
		v.laneOf[id] = li
		v.ids = append(v.ids, id)
	}
	return v
}

// InFlight returns the captured in-flight MessageIDs in admission order.
// The slice is owned by the view; callers must not mutate it.
func (v *TrafficView) InFlight() []MessageID { return v.ids }

// Informed reports whether h was an informed alive node for message id at
// capture time. Unknown messages (done, retired, injected after the
// capture, or never issued) report false, as do handles dead or unborn at
// capture time.
func (v *TrafficView) Informed(id MessageID, h graph.Handle) bool {
	li, ok := v.laneOf[id]
	if !ok || h.IsNil() {
		return false
	}
	s := int(h.Slot)
	if s >= len(v.gens) || v.gens[s] != h.Gen {
		return false
	}
	return v.words[s*v.stride+li>>6]&(1<<(li&63)) != 0
}
