// Package flood implements the paper's information-diffusion processes over
// the dynamic models of package core:
//
//   - Definition 3.3 (streaming flooding): I_t = (I_{t−1} ∪ ∂out(I_{t−1})) ∩ N_t;
//   - Definition 4.3 ("discretized" flooding, Poisson models): a neighbor is
//     informed only if it was adjacent to an informed node for the *whole*
//     unit interval, i.e. both endpoints survive the interval;
//   - Definition 4.2 ("asynchronous" flooding): the sender need not survive
//     the interval, and every ever-informed node that is still alive stays
//     informed.
//
// All three share one mechanism: capture the (sender, receiver) candidate
// pairs in the snapshot at time t−1, advance the model one transmission
// unit, then admit the receivers that pass the mode's survival conditions.
// For streaming models, where at most one node enters or leaves per round,
// this coincides exactly with Definition 3.3; for Poisson models it is
// Definition 4.3 (Discretized) or 4.2 (Asynchronous).
//
// Two implementations share that mechanism: RunReference captures the
// candidates by rescanning every informed node's neighborhood each round
// (the executable form of the definitions), while the cut-set engine
// behind Run maintains them incrementally from the models' edge-level
// events (see engine.go). They produce bit-for-bit identical Results.
//
// Completion follows Definition 3.3: the broadcast is complete at round t
// when I_t ⊇ N_{t−1} ∩ N_t, i.e. every alive node that was already present
// at the start of the round is informed. StrictlyComplete additionally
// requires I_t ⊇ N_t (nodes born mid-round included), which in Poisson
// models can only hold in rounds with no births.
package flood

import (
	"math/bits"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
)

// Mode selects the flooding semantics for models with churn.
type Mode uint8

// The flooding variants of Definitions 4.3 and 4.2. For streaming models
// the two coincide (at most one death per round makes the sender-survival
// distinction immaterial only in expectation, so the mode still applies;
// Definition 3.3 corresponds to Asynchronous semantics where the edge
// existed in snapshot G_{t−1}).
const (
	// Discretized requires the sender to survive the whole interval
	// (Definition 4.3) — the worst case used by the paper's upper bounds.
	Discretized Mode = iota
	// Asynchronous admits a receiver as soon as the edge existed in the
	// previous snapshot (Definitions 3.3 and 4.2).
	Asynchronous
)

// String names the mode.
func (m Mode) String() string {
	if m == Asynchronous {
		return "asynchronous"
	}
	return "discretized"
}

// Options configures a flooding run.
type Options struct {
	// Source is the initially informed node; Nil selects the model's most
	// recently born node (the paper's convention for t0).
	Source graph.Handle
	// Mode selects Discretized (default) or Asynchronous semantics.
	Mode Mode
	// MaxRounds caps the run; 0 selects DefaultMaxRounds(model.N()).
	MaxRounds int
	// KeepTrajectory records per-round informed/alive counts.
	KeepTrajectory bool
	// RunToMax keeps flooding after completion (useful when measuring
	// strict completion or re-flooding of newborns).
	RunToMax bool
	// Parallelism is the number of cut-worker shards the incremental
	// engine uses inside this one flooding run: the candidate cut is
	// partitioned by arena slot range, and the frontier drain, the
	// freeze/compaction pass and the admission sweep fan out across the
	// shards (see engine.go, "Sharded execution"). 0 or 1 runs the serial
	// engine; Auto (any negative value) picks the shard count from
	// GOMAXPROCS and the model size via AutoParallelism. Results are
	// bit-for-bit identical at every setting — the knob trades goroutine
	// overhead for multi-core wall clock within a single broadcast,
	// complementing the trial-level parallelism of internal/runner (use
	// one or the other; they compose multiplicatively). RunReference
	// ignores it.
	Parallelism int
}

// Auto, assigned to Options.Parallelism, selects the automatic worker-shard
// policy: the engine resolves it to AutoParallelism(model.N()) at run
// start. The cmds' -floodpar 0 maps here.
const Auto = -1

// AutoParallelism returns the worker-shard count the Auto policy picks for
// a network of nominal size n: one shard per 32Ki arena slots, clamped to
// [1, GOMAXPROCS] — small networks stay serial (goroutine and barrier
// overhead beats the per-slot work), large ones take every core. The
// result only spends cores; every Result is bit-for-bit identical at any
// setting (TestAutoParallelismInvariance).
func AutoParallelism(n int) int { return graph.AutoWorkers(n) }

// resolveParallelism normalizes a Parallelism option the same way at every
// engine entry point (newEngine, NewTraffic, and the expansion tracker's
// equivalent): any negative value selects the Auto policy for a network of
// nominal size n, and 0 runs serial — one worker shard. Centralizing the
// rule keeps "negative means auto" uniform instead of a per-path accident.
func resolveParallelism(par, n int) int {
	if par < 0 {
		par = AutoParallelism(n)
	}
	if par < 1 {
		par = 1
	}
	return par
}

// DefaultMaxRounds returns the default round cap for a network of nominal
// size n: generous against the paper's O(log n) completion results while
// still detecting non-completion quickly.
func DefaultMaxRounds(n int) int {
	if n < 1 {
		n = 1
	}
	return 40*bits.Len(uint(n)) + 60
}

// Result reports a flooding run.
type Result struct {
	// Source is the node the broadcast started from.
	Source graph.Handle
	// Rounds is the number of rounds executed.
	Rounds int
	// Completed reports whether some round had every pre-round node
	// informed (Definition 3.3 completion); CompletionRound is the first
	// such round (-1 if never).
	Completed       bool
	CompletionRound int
	// StrictlyCompleted reports I_t ⊇ N_t at some round; its first round
	// is StrictCompletionRound (-1 if never).
	StrictlyCompleted     bool
	StrictCompletionRound int
	// DiedOut reports that no informed node remained alive; DiedOutRound
	// is the first such round (-1 if never). A died-out broadcast can
	// never complete afterwards.
	DiedOut      bool
	DiedOutRound int
	// PeakInformed is the maximum number of simultaneously alive informed
	// nodes over the run; PeakFraction divides by the concurrent alive
	// count.
	PeakInformed int
	PeakFraction float64
	// FinalInformed and FinalAlive describe the last executed round.
	FinalInformed, FinalAlive int
	// EverInformed counts every node that was informed at least once.
	EverInformed int
	// Informed and Alive are per-round trajectories (index 0 = state at
	// start, before the first transmission), present only when
	// Options.KeepTrajectory is set.
	Informed, Alive []int
}

// FinalFraction returns FinalInformed/FinalAlive (0 when the network is
// empty).
func (r *Result) FinalFraction() float64 {
	if r.FinalAlive == 0 {
		return 0
	}
	return float64(r.FinalInformed) / float64(r.FinalAlive)
}

type pair struct {
	sender, receiver graph.Handle
}

// Run floods over m per opts and returns the outcome. It panics if no
// source node is available (empty network and Nil source).
//
// When the model guarantees the edge-event contract of
// core.EdgeEventSource (all four paper models, the static baseline and the
// overlay do), Run uses the incremental cut-set engine, which maintains
// the informed→uninformed candidate edges under churn events instead of
// rescanning every informed neighborhood each round; see engine.go. The
// engine's Result is bit-for-bit identical to RunReference's — pinned by
// the differential tests — so callers never observe which path ran. Models
// without the contract fall back to RunReference.
func Run(m core.Model, opts Options) Result {
	if es, ok := m.(core.EdgeEventSource); ok && es.EmitsEdgeEvents() {
		return runEngine(m, opts)
	}
	return RunReference(m, opts)
}

// RunReference floods over m per opts with the straightforward per-round
// full rescan of every informed node's neighborhood. It is the executable
// form of Definitions 3.3/4.2/4.3 and the oracle the cut-set engine is
// pinned against; use Run for real workloads.
func RunReference(m core.Model, opts Options) Result {
	g := m.Graph()
	src := opts.Source
	if src.IsNil() {
		src = m.LastBorn()
	}
	if !g.IsAlive(src) {
		panic("flood: source is not an alive node")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(m.N())
	}

	res := Result{
		Source:                src,
		CompletionRound:       -1,
		StrictCompletionRound: -1,
		DiedOutRound:          -1,
		PeakInformed:          1,
		EverInformed:          1,
	}
	alive0 := g.NumAlive()
	if alive0 > 0 {
		res.PeakFraction = 1 / float64(alive0)
	}
	if opts.KeepTrajectory {
		res.Informed = append(res.Informed, 1)
		res.Alive = append(res.Alive, alive0)
	}

	var informedSet, seen graph.Marks
	informedSet.Mark(src)
	informedList := []graph.Handle{src}
	var candidates []pair

	for round := 1; round <= maxRounds; round++ {
		// Capture candidate transmissions in the current snapshot. Every
		// informed node is scanned (not only the latest frontier) because
		// churn keeps attaching new edges to long-informed nodes. Each
		// sender's scan dedups its receivers with an epoch-marked scratch:
		// multigraph parallel edges and the out+in double visit of
		// Neighbors would otherwise repeat (sender, receiver) pairs, and
		// admission only needs some surviving sender per distinct pair.
		candidates = candidates[:0]
		w := 0
		for _, u := range informedList {
			if !g.IsAlive(u) {
				continue
			}
			informedList[w] = u
			w++
			seen.Reset()
			g.Neighbors(u, func(v graph.Handle) bool {
				if !informedSet.Has(v) && seen.Mark(v) {
					candidates = append(candidates, pair{sender: u, receiver: v})
				}
				return true
			})
		}
		informedList = informedList[:w]

		roundStartSeq := g.NextBirthSeq()
		m.AdvanceRound()
		res.Rounds = round

		for _, p := range candidates {
			if !g.IsAlive(p.receiver) {
				continue
			}
			if opts.Mode == Discretized && !g.IsAlive(p.sender) {
				continue
			}
			if informedSet.Mark(p.receiver) {
				informedList = append(informedList, p.receiver)
				res.EverInformed++
			}
		}

		// Round accounting over the new snapshot.
		informedAlive := 0
		required, requiredInformed := 0, 0
		strict := true
		g.ForEachAlive(func(h graph.Handle) bool {
			inf := informedSet.Has(h)
			if inf {
				informedAlive++
			} else {
				strict = false
			}
			if g.BirthSeq(h) < roundStartSeq {
				required++
				if inf {
					requiredInformed++
				}
			}
			return true
		})
		alive := g.NumAlive()
		if opts.KeepTrajectory {
			res.Informed = append(res.Informed, informedAlive)
			res.Alive = append(res.Alive, alive)
		}
		if informedAlive > res.PeakInformed {
			res.PeakInformed = informedAlive
		}
		if alive > 0 {
			if f := float64(informedAlive) / float64(alive); f > res.PeakFraction {
				res.PeakFraction = f
			}
		}
		res.FinalInformed, res.FinalAlive = informedAlive, alive

		if requiredInformed == required && !res.Completed {
			res.Completed = true
			res.CompletionRound = round
		}
		if strict && !res.StrictlyCompleted {
			res.StrictlyCompleted = true
			res.StrictCompletionRound = round
		}
		if informedAlive == 0 {
			res.DiedOut = true
			res.DiedOutRound = round
			break // absorbing: nobody is left to transmit
		}
		if res.Completed && !opts.RunToMax {
			break
		}
	}
	return res
}
