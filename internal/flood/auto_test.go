package flood

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestAutoParallelismPolicy pins the Auto worker policy's envelope: always
// in [1, GOMAXPROCS], serial for small networks, and monotone
// non-decreasing in n (more slots never means fewer workers).
func TestAutoParallelismPolicy(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	prev := 0
	for _, n := range []int{0, 1, 1000, 1 << 15, 1 << 16, 1 << 18, 1 << 20, 1 << 24} {
		w := AutoParallelism(n)
		if w < 1 || w > max {
			t.Fatalf("AutoParallelism(%d) = %d, want within [1, %d]", n, w, max)
		}
		if w < prev {
			t.Fatalf("AutoParallelism not monotone: %d workers at n=%d after %d", w, n, prev)
		}
		prev = w
	}
	if AutoParallelism(1000) != 1 {
		t.Fatalf("small networks must stay serial, got %d workers", AutoParallelism(1000))
	}
}

// TestResolveParallelism pins the shared normalization rule every engine
// entry point (single-message engine, traffic plane) routes through: ANY
// negative value selects the Auto policy — not just the Auto constant —
// and 0 runs serial. Negative values used to be honored only on the auto
// path; resolveParallelism is the uniform fix.
func TestResolveParallelism(t *testing.T) {
	const n = 1 << 20
	auto := AutoParallelism(n)
	cases := []struct{ par, want int }{
		{Auto, auto},
		{-7, auto}, // any negative, not just the Auto constant
		{0, 1},
		{1, 1},
		{6, 6},
	}
	for _, c := range cases {
		if got := resolveParallelism(c.par, n); got != c.want {
			t.Errorf("resolveParallelism(%d, %d) = %d, want %d", c.par, n, got, c.want)
		}
	}
	if got := resolveParallelism(-3, 1000); got != 1 {
		t.Errorf("negative par on a small network must resolve serial, got %d", got)
	}
}

// TestAutoParallelismInvariance pins the -floodpar 0 contract: a flood
// run with Options.Parallelism = Auto produces bit-for-bit the serial
// engine's Result (the policy resolves before the engine starts; results
// are already invariant at every explicit W).
func TestAutoParallelismInvariance(t *testing.T) {
	for _, kind := range []core.Kind{core.SDGR, core.PDGR} {
		build := func() core.Model {
			m := core.New(kind, 400, 8, rng.New(5))
			core.WarmUp(m)
			for !m.Graph().IsAlive(m.LastBorn()) {
				m.AdvanceRound()
			}
			return m
		}
		mSerial := build()
		opts := Options{Source: mSerial.LastBorn(), MaxRounds: 25, KeepTrajectory: true, Parallelism: 1}
		want := runEngine(mSerial, opts)
		opts.Parallelism = Auto
		if got := runEngine(build(), opts); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: Auto parallelism diverged from serial\ngot  %+v\nwant %+v", kind, got, want)
		}
	}
}
