package flood

import (
	"math/bits"

	"github.com/dyngraph/churnnet/internal/graph"
)

// laneBits is the traffic plane's packed per-slot lane-membership bitset:
// one bit per (arena slot, lane) pair, 64 lanes per word, laid out
// slot-major so the words of one slot are contiguous. It replaces the
// one-graph.Marks-per-lane layout — ~12 bytes per slot per lane — with
// ⌈laneCap/64⌉ words per slot shared by every lane, which is what makes
// the plane's event classification and fan-out word-parallel: a churn
// event XORs or masks whole 64-lane words instead of looping over M
// lanes.
//
// Validity follows graph.Marks' epoch/generation discipline, applied per
// slot: a slot's words count only while the stored epoch is current and
// the stored generation matches the handle's. The generation is shared
// across all lanes deliberately — a slot's current generation is a
// property of the node occupying it, not of any message, so every lane
// observing the slot agrees on it, and one uint32 per slot replaces the
// per-lane gen array that Marks would cost per message. Non-current
// state is inert: reads treat it as all-zero and the first write
// reclaims the slot by zeroing its words (the same contract
// graph.Marks.Unmark keeps for stale handles).
//
// The zero value is not ready; call init(stride) first (the plane does,
// with stride 1, and reshapes as lanes cross 64-lane word boundaries).
type laneBits struct {
	words  []uint64 // len = slots * stride, slot-major lane-membership bits
	epoch  []uint64 // per slot: epoch the words were last claimed for
	gen    []uint32 // per slot: node generation the words belong to (shared by all lanes)
	cur    uint64   // current epoch - 1, exactly like graph.Marks
	stride int      // words per slot = ceil(laneCap/64), >= 1
}

// init prepares the zero value with the given word stride.
func (b *laneBits) init(stride int) {
	if stride < 1 {
		stride = 1
	}
	b.stride = stride
}

// reset invalidates every slot in O(1) by bumping the epoch.
func (b *laneBits) reset() { b.cur++ }

// slots returns the number of arena slots currently spanned.
func (b *laneBits) slots() int { return len(b.epoch) }

// grow extends the per-slot arrays to span at least n slots. New slots
// start invalid (epoch 0). Amortized doubling, like graph.Marks.
func (b *laneBits) grow(n int) {
	if n <= len(b.epoch) {
		return
	}
	ne := make([]uint64, n*2)
	copy(ne, b.epoch)
	b.epoch = ne
	ng := make([]uint32, n*2)
	copy(ng, b.gen)
	b.gen = ng
	nw := make([]uint64, n*2*b.stride)
	copy(nw, b.words)
	b.words = nw
}

// reshape changes the word stride, preserving every slot's bits (a
// shrink truncates high-lane words; the plane only ever grows). Serial
// context only: it reallocates the word array.
func (b *laneBits) reshape(stride int) {
	if stride < 1 {
		stride = 1
	}
	if stride == b.stride {
		return
	}
	nSlots := len(b.epoch)
	nw := make([]uint64, nSlots*stride)
	min := b.stride
	if stride < min {
		min = stride
	}
	for s := 0; s < nSlots; s++ {
		copy(nw[s*stride:s*stride+min], b.words[s*b.stride:s*b.stride+min])
	}
	b.words = nw
	b.stride = stride
}

// wordsOf returns h's slot words when they are current (epoch and
// generation both match), or nil: a nil result reads as all-zero, the
// packed analogue of Marks.Has returning false. Callers must not write
// through the returned slice unless they own h's slot (shard discipline).
func (b *laneBits) wordsOf(h graph.Handle) []uint64 {
	s := int(h.Slot)
	if h.IsNil() || s >= len(b.epoch) {
		return nil
	}
	if b.epoch[s] != b.cur+1 || b.gen[s] != h.Gen {
		return nil
	}
	return b.words[s*b.stride : (s+1)*b.stride]
}

// claim validates h's slot for writing, zeroing stale words and stamping
// the current epoch and h's generation, and returns the slot's words
// plus whether the slot held no current bits before the claim (a fresh
// claim, or a current slot whose words were all zero). That second
// result is what receiver-list dedup keys on: a slot enters its owner
// shard's receiver list exactly when it transitions from untracked to
// tracked.
func (b *laneBits) claim(h graph.Handle) (w []uint64, slotWasEmpty bool) {
	b.grow(int(h.Slot) + 1)
	s := int(h.Slot)
	w = b.words[s*b.stride : (s+1)*b.stride]
	if b.epoch[s] != b.cur+1 || b.gen[s] != h.Gen {
		for i := range w {
			w[i] = 0
		}
		b.epoch[s] = b.cur + 1
		b.gen[s] = h.Gen
		return w, true
	}
	for _, x := range w {
		if x != 0 {
			return w, false
		}
	}
	return w, true
}

// set adds lane li to h's slot and reports whether the slot held no
// current bits before (see claim).
func (b *laneBits) set(h graph.Handle, li int) (slotWasEmpty bool) {
	w, empty := b.claim(h)
	w[li>>6] |= 1 << (li & 63)
	return empty
}

// has reports whether lane li currently holds h.
func (b *laneBits) has(h graph.Handle, li int) bool {
	w := b.wordsOf(h)
	return w != nil && w[li>>6]&(1<<(li&63)) != 0
}

// clear removes lane li from h's slot; a no-op when the slot is not
// current (stale state stays inert, the Unmark contract).
func (b *laneBits) clear(h graph.Handle, li int) {
	if w := b.wordsOf(h); w != nil {
		w[li>>6] &^= 1 << (li & 63)
	}
}

// clearSlot invalidates h's slot for every lane at once — the packed
// analogue of each lane's Marks dropping the node, used on death.
func (b *laneBits) clearSlot(h graph.Handle) {
	if s := int(h.Slot); !h.IsNil() && s < len(b.epoch) &&
		b.epoch[s] == b.cur+1 && b.gen[s] == h.Gen {
		b.epoch[s] = 0
	}
}

// clearLane zeroes lane li's bit column across every slot. The plane
// calls it when a retired lane index is re-granted to a new message:
// stale bits of the previous occupant are masked out of every read while
// the lane is free (liveMask), but a reused lane must start from an
// all-zero column, exactly as a fresh Marks would. O(slots).
func (b *laneBits) clearLane(li int) {
	wi, mask := li>>6, uint64(1)<<(li&63)
	for s, n := 0, len(b.epoch); s < n; s++ {
		b.words[s*b.stride+wi] &^= mask
	}
}

// onesOf returns the number of current bits on h's slot — a popcount
// over the slot's words, optionally masked.
func (b *laneBits) onesOf(h graph.Handle, mask []uint64) int {
	w := b.wordsOf(h)
	if w == nil {
		return 0
	}
	n := 0
	for i, x := range w {
		if mask != nil {
			x &= mask[i]
		}
		n += bits.OnesCount64(x)
	}
	return n
}

// footprintBytes returns the structure's informed-state footprint: the
// packed lane-membership words plus the shared per-slot epoch/gen.
func (b *laneBits) footprintBytes() int {
	return len(b.words)*8 + len(b.epoch)*8 + len(b.gen)*4
}
