package flood

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/overlay"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

// testPars sweeps the sharded-execution settings the equivalence tests
// pin: serial, two intermediate shard counts, and the machine's core
// count. Duplicates are fine (GOMAXPROCS may be 1, 2 or 4).
func testPars() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// TestEngineMatchesReference pins the equivalence contract: the cut-set
// engine — serial and at every sharded worker count — and the full-rescan
// reference produce bit-for-bit identical Results on every model × mode
// across seeded trials. Identically seeded models see identical churn
// streams (flooding consumes no randomness), so any divergence is an
// engine bookkeeping bug.
func TestEngineMatchesReference(t *testing.T) {
	modes := []Mode{Discretized, Asynchronous}
	for _, kind := range core.Kinds() {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"-"+mode.String(), func(t *testing.T) {
				t.Parallel()
				for seed := uint64(0); seed < 20; seed++ {
					n := 80 + int(seed%4)*40
					d := 2 + int(seed%9)
					opts := Options{
						Mode:           mode,
						MaxRounds:      30,
						KeepTrajectory: true,
						RunToMax:       seed%2 == 0,
					}

					build := func() core.Model {
						m := core.New(kind, n, d, rng.New(seed))
						core.WarmUp(m)
						for !m.Graph().IsAlive(m.LastBorn()) {
							m.AdvanceRound()
						}
						return m
					}
					mRef := build()
					opts.Source = mRef.LastBorn()
					want := RunReference(mRef, opts)

					for _, par := range testPars() {
						opts.Parallelism = par
						got := runEngine(build(), opts)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d (n=%d d=%d par=%d): engine and reference diverged\nengine:    %+v\nreference: %+v",
								seed, n, d, par, got, want)
						}
					}
				}
			})
		}
	}
}

// TestRunDispatchesToEngine checks that Run selects the engine for models
// with the edge-event contract and falls back to the reference otherwise —
// and that a caller cannot tell the difference.
func TestRunDispatchesToEngine(t *testing.T) {
	build := func() core.Model {
		m := core.New(core.SDGR, 200, 8, rng.New(11))
		core.WarmUp(m)
		return m
	}
	opts := Options{MaxRounds: 25, KeepTrajectory: true}
	viaRun := Run(build(), opts)
	viaEngine := runEngine(build(), opts)
	viaFallback := Run(noEdgeEvents{build()}, opts)
	if !reflect.DeepEqual(viaRun, viaEngine) {
		t.Fatalf("Run did not match the engine:\n%+v\n%+v", viaRun, viaEngine)
	}
	if !reflect.DeepEqual(viaFallback, viaRun) {
		t.Fatalf("reference fallback diverged:\n%+v\n%+v", viaFallback, viaRun)
	}
}

// noEdgeEvents hides the concrete model's EdgeEventSource implementation,
// forcing Run onto the reference path.
type noEdgeEvents struct{ core.Model }

// TestEngineRestoresHooks checks that flooding chains a caller's hooks
// while running and restores them afterwards.
func TestEngineRestoresHooks(t *testing.T) {
	m := core.New(core.PDGR, 150, 6, rng.New(3))
	core.WarmUp(m)
	births := 0
	userHooks := core.Hooks{OnBirth: func(graph.Handle) { births++ }}
	m.SetHooks(userHooks)
	Run(m, Options{MaxRounds: 15, RunToMax: true})
	if births == 0 {
		t.Fatal("caller's OnBirth hook was not chained during flooding")
	}
	after := m.Hooks()
	if after.OnDeath != nil || after.OnEdge != nil || after.OnBirth == nil {
		t.Fatalf("hooks not restored after flooding: %+v", after)
	}
	before := births
	m.AdvanceRound()
	if births == before && m.Kind().Poisson() {
		// One round of Poisson churn at n=150 virtually always births.
		t.Log("no birth in post-run round (rare but possible)")
	}
}

// TestEngineCutMatchesRecompute is the churn-heavy bookkeeping property
// test: at every freeze, the engine's frozen cut — tracked receivers with
// their compacted sender lists — must equal the cut recomputed from
// scratch out of the snapshot: for every alive uninformed node, its set of
// distinct informed alive neighbors.
func TestEngineCutMatchesRecompute(t *testing.T) {
	cases := []struct {
		kind core.Kind
		n, d int
		mode Mode
		par  int
	}{
		{core.PDGR, 120, 6, Discretized, 1},
		{core.PDGR, 120, 3, Asynchronous, 4},
		{core.PDG, 150, 4, Discretized, 2},
		{core.SDGR, 100, 5, Discretized, 4},
		{core.SDG, 100, 3, Asynchronous, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kind.String()+"-"+c.mode.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 4; seed++ {
				m := core.New(c.kind, c.n, c.d, rng.New(seed))
				core.WarmUp(m)
				for !m.Graph().IsAlive(m.LastBorn()) {
					m.AdvanceRound()
				}
				e := newEngine(m, Options{
					Source:      m.LastBorn(),
					Mode:        c.mode,
					Parallelism: c.par,
					// A horizon well past completion keeps churning the
					// informed network, exercising slot reuse and
					// regeneration against a saturated cut.
					MaxRounds: 50,
					RunToMax:  true,
				})
				round := 0
				e.onFreeze = func(nFrozen int) {
					round++
					checkFrozenCut(t, e, nFrozen, seed, round)
				}
				e.run()
				if round == 0 {
					t.Fatal("freeze never observed")
				}
			}
		})
	}
}

// checkFrozenCut compares the engine's frozen cut with a from-scratch
// recomputation over the current snapshot.
func checkFrozenCut(t *testing.T, e *engine, nFrozen int, seed uint64, round int) {
	t.Helper()
	g := e.g

	// Recompute: alive uninformed node -> set of distinct informed alive
	// neighbors.
	want := map[graph.Handle]map[graph.Handle]bool{}
	g.ForEachAlive(func(v graph.Handle) bool {
		if e.informed.Has(v) {
			return true
		}
		var set map[graph.Handle]bool
		g.Neighbors(v, func(u graph.Handle) bool {
			if e.informed.Has(u) {
				if set == nil {
					set = map[graph.Handle]bool{}
				}
				set[u] = true
			}
			return true
		})
		if set != nil {
			want[v] = set
		}
		return true
	})

	got := map[graph.Handle]map[graph.Handle]bool{}
	total := 0
	for si := range e.shards {
		sh := &e.shards[si]
		total += sh.nFrozen
		for i := 0; i < sh.nFrozen; i++ {
			v := sh.receivers[i]
			if want := e.owner(v.Slot); want != si {
				t.Fatalf("seed %d round %d: receiver %v frozen in shard %d, owner is %d", seed, round, v, si, want)
			}
			if _, dup := got[v]; dup {
				t.Fatalf("seed %d round %d: receiver %v frozen twice", seed, round, v)
			}
			if !g.IsAlive(v) || e.informed.Has(v) {
				t.Fatalf("seed %d round %d: frozen receiver %v is dead or informed", seed, round, v)
			}
			set := map[graph.Handle]bool{}
			for _, s := range e.senders[v.Slot][:sh.frozenLen[i]] {
				if !g.IsAlive(s) || !e.informed.Has(s) {
					t.Fatalf("seed %d round %d: frozen sender %v of %v is dead or uninformed", seed, round, s, v)
				}
				set[s] = true
			}
			got[v] = set
		}
	}
	if total != nFrozen {
		t.Fatalf("seed %d round %d: shards froze %d receivers, freeze reported %d", seed, round, total, nFrozen)
	}

	if len(got) != len(want) {
		t.Fatalf("seed %d round %d: frozen cut has %d receivers, recompute has %d\ngot  %v\nwant %v",
			seed, round, len(got), len(want), got, want)
	}
	for v, wantSet := range want {
		gotSet, ok := got[v]
		if !ok {
			t.Fatalf("seed %d round %d: receiver %v missing from frozen cut (want senders %v)",
				seed, round, v, wantSet)
		}
		if !reflect.DeepEqual(gotSet, wantSet) {
			t.Fatalf("seed %d round %d: receiver %v senders diverged\ngot  %v\nwant %v",
				seed, round, v, gotSet, wantSet)
		}
	}
}

// TestEngineOverlayMatchesReference extends the differential check to the
// address-gossip overlay, whose edges are dialed from bounded address
// books rather than drawn uniformly — the engine must observe them through
// the same OnEdge events as the core models.
func TestEngineOverlayMatchesReference(t *testing.T) {
	t.Parallel()
	build := func(seed uint64) core.Model {
		o := overlay.New(overlay.Config{N: 200, D: 8, MaxIn: 64}, rng.New(seed))
		o.WarmUp()
		for !o.Graph().IsAlive(o.LastBorn()) {
			o.AdvanceRound()
		}
		return o
	}
	for seed := uint64(0); seed < 3; seed++ {
		mEng, mRef := build(seed), build(seed)
		opts := Options{
			Source:         mEng.LastBorn(),
			MaxRounds:      25,
			KeepTrajectory: true,
			RunToMax:       seed%2 == 0,
			Parallelism:    int(seed) * 2, // 0 (serial), 2, 4
		}
		got := runEngine(mEng, opts)
		want := RunReference(mRef, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: overlay engine/reference diverged\n%+v\n%+v", seed, got, want)
		}
	}
}

// TestEngineStaticMatchesReference extends the differential check to the
// churn-free static baseline, where the cut structure must stay valid
// across rounds with no events at all.
func TestEngineStaticMatchesReference(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 3; seed++ {
		gEng, hs := staticgraph.DOut(400, 5, rng.New(seed))
		gRef, _ := staticgraph.DOut(400, 5, rng.New(seed))
		opts := Options{Source: hs[0], MaxRounds: 30, KeepTrajectory: true,
			Parallelism: int(seed) * 3} // 0 (serial), 3, 6
		got := runEngine(core.NewStaticModel(gEng, 5), opts)
		want := RunReference(core.NewStaticModel(gRef, 5), opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: static engine/reference diverged\n%+v\n%+v", seed, got, want)
		}
	}
}
