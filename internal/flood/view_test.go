package flood

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestTrafficInformedAccessors: the per-node read accessors agree with a
// brute-force replay — the source is informed immediately, EverInformed
// counts match the number of nodes ever reporting informed, and dead or
// foreign handles report false.
func TestTrafficInformedAccessors(t *testing.T) {
	m := core.New(core.SDGR, 300, 3, rng.New(11))
	core.WarmUp(m)
	tr := NewTraffic(m, TrafficOptions{})
	defer tr.Close()

	src := m.LastBorn()
	id := tr.Inject(src)
	if !tr.Informed(id, src) {
		t.Fatal("source not informed at injection")
	}
	if got := tr.InformedAlive(id); got != 1 {
		t.Fatalf("InformedAlive at injection = %d", got)
	}
	if tr.Informed(id, graph.Nil) {
		t.Fatal("nil handle informed")
	}

	g := m.Graph()
	for tr.Status(id) == MessageInFlight {
		tr.Step()
		// Count informed alive nodes through the accessor and compare
		// with the lane counter.
		n := 0
		g.ForEachAlive(func(h graph.Handle) bool {
			if tr.Informed(id, h) {
				n++
			}
			return true
		})
		if tr.Status(id) == MessageInFlight {
			if got := tr.InformedAlive(id); got != n {
				t.Fatalf("step %d: InformedAlive=%d, accessor count=%d", tr.Steps(), got, n)
			}
		}
	}
	res := tr.Result(id)
	if got := tr.InformedAlive(id); got != res.FinalInformed {
		t.Fatalf("done InformedAlive=%d, FinalInformed=%d", got, res.FinalInformed)
	}
	// Done messages report false per node (membership is stale).
	if tr.Informed(id, src) && !g.IsAlive(src) {
		t.Fatal("informed true for dead source on a done message")
	}
	informedAny := false
	g.ForEachAlive(func(h graph.Handle) bool {
		if tr.Informed(id, h) {
			informedAny = true
		}
		return true
	})
	if informedAny {
		t.Fatal("done message still reports per-node informed state")
	}
}

// TestTrafficCaptureView: a captured view answers exactly like the live
// accessors at the capture instant, and stays frozen while the plane
// advances.
func TestTrafficCaptureView(t *testing.T) {
	m := core.New(core.PDGR, 300, 3, rng.New(5))
	core.WarmUp(m)
	tr := NewTraffic(m, TrafficOptions{})
	defer tr.Close()
	g := m.Graph()

	id1 := tr.Inject(graph.Nil)
	for i := 0; i < 2; i++ {
		tr.Step()
	}
	id2 := tr.Inject(graph.Nil)

	var v *TrafficView
	v = tr.CaptureView(v)
	if got := v.InFlight(); len(got) == 0 {
		t.Fatal("no in-flight messages captured")
	}
	type key struct {
		id MessageID
		h  graph.Handle
	}
	truth := map[key]bool{}
	for _, id := range []MessageID{id1, id2} {
		if tr.Status(id) != MessageInFlight {
			continue
		}
		g.ForEachAlive(func(h graph.Handle) bool {
			truth[key{id, h}] = tr.Informed(id, h)
			return true
		})
	}
	for k, want := range truth {
		if got := v.Informed(k.id, k.h); got != want {
			t.Fatalf("view disagrees with live accessor at %v/%v: %v != %v", k.id, k.h, got, want)
		}
	}

	// Advance the plane; the view must not change.
	before := map[key]bool{}
	for k := range truth {
		before[k] = v.Informed(k.id, k.h)
	}
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	for k, want := range before {
		if got := v.Informed(k.id, k.h); got != want {
			t.Fatalf("view changed after Step at %v/%v", k.id, k.h)
		}
	}

	// Unknown message IDs are false, not a panic.
	if v.Informed(MessageID(999), m.LastBorn()) {
		t.Fatal("unknown message informed")
	}

	// Reuse: capturing again into the same view reflects the new state.
	v2 := tr.CaptureView(v)
	if v2 != v {
		t.Fatal("reuse allocated a new view")
	}
}

// TestTrafficCaptureViewWordSeam exercises the view across the 64-lane
// word boundary: with >64 injected messages the per-slot stride is 2 and
// lane bits above 63 live in the second word.
func TestTrafficCaptureViewWordSeam(t *testing.T) {
	m := core.New(core.SDGR, 200, 3, rng.New(9))
	core.WarmUp(m)
	tr := NewTraffic(m, TrafficOptions{RunToMax: true, MaxRounds: 50})
	defer tr.Close()
	g := m.Graph()

	var ids []MessageID
	for i := 0; i < 70; i++ {
		ids = append(ids, tr.Inject(graph.Nil))
		tr.Step()
	}
	v := tr.CaptureView(nil)
	checked := 0
	for _, id := range ids {
		if tr.Status(id) != MessageInFlight {
			continue
		}
		g.ForEachAlive(func(h graph.Handle) bool {
			if v.Informed(id, h) != tr.Informed(id, h) {
				t.Fatalf("seam mismatch msg %v node %v", id, h)
			}
			checked++
			return true
		})
	}
	if checked == 0 {
		t.Fatal("nothing checked across the seam")
	}
}
