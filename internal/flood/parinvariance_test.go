package flood

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestFloodParallelismInvariance pins the sharded engine's determinism
// contract one layer below PR 1's trial-level invariance suite: a single
// flood.Run from a core.SampleStationary snapshot returns a bit-for-bit
// identical Result at every Options.Parallelism setting. Sampling is
// deterministic given the seed, so each setting floods an identical model
// with an identical residual RNG stream; the only varying input is the
// shard count, which must never surface in the Result.
func TestFloodParallelismInvariance(t *testing.T) {
	pars := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 6; seed++ {
				n := 150 + int(seed%3)*100
				d := 3 + int(seed%7)
				opts := Options{
					MaxRounds:      25,
					KeepTrajectory: true,
					RunToMax:       seed%2 == 0,
				}
				if seed%3 == 1 {
					opts.Mode = Asynchronous
				}

				var want Result
				for i, par := range pars {
					m := core.SampleStationary(kind, n, d, rng.New(seed))
					opts.Source = m.LastBorn()
					opts.Parallelism = par
					got := Run(m, opts)
					if i == 0 {
						want = got
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d (n=%d d=%d): par %d diverged from par %d\npar %d: %+v\npar %d: %+v",
							seed, n, d, par, pars[0], par, got, pars[0], want)
					}
				}
			}
		})
	}
}
