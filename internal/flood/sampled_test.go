package flood

import (
	"reflect"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestEngineMatchesReferenceFromSampled extends the equivalence contract of
// TestEngineMatchesReference beyond warmed-up starts: flooding started from
// a core.SampleStationary snapshot must produce bit-for-bit identical
// Results on the cut-set engine and the full-rescan reference. Sampling is
// deterministic given the seed, so two identically seeded samplers build
// identical models with identical residual RNG streams — any divergence is
// an engine bookkeeping bug against the sampled-snapshot shape (e.g. SDG
// snapshots materialize no dangling out-slots, Poisson snapshots restart
// the jump chain).
func TestEngineMatchesReferenceFromSampled(t *testing.T) {
	modes := []Mode{Discretized, Asynchronous}
	for _, kind := range core.Kinds() {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"-"+mode.String(), func(t *testing.T) {
				t.Parallel()
				for seed := uint64(0); seed < 20; seed++ {
					n := 80 + int(seed%4)*40
					d := 2 + int(seed%9)
					opts := Options{
						Mode:           mode,
						MaxRounds:      30,
						KeepTrajectory: true,
						RunToMax:       seed%2 == 0,
					}

					mEng := core.SampleStationary(kind, n, d, rng.New(seed))
					mRef := core.SampleStationary(kind, n, d, rng.New(seed))
					opts.Source = mEng.LastBorn()

					got := runEngine(mEng, opts)
					want := RunReference(mRef, opts)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d (n=%d d=%d): engine and reference diverged from sampled start\nengine:    %+v\nreference: %+v",
							seed, n, d, got, want)
					}
				}
			})
		}
	}
}

// TestFloodFromSampledCompletes is the end-to-end sanity check of the
// fast-warm-up path: flooding a sampled SDGR/PDGR snapshot at the paper's
// degrees completes quickly, exactly as from a warmed snapshot.
func TestFloodFromSampledCompletes(t *testing.T) {
	for _, c := range []struct {
		kind core.Kind
		d    int
	}{
		{core.SDGR, 21},
		{core.PDGR, 35},
	} {
		m := core.SampleStationary(c.kind, 2000, c.d, rng.New(1))
		res := Run(m, Options{})
		if !res.Completed {
			t.Fatalf("%v: flooding from a sampled snapshot did not complete: %+v", c.kind, res)
		}
		if res.CompletionRound > 30 {
			t.Fatalf("%v: completion took %d rounds from a sampled snapshot", c.kind, res.CompletionRound)
		}
	}
}
