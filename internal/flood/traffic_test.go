package flood

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// nthAlive returns the alive node with the (i+1)-th highest birth sequence
// (mod alive count) — a deterministic function of the snapshot alone, so a
// traffic plane and its single-message oracle replays pick identical sources
// at identical model states. Ranking by youth keeps streaming-model sources
// from being the very nodes the next rounds evict.
func nthAlive(g *graph.Graph, i int) graph.Handle {
	var hs []graph.Handle
	g.ForEachAlive(func(v graph.Handle) bool {
		hs = append(hs, v)
		return true
	})
	if len(hs) == 0 {
		return graph.Handle{}
	}
	sort.Slice(hs, func(a, b int) bool { return g.BirthSeq(hs[a]) > g.BirthSeq(hs[b]) })
	return hs[i%len(hs)]
}

// trafficInjection records one admitted message of a plane run: when it was
// injected, from where, and under which ID.
type trafficInjection struct {
	id   MessageID
	step int
	src  graph.Handle
}

// runTrafficPlane drives one multi-message run: messages[i] is injected
// after steps[i] plane Steps from the deterministic source nthAlive(g, i),
// and the plane Steps until every message finished. It returns the final
// per-message Results in admission order.
func runTrafficPlane(m core.Model, opts TrafficOptions, steps []int) ([]Result, []trafficInjection) {
	tr := NewTraffic(m, opts)
	defer tr.Close()
	var inj []trafficInjection
	next := 0
	for step := 0; ; step++ {
		for next < len(steps) && steps[next] == step {
			src := nthAlive(m.Graph(), next)
			id := tr.Inject(src)
			inj = append(inj, trafficInjection{id: id, step: step, src: src})
			next++
		}
		if next == len(steps) && tr.Live() == 0 {
			break
		}
		tr.Step()
	}
	res := make([]Result, len(inj))
	for i, in := range inj {
		res[i] = tr.Result(in.id)
	}
	return res, inj
}

// replaySingle is the oracle arm: an identically seeded model advanced to
// the injection step, flooding once from the recorded source. Flooding
// consumes no model randomness, so the replay sees exactly the churn stream
// the plane saw.
func replaySingle(m core.Model, opts TrafficOptions, in trafficInjection) Result {
	for i := 0; i < in.step; i++ {
		m.AdvanceRound()
	}
	return Run(m, Options{
		Source:         in.src,
		Mode:           opts.Mode,
		MaxRounds:      opts.MaxRounds,
		KeepTrajectory: opts.KeepTrajectory,
		RunToMax:       opts.RunToMax,
	})
}

// TestTrafficMatchesSingleMessageOracle is the headline differential oracle:
// one multi-message run must be indistinguishable, message by message, from
// M independent single-message engine runs each replaying the same churn
// stream — every per-message Result bit-for-bit equal, across all four
// models × three injection schedules × worker counts × 20 seeds. Any
// divergence is a cross-message bookkeeping bug (lanes leaking into each
// other, shared counters miscounted, a frontier event misrouted).
func TestTrafficMatchesSingleMessageOracle(t *testing.T) {
	schedules := []string{"burst", "staggered", "poisson"}
	for _, kind := range core.Kinds() {
		for _, schedule := range schedules {
			kind, schedule := kind, schedule
			t.Run(kind.String()+"-"+schedule, func(t *testing.T) {
				t.Parallel()
				for seed := uint64(0); seed < 20; seed++ {
					n := 60 + int(seed%5)*20
					d := 2 + int(seed%8)
					messages := 3 + int(seed%4)
					gap := 1 + int(seed%3)
					mode := Discretized
					if seed%2 == 1 {
						mode = Asynchronous
					}
					opts := TrafficOptions{
						Mode:           mode,
						MaxRounds:      25,
						KeepTrajectory: true,
						RunToMax:       seed%4 == 0,
					}
					steps, err := TrafficSchedule(schedule, messages, gap, seed)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					build := func() core.Model {
						m := core.New(kind, n, d, rng.New(seed))
						core.WarmUp(m)
						return m
					}

					// The serial plane run fixes the injection record; the
					// oracle replays each message independently.
					got, inj := runTrafficPlane(build(), opts, steps)
					want := make([]Result, len(inj))
					for i, in := range inj {
						want[i] = replaySingle(build(), opts, in)
					}
					for i := range inj {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("seed %d (n=%d d=%d M=%d): message %d (step %d) diverged from its single-message replay\nplane:  %+v\nsingle: %+v",
								seed, n, d, messages, i, inj[i].step, got[i], want[i])
						}
					}

					// Every sharded setting must reproduce the serial plane
					// bit-for-bit, injections included.
					for _, par := range testPars() {
						popts := opts
						popts.Parallelism = par
						pgot, pinj := runTrafficPlane(build(), popts, steps)
						if !reflect.DeepEqual(pinj, inj) {
							t.Fatalf("seed %d par %d: injection records diverged", seed, par)
						}
						if !reflect.DeepEqual(pgot, got) {
							t.Fatalf("seed %d par %d: sharded plane diverged from serial plane\n%+v\n%+v",
								seed, par, pgot, got)
						}
					}
				}
			})
		}
	}
}

// TestTrafficNegativeControl proves the oracle has teeth, mirroring PR 5's
// stale-tracker control: a deliberately corrupted plane — one dropped
// cross-message frontier event on one target lane — must be caught by the
// per-message differential comparison, while the untouched lanes keep
// matching their replays (the corruption is confined to the lane whose event
// was dropped; lanes share no informed state).
func TestTrafficNegativeControl(t *testing.T) {
	t.Parallel()
	opts := TrafficOptions{MaxRounds: 25, KeepTrajectory: true}
	caught := 0
	const seeds = 6
	for seed := uint64(0); seed < seeds; seed++ {
		build := func() core.Model {
			m := core.New(core.SDGR, 120, 4, rng.New(seed))
			core.WarmUp(m)
			return m
		}

		// Honest plane: both messages injected as a burst at step 0.
		m := build()
		steps := []int{0, 0}
		honest, inj := runTrafficPlane(m, opts, steps)

		// Corrupted plane: identical run, except the first frontier event
		// staged for lane 1 — message 1's source scan discovering its first
		// cut edge — is dropped.
		mc := build()
		tr := NewTraffic(mc, opts)
		dropped := false
		tr.onStage = func(li int, recv, sender graph.Handle) bool {
			if li == 1 && !dropped {
				dropped = true
				return false
			}
			return true
		}
		var ids []MessageID
		for i := range steps {
			ids = append(ids, tr.Inject(nthAlive(mc.Graph(), i)))
		}
		for tr.Live() > 0 {
			tr.Step()
		}
		corrupt := []Result{tr.Result(ids[0]), tr.Result(ids[1])}
		tr.Close()

		if !dropped {
			t.Fatalf("seed %d: control never dropped an event", seed)
		}
		if !reflect.DeepEqual(corrupt[0], honest[0]) {
			t.Fatalf("seed %d: corruption of lane 1 leaked into message 0\n%+v\n%+v",
				seed, corrupt[0], honest[0])
		}
		// The oracle comparison the main test runs: corrupted message 1
		// against its single-message replay.
		want := replaySingle(build(), opts, inj[1])
		if !reflect.DeepEqual(honest[1], want) {
			t.Fatalf("seed %d: honest plane diverged from replay (harness broken)", seed)
		}
		if !reflect.DeepEqual(corrupt[1], want) {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("oracle caught 0/%d corrupted runs — the harness has no teeth", seeds)
	}
	t.Logf("oracle caught %d/%d corrupted runs", caught, seeds)
}

// TestTrafficRetireReleasesAndReuses is the memory property test: retiring
// done messages mid-run must release their lanes' per-slot state (tracked
// via the laneFootprint test hook), keeping the plane at O(live messages)
// rather than O(all ever injected) — and a late injection reusing a retired
// lane slot must behave bit-for-bit like a fresh engine at that model state.
func TestTrafficRetireReleasesAndReuses(t *testing.T) {
	t.Parallel()
	opts := TrafficOptions{MaxRounds: 30, KeepTrajectory: true}
	for seed := uint64(0); seed < 5; seed++ {
		build := func() core.Model {
			m := core.New(core.PDGR, 150, 6, rng.New(seed))
			core.WarmUp(m)
			return m
		}
		m := build()
		tr := NewTraffic(m, opts)

		// Seeds 3+ cross the 64-lane word seam: 65 lanes allocated, and
		// the late injection reuses lane index 64 — a bit column in the
		// second packed word.
		first := 4
		if seed >= 3 {
			first = 65
		}
		var ids []MessageID
		for i := 0; i < first; i++ {
			ids = append(ids, tr.Inject(nthAlive(m.Graph(), i)))
		}
		lanes0, slot0 := tr.laneFootprint()
		if lanes0 != first || slot0 == 0 {
			// Slot state appears at the first freeze at the latest; the
			// source crossing already tracks the lane arrays via cross.
			t.Logf("seed %d: pre-step footprint lanes=%d slotState=%d", seed, lanes0, slot0)
		}
		for tr.Live() > 0 {
			tr.Step()
		}
		lanesDone, _ := tr.laneFootprint()
		if lanesDone != first {
			t.Fatalf("seed %d: %d lanes allocated before retirement, want %d", seed, lanesDone, first)
		}
		for _, id := range ids {
			if tr.Status(id) != MessageDone {
				t.Fatalf("seed %d: message %d is %v after drain", seed, id, tr.Status(id))
			}
			tr.Retire(id)
			if tr.Status(id) != MessageRetired {
				t.Fatalf("seed %d: message %d not retired", seed, id)
			}
		}
		lanesRet, slotRet := tr.laneFootprint()
		if lanesRet != 0 || slotRet != 0 {
			t.Fatalf("seed %d: retirement did not release lane state: lanes=%d slotState=%d",
				seed, lanesRet, slotRet)
		}

		// Late injection into a reused lane slot: bit-for-bit a fresh
		// single-message engine at the same model state.
		stepsSoFar := tr.Steps()
		src := nthAlive(m.Graph(), 0)
		late := tr.Inject(src)
		if got, want := tr.Injected(), first+1; got != want {
			t.Fatalf("seed %d: Injected() = %d, want %d (IDs are never reused)", seed, got, want)
		}
		if lanesLate, _ := tr.laneFootprint(); lanesLate != 1 {
			t.Fatalf("seed %d: late injection allocated %d lanes, want 1 reused slot", seed, lanesLate)
		}
		for tr.Live() > 0 {
			tr.Step()
		}
		got := tr.Result(late)
		tr.Close()

		want := replaySingle(build(), opts, trafficInjection{step: stepsSoFar, src: src})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: late injection in reused lane diverged from fresh engine\n%+v\n%+v",
				seed, got, want)
		}

		// Retired Results stay queryable; retiring twice panics.
		_ = tr.Result(ids[0])
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("seed %d: double Retire did not panic", seed)
				}
			}()
			tr.Retire(ids[0])
		}()
	}
}

// TestTrafficInjectionOrderInvariance pins the determinism contract for
// same-round admissions: permuting the Inject order of messages admitted in
// the same Step permutes their MessageIDs and nothing else — every source's
// Result is unchanged, at serial and sharded settings alike (the tie-break
// is documented in DESIGN.md: lanes share no per-message state, so admission
// order is unobservable).
func TestTrafficInjectionOrderInvariance(t *testing.T) {
	t.Parallel()
	const messages = 4
	for seed := uint64(0); seed < 8; seed++ {
		mode := Discretized
		if seed%2 == 1 {
			mode = Asynchronous
		}
		opts := TrafficOptions{Mode: mode, MaxRounds: 25, KeepTrajectory: true}
		build := func() core.Model {
			m := core.New(core.PDG, 130, 5, rng.New(seed))
			core.WarmUp(m)
			return m
		}
		run := func(order []int, par int) map[graph.Handle]Result {
			m := build()
			popts := opts
			popts.Parallelism = par
			tr := NewTraffic(m, popts)
			defer tr.Close()
			srcs := make([]graph.Handle, messages)
			for i := range srcs {
				srcs[i] = nthAlive(m.Graph(), i)
			}
			ids := map[graph.Handle]MessageID{}
			for _, i := range order {
				ids[srcs[i]] = tr.Inject(srcs[i])
			}
			for tr.Live() > 0 {
				tr.Step()
			}
			out := map[graph.Handle]Result{}
			for src, id := range ids {
				out[src] = tr.Result(id)
			}
			return out
		}
		want := run([]int{0, 1, 2, 3}, 1)
		perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
		for _, perm := range perms {
			for _, par := range []int{1, 4} {
				got := run(perm, par)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: admission order %v (par=%d) changed per-message Results\n%+v\n%+v",
						seed, perm, par, got, want)
				}
			}
		}
	}
}

// TestTrafficSchedule pins the injection-schedule generator: shapes, sorted
// output, determinism, and input validation.
func TestTrafficSchedule(t *testing.T) {
	t.Parallel()
	if s, err := TrafficSchedule("burst", 5, 0, 1); err != nil || !reflect.DeepEqual(s, []int{0, 0, 0, 0, 0}) {
		t.Fatalf("burst: %v %v", s, err)
	}
	if s, err := TrafficSchedule("staggered", 4, 3, 1); err != nil || !reflect.DeepEqual(s, []int{0, 3, 6, 9}) {
		t.Fatalf("staggered: %v %v", s, err)
	}
	p1, err1 := TrafficSchedule("poisson", 16, 2, 7)
	p2, err2 := TrafficSchedule("poisson", 16, 2, 7)
	if err1 != nil || err2 != nil || !reflect.DeepEqual(p1, p2) {
		t.Fatalf("poisson not deterministic: %v %v (%v %v)", p1, p2, err1, err2)
	}
	if len(p1) != 16 {
		t.Fatalf("poisson generated %d steps, want 16", len(p1))
	}
	for i := 1; i < len(p1); i++ {
		if p1[i] < p1[i-1] {
			t.Fatalf("poisson steps not sorted: %v", p1)
		}
	}
	for _, bad := range []struct {
		schedule      string
		messages, gap int
	}{
		{"warp", 3, 1},
		{"burst", 0, 1},
		{"staggered", 3, 0},
		{"poisson", 3, -1},
	} {
		if _, err := TrafficSchedule(bad.schedule, bad.messages, bad.gap, 1); err == nil {
			t.Fatalf("TrafficSchedule(%q, %d, %d) accepted invalid input",
				bad.schedule, bad.messages, bad.gap)
		}
	}
}

// TestTrafficHookLifecycle checks that NewTraffic chains a caller's hooks
// for the plane's lifetime and Close restores them — the same nesting
// contract the single engine keeps for one run.
func TestTrafficHookLifecycle(t *testing.T) {
	t.Parallel()
	m := core.New(core.PDGR, 120, 5, rng.New(3))
	core.WarmUp(m)
	births := 0
	m.SetHooks(core.Hooks{OnBirth: func(graph.Handle) { births++ }})
	tr := NewTraffic(m, TrafficOptions{MaxRounds: 10})
	tr.Inject(nthAlive(m.Graph(), 0))
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	if births == 0 {
		t.Fatal("caller's OnBirth hook was not chained while the plane ran")
	}
	tr.Close()
	after := m.Hooks()
	if after.OnDeath != nil || after.OnEdge != nil || after.OnBirth == nil {
		t.Fatalf("hooks not restored after Close: %+v", after)
	}
	tr.Close() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Step on a closed plane did not panic")
			}
		}()
		tr.Step()
	}()
}

// TestTrafficRequiresEdgeEvents checks the constructor's contract: models
// without the edge-event guarantee have no incremental-cut path to offer.
func TestTrafficRequiresEdgeEvents(t *testing.T) {
	t.Parallel()
	m := core.New(core.SDG, 100, 3, rng.New(1))
	core.WarmUp(m)
	defer func() {
		if recover() == nil {
			t.Fatal("NewTraffic accepted a model without edge events")
		}
	}()
	NewTraffic(noEdgeEvents{m}, TrafficOptions{})
}

// TestTrafficWordBoundaryOracle runs the differential oracle at message
// counts straddling the packed bitset's 64-lane word seams — M ∈ {16,
// 63, 64, 65, 128} — across all three schedules and every worker count.
// M = 16 fits one word with headroom, 63/64/65 bracket the first seam
// (65 is the first count whose top lane lives in a second word), and 128
// fills two words exactly; any divergence at 65 or 128 that 16 misses is
// a word-indexing bug in the XOR classification, the packed scan masks,
// or the frozen-cut cursor.
func TestTrafficWordBoundaryOracle(t *testing.T) {
	for _, messages := range []int{16, 63, 64, 65, 128} {
		messages := messages
		t.Run(fmt.Sprintf("M=%d", messages), func(t *testing.T) {
			t.Parallel()
			seeds := 2
			if messages >= 128 {
				seeds = 1 // two full words; one seed keeps -race time sane
			}
			for _, schedule := range []string{"burst", "staggered", "poisson"} {
				for seed := uint64(0); seed < uint64(seeds); seed++ {
					mode := Discretized
					if (seed+uint64(messages))%2 == 1 {
						mode = Asynchronous
					}
					opts := TrafficOptions{Mode: mode, MaxRounds: 12, KeepTrajectory: true}
					steps, err := TrafficSchedule(schedule, messages, 1, seed)
					if err != nil {
						t.Fatalf("%s seed %d: %v", schedule, seed, err)
					}
					build := func() core.Model {
						m := core.New(core.SDGR, 140, 4, rng.New(seed))
						core.WarmUp(m)
						return m
					}

					got, inj := runTrafficPlane(build(), opts, steps)
					want := make([]Result, len(inj))
					for i, in := range inj {
						want[i] = replaySingle(build(), opts, in)
					}
					for i := range inj {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("%s seed %d: message %d/%d (step %d) diverged from its replay\nplane:  %+v\nsingle: %+v",
								schedule, seed, i, messages, inj[i].step, got[i], want[i])
						}
					}
					for _, par := range testPars() {
						popts := opts
						popts.Parallelism = par
						pgot, pinj := runTrafficPlane(build(), popts, steps)
						if !reflect.DeepEqual(pinj, inj) {
							t.Fatalf("%s seed %d par %d: injection records diverged", schedule, seed, par)
						}
						if !reflect.DeepEqual(pgot, got) {
							t.Fatalf("%s seed %d par %d: sharded plane diverged from serial plane",
								schedule, seed, par)
						}
					}
				}
			}
		})
	}
}

// TestTrafficNegativeControlWordSeam re-arms the corrupted-engine control
// in the second bitset word: at M = 65 the dropped frontier event targets
// lane 64, whose bit is the low bit of word 1. The oracle must still
// catch the divergence, and the corruption must stay confined to lane 64
// — in particular lane 63, its seam neighbor in word 0, must keep
// matching the honest run.
func TestTrafficNegativeControlWordSeam(t *testing.T) {
	t.Parallel()
	const messages = 65
	opts := TrafficOptions{MaxRounds: 15, KeepTrajectory: true}
	caught := 0
	const seeds = 4
	for seed := uint64(0); seed < seeds; seed++ {
		build := func() core.Model {
			m := core.New(core.SDGR, 140, 4, rng.New(seed))
			core.WarmUp(m)
			return m
		}
		steps := make([]int, messages) // burst
		m := build()
		honest, inj := runTrafficPlane(m, opts, steps)

		mc := build()
		tr := NewTraffic(mc, opts)
		dropped := false
		tr.onStage = func(li int, recv, sender graph.Handle) bool {
			if li == 64 && !dropped {
				dropped = true
				return false
			}
			return true
		}
		var ids []MessageID
		for i := 0; i < messages; i++ {
			ids = append(ids, tr.Inject(nthAlive(mc.Graph(), i)))
		}
		for tr.Live() > 0 {
			tr.Step()
		}
		corrupt := make([]Result, messages)
		for i, id := range ids {
			corrupt[i] = tr.Result(id)
		}
		tr.Close()

		if !dropped {
			t.Fatalf("seed %d: control never dropped a lane-64 event", seed)
		}
		for i := 0; i < messages; i++ {
			if i == 64 {
				continue
			}
			if !reflect.DeepEqual(corrupt[i], honest[i]) {
				t.Fatalf("seed %d: corruption of lane 64 leaked into lane %d", seed, i)
			}
		}
		want := replaySingle(build(), opts, inj[64])
		if !reflect.DeepEqual(honest[64], want) {
			t.Fatalf("seed %d: honest plane diverged from replay (harness broken)", seed)
		}
		if !reflect.DeepEqual(corrupt[64], want) {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("oracle caught 0/%d corrupted runs at the word seam", seeds)
	}
	t.Logf("oracle caught %d/%d corrupted runs", caught, seeds)
}

// TestTrafficInjectionOrderAcrossWordSeam extends the admission-order
// invariance to a lane population spanning two packed words: with 66
// same-step injections, permutations that move sources across the 64-lane
// seam (reversal swaps words wholesale; the adjacent transposition swaps
// bit 63 of word 0 with bit 0 of word 1) must leave every source's Result
// unchanged.
func TestTrafficInjectionOrderAcrossWordSeam(t *testing.T) {
	t.Parallel()
	const messages = 66
	identity := make([]int, messages)
	reversed := make([]int, messages)
	seamSwap := make([]int, messages)
	for i := 0; i < messages; i++ {
		identity[i] = i
		reversed[i] = messages - 1 - i
		seamSwap[i] = i
	}
	seamSwap[63], seamSwap[64] = 64, 63
	for seed := uint64(0); seed < 2; seed++ {
		mode := Discretized
		if seed%2 == 1 {
			mode = Asynchronous
		}
		opts := TrafficOptions{Mode: mode, MaxRounds: 15, KeepTrajectory: true}
		build := func() core.Model {
			m := core.New(core.PDG, 140, 5, rng.New(seed))
			core.WarmUp(m)
			return m
		}
		run := func(order []int, par int) map[graph.Handle]Result {
			m := build()
			popts := opts
			popts.Parallelism = par
			tr := NewTraffic(m, popts)
			defer tr.Close()
			srcs := make([]graph.Handle, messages)
			for i := range srcs {
				srcs[i] = nthAlive(m.Graph(), i)
			}
			ids := map[graph.Handle]MessageID{}
			for _, i := range order {
				ids[srcs[i]] = tr.Inject(srcs[i])
			}
			for tr.Live() > 0 {
				tr.Step()
			}
			out := map[graph.Handle]Result{}
			for src, id := range ids {
				out[src] = tr.Result(id)
			}
			return out
		}
		want := run(identity, 1)
		for _, perm := range [][]int{reversed, seamSwap} {
			for _, par := range []int{1, 4} {
				got := run(perm, par)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: seam-crossing admission order (par=%d) changed per-message Results",
						seed, par)
				}
			}
		}
	}
}

// mustPanicContaining runs fn and asserts it panics with a message
// containing want.
func mustPanicContaining(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one containing %q)", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

// TestTrafficMessageIDValidation pins the query-path contract: a
// MessageID the plane never issued panics with the documented flood:
// message instead of a raw index-out-of-range; retired and done messages
// stay queryable; and a closed plane keeps answering Status/Result while
// rejecting Retire.
func TestTrafficMessageIDValidation(t *testing.T) {
	t.Parallel()
	m := core.New(core.SDGR, 100, 4, rng.New(1))
	core.WarmUp(m)
	tr := NewTraffic(m, TrafficOptions{MaxRounds: 20})

	// Unknown IDs before anything is injected.
	mustPanicContaining(t, "flood: unknown MessageID", func() { tr.Status(0) })

	id := tr.Inject(graph.Nil)
	for _, bad := range []MessageID{-1, 1, 99} {
		bad := bad
		mustPanicContaining(t, "flood: unknown MessageID", func() { tr.Status(bad) })
		mustPanicContaining(t, "flood: unknown MessageID", func() { tr.Result(bad) })
		mustPanicContaining(t, "flood: unknown MessageID", func() { tr.Retire(bad) })
	}

	for tr.Live() > 0 {
		tr.Step()
	}
	if tr.Status(id) != MessageDone {
		t.Fatalf("message %d is %v after drain", id, tr.Status(id))
	}
	done := tr.Result(id)
	tr.Retire(id)

	// Retired: queries keep working, a second Retire is rejected.
	if tr.Status(id) != MessageRetired {
		t.Fatalf("Status after Retire = %v", tr.Status(id))
	}
	if got := tr.Result(id); !reflect.DeepEqual(got, done) {
		t.Fatal("Result changed across Retire")
	}
	mustPanicContaining(t, "flood: Retire of a message that is retired", func() { tr.Retire(id) })

	// Closed plane: Status/Result stay valid, mutations are rejected,
	// and unknown IDs still get the documented panic.
	id2 := tr.Inject(graph.Nil)
	tr.Close()
	if tr.Status(id2) != MessageInFlight {
		t.Fatalf("Status on closed plane = %v", tr.Status(id2))
	}
	_ = tr.Result(id2)
	mustPanicContaining(t, "flood: Retire on a closed Traffic plane", func() { tr.Retire(id2) })
	mustPanicContaining(t, "flood: unknown MessageID", func() { tr.Status(42) })
	mustPanicContaining(t, "flood: Inject on a closed Traffic plane", func() { tr.Inject(graph.Nil) })
}
