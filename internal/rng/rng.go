// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used by every stochastic component of churnnet.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed — including 0 — yields a well-mixed
// state. It is not cryptographically secure; it is built for reproducible
// simulation: the same seed always produces the same stream, and Split
// derives statistically independent child streams so that parallel trials
// of an experiment stay deterministic regardless of scheduling.
package rng

import "math/bits"

// RNG is a xoshiro256** generator. The zero value is NOT ready for use;
// construct one with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed via splitmix64.
// Distinct seeds yield streams that are, for simulation purposes,
// independent.
func New(seed uint64) *RNG {
	var r RNG
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state from seed, as if freshly created by New.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Split returns a new generator whose stream is independent from the
// receiver's for simulation purposes. The receiver is advanced once, so
// successive Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	// Mixing a draw through splitmix64 decorrelates the child state from
	// the parent's trajectory.
	_, h := splitmix64(r.Uint64() ^ 0xa0761d6478bd642f)
	return New(h)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's method: take the high 64 bits of a 128-bit product and
	// reject the small biased region of the low bits.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // = (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1): never exactly zero, so it
// is safe as the argument of a logarithm.
func (r *RNG) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Bool returns a uniformly random boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, with the Fisher–Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
