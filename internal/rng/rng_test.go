package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams diverge: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 agreed on %d of 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	// splitmix64 seeding must avoid the all-zero xoshiro state.
	if r.s == [4]uint64{} {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream repeated values: %d distinct of 100", len(seen))
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed does not reproduce New stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square test over 10 buckets; threshold ~ 27.9 is p=0.001 for 9 dof.
	r := New(12345)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("Intn(10) chi-square = %.2f, counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		if f := r.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open = %v out of (0,1)", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(9)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if frac := float64(trues) / draws; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true fraction = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 0.05*expected {
			t.Fatalf("Perm first-element bias at %d: counts %v", i, counts)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(77)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling splits agreed on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(123).Split()
	b := New(123).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(99)
	f := func(n uint16, _ uint8) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(100)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Each of the 64 bit positions should be set about half the time.
	r := New(1001)
	const draws = 20000
	counts := make([]int, 64)
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.5) > 0.02 {
			t.Fatalf("bit %d set fraction %v", b, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
