// Package overlay implements the unstructured peer-to-peer network that
// motivates the paper's models (Section 1.1): a Bitcoin-Core-style overlay
// in which every node keeps a target number d of outbound connections, an
// inbound cap, and a bounded address book that is seeded at join ("DNS
// seeds") and refreshed by periodic ADDR gossip. When an outbound peer
// disappears the node redials an address from its book — the realistic
// counterpart of the models' idealized uniform edge regeneration.
//
// The paper argues that "in the long run each full-node samples its
// out-neighbors from a list formed by a 'sufficiently random' subset of all
// the nodes of the network", which is why PDGR with uniform sampling is a
// reasonable abstraction. The overlay exists to test that claim: it
// implements core.Model, so the same flooding and expansion machinery runs
// on both, and experiment F21 compares them side by side.
//
// The simulation is event-driven (package eventsim): node churn follows
// the same Poisson jump dynamics as PDGR, while per-node maintenance and
// gossip timers fire with deterministic per-node phases.
package overlay

import (
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/eventsim"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Config parameterizes the overlay protocol.
type Config struct {
	// N is the expected population (churn rates λ = 1, µ = 1/N).
	N int
	// D is the target outbound-connection count (Bitcoin Core: 8).
	D int
	// MaxIn caps inbound connections (Bitcoin Core: 125); 0 = unlimited.
	MaxIn int
	// AddrBookCap bounds the address book (default 256).
	AddrBookCap int
	// SeedSize is how many addresses the DNS seed returns at join
	// (default 4·D).
	SeedSize int
	// GossipInterval is the period of ADDR gossip (default 8 time units).
	GossipInterval float64
	// GossipSample is how many book entries are advertised per gossip
	// (default 8).
	GossipSample int
	// GossipFanout is how many current neighbors receive each ADDR
	// message (default 2, like Bitcoin's addr relay).
	GossipFanout int
	// MaintenanceInterval is the period of the redial loop (default 0.5).
	MaintenanceInterval float64
	// DialAttempts bounds how many book entries a maintenance pass tries
	// per missing connection (default 8).
	DialAttempts int
}

func (c Config) withDefaults() Config {
	if c.AddrBookCap == 0 {
		c.AddrBookCap = 256
	}
	if c.SeedSize == 0 {
		c.SeedSize = 4 * c.D
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 8
	}
	if c.GossipSample == 0 {
		c.GossipSample = 8
	}
	if c.GossipFanout == 0 {
		c.GossipFanout = 2
	}
	if c.MaintenanceInterval == 0 {
		c.MaintenanceInterval = 0.5
	}
	if c.DialAttempts == 0 {
		c.DialAttempts = 8
	}
	return c
}

// Overlay is a live address-gossip P2P network. It implements core.Model:
// AdvanceRound plays one unit of simulated time (churn events, redials,
// gossip), so flood.Run and the expansion estimators apply unchanged.
type Overlay struct {
	cfg   Config
	q     eventsim.Queue
	g     *graph.Graph
	r     *rng.RNG
	books [][]graph.Handle       // per slot: known addresses
	index []map[graph.Handle]int // per slot: address -> position in books
	in    []int                  // per slot: live inbound count
	last  graph.Handle
	hooks core.Hooks

	// Stats counters over the whole run.
	dialsOK, dialsStale, dialsFull int
}

// New builds an empty overlay and schedules its churn process. Populate it
// with WarmUp (or AdvanceTime).
func New(cfg Config, r *rng.RNG) *Overlay {
	if cfg.N <= 0 || cfg.D < 0 {
		panic("overlay: Config requires N > 0 and D >= 0")
	}
	o := &Overlay{
		cfg: cfg.withDefaults(),
		g:   graph.New(cfg.N+cfg.N/2, cfg.D),
		r:   r,
	}
	o.scheduleChurn()
	return o
}

// Kind implements core.Model.
func (o *Overlay) Kind() core.Kind { return core.Overlay }

// Graph implements core.Model.
func (o *Overlay) Graph() *graph.Graph { return o.g }

// N implements core.Model.
func (o *Overlay) N() int { return o.cfg.N }

// D implements core.Model.
func (o *Overlay) D() int { return o.cfg.D }

// Now implements core.Model.
func (o *Overlay) Now() float64 { return o.q.Now() }

// LastBorn implements core.Model.
func (o *Overlay) LastBorn() graph.Handle { return o.last }

// SetHooks implements core.Model.
func (o *Overlay) SetHooks(h core.Hooks) { o.hooks = h }

// Hooks implements core.Model.
func (o *Overlay) Hooks() core.Hooks { return o.hooks }

// EmitsEdgeEvents implements core.EdgeEventSource: every overlay edge is
// dialed in maintain, which fires OnEdge.
func (o *Overlay) EmitsEdgeEvents() bool { return true }

// AdvanceRound implements core.Model: one unit of simulated time.
func (o *Overlay) AdvanceRound() { o.AdvanceTime(1) }

// AdvanceTime plays the event queue for the given duration.
func (o *Overlay) AdvanceTime(duration float64) {
	o.q.RunUntil(o.q.Now() + duration)
}

// WarmUp grows the overlay from empty for 3·N time units — enough for the
// population to reach its stationary band and for address books to mix.
func (o *Overlay) WarmUp() { o.AdvanceTime(3 * float64(o.cfg.N)) }

// DialStats returns cumulative redial outcomes: successful dials, dials
// that hit a stale address, and dials refused by a full inbound side.
func (o *Overlay) DialStats() (ok, stale, full int) {
	return o.dialsOK, o.dialsStale, o.dialsFull
}

// --- churn ---

// scheduleChurn samples the next jump-chain event (same dynamics as PDGR:
// rate N·µ + λ, birth w.p. λ/(N·µ+λ)) and queues it.
func (o *Overlay) scheduleChurn() {
	n := o.g.NumAlive()
	rate := float64(n)/float64(o.cfg.N) + 1
	dt := dist.Exponential(o.r, rate)
	birth := float64(n) == 0 || o.r.Float64()*rate < 1
	o.q.Schedule(dt, func() {
		if birth {
			o.born()
		} else {
			o.die()
		}
		o.scheduleChurn()
	})
}

func (o *Overlay) born() {
	h := o.g.AddNode(o.q.Now())
	o.last = h
	o.grow(int(h.Slot) + 1)
	o.books[h.Slot] = o.books[h.Slot][:0]
	o.index[h.Slot] = make(map[graph.Handle]int, o.cfg.AddrBookCap)
	o.in[h.Slot] = 0

	// DNS seeding: the joining node learns a bounded sample of addresses.
	// Reachability of the seed is global knowledge, exactly like the DNS
	// seeds of Bitcoin Core's bootstrap.
	for i := 0; i < o.cfg.SeedSize; i++ {
		if a := o.g.RandomAliveExcept(o.r, h); !a.IsNil() {
			o.bookAdd(h, a)
		}
	}
	o.maintain(h)
	o.schedulePeriodic(h)
	if o.hooks.OnBirth != nil {
		o.hooks.OnBirth(h)
	}
}

func (o *Overlay) die() {
	victim := o.g.RandomAlive(o.r)
	if victim.IsNil() {
		return
	}
	if o.hooks.OnDeath != nil {
		o.hooks.OnDeath(victim)
	}
	// The victim's outbound connections release inbound capacity.
	o.g.OutTargets(victim, func(t graph.Handle) bool {
		if o.in[t.Slot] > 0 {
			o.in[t.Slot]--
		}
		return true
	})
	// Peers that lose an outbound connection redial on their next
	// maintenance tick (Bitcoin's behavior) — nothing to do eagerly.
	o.g.RemoveNode(victim, nil)
}

// schedulePeriodic starts the node's maintenance and gossip loops with a
// random phase so that timers do not synchronize across the network.
func (o *Overlay) schedulePeriodic(h graph.Handle) {
	var maintTick, gossipTick func()
	maintTick = func() {
		if !o.g.IsAlive(h) {
			return
		}
		o.maintain(h)
		o.q.Schedule(o.cfg.MaintenanceInterval, maintTick)
	}
	gossipTick = func() {
		if !o.g.IsAlive(h) {
			return
		}
		o.gossip(h)
		o.q.Schedule(o.cfg.GossipInterval, gossipTick)
	}
	o.q.Schedule(o.r.Float64()*o.cfg.MaintenanceInterval, maintTick)
	o.q.Schedule(o.r.Float64()*o.cfg.GossipInterval, gossipTick)
}

// --- address book ---

func (o *Overlay) grow(n int) {
	for len(o.books) < n {
		o.books = append(o.books, nil)
		o.index = append(o.index, nil)
		o.in = append(o.in, 0)
	}
}

// bookAdd inserts addr into h's book, deduplicating via the index map
// (O(1)) and evicting a random entry when full. Dead addresses are allowed
// in (they are pruned on dial), matching the staleness of real address
// books.
func (o *Overlay) bookAdd(h, addr graph.Handle) {
	if addr == h || addr.IsNil() {
		return
	}
	idx := o.index[h.Slot]
	if _, ok := idx[addr]; ok {
		return
	}
	book := o.books[h.Slot]
	if len(book) >= o.cfg.AddrBookCap {
		i := o.r.Intn(len(book))
		delete(idx, book[i])
		book[i] = addr
		idx[addr] = i
		return
	}
	idx[addr] = len(book)
	o.books[h.Slot] = append(book, addr)
}

// bookSample returns a random book entry, pruning stale entries it trips
// over; Nil if the book is empty.
func (o *Overlay) bookSample(h graph.Handle) graph.Handle {
	book := o.books[h.Slot]
	idx := o.index[h.Slot]
	for len(book) > 0 {
		i := o.r.Intn(len(book))
		a := book[i]
		if o.g.IsAlive(a) {
			return a
		}
		delete(idx, a)
		last := book[len(book)-1]
		book[i] = last
		if last != a {
			idx[last] = i
		}
		book = book[:len(book)-1]
		o.books[h.Slot] = book
	}
	return graph.Nil
}

// --- connection maintenance ---

// maintain tops up h's outbound connections toward the target D by
// redialing addresses from the book. Dead out-slots are redirected (the
// regeneration of Definition 4.14, but sampled from the local book instead
// of the whole network); missing slots are added.
func (o *Overlay) maintain(h graph.Handle) {
	// Redirect slots whose target died.
	for idx := 0; idx < o.g.OutSlotCount(h); idx++ {
		tgt, _ := o.g.OutTarget(h, idx)
		if o.g.IsAlive(tgt) {
			continue
		}
		if a := o.dial(h); !a.IsNil() {
			o.g.RedirectOutEdge(h, idx, a)
			o.in[a.Slot]++
			if o.hooks.OnEdge != nil {
				o.hooks.OnEdge(h, a)
			}
		}
	}
	// Open new slots until the target degree is reached.
	for o.g.OutSlotCount(h) < o.cfg.D {
		a := o.dial(h)
		if a.IsNil() {
			return
		}
		o.g.AddOutEdge(h, a)
		o.in[a.Slot]++
		if o.hooks.OnEdge != nil {
			o.hooks.OnEdge(h, a)
		}
	}
}

// dial picks a connectable address: alive, not h itself, not already an
// outbound peer, and with inbound capacity. It consumes at most
// DialAttempts book samples and returns Nil on failure.
func (o *Overlay) dial(h graph.Handle) graph.Handle {
	for attempt := 0; attempt < o.cfg.DialAttempts; attempt++ {
		a := o.bookSample(h)
		if a.IsNil() {
			o.dialsStale++
			return graph.Nil
		}
		if a == h || o.alreadyPeered(h, a) {
			o.dialsStale++
			continue
		}
		if o.cfg.MaxIn > 0 && o.in[a.Slot] >= o.cfg.MaxIn {
			o.dialsFull++
			continue
		}
		o.dialsOK++
		return a
	}
	return graph.Nil
}

func (o *Overlay) alreadyPeered(h, a graph.Handle) bool {
	peered := false
	o.g.OutTargets(h, func(t graph.Handle) bool {
		if t == a {
			peered = true
			return false
		}
		return true
	})
	return peered
}

// --- gossip ---

// gossip advertises a sample of h's book (plus h's own address) to
// GossipFanout random current neighbors, who merge the entries into their
// books. This is the mechanism that keeps books "sufficiently random".
func (o *Overlay) gossip(h graph.Handle) {
	var neighbors []graph.Handle
	o.g.Neighbors(h, func(v graph.Handle) bool {
		neighbors = append(neighbors, v)
		return true
	})
	if len(neighbors) == 0 {
		return
	}
	book := o.books[h.Slot]
	for f := 0; f < o.cfg.GossipFanout; f++ {
		to := neighbors[o.r.Intn(len(neighbors))]
		o.bookAdd(to, h) // self-advertisement makes newcomers reachable
		for s := 0; s < o.cfg.GossipSample && len(book) > 0; s++ {
			o.bookAdd(to, book[o.r.Intn(len(book))])
		}
	}
}
