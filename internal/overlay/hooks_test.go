package overlay

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestOverlayDialEdgeEvents pins the overlay's side of the edge-event
// contract: every dialed connection — bootstrap dials of a newborn and
// maintenance redials after peer loss — fires OnEdge with both endpoints
// alive, and an event-maintained edge ledger balances with the graph
// exactly as it does for the core models (see the hook-contract tests in
// internal/core). Incremental observers (the flooding engine, the
// expansion tracker) depend on this to ride the overlay unchanged.
func TestOverlayDialEdgeEvents(t *testing.T) {
	o := New(Config{N: 300, D: 8, MaxIn: 64}, rng.New(1))
	o.WarmUp()
	g := o.Graph()

	edges := g.NumEdgesLive()
	onEdge, deaths := 0, 0
	o.SetHooks(core.Hooks{
		OnDeath: func(h graph.Handle) {
			deaths++
			edges -= g.DegreeLive(h)
		},
		OnEdge: func(u, v graph.Handle) {
			if !g.IsAlive(u) || !g.IsAlive(v) {
				t.Fatal("overlay OnEdge fired with a dead endpoint")
			}
			onEdge++
			edges++
		},
	})
	for round := 1; round <= 40; round++ {
		o.AdvanceRound()
		if got := g.NumEdgesLive(); got != edges {
			t.Fatalf("round %d: event ledger has %d edges, graph has %d (onEdge %d, deaths %d)",
				round, edges, got, onEdge, deaths)
		}
	}
	if onEdge == 0 || deaths == 0 {
		t.Fatalf("stream too quiet to pin the dial paths (onEdge %d, deaths %d)", onEdge, deaths)
	}
}

// TestOverlayChainedObservers chains two counting observers over the
// overlay's dial stream; both must see every event.
func TestOverlayChainedObservers(t *testing.T) {
	o := New(Config{N: 200, D: 6, MaxIn: 64}, rng.New(2))
	o.WarmUp()
	var inner, outer int
	o.SetHooks(core.Hooks{OnEdge: func(u, v graph.Handle) { inner++ }})
	o.SetHooks(core.ChainHooks(core.Hooks{OnEdge: func(u, v graph.Handle) { outer++ }}, o.Hooks()))
	for i := 0; i < 20; i++ {
		o.AdvanceRound()
	}
	if inner == 0 || inner != outer {
		t.Fatalf("chained overlay observers diverged: inner %d, outer %d", inner, outer)
	}
}
