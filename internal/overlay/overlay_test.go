package overlay

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

func testConfig(n, d int) Config {
	return Config{N: n, D: d, MaxIn: 64}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{N: 0, D: 3}, rng.New(1))
}

// TestCoreWarmUpWarmsOverlay pins the WarmUpper dispatch: core.WarmUp used
// to panic on any non-core Model; it must now warm the overlay through its
// own WarmUp implementation.
func TestCoreWarmUpWarmsOverlay(t *testing.T) {
	o := New(testConfig(300, 6), rng.New(4))
	core.WarmUp(o)
	if size := o.Graph().NumAlive(); size < 200 || size > 400 {
		t.Fatalf("core.WarmUp left population %d, want ≈300", size)
	}
}

func TestPopulationReachesStationary(t *testing.T) {
	o := New(testConfig(500, 8), rng.New(2))
	o.WarmUp()
	size := o.Graph().NumAlive()
	if size < 400 || size > 600 {
		t.Fatalf("population %d far from n=500", size)
	}
}

func TestModelInterface(t *testing.T) {
	var m core.Model = New(testConfig(200, 8), rng.New(3))
	if m.Kind() != core.Overlay {
		t.Fatalf("kind %v", m.Kind())
	}
	if m.Kind().String() != "OVERLAY" {
		t.Fatalf("kind string %q", m.Kind().String())
	}
	m.AdvanceRound()
	if m.Now() != 1 {
		t.Fatalf("now %v", m.Now())
	}
	if m.N() != 200 || m.D() != 8 {
		t.Fatal("params")
	}
}

func TestOutDegreeConvergesToD(t *testing.T) {
	const n, d = 400, 8
	o := New(testConfig(n, d), rng.New(4))
	o.WarmUp()
	g := o.Graph()
	full, total := 0, 0
	g.ForEachAlive(func(h graph.Handle) bool {
		total++
		if g.OutDegreeLive(h) == d {
			full++
		}
		return true
	})
	// Nodes redial within MaintenanceInterval of losing a peer, so nearly
	// everyone is at target degree at any instant.
	if frac := float64(full) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f of nodes at full out-degree", frac)
	}
}

func TestInboundCapRespected(t *testing.T) {
	const n, d, maxIn = 300, 8, 10
	o := New(Config{N: n, D: d, MaxIn: maxIn}, rng.New(5))
	o.WarmUp()
	g := o.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		if in := g.InDegreeLive(h); in > maxIn {
			t.Fatalf("node %v has %d inbound peers (cap %d)", h, in, maxIn)
		}
		return true
	})
	if _, _, full := o.DialStats(); full == 0 {
		t.Log("note: no dial ever hit a full peer (cap generous for this n, d)")
	}
}

func TestInCountMatchesGraph(t *testing.T) {
	o := New(testConfig(250, 6), rng.New(6))
	o.WarmUp()
	g := o.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		if got, want := o.in[h.Slot], g.InDegreeLive(h); got != want {
			t.Fatalf("in-count drift at %v: counter %d, graph %d", h, got, want)
		}
		return true
	})
}

func TestGraphInvariantsUnderProtocol(t *testing.T) {
	o := New(testConfig(150, 5), rng.New(7))
	for i := 0; i < 10; i++ {
		o.AdvanceTime(50)
		if err := o.Graph().CheckInvariants(); err != nil {
			t.Fatalf("after %d: %v", i, err)
		}
	}
}

func TestNoSelfOrDuplicateOutPeers(t *testing.T) {
	o := New(testConfig(200, 8), rng.New(8))
	o.WarmUp()
	g := o.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		seen := map[graph.Handle]bool{}
		g.OutTargets(h, func(tgt graph.Handle) bool {
			if tgt == h {
				t.Fatalf("self connection at %v", h)
			}
			if seen[tgt] {
				t.Fatalf("duplicate outbound peer at %v", h)
			}
			seen[tgt] = true
			return true
		})
		return true
	})
}

func TestBookBoundedAndFresh(t *testing.T) {
	cfg := testConfig(300, 8)
	cfg.AddrBookCap = 64
	o := New(cfg, rng.New(9))
	o.WarmUp()
	g := o.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		if len(o.books[h.Slot]) > 64 {
			t.Fatalf("book overflow: %d", len(o.books[h.Slot]))
		}
		return true
	})
}

func TestFloodingCompletesOnOverlay(t *testing.T) {
	// The Section 1.1 claim: the overlay behaves like PDGR — flooding at
	// the theorem's degree completes in O(log n) rounds.
	o := New(testConfig(500, 16), rng.New(10))
	o.WarmUp()
	src := o.LastBorn()
	if !o.Graph().IsAlive(src) {
		o.AdvanceTime(2)
		src = o.LastBorn()
	}
	res := flood.Run(o, flood.Options{Source: src})
	if !res.Completed {
		t.Fatalf("overlay flooding incomplete: %+v", res)
	}
	if res.CompletionRound > 20 {
		t.Fatalf("overlay flooding slow: %d rounds", res.CompletionRound)
	}
}

func TestNoIsolatedNodesAtSteadyState(t *testing.T) {
	o := New(testConfig(400, 8), rng.New(11))
	o.WarmUp()
	// A freshly joined node might momentarily have 0 peers, but with
	// seeded books and fast maintenance the isolated fraction stays ~0.
	if f := analysis.IsolatedFraction(o.Graph()); f > 0.01 {
		t.Fatalf("isolated fraction %v", f)
	}
}

func TestDialStatsAccumulate(t *testing.T) {
	o := New(testConfig(300, 8), rng.New(12))
	o.WarmUp()
	ok, stale, full := o.DialStats()
	if ok == 0 {
		t.Fatal("no successful dials")
	}
	if ok < stale+full {
		t.Logf("note: dials ok=%d stale=%d full=%d", ok, stale, full)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(testConfig(200, 8), rng.New(13))
	b := New(testConfig(200, 8), rng.New(13))
	a.AdvanceTime(300)
	b.AdvanceTime(300)
	if a.Graph().NumAlive() != b.Graph().NumAlive() ||
		a.Graph().NumEdgesLive() != b.Graph().NumEdgesLive() {
		t.Fatal("same seed diverged")
	}
}

func TestHooksFire(t *testing.T) {
	o := New(testConfig(100, 4), rng.New(14))
	births, deaths := 0, 0
	o.SetHooks(core.Hooks{
		OnBirth: func(graph.Handle) { births++ },
		OnDeath: func(graph.Handle) { deaths++ },
	})
	o.AdvanceTime(200)
	if births == 0 || deaths == 0 {
		t.Fatalf("hooks births=%d deaths=%d", births, deaths)
	}
	if births-deaths != o.Graph().NumAlive() {
		t.Fatalf("conservation: %d - %d != %d", births, deaths, o.Graph().NumAlive())
	}
}

func TestMeanDegreeNearTwiceD(t *testing.T) {
	// Every live edge is someone's outbound connection, so mean total
	// degree ≈ 2d when nearly all nodes sit at the target out-degree.
	const d = 8
	o := New(testConfig(400, d), rng.New(15))
	o.WarmUp()
	ds := analysis.Degrees(o.Graph())
	if math.Abs(ds.Mean-2*d) > 1.5 {
		t.Fatalf("mean degree %v, want ≈ %d", ds.Mean, 2*d)
	}
}

func BenchmarkOverlayAdvance(b *testing.B) {
	o := New(testConfig(2000, 8), rng.New(1))
	o.WarmUp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.AdvanceRound()
	}
}
