// Package churn implements the two node-churn processes of the paper in
// isolation from any graph topology:
//
//   - the streaming churn of Definition 3.2 (one birth per round, lifetime
//     exactly n rounds), and
//   - the Poisson churn of Definition 4.1, simulated through its jump chain
//     (Definition 4.5 / Lemma 4.6): with N alive nodes the wait to the next
//     event is Exponential(Nµ+λ), the event is a birth with probability
//     λ/(Nµ+λ) and otherwise the death of a uniformly random alive node.
//
// The graph models in package core drive the same processes against a
// topology; this package additionally offers Population, a lightweight
// node-set-only simulator used to measure the churn lemmas (4.4, 4.7, 4.8)
// at scales where building edges would be wasted work.
package churn

import (
	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/rng"
)

// EventKind distinguishes births from deaths.
type EventKind uint8

// The two jump-chain event kinds.
const (
	Birth EventKind = iota
	Death
)

// String names the event kind.
func (k EventKind) String() string {
	if k == Birth {
		return "birth"
	}
	return "death"
}

// Poisson generates the jump chain of the Poisson churn process. It decides
// *when* the next event happens and *whether* it is a birth, given the
// current population size; victim selection is the caller's job (uniform
// over its alive set), keeping this type independent of any node storage.
type Poisson struct {
	Lambda float64 // birth rate (the paper fixes λ = 1)
	Mu     float64 // death rate per node (the paper sets µ = 1/n)
}

// NewPoisson returns the paper's parameterization: λ = 1, µ = 1/n, so the
// stationary expected population is n.
func NewPoisson(n int) Poisson {
	if n <= 0 {
		panic("churn: NewPoisson requires n > 0")
	}
	return Poisson{Lambda: 1, Mu: 1 / float64(n)}
}

// Next samples the next jump-chain step given n alive nodes: the waiting
// time dt ~ Exponential(nµ+λ) and the event kind (birth with probability
// λ/(nµ+λ), per Lemma 4.6). With n = 0 the only possible event is a birth.
func (p Poisson) Next(r *rng.RNG, n int) (dt float64, kind EventKind) {
	if n < 0 {
		panic("churn: negative population")
	}
	rate := float64(n)*p.Mu + p.Lambda
	dt = dist.Exponential(r, rate)
	if n == 0 || r.Float64()*rate < p.Lambda {
		return dt, Birth
	}
	return dt, Death
}

// BirthProb returns the probability that the next event is a birth when n
// nodes are alive.
func (p Poisson) BirthProb(n int) float64 {
	rate := float64(n)*p.Mu + p.Lambda
	return p.Lambda / rate
}

// Streaming is the clock of the streaming churn: at every round one node is
// born and, once the network holds n nodes, the oldest node (born exactly n
// rounds ago) dies. It tracks only round arithmetic; the caller owns node
// storage.
type Streaming struct {
	n     int
	round int
}

// NewStreaming returns a streaming churn with lifetime n. It panics if
// n <= 0.
func NewStreaming(n int) *Streaming {
	if n <= 0 {
		panic("churn: NewStreaming requires n > 0")
	}
	return &Streaming{n: n}
}

// N returns the lifetime parameter (= steady-state network size).
func (s *Streaming) N() int { return s.n }

// Round returns the number of completed rounds.
func (s *Streaming) Round() int { return s.round }

// Tick advances one round and reports whether a death occurs this round
// (true from round n+1 onward: the node born at round t−n dies at round t).
func (s *Streaming) Tick() (dies bool) {
	s.round++
	return s.round > s.n
}

// FastForward advances the clock by k rounds without reporting the
// intermediate deaths — the O(1) companion of k Tick calls for callers that
// reconstruct the node population some other way (the stationary-snapshot
// sampler of package core). It panics if k < 0.
func (s *Streaming) FastForward(k int) {
	if k < 0 {
		panic("churn: FastForward requires k >= 0")
	}
	s.round += k
}

// Population simulates Poisson churn over an anonymous node set: it tracks,
// per alive node, only the jump-chain round at which it was born. It is the
// measurement substrate for the pure-churn lemmas.
type Population struct {
	proc Poisson
	r    *rng.RNG

	time       float64
	round      int
	birthRound []int // one entry per alive node, in arbitrary order

	// Counters over the whole history.
	births, deaths int

	// pending carries the jump-chain event whose wait overshot the last
	// AdvanceTime horizon (residual wait + kind), making advancement
	// chunking-invariant; see Population.AdvanceTime.
	pendingDt   float64
	pendingKind EventKind
	hasPending  bool
}

// NewPopulation returns an empty population with the paper's λ=1, µ=1/n
// churn, driven by r.
func NewPopulation(n int, r *rng.RNG) *Population {
	return &Population{proc: NewPoisson(n), r: r, birthRound: make([]int, 0, 2*n)}
}

// Size returns the number of alive nodes.
func (p *Population) Size() int { return len(p.birthRound) }

// Time returns the continuous model time.
func (p *Population) Time() float64 { return p.time }

// Round returns the jump-chain round counter (the r of Definition 4.5).
func (p *Population) Round() int { return p.round }

// Births and Deaths return the historical event counts.
func (p *Population) Births() int { return p.births }

// Deaths returns the number of death events so far.
func (p *Population) Deaths() int { return p.deaths }

// next returns the pending carried event if one exists, otherwise samples a
// fresh jump-chain step.
func (p *Population) next() (dt float64, kind EventKind) {
	if p.hasPending {
		p.hasPending = false
		return p.pendingDt, p.pendingKind
	}
	return p.proc.Next(p.r, len(p.birthRound))
}

// apply executes one jump-chain event.
func (p *Population) apply(kind EventKind) {
	if kind == Birth {
		p.birthRound = append(p.birthRound, p.round)
		p.births++
		return
	}
	i := p.r.Intn(len(p.birthRound))
	p.birthRound[i] = p.birthRound[len(p.birthRound)-1]
	p.birthRound = p.birthRound[:len(p.birthRound)-1]
	p.deaths++
}

// Step advances one jump-chain round and returns the event that occurred.
func (p *Population) Step() EventKind {
	dt, kind := p.next()
	p.time += dt
	p.round++
	p.apply(kind)
	return kind
}

// StepRounds advances k jump-chain rounds.
func (p *Population) StepRounds(k int) {
	for i := 0; i < k; i++ {
		p.Step()
	}
}

// AdvanceTime runs the chain until at least duration time units have
// elapsed. The event whose exponential wait overshoots the deadline is
// carried — residual wait and already-sampled kind — to the next call, so
// AdvanceTime(a); AdvanceTime(b) drains the RNG exactly like
// AdvanceTime(a+b) and trajectories are independent of snapshot
// granularity. The carried residual keeps the correct law: no event is
// applied in between, so the population (hence the rate and the
// birth/death split) is unchanged, and the exponential residual is again
// exponential by memorylessness.
func (p *Population) AdvanceTime(duration float64) {
	target := p.time + duration
	for {
		dt, kind := p.next()
		if p.time+dt > target {
			p.pendingDt = p.time + dt - target
			p.pendingKind = kind
			p.hasPending = true
			p.time = target
			return
		}
		p.time += dt
		p.round++
		p.apply(kind)
	}
}

// AgesInRounds returns the age (in jump-chain rounds) of every alive node.
func (p *Population) AgesInRounds() []int {
	out := make([]int, len(p.birthRound))
	for i, b := range p.birthRound {
		out[i] = p.round - b
	}
	return out
}

// MaxAgeRounds returns the largest age in rounds among alive nodes (0 if
// empty).
func (p *Population) MaxAgeRounds() int {
	maxAge := 0
	for _, b := range p.birthRound {
		if age := p.round - b; age > maxAge {
			maxAge = age
		}
	}
	return maxAge
}
