package churn

import (
	"sort"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func populationState(p *Population) (time float64, round, size, births, deaths int, ages []int) {
	ages = p.AgesInRounds()
	sort.Ints(ages)
	return p.Time(), p.Round(), p.Size(), p.Births(), p.Deaths(), ages
}

// TestPopulationAdvanceTimeChunkingInvariant is the Population twin of the
// core.Poisson regression test: advancing the same timeline in different
// chunk sizes must consume the RNG identically and land in the same state,
// because the event that overshoots a horizon is carried (residual wait
// plus kind) instead of being resampled.
func TestPopulationAdvanceTimeChunkingInvariant(t *testing.T) {
	const n = 200
	for seed := uint64(0); seed < 5; seed++ {
		oneShot := NewPopulation(n, rng.New(seed))
		perUnit := NewPopulation(n, rng.New(seed))
		ragged := NewPopulation(n, rng.New(seed))

		const horizon = 3 * n
		oneShot.AdvanceTime(horizon)
		for i := 0; i < horizon; i++ {
			perUnit.AdvanceTime(1)
		}
		for elapsed := 0.0; elapsed < horizon; elapsed += 1.3 {
			step := 1.3
			if horizon-elapsed < step {
				step = horizon - elapsed
			}
			ragged.AdvanceTime(step)
		}

		tA, rA, sA, bA, dA, agesA := populationState(oneShot)
		for name, p := range map[string]*Population{"per-unit": perUnit, "ragged": ragged} {
			tB, rB, sB, bB, dB, agesB := populationState(p)
			if tA != tB || rA != rB || sA != sB || bA != bB || dA != dB {
				t.Fatalf("seed %d: %s chunking diverged: (%v,%d,%d,%d,%d) vs (%v,%d,%d,%d,%d)",
					seed, name, tA, rA, sA, bA, dA, tB, rB, sB, bB, dB)
			}
			if len(agesA) != len(agesB) {
				t.Fatalf("seed %d: %s age multiset sizes diverged", seed, name)
			}
			for i := range agesA {
				if agesA[i] != agesB[i] {
					t.Fatalf("seed %d: %s age multisets diverged", seed, name)
				}
			}
		}

		// The carried event must keep subsequent stepping in lockstep too.
		for i := 0; i < 100; i++ {
			if oneShot.Step() != perUnit.Step() {
				t.Fatalf("seed %d: post-advance Step %d diverged", seed, i)
			}
		}
	}
}
