package churn

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func TestPoissonBirthProb(t *testing.T) {
	p := NewPoisson(1000)
	// At the stationary size n, birth and death rates are equal: prob 1/2.
	if got := p.BirthProb(1000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("BirthProb(n) = %v", got)
	}
	if got := p.BirthProb(0); got != 1 {
		t.Fatalf("BirthProb(0) = %v", got)
	}
	// Larger populations die more often than they are born.
	if p.BirthProb(2000) >= 0.5 {
		t.Fatal("BirthProb must fall below 1/2 above n")
	}
	if p.BirthProb(500) <= 0.5 {
		t.Fatal("BirthProb must exceed 1/2 below n")
	}
}

func TestPoissonNextEmptyAlwaysBirth(t *testing.T) {
	p := NewPoisson(100)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if _, kind := p.Next(r, 0); kind != Birth {
			t.Fatal("empty population produced a death")
		}
	}
}

func TestPoissonNextWaitMean(t *testing.T) {
	// With N = n, total rate is 2λ = 2, so mean wait is 1/2.
	p := NewPoisson(500)
	r := rng.New(2)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		dt, _ := p.Next(r, 500)
		sum += dt
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean wait %v, want 0.5", mean)
	}
}

func TestPoissonEventProbabilitiesLemma46(t *testing.T) {
	// Lemma 4.6: death probability = Nµ/(Nµ+λ). Check empirically at a
	// size away from the stationary point.
	p := NewPoisson(1000)
	r := rng.New(3)
	const nAlive, draws = 1500, 200000
	deaths := 0
	for i := 0; i < draws; i++ {
		if _, kind := p.Next(r, nAlive); kind == Death {
			deaths++
		}
	}
	want := 1.5 / 2.5 // Nµ/(Nµ+λ) with Nµ = 1.5, λ = 1
	if got := float64(deaths) / draws; math.Abs(got-want) > 0.005 {
		t.Fatalf("death fraction %v, want %v", got, want)
	}
}

func TestNewPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoisson(0) did not panic")
		}
	}()
	NewPoisson(0)
}

func TestStreamingTick(t *testing.T) {
	s := NewStreaming(3)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	// Rounds 1..3 have no deaths; round 4 onward always one death.
	for i := 0; i < 3; i++ {
		if s.Tick() {
			t.Fatalf("death in growth phase round %d", s.Round())
		}
	}
	for i := 0; i < 5; i++ {
		if !s.Tick() {
			t.Fatalf("no death in steady state round %d", s.Round())
		}
	}
	if s.Round() != 8 {
		t.Fatalf("Round = %d", s.Round())
	}
}

// TestStreamingFastForward checks that FastForward(k) lands the clock in
// the same state as k Ticks, and that k = 0 is a no-op.
func TestStreamingFastForward(t *testing.T) {
	a, b := NewStreaming(5), NewStreaming(5)
	for i := 0; i < 12; i++ {
		a.Tick()
	}
	b.FastForward(12)
	if a.Round() != b.Round() {
		t.Fatalf("FastForward(12) round = %d, Tick×12 round = %d", b.Round(), a.Round())
	}
	b.FastForward(0)
	if b.Round() != 12 {
		t.Fatalf("FastForward(0) moved the clock to %d", b.Round())
	}
	// The next Tick after a fast-forward past n must report a death.
	if !b.Tick() {
		t.Fatal("no death after fast-forward into steady state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FastForward(-1) did not panic")
		}
	}()
	b.FastForward(-1)
}

func TestNewStreamingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStreaming(0) did not panic")
		}
	}()
	NewStreaming(0)
}

func TestPopulationGrowsToStationary(t *testing.T) {
	// Lemma 4.4 shape: after time >= 3n the size is within [0.9n, 1.1n]
	// w.h.p. Check a single long run stays in band at several checkpoints.
	const n = 2000
	p := NewPopulation(n, rng.New(4))
	p.AdvanceTime(5 * n)
	for i := 0; i < 10; i++ {
		p.AdvanceTime(n / 2)
		size := p.Size()
		if size < int(0.9*n) || size > int(1.1*n) {
			t.Fatalf("checkpoint %d: size %d outside [0.9n, 1.1n]", i, size)
		}
	}
}

func TestPopulationBirthDeathBalance(t *testing.T) {
	const n = 1000
	p := NewPopulation(n, rng.New(5))
	p.AdvanceTime(3 * n)
	base := p.Round()
	births0 := p.Births()
	p.StepRounds(200000)
	frac := float64(p.Births()-births0) / float64(p.Round()-base)
	// Lemma 4.7: birth fraction within [0.47, 0.53] at stationarity.
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("birth fraction %v outside Lemma 4.7 band", frac)
	}
}

func TestPopulationStepAccounting(t *testing.T) {
	p := NewPopulation(100, rng.New(6))
	for i := 0; i < 5000; i++ {
		p.Step()
	}
	if p.Round() != 5000 {
		t.Fatalf("round = %d", p.Round())
	}
	if p.Births()-p.Deaths() != p.Size() {
		t.Fatalf("births %d - deaths %d != size %d", p.Births(), p.Deaths(), p.Size())
	}
	if p.Time() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestPopulationAges(t *testing.T) {
	p := NewPopulation(500, rng.New(7))
	p.StepRounds(20000)
	ages := p.AgesInRounds()
	if len(ages) != p.Size() {
		t.Fatalf("ages length %d != size %d", len(ages), p.Size())
	}
	maxAge := 0
	for _, a := range ages {
		if a < 0 {
			t.Fatal("negative age")
		}
		if a > maxAge {
			maxAge = a
		}
	}
	if got := p.MaxAgeRounds(); got != maxAge {
		t.Fatalf("MaxAgeRounds = %d, want %d", got, maxAge)
	}
}

func TestPopulationMaxAgeLemma48(t *testing.T) {
	// Lemma 4.8 shape: w.h.p. no alive node is older than 7·n·ln n rounds.
	const n = 500
	p := NewPopulation(n, rng.New(8))
	p.StepRounds(int(10 * n * math.Log(n)))
	bound := int(7 * n * math.Log(n))
	if got := p.MaxAgeRounds(); got > bound {
		t.Fatalf("max age %d exceeds 7n·ln n = %d", got, bound)
	}
}

func TestPopulationAdvanceTimeSetsExactTime(t *testing.T) {
	p := NewPopulation(100, rng.New(9))
	p.AdvanceTime(123.5)
	if math.Abs(p.Time()-123.5) > 1e-9 {
		t.Fatalf("time = %v", p.Time())
	}
	p.AdvanceTime(0.5)
	if math.Abs(p.Time()-124.0) > 1e-9 {
		t.Fatalf("time = %v", p.Time())
	}
}

func TestPopulationLifetimeMeanIsN(t *testing.T) {
	// Individual lifetimes are Exp(1/n): mean lifetime n time units.
	// Track via birth/death flow: in steady state, deaths per unit time
	// ≈ 1, so size ≈ n. Verify mean size over a long window.
	const n = 1000
	p := NewPopulation(n, rng.New(10))
	p.AdvanceTime(6 * n)
	sum, samples := 0.0, 0
	for i := 0; i < 200; i++ {
		p.AdvanceTime(float64(n) / 20)
		sum += float64(p.Size())
		samples++
	}
	mean := sum / float64(samples)
	if math.Abs(mean-n) > 0.05*n {
		t.Fatalf("mean size %v, want ~%d", mean, n)
	}
}

func TestEventKindString(t *testing.T) {
	if Birth.String() != "birth" || Death.String() != "death" {
		t.Fatal("EventKind.String wrong")
	}
}

func BenchmarkPopulationStep(b *testing.B) {
	p := NewPopulation(10000, rng.New(1))
	p.AdvanceTime(30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
