package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorKnownData(t *testing.T) {
	var a Accumulator
	a.AddN(2, 4, 4, 4, 5, 5, 7, 9)
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Fatal("variance of one observation must be 0")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("min/max of single observation")
	}
}

func TestAccumulatorNegativeValues(t *testing.T) {
	var a Accumulator
	a.AddN(-5, -1, -3)
	if a.Min() != -5 || a.Max() != -1 {
		t.Fatalf("min/max with negatives: %v/%v", a.Min(), a.Max())
	}
}

func TestCI95CoversMean(t *testing.T) {
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(float64(i % 10))
	}
	lo, hi := a.CI95()
	if lo > a.Mean() || hi < a.Mean() {
		t.Fatalf("CI [%v,%v] does not cover mean %v", lo, hi, a.Mean())
	}
}

func TestQuickAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, v := range raw {
			xs[i] = float64(v)
			a.Add(xs[i])
		}
		return almostEqual(a.Mean(), Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almostEqual(a.Variance(), Variance(xs), 1e-6*(1+a.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("interpolated quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5}
	qs := []float64{0, 0.25, 0.5, 0.75, 1}
	batch := Quantiles(xs, qs...)
	for i, q := range qs {
		if batch[i] != Quantile(xs, q) {
			t.Fatalf("Quantiles[%v] = %v != Quantile %v", q, batch[i], Quantile(xs, q))
		}
	}
}

func TestMedianSingleton(t *testing.T) {
	if Median([]float64{42}) != 42 {
		t.Fatal("median of singleton")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("center 0 = %v", got)
	}
	if got := h.BinCenter(4); !almostEqual(got, 9, 1e-12) {
		t.Fatalf("center 4 = %v", got)
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.7)
	h.Add(5) // over
	if got := h.Fraction(0); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("fraction = %v", got)
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	// A value infinitesimally below Hi must land in the last bin, not panic.
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("edge value not in last bin: %v", h.Counts)
	}
}

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	fit := LinReg(xs, ys)
	if !almostEqual(fit.A, 3, 1e-9) || !almostEqual(fit.B, 2, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if !almostEqual(fit.Eval(10), 23, 1e-9) {
		t.Fatalf("Eval = %v", fit.Eval(10))
	}
}

func TestLinRegNoisyR2(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2, 4, 5, 8, 9, 13}
	fit := LinReg(xs, ys)
	if fit.R2 <= 0.9 || fit.R2 > 1 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if fit.B <= 0 {
		t.Fatalf("slope = %v", fit.B)
	}
}

func TestLinRegConstantY(t *testing.T) {
	fit := LinReg([]float64{1, 2, 3}, []float64{7, 7, 7})
	if !almostEqual(fit.B, 0, 1e-12) || !almostEqual(fit.A, 7, 1e-12) || fit.R2 != 1 {
		t.Fatalf("constant fit = %+v", fit)
	}
}

func TestLogFitExact(t *testing.T) {
	// y = 1 + 4 ln x.
	xs := []float64{1, math.E, math.E * math.E, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 4*math.Log(x)
	}
	fit := LogFit(xs, ys)
	if !almostEqual(fit.A, 1, 1e-9) || !almostEqual(fit.B, 4, 1e-9) {
		t.Fatalf("log fit = %+v", fit)
	}
	if !almostEqual(fit.EvalLog(100), 1+4*math.Log(100), 1e-9) {
		t.Fatal("EvalLog mismatch")
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFit with x=0 did not panic")
		}
	}()
	LogFit([]float64{0, 1}, []float64{1, 2})
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLDivergence(p, p); got != 0 {
		t.Fatalf("D(p||p) = %v", got)
	}
	q := []float64{0.9, 0.1}
	if got := KLDivergence(p, q); got <= 0 {
		t.Fatalf("D(p||q) = %v, want > 0", got)
	}
	// Known value: D([1,0] || [0.5,0.5]) = 1 bit.
	if got := KLDivergence([]float64{1, 0}, []float64{0.5, 0.5}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("D = %v, want 1", got)
	}
}

func TestKLDivergenceNonNegativeQuick(t *testing.T) {
	// Gibbs' inequality (paper Theorem A.3): D(p||q) >= 0 always.
	f := func(raw [6]uint8) bool {
		var p, q [3]float64
		sp, sq := 0.0, 0.0
		for i := 0; i < 3; i++ {
			p[i] = float64(raw[i]) + 1 // strictly positive
			q[i] = float64(raw[i+3]) + 1
			sp += p[i]
			sq += q[i]
		}
		for i := 0; i < 3; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		return KLDivergence(p[:], q[:]) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLDivergencePanics(t *testing.T) {
	cases := []func(){
		func() { KLDivergence([]float64{1}, []float64{0.5, 0.5}) },
		func() { KLDivergence([]float64{0.5, 0.5}, []float64{1, 0}) },
		func() { KLDivergence([]float64{0.7, 0.7}, []float64{0.5, 0.5}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	if !almostEqual(out[0], 0.25, 1e-12) || !almostEqual(out[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", out)
	}
}

func TestFractionTrue(t *testing.T) {
	if FractionTrue(nil) != 0 {
		t.Fatal("empty fraction")
	}
	if got := FractionTrue([]bool{true, false, true, true}); !almostEqual(got, 0.75, 1e-12) {
		t.Fatalf("fraction = %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson [%v,%v] must bracket 0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Fatalf("Wilson [%v,%v] too wide for n=100", lo, hi)
	}
	// Degenerate cases stay in [0,1].
	lo, hi = WilsonInterval(0, 10)
	if lo != 0 || hi <= 0 || hi > 1 {
		t.Fatalf("Wilson(0,10) = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(10, 10)
	if hi != 1 || lo >= 1 || lo < 0 {
		t.Fatalf("Wilson(10,10) = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%v,%v]", lo, hi)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestAccumulatorString(t *testing.T) {
	var a Accumulator
	a.AddN(1, 2, 3)
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
