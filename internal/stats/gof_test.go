package stats

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestKolmogorovSmirnovHandComputed pins the two-sample statistic on small
// cases worked out by hand.
func TestKolmogorovSmirnovHandComputed(t *testing.T) {
	// Identical samples: D = 0, p = 1.
	d, p := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3})
	almost(t, "D(identical)", d, 0, 0)
	almost(t, "p(identical)", p, 1, 0)

	// xs = {1,2,3}, ys = {1.5,2.5,3.5}: after each xs point the empirical
	// CDFs differ by 1/3; D = 1/3.
	d, _ = KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1.5, 2.5, 3.5})
	almost(t, "D(interleaved)", d, 1.0/3, 1e-12)

	// Disjoint supports: D = 1.
	d, p = KolmogorovSmirnov([]float64{1, 2}, []float64{10, 11, 12})
	almost(t, "D(disjoint)", d, 1, 0)
	if p > 0.2 {
		t.Errorf("p(disjoint) = %v, want small", p)
	}

	// Ties across samples must not inflate D: {1,1,2} vs {1,2,2} has
	// F1-F2 = 2/3-1/3 = 1/3 after value 1.
	d, _ = KolmogorovSmirnov([]float64{1, 1, 2}, []float64{1, 2, 2})
	almost(t, "D(ties)", d, 1.0/3, 1e-12)
}

// TestKolmogorovSmirnovDistinguishes runs the test on deterministic grids:
// equal distributions pass, shifted ones fail.
func TestKolmogorovSmirnovDistinguishes(t *testing.T) {
	var same1, same2, shifted []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 500
		same1 = append(same1, x)
		same2 = append(same2, x+0.0001)
		shifted = append(shifted, x*x) // a different law on [0,1)
	}
	if _, p := KolmogorovSmirnov(same1, same2); p < 0.5 {
		t.Errorf("near-identical grids rejected: p=%v", p)
	}
	if _, p := KolmogorovSmirnov(same1, shifted); p > 1e-6 {
		t.Errorf("distinct laws not rejected: p=%v", p)
	}
}

// TestKolmogorovSmirnovAgreesWithOneSample cross-checks the shared
// Kolmogorov tail: a two-sample test against a huge reference sample
// approximates the one-sample test against the underlying CDF.
func TestKolmogorovSmirnovAgreesWithOneSample(t *testing.T) {
	var small, big []float64
	for i := 0; i < 100; i++ {
		small = append(small, (float64(i)+0.5)/100)
	}
	for i := 0; i < 100000; i++ {
		big = append(big, (float64(i)+0.5)/100000)
	}
	d2, _ := KolmogorovSmirnov(small, big)
	d1 := KSStatistic(small, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		}
		return x
	})
	almost(t, "two-sample vs one-sample D", d2, d1, 2e-3)
}

// TestChiSquareHandComputed pins the statistic and p-value on cases with
// closed forms: for df = 2 the upper tail is exactly e^{−x/2}, and for
// df = 1 it is 2(1 − Φ(√x)) = erfc(√(x/2)).
func TestChiSquareHandComputed(t *testing.T) {
	// Perfect fit.
	stat, df, p := ChiSquare([]int{10, 20, 30}, []float64{10, 20, 30})
	almost(t, "stat(perfect)", stat, 0, 0)
	if df != 2 {
		t.Errorf("df = %d, want 2", df)
	}
	almost(t, "p(perfect)", p, 1, 0)

	// Hand-computed: observed {10,10}, expected {5,15}:
	// (10−5)²/5 + (10−15)²/15 = 5 + 5/3.
	stat, df, p = ChiSquare([]int{10, 10}, []float64{5, 15})
	almost(t, "stat(hand)", stat, 5+5.0/3, 1e-12)
	if df != 1 {
		t.Errorf("df = %d, want 1", df)
	}
	almost(t, "p(hand)", p, math.Erfc(math.Sqrt(stat/2)), 1e-10)

	// df = 2 closed form at several statistics.
	for _, x := range []float64{0.5, 2, 4, 10} {
		almost(t, "chi2 tail df=2", ChiSquareP(x, 2), math.Exp(-x/2), 1e-10)
	}
	// Textbook value: P(X² ≥ 3.841 | df=1) = 0.05.
	almost(t, "chi2 tail df=1 at 3.841", ChiSquareP(3.841, 1), 0.05, 1e-3)
	// Large-df sanity: the median of chi-square(df) is near df − 2/3.
	if p := ChiSquareP(100-2.0/3, 100); math.Abs(p-0.5) > 0.01 {
		t.Errorf("median tail df=100: %v, want ≈0.5", p)
	}
}

// TestChiSquareTwoSampleHandComputed pins the pooled two-sample statistic.
func TestChiSquareTwoSampleHandComputed(t *testing.T) {
	// Equal histograms agree perfectly.
	stat, df, p := ChiSquareTwoSample([]int{5, 10, 15}, []int{5, 10, 15})
	almost(t, "stat(equal)", stat, 0, 1e-12)
	if df != 2 {
		t.Errorf("df = %d, want 2", df)
	}
	almost(t, "p(equal)", p, 1, 1e-12)

	// Hand-computed 2×2 case: a = {10, 20}, b = {20, 10}. Pooled
	// proportions are 1/2; expected each cell: 15. stat = 4·(5²/15) = 20/3.
	stat, df, _ = ChiSquareTwoSample([]int{10, 20}, []int{20, 10})
	almost(t, "stat(2x2)", stat, 20.0/3, 1e-12)
	if df != 1 {
		t.Errorf("df = %d, want 1", df)
	}

	// Cells empty in both samples are skipped, not counted as agreement.
	_, df, _ = ChiSquareTwoSample([]int{10, 0, 20}, []int{12, 0, 18})
	if df != 1 {
		t.Errorf("df with empty cell = %d, want 1", df)
	}

	// Unbalanced sample sizes: identical proportions still agree.
	_, _, p = ChiSquareTwoSample([]int{100, 200, 300}, []int{10, 20, 30})
	almost(t, "p(proportional)", p, 1, 1e-9)
}

// TestGoodnessOfFitPanics pins the input guards.
func TestGoodnessOfFitPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("KS empty", func() { KolmogorovSmirnov(nil, []float64{1}) })
	expectPanic("ChiSquare mismatch", func() { ChiSquare([]int{1}, []float64{1, 2}) })
	expectPanic("ChiSquare one cell", func() { ChiSquare([]int{1}, []float64{1}) })
	expectPanic("ChiSquare zero expected", func() { ChiSquare([]int{1, 2}, []float64{0, 3}) })
	expectPanic("TwoSample mismatch", func() { ChiSquareTwoSample([]int{1}, []int{1, 2}) })
	expectPanic("TwoSample empty", func() { ChiSquareTwoSample([]int{0, 0}, []int{1, 2}) })
	expectPanic("TwoSample negative", func() { ChiSquareTwoSample([]int{-1, 2}, []int{1, 2}) })
	expectPanic("ChiSquareP df=0", func() { ChiSquareP(1, 0) })
}
