package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D = sup |F_empirical(x) − cdf(x)| of xs against the given CDF.
// It panics on an empty sample.
func KSStatistic(xs []float64, cdf func(float64) float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Empirical CDF jumps at x: check both sides of the step.
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue approximates the p-value of a one-sample KS statistic d with
// sample size n via the asymptotic Kolmogorov distribution
// Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}, λ = (√n + 0.12 + 0.11/√n)·d.
func KSPValue(d float64, n int) float64 {
	if n <= 0 {
		panic("stats: KSPValue requires n > 0")
	}
	sqrtN := math.Sqrt(float64(n))
	return kolmogorovQ((sqrtN + 0.12 + 0.11/sqrtN) * d)
}

// KSTest returns the statistic and approximate p-value of xs against cdf.
func KSTest(xs []float64, cdf func(float64) float64) (d, p float64) {
	d = KSStatistic(xs, cdf)
	return d, KSPValue(d, len(xs))
}
