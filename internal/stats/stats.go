// Package stats provides the statistical machinery used to measure and
// report churnnet experiments: streaming moment accumulators, quantiles,
// histograms, least-squares fits (including the T = a + b·ln n fits used for
// logarithmic flooding-time claims), KL divergence (the paper's
// "demographics" tool in the proof of Theorem 4.16) and simple confidence
// intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance with Welford's algorithm,
// plus min/max. The zero value is ready to use.
type Accumulator struct {
	n          int
	mean, m2   float64
	min, max   float64
	everWasSet bool
}

// Add inserts one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.everWasSet || x < a.min {
		a.min = x
	}
	if !a.everWasSet || x > a.max {
		a.max = x
	}
	a.everWasSet = true
}

// AddN inserts every value in xs.
func (a *Accumulator) AddN(xs ...float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns a normal-approximation 95% confidence interval for the mean.
func (a *Accumulator) CI95() (lo, hi float64) {
	h := 1.96 * a.StdErr()
	return a.mean - h, a.mean + h
}

// String summarizes the accumulator for reports.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var a Accumulator
	a.AddN(xs...)
	return a.Variance()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or a
// q outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile requires q in [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the qs-quantiles of xs with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic("stats: Quantiles requires q in [0,1]")
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram requires bins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard against float rounding at the edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all observations that fell in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// LinFit holds an ordinary-least-squares fit y = A + B·x.
type LinFit struct {
	A, B float64
	R2   float64
	N    int
}

// LinReg fits y = A + B·x by least squares. It panics if the slices differ
// in length or hold fewer than two points.
func LinReg(xs, ys []float64) LinFit {
	if len(xs) != len(ys) {
		panic("stats: LinReg slice length mismatch")
	}
	n := len(xs)
	if n < 2 {
		panic("stats: LinReg needs at least 2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinReg with constant x")
	}
	b := sxy / sxx
	fit := LinFit{A: my - b*mx, B: b, N: n}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys equal: the flat fit is exact
	}
	return fit
}

// LogFit fits y = A + B·ln(x): the functional form of the paper's O(log n)
// flooding-time results. All xs must be positive.
func LogFit(xs, ys []float64) LinFit {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			panic("stats: LogFit requires positive x")
		}
		lx[i] = math.Log(x)
	}
	return LinReg(lx, ys)
}

// Eval returns A + B·x.
func (f LinFit) Eval(x float64) float64 { return f.A + f.B*x }

// EvalLog returns A + B·ln(x), for fits produced by LogFit.
func (f LinFit) EvalLog(x float64) float64 { return f.A + f.B*math.Log(x) }

// KLDivergence returns D(p || q) = Σ p_i · log2(p_i / q_i) in bits, the
// quantity the paper's Theorem 4.16 proof bounds (Theorem A.3). Entries
// with p_i = 0 contribute zero. It panics if the slices differ in length,
// if some p_i > 0 has q_i = 0, or if either is not a probability vector
// within tolerance.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	checkDistribution(p, "p")
	checkDistribution(q, "q")
	d := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			panic("stats: KLDivergence with p>0 where q=0 is infinite")
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	if d < 0 && d > -1e-12 { // clamp tiny negative rounding noise
		d = 0
	}
	return d
}

func checkDistribution(p []float64, name string) {
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			panic("stats: KLDivergence " + name + " has a negative entry")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		panic("stats: KLDivergence " + name + " does not sum to 1")
	}
}

// Normalize scales xs to sum to 1, returning a new slice. It panics if the
// sum is not positive.
func Normalize(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum <= 0 {
		panic("stats: Normalize requires positive sum")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}

// FractionTrue returns the fraction of true values: the estimator we use
// for every "with high probability" claim in the paper.
func FractionTrue(bs []bool) float64 {
	if len(bs) == 0 {
		return 0
	}
	k := 0
	for _, b := range bs {
		if b {
			k++
		}
	}
	return float64(k) / float64(len(bs))
}

// WilsonInterval returns the 95% Wilson score interval for a proportion with
// k successes out of n trials — a better small-sample interval than the
// normal approximation for the success probabilities we report.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
