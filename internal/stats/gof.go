// This file holds the goodness-of-fit machinery: the two-sample
// Kolmogorov–Smirnov test and chi-square tests (one-sample against expected
// counts, and two-sample on paired histograms). These back the
// distributional-equivalence harness that pins core.SampleStationary
// against the simulated warm-up: "sampled and warmed snapshots agree in
// distribution" is stated — and falsified, for deliberately wrong samplers
// — through these tests.

package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the two-sample KS statistic
// D = sup |F_xs(v) − F_ys(v)| and its asymptotic p-value. The p-value uses
// the Kolmogorov distribution at effective size n·m/(n+m) with the
// Stephens small-sample correction, the two-sample analog of KSPValue.
// It panics if either sample is empty.
func KolmogorovSmirnov(xs, ys []float64) (d, p float64) {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		panic("stats: KolmogorovSmirnov of empty sample")
	}
	sx := make([]float64, n)
	copy(sx, xs)
	sort.Float64s(sx)
	sy := make([]float64, m)
	copy(sy, ys)
	sort.Float64s(sy)

	i, j := 0, 0
	for i < n && j < m {
		v := sx[i]
		if sy[j] < v {
			v = sy[j]
		}
		for i < n && sx[i] == v {
			i++
		}
		for j < m && sy[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	sqrtNe := math.Sqrt(ne)
	return d, kolmogorovQ((sqrtNe + 0.12 + 0.11/sqrtNe) * d)
}

// kolmogorovQ evaluates the Kolmogorov distribution's upper tail
// Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}, clamped to [0, 1].
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := 2 * sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// ChiSquare returns the goodness-of-fit statistic Σ (Oᵢ−Eᵢ)²/Eᵢ of observed
// counts against expected counts, the degrees of freedom len−1 (the
// expected distribution is taken as fully specified), and the upper-tail
// p-value. It panics on a length mismatch, fewer than two cells, or a
// non-positive expected count — merge sparse tail cells before calling.
func ChiSquare(observed []int, expected []float64) (stat float64, df int, p float64) {
	if len(observed) != len(expected) {
		panic("stats: ChiSquare length mismatch")
	}
	if len(observed) < 2 {
		panic("stats: ChiSquare needs at least 2 cells")
	}
	for i, e := range expected {
		if e <= 0 {
			panic("stats: ChiSquare requires positive expected counts")
		}
		diff := float64(observed[i]) - e
		stat += diff * diff / e
	}
	df = len(observed) - 1
	return stat, df, ChiSquareP(stat, df)
}

// ChiSquareTwoSample tests whether two count histograms over the same cells
// draw from one distribution: expected cell counts come from the pooled
// proportions, the statistic sums both samples' (O−E)²/E, and the degrees
// of freedom are (#kept cells − 1). Cells empty in both samples are
// skipped. It panics on a length mismatch, an empty sample, or fewer than
// two non-empty cells.
func ChiSquareTwoSample(a, b []int) (stat float64, df int, p float64) {
	if len(a) != len(b) {
		panic("stats: ChiSquareTwoSample length mismatch")
	}
	na, nb := 0, 0
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			panic("stats: ChiSquareTwoSample requires non-negative counts")
		}
		na += a[i]
		nb += b[i]
	}
	if na == 0 || nb == 0 {
		panic("stats: ChiSquareTwoSample of empty sample")
	}
	fa := float64(na) / float64(na+nb)
	fb := float64(nb) / float64(na+nb)
	cells := 0
	for i := range a {
		pooled := a[i] + b[i]
		if pooled == 0 {
			continue
		}
		cells++
		ea := float64(pooled) * fa
		eb := float64(pooled) * fb
		da := float64(a[i]) - ea
		db := float64(b[i]) - eb
		stat += da*da/ea + db*db/eb
	}
	if cells < 2 {
		panic("stats: ChiSquareTwoSample needs at least 2 non-empty cells")
	}
	df = cells - 1
	return stat, df, ChiSquareP(stat, df)
}

// ChiSquareP returns the upper-tail probability P(X ≥ stat) for a
// chi-square variable with df degrees of freedom, via the regularized
// incomplete gamma function Q(df/2, stat/2). It panics if df < 1; a
// negative statistic reports 1.
func ChiSquareP(stat float64, df int) float64 {
	if df < 1 {
		panic("stats: ChiSquareP requires df >= 1")
	}
	if stat <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(df)/2, stat/2)
}

// regularizedGammaQ computes Q(s, x) = Γ(s, x)/Γ(s), the normalized upper
// incomplete gamma function, by the standard series (x < s+1) or continued
// fraction (otherwise) expansions.
func regularizedGammaQ(s, x float64) float64 {
	if x < 0 || s <= 0 {
		panic("stats: regularizedGammaQ domain error")
	}
	if x == 0 {
		return 1
	}
	if x < s+1 {
		return 1 - gammaPSeries(s, x)
	}
	return gammaQContinuedFraction(s, x)
}

// gammaPSeries evaluates P(s, x) = 1 − Q(s, x) by its power series,
// accurate for x < s+1.
func gammaPSeries(s, x float64) float64 {
	lg, _ := math.Lgamma(s)
	ap := s
	sum := 1 / s
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+s*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(s, x) by the Lentz-modified continued
// fraction, accurate for x >= s+1.
func gammaQContinuedFraction(s, x float64) float64 {
	lg, _ := math.Lgamma(s)
	const tiny = 1e-300
	b := x + 1 - s
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - s)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+s*math.Log(x)-lg) * h
}
