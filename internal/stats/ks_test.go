package stats

import (
	"math"
	"testing"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSStatisticPerfectFit(t *testing.T) {
	// Evenly spread points minimize D: for x_i = (i-0.5)/n, D = 1/(2n).
	n := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	d := KSStatistic(xs, uniformCDF)
	if math.Abs(d-1.0/(2*float64(n))) > 1e-12 {
		t.Fatalf("D = %v, want %v", d, 1.0/(2*float64(n)))
	}
}

func TestKSStatisticGrossMisfit(t *testing.T) {
	// All mass at 0.99 vs uniform: D ≈ 0.99.
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 0.99
	}
	if d := KSStatistic(xs, uniformCDF); d < 0.9 {
		t.Fatalf("D = %v for a gross misfit", d)
	}
}

func TestKSStatisticUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{0.9, 0.1, 0.5}
	KSStatistic(xs, uniformCDF)
	if xs[0] != 0.9 {
		t.Fatal("input mutated")
	}
}

func TestKSPValueRanges(t *testing.T) {
	if p := KSPValue(0, 100); p != 1 {
		t.Fatalf("p(0) = %v", p)
	}
	if p := KSPValue(0.5, 100); p > 1e-6 {
		t.Fatalf("p(0.5, n=100) = %v, want ~0", p)
	}
	// Typical statistic near 1.36/sqrt(n) has p ~ 0.05.
	n := 400
	d := 1.358 / math.Sqrt(float64(n))
	if p := KSPValue(d, n); math.Abs(p-0.05) > 0.01 {
		t.Fatalf("p at the 5%% critical value = %v", p)
	}
}

func TestKSPanics(t *testing.T) {
	for i, f := range []func(){
		func() { KSStatistic(nil, uniformCDF) },
		func() { KSPValue(0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
