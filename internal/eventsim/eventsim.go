// Package eventsim provides a minimal deterministic discrete-event
// simulation kernel: a time-ordered queue of callbacks with stable FIFO
// ordering among simultaneous events. It drives the message-passing
// overlay of package overlay, where transmissions have heterogeneous
// latencies and the unit-step advancement of the core models is not enough.
package eventsim

import "container/heap"

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	now float64
	seq uint64
}

type event struct {
	time float64
	seq  uint64 // insertion order breaks ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulation time.
func (q *Queue) Now() float64 { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.h.Len() }

// Schedule enqueues fn to run after delay time units. It panics on a
// negative delay.
func (q *Queue) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic("eventsim: negative delay")
	}
	q.At(q.now+delay, fn)
}

// At enqueues fn at an absolute time, which must not be in the past.
func (q *Queue) At(t float64, fn func()) {
	if t < q.now {
		panic("eventsim: scheduling into the past")
	}
	heap.Push(&q.h, event{time: t, seq: q.seq, fn: fn})
	q.seq++
}

// Step runs the next event, advancing Now to its time. It returns false if
// the queue is empty.
func (q *Queue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.h).(event)
	q.now = e.time
	e.fn()
	return true
}

// PeekTime returns the time of the next event and whether one exists.
func (q *Queue) PeekTime() (float64, bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

// RunUntil executes every event scheduled at or before t, then sets Now to
// t. It returns the number of events executed. Events scheduled by running
// events are honored if they also fall within the horizon.
func (q *Queue) RunUntil(t float64) int {
	if t < q.now {
		panic("eventsim: RunUntil into the past")
	}
	n := 0
	for {
		next, ok := q.PeekTime()
		if !ok || next > t {
			break
		}
		q.Step()
		n++
	}
	q.now = t
	return n
}

// Drain executes events until the queue is empty or the budget of steps is
// exhausted; it returns the number executed.
func (q *Queue) Drain(budget int) int {
	n := 0
	for n < budget && q.Step() {
		n++
	}
	return n
}
