package eventsim

import (
	"testing"
)

func TestScheduleAndStepOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(3, func() { got = append(got, 3) })
	q.Schedule(1, func() { got = append(got, 1) })
	q.Schedule(2, func() { got = append(got, 2) })
	for q.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if q.Now() != 3 {
		t.Fatalf("now %v", q.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(1, func() { got = append(got, i) })
	}
	for q.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	ran := 0
	q.Schedule(1, func() { ran++ })
	q.Schedule(2, func() { ran++ })
	q.Schedule(5, func() { ran++ })
	if n := q.RunUntil(2.5); n != 2 || ran != 2 {
		t.Fatalf("ran %d events (%d calls)", n, ran)
	}
	if q.Now() != 2.5 {
		t.Fatalf("now %v", q.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("pending %d", q.Len())
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var q Queue
	var got []float64
	q.Schedule(1, func() {
		got = append(got, q.Now())
		q.Schedule(1, func() { got = append(got, q.Now()) })
	})
	q.RunUntil(3)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("cascade %v", got)
	}
}

func TestCascadeWithinRunUntilHorizon(t *testing.T) {
	var q Queue
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 5 {
			q.Schedule(0.1, reschedule)
		}
	}
	q.Schedule(0, reschedule)
	q.RunUntil(1)
	if count != 5 {
		t.Fatalf("count %d", count)
	}
}

func TestAtAbsolute(t *testing.T) {
	var q Queue
	fired := false
	q.At(7, func() { fired = true })
	q.RunUntil(7)
	if !fired {
		t.Fatal("absolute event not fired")
	}
}

func TestPanicsOnPast(t *testing.T) {
	var q Queue
	q.Schedule(1, func() {})
	q.RunUntil(2)
	for i, f := range []func(){
		func() { q.At(1, func() {}) },
		func() { q.Schedule(-1, func() {}) },
		func() { q.RunUntil(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDrainBudget(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Schedule(float64(i), func() {})
	}
	if n := q.Drain(4); n != 4 {
		t.Fatalf("drained %d", n)
	}
	if q.Len() != 6 {
		t.Fatalf("left %d", q.Len())
	}
	if n := q.Drain(100); n != 6 {
		t.Fatalf("second drain %d", n)
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("peek on empty")
	}
	q.Schedule(4, func() {})
	if tm, ok := q.PeekTime(); !ok || tm != 4 {
		t.Fatalf("peek %v %v", tm, ok)
	}
}

func TestStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("step on empty queue")
	}
}
