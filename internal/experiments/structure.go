package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F12",
		Title:    "Degree structure of the models",
		PaperRef: "Lemma 6.1, Section 5 remark",
		Claim: "in SDG every node has expected degree d (so nd/2 expected edges); maximum " +
			"degree grows as O(log n); regeneration pins live out-degree at exactly d",
		Run: runDegrees,
	})
	register(Experiment{
		ID:       "F13",
		Title:    "Edge-destination age bias",
		PaperRef: "Lemmas 3.14 and 4.15",
		Claim: "a request targets a fixed older node with probability at most " +
			"(1/(n−1))(1+1/(n−1))^k (streaming) or (1/0.8n)(1+i/1.7n) (Poisson): regeneration " +
			"lets in-edges accumulate with age while staying within these per-request factors",
		Run: runAgeBias,
	})
	register(Experiment{
		ID:       "F20",
		Title:    "Age demographics of the Poisson model",
		PaperRef: "Theorem 4.16 proof (age-profile device), Lemma 4.8",
		Claim: "alive-node ages decay geometrically across n/2-wide slices (factor e^(−1/2) " +
			"per slice), which is what makes the union bound over demographics work",
		Run: runDemographics,
	})
}

func runDegrees(cfg Config) *report.Table {
	e, _ := ByID("F12")
	t := e.newTable("model", "n", "d", "mean degree", "mean out (live)", "mean in",
		"max degree", "max/ln n", "isolated")

	ns := cfg.pickInts([]int{500}, []int{1000, 4000, 16000}, []int{4000, 16000, 64000})
	const d = 10
	trials := cfg.pick(1, 4, 6)

	kinds := []core.Kind{core.SDG, core.SDGR}
	type job struct {
		kind  core.Kind
		n     int
		trial int
	}
	var jobs []job
	for _, kind := range kinds {
		for _, n := range ns {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{kind, n, trial})
			}
		}
	}
	results := parMap(cfg, len(jobs), func(i int) analysis.DegreeStats {
		j := jobs[i]
		m := cfg.warm(j.kind, j.n, d, cfg.rng(uint64(uint8(j.kind))<<20|uint64(j.n)<<3|uint64(j.trial)))
		return analysis.Degrees(m.Graph())
	})

	var xs, ys []float64
	k := 0
	for _, kind := range kinds {
		for _, n := range ns {
			var mean, meanOut, meanIn, maxDeg stats.Accumulator
			isolated := 0
			for trial := 0; trial < trials; trial++ {
				ds := results[k]
				k++
				mean.Add(ds.Mean)
				meanOut.Add(ds.MeanOut)
				meanIn.Add(ds.MeanIn)
				maxDeg.Add(float64(ds.Max))
				isolated += ds.Isolated
			}
			t.AddRow(kind.String(), report.D(n), report.D(d),
				report.F2(mean.Mean()), report.F2(meanOut.Mean()), report.F2(meanIn.Mean()),
				report.F2(maxDeg.Mean()), report.F2(maxDeg.Mean()/math.Log(float64(n))),
				report.D(isolated/trials))
			if kind == core.SDGR {
				xs = append(xs, float64(n))
				ys = append(ys, maxDeg.Mean())
			}
		}
	}
	if len(xs) >= 3 {
		fit := stats.LogFit(xs, ys)
		t.AddNote("SDGR max degree fits %.2f + %.2f·ln n (R² = %.2f): the O(log n) bound of "+
			"the Section 5 remark.", fit.A, fit.B, fit.R2)
	}
	t.AddNote("Lemma 6.1 check: SDG mean degree ≈ d = %d. In SDG the live out-degree decays "+
		"with age (mean ≈ d·(n+1)/(2n)), while SDGR keeps it exactly d.", d)
	return t
}

func runAgeBias(cfg Config) *report.Table {
	e, _ := ByID("F13")
	const buckets = 10
	cols := []string{"model", "n", "d"}
	for i := 0; i < buckets; i++ {
		if i == 0 {
			cols = append(cols, "in-deg oldest 10%")
		} else if i == buckets-1 {
			cols = append(cols, "youngest 10%")
		} else {
			cols = append(cols, report.D(i+1))
		}
	}
	cols = append(cols, "out-deg oldest", "out-deg youngest")
	t := e.newTable(cols...)

	n := cfg.pick(500, 4000, 16000)
	const d = 10
	kinds := core.Kinds()
	type kindResult struct{ in, out []float64 }
	results := parMap(cfg, len(kinds), func(i int) kindResult {
		kind := kinds[i]
		m := cfg.warm(kind, n, d, cfg.rng(uint64(uint8(kind))<<22|uint64(n)))
		return kindResult{
			in:  analysis.InDegreeByAgeQuantile(m.Graph(), buckets),
			out: analysis.OutDegreeByAgeQuantile(m.Graph(), buckets),
		}
	})
	for i, kind := range kinds {
		row := []string{kind.String(), report.D(n), report.D(d)}
		for _, v := range results[i].in {
			row = append(row, report.F2(v))
		}
		row = append(row, report.F2(results[i].out[0]), report.F2(results[i].out[buckets-1]))
		t.AddRow(row...)
	}
	t.AddNote("mean live in-degree per age decile, oldest first. In-edges accumulate with age " +
		"in every model (arrival rate ≈ d/n per round without regeneration, ≈ 2d/n with); " +
		"out-degree decays with age exactly in the no-regeneration models and stays d with " +
		"regeneration — the observable face of the Lemma 3.14/4.15 destination laws.")
	return t
}

func runDemographics(cfg Config) *report.Table {
	e, _ := ByID("F20")
	t := e.newTable("slice (age/(n/2))", "count", "fraction", "geometric e^(−1/2) model")

	n := cfg.pick(1000, 4000, 16000)
	m := cfg.warm(core.PDGR, n, 20, cfg.rng(0xdead))
	profile := analysis.AgeProfile(m.Graph(), m.Now(), float64(n)/2)

	total := 0
	for _, c := range profile {
		total += c
	}
	// Geometric reference distribution over the same number of slices.
	q := make([]float64, len(profile))
	p := make([]float64, len(profile))
	geomNorm := 0.0
	for i := range q {
		q[i] = math.Exp(-0.5 * float64(i))
		geomNorm += q[i]
	}
	for i := range q {
		q[i] /= geomNorm
		p[i] = float64(profile[i]) / float64(total)
	}
	maxShow := len(profile)
	if maxShow > 10 {
		maxShow = 10
	}
	for i := 0; i < maxShow; i++ {
		t.AddRow(report.D(i), report.D(profile[i]), report.Pct(p[i]), report.Pct(q[i]))
	}
	if len(profile) > maxShow {
		rest := 0
		for _, c := range profile[maxShow:] {
			rest += c
		}
		t.AddRow("≥ "+report.D(maxShow), report.D(rest), report.Pct(float64(rest)/float64(total)), "…")
	}
	decay := analysis.GeometricDecayRate(profile, 20)
	t.AddNote("measured per-slice decay %.3f vs e^(−1/2) = %.3f.", decay, math.Exp(-0.5))
	if kl := safeKL(p, q); !math.IsNaN(kl) {
		t.AddNote("KL(measured ‖ geometric) = %.4f bits — the demographic concentration the "+
			"Theorem 4.16 union bound relies on.", kl)
	}
	oldest := analysis.OldestAge(m.Graph(), m.Now())
	bound := 3.5 * float64(n) * math.Log(float64(n)) // 7·n·ln n rounds ≈ 3.5·n·ln n time units
	t.AddNote("oldest alive node age %.0f time units; Lemma 4.8 bound 7n·ln n rounds ≈ %.0f "+
		"time units — %s.", oldest, bound, report.Pass(oldest <= bound))
	return t
}

// safeKL computes KL divergence tolerating zero q-entries by flooring them
// (measurement vectors can have empty tail slices).
func safeKL(p, q []float64) float64 {
	const floor = 1e-12
	qs := make([]float64, len(q))
	copy(qs, q)
	for i := range qs {
		if qs[i] < floor {
			qs[i] = floor
		}
	}
	return stats.KLDivergence(stats.Normalize(p), stats.Normalize(qs))
}
