package experiments

import (
	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/overlay"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F24",
		Title:    "Overlay ablation: how much address-book machinery does 'sufficiently random' need?",
		PaperRef: "Section 1.1, Section 5",
		Claim: "the idealization of uniform peer sampling survives realistic constraints — until " +
			"address books become too small or gossip too rare to keep them mixed, at which " +
			"point broadcast reliability degrades",
		Run: runOverlayAblation,
	})
}

func runOverlayAblation(cfg Config) *report.Table {
	e, _ := ByID("F24")
	t := e.newTable("variant", "book cap", "gossip every", "mean out", "isolated",
		"flood complete", "median rounds")

	n := cfg.pick(300, 2000, 6000)
	d := 12
	trials := cfg.pick(2, 5, 8)

	variants := []struct {
		name   string
		book   int
		gossip float64
	}{
		{"baseline", 256, 8},
		{"big book", 1024, 8},
		{"small book", 2 * d, 8},
		{"rare gossip", 256, 100},
		{"starved", 2 * d, 200},
	}
	type job struct {
		book   int
		gossip float64
		trial  int
	}
	var jobs []job
	for _, v := range variants {
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, job{v.book, v.gossip, trial})
		}
	}
	type trialResult struct {
		meanOut, isolated float64
		completed         bool
		rounds            float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		o := overlay.New(overlay.Config{
			N: n, D: d, MaxIn: 8 * d,
			AddrBookCap:    j.book,
			GossipInterval: j.gossip,
		}, cfg.rng(uint64(j.book)<<24|uint64(int(j.gossip))<<8|uint64(j.trial)))
		o.WarmUp()
		var tr trialResult
		tr.meanOut = analysis.Degrees(o.Graph()).MeanOut
		tr.isolated = analysis.IsolatedFraction(o.Graph())
		res := flood.Run(o, cfg.floodOpts(flood.Options{Source: freshSource(o)}))
		tr.completed = res.Completed
		tr.rounds = float64(res.CompletionRound)
		return tr
	})

	k := 0
	for _, v := range variants {
		var meanOut, isolated stats.Accumulator
		completed := 0
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			tr := results[k]
			k++
			meanOut.Add(tr.meanOut)
			isolated.Add(tr.isolated)
			if tr.completed {
				completed++
				rounds = append(rounds, tr.rounds)
			}
		}
		med := "—"
		if len(rounds) > 0 {
			med = report.F2(stats.Median(rounds))
		}
		t.AddRow(v.name, report.D(v.book), report.F2(v.gossip),
			report.F2(meanOut.Mean()), report.Pct(isolated.Mean()),
			report.Pct(float64(completed)/float64(trials)), med)
	}
	t.AddNote("PDGR-matched parameters n = %d, d = %d, inbound cap 8d, %d networks per cell. "+
		"Shrinking the address book or slowing gossip starves redials (stale addresses) and "+
		"erodes the out-degree, which is exactly when the paper's uniform-sampling abstraction "+
		"stops being faithful.", n, d, trials)
	return t
}
