// Package experiments defines the reproduction suite: one experiment per
// table or quantitative claim of the paper, each producing a report.Table
// that records the paper's prediction next to the measured value.
//
// The suite (see DESIGN.md for the full index):
//
//	T1          Table 1 result grid over all four models
//	F1,  F2     isolated nodes (Lemmas 3.5, 4.10)
//	F3,  F4     large-set expansion without regeneration (Lemmas 3.6, 4.11)
//	F5          flooding failure without regeneration (Theorems 3.7, 4.12)
//	F6,  F7     flooding informs most nodes (Theorems 3.8, 4.13)
//	F8,  F9     expansion with regeneration (Theorems 3.15, 4.16)
//	F10, F11    O(log n) flooding with regeneration (Theorems 3.16, 4.20)
//	F12         degrees (Lemma 6.1, Section 5 max-degree remark)
//	F13         edge-destination age bias (Lemmas 3.14, 4.15)
//	F14–F16     pure churn (Lemmas 4.4, 4.7, 4.8)
//	F17         onion-skin cascade (Claims 3.10, 3.11, Lemma 7.8)
//	F18         static d-out baseline (Lemma B.1)
//	F19         ablation: regeneration on/off across d
//	F20         age demographics of PDGR (proof device of Theorem 4.16)
//	F21         overlay realism: address-gossip P2P vs idealized PDGR (§1.1)
//	F22         bounded-degree dynamics (§5 open question)
//	F23         giant component vs informable fraction
//	F24         overlay ablation: when uniform-sampling idealization breaks
//
// Every experiment is deterministic given Config.Seed; trials use split
// RNG streams.
package experiments

import (
	"fmt"
	"sort"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/runner"
)

// Scale selects how much work an experiment does.
type Scale uint8

// Scales, from quick smoke runs (used by unit tests and `go test -bench`)
// to paper-sized runs.
const (
	// Smoke finishes in well under a second per experiment.
	Smoke Scale = iota
	// Standard is the default for cmd/tablegen: minutes for the suite.
	Standard
	// Paper uses the largest sizes; expect tens of minutes.
	Paper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Smoke:
		return "smoke"
	case Standard:
		return "standard"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", uint8(s))
	}
}

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "standard":
		return Standard, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want smoke, standard or paper)", s)
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
	// Parallelism caps how many trials an experiment executes
	// concurrently: 0 uses GOMAXPROCS, 1 runs serially. Results are
	// bit-identical at every setting (see internal/runner for the
	// determinism contract).
	Parallelism int
	// Progress, when non-nil, receives (done, total) ticks as the trials
	// of the current experiment complete. Ticks arrive in completion
	// order, which is scheduling-dependent; everything else is
	// deterministic.
	Progress func(done, total int)
	// FastWarmUp builds measurement-ready models by direct stationary-
	// snapshot sampling (core.SampleStationary, O(n·d)) instead of
	// simulating the warm-up transient (2n rounds / 7·n·ln n jump events).
	// Results remain deterministic given Seed but are a different — equally
	// distributed — draw than the simulated warm-up produces, so the
	// committed EXPERIMENTS.md record keeps the default (off).
	FastWarmUp bool
	// FloodParallelism shards the work *inside* each flooding run
	// (flood.Options.Parallelism) and each fast-warm-up snapshot fill
	// (graph.WireSnapshotEdgesPar) across this many workers. 0 or 1 keeps
	// runs serial — the right setting whenever Parallelism already
	// saturates the cores with concurrent trials; raise it instead when an
	// experiment is dominated by few huge broadcasts, or pass a negative
	// value for the automatic GOMAXPROCS-and-n policy (the cmds' -floodpar
	// 0). Results are bit-identical at every setting.
	FloodParallelism int
	// TrackExpansion switches the expansion experiments (F3/F4/F8/F9)
	// from per-snapshot expansion.Estimate rescans to the event-driven
	// expansion.Tracker: each trial tracks its witness families across a
	// short churn window and reports the minima over time — a strictly
	// stronger observation of the paper's "every snapshot expands" claims
	// (Theorems 3.15/4.16). Default off: the committed EXPERIMENTS.md
	// record uses the per-snapshot search.
	TrackExpansion bool
	// ExpansionParallelism shards the tracker's event application and
	// re-seed scans (expansion.TrackerConfig.Parallelism): 0 or 1 serial,
	// negative auto. Tracked results are bit-identical at every setting.
	ExpansionParallelism int
}

// floodOpts stamps the intra-flood sharding knob onto a flood
// configuration; every flood.Run in the suite goes through it.
func (c Config) floodOpts(o flood.Options) flood.Options {
	o.Parallelism = c.FloodParallelism
	return o
}

// runnerCfg adapts the experiment knobs to the trial engine.
func (c Config) runnerCfg() runner.Config {
	return runner.Config{Workers: c.Parallelism, Progress: runner.Progress(c.Progress)}
}

// parMap runs fn once per job on the experiment's worker pool and returns
// the results in job order. Each fn must derive its randomness from its
// job index alone (cfg.rng with a job-specific salt), which every
// experiment's salting already guarantees.
func parMap[T any](cfg Config, jobs int, fn func(job int) T) []T {
	return runner.MapIndexed(cfg.runnerCfg(), jobs, fn)
}

// parMapRNG runs fn once per trial, handing each a child generator split
// serially from base — for experiments whose trials shared one stream.
func parMapRNG[T any](cfg Config, base *rng.RNG, trials int, fn func(trial int, r *rng.RNG) T) []T {
	return runner.Map(cfg.runnerCfg(), base, trials, fn)
}

// pick selects a value by scale.
func (c Config) pick(smoke, standard, paper int) int {
	switch c.Scale {
	case Smoke:
		return smoke
	case Paper:
		return paper
	default:
		return standard
	}
}

// pickInts selects a slice by scale.
func (c Config) pickInts(smoke, standard, paper []int) []int {
	switch c.Scale {
	case Smoke:
		return smoke
	case Paper:
		return paper
	default:
		return standard
	}
}

// rng derives a deterministic generator for a named sub-stream.
func (c Config) rng(salt uint64) *rng.RNG {
	return rng.New(c.Seed ^ (salt * 0x9e3779b97f4a7c15) ^ 0x2545f4914f6cdd1d)
}

// Experiment couples an identifier and paper reference with its runner.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Claim    string
	Run      func(Config) *report.Table
}

// newTable pre-fills the table header from the experiment metadata.
func (e Experiment) newTable(columns ...string) *report.Table {
	return &report.Table{
		ID:       e.ID,
		Title:    e.Title,
		PaperRef: e.PaperRef,
		Claim:    e.Claim,
		Columns:  columns,
	}
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments in suite order (T1, F1..F24).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return suiteOrder(out[i].ID) < suiteOrder(out[j].ID) })
	return out
}

func suiteOrder(id string) int {
	if id == "T1" {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(id, "F%d", &n); err != nil {
		return 1 << 20
	}
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// NewReport returns the empty suite report (title and intro) for cfg, for
// callers that run the experiments one at a time.
func NewReport(cfg Config) *report.Report {
	return &report.Report{
		Title: "churnnet — paper-vs-measured results",
		Intro: fmt.Sprintf(
			"Reproduction of “Expansion and Flooding in Dynamic Random Networks with Node Churn”"+
				" (Becchetti, Clementi, Pasquale, Trevisan, Ziccardi; ICDCS 2021)."+
				" Scale: %s, root seed: %d. Every number is deterministic given the seed.",
			cfg.Scale, cfg.Seed),
	}
}

// RunAll executes the full suite and returns the report.
func RunAll(cfg Config) *report.Report {
	r := NewReport(cfg)
	for _, e := range All() {
		r.Add(e.Run(cfg))
	}
	return r
}

// warm builds a measurement-ready model with a split RNG stream: simulated
// warm-up by default, direct stationary sampling under cfg.FastWarmUp
// (with the snapshot fill sharded per cfg.FloodParallelism).
func (c Config) warm(kind core.Kind, n, d int, r *rng.RNG) core.Model {
	return core.NewReadyModelPar(kind, n, d, r, c.FastWarmUp, c.FloodParallelism)
}
