package experiments

import (
	"strings"
	"testing"

	"github.com/dyngraph/churnnet/internal/flood"
)

func smokeCfg() Config { return Config{Scale: Smoke, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
		"F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19", "F20",
		"F21", "F22", "F23", "F24"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("position %d: %s, want %s", i, all[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("F5")
	if !ok || e.ID != "F5" {
		t.Fatal("ByID(F5) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) must fail")
	}
}

func TestEveryExperimentMetadata(t *testing.T) {
	for _, e := range All() {
		if e.Title == "" || e.PaperRef == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

// TestEveryExperimentSmoke runs the full suite at smoke scale and checks the
// tables are well-formed. This is the integration test of the whole
// pipeline: models, flooding, expansion, analysis, churn, onion, report.
func TestEveryExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke run skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(smokeCfg())
			if tab == nil {
				t.Fatal("nil table")
			}
			if tab.ID != e.ID {
				t.Fatalf("table ID %q", tab.ID)
			}
			if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("empty table: %d cols, %d rows", len(tab.Columns), len(tab.Rows))
			}
			for _, row := range tab.Rows {
				if len(row) > len(tab.Columns) {
					t.Fatalf("row wider than header: %v", row)
				}
				for _, cell := range row {
					if cell == "" {
						t.Fatalf("empty cell in row %v", row)
					}
				}
			}
			// Markdown must render without panicking and contain the ref.
			md := tab.Markdown()
			if !strings.Contains(md, e.PaperRef) {
				t.Fatalf("markdown missing paper ref %q", e.PaperRef)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism run skipped in -short mode")
	}
	e, _ := ByID("F16")
	a := e.Run(smokeCfg())
	b := e.Run(smokeCfg())
	if a.Markdown() != b.Markdown() {
		t.Fatal("same seed produced different tables")
	}
	c := e.Run(Config{Scale: Smoke, Seed: 8})
	if a.Markdown() == c.Markdown() {
		t.Fatal("different seeds produced identical tables (suspicious)")
	}
}

// TestFastWarmUpExperiments runs warm-up-heavy experiments under the
// FastWarmUp knob: tables must be well-formed and deterministic given the
// seed, and the regen flooding experiment must still see its completions
// (the end-to-end signal that sampled snapshots are measurement-ready).
func TestFastWarmUpExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke run skipped in -short mode")
	}
	fast := Config{Scale: Smoke, Seed: 7, FastWarmUp: true}
	for _, id := range []string{"T1", "F10", "F12", "F13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		a := e.Run(fast)
		if a == nil || len(a.Rows) == 0 {
			t.Fatalf("%s: empty table under FastWarmUp", id)
		}
		if b := e.Run(fast); a.Markdown() != b.Markdown() {
			t.Fatalf("%s: FastWarmUp run is not deterministic", id)
		}
	}
	e, _ := ByID("F10")
	tab := e.Run(fast)
	if !strings.Contains(tab.Markdown(), "100.0%") {
		t.Fatalf("F10 under FastWarmUp lost its completions:\n%s", tab.Markdown())
	}
}

func TestScaleParsing(t *testing.T) {
	for _, s := range []Scale{Smoke, Standard, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v failed", s)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale(huge) must fail")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale string")
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	rep := RunAll(smokeCfg())
	if len(rep.Tables) != len(All()) {
		t.Fatalf("report has %d tables", len(rep.Tables))
	}
	md := rep.Markdown()
	if !strings.Contains(md, "churnnet") || !strings.Contains(md, "### T1") {
		t.Fatal("report markdown malformed")
	}
}

func TestConfigPick(t *testing.T) {
	c := Config{Scale: Smoke}
	if c.pick(1, 2, 3) != 1 {
		t.Fatal("smoke pick")
	}
	c.Scale = Standard
	if c.pick(1, 2, 3) != 2 {
		t.Fatal("standard pick")
	}
	c.Scale = Paper
	if c.pick(1, 2, 3) != 3 {
		t.Fatal("paper pick")
	}
	if got := c.pickInts([]int{1}, []int{2}, []int{3}); got[0] != 3 {
		t.Fatal("pickInts")
	}
}

func TestRoundsToFraction(t *testing.T) {
	res := floodResult([]int{1, 5, 9, 10}, []int{10, 10, 10, 10})
	if got := roundsToFraction(res, 0.9); got != 2 {
		t.Fatalf("roundsToFraction = %d", got)
	}
	if got := roundsToFraction(res, 1.01); got != -1 {
		t.Fatalf("unreachable target = %d", got)
	}
}

func TestSafeKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0} // zero entry gets floored, not a panic
	if kl := safeKL(p, q); kl <= 0 {
		t.Fatalf("safeKL = %v", kl)
	}
}

func TestIlog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10}
	for n, want := range cases {
		if got := ilog2(n); got != want {
			t.Fatalf("ilog2(%d) = %d, want %d", n, got, want)
		}
	}
}

// floodResult builds a minimal trajectory-bearing result for helpers.
func floodResult(informed, alive []int) flood.Result {
	return flood.Result{Informed: informed, Alive: alive}
}
