package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/rng"
)

func init() {
	register(Experiment{
		ID:       "F3",
		Title:    "Large-subset expansion, streaming without regeneration",
		PaperRef: "Lemma 3.6",
		Claim:    "for d ≥ 20, every S with n·e^(−d/10) ≤ |S| ≤ n/2 has |∂out(S)|/|S| ≥ 0.1, w.h.p.",
		Run:      func(cfg Config) *report.Table { return runLargeSetExpansion(cfg, core.SDG, 10) },
	})
	register(Experiment{
		ID:       "F4",
		Title:    "Large-subset expansion, Poisson without regeneration",
		PaperRef: "Lemma 4.11",
		Claim:    "for d ≥ 20, every S with n·e^(−d/20) ≤ |S| ≤ |N|/2 has |∂out(S)|/|S| ≥ 0.1, w.h.p.",
		Run:      func(cfg Config) *report.Table { return runLargeSetExpansion(cfg, core.PDG, 20) },
	})
	register(Experiment{
		ID:       "F8",
		Title:    "Vertex expansion with regeneration, streaming",
		PaperRef: "Theorem 3.15",
		Claim:    "for d ≥ 14, every snapshot is an ε-expander with ε ≥ 0.1, w.h.p.",
		Run:      func(cfg Config) *report.Table { return runRegenExpansion(cfg, core.SDGR, []int{14, 21}) },
	})
	register(Experiment{
		ID:       "F9",
		Title:    "Vertex expansion with regeneration, Poisson",
		PaperRef: "Theorem 4.16",
		Claim:    "for d ≥ 35, every snapshot is an ε-expander with ε ≥ 0.1, w.h.p.",
		Run:      func(cfg Config) *report.Table { return runRegenExpansion(cfg, core.PDGR, []int{35, 40}) },
	})
}

func expCfg(cfg Config) expansion.Config {
	return expansion.Config{
		SampleTrialsPerSize: cfg.pick(8, 24, 32),
		BFSSeeds:            cfg.pick(4, 12, 16),
		GreedySeeds:         cfg.pick(1, 3, 4),
	}
}

// trackCfg mirrors expCfg for the tracker's witness families.
func trackCfg(cfg Config) expansion.TrackerConfig {
	return expansion.TrackerConfig{
		Singletons:        cfg.pick(4, 8, 8),
		RandomSetsPerSize: cfg.pick(1, 2, 2),
		BFSSeeds:          cfg.pick(2, 4, 6),
		GreedySeeds:       cfg.pick(1, 2, 3),
		ReseedEvery:       3,
		Parallelism:       cfg.ExpansionParallelism,
	}
}

// trackedWindow is the number of churn rounds a TrackExpansion trial
// observes per snapshot trial.
func trackedWindow(cfg Config) int { return cfg.pick(4, 8, 10) }

// measureProfile produces one trial's expansion profile: a per-snapshot
// Estimate rescan by default, or — under cfg.TrackExpansion — the
// event-driven tracker observed across a churn window, merged into the
// pointwise minima over time (Profile.N is the smallest population seen,
// keeping band queries conservative). Either way the profile is
// deterministic given r.
func measureProfile(cfg Config, m core.Model, r *rng.RNG) *expansion.Profile {
	if !cfg.TrackExpansion {
		return expansion.Estimate(m.Graph(), r, expCfg(cfg))
	}
	tr := expansion.NewTracker(m, r, trackCfg(cfg))
	defer tr.Close()
	merged := &expansion.Profile{BestBySize: make(map[int]expansion.Witness)}
	merge := func(obs expansion.Observation) {
		if merged.N == 0 || obs.N < merged.N {
			merged.N = obs.N
		}
		for size, w := range obs.Profile.BestBySize {
			if old, ok := merged.BestBySize[size]; !ok || w.Ratio < old.Ratio {
				merged.BestBySize[size] = w
			}
		}
	}
	merge(tr.Observe())
	for round := 0; round < trackedWindow(cfg); round++ {
		m.AdvanceRound()
		merge(tr.Observe())
	}
	return merged
}

// trackedNote appends the measurement-mode note to tracked tables.
func trackedNote(cfg Config, t *report.Table) {
	if cfg.TrackExpansion {
		t.AddNote("expansion measured by the incremental event-driven tracker: minima over a "+
			"%d-round churn window per trial, not a single-snapshot search (see DESIGN.md, "+
			"“Incremental expansion tracking”).", trackedWindow(cfg))
	}
}

func runLargeSetExpansion(cfg Config, kind core.Kind, bandDiv float64) *report.Table {
	e, _ := ByID(map[core.Kind]string{core.SDG: "F3", core.PDG: "F4"}[kind])
	t := e.newTable("n", "d", "band [lo, n/2]", "min ratio in band", "witness size",
		"min ratio below band", "pass (band ≥ 0.1)")

	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(1, 3, 5)
	ds := []int{20, 30}

	type job struct{ n, d, trial int }
	var jobs []job
	for _, n := range ns {
		for _, d := range ds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{n, d, trial})
			}
		}
	}
	type trialResult struct {
		band, below float64
		witness     expansion.Witness
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(kind))<<40 | uint64(j.n)<<10 | uint64(j.d)<<4 | uint64(j.trial)
		m := cfg.warm(kind, j.n, j.d, cfg.rng(salt))
		lo := int(math.Ceil(float64(j.n) * math.Exp(-float64(j.d)/bandDiv)))
		p := measureProfile(cfg, m, cfg.rng(salt^0xaaaa))
		var tr trialResult
		tr.band, tr.witness = p.MinInRange(lo, p.N/2)
		tr.below, _ = p.MinInRange(1, lo-1)
		return tr
	})

	k := 0
	for _, n := range ns {
		for _, d := range ds {
			bandMin, belowMin := math.Inf(1), math.Inf(1)
			var bandWitness expansion.Witness
			lo := int(math.Ceil(float64(n) * math.Exp(-float64(d)/bandDiv)))
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				if tr.band < bandMin {
					bandMin, bandWitness = tr.band, tr.witness
				}
				if tr.below < belowMin {
					belowMin = tr.below
				}
			}
			t.AddRow(report.D(n), report.D(d),
				"["+report.D(lo)+", n/2]",
				report.F2(bandMin), report.D(bandWitness.Size),
				report.F2(belowMin), report.Pass(bandMin >= 0.1))
		}
	}
	t.AddNote("min ratios are the best witnesses found by the search (upper bounds on the "+
		"band minimum); %d snapshots per row. Below the band the lemma promises nothing — at "+
		"these d values e^(−2d)·n < 1, so no isolated nodes exist and small sets happen to "+
		"expand even better; the zero-ratio small-set witnesses appear at constant d "+
		"(see T1 and F1/F2).", trials)
	trackedNote(cfg, t)
	return t
}

func runRegenExpansion(cfg Config, kind core.Kind, ds []int) *report.Table {
	e, _ := ByID(map[core.Kind]string{core.SDGR: "F8", core.PDGR: "F9"}[kind])
	t := e.newTable("n", "d", "min ratio (any size)", "witness size", "min degree",
		"spectral gap", "pass (≥ 0.1)")

	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(1, 3, 5)

	type job struct{ n, d, trial int }
	var jobs []job
	for _, n := range ns {
		for _, d := range ds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{n, d, trial})
			}
		}
	}
	type trialResult struct {
		ratio, gap float64
		witness    expansion.Witness
		minDeg     int
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(kind))<<40 | uint64(j.n)<<10 | uint64(j.d)<<4 | uint64(j.trial)
		m := cfg.warm(kind, j.n, j.d, cfg.rng(salt))
		g := m.Graph()
		var tr trialResult
		p := measureProfile(cfg, m, cfg.rng(salt^0xbbbb))
		tr.ratio, tr.witness = p.Min()
		tr.gap = expansion.SpectralGap(g, 60, cfg.rng(salt^0xeeee))
		tr.minDeg = math.MaxInt
		g.ForEachAlive(func(h graph.Handle) bool {
			if dd := g.DegreeLive(h); dd < tr.minDeg {
				tr.minDeg = dd
			}
			return true
		})
		return tr
	})

	k := 0
	for _, n := range ns {
		for _, d := range ds {
			minRatio := math.Inf(1)
			var witness expansion.Witness
			minDeg := math.MaxInt
			minGap := math.Inf(1)
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				if tr.ratio < minRatio {
					minRatio, witness = tr.ratio, tr.witness
				}
				if tr.gap < minGap {
					minGap = tr.gap
				}
				if tr.minDeg < minDeg {
					minDeg = tr.minDeg
				}
			}
			t.AddRow(report.D(n), report.D(d),
				report.F2(minRatio), report.D(witness.Size), report.D(minDeg),
				report.F2(minGap), report.Pass(minRatio >= 0.1))
		}
	}
	t.AddNote("regeneration pins every node's out-degree at d, so no isolated witnesses exist; "+
		"%d snapshots per row. The spectral gap (1 − λ₂ of the lazy walk) is a witness-free "+
		"cross-check: a constant gap certifies expansion independently of the search.", trials)
	trackedNote(cfg, t)
	return t
}
