package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F5",
		Title:    "Flooding failure without regeneration",
		PaperRef: "Theorems 3.7 and 4.12",
		Claim: "with probability Ω(e^(−d²)) the broadcast never exceeds d+1 nodes, and w.h.p. " +
			"completion requires Ω_d(n) time (isolated nodes must die first)",
		Run: runFloodingFailure,
	})
	register(Experiment{
		ID:       "F6",
		Title:    "Flooding informs most nodes, streaming without regeneration",
		PaperRef: "Theorem 3.8",
		Claim: "for large d there is τ = O(log n / log d + d) with |I_{t0+τ}| ≥ (1−e^(−d/10))·n " +
			"with probability ≥ 1 − 4e^(−d/100) − o(1)",
		Run: func(cfg Config) *report.Table { return runFloodingMost(cfg, core.SDG, 10) },
	})
	register(Experiment{
		ID:       "F7",
		Title:    "Flooding informs most nodes, Poisson without regeneration",
		PaperRef: "Theorem 4.13",
		Claim: "for large d there is τ = O(log n / log d + d) with |I_{t0+τ}| ≥ (1−e^(−d/20))·|N| " +
			"with probability ≥ 1 − 2e^(−d/576) − o(1)",
		Run: func(cfg Config) *report.Table { return runFloodingMost(cfg, core.PDG, 20) },
	})
	register(Experiment{
		ID:       "F10",
		Title:    "O(log n) flooding with regeneration, streaming",
		PaperRef: "Theorem 3.16",
		Claim:    "for d ≥ 21, flooding completes in O(log n) rounds w.h.p.",
		Run:      func(cfg Config) *report.Table { return runFloodingLog(cfg, core.SDGR, 21) },
	})
	register(Experiment{
		ID:       "F11",
		Title:    "O(log n) flooding with regeneration, Poisson",
		PaperRef: "Theorem 4.20",
		Claim:    "for d ≥ 35, flooding completes in O(log n) time w.h.p.",
		Run:      func(cfg Config) *report.Table { return runFloodingLog(cfg, core.PDGR, 35) },
	})
	register(Experiment{
		ID:       "F19",
		Title:    "Ablation: edge regeneration on/off across d",
		PaperRef: "Table 1 (column contrast)",
		Claim: "regeneration is the mechanism that turns partial diffusion into complete " +
			"O(log n) broadcast; without it completion never happens at constant d",
		Run: runRegenAblation,
	})
}

func runFloodingFailure(cfg Config) *report.Table {
	e, _ := ByID("F5")
	t := e.newTable("model", "n", "d", "trials", "stalled ≤ d+1", "paper bound",
		"completed", "median peak informed")

	n := cfg.pick(300, 1500, 4000)
	trials := cfg.pick(20, 200, 400)

	// The trials of one cell share a long-lived model (successive
	// broadcasts on the same network, decorrelated by extra churn), so the
	// trial loop is inherently sequential; parallelism lives at the
	// (kind, d) cell level instead.
	type cell struct {
		kind core.Kind
		d    int
	}
	var cells []cell
	for _, kind := range []core.Kind{core.SDG, core.PDG} {
		for _, d := range []int{1, 2, 3} {
			cells = append(cells, cell{kind, d})
		}
	}
	type cellResult struct {
		stalled, completed int
		peaks              []float64
	}
	results := parMap(cfg, len(cells), func(i int) cellResult {
		c := cells[i]
		var cr cellResult
		m := cfg.warm(c.kind, n, c.d, cfg.rng(uint64(uint8(c.kind))<<16|uint64(c.d)))
		for trial := 0; trial < trials; trial++ {
			for i := 0; i < 5; i++ { // decorrelate consecutive sources
				m.AdvanceRound()
			}
			src := freshSource(m)
			res := flood.Run(m, cfg.floodOpts(flood.Options{Source: src, MaxRounds: 8 * c.d * ilog2(n)}))
			if res.PeakInformed <= c.d+1 {
				cr.stalled++
			}
			if res.Completed {
				cr.completed++
			}
			cr.peaks = append(cr.peaks, res.PeakFraction)
		}
		return cr
	})

	for i, c := range cells {
		cr := results[i]
		// Loose constructive lower bound from the proofs: the source
		// picks d lifetime-isolated targets.
		bound := 0.5 * math.Pow(math.Exp(-2*float64(c.d))/18, float64(c.d))
		boundCell := report.Sci(bound)
		if bound < 1/float64(trials) {
			boundCell += " (below resolution)"
		}
		t.AddRow(c.kind.String(), report.D(n), report.D(c.d), report.D(trials),
			report.Pct(float64(cr.stalled)/float64(trials)), boundCell,
			report.Pct(float64(cr.completed)/float64(trials)),
			report.Pct(stats.Median(cr.peaks)))
	}
	t.AddNote("“stalled” = the broadcast never exceeded d+1 informed nodes within the horizon. " +
		"The paper's Ω(e^{−d²}) lower bound is loose; the measured stall rate dominates it wherever " +
		"it is resolvable. Completion stays at 0%%: the isolated nodes of Lemma 3.5/4.10 must die " +
		"before every node is informed, giving the Ω_d(n) time bound.")
	return t
}

// freshSource advances m until its most recent newborn is still alive and
// returns it (the paper's convention: the flooding source is the node
// joining at t0).
func freshSource(m core.Model) graph.Handle {
	for !m.Graph().IsAlive(m.LastBorn()) {
		m.AdvanceRound()
	}
	return m.LastBorn()
}

func ilog2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// roundsToFraction returns the first trajectory index whose informed/alive
// ratio reaches target, or -1.
func roundsToFraction(res flood.Result, target float64) int {
	for i := range res.Informed {
		if res.Alive[i] > 0 && float64(res.Informed[i])/float64(res.Alive[i]) >= target {
			return i
		}
	}
	return -1
}

func runFloodingMost(cfg Config, kind core.Kind, expDiv float64) *report.Table {
	e, _ := ByID(map[core.Kind]string{core.SDG: "F6", core.PDG: "F7"}[kind])
	t := e.newTable("n", "d", "target fraction", "reached target", "median τ", "mean final fraction")

	ns := cfg.pickInts([]int{400, 800}, []int{1000, 2000, 4000, 8000}, []int{4000, 8000, 16000, 32000})
	trials := cfg.pick(2, 6, 10)

	type point struct {
		n   int
		tau float64
	}
	var fitPoints []point
	fitD := 20
	ds := []int{10, 20}

	type job struct{ n, d, trial int }
	var jobs []job
	for _, n := range ns {
		for _, d := range ds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{n, d, trial})
			}
		}
	}
	type trialResult struct {
		final float64
		tau   int
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		target := 1 - math.Exp(-float64(j.d)/expDiv)
		salt := uint64(uint8(kind))<<36 | uint64(j.n)<<8 | uint64(j.d)<<3 | uint64(j.trial)
		m := cfg.warm(kind, j.n, j.d, cfg.rng(salt))
		res := flood.Run(m, cfg.floodOpts(flood.Options{KeepTrajectory: true, RunToMax: true,
			MaxRounds: flood.DefaultMaxRounds(j.n)}))
		return trialResult{final: res.PeakFraction, tau: roundsToFraction(res, target)}
	})

	k := 0
	for _, n := range ns {
		for _, d := range ds {
			target := 1 - math.Exp(-float64(d)/expDiv)
			reached := 0
			var taus, finals []float64
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				finals = append(finals, tr.final)
				if tr.tau >= 0 {
					reached++
					taus = append(taus, float64(tr.tau))
				}
			}
			med := "—"
			if len(taus) > 0 {
				m := stats.Median(taus)
				med = report.F2(m)
				if d == fitD {
					fitPoints = append(fitPoints, point{n: n, tau: m})
				}
			}
			t.AddRow(report.D(n), report.D(d), report.Pct(target),
				report.Pct(float64(reached)/float64(trials)), med,
				report.Pct(stats.Mean(finals)))
		}
	}
	if len(fitPoints) >= 3 {
		xs := make([]float64, len(fitPoints))
		ys := make([]float64, len(fitPoints))
		for i, p := range fitPoints {
			xs[i], ys[i] = float64(p.n), p.tau
		}
		fit := stats.LogFit(xs, ys)
		t.AddNote("τ growth for d=%d fits τ = %.2f + %.2f·ln n (R² = %.2f): "+
			"logarithmic in n as Theorem %s predicts.", fitD, fit.A, fit.B, fit.R2,
			map[core.Kind]string{core.SDG: "3.8", core.PDG: "4.13"}[kind])
	}
	t.AddNote("τ is measured from the flooding trajectory as the first round where the "+
		"informed fraction reaches the target; %d trials per row.", trials)
	return t
}

func runFloodingLog(cfg Config, kind core.Kind, d int) *report.Table {
	e, _ := ByID(map[core.Kind]string{core.SDGR: "F10", core.PDGR: "F11"}[kind])
	t := e.newTable("n", "d", "completed", "median rounds", "p90 rounds", "rounds/ln n")

	ns := cfg.pickInts([]int{300, 600}, []int{1000, 2000, 4000, 8000, 16000},
		[]int{4000, 8000, 16000, 32000, 64000})
	trials := cfg.pick(2, 6, 10)

	type job struct{ n, trial int }
	var jobs []job
	for _, n := range ns {
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, job{n, trial})
		}
	}
	type trialResult struct {
		completed bool
		rounds    float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(kind))<<36 | uint64(j.n)<<8 | uint64(j.trial)
		m := cfg.warm(kind, j.n, d, cfg.rng(salt))
		res := flood.Run(m, cfg.floodOpts(flood.Options{}))
		return trialResult{res.Completed, float64(res.CompletionRound)}
	})

	var xs, ys []float64
	k := 0
	for _, n := range ns {
		completed := 0
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			tr := results[k]
			k++
			if tr.completed {
				completed++
				rounds = append(rounds, tr.rounds)
			}
		}
		med := math.NaN()
		p90 := math.NaN()
		if len(rounds) > 0 {
			qs := stats.Quantiles(rounds, 0.5, 0.9)
			med, p90 = qs[0], qs[1]
			xs = append(xs, float64(n))
			ys = append(ys, med)
		}
		t.AddRow(report.D(n), report.D(d),
			report.Pct(float64(completed)/float64(trials)),
			report.F2(med), report.F2(p90),
			report.F2(med/math.Log(float64(n))))
	}
	if len(xs) >= 3 {
		fit := stats.LogFit(xs, ys)
		t.AddNote("median completion fits rounds = %.2f + %.2f·ln n (R² = %.2f) — "+
			"the O(log n) flooding time of the theorem.", fit.A, fit.B, fit.R2)
	}
	t.AddNote("%d trials per size; completion per Definition 3.3 (every node present at the "+
		"start of the final round is informed).", trials)
	return t
}

func runRegenAblation(cfg Config) *report.Table {
	e, _ := ByID("F19")
	t := e.newTable("d", "SDG complete", "SDG final", "SDGR complete", "SDGR rounds",
		"PDG complete", "PDG final", "PDGR complete", "PDGR rounds")

	n := cfg.pick(300, 2000, 8000)
	trials := cfg.pick(2, 6, 10)
	ds := []int{1, 2, 4, 8, 16, 24, 32}
	kinds := []core.Kind{core.SDG, core.SDGR, core.PDG, core.PDGR}

	type job struct {
		d     int
		kind  core.Kind
		trial int
	}
	var jobs []job
	for _, d := range ds {
		for _, kind := range kinds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{d, kind, trial})
			}
		}
	}
	type trialResult struct {
		completed     bool
		rounds, final float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(j.kind))<<44 | uint64(j.d)<<6 | uint64(j.trial)
		m := cfg.warm(j.kind, n, j.d, cfg.rng(salt))
		res := flood.Run(m, cfg.floodOpts(flood.Options{}))
		return trialResult{res.Completed, float64(res.CompletionRound),
			math.Max(res.FinalFraction(), res.PeakFraction)}
	})

	k := 0
	for _, d := range ds {
		row := []string{report.D(d)}
		for _, kind := range kinds {
			completed := 0
			var finals, rounds []float64
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				if tr.completed {
					completed++
					rounds = append(rounds, tr.rounds)
				}
				finals = append(finals, tr.final)
			}
			row = append(row, report.Pct(float64(completed)/float64(trials)))
			if kind.Regen() {
				if len(rounds) > 0 {
					row = append(row, report.F2(stats.Median(rounds)))
				} else {
					row = append(row, "—")
				}
			} else {
				row = append(row, report.Pct(stats.Mean(finals)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("n = %d, %d trials per cell. Expected crossover: no-regeneration models never "+
		"complete at constant d but inform a growing fraction as d rises; regeneration models "+
		"switch to reliable completion once d supports expansion.", n, trials)
	return t
}
