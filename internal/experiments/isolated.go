package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F1",
		Title:    "Isolated nodes in the streaming model without regeneration",
		PaperRef: "Lemma 3.5",
		Claim: "w.h.p. at least (1/6)·e^(−2d)·n nodes are isolated at any round t > n and " +
			"remain isolated for their entire lifetime",
		Run: func(cfg Config) *report.Table { return runIsolated(cfg, core.SDG, 1.0/6) },
	})
	register(Experiment{
		ID:       "F2",
		Title:    "Isolated nodes in the Poisson model without regeneration",
		PaperRef: "Lemma 4.10",
		Claim:    "w.h.p. at least (1/18)·e^(−2d)·n nodes are isolated and remain so for life",
		Run:      func(cfg Config) *report.Table { return runIsolated(cfg, core.PDG, 1.0/18) },
	})
}

func runIsolated(cfg Config, kind core.Kind, boundCoeff float64) *report.Table {
	e, _ := ByID(map[core.Kind]string{core.SDG: "F1", core.PDG: "F2"}[kind])
	t := e.newTable("n", "d", "isolated now", "isolated for life", "paper bound",
		"lifetime/bound", "pass")

	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(2, 5, 8)
	ds := []int{1, 2, 3, 4}

	type job struct{ n, d, trial int }
	var jobs []job
	for _, n := range ns {
		for _, d := range ds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{n, d, trial})
			}
		}
	}
	type trialResult struct{ snap, life float64 }
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(kind))<<32 | uint64(j.n)<<8 | uint64(j.d)<<4 | uint64(j.trial)
		m := cfg.warm(kind, j.n, j.d, cfg.rng(salt))
		snap := analysis.IsolatedFraction(m.Graph())
		res := analysis.LifetimeIsolation(m, 20*j.n)
		return trialResult{snap, float64(res.StayedIsolated) / float64(j.n)}
	})

	k := 0
	for _, n := range ns {
		for _, d := range ds {
			var snap, life stats.Accumulator
			for trial := 0; trial < trials; trial++ {
				snap.Add(results[k].snap)
				life.Add(results[k].life)
				k++
			}
			bound := boundCoeff * math.Exp(-2*float64(d))
			ratio := life.Mean() / bound
			t.AddRow(report.D(n), report.D(d),
				report.Pct(snap.Mean()), report.Pct(life.Mean()),
				report.Pct(bound), report.F2(ratio), report.Pass(life.Mean() >= bound))
		}
	}
	t.AddNote("fractions of the nominal size n, averaged over %d trials; "+
		"“isolated for life” follows each isolated node until death.", trials)
	return t
}
