package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/staticgraph"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F18",
		Title:    "Static d-out random graph baseline",
		PaperRef: "Lemma B.1",
		Claim: "the static graph where each node picks d random neighbors is a Θ(1) vertex " +
			"expander w.h.p. for every d ≥ 3 — the churn-free reference the dynamic models " +
			"are measured against",
		Run: runStaticBaseline,
	})
}

func runStaticBaseline(cfg Config) *report.Table {
	e, _ := ByID("F18")
	t := e.newTable("n", "d", "min ratio found", "witness size", "flood complete",
		"median rounds", "rounds/ln n")

	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(2, 5, 8)
	ds := []int{3, 4, 8}

	type job struct{ n, d, trial int }
	var jobs []job
	for _, n := range ns {
		for _, d := range ds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{n, d, trial})
			}
		}
	}
	type trialResult struct {
		ratio     float64
		witness   expansion.Witness
		completed bool
		rounds    float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		r := cfg.rng(uint64(j.n)<<16 | uint64(j.d)<<8 | uint64(j.trial))
		g, hs := staticgraph.DOut(j.n, j.d, r)
		var tr trialResult
		p := expansion.Estimate(g, r, expCfg(cfg))
		tr.ratio, tr.witness = p.Min()
		m := core.NewStaticModel(g, j.d)
		res := flood.Run(m, cfg.floodOpts(flood.Options{Source: hs[r.Intn(len(hs))]}))
		tr.completed = res.Completed
		tr.rounds = float64(res.CompletionRound)
		return tr
	})

	k := 0
	for _, n := range ns {
		for _, d := range ds {
			minRatio := math.Inf(1)
			var witness expansion.Witness
			completed := 0
			var rounds []float64
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				if tr.ratio < minRatio {
					minRatio, witness = tr.ratio, tr.witness
				}
				if tr.completed {
					completed++
					rounds = append(rounds, tr.rounds)
				}
			}
			med := math.NaN()
			if len(rounds) > 0 {
				med = stats.Median(rounds)
			}
			t.AddRow(report.D(n), report.D(d),
				report.F2(minRatio), report.D(witness.Size),
				report.Pct(float64(completed)/float64(trials)),
				report.F2(med), report.F2(med/math.Log(float64(n))))
		}
	}
	t.AddNote("%d graphs per row. Contrast with T1: the dynamic no-regeneration models lose "+
		"this baseline's expansion (isolated nodes), while the regeneration models match it.", trials)
	return t
}
