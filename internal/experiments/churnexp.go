package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/churn"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F14",
		Title:    "Poisson population concentration",
		PaperRef: "Lemma 4.4",
		Claim:    "for t ≥ 3n, 0.9n ≤ |N_t| ≤ 1.1n with probability ≥ 1 − 2e^(−√n)",
		Run:      runPopulation,
	})
	register(Experiment{
		ID:       "F15",
		Title:    "Jump-chain event probabilities",
		PaperRef: "Lemmas 4.6 and 4.7",
		Claim: "each jump is a birth/death with probability in [0.47, 0.53] at stationarity, " +
			"and a fixed alive node dies in a given round with probability in [1/(2.2n), 1/(1.8n)]",
		Run: runJumpChain,
	})
	register(Experiment{
		ID:       "F16",
		Title:    "Maximum node age",
		PaperRef: "Lemma 4.8",
		Claim:    "with probability ≥ 1 − 2/n^2.1, every alive node was born within the last 7·n·ln n rounds",
		Run:      runMaxAge,
	})
}

func runPopulation(cfg Config) *report.Table {
	e, _ := ByID("F14")
	t := e.newTable("n", "checkpoints", "min |N|/n", "max |N|/n", "in [0.9, 1.1]", "pass")

	ns := cfg.pickInts([]int{500}, []int{1000, 10000}, []int{10000, 100000})
	checkpoints := cfg.pick(50, 400, 1000)

	for _, n := range ns {
		p := churn.NewPopulation(n, cfg.rng(uint64(n)))
		p.AdvanceTime(3 * float64(n))
		minR, maxR := math.Inf(1), math.Inf(-1)
		inBand := 0
		for i := 0; i < checkpoints; i++ {
			p.AdvanceTime(float64(n) / 50)
			r := float64(p.Size()) / float64(n)
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
			if r >= 0.9 && r <= 1.1 {
				inBand++
			}
		}
		frac := float64(inBand) / float64(checkpoints)
		t.AddRow(report.D(n), report.D(checkpoints), report.F2(minR), report.F2(maxR),
			report.Pct(frac), report.Pass(frac >= 0.99))
	}
	t.AddNote("checkpoints every n/50 time units after a 3n warm-up, matching the lemma's t ≥ 3n.")
	return t
}

func runJumpChain(cfg Config) *report.Table {
	e, _ := ByID("F15")
	t := e.newTable("n", "rounds", "birth fraction", "in [0.47, 0.53]",
		"per-node death ×n", "in [1/2.2, 1/1.8]")

	ns := cfg.pickInts([]int{500}, []int{1000, 10000}, []int{10000, 50000})
	rounds := cfg.pick(20000, 300000, 1000000)

	for _, n := range ns {
		p := churn.NewPopulation(n, cfg.rng(uint64(n)^0xf15))
		p.StepRounds(10 * n) // warm to stationarity
		b0, r0 := p.Births(), p.Round()
		var deathRate stats.Accumulator
		for i := 0; i < rounds; i++ {
			sizeBefore := p.Size()
			if p.Step() == churn.Death {
				deathRate.Add(1 / float64(sizeBefore))
			} else {
				deathRate.Add(0)
			}
		}
		birthFrac := float64(p.Births()-b0) / float64(p.Round()-r0)
		// deathRate.Mean() estimates P(specific node dies in a round) as
		// E[1{death}/N]; Lemma 4.7 puts it in [1/(2.2n), 1/(1.8n)].
		scaled := deathRate.Mean() * float64(n)
		t.AddRow(report.D(n), report.D(rounds),
			report.F(birthFrac), report.Pass(birthFrac >= 0.47 && birthFrac <= 0.53),
			report.F(scaled), report.Pass(scaled >= 1/2.2 && scaled <= 1/1.8))
	}
	t.AddNote("per-node death probability estimated as E[1{death}/N] per round, scaled by n.")
	return t
}

func runMaxAge(cfg Config) *report.Table {
	e, _ := ByID("F16")
	t := e.newTable("n", "trials", "max age (rounds)", "7·n·ln n", "max/bound", "pass")

	ns := cfg.pickInts([]int{300}, []int{500, 2000}, []int{2000, 10000})
	trials := cfg.pick(2, 6, 10)

	for _, n := range ns {
		bound := 7 * float64(n) * math.Log(float64(n))
		worst := 0
		ok := 0
		for trial := 0; trial < trials; trial++ {
			p := churn.NewPopulation(n, cfg.rng(uint64(n)<<8|uint64(trial)))
			p.StepRounds(int(10 * float64(n) * math.Log(float64(n))))
			age := p.MaxAgeRounds()
			if age > worst {
				worst = age
			}
			if float64(age) <= bound {
				ok++
			}
		}
		t.AddRow(report.D(n), report.D(trials), report.D(worst),
			report.F2(bound), report.F2(float64(worst)/bound),
			report.Pass(ok == trials))
	}
	t.AddNote("each trial runs the jump chain for 10·n·ln n rounds and checks the oldest " +
		"alive node; ages concentrate well below the lemma's 7·n·ln n.")
	return t
}
