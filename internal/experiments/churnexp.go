package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/churn"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F14",
		Title:    "Poisson population concentration",
		PaperRef: "Lemma 4.4",
		Claim:    "for t ≥ 3n, 0.9n ≤ |N_t| ≤ 1.1n with probability ≥ 1 − 2e^(−√n)",
		Run:      runPopulation,
	})
	register(Experiment{
		ID:       "F15",
		Title:    "Jump-chain event probabilities",
		PaperRef: "Lemmas 4.6 and 4.7",
		Claim: "each jump is a birth/death with probability in [0.47, 0.53] at stationarity, " +
			"and a fixed alive node dies in a given round with probability in [1/(2.2n), 1/(1.8n)]",
		Run: runJumpChain,
	})
	register(Experiment{
		ID:       "F16",
		Title:    "Maximum node age",
		PaperRef: "Lemma 4.8",
		Claim:    "with probability ≥ 1 − 2/n^2.1, every alive node was born within the last 7·n·ln n rounds",
		Run:      runMaxAge,
	})
}

func runPopulation(cfg Config) *report.Table {
	e, _ := ByID("F14")
	t := e.newTable("n", "checkpoints", "min |N|/n", "max |N|/n", "in [0.9, 1.1]", "pass")

	ns := cfg.pickInts([]int{500}, []int{1000, 10000}, []int{10000, 100000})
	checkpoints := cfg.pick(50, 400, 1000)

	// Checkpoints walk one population forward in time, so each n is one
	// sequential job; parallelism is across population sizes.
	type nResult struct {
		minR, maxR float64
		inBand     int
	}
	results := parMap(cfg, len(ns), func(i int) nResult {
		n := ns[i]
		p := churn.NewPopulation(n, cfg.rng(uint64(n)))
		p.AdvanceTime(3 * float64(n))
		nr := nResult{minR: math.Inf(1), maxR: math.Inf(-1)}
		for c := 0; c < checkpoints; c++ {
			p.AdvanceTime(float64(n) / 50)
			r := float64(p.Size()) / float64(n)
			if r < nr.minR {
				nr.minR = r
			}
			if r > nr.maxR {
				nr.maxR = r
			}
			if r >= 0.9 && r <= 1.1 {
				nr.inBand++
			}
		}
		return nr
	})
	for i, n := range ns {
		nr := results[i]
		frac := float64(nr.inBand) / float64(checkpoints)
		t.AddRow(report.D(n), report.D(checkpoints), report.F2(nr.minR), report.F2(nr.maxR),
			report.Pct(frac), report.Pass(frac >= 0.99))
	}
	t.AddNote("checkpoints every n/50 time units after a 3n warm-up, matching the lemma's t ≥ 3n.")
	return t
}

func runJumpChain(cfg Config) *report.Table {
	e, _ := ByID("F15")
	t := e.newTable("n", "rounds", "birth fraction", "in [0.47, 0.53]",
		"per-node death ×n", "in [1/2.2, 1/1.8]")

	ns := cfg.pickInts([]int{500}, []int{1000, 10000}, []int{10000, 50000})
	rounds := cfg.pick(20000, 300000, 1000000)

	// The jump chain is one long sequential walk per n; parallelism is
	// across population sizes.
	type nResult struct{ birthFrac, scaled float64 }
	results := parMap(cfg, len(ns), func(i int) nResult {
		n := ns[i]
		p := churn.NewPopulation(n, cfg.rng(uint64(n)^0xf15))
		p.StepRounds(10 * n) // warm to stationarity
		b0, r0 := p.Births(), p.Round()
		var deathRate stats.Accumulator
		for i := 0; i < rounds; i++ {
			sizeBefore := p.Size()
			if p.Step() == churn.Death {
				deathRate.Add(1 / float64(sizeBefore))
			} else {
				deathRate.Add(0)
			}
		}
		// deathRate.Mean() estimates P(specific node dies in a round) as
		// E[1{death}/N]; Lemma 4.7 puts it in [1/(2.2n), 1/(1.8n)].
		return nResult{
			birthFrac: float64(p.Births()-b0) / float64(p.Round()-r0),
			scaled:    deathRate.Mean() * float64(n),
		}
	})
	for i, n := range ns {
		nr := results[i]
		t.AddRow(report.D(n), report.D(rounds),
			report.F(nr.birthFrac), report.Pass(nr.birthFrac >= 0.47 && nr.birthFrac <= 0.53),
			report.F(nr.scaled), report.Pass(nr.scaled >= 1/2.2 && nr.scaled <= 1/1.8))
	}
	t.AddNote("per-node death probability estimated as E[1{death}/N] per round, scaled by n.")
	return t
}

func runMaxAge(cfg Config) *report.Table {
	e, _ := ByID("F16")
	t := e.newTable("n", "trials", "max age (rounds)", "7·n·ln n", "max/bound", "pass")

	ns := cfg.pickInts([]int{300}, []int{500, 2000}, []int{2000, 10000})
	trials := cfg.pick(2, 6, 10)

	type job struct{ n, trial int }
	var jobs []job
	for _, n := range ns {
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, job{n, trial})
		}
	}
	ages := parMap(cfg, len(jobs), func(i int) int {
		j := jobs[i]
		p := churn.NewPopulation(j.n, cfg.rng(uint64(j.n)<<8|uint64(j.trial)))
		p.StepRounds(int(10 * float64(j.n) * math.Log(float64(j.n))))
		return p.MaxAgeRounds()
	})

	k := 0
	for _, n := range ns {
		bound := 7 * float64(n) * math.Log(float64(n))
		worst := 0
		ok := 0
		for trial := 0; trial < trials; trial++ {
			age := ages[k]
			k++
			if age > worst {
				worst = age
			}
			if float64(age) <= bound {
				ok++
			}
		}
		t.AddRow(report.D(n), report.D(trials), report.D(worst),
			report.F2(bound), report.F2(float64(worst)/bound),
			report.Pass(ok == trials))
	}
	t.AddNote("each trial runs the jump chain for 10·n·ln n rounds and checks the oldest " +
		"alive node; ages concentrate well below the lemma's 7·n·ln n.")
	return t
}
