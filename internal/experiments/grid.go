package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "T1",
		Title:    "Result grid: isolated nodes, expansion, flooding across all four models",
		PaperRef: "Table 1",
		Claim: "without regeneration: Θ(1) fraction of isolated nodes, expansion only for big subsets, " +
			"flooding informs a 1−exp(−Ω(d)) fraction in O(log n); with regeneration: Θ(1)-expansion " +
			"and O(log n) complete flooding, w.h.p.",
		Run: runTable1,
	})
}

func runTable1(cfg Config) *report.Table {
	e, _ := ByID("T1")
	t := e.newTable("model", "d", "n", "isolated", "h_small (≤n/10)", "h_large (n/10..n/2)",
		"flood complete", "median rounds", "final informed")

	n := cfg.pick(300, 2000, 8000)
	trials := cfg.pick(2, 8, 16)

	type job struct {
		kind core.Kind
		d    int
	}
	type trialResult struct {
		isolated       float64
		hSmall, hLarge float64
		completed      bool
		rounds         float64
		finalFrac      float64
	}
	var jobs []job
	for _, kind := range core.Kinds() {
		for _, d := range []int{3, 30} {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{kind, d})
			}
		}
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j, trial := jobs[i], i%trials
		salt := uint64(uint8(j.kind))<<24 | uint64(j.d)<<12 | uint64(trial)
		m := cfg.warm(j.kind, n, j.d, cfg.rng(salt))
		g := m.Graph()
		var tr trialResult
		tr.isolated = analysis.IsolatedFraction(g)
		p := expansion.Estimate(g, cfg.rng(salt^0xffff), expansion.Config{
			SampleTrialsPerSize: cfg.pick(6, 16, 24),
			BFSSeeds:            cfg.pick(4, 8, 12),
			GreedySeeds:         cfg.pick(1, 2, 3),
		})
		tr.hSmall, _ = p.MinInRange(1, g.NumAlive()/10)
		tr.hLarge, _ = p.MinInRange(g.NumAlive()/10+1, g.NumAlive()/2)
		res := flood.Run(m, cfg.floodOpts(flood.Options{}))
		tr.completed = res.Completed
		tr.rounds = float64(res.CompletionRound)
		tr.finalFrac = math.Max(res.FinalFraction(), res.PeakFraction)
		return tr
	})

	k := 0
	for range core.Kinds() {
		for range []int{3, 30} {
			j := jobs[k]
			var isolated stats.Accumulator
			hSmall, hLarge := math.Inf(1), math.Inf(1)
			completed := 0
			var rounds, finalFrac []float64
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				isolated.Add(tr.isolated)
				if tr.hSmall < hSmall {
					hSmall = tr.hSmall
				}
				if tr.hLarge < hLarge {
					hLarge = tr.hLarge
				}
				if tr.completed {
					completed++
					rounds = append(rounds, tr.rounds)
				}
				finalFrac = append(finalFrac, tr.finalFrac)
			}
			medianRounds := "—"
			if len(rounds) > 0 {
				medianRounds = report.F2(stats.Median(rounds))
			}
			t.AddRow(j.kind.String(), report.D(j.d), report.D(n),
				report.Pct(isolated.Mean()),
				report.F2(hSmall), report.F2(hLarge),
				report.Pct(float64(completed)/float64(trials)),
				medianRounds,
				report.Pct(stats.Mean(finalFrac)))
		}
	}
	t.AddNote("h values are the smallest boundary/size ratio found by the witness search "+
		"(upper bounds on h_out); %d trials per row.", trials)
	t.AddNote("Expected shape: SDG/PDG rows show isolated nodes (h_small = 0) and no completion " +
		"but high informed fractions for large d; SDGR/PDGR rows show no witness below ≈0.1 and " +
		"100%% completion in few rounds for d = 30.")
	return t
}
