package experiments

import (
	"runtime"
	"testing"
)

// TestParallelismInvariance pins the runner's determinism contract at the
// experiment level: for a fixed seed, the rendered table is bit-identical
// at parallelism 1 (the serial loop), 4, and GOMAXPROCS. T1 and F10
// exercise the flattened cell×trial pattern, F5 the sequential-cell
// pattern (long-lived shared model), and F17 the RNG-splitting path.
func TestParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("parallelism invariance skipped in -short mode")
	}
	for _, id := range []string{"T1", "F5", "F10", "F17"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			want := e.Run(Config{Scale: Smoke, Seed: 7, Parallelism: 1}).Markdown()
			for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
				got := e.Run(Config{Scale: Smoke, Seed: 7, Parallelism: par}).Markdown()
				if got != want {
					t.Fatalf("parallelism %d produced a different table than parallelism 1:\n--- par=1\n%s\n--- par=%d\n%s",
						par, want, par, got)
				}
			}
		})
	}
}

// TestProgressReachesTotal checks that the Progress callback sees every
// trial of an experiment complete.
func TestProgressReachesTotal(t *testing.T) {
	var lastDone, lastTotal int
	e, _ := ByID("F16")
	e.Run(Config{Scale: Smoke, Seed: 7, Parallelism: 2, Progress: func(done, total int) {
		lastDone, lastTotal = done, total
	}})
	if lastTotal == 0 || lastDone != lastTotal {
		t.Fatalf("progress ended at %d/%d", lastDone, lastTotal)
	}
}
