package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestTrackExpansionMode pins the -trackexp wiring: the expansion
// experiments run on the event-driven tracker, report the measurement-mode
// note, and still reproduce the paper's shape — regeneration rows pass
// the 0.1 bound and the no-regeneration band stays ≥ 0.1 — at smoke scale.
func TestTrackExpansionMode(t *testing.T) {
	for _, id := range []string{"F3", "F8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			tab := e.Run(Config{Scale: Smoke, Seed: 5, TrackExpansion: true})
			md := tab.Markdown()
			if !strings.Contains(md, "event-driven tracker") {
				t.Fatalf("%s: tracked table missing the measurement-mode note:\n%s", id, md)
			}
			if strings.Contains(md, "fail") {
				t.Fatalf("%s: tracked run failed the paper's bound:\n%s", id, md)
			}
		})
	}
}

// TestTrackExpansionParallelismInvariance pins bit-identical tables across
// the tracker's flush-plane worker counts (ExpansionParallelism), serial
// through auto.
func TestTrackExpansionParallelismInvariance(t *testing.T) {
	e, ok := ByID("F8")
	if !ok {
		t.Fatal("unknown experiment F8")
	}
	base := Config{Scale: Smoke, Seed: 9, TrackExpansion: true, ExpansionParallelism: 1}
	want := e.Run(base).Markdown()
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0), -1} {
		cfg := base
		cfg.ExpansionParallelism = par
		if got := e.Run(cfg).Markdown(); got != want {
			t.Fatalf("ExpansionParallelism %d produced a different table than serial:\n--- serial\n%s\n--- par=%d\n%s",
				par, want, par, got)
		}
	}
}

// TestTrackExpansionOffMatchesEstimate guards the committed record: with
// TrackExpansion unset, the expansion tables must be exactly the
// per-snapshot Estimate output (the tracked path must not perturb the
// default pipeline's draws).
func TestTrackExpansionOffMatchesEstimate(t *testing.T) {
	e, ok := ByID("F8")
	if !ok {
		t.Fatal("unknown experiment F8")
	}
	a := e.Run(Config{Scale: Smoke, Seed: 3}).Markdown()
	b := e.Run(Config{Scale: Smoke, Seed: 3, ExpansionParallelism: 4}).Markdown()
	if a != b {
		t.Fatal("ExpansionParallelism changed the untracked table")
	}
	if strings.Contains(a, "event-driven tracker") {
		t.Fatal("untracked table carries the tracked-mode note")
	}
}
