package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/onion"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F17",
		Title:    "Onion-skin cascade success and layer growth",
		PaperRef: "Claims 3.10, 3.11; Lemma 7.8",
		Claim: "layers grow by ≥ d/20 per step; the streaming cascade reaches 2n/d informed " +
			"nodes with probability ≥ 1 − 4e^(−d/100) and the extended (Poisson) cascade " +
			"reaches m/10 with probability ≥ 1 − 2e^(−d/576) − o(1)",
		Run: runOnion,
	})
}

func runOnion(cfg Config) *report.Table {
	e, _ := ByID("F17")
	t := e.newTable("variant", "n", "d", "trials", "success", "paper bound",
		"median phases", "median min growth", "d/20")

	n := cfg.pick(20000, 100000, 1000000)
	trials := cfg.pick(10, 60, 200)

	type job struct {
		variant  string
		d        int
		extended bool
		bound    float64
	}
	jobs := []job{
		{"streaming", 200, false, 1 - 4*math.Exp(-200.0/100)},
		{"streaming", 400, false, 1 - 4*math.Exp(-400.0/100)},
		{"extended", 1152, true, 1 - 2*math.Exp(-1152.0/576)},
		{"extended", 2304, true, 1 - 2*math.Exp(-2304.0/576)},
	}
	for _, j := range jobs {
		// Trials of one variant historically shared a single stream; the
		// parallel engine splits one child per trial from that stream
		// instead, which keeps the output independent of worker count.
		cascades := parMapRNG(cfg, cfg.rng(uint64(j.d)<<4), trials,
			func(trial int, r *rng.RNG) onion.Result {
				if j.extended {
					return onion.Extended(n, j.d, 0, r)
				}
				return onion.Streaming(n, j.d, r)
			})
		success := 0
		var phases, growth []float64
		for _, res := range cascades {
			if res.Reached {
				success++
				phases = append(phases, float64(res.Phases))
				if f := res.MinGrowthFactor(); !math.IsInf(f, 1) {
					growth = append(growth, f)
				}
			}
		}
		med := func(xs []float64) string {
			if len(xs) == 0 {
				return "—"
			}
			return report.F2(stats.Median(xs))
		}
		t.AddRow(j.variant, report.D(n), report.D(j.d), report.D(trials),
			report.Pct(float64(success)/float64(trials)), report.Pct(j.bound),
			med(phases), med(growth), report.F2(float64(j.d)/20))
	}
	t.AddNote("min growth is the smallest old-layer growth factor within a successful cascade; " +
		"Claim 3.10 predicts ≥ d/20 while layers are below n/d. Success probabilities dominate " +
		"the paper's (loose) lower bounds.")
	return t
}
