package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/overlay"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F21",
		Title:    "Overlay realism: address-gossip P2P network vs the idealized PDGR model",
		PaperRef: "Section 1.1 (motivation), Section 5",
		Claim: "a Bitcoin-style overlay — bounded address books seeded at join and refreshed by " +
			"ADDR gossip, redial on peer loss — behaves like PDGR with idealized uniform " +
			"sampling: \"in the long run each full-node samples its out-neighbors from a " +
			"'sufficiently random' subset of all the nodes\"",
		Run: runOverlayRealism,
	})
	register(Experiment{
		ID:       "F22",
		Title:    "Bounded-degree dynamics (the Section 5 open question)",
		PaperRef: "Section 5",
		Claim: "the plain models reach Θ(log n) maximum degree; the open question asks for " +
			"natural fully-random dynamics with bounded degree and good expansion — tested " +
			"here with a hard inbound cap and with power-of-2-choices regeneration",
		Run: runBoundedDegree,
	})
	register(Experiment{
		ID:       "F23",
		Title:    "Giant component vs informable fraction",
		PaperRef: "Theorem 3.8 (structural view), Lemma 3.5",
		Claim: "the 1−e^{−Ω(d)} informable fraction of the no-regeneration models is their " +
			"giant connected component; isolated nodes and micro-components make up the rest",
		Run: runGiantComponent,
	})
}

func runOverlayRealism(cfg Config) *report.Table {
	e, _ := ByID("F21")
	t := e.newTable("network", "n", "d", "mean out", "max degree", "isolated",
		"min ratio found", "flood complete", "median rounds")

	n := cfg.pick(300, 2000, 8000)
	d := 16
	trials := cfg.pick(2, 5, 8)

	networks := []string{"overlay", "PDGR"}
	type job struct {
		which string
		trial int
	}
	var jobs []job
	for _, which := range networks {
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, job{which, trial})
		}
	}
	type trialResult struct {
		meanOut, isolated float64
		maxDeg            int
		ratio             float64
		completed         bool
		rounds            float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(len(j.which))<<28 | uint64(j.trial)
		var m core.Model
		if j.which == "overlay" {
			o := overlay.New(overlay.Config{N: n, D: d, MaxIn: 8 * d}, cfg.rng(salt))
			o.WarmUp()
			m = o
		} else {
			m = cfg.warm(core.PDGR, n, d, cfg.rng(salt))
		}
		g := m.Graph()
		ds := analysis.Degrees(g)
		var tr trialResult
		tr.meanOut = ds.MeanOut
		tr.maxDeg = ds.Max
		tr.isolated = analysis.IsolatedFraction(g)
		p := expansion.Estimate(g, cfg.rng(salt^0xcccc), expCfg(cfg))
		tr.ratio, _ = p.Min()
		res := flood.Run(m, cfg.floodOpts(flood.Options{Source: freshSource(m)}))
		tr.completed = res.Completed
		tr.rounds = float64(res.CompletionRound)
		return tr
	})

	k := 0
	for _, which := range networks {
		var meanOut stats.Accumulator
		maxDeg := 0
		var isolated stats.Accumulator
		minRatio := math.Inf(1)
		completed := 0
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			tr := results[k]
			k++
			meanOut.Add(tr.meanOut)
			if tr.maxDeg > maxDeg {
				maxDeg = tr.maxDeg
			}
			isolated.Add(tr.isolated)
			if tr.ratio < minRatio {
				minRatio = tr.ratio
			}
			if tr.completed {
				completed++
				rounds = append(rounds, tr.rounds)
			}
		}
		med := math.NaN()
		if len(rounds) > 0 {
			med = stats.Median(rounds)
		}
		t.AddRow(which, report.D(n), report.D(d),
			report.F2(meanOut.Mean()), report.D(maxDeg), report.Pct(isolated.Mean()),
			report.F2(minRatio), report.Pct(float64(completed)/float64(trials)),
			report.F2(med))
	}
	t.AddNote("overlay protocol: address book of 256 entries seeded with 4d addresses at join, "+
		"ADDR gossip every 8 time units to 2 neighbors, redial every 0.5 time units, inbound "+
		"cap 8d; %d networks per row. The overlay matches the idealized model on every "+
		"observable the paper's theorems speak about.", trials)
	return t
}

func runBoundedDegree(cfg Config) *report.Table {
	e, _ := ByID("F22")
	t := e.newTable("policy", "n", "d", "max in-degree", "max/ln n", "min ratio found",
		"flood complete", "median rounds")

	d := 20
	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(2, 4, 6)

	policies := []core.DegreePolicy{
		{},             // plain PDGR: Θ(log n) max degree
		{InCap: 2 * d}, // hard cap
		{Choices: 2},   // power of two choices
	}
	type job struct {
		policy core.DegreePolicy
		n      int
		trial  int
	}
	var jobs []job
	for _, policy := range policies {
		for _, n := range ns {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{policy, n, trial})
			}
		}
	}
	type trialResult struct {
		maxIn     int
		ratio     float64
		completed bool
		rounds    float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(j.policy.InCap)<<20 | uint64(j.policy.Choices)<<16 | uint64(j.n)<<2 | uint64(j.trial)
		m := core.NewPoissonVariant(j.n, d, true, j.policy, cfg.rng(salt))
		m.WarmUp()
		g := m.Graph()
		var tr trialResult
		g.ForEachAlive(func(h graph.Handle) bool {
			if in := g.InDegreeLive(h); in > tr.maxIn {
				tr.maxIn = in
			}
			return true
		})
		p := expansion.Estimate(g, cfg.rng(salt^0xdddd), expCfg(cfg))
		tr.ratio, _ = p.Min()
		res := flood.Run(m, cfg.floodOpts(flood.Options{}))
		tr.completed = res.Completed
		tr.rounds = float64(res.CompletionRound)
		return tr
	})

	k := 0
	for _, policy := range policies {
		for _, n := range ns {
			maxIn := 0
			minRatio := math.Inf(1)
			completed := 0
			var rounds []float64
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				if tr.maxIn > maxIn {
					maxIn = tr.maxIn
				}
				if tr.ratio < minRatio {
					minRatio = tr.ratio
				}
				if tr.completed {
					completed++
					rounds = append(rounds, tr.rounds)
				}
			}
			med := math.NaN()
			if len(rounds) > 0 {
				med = stats.Median(rounds)
			}
			t.AddRow(policy.String(), report.D(n), report.D(d),
				report.D(maxIn), report.F2(float64(maxIn)/math.Log(float64(n))),
				report.F2(minRatio), report.Pct(float64(completed)/float64(trials)),
				report.F2(med))
		}
	}
	t.AddNote("all rows use PDGR dynamics with d = %d, %d snapshots each. Both bounded "+
		"mechanisms keep the maximum degree from growing with n while preserving the "+
		"expansion and O(log n) flooding of Theorems 4.16/4.20 — evidence for the open "+
		"question's conjecture.", d, trials)
	return t
}

func runGiantComponent(cfg Config) *report.Table {
	e, _ := ByID("F23")
	t := e.newTable("model", "n", "d", "giant fraction", "1−e^(−2d)/6 ref", "components",
		"isolated", "peak informed", "|giant − informed|")

	n := cfg.pick(500, 3000, 10000)
	trials := cfg.pick(2, 5, 8)

	kinds := []core.Kind{core.SDG, core.PDG}
	dds := []int{2, 3, 4, 6}
	type job struct {
		kind  core.Kind
		dd    int
		trial int
	}
	var jobs []job
	for _, kind := range kinds {
		for _, dd := range dds {
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{kind, dd, trial})
			}
		}
	}
	type trialResult struct {
		cs       analysis.ComponentStats
		informed float64
	}
	results := parMap(cfg, len(jobs), func(i int) trialResult {
		j := jobs[i]
		salt := uint64(uint8(j.kind))<<48 | uint64(j.dd)<<8 | uint64(j.trial)
		m := cfg.warm(j.kind, n, j.dd, cfg.rng(salt))
		cs := analysis.Components(m.Graph())
		res := flood.Run(m, cfg.floodOpts(flood.Options{KeepTrajectory: true, RunToMax: true,
			MaxRounds: flood.DefaultMaxRounds(n)}))
		return trialResult{cs: cs, informed: res.PeakFraction}
	})

	k := 0
	for _, kind := range kinds {
		for _, dd := range dds {
			var giant, informed stats.Accumulator
			comps, isolated := 0, 0
			for trial := 0; trial < trials; trial++ {
				tr := results[k]
				k++
				giant.Add(tr.cs.GiantFraction)
				comps += tr.cs.Count
				isolated += tr.cs.IsolatedCount
				informed.Add(tr.informed)
			}
			ref := 1 - math.Exp(-2*float64(dd))/6
			t.AddRow(kind.String(), report.D(n), report.D(dd),
				report.Pct(giant.Mean()), report.Pct(ref),
				report.D(comps/trials), report.D(isolated/trials),
				report.Pct(informed.Mean()),
				report.Pct(math.Abs(giant.Mean()-informed.Mean())))
		}
	}
	t.AddNote("%d snapshots per row. The broadcast's peak informed fraction tracks the giant "+
		"component: under churn a broadcast can even exceed the snapshot giant fraction "+
		"slightly (newborns attach to informed nodes), but the two converge as d grows — "+
		"the structural reading of the 1−e^{−Ω(d)} fractions in Theorems 3.8/4.13.", trials)
	return t
}
