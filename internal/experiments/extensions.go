package experiments

import (
	"math"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/overlay"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "F21",
		Title:    "Overlay realism: address-gossip P2P network vs the idealized PDGR model",
		PaperRef: "Section 1.1 (motivation), Section 5",
		Claim: "a Bitcoin-style overlay — bounded address books seeded at join and refreshed by " +
			"ADDR gossip, redial on peer loss — behaves like PDGR with idealized uniform " +
			"sampling: \"in the long run each full-node samples its out-neighbors from a " +
			"'sufficiently random' subset of all the nodes\"",
		Run: runOverlayRealism,
	})
	register(Experiment{
		ID:       "F22",
		Title:    "Bounded-degree dynamics (the Section 5 open question)",
		PaperRef: "Section 5",
		Claim: "the plain models reach Θ(log n) maximum degree; the open question asks for " +
			"natural fully-random dynamics with bounded degree and good expansion — tested " +
			"here with a hard inbound cap and with power-of-2-choices regeneration",
		Run: runBoundedDegree,
	})
	register(Experiment{
		ID:       "F23",
		Title:    "Giant component vs informable fraction",
		PaperRef: "Theorem 3.8 (structural view), Lemma 3.5",
		Claim: "the 1−e^{−Ω(d)} informable fraction of the no-regeneration models is their " +
			"giant connected component; isolated nodes and micro-components make up the rest",
		Run: runGiantComponent,
	})
}

func runOverlayRealism(cfg Config) *report.Table {
	e, _ := ByID("F21")
	t := e.newTable("network", "n", "d", "mean out", "max degree", "isolated",
		"min ratio found", "flood complete", "median rounds")

	n := cfg.pick(300, 2000, 8000)
	d := 16
	trials := cfg.pick(2, 5, 8)

	for _, which := range []string{"overlay", "PDGR"} {
		var meanOut stats.Accumulator
		maxDeg := 0
		var isolated stats.Accumulator
		minRatio := math.Inf(1)
		completed := 0
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			salt := uint64(len(which))<<28 | uint64(trial)
			var m core.Model
			if which == "overlay" {
				o := overlay.New(overlay.Config{N: n, D: d, MaxIn: 8 * d}, cfg.rng(salt))
				o.WarmUp()
				m = o
			} else {
				m = warm(core.PDGR, n, d, cfg.rng(salt))
			}
			g := m.Graph()
			ds := analysis.Degrees(g)
			meanOut.Add(ds.MeanOut)
			if ds.Max > maxDeg {
				maxDeg = ds.Max
			}
			isolated.Add(analysis.IsolatedFraction(g))
			p := expansion.Estimate(g, cfg.rng(salt^0xcccc), expCfg(cfg))
			if v, _ := p.Min(); v < minRatio {
				minRatio = v
			}
			res := flood.Run(m, flood.Options{Source: freshSource(m)})
			if res.Completed {
				completed++
				rounds = append(rounds, float64(res.CompletionRound))
			}
		}
		med := math.NaN()
		if len(rounds) > 0 {
			med = stats.Median(rounds)
		}
		t.AddRow(which, report.D(n), report.D(d),
			report.F2(meanOut.Mean()), report.D(maxDeg), report.Pct(isolated.Mean()),
			report.F2(minRatio), report.Pct(float64(completed)/float64(trials)),
			report.F2(med))
	}
	t.AddNote("overlay protocol: address book of 256 entries seeded with 4d addresses at join, "+
		"ADDR gossip every 8 time units to 2 neighbors, redial every 0.5 time units, inbound "+
		"cap 8d; %d networks per row. The overlay matches the idealized model on every "+
		"observable the paper's theorems speak about.", trials)
	return t
}

func runBoundedDegree(cfg Config) *report.Table {
	e, _ := ByID("F22")
	t := e.newTable("policy", "n", "d", "max in-degree", "max/ln n", "min ratio found",
		"flood complete", "median rounds")

	d := 20
	ns := cfg.pickInts([]int{400}, []int{1000, 4000}, []int{4000, 16000})
	trials := cfg.pick(2, 4, 6)

	policies := []core.DegreePolicy{
		{},             // plain PDGR: Θ(log n) max degree
		{InCap: 2 * d}, // hard cap
		{Choices: 2},   // power of two choices
	}
	for _, policy := range policies {
		for _, n := range ns {
			maxIn := 0
			minRatio := math.Inf(1)
			completed := 0
			var rounds []float64
			for trial := 0; trial < trials; trial++ {
				salt := uint64(policy.InCap)<<20 | uint64(policy.Choices)<<16 | uint64(n)<<2 | uint64(trial)
				m := core.NewPoissonVariant(n, d, true, policy, cfg.rng(salt))
				m.WarmUp()
				g := m.Graph()
				g.ForEachAlive(func(h graph.Handle) bool {
					if in := g.InDegreeLive(h); in > maxIn {
						maxIn = in
					}
					return true
				})
				p := expansion.Estimate(g, cfg.rng(salt^0xdddd), expCfg(cfg))
				if v, _ := p.Min(); v < minRatio {
					minRatio = v
				}
				res := flood.Run(m, flood.Options{})
				if res.Completed {
					completed++
					rounds = append(rounds, float64(res.CompletionRound))
				}
			}
			med := math.NaN()
			if len(rounds) > 0 {
				med = stats.Median(rounds)
			}
			t.AddRow(policy.String(), report.D(n), report.D(d),
				report.D(maxIn), report.F2(float64(maxIn)/math.Log(float64(n))),
				report.F2(minRatio), report.Pct(float64(completed)/float64(trials)),
				report.F2(med))
		}
	}
	t.AddNote("all rows use PDGR dynamics with d = %d, %d snapshots each. Both bounded "+
		"mechanisms keep the maximum degree from growing with n while preserving the "+
		"expansion and O(log n) flooding of Theorems 4.16/4.20 — evidence for the open "+
		"question's conjecture.", d, trials)
	return t
}

func runGiantComponent(cfg Config) *report.Table {
	e, _ := ByID("F23")
	t := e.newTable("model", "n", "d", "giant fraction", "1−e^(−2d)/6 ref", "components",
		"isolated", "peak informed", "|giant − informed|")

	n := cfg.pick(500, 3000, 10000)
	trials := cfg.pick(2, 5, 8)

	for _, kind := range []core.Kind{core.SDG, core.PDG} {
		for _, dd := range []int{2, 3, 4, 6} {
			var giant, informed stats.Accumulator
			comps, isolated := 0, 0
			for trial := 0; trial < trials; trial++ {
				salt := uint64(uint8(kind))<<48 | uint64(dd)<<8 | uint64(trial)
				m := warm(kind, n, dd, cfg.rng(salt))
				cs := analysis.Components(m.Graph())
				giant.Add(cs.GiantFraction)
				comps += cs.Count
				isolated += cs.IsolatedCount
				res := flood.Run(m, flood.Options{KeepTrajectory: true, RunToMax: true,
					MaxRounds: flood.DefaultMaxRounds(n)})
				informed.Add(res.PeakFraction)
			}
			ref := 1 - math.Exp(-2*float64(dd))/6
			t.AddRow(kind.String(), report.D(n), report.D(dd),
				report.Pct(giant.Mean()), report.Pct(ref),
				report.D(comps/trials), report.D(isolated/trials),
				report.Pct(informed.Mean()),
				report.Pct(math.Abs(giant.Mean()-informed.Mean())))
		}
	}
	t.AddNote("%d snapshots per row. The broadcast's peak informed fraction tracks the giant "+
		"component: under churn a broadcast can even exceed the snapshot giant fraction "+
		"slightly (newborns attach to informed nodes), but the two converge as d grows — "+
		"the structural reading of the 1−e^{−Ω(d)} fractions in Theorems 3.8/4.13.", trials)
	return t
}
