package maprange_test

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/lint/linttest"
	"github.com/dyngraph/churnnet/internal/lint/maprange"
)

// TestMaprange drives the analyzer over the testdata tree: order-sensitive
// bodies (min reduction, float accumulation, early return, unsorted key
// collection) fire; the commutative-integer / set-insert / delete whitelist,
// the collect-then-sort idiom, and //churnvet:ordered annotations do not.
// plainpkg is off the deterministic roster and is never checked.
func TestMaprange(t *testing.T) {
	linttest.Run(t, maprange.Analyzer, "testdata",
		"churnvettest/internal/expansion",
		"churnvettest/plainpkg",
	)
}
