// Package expansion is maprange testdata: range-over-map in a
// deterministic package, covering the order-insensitivity whitelist, the
// //churnvet:ordered suppression, and order-sensitive bodies.
package expansion

import "sort"

type witness struct {
	Size  int
	Ratio float64
}

// minReduce is the canonical order-sensitive body: a min reduction over
// floats with a struct copy.
func minReduce(m map[int]witness) witness {
	var best witness
	for size, w := range m { // want `range over map map\[int\]witness .* not provably order-insensitive`
		if w.Ratio < best.Ratio {
			best = w
			best.Size = size
		}
	}
	return best
}

// sortedKeys is the sanctioned rewrite: collect-then-sort erases the map's
// iteration order, so the key-collection loop is accepted without any
// annotation.
func sortedKeys(m map[int]witness) witness {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var best witness
	for _, k := range keys {
		if w := m[k]; w.Ratio < best.Ratio {
			best = w
		}
	}
	return best
}

// counts only accumulates through commutative integer ops: allowed.
func counts(m map[string]int) (int, int) {
	total := 0
	n := 0
	var mask uint64
	for _, v := range m {
		total += v
		n++
		mask |= uint64(v)
		if v > 100 {
			total += 2 * v
		}
	}
	return total + int(mask), n
}

// setBuild inserts into set-shaped maps: allowed.
func setBuild(src map[int]int) map[int]bool {
	out := make(map[int]bool, len(src))
	seen := make(map[int]struct{})
	for k, v := range src {
		out[k+v] = true
		seen[k] = struct{}{}
	}
	for k := range seen {
		delete(src, k)
	}
	return out
}

// locals confined to one iteration are free; the iteration's own work can
// be arbitrary as long as nothing order-dependent escapes.
func localWork(m map[int]int) int {
	total := 0
	for k, v := range m {
		x := k * v
		y := x + 1
		if y > 10 {
			y = 10
		}
		total += y
	}
	return total
}

// floatAccum is NOT exact under reordering: flagged.
func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map map\[int\]float64`
		sum += v
	}
	return sum
}

// earlyReturn leaks which key was seen first: flagged.
func earlyReturn(m map[int]int) int {
	for k := range m { // want `range over map map\[int\]int`
		return k
	}
	return -1
}

// justified carries the annotation (above-line form).
func justified(m map[int]int) int {
	best := -1
	//churnvet:ordered max over ints is order-insensitive; analyzer whitelist has no max-reduce
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

// justifiedInline carries the annotation on the range line itself.
func justifiedInline(m map[int]chan int) {
	for _, ch := range m { //churnvet:ordered close order unobservable: no goroutine selects across these
		close(ch)
	}
}

// collectNoSort appends but never sorts: the slice keeps the random
// iteration order, so the loop is flagged.
func collectNoSort(m map[int]witness) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want `range over map map\[int\]witness`
		keys = append(keys, k)
	}
	return keys
}

// sliceRange never fires: only maps have randomized order.
func sliceRange(s []float64) float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum
}
