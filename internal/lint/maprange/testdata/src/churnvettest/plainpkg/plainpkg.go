// Package plainpkg is maprange testdata: not on the deterministic roster,
// so arbitrary range-over-map is legal.
package plainpkg

func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
