// Package maprange implements the churnvet analyzer that flags range
// statements over map types in the deterministic packages.
//
// Go randomizes map iteration order per run, so a range-over-map whose body
// has any order-sensitive effect is the canonical way the "bit-for-bit at
// any worker count" contract rots. A range over a map is accepted only
// when:
//
//   - the loop body is provably order-insensitive under a conservative
//     whitelist: iteration-local work plus accumulation through
//     commutative-associative integer ops (+=, |=, ^=, &=, *=, ++, --),
//     set inserts (m[k] = true / m[k] = struct{}{}) and delete(...), with
//     control flow limited to pure if/continue; or
//   - the body only collects keys/values into a function-local slice that
//     is subsequently passed to sort.* / slices.Sort* in the same function
//     (the sorted-key-iteration idiom); or
//   - the statement carries an explicit justification:
//     //churnvet:ordered <reason>  (same line or the line above).
//
// Everything else — min/max reductions, float accumulation, appends,
// early returns, function calls — is reported: iterate a sorted key slice
// instead (see expansion.Profile.MinInRange for the idiom).
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dyngraph/churnnet/internal/lint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "maprange",
	Doc:      "flag range-over-map with order-sensitive bodies in the deterministic packages",
	URL:      "https://github.com/dyngraph/churnnet/blob/main/DESIGN.md",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var detpkgs string

func init() {
	Analyzer.Flags.StringVar(&detpkgs, "detpkgs", "", "comma-separated package-path suffixes overriding the deterministic-package roster")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lint.IsDeterministicPkg(pass.Pkg.Path(), detpkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := lint.ParseDirectives(pass)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rng := n.(*ast.RangeStmt)
		if lint.IsTestFile(pass, rng.Pos()) {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if _, ok := dirs.At(rng.Pos(), "ordered"); ok {
			return true
		}
		chk := &checker{pass: pass, rng: rng}
		chk.collectLocals(rng)
		if chk.bodyAllowed(rng.Body) {
			return true
		}
		if chk.collectThenSort(stack) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map %s in deterministic package: body is not provably order-insensitive; iterate sorted keys, or annotate //churnvet:ordered <reason>",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
		return true
	})
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	rng    *ast.RangeStmt
	locals map[types.Object]bool // objects declared inside the loop (incl. key/value)
}

// collectLocals records every object declared within the range statement:
// writes to those cannot leak across iterations.
func (c *checker) collectLocals(rng *ast.RangeStmt) {
	c.locals = make(map[types.Object]bool)
	ast.Inspect(rng, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
		return true
	})
	// The key/value vars of `for k, v = range m` (assignment form) are
	// written each iteration by the range itself; treat them as local.
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				c.locals[obj] = true
			}
		}
	}
}

func (c *checker) bodyAllowed(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtAllowed(s) {
			return false
		}
	}
	return true
}

func (c *checker) stmtAllowed(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return c.bodyAllowed(st)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	case *ast.IncDecStmt:
		return c.writeAllowed(st.X, true)
	case *ast.AssignStmt:
		return c.assignAllowed(st)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.exprPure(v) {
					return false
				}
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil && !c.stmtAllowed(st.Init) {
			return false
		}
		if !c.exprPure(st.Cond) {
			return false
		}
		if !c.bodyAllowed(st.Body) {
			return false
		}
		if st.Else != nil {
			return c.stmtAllowed(st.Else)
		}
		return true
	case *ast.ExprStmt:
		// delete(m, k) is commutative across iterations.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// assignAllowed accepts iteration-local writes, commutative integer
// accumulation onto outer variables, and set inserts.
func (c *checker) assignAllowed(st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.DEFINE:
		for _, r := range st.Rhs {
			if !c.exprPure(r) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		if len(st.Lhs) != len(st.Rhs) {
			return false
		}
		for _, r := range st.Rhs {
			if !c.exprPure(r) {
				return false
			}
		}
		for _, l := range st.Lhs {
			if c.isLocalWrite(l) {
				continue
			}
			if !c.isSetInsert(l, st) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN, token.MUL_ASSIGN:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		return c.exprPure(st.Rhs[0]) && c.writeAllowed(st.Lhs[0], true)
	}
	return false
}

// writeAllowed reports whether a compound write target is safe: an
// iteration-local variable, or (needInt) an integer-typed outer variable —
// integer +=/|=/^=/&=/*=/++ are commutative and associative, so the
// iteration order cannot be observed.
func (c *checker) writeAllowed(l ast.Expr, needInt bool) bool {
	if c.isLocalWrite(l) {
		return true
	}
	if !c.exprPure(l) { // index/selector chains must themselves be pure
		return false
	}
	if !needInt {
		return true
	}
	t := c.pass.TypesInfo.TypeOf(l)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isLocalWrite reports whether the write target is rooted at an object
// declared inside the loop.
func (c *checker) isLocalWrite(l ast.Expr) bool {
	for {
		switch e := l.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.ObjectOf(e)
			return obj != nil && c.locals[obj]
		case *ast.IndexExpr:
			l = e.X
		case *ast.SelectorExpr:
			l = e.X
		case *ast.StarExpr:
			l = e.X
		case *ast.ParenExpr:
			l = e.X
		default:
			return false
		}
	}
}

// collectThenSort recognizes the sorted-key-iteration idiom: the loop body
// is exactly `s = append(s, <pure exprs>...)` onto a slice variable, and a
// later statement in the enclosing function passes s into sort.* or
// slices.Sort*. The overall effect is order-insensitive because the sort
// erases the map's iteration order before anything can observe it.
func (c *checker) collectThenSort(stack []ast.Node) bool {
	if len(c.rng.Body.List) != 1 {
		return false
	}
	asg, ok := c.rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.ObjectOf(lhs)
	if obj == nil {
		return false
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || c.pass.TypesInfo.ObjectOf(base) != obj {
		return false
	}
	for _, a := range call.Args[1:] {
		if !c.exprPure(a) {
			return false
		}
	}
	// Walk out to the enclosing function and look for a sort call on obj
	// after the loop.
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		sc, ok := n.(*ast.CallExpr)
		if !ok || sc.Pos() < c.rng.End() {
			return true
		}
		sel, ok := ast.Unparen(sc.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.pass.TypesInfo.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range sc.Args {
			found := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}

// isSetInsert accepts m[k] = true / m[k] = struct{}{} onto bool- or
// struct{}-valued maps: insertion order into a set is unobservable.
func (c *checker) isSetInsert(l ast.Expr, st *ast.AssignStmt) bool {
	idx, ok := ast.Unparen(l).(*ast.IndexExpr)
	if !ok {
		return false
	}
	mt, ok := c.pass.TypesInfo.TypeOf(idx.X).Underlying().(*types.Map)
	if !ok {
		return false
	}
	if !c.exprPure(idx.X) || !c.exprPure(idx.Index) {
		return false
	}
	// Find the RHS paired with this LHS.
	var rhs ast.Expr
	for i, lh := range st.Lhs {
		if lh == l && i < len(st.Rhs) {
			rhs = st.Rhs[i]
		}
	}
	if rhs == nil {
		return false
	}
	switch et := mt.Elem().Underlying().(type) {
	case *types.Basic:
		if et.Kind() != types.Bool {
			return false
		}
		id, ok := ast.Unparen(rhs).(*ast.Ident)
		return ok && (id.Name == "true" || id.Name == "false")
	case *types.Struct:
		return et.NumFields() == 0
	}
	return false
}

// exprPure reports whether evaluating e has no side effects and calls no
// functions (len/cap/min/max excepted).
func (c *checker) exprPure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return true // type conversion: pure if the operand is
			}
			id, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok {
				pure = false
				return false
			}
			b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
			if !ok {
				pure = false
				return false
			}
			switch b.Name() {
			case "len", "cap", "min", "max":
			default:
				pure = false
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW { // channel receive
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}
