// Package churnvet aggregates the five churnvet analyzers in the order
// they are documented (DESIGN.md "Static enforcement of the determinism
// contract"). cmd/churnvet wires them into `go vet -vettool`.
package churnvet

import (
	"golang.org/x/tools/go/analysis"

	"github.com/dyngraph/churnnet/internal/lint/cmdexit"
	"github.com/dyngraph/churnnet/internal/lint/detsource"
	"github.com/dyngraph/churnnet/internal/lint/hookfire"
	"github.com/dyngraph/churnnet/internal/lint/maprange"
	"github.com/dyngraph/churnnet/internal/lint/shardstage"
)

// Analyzers returns the full churnvet suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detsource.Analyzer,
		maprange.Analyzer,
		hookfire.Analyzer,
		shardstage.Analyzer,
		cmdexit.Analyzer,
	}
}
