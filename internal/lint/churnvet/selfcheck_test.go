package churnvet_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsChurnvetClean is the CI smoke test: it builds cmd/churnvet and
// runs it over the whole module via the vet-tool protocol. The tree must
// stay churnvet-clean — a finding here means a determinism or hook-plane
// contract violation landed (or needs a //churnvet:* justification).
func TestRepoIsChurnvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-repo vet run")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	root := moduleRoot(t, goTool)
	bin := filepath.Join(t.TempDir(), "churnvet")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/churnvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building churnvet: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("churnvet findings (the tree must stay churnvet-clean):\n%s", out)
	}
}

// moduleRoot resolves the module directory from the test's working
// directory (the package dir) via the go tool.
func moduleRoot(t *testing.T, goTool string) string {
	out, err := exec.Command(goTool, "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
