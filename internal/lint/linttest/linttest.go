// Package linttest is a self-contained analysistest replacement for the
// churnvet analyzers.
//
// golang.org/x/tools/go/analysis/analysistest is not vendored with the Go
// toolchain (only the analysis framework itself is), and this repo builds
// offline from its vendor directory. linttest reimplements the part the
// churnvet suite needs: load a testdata package tree from
// testdata/src/<path>, typecheck it against the standard library (source
// importer) and its testdata-local imports, run an analyzer and its
// Requires closure in dependency order — carrying object facts across
// testdata packages — and compare reported diagnostics against
// analysistest-style trailing comments:
//
//	x := rand.Int() // want "call to global math/rand"
//
// Each `// want` comment holds one or more double- or back-quoted regexes;
// every regex must be matched by a diagnostic on that line and every
// diagnostic must match a regex.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named package from dir/src/<path>, applies the analyzer,
// and reports mismatches against the packages' `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	r := &runner{
		loader:   l,
		results:  make(map[resultKey]*passResult),
		objFacts: make(map[types.Object][]analysis.Fact),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
	}
	for _, path := range paths {
		pi, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		res, err := r.run(a, pi)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkDiagnostics(t, l.fset, pi, res.diagnostics)
	}
}

// SetFlag sets an analyzer flag for the duration of the test.
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("analyzer %s has no flag -%s", a.Name, name)
	}
	old := f.Value.String()
	if err := a.Flags.Set(name, value); err != nil {
		t.Fatalf("setting -%s=%s: %v", name, value, err)
	}
	t.Cleanup(func() { _ = a.Flags.Set(name, old) })
}

// --- package loading ---

type pkgInfo struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*pkgInfo
}

func newLoader(root string) *loader {
	l := &loader{fset: token.NewFileSet(), root: root, pkgs: make(map[string]*pkgInfo)}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer: testdata-local paths load from the
// tree, everything else falls back to the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi.pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = pi
	return pi, nil
}

// --- analyzer running ---

type resultKey struct {
	a   *analysis.Analyzer
	pkg string
}

type passResult struct {
	value       interface{}
	diagnostics []analysis.Diagnostic
}

type runner struct {
	loader   *loader
	results  map[resultKey]*passResult
	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
}

// run applies the analyzer to the package, first running it over
// testdata-local imports (for facts) and its Requires closure over the
// package itself.
func (r *runner) run(a *analysis.Analyzer, pi *pkgInfo) (*passResult, error) {
	key := resultKey{a, pi.path}
	if res, ok := r.results[key]; ok {
		return res, nil
	}
	// Horizontal: facts flow from imports.
	if len(a.FactTypes) > 0 {
		for _, imp := range pi.pkg.Imports() {
			if dep, ok := r.loader.pkgs[imp.Path()]; ok {
				if _, err := r.run(a, dep); err != nil {
					return nil, err
				}
			}
		}
	}
	// Vertical: results flow from required analyzers on the same package.
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		res, err := r.run(req, pi)
		if err != nil {
			return nil, err
		}
		resultOf[req] = res.value
	}

	res := &passResult{}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       r.loader.fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			res.diagnostics = append(res.diagnostics, d)
		},
		ReadFile: os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return importFact(r.objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			r.objFacts[obj] = append(r.objFacts[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return importFact(r.pkgFacts[pkg], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			r.pkgFacts[pi.pkg] = append(r.pkgFacts[pi.pkg], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, facts := range r.objFacts {
				for _, f := range facts {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for pkg, facts := range r.pkgFacts {
				for _, f := range facts {
					out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
				}
			}
			return out
		},
	}
	value, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	res.value = value
	r.results[key] = res
	return res, nil
}

// importFact copies a stored fact of matching concrete type into the
// caller's pointer, mirroring the analysis framework's semantics.
func importFact(stored []analysis.Fact, fact analysis.Fact) bool {
	want := reflect.TypeOf(fact)
	for _, f := range stored {
		if reflect.TypeOf(f) == want {
			// Both are pointers to the same struct type; shallow-copy.
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// --- expectation checking ---

var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

type expectation struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

// checkDiagnostics matches diagnostics against `// want` comments.
func checkDiagnostics(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file#line" -> expectations
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				k := posKey(p.Filename, p.Line)
				for _, raw := range parseQuoted(t, p, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, raw, err)
					}
					wants[k] = append(wants[k], &expectation{re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := posKey(p.Filename, p.Line)
		matched := false
		for _, exp := range wants[k] {
			if !exp.consumed && exp.re.MatchString(d.Message) {
				exp.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.consumed {
				t.Errorf("%s: expected diagnostic matching %q was not reported", strings.ReplaceAll(k, "#", ":"), exp.raw)
			}
		}
	}
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s#%d", file, line)
}

// parseQuoted splits `"re1" "re2"` / backquoted forms into raw strings.
func parseQuoted(t *testing.T, p token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s:%d: unterminated want string: %s", p.Filename, p.Line, s)
			}
			raw, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", p.Filename, p.Line, s[:end+1], err)
			}
			out = append(out, raw)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want string: %s", p.Filename, p.Line, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", p.Filename, p.Line, s)
		}
	}
	return out
}
