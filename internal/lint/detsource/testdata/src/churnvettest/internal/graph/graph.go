// Package graph is detsource testdata: AutoWorkers is the built-in
// worker-count sink, recognized by name and exported as a fact.
package graph

import "runtime"

// AutoWorkers mirrors the real policy function: it may read GOMAXPROCS
// without any annotation, and importers see the IsWorkerSink fact.
func AutoWorkers(n int) int {
	w := n / 1024
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// notASink is ordinary code: reading GOMAXPROCS here is a finding.
func notASink() int {
	return runtime.GOMAXPROCS(0) // want `runtime\.GOMAXPROCS read outside a worker-count sink`
}
