// Package core is detsource testdata: a deterministic package (roster
// suffix internal/core) exercising every forbidden nondeterminism source.
package core

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"runtime"
	"time"
)

func globals() int {
	n := rand.Intn(10)                 // want `call to global math/rand\.Intn`
	f := randv2.Float64()              // want `call to global math/rand/v2\.Float64`
	rand.Shuffle(n, func(i, j int) {}) // want `call to global math/rand\.Shuffle`
	return n + int(f)
}

// seeded generators are the sanctioned alternative: no findings.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func clock() time.Duration {
	t0 := time.Now()      // want `call to time\.Now`
	return time.Since(t0) // want `call to time\.Since`
}

func env() string {
	v := os.Getenv("CHURN_DEBUG")       // want `call to os\.Getenv`
	if _, ok := os.LookupEnv("X"); ok { // want `call to os\.LookupEnv`
		return "set"
	}
	return v
}

func badProcs() int {
	return runtime.GOMAXPROCS(0) // want `runtime\.GOMAXPROCS read outside a worker-count sink`
}

func setProcs() {
	runtime.GOMAXPROCS(4) // want `runtime\.GOMAXPROCS with a non-zero argument`
}

// declaredSink selects a worker count; the annotation sanctions the read
// and exports the IsWorkerSink fact.
//
//churnvet:worksink worker-pool sizing only; results are W-invariant
func declaredSink(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	return w
}

//churnvet:worksink missing-reason case is reported at the directive, not here
func okSink() int {
	return runtime.GOMAXPROCS(0)
}

//churnvet:typo bogus directive name // want `unknown churnvet directive "typo"`
func misannotated() {}

//churnvet:worksink // want `churnvet:worksink needs a reason`
func noReason() int {
	return runtime.GOMAXPROCS(0)
}
