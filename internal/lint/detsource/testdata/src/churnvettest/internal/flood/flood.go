// Package flood is detsource testdata: cross-package recognition of
// worker-count sinks through the IsWorkerSink fact.
package flood

import "churnvettest/internal/graph"

// good: a sink result stored under a worker-count name stays confined to
// worker selection.
func good(n int) int {
	workers := graph.AutoWorkers(n)
	par := graph.AutoWorkers(n)
	return workers + par
}

// bad: the GOMAXPROCS-dependent value leaks into a generic variable that
// could flow anywhere.
func bad(n int) int {
	chunk := graph.AutoWorkers(n) // want `GOMAXPROCS-dependent result of AutoWorkers assigned to "chunk"`
	return n / chunk
}

// structural uses (args, returns, comparisons) are not flagged.
func structural(n int) int {
	if graph.AutoWorkers(n) > 4 {
		return 4
	}
	return graph.AutoWorkers(n)
}
