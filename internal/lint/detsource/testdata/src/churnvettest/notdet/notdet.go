// Package notdet is detsource testdata: NOT on the deterministic roster,
// so nondeterminism sources are legal here (only the directive grammar is
// still checked).
package notdet

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func allowed() int {
	n := rand.Intn(10)
	_ = time.Now()
	_ = os.Getenv("X")
	return n + runtime.GOMAXPROCS(0)
}

//churnvet:bogus name outside det packages is still validated // want `unknown churnvet directive "bogus"`
func annotated() {}
