package detsource_test

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/lint/detsource"
	"github.com/dyngraph/churnnet/internal/lint/linttest"
)

// TestDetsource drives the analyzer over the testdata tree: firing cases
// in the deterministic packages (core, graph), cross-package sink
// recognition through the IsWorkerSink fact (flood imports graph), and the
// no-finding corpus (notdet, plus the seeded-generator idiom in core).
func TestDetsource(t *testing.T) {
	linttest.Run(t, detsource.Analyzer, "testdata",
		"churnvettest/internal/core",
		"churnvettest/internal/graph",
		"churnvettest/internal/flood",
		"churnvettest/notdet",
	)
}
