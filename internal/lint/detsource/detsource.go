// Package detsource implements the churnvet analyzer that forbids
// nondeterminism sources in the deterministic packages.
//
// The engine's defining contract (DESIGN.md) is that every
// flood/traffic/tracker result is bit-for-bit reproducible from the seed at
// any worker count. Each rule below bans one canonical way that contract
// rots at the source level:
//
//   - global math/rand and math/rand/v2 top-level functions (process-seeded
//     RNG state; constructors like rand.New(rand.NewSource(seed)) stay
//     legal — explicit seeds are the whole point);
//   - time.Now / time.Since / time.Until (wall-clock values);
//   - os.Getenv / os.LookupEnv / os.Environ (environment-conditioned
//     logic);
//   - runtime.GOMAXPROCS outside a sanctioned worker-count sink.
//     graph.AutoWorkers is the built-in sink; a function annotated
//     "//churnvet:worksink <reason>" is a declared one. Sinks are exported
//     as an IsWorkerSink fact so downstream packages know their results
//     are GOMAXPROCS-dependent: a sink call result may only be stored into
//     a worker-count-named variable (w, par, workers, parallelism, shards,
//     ...), keeping core-count dependence confined to "how many workers",
//     never "what is computed".
//
// detsource also owns the annotation grammar: an unknown //churnvet:
// directive name or a directive without a reason is reported here, in
// every package.
package detsource

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dyngraph/churnnet/internal/lint"
)

// IsWorkerSink marks a function as sanctioned worker-count selection: it
// may read runtime.GOMAXPROCS, and its result is known to be
// GOMAXPROCS-dependent at every call site.
type IsWorkerSink struct{}

func (*IsWorkerSink) AFact()         {}
func (*IsWorkerSink) String() string { return "workerSink" }

var Analyzer = &analysis.Analyzer{
	Name:      "detsource",
	Doc:       "forbid nondeterminism sources (global rand, wall clock, env, GOMAXPROCS) in the deterministic packages",
	URL:       "https://github.com/dyngraph/churnnet/blob/main/DESIGN.md",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*IsWorkerSink)(nil)},
	Run:       run,
}

var detpkgs string

func init() {
	Analyzer.Flags.StringVar(&detpkgs, "detpkgs", "", "comma-separated package-path suffixes overriding the deterministic-package roster")
}

// randConstructors are the math/rand[/v2] package-level functions that
// build explicitly-seeded generators rather than touching global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// workerish matches variable names that are self-evidently worker counts.
var workerish = regexp.MustCompile(`(?i)^(w|par|workers?|n?workers?|parallel(ism)?|shards?|nshards?|cores?|procs?)$`)

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := lint.ParseDirectives(pass)

	// Grammar validation runs in every package, deterministic or not.
	for _, d := range dirs.All() {
		if !lint.KnownDirectives[d.Name] {
			pass.Reportf(d.Pos, "unknown churnvet directive %q (known: ordered, hookexempt, worksink, shardexempt)", d.Name)
			continue
		}
		if d.Reason == "" {
			pass.Reportf(d.Pos, "churnvet:%s needs a reason: //churnvet:%s <why this is justified>", d.Name, d.Name)
		}
	}

	det := lint.IsDeterministicPkg(pass.Pkg.Path(), detpkgs)

	// Export IsWorkerSink facts first (even in non-deterministic packages:
	// graph.AutoWorkers must be visible everywhere). A sink is
	// graph.AutoWorkers or any //churnvet:worksink-annotated function.
	for n := range ins.PreorderSeq((*ast.FuncDecl)(nil)) {
		decl := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		_, annotated := dirs.ForFunc(decl, "worksink")
		builtin := decl.Name.Name == "AutoWorkers" &&
			lint.PathHasSuffix(pass.Pkg.Path(), lint.GraphPkgSuffix)
		if annotated || builtin {
			pass.ExportObjectFact(fn, &IsWorkerSink{})
		}
	}

	if !det {
		return nil, nil
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if lint.IsTestFile(pass, call.Pos()) {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		pkg := fn.Pkg()
		if pkg == nil {
			return true
		}
		switch pkg.Path() {
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "call to global %s.%s in deterministic package %s: use an explicitly seeded generator (rng.RNG or rand.New(rand.NewSource(seed)))",
					pkg.Path(), fn.Name(), pass.Pkg.Name())
			}
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "call to time.%s in deterministic package %s: wall-clock values must not influence results (thread model time explicitly)",
					fn.Name(), pass.Pkg.Name())
			}
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
				pass.Reportf(call.Pos(), "call to os.%s in deterministic package %s: environment-conditioned logic breaks the reproducibility contract",
					fn.Name(), pass.Pkg.Name())
			}
		case "runtime":
			if fn.Name() == "GOMAXPROCS" {
				checkGOMAXPROCS(pass, dirs, call, stack)
			}
		default:
			checkSinkCall(pass, fn, call, stack)
		}
		return true
	})
	return nil, nil
}

// checkGOMAXPROCS allows runtime.GOMAXPROCS(0) inside a worker-count sink
// and reports everything else.
func checkGOMAXPROCS(pass *analysis.Pass, dirs *lint.FileDirectives, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*ast.BasicLit); !ok || lit.Value != "0" {
			pass.Reportf(call.Pos(), "runtime.GOMAXPROCS with a non-zero argument mutates the scheduler; deterministic packages may only read it (GOMAXPROCS(0))")
			return
		}
	}
	decl := enclosingFuncDecl(stack)
	if decl != nil {
		if _, ok := dirs.ForFunc(decl, "worksink"); ok {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			var sink IsWorkerSink
			if pass.ImportObjectFact(fn, &sink) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "runtime.GOMAXPROCS read outside a worker-count sink: route it through graph.AutoWorkers, or annotate the function with //churnvet:worksink <reason> if it only selects worker counts")
}

// checkSinkCall enforces that the result of a fact-marked worker-count
// sink lands in a worker-count-named variable (or is used structurally:
// returns, comparisons and call arguments are left alone).
func checkSinkCall(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr, stack []ast.Node) {
	var sink IsWorkerSink
	if !pass.ImportObjectFact(fn, &sink) {
		return
	}
	if len(stack) < 2 {
		return
	}
	parent := stack[len(stack)-2]
	assign, ok := parent.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) {
		return
	}
	for _, l := range assign.Lhs {
		name := lhsName(l)
		if name != "" && name != "_" && !workerish.MatchString(name) {
			pass.Reportf(call.Pos(), "GOMAXPROCS-dependent result of %s assigned to %q: worker-count sinks may only feed worker-count selection (name it like workers/par/w, or compute it elsewhere)",
				fn.Name(), name)
		}
	}
}

func lhsName(e ast.Expr) string {
	switch l := e.(type) {
	case *ast.Ident:
		return l.Name
	case *ast.SelectorExpr:
		return l.Sel.Name
	}
	return ""
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d
		}
	}
	return nil
}

// calleeFunc resolves the called function object, seeing through
// selector-qualified and plain identifiers.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
