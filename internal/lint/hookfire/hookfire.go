// Package hookfire implements the churnvet analyzer that keeps the hook
// plane honest: every call site that appends to the arena adjacency
// outside package graph must be post-dominated by an OnEdge hook fire.
//
// The cut engine (flood), the expansion Tracker and every other hook
// subscriber mirror the model's edge set incrementally; an adjacency
// mutation that skips the hook silently diverges them from the graph —
// exactly the bug class PR 5's stale-tracker negative control simulates at
// runtime. The mutating entry points are graph.AddOutEdge,
// graph.RedirectOutEdge and the bulk wire-fill paths
// (graph.WireSnapshotEdges / WireSnapshotEdgesPar).
//
// For each such call the analyzer walks the enclosing function's
// control-flow graph: every path from the call to the function's exit must
// contain a "hook fire" — any mention of an OnEdge/onEdge identifier (a
// direct call, the conventional `if hooks.OnEdge != nil` guard, or passing
// the hook to a replay helper such as fireEdgeHooks). A function that
// mutates adjacency deliberately without firing hooks carries
// //churnvet:hookexempt <reason>.
//
// Test files and package graph itself (below the hook plane) are exempt.
package hookfire

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"golang.org/x/tools/go/analysis/passes/inspect"

	"github.com/dyngraph/churnnet/internal/lint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hookfire",
	Doc:      "require adjacency mutations outside package graph to be post-dominated by an OnEdge hook fire",
	URL:      "https://github.com/dyngraph/churnnet/blob/main/DESIGN.md",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

var graphpkg string

func init() {
	Analyzer.Flags.StringVar(&graphpkg, "graphpkg", lint.GraphPkgSuffix, "package-path suffix of the arena-graph package")
}

// mutators are the graph methods that create or re-point adjacency.
var mutators = map[string]bool{
	"AddOutEdge":           true,
	"RedirectOutEdge":      true,
	"WireSnapshotEdges":    true,
	"WireSnapshotEdgesPar": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lint.PathHasSuffix(pass.Pkg.Path(), graphpkg) {
		return nil, nil // the graph package is below the hook plane
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	dirs := lint.ParseDirectives(pass)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if lint.IsTestFile(pass, call.Pos()) {
			return true
		}
		name, ok := mutatorCall(pass, call)
		if !ok {
			return true
		}
		g, encl := enclosingCFG(cfgs, stack)
		if encl != nil {
			if _, exempt := dirs.ForFunc(encl, "hookexempt"); exempt {
				return true
			}
		}
		if g == nil {
			pass.Reportf(call.Pos(), "graph.%s outside any analyzable function body must fire OnEdge", name)
			return true
		}
		if !postDominatedByHookFire(g, call) {
			pass.Reportf(call.Pos(), "graph.%s is not followed by an OnEdge hook fire on every path: the cut engine and expansion tracker will silently diverge (fire hooks.OnEdge, or annotate the function //churnvet:hookexempt <reason>)", name)
		}
		return true
	})
	return nil, nil
}

// mutatorCall reports whether call invokes one of the graph mutators, by
// method name and receiver type origin.
func mutatorCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !mutators[fn.Name()] {
		return "", false
	}
	if fn.Pkg() == nil || !lint.PathHasSuffix(fn.Pkg().Path(), graphpkg) {
		return "", false
	}
	return fn.Name(), true
}

// enclosingCFG finds the CFG of the innermost enclosing function literal
// or declaration, plus the enclosing declaration (for exemptions).
func enclosingCFG(cfgs *ctrlflow.CFGs, stack []ast.Node) (*cfg.CFG, *ast.FuncDecl) {
	var decl *ast.FuncDecl
	var g *cfg.CFG
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			if g == nil {
				g = cfgs.FuncLit(f)
			}
		case *ast.FuncDecl:
			decl = f
			if g == nil {
				g = cfgs.FuncDecl(f)
			}
			return g, decl
		}
	}
	return g, decl
}

// postDominatedByHookFire reports whether every path from the mutator call
// to the function exit mentions an OnEdge hook.
func postDominatedByHookFire(g *cfg.CFG, call *ast.CallExpr) bool {
	// Locate the block and node index containing the call.
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= call.Pos() && call.End() <= n.End() {
				// Scan the rest of this block first (including the node
				// itself: `fireEdgeHooks(g.Wire...(...), hooks.OnEdge)`
				// style single-statement forms count).
				for _, later := range b.Nodes[i:] {
					if mentionsHook(later) {
						return true
					}
				}
				if len(b.Succs) == 0 {
					return false // block falls off the end unhooked
				}
				seen := make(map[*cfg.Block]bool)
				for _, s := range b.Succs {
					if leakyPath(s, seen) {
						return false
					}
				}
				return true
			}
		}
	}
	// Call not present in the CFG (dead code); nothing to prove.
	return true
}

// leakyPath reports whether some path from b to an exit block contains no
// hook mention.
func leakyPath(b *cfg.Block, seen map[*cfg.Block]bool) bool {
	if seen[b] {
		return false // already being explored or proven safe along this DFS
	}
	seen[b] = true
	for _, n := range b.Nodes {
		if mentionsHook(n) {
			return false // this path fires the hook; stop descending
		}
	}
	if len(b.Succs) == 0 {
		return true // reached exit without a hook fire
	}
	for _, s := range b.Succs {
		if leakyPath(s, seen) {
			return true
		}
	}
	return false
}

// mentionsHook reports whether the node mentions an OnEdge hook: an
// identifier or selector whose name is OnEdge/onEdge (calls, nil-guards,
// and hook-forwarding arguments all qualify).
func mentionsHook(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if strings.EqualFold(id.Name, "onedge") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
