// Package core is hookfire testdata: adjacency mutations above the hook
// plane must be post-dominated by an OnEdge fire.
package core

import "churnvettest/internal/graph"

type Hooks struct {
	OnEdge func(u, v int)
}

type Model struct {
	g     *graph.Graph
	hooks Hooks
}

// goodGuarded uses the conventional nil-guarded direct fire.
func (m *Model) goodGuarded(u, v int) {
	m.g.AddOutEdge(u, v)
	if m.hooks.OnEdge != nil {
		m.hooks.OnEdge(u, v)
	}
}

// bad mutates and returns without any fire.
func (m *Model) bad(u, v int) {
	m.g.AddOutEdge(u, v) // want `graph\.AddOutEdge is not followed by an OnEdge hook fire on every path`
}

// leakyBranch fires on the fallthrough path but leaks through the early
// return: some path reaches the exit unhooked.
func (m *Model) leakyBranch(u, v int, drop bool) {
	m.g.RedirectOutEdge(u, 0, v) // want `graph\.RedirectOutEdge is not followed by an OnEdge hook fire on every path`
	if drop {
		return
	}
	if m.hooks.OnEdge != nil {
		m.hooks.OnEdge(u, v)
	}
}

// hookedBranches fires on every branch before returning: accepted.
func (m *Model) hookedBranches(u, v int, fast bool) {
	m.g.AddOutEdge(u, v)
	if fast {
		m.hooks.OnEdge(u, v)
		return
	}
	fireEdgeHooks(m.hooks.OnEdge, u, v)
}

// fireEdgeHooks is the replay-helper idiom: passing the hook along counts
// as a fire at the call site.
func fireEdgeHooks(on func(u, v int), u, v int) {
	if on != nil {
		on(u, v)
	}
}

// forwarded hands the hook to the helper.
func (m *Model) forwarded(u, v int) {
	m.g.AddOutEdge(u, v)
	fireEdgeHooks(m.hooks.OnEdge, u, v)
}

// exempt documents a deliberate silent mutation.
//
//churnvet:hookexempt rebuild path replays the full edge set through hooks afterwards
func (m *Model) exempt(u, v int) {
	m.g.AddOutEdge(u, v)
}

// wireBad bulk-fills without replaying hooks.
func (m *Model) wireBad(s *graph.Snapshot) {
	graph.WireSnapshotEdges(m.g, s) // want `graph\.WireSnapshotEdges is not followed by an OnEdge hook fire on every path`
}

// wireGood bulk-fills then replays unconditionally. (A replay wrapped in a
// `for` loop would NOT count: the zero-iteration path skips the fire.)
func (m *Model) wireGood(s *graph.Snapshot) {
	graph.WireSnapshotEdges(m.g, s)
	replaySnapshot(m.hooks.OnEdge, s)
}

func replaySnapshot(on func(u, v int), s *graph.Snapshot) {
	if on == nil {
		return
	}
	for i := range s.Src {
		on(s.Src[i], s.Dst[i])
	}
}

// inLit checks that function literals get their own CFG: the goroutine
// body fires before returning, the outer function never mutates.
func (m *Model) inLit(u, v int) {
	done := make(chan struct{})
	go func() {
		m.g.AddOutEdge(u, v)
		if m.hooks.OnEdge != nil {
			m.hooks.OnEdge(u, v)
		}
		close(done)
	}()
	<-done
}

// inLitBad is the same shape without the fire.
func (m *Model) inLitBad(u, v int) {
	func() {
		m.g.AddOutEdge(u, v) // want `graph\.AddOutEdge is not followed by an OnEdge hook fire on every path`
	}()
}

// notAMutator: same method name on a non-graph type is ignored.
type fakeGraph struct{}

func (fakeGraph) AddOutEdge(u, v int) {}

func useFake(u, v int) {
	var f fakeGraph
	f.AddOutEdge(u, v)
}
