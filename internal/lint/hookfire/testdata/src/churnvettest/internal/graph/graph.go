// Package graph is hookfire testdata: the arena-graph package itself sits
// below the hook plane, so its own internal mutations are never checked.
package graph

type Graph struct {
	edges [][]int
}

func New(n int) *Graph { return &Graph{edges: make([][]int, n)} }

func (g *Graph) AddOutEdge(u, v int) {
	g.edges[u] = append(g.edges[u], v) // inside package graph: exempt
}

func (g *Graph) RedirectOutEdge(u, slot, v int) {
	g.edges[u][slot] = v
}

type Snapshot struct {
	Src, Dst []int
}

func WireSnapshotEdges(g *Graph, s *Snapshot) {
	for i := range s.Src {
		g.AddOutEdge(s.Src[i], s.Dst[i])
	}
}
