package hookfire_test

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/lint/hookfire"
	"github.com/dyngraph/churnnet/internal/lint/linttest"
)

// TestHookfire drives the analyzer over the testdata tree: unhooked and
// leaky-branch mutations fire; nil-guarded direct fires, replay-helper
// forwarding, per-branch fires, //churnvet:hookexempt functions, function
// literals with their own CFGs, package graph itself, and same-named
// methods on non-graph types do not.
func TestHookfire(t *testing.T) {
	linttest.Run(t, hookfire.Analyzer, "testdata",
		"churnvettest/internal/graph",
		"churnvettest/internal/core",
	)
}
