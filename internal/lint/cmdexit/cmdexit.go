// Package cmdexit implements the churnvet analyzer that pins the audited
// process-exit conventions (PRs 2/4/6):
//
//   - library packages never terminate the process: os.Exit and log.Fatal*
//     are forbidden outside cmd/* packages, except inside func main of a
//     non-cmd main package (examples);
//   - inside cmd/* packages, os.Exit takes an explicit literal status and
//     only the audited trio: 0 (success), 1 (runtime failure), 2 (usage /
//     flag-validation failure);
//   - log.Fatal* is forbidden even in cmd/* — it hardwires status 1, so a
//     flag-validation path reaching it would break the exit-2 convention
//     silently; report errors with fmt.Fprintln(os.Stderr, ...) and exit
//     explicitly;
//   - a function that calls flag.Usage() is a usage-error path and must
//     exit 2; likewise any exit under an if-condition derived from a
//     validateFlags*/parse* call's result.
package cmdexit

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dyngraph/churnnet/internal/lint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "cmdexit",
	Doc:      "forbid os.Exit/log.Fatal outside cmd/* and main, and pin the exit-2 flag-validation convention inside cmd/*",
	URL:      "https://github.com/dyngraph/churnnet/blob/main/DESIGN.md",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var cmdpattern string

func init() {
	Analyzer.Flags.StringVar(&cmdpattern, "cmdpattern", "/cmd/", "substring of the import path identifying command packages")
}

// validatorCall matches the names of flag-validation and flag-parsing
// helpers whose failure paths must exit 2.
var validatorCall = regexp.MustCompile(`(?i)^(validate|parse)`)

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	isCmd := strings.Contains(pass.Pkg.Path(), cmdpattern) ||
		strings.HasPrefix(pass.Pkg.Path(), strings.Trim(cmdpattern, "/")+"/")
	isMain := pass.Pkg.Name() == "main"

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if lint.IsTestFile(pass, call.Pos()) {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		kind := terminatorKind(fn)
		if kind == "" {
			return true
		}
		encl := enclosingFuncDecl(stack)

		if !isCmd {
			if isMain && encl != nil && encl.Name.Name == "main" && encl.Recv == nil {
				return true // examples may exit from func main directly
			}
			pass.Reportf(call.Pos(), "%s in a library package: return an error and let cmd/* decide the exit status", kind)
			return true
		}

		// cmd/* package rules.
		if strings.HasPrefix(kind, "log.Fatal") {
			pass.Reportf(call.Pos(), "%s hardwires exit status 1, bypassing the audited exit conventions (2 = usage, 1 = runtime failure): report to os.Stderr and call os.Exit explicitly", kind)
			return true
		}
		checkExitStatus(pass, call, encl, stack)
		return true
	})
	return nil, nil
}

// checkExitStatus enforces literal 0/1/2 statuses and the exit-2 usage
// convention inside cmd packages.
func checkExitStatus(pass *analysis.Pass, call *ast.CallExpr, encl *ast.FuncDecl, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		pass.Reportf(call.Pos(), "os.Exit status must be an explicit literal (0, 1 or 2) so the exit conventions stay auditable")
		return
	}
	code, err := strconv.Atoi(lit.Value)
	if err != nil || code < 0 || code > 2 {
		pass.Reportf(call.Pos(), "os.Exit(%s): the audited statuses are 0 (success), 1 (runtime failure) and 2 (usage/flag validation)", lit.Value)
		return
	}
	if code == 2 {
		return
	}
	if encl != nil && callsFlagUsage(pass, encl) {
		pass.Reportf(call.Pos(), "os.Exit(%s) in a usage-error function (it calls flag.Usage): flag-validation failures must exit 2", lit.Value)
		return
	}
	if guardedByValidator(pass, stack) {
		pass.Reportf(call.Pos(), "os.Exit(%s) on a flag-validation failure path: the audited convention is exit status 2", lit.Value)
	}
}

// callsFlagUsage reports whether the function body calls flag.Usage (the
// marker of a usage-error helper).
func callsFlagUsage(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "flag" && fn.Name() == "Usage" {
			found = true
		}
		// flag.Usage is a package-level var, not a func; also match the
		// selector form syntactically.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "flag" && sel.Sel.Name == "Usage" {
				found = true
			}
		}
		return !found
	})
	return found
}

// guardedByValidator reports whether the os.Exit call sits inside an if
// whose condition involves the result of a validateFlags*/parse* call —
// directly (`if err := validateFlags(...); err != nil`) or through a
// variable previously assigned from one in the same function.
func guardedByValidator(pass *analysis.Pass, stack []ast.Node) bool {
	encl := enclosingFuncDecl(stack)
	validated := map[types.Object]bool{}
	if encl != nil && encl.Body != nil {
		ast.Inspect(encl.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromValidator := false
			for _, r := range asg.Rhs {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					if fn := calleeFunc(pass, call); fn != nil && validatorCall.MatchString(fn.Name()) {
						fromValidator = true
					}
				}
			}
			if !fromValidator {
				return true
			}
			for _, l := range asg.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						isErr := false
						if t := obj.Type(); t != nil {
							isErr = t.String() == "error"
						}
						if isErr {
							validated[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	for i := len(stack) - 1; i >= 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		uses := false
		ast.Inspect(ifst.Cond, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.ObjectOf(x); obj != nil && validated[obj] {
					uses = true
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass, x); fn != nil && validatorCall.MatchString(fn.Name()) {
					uses = true
				}
			}
			return !uses
		})
		if ifst.Init != nil {
			ast.Inspect(ifst.Init, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := calleeFunc(pass, call); fn != nil && validatorCall.MatchString(fn.Name()) {
						uses = true
					}
				}
				return !uses
			})
		}
		if uses {
			return true
		}
	}
	return false
}

// terminatorKind classifies process-terminating calls; "" means none.
func terminatorKind(fn *types.Func) string {
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() == "Exit" {
			return "os.Exit"
		}
	case "log":
		if strings.HasPrefix(fn.Name(), "Fatal") {
			return "log." + fn.Name()
		}
	}
	return ""
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d
		}
	}
	return nil
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
