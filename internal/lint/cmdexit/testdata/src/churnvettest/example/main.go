// Package main is cmdexit testdata: a non-cmd example binary. Its func
// main may exit directly; helpers may not.
package main

import "os"

func main() {
	if len(os.Args) < 2 {
		os.Exit(1)
	}
	helper()
}

func helper() {
	os.Exit(1) // want `os\.Exit in a library package: return an error and let cmd/\* decide the exit status`
}
