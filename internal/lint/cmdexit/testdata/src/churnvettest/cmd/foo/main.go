// Command foo is cmdexit testdata: the audited exit conventions inside a
// cmd/* package (0 = success, 1 = runtime failure, 2 = usage).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
)

var n = flag.Int("n", 0, "count")

func main() {
	flag.Parse()
	if err := validateFlags(); err != nil {
		fmt.Fprintln(os.Stderr, "foo:", err)
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "foo:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func validateFlags() error {
	if *n <= 0 {
		return errors.New("-n must be positive")
	}
	return nil
}

func run() error { return nil }

// badStatuses: anything outside the audited trio, or non-literal.
func badStatuses(code int) {
	os.Exit(3)    // want `os\.Exit\(3\): the audited statuses are 0 \(success\), 1 \(runtime failure\) and 2 \(usage/flag validation\)`
	os.Exit(code) // want `os\.Exit status must be an explicit literal`
}

// fatals: log.Fatal* bypasses the convention even in cmd/*.
func fatals(err error) {
	log.Fatal(err)             // want `log\.Fatal hardwires exit status 1`
	log.Fatalf("bad: %v", err) // want `log\.Fatalf hardwires exit status 1`
}

// usageWrong is a usage-error helper (it calls flag.Usage) exiting 1.
func usageWrong(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	flag.Usage()
	os.Exit(1) // want `os\.Exit\(1\) in a usage-error function \(it calls flag\.Usage\): flag-validation failures must exit 2`
}

// usageRight exits 2.
func usageRight(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	flag.Usage()
	os.Exit(2)
}

// validationWrong exits 1 under a validator-derived condition.
func validationWrong() {
	if err := validateFlags(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1) // want `os\.Exit\(1\) on a flag-validation failure path: the audited convention is exit status 2`
	}
	err := parseExtra()
	if err != nil {
		os.Exit(1) // want `os\.Exit\(1\) on a flag-validation failure path: the audited convention is exit status 2`
	}
}

func parseExtra() error { return nil }

// runtimeFailure: exit 1 guarded by a non-validator error is fine.
func runtimeFailure() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
