// Package util is cmdexit testdata: library packages never terminate the
// process.
package util

import (
	"errors"
	"log"
	"os"
)

func Load(path string) error {
	if path == "" {
		os.Exit(1) // want `os\.Exit in a library package: return an error and let cmd/\* decide the exit status`
	}
	if path == "-" {
		log.Fatalln("stdin unsupported") // want `log\.Fatalln in a library package: return an error and let cmd/\* decide the exit status`
	}
	return errors.New("unreachable")
}
