package cmdexit_test

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/lint/cmdexit"
	"github.com/dyngraph/churnnet/internal/lint/linttest"
)

// TestCmdexit drives the analyzer over the testdata tree: non-audited and
// non-literal statuses, log.Fatal* anywhere, usage-error helpers exiting 1,
// validator-guarded exits != 2, and library-package terminators all fire;
// the audited main-sequence (validate→2, run→1, success→0), exit-2 usage
// helpers, non-validator error guards, and example func main do not.
func TestCmdexit(t *testing.T) {
	linttest.Run(t, cmdexit.Analyzer, "testdata",
		"churnvettest/cmd/foo",
		"churnvettest/internal/util",
		"churnvettest/example",
	)
}
