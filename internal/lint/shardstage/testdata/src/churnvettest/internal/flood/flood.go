// Package flood is shardstage testdata: staging-buffer discipline inside
// worker-sweep callbacks and go-launched literals.
package flood

import (
	"sync"
	"sync/atomic"
)

// forEachWorker is the sweep shape the analyzer keys on: it runs fn once
// per worker index with a barrier join.
func forEachWorker(w int, fn func(w int)) {
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); fn(i) }(i)
	}
	wg.Wait()
}

// ownedByIndex stages into worker-indexed buffers: the canonical pattern.
func ownedByIndex(w int, data []int) []int {
	out := make([][]int, w)
	forEachWorker(w, func(w int) {
		for i := w; i < len(data); i += len(out) {
			out[w] = append(out[w], data[i])
		}
	})
	merged := []int{}
	for _, o := range out {
		merged = append(merged, o...)
	}
	return merged
}

// sharedAppend races every worker onto one slice.
func sharedAppend(w int, data []int) []int {
	var shared []int
	forEachWorker(w, func(w int) {
		shared = append(shared, data[w]) // want `write to captured shared inside a worker callback`
	})
	return shared
}

// sharedCounter races ++ on a captured int.
func sharedCounter(w int) int {
	total := 0
	forEachWorker(w, func(w int) {
		total++ // want `write to captured total inside a worker callback`
	})
	return total
}

// chunkClaim is the atomic work-stealing idiom: an index fetched from an
// atomic counter is an exclusive claim, so writes through it are owned.
func chunkClaim(w, chunks int, buf [][]int) {
	var next atomic.Int64
	forEachWorker(w, func(w int) {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			buf[c] = append(buf[c], w)
		}
	})
}

// channelClaim receives jobs from a channel: each received index is owned.
func channelClaim(w int, jobs chan int, res []int) {
	forEachWorker(w, func(w int) {
		for j := range jobs {
			res[j] = j * j
		}
	})
}

// recvExpr claims through a bare receive expression.
func recvExpr(w int, jobs chan int, res []int) {
	forEachWorker(w, func(w int) {
		j := <-jobs
		res[j] = w
	})
}

// goLaunched covers go-statement literals in deterministic packages: the
// same discipline applies to ad-hoc fan-out.
func goLaunched(w int, out []int) {
	var wg sync.WaitGroup
	bad := 0
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i // owned: i is a parameter
			bad++      // want `write to captured bad inside a worker callback`
		}(i)
	}
	wg.Wait()
	_ = bad
}

// exemptWrite documents a deliberate shared write at the statement.
func exemptWrite(w int, mu *sync.Mutex) int {
	total := 0
	forEachWorker(w, func(w int) {
		mu.Lock()
		//churnvet:shardexempt mutex-guarded tally; order-insensitive integer add
		total += w
		mu.Unlock()
	})
	return total
}

// exemptFunc documents the whole function instead.
//
//churnvet:shardexempt single-writer by construction: w is pinned to 1 at the call site
func exemptFunc(w int) int {
	n := 0
	forEachWorker(w, func(w int) { n++ })
	return n
}

// localsAreFree: anything declared inside the literal is worker-private.
func localsAreFree(w int, out [][]int) {
	forEachWorker(w, func(w int) {
		scratch := make([]int, 0, 8)
		for i := 0; i < 8; i++ {
			scratch = append(scratch, i*w)
		}
		out[w] = scratch
	})
}
