package shardstage_test

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/lint/linttest"
	"github.com/dyngraph/churnnet/internal/lint/shardstage"
)

// TestShardstage drives the analyzer over the testdata tree: captured
// shared writes (append, ++) fire both in forEachWorker callbacks and in
// go-launched literals; worker-index staging, atomic chunk claims, channel
// receives, literal-local scratch, and //churnvet:shardexempt (statement
// and function forms) do not.
func TestShardstage(t *testing.T) {
	linttest.Run(t, shardstage.Analyzer, "testdata",
		"churnvettest/internal/flood",
	)
}
