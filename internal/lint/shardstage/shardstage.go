// Package shardstage implements the churnvet analyzer that enforces the
// staging-buffer discipline inside worker callbacks.
//
// The engine's parallel phases (flood's per-slot-range shard sweeps, the
// tracker's flush plane, the bulk wire-fill) run a callback once per worker
// index with a barrier as the only synchronization. The discipline that
// keeps them deterministic AND race-free is: a worker may write only
// through state it owns — state indexed by its own worker index, by a chunk
// it claimed through an atomic counter, or by a job it received from a
// channel. A write through a captured reference that is not derived from
// such a claim is a cross-shard race that `go test -race` only catches when
// a schedule happens to interleave it.
//
// Scope: function literals passed to a worker sweep (a call to
// forEachWorker / forEachShard, configurable) and function literals
// launched by a `go` statement inside the deterministic packages. Within
// those, the analyzer flags assignments and ++/-- through captured
// variables whose access path involves no claim-derived ("tainted") value.
// Claim sources are the literal's own parameters, sync/atomic method
// results, and channel receives; taint propagates through local
// assignments. Reads are never flagged; method calls are outside the
// analysis (the callee is documented as shard-confined at its definition).
//
// Justified exceptions carry //churnvet:shardexempt <reason> on the write
// (same line or line above) or on the enclosing function declaration.
package shardstage

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/dyngraph/churnnet/internal/lint"
)

var Analyzer = &analysis.Analyzer{
	Name:     "shardstage",
	Doc:      "flag unowned writes through captured references inside worker-sweep callbacks",
	URL:      "https://github.com/dyngraph/churnnet/blob/main/DESIGN.md",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	detpkgs    string
	sweepfuncs string
)

func init() {
	Analyzer.Flags.StringVar(&detpkgs, "detpkgs", "", "comma-separated package-path suffixes overriding the deterministic-package roster")
	Analyzer.Flags.StringVar(&sweepfuncs, "sweepfuncs", "forEachWorker,forEachShard", "comma-separated names of worker-sweep functions whose func-literal arguments are shard callbacks")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lint.IsDeterministicPkg(pass.Pkg.Path(), detpkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := lint.ParseDirectives(pass)

	sweeps := make(map[string]bool)
	for _, s := range strings.Split(sweepfuncs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sweeps[s] = true
		}
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		var lit *ast.FuncLit
		switch st := n.(type) {
		case *ast.GoStmt:
			if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
				lit = fl
			}
		case *ast.CallExpr:
			if !isSweepCall(st, sweeps) {
				return true
			}
			for _, arg := range st.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					lit = fl
				}
			}
		}
		if lit == nil || lint.IsTestFile(pass, lit.Pos()) {
			return true
		}
		checkCallback(pass, dirs, lit, enclosingFuncDecl(stack))
		return true
	})
	return nil, nil
}

func isSweepCall(call *ast.CallExpr, sweeps map[string]bool) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return sweeps[f.Name]
	case *ast.SelectorExpr:
		return sweeps[f.Sel.Name]
	}
	return false
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d
		}
	}
	return nil
}

// checkCallback runs the taint pass over one worker callback literal.
func checkCallback(pass *analysis.Pass, dirs *lint.FileDirectives, lit *ast.FuncLit, encl *ast.FuncDecl) {
	if encl != nil {
		if _, ok := dirs.ForFunc(encl, "shardexempt"); ok {
			return
		}
	}
	c := &callback{pass: pass, lit: lit, tainted: map[types.Object]bool{}, local: map[types.Object]bool{}}

	// Claim seeds: the literal's parameters (worker index, claimed job).
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					c.tainted[obj] = true
				}
			}
		}
	}
	// Everything declared inside the literal is local (writes to it are
	// worker-private); locals *derived from* claims become tainted below.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.local[obj] = true
			}
		}
		return true
	})

	// Propagate taint through local assignments to a fixed point.
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, l := range st.Lhs {
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					obj := c.pass.TypesInfo.ObjectOf(id)
					if obj == nil || c.tainted[obj] || !c.local[obj] {
						continue
					}
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs != nil && c.claimDerived(rhs) {
						c.tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				// `for i := range ch` over a channel claims i.
				if t := c.pass.TypesInfo.TypeOf(st.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						for _, e := range []ast.Expr{st.Key, st.Value} {
							if id, ok := e.(*ast.Ident); ok {
								if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && !c.tainted[obj] {
									c.tainted[obj] = true
									changed = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	// Flag unowned writes.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return true // nested literals inherit the same capture analysis
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, l := range st.Lhs {
				c.checkWrite(dirs, l)
			}
		case *ast.IncDecStmt:
			c.checkWrite(dirs, st.X)
		}
		return true
	})
}

type callback struct {
	pass    *analysis.Pass
	lit     *ast.FuncLit
	tainted map[types.Object]bool // claim-derived objects
	local   map[types.Object]bool // declared inside the literal
}

// claimDerived reports whether the expression's value derives from a claim:
// it mentions a tainted object, an atomic counter method, or a channel
// receive.
func (c *callback) claimDerived(e ast.Expr) bool {
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.ObjectOf(x); obj != nil && c.tainted[obj] {
				derived = true
			}
		case *ast.CallExpr:
			if c.isAtomicClaim(x) {
				derived = true
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				derived = true
			}
		}
		return !derived
	})
	return derived
}

// isAtomicClaim recognizes method calls on sync/atomic values (Add, Load,
// Swap, CompareAndSwap, ...): an atomic fetch is an exclusive claim.
func (c *callback) isAtomicClaim(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "sync/atomic" {
		return true
	}
	// Methods on named types from sync/atomic (atomic.Int64 fields etc.)
	// have Pkg() == "sync/atomic" already; nothing more to do.
	return false
}

// checkWrite flags a write whose access path never passes through a claim.
func (c *callback) checkWrite(dirs *lint.FileDirectives, l ast.Expr) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && (c.local[obj] || c.tainted[obj]) {
			return // worker-private or claim-derived variable
		}
		// Fall through: captured plain variable — always unowned.
	} else if c.pathOwned(l) {
		return
	}
	if _, ok := dirs.At(l.Pos(), "shardexempt"); ok {
		return
	}
	c.pass.Reportf(l.Pos(), "write to captured %s inside a worker callback is not derived from the worker's own shard or claimed chunk: stage into worker-indexed buffers and merge after the barrier (or annotate //churnvet:shardexempt <reason>)",
		exprString(l))
}

// pathOwned reports whether a write path (index/selector chain) involves a
// claim-derived value anywhere — base or any index.
func (c *callback) pathOwned(l ast.Expr) bool {
	switch e := ast.Unparen(l).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(e)
		return obj != nil && (c.local[obj] || c.tainted[obj])
	case *ast.IndexExpr:
		return c.claimDerived(e.Index) || c.pathOwned(e.X) || c.claimDerived(e.X)
	case *ast.SelectorExpr:
		return c.pathOwned(e.X) || c.claimDerived(e.X)
	case *ast.StarExpr:
		return c.pathOwned(e.X) || c.claimDerived(e.X)
	}
	return false
}

func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
