// Package lint holds the pieces shared by the churnvet analyzers: the
// //churnvet: annotation grammar, the deterministic-package roster, and
// small position helpers.
//
// The analyzers (detsource, maprange, hookfire, shardstage, cmdexit — see
// the sibling packages and DESIGN.md "Static enforcement of the determinism
// contract") turn the runtime determinism oracles of PRs 2–6 into
// compile-time checks. They are wired into `go vet` through
// cmd/churnvet.
//
// # Annotation grammar
//
// A churnvet annotation is a //-comment directive (no space after the
// slashes, like //go:build) of the form
//
//	//churnvet:<name> <reason>
//
// placed either on the flagged line or in the comment group immediately
// above it. The reason is mandatory: an annotation without one is itself a
// finding. Recognized names:
//
//	ordered     — this range-over-map is order-insensitive for a reason
//	              the analyzer cannot prove (maprange)
//	hookexempt  — this function mutates adjacency without firing OnEdge
//	              on purpose (hookfire)
//	worksink    — this function is worker-count selection and may read
//	              runtime.GOMAXPROCS (detsource)
//	shardexempt — this write inside a worker callback is safe despite
//	              not being indexed by the worker's shard (shardstage)
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DeterministicPkgs is the default roster of packages bound by the
// bit-for-bit determinism contract (DESIGN.md): every flood/traffic/tracker
// result must be invariant at any worker count, so nondeterminism sources
// are forbidden in them outright. Matching is by import-path suffix so the
// roster also covers testdata trees that mirror the layout.
var DeterministicPkgs = []string{
	"internal/core",
	"internal/churn",
	"internal/flood",
	"internal/expansion",
	"internal/graph",
	"internal/runner",
	"internal/dist",
	"internal/rng",
}

// GraphPkgSuffix identifies the arena-graph package, the one package whose
// internals may append adjacency without firing hooks (it is below the hook
// plane; the hooks fire at its call sites).
const GraphPkgSuffix = "internal/graph"

// IsDeterministicPkg reports whether the package path is on the roster.
// The roster can be overridden (comma-separated suffix list) for tests.
func IsDeterministicPkg(path string, override string) bool {
	roster := DeterministicPkgs
	if override != "" {
		roster = strings.Split(override, ",")
	}
	for _, suffix := range roster {
		if pathHasSuffix(path, strings.TrimSpace(suffix)) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends with the slash-separated suffix
// on an element boundary ("a/internal/core" matches "internal/core";
// "a/notinternal/core" does not).
func pathHasSuffix(path, suffix string) bool {
	if suffix == "" {
		return false
	}
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// PathHasSuffix is pathHasSuffix for use by the analyzers.
func PathHasSuffix(path, suffix string) bool { return pathHasSuffix(path, suffix) }

// IsTestFile reports whether pos lies in a _test.go file. The determinism
// contract binds engine code; tests seed their own RNGs and may iterate
// maps freely.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// Directive is one parsed //churnvet: annotation.
type Directive struct {
	Name   string // "ordered", "hookexempt", ...
	Reason string // justification text; "" is invalid
	Pos    token.Pos
}

// KnownDirectives is the set of valid annotation names.
var KnownDirectives = map[string]bool{
	"ordered":     true,
	"hookexempt":  true,
	"worksink":    true,
	"shardexempt": true,
}

const directivePrefix = "//churnvet:"

// FileDirectives maps "filename:line" of the line *below* each directive
// comment (and of the directive's own line, for end-of-line placement) to
// the directives that govern it.
type FileDirectives struct {
	pass *analysis.Pass
	byLC map[string][]Directive
}

// ParseDirectives scans every comment in the package once.
func ParseDirectives(pass *analysis.Pass) *FileDirectives {
	fd := &FileDirectives{pass: pass, byLC: make(map[string][]Directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				// A nested "// ..." is a trailing comment (test want
				// markers and the like), not a justification.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				d := Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}
				p := pass.Fset.Position(c.Pos())
				// The directive governs its own line (end-of-line form)
				// and the next line (comment-above form).
				fd.add(p.Filename, p.Line, d)
				fd.add(p.Filename, p.Line+1, d)
			}
		}
	}
	return fd
}

func (fd *FileDirectives) add(file string, line int, d Directive) {
	k := key(file, line)
	fd.byLC[k] = append(fd.byLC[k], d)
}

func key(file string, line int) string {
	var sb strings.Builder
	sb.WriteString(file)
	sb.WriteByte('#')
	for ; line > 0; line /= 10 {
		sb.WriteByte(byte('0' + line%10))
	}
	return sb.String()
}

// At returns the directive of the given name governing pos, if any. A
// directive governs a position when it sits on the same line or the line
// directly above.
func (fd *FileDirectives) At(pos token.Pos, name string) (Directive, bool) {
	p := fd.pass.Fset.Position(pos)
	for _, d := range fd.byLC[key(p.Filename, p.Line)] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// ForFunc returns the directive of the given name governing a function
// declaration: on the line of the func keyword, directly above it, or
// anywhere in its doc comment.
func (fd *FileDirectives) ForFunc(decl *ast.FuncDecl, name string) (Directive, bool) {
	if d, ok := fd.At(decl.Pos(), name); ok {
		return d, true
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+name) {
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				n, reason, _ := strings.Cut(rest, " ")
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				if n == name {
					return Directive{Name: n, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
				}
			}
		}
	}
	return Directive{}, false
}

// All returns every parsed directive (used by detsource to validate the
// grammar: unknown names and missing reasons are findings).
func (fd *FileDirectives) All() []Directive {
	seen := make(map[token.Pos]bool)
	var out []Directive
	for _, ds := range fd.byLC {
		for _, d := range ds {
			if !seen[d.Pos] {
				seen[d.Pos] = true
				out = append(out, d)
			}
		}
	}
	return out
}
