// Package runner executes the independent trials of an experiment on a
// worker pool while keeping results bit-identical to a serial loop.
//
// Determinism contract. Results do not depend on the number of workers or
// on goroutine scheduling, because
//
//  1. every trial's randomness is a pure function of its trial index —
//     either the trial function derives its own generator from the index
//     (MapIndexed), or Map pre-splits one child generator per trial from a
//     base stream *serially, before any worker starts*; and
//  2. results land in an output slice at the trial's own index, and any
//     cross-trial reduction happens in index order after all trials finish.
//
// Under that contract runner.Map(cfg, base, n, fn) returns exactly what the
// serial loop
//
//	for i := 0; i < n; i++ { out[i] = fn(i, base.Split()) }
//
// returns, at any parallelism. Only the Progress callback observes
// scheduling (trials complete in nondeterministic order).
//
// A panic inside a trial does not tear down the process from a worker
// goroutine: it is captured with its trial index and stack, the remaining
// trials finish, and Map re-panics a *TrialPanic in the caller's goroutine
// (the lowest-indexed panic wins, deterministically).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dyngraph/churnnet/internal/rng"
)

// Progress observes trial completion: it is called once per finished trial
// with the number done so far and the total. Calls are serialized but
// arrive in completion order, which is scheduling-dependent; done is
// strictly increasing across calls. Callbacks must not panic.
type Progress func(done, total int)

// Config controls how a Map executes.
type Config struct {
	// Workers caps the number of concurrent trials. 0 (or negative) uses
	// GOMAXPROCS; 1 runs serially on the calling goroutine.
	Workers int
	// Progress, when non-nil, receives a tick after every completed trial.
	Progress Progress
}

// workers resolves the effective worker count for n trials.
//
//churnvet:worksink resolves Workers<=0 to the GOMAXPROCS default; the result only selects trial parallelism, never trial content
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TrialPanic is the error value Map panics with when one or more trial
// functions panicked. It wraps the original panic value of the
// lowest-indexed failing trial together with its stack trace.
type TrialPanic struct {
	// Trial is the index of the failing trial.
	Trial int
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error formats the captured panic.
func (p *TrialPanic) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v\n%s", p.Trial, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *TrialPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Map runs fn for trials 0..trials−1, handing trial i the i-th child
// generator split from base, and returns the results in trial order. The
// children are split serially before any trial runs, so the output is
// independent of cfg.Workers and of scheduling; base is advanced exactly
// `trials` times. See the package comment for the full contract.
func Map[T any](cfg Config, base *rng.RNG, trials int, fn func(trial int, r *rng.RNG) T) []T {
	streams := make([]*rng.RNG, trials)
	for i := range streams {
		streams[i] = base.Split()
	}
	return MapIndexed(cfg, trials, func(i int) T { return fn(i, streams[i]) })
}

// MapIndexed runs fn for indices 0..n−1 on the worker pool and returns the
// results in index order. fn must derive any randomness it needs from its
// index alone (e.g. via a seed salted with i) for the determinism contract
// to hold.
func MapIndexed[T any](cfg Config, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := cfg.workers(n)

	var (
		next    atomic.Int64 // next unclaimed trial index
		mu      sync.Mutex   // guards done and panics; serializes Progress
		done    int
		panics  []*TrialPanic
		runOne  func(i int)
		tick    func()
		capture func(i int)
	)
	capture = func(i int) {
		if v := recover(); v != nil {
			tp := &TrialPanic{Trial: i, Value: v, Stack: debug.Stack()}
			mu.Lock()
			panics = append(panics, tp)
			mu.Unlock()
		}
	}
	runOne = func(i int) {
		defer capture(i)
		out[i] = fn(i)
	}
	tick = func() {
		mu.Lock()
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, n)
		}
		mu.Unlock()
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			runOne(i)
			tick()
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
					tick()
				}
			}()
		}
		wg.Wait()
	}

	if len(panics) > 0 {
		sort.Slice(panics, func(a, b int) bool { return panics[a].Trial < panics[b].Trial })
		panic(panics[0])
	}
	return out
}
