package runner

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func TestMapIndexedOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := MapIndexed(Config{Workers: workers}, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapIndexedEmpty(t *testing.T) {
	if got := MapIndexed(Config{}, 0, func(i int) int { t.Fatal("fn called"); return 0 }); len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

// TestMapMatchesSerialSplitLoop pins the determinism contract: Map equals
// the serial split loop bit for bit, at every worker count.
func TestMapMatchesSerialSplitLoop(t *testing.T) {
	const trials = 37
	serial := make([]uint64, trials)
	base := rng.New(42)
	for i := range serial {
		r := base.Split()
		serial[i] = r.Uint64() ^ r.Uint64()
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 32} {
		got := Map(Config{Workers: workers}, rng.New(42), trials, func(trial int, r *rng.RNG) uint64 {
			return r.Uint64() ^ r.Uint64()
		})
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: trial %d = %#x, want %#x", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestMapAdvancesBase checks Map consumes exactly `trials` splits, so
// successive Map calls on one base stream stay reproducible.
func TestMapAdvancesBase(t *testing.T) {
	a, b := rng.New(7), rng.New(7)
	Map(Config{Workers: 4}, a, 5, func(int, *rng.RNG) struct{} { return struct{}{} })
	for i := 0; i < 5; i++ {
		b.Split()
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("Map advanced base differently from 5 serial splits")
	}
}

func TestMapIndexedConcurrency(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Still verify the cap is respected with explicit workers.
	}
	var live, peak atomic.Int64
	MapIndexed(Config{Workers: 3}, 64, func(i int) int {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		live.Add(-1)
		return i
	})
	if peak.Load() > 3 {
		t.Fatalf("observed %d concurrent trials with Workers=3", peak.Load())
	}
}

func TestProgressTicks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int
		last := 0
		MapIndexed(Config{Workers: workers, Progress: func(done, total int) {
			calls++
			if total != 10 {
				t.Fatalf("total = %d", total)
			}
			if done != last+1 {
				t.Fatalf("done went %d -> %d", last, done)
			}
			last = done
		}}, 10, func(i int) int { return i })
		if calls != 10 {
			t.Fatalf("workers=%d: %d progress calls", workers, calls)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				tp, ok := v.(*TrialPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *TrialPanic", workers, v)
				}
				// Lowest-indexed panic wins deterministically.
				if tp.Trial != 3 {
					t.Fatalf("workers=%d: panic from trial %d, want 3", workers, tp.Trial)
				}
				if !strings.Contains(tp.Error(), "boom 3") {
					t.Fatalf("error lacks panic value: %s", tp.Error())
				}
				if len(tp.Stack) == 0 {
					t.Fatal("no stack captured")
				}
			}()
			MapIndexed(Config{Workers: workers}, 16, func(i int) int {
				if i == 3 || i == 11 {
					panic(errors.New("boom " + string(rune('0'+i%10))))
				}
				return i
			})
		}()
	}
}

func TestPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		tp := recover().(*TrialPanic)
		if !errors.Is(tp, sentinel) {
			t.Fatal("Unwrap lost the original error")
		}
	}()
	MapIndexed(Config{Workers: 1}, 1, func(i int) int { panic(sentinel) })
}

// TestPanicDoesNotAbortOthers: remaining trials still produce results.
func TestPanicDoesNotAbortOthers(t *testing.T) {
	var completed atomic.Int64
	func() {
		defer func() { recover() }()
		MapIndexed(Config{Workers: 4}, 32, func(i int) int {
			if i == 0 {
				panic("early")
			}
			completed.Add(1)
			return i
		})
	}()
	if got := completed.Load(); got != 31 {
		t.Fatalf("completed %d trials, want 31", got)
	}
}

func TestConfigWorkers(t *testing.T) {
	if got := (Config{Workers: 0}).workers(1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d", got)
	}
	if got := (Config{Workers: 8}).workers(3); got != 3 {
		t.Fatalf("workers not capped by n: %d", got)
	}
	if got := (Config{Workers: -5}).workers(0); got != 1 {
		t.Fatalf("floor violated: %d", got)
	}
}
