package dist

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func TestBernoulliEdges(t *testing.T) {
	r := rng.New(1)
	if Bernoulli(r, 0) || Bernoulli(r, -1) {
		t.Fatal("p <= 0 must be false")
	}
	if !Bernoulli(r, 1) || !Bernoulli(r, 2) {
		t.Fatal("p >= 1 must be true")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := rng.New(2)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %.4f", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := rng.New(3)
	const trials = 200000
	for _, rate := range []float64{0.5, 1, 10} {
		sum := 0.0
		for i := 0; i < trials; i++ {
			x := Exponential(r, rate)
			if x < 0 {
				t.Fatalf("negative waiting time %v", x)
			}
			sum += x
		}
		mean := sum / trials
		if math.Abs(mean-1/rate) > 3/(rate*math.Sqrt(trials)) {
			t.Fatalf("rate %v: mean %.5f, want ~%.5f", rate, mean, 1/rate)
		}
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 must panic")
		}
	}()
	Exponential(rng.New(1), 0)
}

func TestBinomialEdges(t *testing.T) {
	r := rng.New(4)
	if Binomial(r, 0, 0.5) != 0 {
		t.Fatal("n = 0")
	}
	if Binomial(r, 10, 0) != 0 {
		t.Fatal("p = 0")
	}
	if Binomial(r, 10, 1) != 10 {
		t.Fatal("p = 1")
	}
	for i := 0; i < 1000; i++ {
		k := Binomial(r, 7, 0.4)
		if k < 0 || k > 7 {
			t.Fatalf("Binomial(7, 0.4) = %d out of range", k)
		}
	}
}

// TestBinomialMoments checks mean and variance against np and np(1−p)
// across both the direct (p <= 0.5) and mirrored (p > 0.5) paths.
func TestBinomialMoments(t *testing.T) {
	r := rng.New(5)
	const trials = 60000
	cases := []struct {
		n int
		p float64
	}{
		{20, 0.05}, {100, 0.3}, {100, 0.7}, {5000, 0.001}, {50, 0.5},
	}
	for _, c := range cases {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			k := float64(Binomial(r, c.n, c.p))
			sum += k
			sumSq += k * k
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/trials)+1e-9 {
			t.Errorf("Binomial(%d, %v): mean %.4f, want %.4f", c.n, c.p, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d, %v): variance %.4f, want %.4f", c.n, c.p, variance, wantVar)
		}
	}
}

func TestPoissonEdges(t *testing.T) {
	r := rng.New(6)
	if Poisson(r, 0) != 0 {
		t.Fatal("mean 0 must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative mean must panic")
		}
	}()
	Poisson(r, -1)
}

// TestPoissonMoments checks mean and variance (both equal the mean for a
// Poisson law) across the inversion (mean < 10) and PTRS (mean >= 10)
// paths, including the large means the stationary-snapshot sampler uses.
func TestPoissonMoments(t *testing.T) {
	r := rng.New(7)
	const trials = 60000
	for _, mean := range []float64{0.3, 2, 9.5, 10, 35, 400, 100000} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			k := float64(Poisson(r, mean))
			if k < 0 {
				t.Fatalf("Poisson(%v) negative", mean)
			}
			sum += k
			sumSq += k * k
		}
		m := sum / trials
		variance := sumSq/trials - m*m
		if math.Abs(m-mean) > 4*math.Sqrt(mean/trials)+1e-9 {
			t.Errorf("Poisson(%v): mean %.4f", mean, m)
		}
		if math.Abs(variance-mean)/mean > 0.1 {
			t.Errorf("Poisson(%v): variance %.4f", mean, variance)
		}
	}
}

// TestPoissonPMF checks the exact probability masses of the small-mean
// inversion path against e^{−λ}λ^k/k!.
func TestPoissonPMF(t *testing.T) {
	r := rng.New(8)
	const trials = 400000
	const mean = 3.0
	counts := make([]int, 12)
	for i := 0; i < trials; i++ {
		k := Poisson(r, mean)
		if k < len(counts) {
			counts[k]++
		}
	}
	pk := math.Exp(-mean)
	for k := 0; k < len(counts); k++ {
		got := float64(counts[k]) / trials
		if math.Abs(got-pk) > 4*math.Sqrt(pk/trials)+1e-4 {
			t.Errorf("P(X=%d) = %.5f, want %.5f", k, got, pk)
		}
		pk *= mean / float64(k+1)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := rng.New(10), rng.New(10)
	for i := 0; i < 100; i++ {
		if Poisson(a, 1000) != Poisson(b, 1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBinomialDeterministic(t *testing.T) {
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 100; i++ {
		if Binomial(a, 50, 0.2) != Binomial(b, 50, 0.2) {
			t.Fatal("same seed diverged")
		}
	}
}
