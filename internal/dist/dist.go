// Package dist samples the standard distributions the simulations draw
// from, on top of the deterministic rng package. All samplers are pure
// functions of the generator state, so runs stay reproducible bit for bit.
package dist

import (
	"math"

	"github.com/dyngraph/churnnet/internal/rng"
)

// Bernoulli returns true with probability p (clamped to [0, 1]).
func Bernoulli(r *rng.RNG, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential samples an Exponential(rate) waiting time (mean 1/rate). It
// panics if rate <= 0.
func Exponential(r *rng.RNG, rate float64) float64 {
	if rate <= 0 {
		panic("dist: Exponential requires rate > 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Binomial samples Binomial(n, p): the number of successes in n independent
// coins of bias p. Sampling is exact (no normal approximation); the
// geometric skip method costs O(n·min(p, 1−p)) expected time, which is fast
// for the sparse hit processes simulated here and still acceptable at the
// suite's largest layer sizes.
func Binomial(r *rng.RNG, n int, p float64) int {
	if n < 0 {
		panic("dist: Binomial requires n >= 0")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	// Skip over failure runs: each geometric gap ~ floor(ln U / ln(1−p))
	// counts the failures before the next success.
	lq := math.Log1p(-p)
	count, i := 0, 0
	for {
		gap := int(math.Log(r.Float64Open()) / lq)
		i += gap + 1
		if i > n {
			return count
		}
		count++
	}
}
