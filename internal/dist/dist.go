// Package dist samples the standard distributions the simulations draw
// from, on top of the deterministic rng package. All samplers are pure
// functions of the generator state, so runs stay reproducible bit for bit.
package dist

import (
	"math"

	"github.com/dyngraph/churnnet/internal/rng"
)

// Bernoulli returns true with probability p (clamped to [0, 1]).
func Bernoulli(r *rng.RNG, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential samples an Exponential(rate) waiting time (mean 1/rate). It
// panics if rate <= 0.
func Exponential(r *rng.RNG, rate float64) float64 {
	if rate <= 0 {
		panic("dist: Exponential requires rate > 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Poisson samples Poisson(mean): the stationary population law of the
// paper's M/M/∞ churn process (Lemma 4.4 approximates it; the exact
// stationary distribution with λ = 1, µ = 1/n is Poisson(n)). Sampling is
// exact at every mean: sequential inversion below the switch point, and
// Hörmann's PTRS transformed rejection (W. Hörmann, "The transformed
// rejection method for generating Poisson random variables", 1993) above
// it, which draws O(1) uniforms regardless of the mean. It panics if mean
// is negative.
func Poisson(r *rng.RNG, mean float64) int {
	if mean < 0 {
		panic("dist: Poisson requires mean >= 0")
	}
	if mean == 0 {
		return 0
	}
	if mean < 10 {
		// Inversion by sequential search over the multiplicative form:
		// count the uniforms whose running product stays above e^{-mean}.
		limit := math.Exp(-mean)
		k, p := 0, r.Float64Open()
		for p > limit {
			k++
			p *= r.Float64Open()
		}
		return k
	}
	// PTRS: sample a transformed uniform pair, accept by a squeeze or the
	// exact log-density comparison.
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}

// Binomial samples Binomial(n, p): the number of successes in n independent
// coins of bias p. Sampling is exact (no normal approximation); the
// geometric skip method costs O(n·min(p, 1−p)) expected time, which is fast
// for the sparse hit processes simulated here and still acceptable at the
// suite's largest layer sizes.
func Binomial(r *rng.RNG, n int, p float64) int {
	if n < 0 {
		panic("dist: Binomial requires n >= 0")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	// Skip over failure runs: each geometric gap ~ floor(ln U / ln(1−p))
	// counts the failures before the next success.
	lq := math.Log1p(-p)
	count, i := 0, 0
	for {
		gap := int(math.Log(r.Float64Open()) / lq)
		i += gap + 1
		if i > n {
			return count
		}
		count++
	}
}
