package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:       "F1",
		Title:    "Isolated nodes",
		PaperRef: "Lemma 3.5",
		Claim:    "at least (1/6)e^{-2d} n isolated nodes",
		Columns:  []string{"n", "d", "measured"},
	}
	t.AddRow("1000", "2", "0.031")
	t.AddRow("4000", "3", "0.007")
	t.AddNote("seeds 0..%d", 9)
	return t
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{
		"### F1 — Isolated nodes",
		"*Paper reference:* Lemma 3.5",
		"| n | d | measured |",
		"| 1000 | 2 | 0.031 |",
		"> seeds 0..9",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a|b"}}
	tab.AddRow("x\ny")
	md := tab.Markdown()
	if !strings.Contains(md, `a\|b`) {
		t.Fatalf("pipe not escaped: %s", md)
	}
	if strings.Contains(md, "x\ny") {
		t.Fatal("newline not flattened")
	}
}

func TestCSV(t *testing.T) {
	csv := sample().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "n,d,measured" {
		t.Fatalf("header %q", lines[0])
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow(`say "hi", ok` + "\nnewline")
	csv := tab.CSV()
	if !strings.Contains(csv, `"say ""hi"", ok`) {
		t.Fatalf("csv quoting wrong: %q", csv)
	}
}

func TestRaggedRowsPadded(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("1")
	tab.AddRow("1", "2", "3")
	md := tab.Markdown()
	// Widest row (3) defines the width; all rows padded to 3 cells = 4 pipes.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && strings.Count(line, "|") != 4 {
			t.Fatalf("unpadded line %q", line)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "1,,\n") {
		t.Fatalf("csv not padded: %q", csv)
	}
}

func TestText(t *testing.T) {
	txt := sample().Text()
	if !strings.Contains(txt, "F1 — Isolated nodes") || !strings.Contains(txt, "measured") {
		t.Fatalf("text output: %s", txt)
	}
	if !strings.Contains(txt, "note: seeds 0..9") {
		t.Fatal("note missing")
	}
}

func TestReportMarkdown(t *testing.T) {
	r := &Report{Title: "Results", Intro: "All experiments."}
	r.Add(sample(), sample())
	md := r.Markdown()
	if !strings.HasPrefix(md, "# Results\n") {
		t.Fatalf("title missing: %q", md[:30])
	}
	if strings.Count(md, "### F1") != 2 {
		t.Fatal("tables missing")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{F(0.123456), "0.1235"},
		{F(math.NaN()), "NaN"},
		{F(math.Inf(1)), "inf"},
		{F(math.Inf(-1)), "-inf"},
		{F2(1.005), "1.00"},
		{Pct(0.5), "50.0%"},
		{Pct(math.NaN()), "NaN"},
		{D(42), "42"},
		{Sci(0.000123), "1.23e-04"},
		{Pass(true), "✓"},
		{Pass(false), "✗"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %q want %q", i, c.got, c.want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{ID: "E", Title: "empty"}
	if md := tab.Markdown(); !strings.Contains(md, "### E — empty") {
		t.Fatal("empty table markdown")
	}
	if txt := tab.Text(); !strings.Contains(txt, "E — empty") {
		t.Fatal("empty table text")
	}
	if csv := tab.CSV(); csv != "\n" {
		t.Fatalf("empty csv %q", csv)
	}
}
