// Package report renders experiment results as Markdown, CSV and aligned
// plain text. Every table carries its paper reference and the claim it
// reproduces, so the generated EXPERIMENTS.md reads as a paper-vs-measured
// record.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is one experiment's result table.
type Table struct {
	// ID is the experiment identifier (T1, F1, ...).
	ID string
	// Title is a human-readable one-liner.
	Title string
	// PaperRef cites the reproduced statement ("Lemma 3.5", "Table 1").
	PaperRef string
	// Claim states what the paper predicts.
	Claim string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells; ragged rows are padded when rendered.
	Rows [][]string
	// Notes are free-form footnotes.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// width returns the widest row length including the header.
func (t *Table) width() int {
	w := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

func pad(row []string, w int) []string {
	if len(row) >= w {
		return row
	}
	out := make([]string, w)
	copy(out, row)
	return out
}

// Markdown renders the table as a Markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(&b, "*Paper reference:* %s.", t.PaperRef)
		if t.Claim != "" {
			fmt.Fprintf(&b, " *Claim:* %s", t.Claim)
		}
		b.WriteString("\n\n")
	}
	w := t.width()
	if w > 0 {
		header := pad(t.Columns, w)
		b.WriteString("| " + strings.Join(escapeCells(header), " | ") + " |\n")
		b.WriteString("|" + strings.Repeat(" --- |", w) + "\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(escapeCells(pad(row, w)), " | ") + " |\n")
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		c = strings.ReplaceAll(c, "|", "\\|")
		c = strings.ReplaceAll(c, "\n", " ")
		out[i] = c
	}
	return out
}

// CSV renders the table in RFC-4180 CSV (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	w := t.width()
	writeCSVRow(&b, pad(t.Columns, w))
	for _, row := range t.Rows {
		writeCSVRow(&b, pad(row, w))
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Text renders the table with aligned columns for terminals.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(&b, "  [%s] %s\n", t.PaperRef, t.Claim)
	}
	w := t.width()
	if w == 0 {
		return b.String()
	}
	widths := make([]int, w)
	all := append([][]string{pad(t.Columns, w)}, t.Rows...)
	for _, row := range all {
		for i, c := range pad(row, w) {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range all {
		for i, c := range pad(row, w) {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 2 * w
			for _, wd := range widths {
				total += wd
			}
			b.WriteString(strings.Repeat("-", total) + "\n")
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Report is an ordered collection of tables.
type Report struct {
	Title  string
	Intro  string
	Tables []*Table
}

// Add appends tables.
func (r *Report) Add(ts ...*Table) { r.Tables = append(r.Tables, ts...) }

// Markdown renders the whole report.
func (r *Report) Markdown() string {
	var b strings.Builder
	if r.Title != "" {
		fmt.Fprintf(&b, "# %s\n\n", r.Title)
	}
	if r.Intro != "" {
		b.WriteString(r.Intro + "\n\n")
	}
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
	}
	return b.String()
}

// --- cell formatting helpers ---

// F formats a float compactly (4 significant digits, inf/nan-safe).
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// F2 formats a float with 2 decimal places.
func F2(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return F(v)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return F(v)
	}
	return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
}

// D formats an int.
func D(v int) string { return strconv.Itoa(v) }

// Sci formats in scientific notation with 2 digits (for tail bounds).
func Sci(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return F(v)
	}
	return strconv.FormatFloat(v, 'e', 2, 64)
}

// Pass renders a ✓/✗ cell.
func Pass(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
