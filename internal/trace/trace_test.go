package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/rng"
)

func TestRecorderRun(t *testing.T) {
	m := core.NewStreaming(100, 3, true, rng.New(1))
	m.WarmUp()
	r := NewRecorder()
	r.Run(m, 10)
	if r.Len() != 11 {
		t.Fatalf("rows %d", r.Len())
	}
	size := r.Column("size")
	if len(size) != 11 {
		t.Fatalf("size column %v", size)
	}
	for _, v := range size {
		if v != 100 {
			t.Fatalf("streaming size %v", v)
		}
	}
	tm := r.Column("time")
	for i := 1; i < len(tm); i++ {
		if tm[i] != tm[i-1]+1 {
			t.Fatalf("time not unit-stepped: %v", tm)
		}
	}
}

func TestRecorderCustomProbes(t *testing.T) {
	m := core.NewStreaming(50, 2, false, rng.New(2))
	m.WarmUp()
	calls := 0
	r := NewRecorder(Probe{Name: "x", Sample: func(core.Model) float64 { calls++; return 7 }})
	r.Sample(m)
	r.Sample(m)
	if calls != 2 {
		t.Fatalf("probe calls %d", calls)
	}
	if got := r.Column("x"); len(got) != 2 || got[0] != 7 {
		t.Fatalf("column %v", got)
	}
	if r.Column("nope") != nil {
		t.Fatal("unknown column must be nil")
	}
}

func TestRecorderCSV(t *testing.T) {
	m := core.NewStreaming(20, 2, true, rng.New(3))
	m.WarmUp()
	r := NewRecorder(ProbeTime, ProbeSize)
	r.Run(m, 2)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %v", lines)
	}
	if lines[0] != "time,size" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",20") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestDefaultProbesCoverObservables(t *testing.T) {
	names := map[string]bool{}
	for _, p := range DefaultProbes() {
		names[p.Name] = true
	}
	for _, want := range []string{"time", "size", "edges", "mean_degree", "max_degree", "isolated_fraction"} {
		if !names[want] {
			t.Fatalf("missing default probe %s", want)
		}
	}
	if got := NewRecorder().Columns(); len(got) != len(DefaultProbes()) {
		t.Fatalf("columns %v", got)
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(ProbeTime)
	if !strings.Contains(r.Summary(), "empty") {
		t.Fatal("empty summary")
	}
	m := core.NewStreaming(10, 1, false, rng.New(4))
	m.WarmUp()
	r.Run(m, 3)
	if !strings.Contains(r.Summary(), "time") {
		t.Fatalf("summary %q", r.Summary())
	}
}
