// Package trace records per-round time series of model observables
// (population, edges, degrees, isolation, ...) and writes them as CSV —
// the raw material for plotting trajectories of any experiment.
package trace

import (
	"fmt"
	"io"
	"strconv"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
)

// Probe samples one observable from a model.
type Probe struct {
	Name   string
	Sample func(m core.Model) float64
}

// Standard probes.
var (
	// ProbeTime records model time.
	ProbeTime = Probe{Name: "time", Sample: func(m core.Model) float64 { return m.Now() }}
	// ProbeSize records the alive population.
	ProbeSize = Probe{Name: "size", Sample: func(m core.Model) float64 {
		return float64(m.Graph().NumAlive())
	}}
	// ProbeEdges records the live edge count.
	ProbeEdges = Probe{Name: "edges", Sample: func(m core.Model) float64 {
		return float64(m.Graph().NumEdgesLive())
	}}
	// ProbeMeanDegree records the mean live degree.
	ProbeMeanDegree = Probe{Name: "mean_degree", Sample: func(m core.Model) float64 {
		return analysis.Degrees(m.Graph()).Mean
	}}
	// ProbeMaxDegree records the maximum live degree.
	ProbeMaxDegree = Probe{Name: "max_degree", Sample: func(m core.Model) float64 {
		return float64(analysis.Degrees(m.Graph()).Max)
	}}
	// ProbeIsolated records the isolated-node fraction.
	ProbeIsolated = Probe{Name: "isolated_fraction", Sample: func(m core.Model) float64 {
		return analysis.IsolatedFraction(m.Graph())
	}}
)

// DefaultProbes returns the standard probe set.
func DefaultProbes() []Probe {
	return []Probe{ProbeTime, ProbeSize, ProbeEdges, ProbeMeanDegree, ProbeMaxDegree, ProbeIsolated}
}

// Recorder accumulates samples of a fixed probe set.
type Recorder struct {
	probes []Probe
	rows   [][]float64
}

// NewRecorder builds a recorder over the probes (DefaultProbes if none).
func NewRecorder(probes ...Probe) *Recorder {
	if len(probes) == 0 {
		probes = DefaultProbes()
	}
	return &Recorder{probes: probes}
}

// Sample records one row from the model's current state.
func (r *Recorder) Sample(m core.Model) {
	row := make([]float64, len(r.probes))
	for i, p := range r.probes {
		row[i] = p.Sample(m)
	}
	r.rows = append(r.rows, row)
}

// Run samples the current state, then advances the model `rounds` times,
// sampling after each round (rounds+1 rows in total).
func (r *Recorder) Run(m core.Model, rounds int) {
	r.Sample(m)
	for i := 0; i < rounds; i++ {
		m.AdvanceRound()
		r.Sample(m)
	}
}

// Len returns the number of recorded rows.
func (r *Recorder) Len() int { return len(r.rows) }

// Columns returns the probe names in order.
func (r *Recorder) Columns() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.Name
	}
	return out
}

// Column returns the series of the named probe, or nil if unknown.
func (r *Recorder) Column(name string) []float64 {
	for i, p := range r.probes {
		if p.Name == name {
			out := make([]float64, len(r.rows))
			for j, row := range r.rows {
				out[j] = row[i]
			}
			return out
		}
	}
	return nil
}

// WriteCSV emits the recorded series with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	for i, p := range r.probes {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, p.Name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range r.rows {
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a short human-readable digest (first/last value per
// probe).
func (r *Recorder) Summary() string {
	if len(r.rows) == 0 {
		return "trace: empty"
	}
	s := ""
	first, last := r.rows[0], r.rows[len(r.rows)-1]
	for i, p := range r.probes {
		s += fmt.Sprintf("%s: %.4g -> %.4g\n", p.Name, first[i], last[i])
	}
	return s
}
