package graphio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestWriteDOT(t *testing.T) {
	g, _ := staticgraph.Path(3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "p3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "p3" {`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 -- 1") {
		t.Fatal("edge emitted twice")
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	g, _ := staticgraph.Path(2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "churnnet"`) {
		t.Fatal("default name missing")
	}
}

func TestWriteDOTMergesParallelEdges(t *testing.T) {
	g := graph.New(2, 2)
	a, b := g.AddNode(0), g.AddNode(1)
	g.AddOutEdge(a, b)
	g.AddOutEdge(a, b)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "x"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "--") != 1 {
		t.Fatalf("parallel edges not merged:\n%s", buf.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _ := staticgraph.DOut(50, 3, rng.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAlive() != 50 || len(hs2) != 50 {
		t.Fatalf("size %d", g2.NumAlive())
	}
	if g2.NumEdgesLive() != g.NumEdgesLive() {
		t.Fatalf("edges %d != %d", g2.NumEdgesLive(), g.NumEdgesLive())
	}
	if err := g2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTripPreservesDegrees(t *testing.T) {
	m := core.NewStreaming(200, 4, true, rng.New(2))
	m.WarmUp()
	g := m.Graph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees sorted by birth order must match exactly.
	orig := make([]int, 0, g.NumAlive())
	hs := g.AliveHandles()
	// birth order == ID order in the export
	for i := 0; i < len(hs); i++ {
		orig = append(orig, 0)
	}
	_, ids := stableIDs(g)
	g.ForEachAlive(func(h graph.Handle) bool {
		orig[ids[h]] = g.DegreeLive(h)
		return true
	})
	for i, h := range hs2 {
		if got := g2.DegreeLive(h); got != orig[i] {
			t.Fatalf("degree mismatch at %d: %d != %d", i, got, orig[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // missing header
		"e 0 1\n",      // edge before header
		"n -3\n",       // bad count
		"n 2\nn 2\n",   // duplicate header
		"n 2\ne 0\n",   // malformed edge
		"n 2\ne 0 5\n", // out of range
		"n 2\ne 1 1\n", // self loop
		"n 2\nz 1 2\n", // unknown record
		"n two\n",      // non-numeric count... caught as malformed
	}
	for i, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected error", i, in)
		}
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	in := "# snapshot\n\nn 3\n# edges\ne 0 1\n\ne 1 2\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAlive() != 3 || g.NumEdgesLive() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumAlive(), g.NumEdgesLive())
	}
}

func TestStableIDsAreBirthOrdered(t *testing.T) {
	g := graph.New(4, 0)
	a := g.AddNode(0)
	b := g.AddNode(1)
	g.RemoveNode(a, nil)
	c := g.AddNode(2) // reuses a's slot but is younger than b
	hs, ids := stableIDs(g)
	if len(hs) != 2 {
		t.Fatalf("%v", hs)
	}
	if ids[b] != 0 || ids[c] != 1 {
		t.Fatalf("ids %v", ids)
	}
}
