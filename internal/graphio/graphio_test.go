package graphio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestWriteDOT(t *testing.T) {
	g, _ := staticgraph.Path(3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "p3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "p3" {`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 -- 1") {
		t.Fatal("edge emitted twice")
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	g, _ := staticgraph.Path(2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "churnnet"`) {
		t.Fatal("default name missing")
	}
}

func TestWriteDOTMergesParallelEdges(t *testing.T) {
	g := graph.New(2, 2)
	a, b := g.AddNode(0), g.AddNode(1)
	g.AddOutEdge(a, b)
	g.AddOutEdge(a, b)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "x"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "--") != 1 {
		t.Fatalf("parallel edges not merged:\n%s", buf.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _ := staticgraph.DOut(50, 3, rng.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAlive() != 50 || len(hs2) != 50 {
		t.Fatalf("size %d", g2.NumAlive())
	}
	if g2.NumEdgesLive() != g.NumEdgesLive() {
		t.Fatalf("edges %d != %d", g2.NumEdgesLive(), g.NumEdgesLive())
	}
	if err := g2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTripPreservesDegrees(t *testing.T) {
	m := core.NewStreaming(200, 4, true, rng.New(2))
	m.WarmUp()
	g := m.Graph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees sorted by birth order must match exactly.
	orig := make([]int, 0, g.NumAlive())
	hs := g.AliveHandles()
	// birth order == ID order in the export
	for i := 0; i < len(hs); i++ {
		orig = append(orig, 0)
	}
	_, ids := stableIDs(g)
	g.ForEachAlive(func(h graph.Handle) bool {
		orig[ids[h]] = g.DegreeLive(h)
		return true
	})
	for i, h := range hs2 {
		if got := g2.DegreeLive(h); got != orig[i] {
			t.Fatalf("degree mismatch at %d: %d != %d", i, got, orig[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                        // missing header
		"e 0 1\n",                 // edge before header
		"a 0 1.5\n",               // age before header
		"n -3\n",                  // bad count
		"n 9999999999\n",          // count beyond the int32 slot budget
		"n 2\nn 2\n",              // duplicate header
		"n 2\ne 0\n",              // malformed edge
		"n 2\ne 0 5\n",            // out of range
		"n 2\ne 1 1\n",            // self loop
		"n 2\nz 1 2\n",            // unknown record
		"n two\n",                 // non-numeric count... caught as malformed
		"n 2\na 0\n",              // malformed age record
		"n 2\na 2 1.5\n",          // age id out of range
		"n 2\na -1 1.5\n",         // negative age id
		"n 2\na 0 x\n",            // non-numeric birth
		"n 2\na 0 1.5\na 0 2.5\n", // duplicate age record
		"n 2\ne 0 1\na 0 1.5\n",   // age after edges
		"n 2\na 0 1.5\nn 2\n",     // duplicate header after ages
	}
	for i, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected error", i, in)
		}
	}
}

// TestReadEdgeListErrorMessages pins the hardened failure modes to clear,
// named errors rather than generic parse failures.
func TestReadEdgeListErrorMessages(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"n 2\na 0 1.5\na 0 2.5\n", "duplicate age record"},
		{"n 2\ne 0 1\na 0 1.5\n", "age record after edges"},
		{"n 9999999999\n", "bad node count"},
		{"n 2\n" + strings.Repeat("x", 17*1024*1024), "scanner budget"},
	}
	for _, c := range cases {
		_, _, err := ReadEdgeList(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("input %.40q: error %v, want substring %q", c.in, err, c.want)
		}
	}
}

// TestReadEdgeListLegacyFallback: files from before the age record still
// load, with the documented lossy IDs-as-ages fallback.
func TestReadEdgeListLegacyFallback(t *testing.T) {
	in := "n 3\ne 0 1\ne 1 2\n"
	g, hs, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		if got := g.BirthTime(h); got != float64(i) {
			t.Fatalf("node %d: legacy birth %v, want %v", i, got, float64(i))
		}
	}
	// Partial age records: annotated nodes keep their birth, the rest
	// fall back to the dense ID.
	in = "n 3\na 1 41.5\ne 0 1\n"
	g, hs, err = ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 41.5, 2} {
		if got := g.BirthTime(hs[i]); got != want {
			t.Fatalf("node %d: birth %v, want %v", i, got, want)
		}
	}
}

// TestEdgeListRoundTripPreservesBirths: the wire format carries model
// birth times bit-for-bit, not the dense ID index (the pre-age-record
// reader silently replaced real ages with IDs).
func TestEdgeListRoundTripPreservesBirths(t *testing.T) {
	m := core.New(core.PDGR, 150, 3, rng.New(7))
	core.WarmUp(m)
	g := m.Graph()
	hs, _ := stableIDs(g)

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs2) != len(hs) {
		t.Fatalf("size %d != %d", len(hs2), len(hs))
	}
	for i := range hs {
		want := g.BirthTime(hs[i])
		if got := g2.BirthTime(hs2[i]); got != want {
			t.Fatalf("node %d: birth %v != %v", i, got, want)
		}
	}
	// Birth order must match ID order in the reconstruction.
	for i := 1; i < len(hs2); i++ {
		if !g2.Older(hs2[i-1], hs2[i]) {
			t.Fatalf("reconstructed birth order broken at %d", i)
		}
	}
}

// TestEdgeListRoundTripProperty is the full property test: random model
// snapshots → write → read → births bit-for-bit, edge multiset preserved,
// and a second write byte-identical to the first (which pins out-list
// order); a second read must also agree with the first on in-list
// iteration order, so the reconstruction itself is deterministic.
func TestEdgeListRoundTripProperty(t *testing.T) {
	for _, kind := range core.Kinds() {
		for seed := uint64(1); seed <= 5; seed++ {
			m := core.New(kind, 120, 3, rng.New(seed))
			core.WarmUp(m)
			g := m.Graph()
			hs, ids := stableIDs(g)

			var buf1 bytes.Buffer
			if err := WriteEdgeList(&buf1, g); err != nil {
				t.Fatal(err)
			}
			g2, hs2, err := ReadEdgeList(bytes.NewReader(buf1.Bytes()))
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			if err := g2.CheckInvariants(); err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}

			// Births bit-for-bit.
			for i := range hs {
				if g2.BirthTime(hs2[i]) != g.BirthTime(hs[i]) {
					t.Fatalf("%v seed %d: birth mismatch at %d", kind, seed, i)
				}
			}

			// Edge multiset (by stable ID pair, duplicates counted).
			edgeKey := func(gg *graph.Graph, handles []graph.Handle, idOf func(graph.Handle) int) map[[2]int]int {
				ms := map[[2]int]int{}
				for _, h := range handles {
					u := idOf(h)
					gg.OutTargets(h, func(v graph.Handle) bool {
						ms[[2]int{u, idOf(v)}]++
						return true
					})
				}
				return ms
			}
			orig := edgeKey(g, hs, func(h graph.Handle) int { return ids[h] })
			pos2 := make(map[graph.Handle]int, len(hs2))
			for i, h := range hs2 {
				pos2[h] = i
			}
			got := edgeKey(g2, hs2, func(h graph.Handle) int { return pos2[h] })
			if len(orig) != len(got) {
				t.Fatalf("%v seed %d: edge multiset size %d != %d", kind, seed, len(got), len(orig))
			}
			for k, c := range orig {
				if got[k] != c {
					t.Fatalf("%v seed %d: edge %v count %d != %d", kind, seed, k, got[k], c)
				}
			}

			// Re-write is byte-identical (out-list order and ages stable).
			var buf2 bytes.Buffer
			if err := WriteEdgeList(&buf2, g2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				t.Fatalf("%v seed %d: round-tripped file differs from original", kind, seed)
			}

			// A second read agrees with the first on in-list order.
			g3, hs3, err := ReadEdgeList(bytes.NewReader(buf1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for i := range hs2 {
				var in2, in3 []int
				g2.InSources(hs2[i], func(s graph.Handle) bool { in2 = append(in2, pos2[s]); return true })
				g3.InSources(hs3[i], func(s graph.Handle) bool {
					for j, h := range hs3 {
						if h == s {
							in3 = append(in3, j)
							break
						}
					}
					return true
				})
				if len(in2) != len(in3) {
					t.Fatalf("%v seed %d: in-list length differs at %d", kind, seed, i)
				}
				for j := range in2 {
					if in2[j] != in3[j] {
						t.Fatalf("%v seed %d: in-list order differs at node %d pos %d", kind, seed, i, j)
					}
				}
			}
		}
	}
}

// TestEdgeListEmptyGraph: a 0-alive snapshot writes a bare header and
// reads back as an empty graph, for both formats.
func TestEdgeListEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "n 0\n" {
		t.Fatalf("empty edge list %q", got)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAlive() != 0 || len(hs2) != 0 {
		t.Fatalf("empty read: %d alive", g2.NumAlive())
	}
	var dot bytes.Buffer
	if err := WriteDOT(&dot, g, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph \"empty\" {") || !strings.Contains(dot.String(), "}") {
		t.Fatalf("empty DOT %q", dot.String())
	}
}

// TestEdgeListDeadSlotHoles: killed nodes leave arena holes; the export
// must skip them and stay dense, and ages must survive the trip.
func TestEdgeListDeadSlotHoles(t *testing.T) {
	g := graph.New(8, 0)
	var hs []graph.Handle
	for i := 0; i < 6; i++ {
		hs = append(hs, g.AddNode(float64(i)*1.25))
	}
	g.AddOutEdge(hs[0], hs[1])
	g.AddOutEdge(hs[2], hs[3])
	g.AddOutEdge(hs[4], hs[5])
	g.RemoveNode(hs[1], nil)
	g.RemoveNode(hs[4], nil)
	reborn := g.AddNode(99.5) // reuses a dead slot, youngest node
	g.AddOutEdge(reborn, hs[0])

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, hs2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumAlive() != 5 || len(hs2) != 5 {
		t.Fatalf("alive %d", g2.NumAlive())
	}
	wantBirths := []float64{0, 2.5, 3.75, 6.25, 99.5} // birth order of survivors
	for i, want := range wantBirths {
		if got := g2.BirthTime(hs2[i]); got != want {
			t.Fatalf("node %d: birth %v, want %v", i, got, want)
		}
	}
	// hs[0]→hs[1] and hs[4]→hs[5] died with their endpoints; 2 live edges.
	if g2.NumEdgesLive() != 2 {
		t.Fatalf("edges %d", g2.NumEdgesLive())
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	in := "# snapshot\n\nn 3\n# edges\ne 0 1\n\ne 1 2\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAlive() != 3 || g.NumEdgesLive() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumAlive(), g.NumEdgesLive())
	}
}

func TestStableIDsAreBirthOrdered(t *testing.T) {
	g := graph.New(4, 0)
	a := g.AddNode(0)
	b := g.AddNode(1)
	g.RemoveNode(a, nil)
	c := g.AddNode(2) // reuses a's slot but is younger than b
	hs, ids := stableIDs(g)
	if len(hs) != 2 {
		t.Fatalf("%v", hs)
	}
	if ids[b] != 0 || ids[c] != 1 {
		t.Fatalf("ids %v", ids)
	}
}
