// Package graphio serializes graph snapshots: Graphviz DOT for
// visualization, and a plain edge-list format that round-trips through
// ReadEdgeList so that interesting snapshots (a witness set's
// neighborhood, a stalled broadcast's topology) can be saved and reloaded.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/dyngraph/churnnet/internal/graph"
)

// stableIDs assigns dense integer IDs to alive nodes in birth order, so
// output is deterministic and ages are recoverable (smaller ID = older).
func stableIDs(g *graph.Graph) ([]graph.Handle, map[graph.Handle]int) {
	hs := g.AliveHandles()
	sort.Slice(hs, func(i, j int) bool { return g.BirthSeq(hs[i]) < g.BirthSeq(hs[j]) })
	ids := make(map[graph.Handle]int, len(hs))
	for i, h := range hs {
		ids[h] = i
	}
	return hs, ids
}

// WriteDOT renders the alive graph as an undirected Graphviz graph. Nodes
// are labeled by birth order (0 = oldest); parallel request edges are
// merged.
func WriteDOT(w io.Writer, g *graph.Graph, name string) error {
	if name == "" {
		name = "churnnet"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	hs, ids := stableIDs(g)
	var seen graph.Marks
	for _, h := range hs {
		fmt.Fprintf(bw, "  %d;\n", ids[h])
	}
	for _, h := range hs {
		seen.Reset()
		u := ids[h]
		g.Neighbors(h, func(v graph.Handle) bool {
			if !seen.Mark(v) {
				return true
			}
			if ids[v] > u { // emit each undirected edge once
				fmt.Fprintf(bw, "  %d -- %d;\n", u, ids[v])
			}
			return true
		})
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList emits the snapshot as lines:
//
//	n <aliveCount>
//	e <src> <dst>        (one per live request edge, parallel edges kept)
//
// IDs are birth-ordered (0 = oldest).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hs, ids := stableIDs(g)
	fmt.Fprintf(bw, "n %d\n", len(hs))
	for _, h := range hs {
		u := ids[h]
		g.OutTargets(h, func(v graph.Handle) bool {
			fmt.Fprintf(bw, "e %d %d\n", u, ids[v])
			return true
		})
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format and rebuilds the snapshot
// as a static graph whose birth order matches the IDs. Handles are
// returned in ID order.
//
//churnvet:hookexempt loader rebuilds a finished snapshot before any hook subscriber can attach
func ReadEdgeList(r io.Reader) (*graph.Graph, []graph.Handle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *graph.Graph
	var hs []graph.Handle
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: duplicate n header", line)
			}
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("graphio: line %d: malformed n header", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("graphio: line %d: bad node count %q", line, fields[1])
			}
			g = graph.New(n, 0)
			hs = make([]graph.Handle, n)
			for i := range hs {
				hs[i] = g.AddNode(float64(i))
			}
		case "e":
			if g == nil {
				return nil, nil, fmt.Errorf("graphio: line %d: edge before n header", line)
			}
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("graphio: line %d: malformed edge", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= len(hs) || v >= len(hs) {
				return nil, nil, fmt.Errorf("graphio: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, nil, fmt.Errorf("graphio: line %d: self-loop", line)
			}
			g.AddOutEdge(hs[u], hs[v])
		default:
			return nil, nil, fmt.Errorf("graphio: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("graphio: missing n header")
	}
	return g, hs, nil
}
