// Package graphio serializes graph snapshots: Graphviz DOT for
// visualization, and a plain edge-list format that round-trips through
// ReadEdgeList so that interesting snapshots (a witness set's
// neighborhood, a stalled broadcast's topology) can be saved and reloaded.
//
// The edge-list format is line-oriented:
//
//	n <aliveCount>       exactly one, before any other record
//	a <id> <birth>       optional, one per node, before the first edge
//	e <src> <dst>        one per live request edge, parallel edges kept
//
// IDs are dense and birth-ordered (0 = oldest). The `a` records carry each
// node's model birth time so age-dependent consumers (age-ordered witness
// seeding, demographic analysis) survive a write→read round trip
// bit-for-bit; WriteEdgeList always emits them. Files written before the
// record existed still load: nodes missing an `a` record fall back to
// their dense ID as the birth time, which preserves the birth *order* but
// is lossy — real ages are gone, and consumers see the index scale
// instead of the model clock.
package graphio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/dyngraph/churnnet/internal/graph"
)

// maxNodes caps the node count ReadEdgeList accepts. Slots are indexed by
// int32 throughout the arena (graph.Graph.alivePos), so anything above
// this bound could not be represented even if it fit in memory; rejecting
// it up front turns a hostile or corrupt header into a clear error instead
// of an allocation explosion.
const maxNodes = math.MaxInt32

// scannerBudget is the per-line buffer cap of ReadEdgeList. Records are a
// few dozen bytes; a line exceeding this budget means the input is not an
// edge-list file (or was corrupted into one giant line).
const scannerBudget = 16 * 1024 * 1024

// stableIDs assigns dense integer IDs to alive nodes in birth order, so
// output is deterministic and ages are recoverable (smaller ID = older).
func stableIDs(g *graph.Graph) ([]graph.Handle, map[graph.Handle]int) {
	hs := g.AliveHandles()
	sort.Slice(hs, func(i, j int) bool { return g.BirthSeq(hs[i]) < g.BirthSeq(hs[j]) })
	ids := make(map[graph.Handle]int, len(hs))
	for i, h := range hs {
		ids[h] = i
	}
	return hs, ids
}

// WriteDOT renders the alive graph as an undirected Graphviz graph. Nodes
// are labeled by birth order (0 = oldest); parallel request edges are
// merged. An empty (0-alive) snapshot renders as a valid empty graph, and
// dead arena slots never appear — IDs are dense over the alive set.
func WriteDOT(w io.Writer, g *graph.Graph, name string) error {
	if name == "" {
		name = "churnnet"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	hs, ids := stableIDs(g)
	var seen graph.Marks
	for _, h := range hs {
		fmt.Fprintf(bw, "  %d;\n", ids[h])
	}
	for _, h := range hs {
		seen.Reset()
		u := ids[h]
		g.Neighbors(h, func(v graph.Handle) bool {
			if !seen.Mark(v) {
				return true
			}
			if ids[v] > u { // emit each undirected edge once
				fmt.Fprintf(bw, "  %d -- %d;\n", u, ids[v])
			}
			return true
		})
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// formatBirth renders a birth time so that ParseFloat recovers it exactly:
// strconv's shortest decimal representation (precision -1) is defined to
// round-trip bit-for-bit through parsing.
func formatBirth(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteEdgeList emits the snapshot as lines:
//
//	n <aliveCount>
//	a <id> <birth>       (one per node, birth time in model units)
//	e <src> <dst>        (one per live request edge, parallel edges kept)
//
// IDs are birth-ordered (0 = oldest). An empty snapshot writes just the
// `n 0` header; dead arena slots are skipped, so IDs are always dense.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hs, ids := stableIDs(g)
	fmt.Fprintf(bw, "n %d\n", len(hs))
	for _, h := range hs {
		fmt.Fprintf(bw, "a %d %s\n", ids[h], formatBirth(g.BirthTime(h)))
	}
	for _, h := range hs {
		u := ids[h]
		g.OutTargets(h, func(v graph.Handle) bool {
			fmt.Fprintf(bw, "e %d %d\n", u, ids[v])
			return true
		})
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format and rebuilds the snapshot
// as a static graph whose birth order matches the IDs and whose birth
// times come from the `a` records (dense-ID fallback for legacy files
// without them — see the package comment for what that loses). Handles
// are returned in ID order.
//
// Malformed inputs fail with an error naming the offending line: duplicate
// `n` headers or `a` records, `a` records after the first edge (births
// must be known before nodes materialize), counts beyond the int32 slot
// budget, references out of range, self-loops, and lines exceeding the
// 16 MiB scanner budget are all rejected explicitly.
//
//churnvet:hookexempt loader rebuilds a finished snapshot before any hook subscriber can attach
func ReadEdgeList(r io.Reader) (*graph.Graph, []graph.Handle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), scannerBudget)
	var (
		g        *graph.Graph
		hs       []graph.Handle
		n        = -1 // declared node count; -1 until the header is seen
		births   []float64
		hasBirth []bool
		line     = 0
	)
	// materialize builds the n nodes once edges start (or input ends):
	// every birth is known by then, and AddNode order fixes the birth
	// sequence to ID order.
	materialize := func() {
		if g != nil || n < 0 {
			return
		}
		g = graph.New(n, 0)
		hs = make([]graph.Handle, n)
		for i := range hs {
			b := float64(i) // legacy fallback: dense ID as birth time
			if hasBirth[i] {
				b = births[i]
			}
			hs[i] = g.AddNode(b)
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if n >= 0 {
				return nil, nil, fmt.Errorf("graphio: line %d: duplicate n header", line)
			}
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("graphio: line %d: malformed n header", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || v < 0 || v > maxNodes {
				return nil, nil, fmt.Errorf("graphio: line %d: bad node count %q (want 0..%d)", line, fields[1], maxNodes)
			}
			n = int(v)
			births = make([]float64, n)
			hasBirth = make([]bool, n)
		case "a":
			if n < 0 {
				return nil, nil, fmt.Errorf("graphio: line %d: age record before n header", line)
			}
			if g != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: age record after edges (births must precede the first e record)", line)
			}
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("graphio: line %d: malformed age record", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || id < 0 || id >= n {
				return nil, nil, fmt.Errorf("graphio: line %d: bad age id %q", line, fields[1])
			}
			if err2 != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: bad birth time %q", line, fields[2])
			}
			if hasBirth[id] {
				return nil, nil, fmt.Errorf("graphio: line %d: duplicate age record for node %d", line, id)
			}
			births[id] = b
			hasBirth[id] = true
		case "e":
			if n < 0 {
				return nil, nil, fmt.Errorf("graphio: line %d: edge before n header", line)
			}
			materialize()
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("graphio: line %d: malformed edge", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= len(hs) || v >= len(hs) {
				return nil, nil, fmt.Errorf("graphio: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, nil, fmt.Errorf("graphio: line %d: self-loop", line)
			}
			g.AddOutEdge(hs[u], hs[v])
		default:
			return nil, nil, fmt.Errorf("graphio: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, nil, fmt.Errorf("graphio: line %d: line exceeds the %d-byte scanner budget (not an edge-list file?)", line+1, scannerBudget)
		}
		return nil, nil, err
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("graphio: missing n header")
	}
	materialize()
	return g, hs, nil
}
