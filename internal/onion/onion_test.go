package onion

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func TestStreamingReachesTargetLargeD(t *testing.T) {
	// Claim 3.11 regime: d >= 200 succeeds with probability
	// >= 1 − 4e^{−d/100} ≈ 0.46 for d = 200 — but empirically the cascade
	// is far more reliable; require a high success rate.
	rate := SuccessRate(100000, 200, 50, false, rng.New(1))
	if rate < 0.9 {
		t.Fatalf("streaming onion-skin success rate %v for d=200", rate)
	}
}

func TestStreamingLayerGrowth(t *testing.T) {
	// Claim 3.10 shape: while layers are below n/d, each old layer grows
	// by a factor around d/20 or more. Check the minimum observed factor
	// stays above a loose d/40.
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		res := Streaming(200000, 300, r)
		if !res.Reached {
			continue
		}
		if f := res.MinGrowthFactor(); f < 300.0/40 {
			t.Fatalf("trial %d: min growth factor %v below d/40 (layers %v)", trial, f, res.OldLayers)
		}
	}
}

func TestStreamingSmallDOftenDies(t *testing.T) {
	// With d = 1 the cascade has no redundancy: type-B halves are empty
	// (d/2 = 0), so no young node can ever connect — guaranteed death
	// after phase 0.
	res := Streaming(1000, 1, rng.New(3))
	if !res.DiedOut || res.Reached {
		t.Fatalf("d=1 cascade should die: %+v", res)
	}
}

func TestStreamingResultAccounting(t *testing.T) {
	r := rng.New(4)
	res := Streaming(50000, 250, r)
	if len(res.YoungLayers) != res.Phases || len(res.OldLayers) != res.Phases {
		t.Fatalf("layer slices %d/%d vs phases %d", len(res.YoungLayers), len(res.OldLayers), res.Phases)
	}
	sumY, sumO := 0, 0
	for _, y := range res.YoungLayers {
		sumY += y
	}
	for _, o := range res.OldLayers {
		sumO += o
	}
	if sumY != res.YoungTotal || sumO != res.OldTotal {
		t.Fatalf("totals %d/%d, layer sums %d/%d", res.YoungTotal, res.OldTotal, sumY, sumO)
	}
	if res.YoungLayers[0] != 1 {
		t.Fatal("phase 0 young layer must be the source alone")
	}
	if res.Reached && (res.YoungTotal < res.Target || res.OldTotal < res.Target) {
		t.Fatalf("reached without meeting target: %+v", res)
	}
	if res.Reached == res.DiedOut {
		t.Fatalf("exactly one of Reached/DiedOut must hold: %+v", res)
	}
}

func TestStreamingPhase0Distribution(t *testing.T) {
	// |O_0| <= d always, and E|O_0| ≈ d·|O|/n ≈ d/2.
	r := rng.New(5)
	const n, d, trials = 10000, 40, 2000
	sum := 0
	for i := 0; i < trials; i++ {
		res := Streaming(n, d, r)
		o0 := res.OldLayers[0]
		if o0 > d {
			t.Fatalf("|O_0| = %d > d", o0)
		}
		sum += o0
	}
	mean := float64(sum) / trials
	if math.Abs(mean-float64(d)/2) > 2 {
		t.Fatalf("E|O_0| = %v, want ~%v", mean, float64(d)/2)
	}
}

func TestExtendedReachesTarget(t *testing.T) {
	// Lemma 7.8 regime (d >= 1152 formally; empirically far smaller d
	// works). Use the theorem's d to stay in-regime.
	rate := SuccessRate(100000, 1152, 20, true, rng.New(6))
	if rate < 0.9 {
		t.Fatalf("extended onion-skin success rate %v", rate)
	}
}

func TestExtendedPopulationSampling(t *testing.T) {
	// With m <= 0 the population is sampled in [0.9n, 1.1n]; with an
	// explicit m the target must be m/20.
	res := Extended(10000, 600, 10000, rng.New(7))
	if res.Target != 500 {
		t.Fatalf("target %d, want m/20", res.Target)
	}
	res = Extended(10000, 600, 0, rng.New(8))
	if res.Target < 9000/20 || res.Target > 11000/20 {
		t.Fatalf("sampled-population target %d outside [450, 550]", res.Target)
	}
}

func TestExtendedDeathCoinHurts(t *testing.T) {
	// The extended cascade with a huge death probability (small n makes
	// log n / n large) must fail more often than the immortal streaming
	// cascade at the same d... simply check it can die.
	died := 0
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		res := Extended(100, 4, 100, r)
		if res.DiedOut {
			died++
		}
	}
	if died == 0 {
		t.Fatal("extended cascade with d=4 never died in 50 trials")
	}
}

func TestMinGrowthFactorEdgeCases(t *testing.T) {
	r := Result{OldLayers: []int{5}}
	if !math.IsInf(r.MinGrowthFactor(), 1) {
		t.Fatal("single layer must give +Inf")
	}
	r = Result{OldLayers: []int{0, 7}}
	if !math.IsInf(r.MinGrowthFactor(), 1) {
		t.Fatal("zero previous layer skipped")
	}
	r = Result{OldLayers: []int{2, 6, 3}}
	if got := r.MinGrowthFactor(); got != 0.5 {
		t.Fatalf("min factor %v", got)
	}
}

func TestSuccessRateBounds(t *testing.T) {
	rate := SuccessRate(2000, 100, 30, false, rng.New(10))
	if rate < 0 || rate > 1 {
		t.Fatalf("rate %v", rate)
	}
}

func TestSuccessRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SuccessRate(100, 10, 0, false, rng.New(1))
}

func TestStreamingPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Streaming(2, 5, rng.New(1)) },
		func() { Streaming(100, 0, rng.New(1)) },
		func() { Extended(2, 5, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDistinctHitsExactSmall(t *testing.T) {
	// pool=n: every request hits a fresh node until the pool empties.
	r := rng.New(11)
	if got := distinctHits(r, 5, 3, 3); got != 3 {
		t.Fatalf("got %d, want pool exhausted", got)
	}
	if got := distinctHits(r, 0, 10, 100); got != 0 {
		t.Fatal("no requests must hit nothing")
	}
	if got := distinctHits(r, 10, 0, 100); got != 0 {
		t.Fatal("empty pool must hit nothing")
	}
}

func TestDistinctHitsMean(t *testing.T) {
	// E[distinct] = pool·(1 − (1 − 1/n)^requests).
	r := rng.New(12)
	const requests, pool, n, trials = 200, 300, 1000, 3000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += distinctHits(r, requests, pool, n)
	}
	mean := float64(sum) / trials
	want := float64(pool) * (1 - math.Pow(1-1.0/float64(n), float64(requests)))
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean distinct %v, want %v", mean, want)
	}
}

func TestThin(t *testing.T) {
	r := rng.New(13)
	if got := thin(r, 100, 0); got != 100 {
		t.Fatal("p=0 must keep all")
	}
	if got := thin(r, 0, 0.5); got != 0 {
		t.Fatal("k=0")
	}
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += thin(r, 100, 0.3)
	}
	if mean := float64(sum) / 2000; math.Abs(mean-70) > 2 {
		t.Fatalf("thin mean %v, want 70", mean)
	}
}

func BenchmarkStreamingOnion(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		Streaming(100000, 200, r)
	}
}
