// Package onion simulates the paper's onion-skin processes — the
// constructive device behind the "flooding informs most nodes" theorems in
// the models without edge regeneration.
//
// The streaming variant (Section 3.1.2, proof of Theorem 3.8) builds a
// bipartite cascade from the source s: young nodes (age < n/2) alternate
// with old nodes (age in [n/2, n − log n]), and each node's d requests are
// split into type-A ({1..d/2}) and type-B ({d/2+1..d}) halves so that
// deferred decisions stay valid across steps. Claim 3.10 states each layer
// grows by a factor >= d/20 with probability 1 − e^{−Ω(d·layer)}; Claim
// 3.11 aggregates this into overall success probability >= 1 − 4e^{−d/100}.
//
// The extended variant (Section 7.2.4, proof of Theorem 4.13) adapts the
// cascade to the Poisson model: the population size m is only known to lie
// in [0.9n, 1.1n], and every newly informed node immediately dies with
// probability log n / n (a worst-case coin for deaths during the O(log n)
// window).
//
// Both simulations work on aggregate layer counts. By the exchangeability
// of the uniform request destinations, the layer-size process of the
// paper's node-level construction is distributed exactly as this aggregate
// chain: a layer of x newly informed young nodes makes x·d/2 independent
// uniform requests, and the number of *distinct* not-yet-informed old
// nodes they hit follows the occupancy distribution sampled here.
package onion

import (
	"math"

	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Result reports one onion-skin cascade.
type Result struct {
	// Phases is the number of phases executed (phase 0 included).
	Phases int
	// YoungLayers[k] and OldLayers[k] are the layer sizes |Y_k − Y_{k−1}|
	// and |O_k − O_{k−1}| (index 0 is phase 0: YoungLayers[0] = 1 for the
	// source, OldLayers[0] = |O_0|).
	YoungLayers, OldLayers []int
	// YoungTotal and OldTotal are |Y_k| and |O_k| at the end.
	YoungTotal, OldTotal int
	// Reached reports whether both totals reached Target before the
	// cascade died out; ReachedPhase is the first such phase (-1 if not).
	Reached      bool
	ReachedPhase int
	// Target is the per-side goal the run used (n/d in Lemma 3.9, m/20 in
	// Lemma 7.8).
	Target int
	// DiedOut reports that some layer was empty before reaching Target.
	DiedOut bool
}

// MinGrowthFactor returns the smallest layer-over-layer growth factor
// observed across consecutive old layers (Claim 3.10 predicts >= d/20 while
// layers are small). It returns +Inf when fewer than two layers exist.
func (r *Result) MinGrowthFactor() float64 {
	minFactor := math.Inf(1)
	for i := 1; i < len(r.OldLayers); i++ {
		prev := r.OldLayers[i-1]
		if prev == 0 {
			continue
		}
		if f := float64(r.OldLayers[i]) / float64(prev); f < minFactor {
			minFactor = f
		}
	}
	return minFactor
}

// Streaming runs the onion-skin process of Section 3.1.2 for the SDG model
// with parameters n and d, stopping when both the young and old informed
// sets reach n/d (the 2n/d total of Lemma 3.9) or a layer dies out.
func Streaming(n, d int, r *rng.RNG) Result {
	if n < 4 || d < 1 {
		panic("onion: Streaming requires n >= 4 and d >= 1")
	}
	logN := int(math.Log(float64(n)))
	youngPool := n/2 - 2  // |Y|: ages 2 .. n/2−1
	oldPool := n/2 - logN // |O|: ages n/2 .. n−log n
	target := n / d
	return run(params{
		n:         n,
		d:         d,
		youngPool: youngPool,
		oldPool:   oldPool,
		target:    target,
		deathProb: 0, // the streaming cascade window outlives no watched node
	}, r)
}

// Extended runs the Poisson-model variant of Section 7.2.4: population m
// (sampled uniformly from [0.9n, 1.1n] to reflect Lemma 4.4 when m <= 0),
// young/old split at m/2, per-node death coin log n / n after each
// informing step, target m/20 per side (Lemma 7.8).
func Extended(n, d int, m int, r *rng.RNG) Result {
	if n < 4 || d < 1 {
		panic("onion: Extended requires n >= 4 and d >= 1")
	}
	if m <= 0 {
		lo, hi := int(0.9*float64(n)), int(1.1*float64(n))
		m = lo + r.Intn(hi-lo+1)
	}
	return run(params{
		n:         m,
		d:         d,
		youngPool: m / 2,
		oldPool:   m - m/2,
		target:    m / 20,
		deathProb: math.Log(float64(n)) / float64(n),
	}, r)
}

type params struct {
	n         int // request destinations are uniform over n nodes
	d         int
	youngPool int // |Y|: young nodes available to inform
	oldPool   int // |O|: old nodes available to inform
	target    int
	deathProb float64 // per-newly-informed-node immediate death coin
}

func run(p params, r *rng.RNG) Result {
	res := Result{Target: p.target, ReachedPhase: -1}

	// Phase 0: the source makes d requests; distinct old nodes hit form
	// O_0. Each request lands on a specific node with probability 1/n, so
	// it lands in O with probability oldPool/n.
	oldRemaining := p.oldPool
	youngRemaining := p.youngPool
	o0 := distinctHits(r, p.d, oldRemaining, p.n)
	o0 = thin(r, o0, p.deathProb)
	oldRemaining -= o0
	res.YoungLayers = append(res.YoungLayers, 1)
	res.OldLayers = append(res.OldLayers, o0)
	res.YoungTotal, res.OldTotal = 1, o0
	res.Phases = 1

	lastOld := o0
	for {
		if res.YoungTotal >= p.target && res.OldTotal >= p.target {
			res.Reached = true
			res.ReachedPhase = res.Phases - 1
			return res
		}
		if lastOld == 0 {
			res.DiedOut = true
			return res
		}
		// Step 1: every uninformed young node connects to the newest old
		// layer with one of its d/2 type-B requests with probability
		// 1 − (1 − lastOld/n)^{d/2}, independently across young nodes.
		pHit := 1 - math.Pow(1-float64(lastOld)/float64(p.n), float64(p.d/2))
		newYoung := dist.Binomial(r, youngRemaining, pHit)
		newYoung = thin(r, newYoung, p.deathProb)
		youngRemaining -= newYoung
		if newYoung == 0 {
			res.YoungLayers = append(res.YoungLayers, 0)
			res.OldLayers = append(res.OldLayers, 0)
			res.Phases++
			res.DiedOut = true
			return res
		}
		// Step 2: the new young layer makes newYoung·d/2 type-A requests;
		// distinct uninformed old nodes hit form the next old layer.
		newOld := distinctHits(r, newYoung*(p.d/2), oldRemaining, p.n)
		newOld = thin(r, newOld, p.deathProb)
		oldRemaining -= newOld

		res.YoungLayers = append(res.YoungLayers, newYoung)
		res.OldLayers = append(res.OldLayers, newOld)
		res.YoungTotal += newYoung
		res.OldTotal += newOld
		res.Phases++
		lastOld = newOld

		if res.Phases > 4*len64(p.n)+8 {
			// Safety valve: growth by >= d/20 per phase reaches n/d in
			// O(log n / log d) phases; far beyond that, call it dead.
			res.DiedOut = true
			return res
		}
	}
}

// distinctHits throws `requests` uniform balls over n destinations and
// returns how many *distinct* destinations inside a pool of `pool`
// not-yet-hit nodes are hit. Sequentially exact: ball i hits a fresh pool
// node with probability (pool − c)/n given c previous fresh hits.
func distinctHits(r *rng.RNG, requests, pool, n int) int {
	if pool <= 0 || requests <= 0 {
		return 0
	}
	c := 0
	for i := 0; i < requests; i++ {
		if c >= pool {
			return pool
		}
		if dist.Bernoulli(r, float64(pool-c)/float64(n)) {
			c++
		}
	}
	return c
}

// thin removes each of k nodes independently with probability p (the
// extended process's death coin).
func thin(r *rng.RNG, k int, p float64) int {
	if p <= 0 || k == 0 {
		return k
	}
	return k - dist.Binomial(r, k, p)
}

func len64(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// SuccessRate runs the streaming (extended=false) or extended
// (extended=true) cascade `trials` times and returns the fraction reaching
// target — the quantity Claims 3.11 / Lemma 7.8 lower-bound by
// 1 − 4e^{−d/100} and 1 − 2e^{−d/576} − o(1) respectively.
func SuccessRate(n, d, trials int, extended bool, r *rng.RNG) float64 {
	if trials <= 0 {
		panic("onion: SuccessRate requires trials > 0")
	}
	ok := 0
	for i := 0; i < trials; i++ {
		var res Result
		if extended {
			res = Extended(n, d, 0, r)
		} else {
			res = Streaming(n, d, r)
		}
		if res.Reached {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}
