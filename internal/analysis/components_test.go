package analysis

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestComponentsKnownGraphs(t *testing.T) {
	g, _ := staticgraph.Disconnected(3, 5) // 3 singletons + K5
	cs := Components(g)
	if cs.Count != 4 {
		t.Fatalf("count %d", cs.Count)
	}
	if cs.Sizes[0] != 5 || cs.Sizes[1] != 1 {
		t.Fatalf("sizes %v", cs.Sizes)
	}
	if cs.IsolatedCount != 3 {
		t.Fatalf("isolated %d", cs.IsolatedCount)
	}
	if math.Abs(cs.GiantFraction-5.0/8) > 1e-12 {
		t.Fatalf("giant %v", cs.GiantFraction)
	}
}

func TestComponentsConnected(t *testing.T) {
	g, _ := staticgraph.Cycle(9)
	cs := Components(g)
	if cs.Count != 1 || cs.GiantFraction != 1 {
		t.Fatalf("%+v", cs)
	}
}

func TestComponentsEmpty(t *testing.T) {
	cs := Components(graph.New(0, 0))
	if cs.Count != 0 || cs.GiantFraction != 0 || len(cs.Sizes) != 0 {
		t.Fatalf("%+v", cs)
	}
}

func TestComponentsSumToAlive(t *testing.T) {
	m := core.NewStreaming(800, 2, false, rng.New(1))
	m.WarmUp()
	cs := Components(m.Graph())
	sum := 0
	for _, s := range cs.Sizes {
		sum += s
	}
	if sum != m.Graph().NumAlive() {
		t.Fatalf("sizes sum %d != alive %d", sum, m.Graph().NumAlive())
	}
	if cs.IsolatedCount != IsolatedCount(m.Graph()) {
		t.Fatalf("isolated mismatch: %d vs %d", cs.IsolatedCount, IsolatedCount(m.Graph()))
	}
}

func TestGiantComponentShape(t *testing.T) {
	// SDG at d=3: isolated nodes exist, but the giant component holds
	// most nodes — the structural face of Theorem 3.8.
	m := core.NewStreaming(2000, 3, false, rng.New(2))
	m.WarmUp()
	cs := Components(m.Graph())
	if cs.GiantFraction < 0.8 || cs.GiantFraction >= 1 {
		t.Fatalf("giant fraction %v", cs.GiantFraction)
	}
	// SDGR at the same degree is connected (or nearly so).
	mr := core.NewStreaming(2000, 3, true, rng.New(2))
	mr.WarmUp()
	csr := Components(mr.Graph())
	if csr.GiantFraction < cs.GiantFraction {
		t.Fatalf("regen giant %v below no-regen %v", csr.GiantFraction, cs.GiantFraction)
	}
}

func TestComponentOf(t *testing.T) {
	g, hs := staticgraph.Disconnected(2, 4)
	if got := ComponentOf(g, hs[0]); got != 1 {
		t.Fatalf("isolated component %d", got)
	}
	if got := ComponentOf(g, hs[3]); got != 4 {
		t.Fatalf("clique component %d", got)
	}
	g.RemoveNode(hs[0], nil)
	if got := ComponentOf(g, hs[0]); got != 0 {
		t.Fatalf("dead component %d", got)
	}
}
