// Package analysis measures the structural quantities the paper's lemmas
// quantify on model snapshots: isolated nodes (Lemmas 3.5/4.10, including
// the "isolated for the rest of their lifetime" refinement), degree
// statistics (Lemma 6.1 and the max-degree remark of Section 5), the age
// bias of edge destinations (Lemmas 3.14/4.15) and the age-slice
// demographics used by the proof of Theorem 4.16.
package analysis

import (
	"math"
	"sort"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/stats"
)

// IsolatedCount returns the number of alive nodes with no live edge.
func IsolatedCount(g *graph.Graph) int {
	n := 0
	g.ForEachAlive(func(h graph.Handle) bool {
		if g.IsIsolated(h) {
			n++
		}
		return true
	})
	return n
}

// IsolatedFraction returns IsolatedCount divided by the alive count (0 for
// an empty graph).
func IsolatedFraction(g *graph.Graph) float64 {
	n := g.NumAlive()
	if n == 0 {
		return 0
	}
	return float64(IsolatedCount(g)) / float64(n)
}

// LifetimeIsolationResult reports a LifetimeIsolation measurement.
type LifetimeIsolationResult struct {
	// WatchedAtStart is the number of isolated nodes at observation time.
	WatchedAtStart int
	// StayedIsolated is how many of them died without ever gaining an
	// edge — the quantity Lemmas 3.5/4.10 lower-bound by (1/6)e^{−2d}n and
	// (1/18)e^{−2d}n respectively.
	StayedIsolated int
	// RoundsRun is the number of model rounds simulated until every
	// watched node died (or the cap was hit).
	RoundsRun int
	// Truncated reports that the cap expired with watched nodes alive;
	// survivors are counted in StayedIsolated (they are still isolated).
	Truncated bool
}

// LifetimeIsolation finds the nodes isolated in the current snapshot of m
// and runs the model forward until they have all died, counting those that
// never gained an edge. Only meaningful for models without edge
// regeneration (in SDGR/PDGR isolated nodes do not occur); it panics on a
// regenerating model. maxRounds caps the forward simulation (0 means
// 20·n).
func LifetimeIsolation(m core.Model, maxRounds int) LifetimeIsolationResult {
	if m.Kind().Regen() {
		panic("analysis: LifetimeIsolation on a regenerating model")
	}
	g := m.Graph()
	if maxRounds <= 0 {
		maxRounds = 20 * m.N()
	}

	watched := make(map[graph.Handle]bool) // true = still isolated
	g.ForEachAlive(func(h graph.Handle) bool {
		if g.IsIsolated(h) {
			watched[h] = true
		}
		return true
	})
	res := LifetimeIsolationResult{WatchedAtStart: len(watched)}
	if len(watched) == 0 {
		return res
	}

	alive := len(watched)
	// In models without regeneration a watched node can gain an edge only
	// from a newborn's requests, so checking newborn out-targets is a
	// complete detector.
	m.SetHooks(core.Hooks{
		OnBirth: func(h graph.Handle) {
			g.OutTargets(h, func(t graph.Handle) bool {
				if isolated, ok := watched[t]; ok && isolated {
					watched[t] = false
				}
				return true
			})
		},
		OnDeath: func(h graph.Handle) {
			if isolated, ok := watched[h]; ok {
				if isolated {
					res.StayedIsolated++
				}
				delete(watched, h)
				alive--
			}
		},
	})
	defer m.SetHooks(core.Hooks{})

	for round := 0; alive > 0 && round < maxRounds; round++ {
		m.AdvanceRound()
		res.RoundsRun++
	}
	if alive > 0 {
		res.Truncated = true
		for _, isolated := range watched {
			if isolated {
				res.StayedIsolated++ // still isolated at cap: count it
			}
		}
	}
	return res
}

// DegreeStats summarizes the live-degree distribution of a snapshot.
type DegreeStats struct {
	N        int
	MeanOut  float64
	MeanIn   float64
	Mean     float64 // MeanOut + MeanIn
	Max      int
	Min      int
	StdDev   float64
	Isolated int
}

// Degrees measures the snapshot degree distribution (live edges only;
// parallel edges counted).
func Degrees(g *graph.Graph) DegreeStats {
	var acc stats.Accumulator
	ds := DegreeStats{N: g.NumAlive(), Min: math.MaxInt}
	var sumOut, sumIn int
	g.ForEachAlive(func(h graph.Handle) bool {
		out := g.OutDegreeLive(h)
		in := g.InDegreeLive(h)
		d := out + in
		sumOut += out
		sumIn += in
		acc.Add(float64(d))
		if d > ds.Max {
			ds.Max = d
		}
		if d < ds.Min {
			ds.Min = d
		}
		if d == 0 {
			ds.Isolated++
		}
		return true
	})
	if ds.N == 0 {
		ds.Min = 0
		return ds
	}
	ds.MeanOut = float64(sumOut) / float64(ds.N)
	ds.MeanIn = float64(sumIn) / float64(ds.N)
	ds.Mean = acc.Mean()
	ds.StdDev = acc.StdDev()
	return ds
}

// byAge returns the alive handles sorted oldest first.
func byAge(g *graph.Graph) []graph.Handle {
	hs := g.AliveHandles()
	sort.Slice(hs, func(i, j int) bool { return g.BirthSeq(hs[i]) < g.BirthSeq(hs[j]) })
	return hs
}

// InDegreeByAgeQuantile splits the alive nodes into `buckets` equal age
// cohorts (index 0 = oldest) and returns the mean live in-degree of each —
// the observable face of the destination-probability bounds of Lemmas 3.14
// and 4.15: regeneration lets old nodes accumulate extra in-edges (factor
// up to (1+1/(n−1))^k ≤ e in the streaming model).
func InDegreeByAgeQuantile(g *graph.Graph, buckets int) []float64 {
	return degreeByAgeQuantile(g, buckets, g.InDegreeLive)
}

// OutDegreeByAgeQuantile is the out-edge analogue (in models without
// regeneration the out-degree of a cohort decays with its age: a target
// survives with probability 1 − age/n in the streaming model).
func OutDegreeByAgeQuantile(g *graph.Graph, buckets int) []float64 {
	return degreeByAgeQuantile(g, buckets, g.OutDegreeLive)
}

func degreeByAgeQuantile(g *graph.Graph, buckets int, deg func(graph.Handle) int) []float64 {
	if buckets <= 0 {
		panic("analysis: buckets must be positive")
	}
	hs := byAge(g)
	out := make([]float64, buckets)
	if len(hs) == 0 {
		return out
	}
	counts := make([]int, buckets)
	for i, h := range hs {
		b := i * buckets / len(hs)
		out[b] += float64(deg(h))
		counts[b]++
	}
	for b := range out {
		if counts[b] > 0 {
			out[b] /= float64(counts[b])
		}
	}
	return out
}

// AgeProfile counts alive nodes per age slice of the given width (in model
// time units), slice 0 being the youngest — the demographic vector
// (K_1, ..., K_L) of the proof of Theorem 4.16. Slices beyond the oldest
// node are omitted.
func AgeProfile(g *graph.Graph, now, sliceWidth float64) []int {
	if sliceWidth <= 0 {
		panic("analysis: sliceWidth must be positive")
	}
	var profile []int
	g.ForEachAlive(func(h graph.Handle) bool {
		age := now - g.BirthTime(h)
		if age < 0 {
			age = 0
		}
		idx := int(age / sliceWidth)
		for len(profile) <= idx {
			profile = append(profile, 0)
		}
		profile[idx]++
		return true
	})
	return profile
}

// GeometricDecayRate fits the per-slice survival ratio of an age profile:
// for the Poisson model with slice width w the stationary profile decays by
// e^{−w/n} per slice. Returns the mean ratio profile[i+1]/profile[i] over
// slices with at least minCount nodes.
func GeometricDecayRate(profile []int, minCount int) float64 {
	var acc stats.Accumulator
	for i := 0; i+1 < len(profile); i++ {
		if profile[i] >= minCount && profile[i+1] >= minCount {
			acc.Add(float64(profile[i+1]) / float64(profile[i]))
		}
	}
	return acc.Mean()
}

// OldestAge returns the age (in model time units) of the oldest alive node
// (0 for an empty graph).
func OldestAge(g *graph.Graph, now float64) float64 {
	oldest := g.Oldest()
	if oldest.IsNil() {
		return 0
	}
	return now - g.BirthTime(oldest)
}
