package analysis

import (
	"sort"

	"github.com/dyngraph/churnnet/internal/graph"
)

// ComponentStats describes the connected-component structure of a
// snapshot. In the models without regeneration the giant component is what
// bounds the reachable fraction of any broadcast (Theorem 3.8's
// 1−e^{−Ω(d)} fraction is, structurally, the giant component), while the
// regenerating models are connected w.h.p.
type ComponentStats struct {
	// Count is the number of connected components (0 for empty graphs).
	Count int
	// Sizes lists component sizes in decreasing order.
	Sizes []int
	// GiantFraction is Sizes[0] / alive (0 for empty graphs).
	GiantFraction float64
	// IsolatedCount is the number of size-1 components with no edges.
	IsolatedCount int
}

// Components computes the connected components of the alive graph by BFS.
func Components(g *graph.Graph) ComponentStats {
	var stats ComponentStats
	n := g.NumAlive()
	if n == 0 {
		return stats
	}
	var visited graph.Marks
	queue := make([]graph.Handle, 0, 64)
	g.ForEachAlive(func(h graph.Handle) bool {
		if !visited.Mark(h) {
			return true
		}
		size := 1
		queue = append(queue[:0], h)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			g.Neighbors(u, func(v graph.Handle) bool {
				if visited.Mark(v) {
					size++
					queue = append(queue, v)
				}
				return true
			})
		}
		stats.Sizes = append(stats.Sizes, size)
		if size == 1 {
			stats.IsolatedCount++
		}
		return true
	})
	sort.Sort(sort.Reverse(sort.IntSlice(stats.Sizes)))
	stats.Count = len(stats.Sizes)
	stats.GiantFraction = float64(stats.Sizes[0]) / float64(n)
	return stats
}

// ComponentOf returns the size of the connected component containing h
// (0 if h is not alive).
func ComponentOf(g *graph.Graph, h graph.Handle) int {
	if !g.IsAlive(h) {
		return 0
	}
	var visited graph.Marks
	visited.Mark(h)
	queue := []graph.Handle{h}
	size := 1
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.Neighbors(u, func(v graph.Handle) bool {
			if visited.Mark(v) {
				size++
				queue = append(queue, v)
			}
			return true
		})
	}
	return size
}
