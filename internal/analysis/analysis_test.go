package analysis

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestIsolatedCount(t *testing.T) {
	g, hs := staticgraph.Disconnected(4, 3)
	if got := IsolatedCount(g); got != 4 {
		t.Fatalf("isolated = %d", got)
	}
	if got := IsolatedFraction(g); math.Abs(got-4.0/7) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
	g.RemoveNode(hs[0], nil)
	if got := IsolatedCount(g); got != 3 {
		t.Fatalf("after removal = %d", got)
	}
}

func TestIsolatedFractionEmpty(t *testing.T) {
	g := graph.New(0, 0)
	if IsolatedFraction(g) != 0 {
		t.Fatal("empty graph fraction")
	}
}

func TestDegreesKnownGraph(t *testing.T) {
	g, _ := staticgraph.Star(5) // center degree 4, leaves degree 1
	ds := Degrees(g)
	if ds.N != 5 {
		t.Fatalf("N = %d", ds.N)
	}
	if ds.Max != 4 || ds.Min != 1 {
		t.Fatalf("max/min = %d/%d", ds.Max, ds.Min)
	}
	if math.Abs(ds.Mean-8.0/5) > 1e-12 {
		t.Fatalf("mean = %v", ds.Mean)
	}
	// Directed split: center made 4 requests (star builder directs from
	// center), so MeanOut = 4/5 and MeanIn = 4/5.
	if math.Abs(ds.MeanOut-0.8) > 1e-12 || math.Abs(ds.MeanIn-0.8) > 1e-12 {
		t.Fatalf("out/in = %v/%v", ds.MeanOut, ds.MeanIn)
	}
	if ds.Isolated != 0 {
		t.Fatal("no isolated nodes in a star")
	}
}

func TestDegreesEmpty(t *testing.T) {
	ds := Degrees(graph.New(0, 0))
	if ds.N != 0 || ds.Min != 0 || ds.Max != 0 {
		t.Fatalf("%+v", ds)
	}
}

func TestDegreesSDGLemma61(t *testing.T) {
	m := core.NewStreaming(3000, 5, false, rng.New(1))
	m.WarmUp()
	ds := Degrees(m.Graph())
	if math.Abs(ds.Mean-5) > 0.2 {
		t.Fatalf("SDG mean degree %v, want ~5 (Lemma 6.1)", ds.Mean)
	}
	if ds.MeanOut >= 5.0 || ds.MeanOut < 2.0 {
		// Out-degree decays with age: mean ~ d·(1 − E[age]/n) ≈ d/2... in
		// fact E[live out] = d·(1 − (age−1)/n) averaged ≈ d·(1/2 + 1/2n).
		t.Fatalf("SDG mean live out-degree %v", ds.MeanOut)
	}
}

func TestLifetimeIsolationSDG(t *testing.T) {
	// Lemma 3.5: at least (1/6)e^{−2d}·n nodes stay isolated for life.
	const n, d = 2000, 2
	m := core.NewStreaming(n, d, false, rng.New(2))
	m.WarmUp()
	res := LifetimeIsolation(m, 0)
	if res.WatchedAtStart == 0 {
		t.Fatal("no isolated nodes found in SDG d=2")
	}
	if res.Truncated {
		t.Fatal("streaming lifetimes are exactly n; the run must finish")
	}
	if res.RoundsRun > n {
		t.Fatalf("rounds run %d > n", res.RoundsRun)
	}
	bound := int(float64(n) * math.Exp(-2*d) / 6)
	if res.StayedIsolated < bound {
		t.Fatalf("stayed isolated %d < paper bound %d (watched %d)",
			res.StayedIsolated, bound, res.WatchedAtStart)
	}
	if res.StayedIsolated > res.WatchedAtStart {
		t.Fatal("stayed > watched")
	}
}

func TestLifetimeIsolationPDG(t *testing.T) {
	// Lemma 4.10 analogue; Poisson lifetimes are unbounded so allow the
	// cap to truncate (survivors still count as isolated so far).
	const n, d = 800, 2
	m := core.NewPoisson(n, d, false, rng.New(3))
	m.WarmUpRounds(10 * n)
	res := LifetimeIsolation(m, 40*n)
	if res.WatchedAtStart == 0 {
		t.Fatal("no isolated nodes found in PDG d=2")
	}
	if res.StayedIsolated == 0 {
		t.Fatal("no node stayed isolated")
	}
}

func TestLifetimeIsolationPanicsOnRegen(t *testing.T) {
	m := core.NewStreaming(50, 3, true, rng.New(4))
	m.WarmUp()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LifetimeIsolation(m, 0)
}

func TestInDegreeByAgeQuantileRegen(t *testing.T) {
	// Lemma 3.14 consequence: with regeneration, in-edges arrive at a
	// near-uniform per-round rate (~2d/n: newborn requests plus redirected
	// orphans), so the accumulated in-degree grows with age — the cohort
	// curve must increase monotonically from youngest to oldest, and the
	// overall mean in-degree must equal d (every node keeps d live
	// out-edges).
	const d = 10
	m := core.NewStreaming(4000, d, true, rng.New(5))
	m.WarmUp()
	q := InDegreeByAgeQuantile(m.Graph(), 10)
	if len(q) != 10 {
		t.Fatalf("buckets %d", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i-1] <= q[i] {
			t.Fatalf("in-degree not decreasing with youth at %d: %v", i, q)
		}
	}
	mean := 0.0
	for _, v := range q {
		mean += v
	}
	mean /= float64(len(q))
	if math.Abs(mean-d) > 0.5 {
		t.Fatalf("mean in-degree %v, want ~%d", mean, d)
	}
}

func TestOutDegreeByAgeQuantileNoRegen(t *testing.T) {
	// Without regeneration the out-degree decays with age: the oldest
	// cohort keeps roughly d·(1 − age/n) live out-edges.
	m := core.NewStreaming(4000, 10, false, rng.New(6))
	m.WarmUp()
	q := OutDegreeByAgeQuantile(m.Graph(), 10)
	if q[0] >= q[9] {
		t.Fatalf("no-regen out-degree must decay with age: %v", q)
	}
	// Youngest decile keeps nearly all d out-edges, oldest ~ d/10.
	if q[9] < 8.5 || q[0] > 2.5 {
		t.Fatalf("decay endpoints off: %v", q)
	}
}

func TestDegreeByAgeQuantilePanics(t *testing.T) {
	g, _ := staticgraph.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InDegreeByAgeQuantile(g, 0)
}

func TestDegreeByAgeQuantileEmpty(t *testing.T) {
	q := InDegreeByAgeQuantile(graph.New(0, 0), 4)
	for _, v := range q {
		if v != 0 {
			t.Fatal("empty graph quantiles must be zero")
		}
	}
}

func TestAgeProfileStreaming(t *testing.T) {
	// Streaming ages are uniform on [0, n): with slice width n/4, the
	// profile must be 4 equal slices.
	const n = 400
	m := core.NewStreaming(n, 1, false, rng.New(7))
	m.WarmUp()
	profile := AgeProfile(m.Graph(), m.Now(), float64(n)/4)
	if len(profile) != 4 {
		t.Fatalf("profile %v", profile)
	}
	for _, c := range profile {
		if c != n/4 {
			t.Fatalf("uniform profile expected: %v", profile)
		}
	}
}

func TestAgeProfilePoissonDecay(t *testing.T) {
	// Poisson ages are Exp(1/n): slices of width n/2 decay by e^{-1/2}.
	const n = 4000
	m := core.NewPoisson(n, 1, false, rng.New(8))
	m.WarmUpRounds(12 * n)
	profile := AgeProfile(m.Graph(), m.Now(), float64(n)/2)
	rate := GeometricDecayRate(profile, 30)
	want := math.Exp(-0.5)
	if math.Abs(rate-want) > 0.12 {
		t.Fatalf("decay rate %v, want ~%v (profile %v)", rate, want, profile)
	}
}

func TestAgeProfilePanics(t *testing.T) {
	g, _ := staticgraph.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AgeProfile(g, 10, 0)
}

func TestGeometricDecayRateEmpty(t *testing.T) {
	if got := GeometricDecayRate([]int{5}, 1); got != 0 {
		t.Fatalf("single-slice decay %v", got)
	}
	if got := GeometricDecayRate([]int{100, 50, 25}, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("decay %v", got)
	}
}

func TestOldestAge(t *testing.T) {
	g := graph.New(2, 0)
	if OldestAge(g, 5) != 0 {
		t.Fatal("empty graph oldest age")
	}
	g.AddNode(1)
	g.AddNode(3)
	if got := OldestAge(g, 5); got != 4 {
		t.Fatalf("oldest age %v", got)
	}
}

func TestLifetimeIsolationNoIsolated(t *testing.T) {
	// A dense SDG (huge d) has no isolated nodes: zero watched, no rounds.
	m := core.NewStreaming(200, 30, false, rng.New(9))
	m.WarmUp()
	res := LifetimeIsolation(m, 0)
	if res.WatchedAtStart != 0 || res.RoundsRun != 0 {
		t.Fatalf("%+v", res)
	}
}
