// Package staticgraph builds churn-free graphs on the package graph arena:
// the paper's static d-out random graph baseline (Lemma B.1: for d >= 3 it
// is a Θ(1) vertex expander w.h.p.) and deterministic families whose vertex
// expansion and flooding behavior are known in closed form, used as test
// oracles throughout the repository.
package staticgraph

import (
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// FromEdges builds a graph with n nodes (birth times 0..n-1, so node i is
// older than node j when i < j) and one out-edge per listed pair, directed
// from the first to the second endpoint. It panics on out-of-range or
// self-loop endpoints.
//
//churnvet:hookexempt fixture constructor: the graph is returned before any hook subscriber can attach
func FromEdges(n int, edges [][2]int) (*graph.Graph, []graph.Handle) {
	g := graph.New(n, 0)
	hs := make([]graph.Handle, n)
	for i := range hs {
		hs[i] = g.AddNode(float64(i))
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			panic("staticgraph: edge endpoint out of range")
		}
		if e[0] == e[1] {
			panic("staticgraph: self-loop")
		}
		g.AddOutEdge(hs[e[0]], hs[e[1]])
	}
	return g, hs
}

// Cycle returns the n-cycle (n >= 3). Its vertex isoperimetric number is
// 2/⌊n/2⌋: the worst sets are arcs.
func Cycle(n int) (*graph.Graph, []graph.Handle) {
	if n < 3 {
		panic("staticgraph: Cycle requires n >= 3")
	}
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	return FromEdges(n, edges)
}

// Path returns the n-path (n >= 2). A half-line from either end has
// boundary 1, so h_out = 1/⌊n/2⌋.
func Path(n int) (*graph.Graph, []graph.Handle) {
	if n < 2 {
		panic("staticgraph: Path requires n >= 2")
	}
	edges := make([][2]int, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = [2]int{i, i + 1}
	}
	return FromEdges(n, edges)
}

// Complete returns K_n (n >= 2): every set S has ∂out(S) = V∖S, so
// h_out = ⌈n/2⌉/⌊n/2⌋ >= 1.
func Complete(n int) (*graph.Graph, []graph.Handle) {
	if n < 2 {
		panic("staticgraph: Complete requires n >= 2")
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return FromEdges(n, edges)
}

// Star returns the star with handles[0] as the center and n-1 leaves
// (n >= 2). Any leaf set avoiding the center has boundary 1, so
// h_out = 1/⌊n/2⌋.
func Star(n int) (*graph.Graph, []graph.Handle) {
	if n < 2 {
		panic("staticgraph: Star requires n >= 2")
	}
	edges := make([][2]int, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = [2]int{0, i}
	}
	return FromEdges(n, edges)
}

// Grid returns the rows×cols king-free (4-neighbor) grid.
func Grid(rows, cols int) (*graph.Graph, []graph.Handle) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("staticgraph: Grid requires at least 2 nodes")
	}
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return FromEdges(rows*cols, edges)
}

// DOut returns the static random graph of Lemma B.1: each of n nodes makes
// d independent uniform requests to other nodes (a multigraph, like the
// dynamic models at birth). For d >= 3 it is a Θ(1) vertex expander w.h.p.
//
//churnvet:hookexempt fixture constructor: the graph is returned before any hook subscriber can attach
func DOut(n, d int, r *rng.RNG) (*graph.Graph, []graph.Handle) {
	if n < 2 || d < 0 {
		panic("staticgraph: DOut requires n >= 2, d >= 0")
	}
	g := graph.New(n, d)
	hs := make([]graph.Handle, n)
	for i := range hs {
		hs[i] = g.AddNode(float64(i))
	}
	for _, h := range hs {
		for k := 0; k < d; k++ {
			tgt := g.RandomAliveExcept(r, h)
			g.AddOutEdge(h, tgt)
		}
	}
	return g, hs
}

// Disconnected returns a graph of n isolated nodes plus an m-clique, a
// fixture with h_out = 0 witnesses of every size up to n.
func Disconnected(n, m int) (*graph.Graph, []graph.Handle) {
	if n < 1 || m < 2 {
		panic("staticgraph: Disconnected requires n >= 1 isolated nodes and m >= 2 clique nodes")
	}
	var edges [][2]int
	for i := n; i < n+m; i++ {
		for j := i + 1; j < n+m; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return FromEdges(n+m, edges)
}
