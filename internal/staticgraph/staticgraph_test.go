package staticgraph

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

func degrees(g *graph.Graph, hs []graph.Handle) []int {
	out := make([]int, len(hs))
	for i, h := range hs {
		out[i] = g.DegreeLive(h)
	}
	return out
}

func TestCycle(t *testing.T) {
	g, hs := Cycle(5)
	if g.NumAlive() != 5 || len(hs) != 5 {
		t.Fatal("size wrong")
	}
	for _, d := range degrees(g, hs) {
		if d != 2 {
			t.Fatalf("cycle degree %d", d)
		}
	}
	if g.NumEdgesLive() != 5 {
		t.Fatal("cycle edge count")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPath(t *testing.T) {
	g, hs := Path(4)
	ds := degrees(g, hs)
	if ds[0] != 1 || ds[3] != 1 || ds[1] != 2 || ds[2] != 2 {
		t.Fatalf("path degrees %v", ds)
	}
}

func TestComplete(t *testing.T) {
	g, hs := Complete(6)
	for _, d := range degrees(g, hs) {
		if d != 5 {
			t.Fatalf("K6 degree %d", d)
		}
	}
	if g.NumEdgesLive() != 15 {
		t.Fatalf("K6 edges %d", g.NumEdgesLive())
	}
}

func TestStar(t *testing.T) {
	g, hs := Star(7)
	ds := degrees(g, hs)
	if ds[0] != 6 {
		t.Fatalf("center degree %d", ds[0])
	}
	for _, d := range ds[1:] {
		if d != 1 {
			t.Fatalf("leaf degree %d", d)
		}
	}
}

func TestGrid(t *testing.T) {
	g, hs := Grid(3, 4)
	if g.NumAlive() != 12 {
		t.Fatal("grid size")
	}
	// Corner degree 2, edge 3, interior 4.
	ds := degrees(g, hs)
	if ds[0] != 2 {
		t.Fatalf("corner degree %d", ds[0])
	}
	if ds[1] != 3 {
		t.Fatalf("edge degree %d", ds[1])
	}
	if ds[5] != 4 {
		t.Fatalf("interior degree %d", ds[5])
	}
	// Edge count: 3*3 + 2*4 = 17.
	if g.NumEdgesLive() != 17 {
		t.Fatalf("grid edges %d", g.NumEdgesLive())
	}
}

func TestDOut(t *testing.T) {
	g, hs := DOut(50, 3, rng.New(1))
	for _, h := range hs {
		if got := g.OutDegreeLive(h); got != 3 {
			t.Fatalf("out-degree %d", got)
		}
	}
	if g.NumEdgesLive() != 150 {
		t.Fatal("edge count")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnected(t *testing.T) {
	g, hs := Disconnected(3, 4)
	if g.NumAlive() != 7 {
		t.Fatal("size")
	}
	for i := 0; i < 3; i++ {
		if !g.IsIsolated(hs[i]) {
			t.Fatalf("node %d not isolated", i)
		}
	}
	for i := 3; i < 7; i++ {
		if g.DegreeLive(hs[i]) != 3 {
			t.Fatalf("clique degree %d", g.DegreeLive(hs[i]))
		}
	}
}

func TestFromEdgesAges(t *testing.T) {
	g, hs := FromEdges(3, [][2]int{{0, 1}})
	if !g.Older(hs[0], hs[1]) || !g.Older(hs[1], hs[2]) {
		t.Fatal("index order must be age order")
	}
}

func TestFromEdgesPanics(t *testing.T) {
	for i, f := range []func(){
		func() { FromEdges(2, [][2]int{{0, 2}}) },
		func() { FromEdges(2, [][2]int{{-1, 0}}) },
		func() { FromEdges(2, [][2]int{{1, 1}}) },
		func() { Cycle(2) },
		func() { Path(1) },
		func() { Complete(1) },
		func() { Star(1) },
		func() { Grid(1, 1) },
		func() { DOut(1, 2, rng.New(1)) },
		func() { Disconnected(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
