package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
)

// obsRingCap bounds the expansion-observation history a snapshot carries.
const obsRingCap = 256

// Snapshot is one immutable copy-on-publish view of the served network.
// Request goroutines read it lock-free through Server.Current; a new
// version replaces it atomically and old versions stay valid for readers
// still holding them.
type Snapshot struct {
	// Version increases by one per publish; every read response carries
	// it so clients (and the consistency audit) can line reads up.
	Version uint64
	// Steps is the number of flooding rounds executed; Time the model
	// clock; Alive the live population.
	Steps int
	Time  float64
	Alive int
	// QueueLen is the command-queue depth sampled at publish.
	QueueLen int

	publishedAt time.Time
	nodes       []nodeRec
	msgs        []MsgView
	view        *flood.TrafficView
	expansion   []ExpansionObs
}

// PublishedAt returns the wall-clock publish instant (for staleness
// metrics).
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// Age returns how stale the snapshot is at now.
func (s *Snapshot) Age(now time.Time) time.Duration { return now.Sub(s.publishedAt) }

// NumNodes returns how many external IDs have been issued (alive or
// departed).
func (s *Snapshot) NumNodes() int { return len(s.nodes) }

// NumMsgs returns how many messages have been injected.
func (s *Snapshot) NumMsgs() int { return len(s.msgs) }

// MsgInformed is one message's informed bit at a node.
type MsgInformed struct {
	Msg      int  `json:"msg"`
	Informed bool `json:"informed"`
}

// NodeInfo is the /node-info payload for an alive node.
type NodeInfo struct {
	ID    uint64  `json:"id"`
	Alive bool    `json:"alive"`
	Birth float64 `json:"birth"`
	// Age is model time since birth, in transmission units.
	Age float64 `json:"age"`
	// Informed holds this node's membership bit for every in-flight
	// message at snapshot time.
	Informed []MsgInformed `json:"informed,omitempty"`
	Version  uint64        `json:"version"`
}

// NodeInfo resolves an external ID against the snapshot: a well-formed
// 404 for an ID never issued, 410 for a departed node, and the info
// payload otherwise.
func (s *Snapshot) NodeInfo(id uint64) (NodeInfo, *APIError) {
	if id >= uint64(len(s.nodes)) {
		return NodeInfo{}, &APIError{Status: 404, Msg: fmt.Sprintf("unknown node %d", id)}
	}
	rec := s.nodes[id]
	switch rec.state {
	case nodeLeft:
		return NodeInfo{}, &APIError{Status: 410, Msg: fmt.Sprintf("node %d left the network", id)}
	case nodeCrashed:
		return NodeInfo{}, &APIError{Status: 410, Msg: fmt.Sprintf("node %d crashed", id)}
	}
	info := NodeInfo{ID: id, Alive: true, Birth: rec.birth, Age: s.Time - rec.birth, Version: s.Version}
	for _, mid := range s.view.InFlight() {
		info.Informed = append(info.Informed, MsgInformed{
			Msg:      int(mid),
			Informed: s.view.Informed(mid, rec.h),
		})
	}
	return info, nil
}

// Probe answers the UDP fast path: is node id alive, and (when msg >= 0)
// is it informed of that in-flight message. Departed and unknown nodes
// return alive=false with a nil error; an unknown or finished message is
// the error case.
func (s *Snapshot) Probe(id uint64, msg int) (alive, informed bool, err *APIError) {
	if id >= uint64(len(s.nodes)) || s.nodes[id].state != nodeAlive {
		return false, false, nil
	}
	if msg < 0 {
		return true, false, nil
	}
	if msg >= len(s.msgs) {
		return true, false, &APIError{Status: 404, Msg: fmt.Sprintf("unknown message %d", msg)}
	}
	return true, s.view.Informed(flood.MessageID(msg), s.nodes[id].h), nil
}

// MsgView is the /status payload: one message's lifecycle and flooding
// outcome at snapshot time. For an in-flight message the Result fields
// cover the rounds executed so far.
type MsgView struct {
	ID     int    `json:"id"`
	Status string `json:"status"`
	// Rounds executed for this message (relative to its injection).
	Rounds int `json:"rounds"`
	// InformedAlive counts currently alive informed nodes (final count
	// once done or retired); Alive is the concurrent population.
	InformedAlive int `json:"informed_alive"`
	Alive         int `json:"alive"`
	EverInformed  int `json:"ever_informed"`
	PeakInformed  int `json:"peak_informed"`

	Completed             bool `json:"completed"`
	CompletionRound       int  `json:"completion_round"`
	StrictlyCompleted     bool `json:"strictly_completed"`
	StrictCompletionRound int  `json:"strict_completion_round"`
	DiedOut               bool `json:"died_out"`
	DiedOutRound          int  `json:"died_out_round"`

	Version uint64 `json:"version"`
}

func newMsgView(t *flood.Traffic, id flood.MessageID, version uint64) MsgView {
	res := t.Result(id)
	return MsgView{
		ID:                    int(id),
		Status:                t.Status(id).String(),
		Rounds:                res.Rounds,
		InformedAlive:         t.InformedAlive(id),
		Alive:                 res.FinalAlive,
		EverInformed:          res.EverInformed,
		PeakInformed:          res.PeakInformed,
		Completed:             res.Completed,
		CompletionRound:       res.CompletionRound,
		StrictlyCompleted:     res.StrictlyCompleted,
		StrictCompletionRound: res.StrictCompletionRound,
		DiedOut:               res.DiedOut,
		DiedOutRound:          res.DiedOutRound,
		Version:               version,
	}
}

// MsgStatus resolves a message ID against the snapshot (404 for an ID
// the plane never issued).
func (s *Snapshot) MsgStatus(id int) (MsgView, *APIError) {
	if id < 0 || id >= len(s.msgs) {
		return MsgView{}, &APIError{Status: 404, Msg: fmt.Sprintf("unknown message %d", id)}
	}
	return s.msgs[id], nil
}

// ExpansionObs is one tracked expansion observation, JSON-ready: Min is
// the smallest boundary/size ratio over tracked witness sets (-1 when no
// tracked set qualified — the JSON stand-in for +Inf).
type ExpansionObs struct {
	Round           int     `json:"round"`
	Time            float64 `json:"time"`
	N               int     `json:"n"`
	Min             float64 `json:"min"`
	WitnessSize     int     `json:"witness_size"`
	WitnessBoundary int     `json:"witness_boundary"`
}

func newExpansionObs(obs expansion.Observation, round int) ExpansionObs {
	o := ExpansionObs{
		Round:           round,
		Time:            obs.Time,
		N:               obs.N,
		Min:             obs.Min,
		WitnessSize:     obs.MinWitness.Size,
		WitnessBoundary: obs.MinWitness.Boundary,
	}
	if math.IsInf(o.Min, 1) {
		o.Min = -1
	}
	return o
}

// Expansion returns the retained observation history, oldest first. The
// slice is shared with the snapshot; callers must not mutate it.
func (s *Snapshot) Expansion() []ExpansionObs { return s.expansion }

// sortHandles orders hs by the given less function.
func sortHandles(hs []graph.Handle, less func(a, b graph.Handle) bool) {
	sort.Slice(hs, func(i, j int) bool { return less(hs[i], hs[j]) })
}
