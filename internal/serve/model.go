// Package serve turns the simulator into a service: a live control-plane
// daemon hosting one externally driven churn model of up to 10⁶ simulated
// nodes behind the deterministic event loop, with an HTTP/JSON control
// plane (join/leave/crash/inject/query) and a UDP fast path for
// single-node informed/alive probes.
//
// The concurrency boundary is the heart of the package: request
// goroutines never touch the model. Mutations are enqueued onto a
// single-writer command queue drained between rounds — so the model, the
// traffic plane and the expansion tracker see exactly the serial event
// stream their determinism contracts require — while reads are served
// from versioned copy-on-publish snapshots. Bounded queues surface
// overload as 429/503 instead of latency collapse. See DESIGN.md,
// "Serving live traffic".
package serve

import (
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// LiveModel is an externally driven churn model: it keeps the paper's
// edge dynamics — joins make d uniform requests (rule 1), graceful leaves
// regenerate the orphaned requests of survivors (rule 3), crashes do not
// — but births and deaths happen only when commanded, never
// autonomously. AdvanceRound advances the clock one transmission unit
// without churn.
//
// It implements core.Model and the edge-event contract
// (core.EdgeEventSource): every placed or re-pointed edge fires OnEdge
// and every departure fires OnDeath before the node is removed, exactly
// like the built-in models, so the flooding engines and the expansion
// tracker ride it unchanged. All mutating methods must be called from a
// single goroutine (the server's writer loop).
type LiveModel struct {
	kind core.Kind // seed-snapshot kind, for reporting; Kind() is Live
	n, d int
	r    *rng.RNG
	g    *graph.Graph

	time  float64
	round int
	last  graph.Handle
	hooks core.Hooks
	buf   []graph.InEdge
}

// NewLiveModel builds a live model seeded with a stationary snapshot of
// the given paper model (kind SDG/SDGR/PDG/PDGR, sampled via
// core.SampleStationaryPar with `workers` fill shards) — or empty when
// n == 0. The seed fixes both the initial snapshot and every subsequent
// commanded draw, so an identical command sequence reproduces the served
// network bit for bit.
func NewLiveModel(kind core.Kind, n, d int, seed uint64, workers int) *LiveModel {
	r := rng.New(seed)
	m := &LiveModel{kind: kind, n: n, d: d}
	if n > 0 {
		seeded := core.SampleStationaryPar(kind, n, d, r.Split(), workers)
		m.g = seeded.Graph()
		m.time = seeded.Now()
		m.last = seeded.LastBorn()
	} else {
		m.g = graph.New(0, d)
	}
	m.r = r
	return m
}

// Kind identifies the model as externally driven.
func (m *LiveModel) Kind() core.Kind { return core.Live }

// SeedKind returns the paper model the initial snapshot was sampled from.
func (m *LiveModel) SeedKind() core.Kind { return m.kind }

// Graph exposes the current snapshot; callers must not mutate it.
func (m *LiveModel) Graph() *graph.Graph { return m.g }

// N returns the nominal size parameter (the seeded population).
func (m *LiveModel) N() int { return m.n }

// D returns the out-degree parameter.
func (m *LiveModel) D() int { return m.d }

// Now returns elapsed model time in transmission units.
func (m *LiveModel) Now() float64 { return m.time }

// Round returns the number of AdvanceRound calls.
func (m *LiveModel) Round() int { return m.round }

// LastBorn returns the most recently joined node, or Nil.
func (m *LiveModel) LastBorn() graph.Handle { return m.last }

// SetHooks installs event callbacks (replacing any previous ones).
func (m *LiveModel) SetHooks(h core.Hooks) { m.hooks = h }

// Hooks returns the currently installed callbacks.
func (m *LiveModel) Hooks() core.Hooks { return m.hooks }

// EmitsEdgeEvents declares the edge-event contract: every edge creation
// fires OnEdge and removals happen only through deaths.
func (m *LiveModel) EmitsEdgeEvents() bool { return true }

// AdvanceRound advances the clock one transmission unit. No churn: the
// network between commands is frozen.
func (m *LiveModel) AdvanceRound() {
	m.round++
	m.time++
}

// Join births a node that makes d uniform requests (rule 1) and returns
// its handle.
func (m *LiveModel) Join() graph.Handle {
	h := m.g.AddNode(m.time)
	m.last = h
	for i := 0; i < m.d; i++ {
		tgt := m.g.RandomAliveExcept(m.r, h)
		if tgt.IsNil() {
			break // first node of an empty network: no peer to request
		}
		m.g.AddOutEdge(h, tgt)
		if m.hooks.OnEdge != nil {
			m.hooks.OnEdge(h, tgt)
		}
	}
	if m.hooks.OnBirth != nil {
		m.hooks.OnBirth(h)
	}
	return h
}

// Leave removes h gracefully: survivors whose requests pointed at it
// redial uniformly at random (rule 3, the regenerating models'
// departure). It panics if h is not alive — the server validates before
// commanding.
func (m *LiveModel) Leave(h graph.Handle) {
	m.depart(h, true)
}

// Crash removes h abruptly: orphaned requests of survivors dangle, as in
// the no-regeneration models. It panics if h is not alive.
func (m *LiveModel) Crash(h graph.Handle) {
	m.depart(h, false)
}

func (m *LiveModel) depart(h graph.Handle, regen bool) {
	if m.hooks.OnDeath != nil {
		m.hooks.OnDeath(h)
	}
	m.buf = m.g.RemoveNode(h, m.buf[:0])
	if !regen {
		return
	}
	for _, e := range m.buf {
		tgt := m.g.RandomAliveExcept(m.r, e.Src)
		if tgt.IsNil() {
			continue
		}
		m.g.RedirectOutEdge(e.Src, e.Slot, tgt)
		if m.hooks.OnEdge != nil {
			m.hooks.OnEdge(e.Src, tgt)
		}
	}
}
