// Package driver exercises a live churnd daemon end to end over its
// public control plane — pure HTTP/JSON plus the optional UDP probe
// path, no access to server internals — and asserts the protocol
// contract: a grow/shrink/crash/broadcast scenario must converge
// (every alive node informed), and unknown or departed nodes must
// answer as well-formed JSON errors, never panics or empty bodies.
//
// It is the churnd-smoke CI job's payload (cmd/churnd -drive) and the
// serve package's own scenario test.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"github.com/dyngraph/churnnet/internal/graphio"
)

// Options tunes the scenario.
type Options struct {
	// Joins is how many nodes the grow phase admits (default 32).
	Joins int
	// Departures is how many of the joined nodes the shrink phase
	// removes — half gracefully, half by crash (default Joins/4).
	Departures int
	// MaxRounds bounds each broadcast's step-and-poll loop (default 400).
	MaxRounds int
	// UDPAddr, when non-empty, also exercises the UDP probe fast path.
	UDPAddr string
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
	// Logf, when set, receives progress lines (e.g. t.Logf, log.Printf).
	Logf func(format string, args ...any)
}

// Report summarizes a successful run.
type Report struct {
	Joined     int
	Left       int
	Crashed    int
	Broadcasts int
	// Rounds lists each broadcast's rounds to completion.
	Rounds []int
	// AliveInitial and AliveFinal are the populations before and after
	// the scenario, per /healthz. The live model has no autonomous
	// churn, so AliveFinal must equal AliveInitial + Joined - Left -
	// Crashed; Run checks that.
	AliveInitial int
	AliveFinal   int
	// SnapshotNodes is the alive count parsed back from /snapshot.
	SnapshotNodes int
}

type client struct {
	base string
	http *http.Client
	logf func(string, ...any)
}

// Run executes the scenario against the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). It returns on the first contract violation
// with an error naming the endpoint and the violated expectation.
func Run(baseURL string, opts Options) (Report, error) {
	if opts.Joins <= 0 {
		opts.Joins = 32
	}
	if opts.Departures <= 0 {
		opts.Departures = opts.Joins / 4
	}
	if opts.Departures > opts.Joins {
		opts.Departures = opts.Joins
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 400
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &client{base: strings.TrimRight(baseURL, "/"), http: opts.Client, logf: logf}
	var rep Report

	// Phase 0: the daemon is up.
	var health struct {
		OK    bool `json:"ok"`
		Alive int  `json:"alive"`
	}
	if err := c.getJSON("/healthz", 200, &health); err != nil {
		return rep, err
	}
	if !health.OK {
		return rep, fmt.Errorf("/healthz: daemon reports not ok")
	}
	rep.AliveInitial = health.Alive
	logf("driver: healthz ok, alive=%d", health.Alive)

	// Phase 1: grow.
	var joined struct {
		IDs []uint64 `json:"ids"`
	}
	if err := c.postJSON("/join", map[string]any{"count": opts.Joins}, 200, &joined); err != nil {
		return rep, err
	}
	if len(joined.IDs) != opts.Joins {
		return rep, fmt.Errorf("/join: asked for %d nodes, got %d ids", opts.Joins, len(joined.IDs))
	}
	rep.Joined = len(joined.IDs)
	logf("driver: joined %d nodes (ids %d..%d)", rep.Joined, joined.IDs[0], joined.IDs[len(joined.IDs)-1])

	// New nodes must be immediately queryable.
	last := joined.IDs[len(joined.IDs)-1]
	var info struct {
		ID    uint64  `json:"id"`
		Alive bool    `json:"alive"`
		Age   float64 `json:"age"`
	}
	if err := c.getJSON(fmt.Sprintf("/node-info/%d", last), 200, &info); err != nil {
		return rep, err
	}
	if !info.Alive || info.ID != last || info.Age < 0 {
		return rep, fmt.Errorf("/node-info/%d: want alive node with non-negative age, got %+v", last, info)
	}

	// Phase 2: broadcast from the last joined node and converge.
	rounds, err := c.broadcastAndConverge(opts.MaxRounds)
	if err != nil {
		return rep, err
	}
	rep.Broadcasts++
	rep.Rounds = append(rep.Rounds, rounds)
	logf("driver: broadcast 0 completed in %d rounds", rounds)

	// Phase 3: error shapes. Unknown and departed nodes are well-formed
	// JSON errors with the documented codes — not panics, not 500s.
	if err := c.expectErr("GET", "/node-info/18446744073709551615", nil, 404); err != nil {
		return rep, err
	}
	if err := c.expectErr("POST", "/leave", map[string]any{"id": uint64(1) << 62}, 404); err != nil {
		return rep, err
	}
	if err := c.expectErr("GET", "/status/999999999", nil, 404); err != nil {
		return rep, err
	}
	if err := c.expectErr("POST", "/leave", nil, 400); err != nil { // missing id
		return rep, err
	}

	// Phase 4: shrink — half graceful leaves, half crashes, then the
	// departed must answer 410 everywhere (and double-leave too).
	leaves := opts.Departures / 2
	crashes := opts.Departures - leaves
	for i := 0; i < leaves; i++ {
		if err := c.postJSON("/leave", map[string]any{"id": joined.IDs[i]}, 200, nil); err != nil {
			return rep, err
		}
		rep.Left++
	}
	for i := leaves; i < leaves+crashes; i++ {
		if err := c.postJSON("/sim-crash", map[string]any{"id": joined.IDs[i]}, 200, nil); err != nil {
			return rep, err
		}
		rep.Crashed++
	}
	logf("driver: departed %d nodes (%d left, %d crashed)", rep.Left+rep.Crashed, rep.Left, rep.Crashed)
	if opts.Departures > 0 {
		gone := joined.IDs[0]
		if err := c.expectErr("GET", fmt.Sprintf("/node-info/%d", gone), nil, 410); err != nil {
			return rep, err
		}
		if err := c.expectErr("POST", "/leave", map[string]any{"id": gone}, 410); err != nil {
			return rep, err
		}
		if err := c.expectErr("POST", "/inject", map[string]any{"source": gone}, 410); err != nil {
			return rep, err
		}
	}

	// Phase 5: a second broadcast after churn must still converge.
	rounds, err = c.broadcastAndConverge(opts.MaxRounds)
	if err != nil {
		return rep, err
	}
	rep.Broadcasts++
	rep.Rounds = append(rep.Rounds, rounds)
	logf("driver: broadcast 1 completed in %d rounds", rounds)

	// Phase 6: the read-only surfaces stay well-formed.
	var exp struct {
		Observations []struct {
			N   int     `json:"n"`
			Min float64 `json:"min"`
		} `json:"observations"`
	}
	if err := c.getJSON("/expansion", 200, &exp); err != nil {
		return rep, err
	}
	if err := c.getJSON("/healthz", 200, &health); err != nil {
		return rep, err
	}
	rep.AliveFinal = health.Alive
	if want := rep.AliveInitial + rep.Joined - rep.Left - rep.Crashed; rep.AliveFinal != want {
		return rep, fmt.Errorf("/healthz: %d alive after the scenario, want %d (started %d, +%d joined, -%d departed)",
			rep.AliveFinal, want, rep.AliveInitial, rep.Joined, rep.Left+rep.Crashed)
	}

	snap, err := c.getRaw("/snapshot")
	if err != nil {
		return rep, err
	}
	g, _, err := graphio.ReadEdgeList(bytes.NewReader(snap))
	if err != nil {
		return rep, fmt.Errorf("/snapshot: edge list does not parse back: %w", err)
	}
	rep.SnapshotNodes = g.NumAlive()
	if rep.SnapshotNodes != rep.AliveFinal {
		return rep, fmt.Errorf("/snapshot: parsed %d alive nodes, /healthz says %d", rep.SnapshotNodes, rep.AliveFinal)
	}
	logf("driver: snapshot round-trips %d nodes", rep.SnapshotNodes)

	// Phase 7: UDP probe fast path (optional).
	if opts.UDPAddr != "" {
		if err := probeUDP(opts.UDPAddr, last); err != nil {
			return rep, err
		}
		logf("driver: udp probes ok")
	}
	return rep, nil
}

// broadcastAndConverge injects from the most recently joined node, then
// steps and polls until the message completes with every alive node
// informed.
func (c *client) broadcastAndConverge(maxRounds int) (int, error) {
	var inj struct {
		Msg int `json:"msg"`
	}
	if err := c.postJSON("/inject", nil, 200, &inj); err != nil {
		return 0, err
	}
	statusPath := fmt.Sprintf("/status/%d", inj.Msg)
	for r := 0; r < maxRounds; r++ {
		if err := c.postJSON("/step", nil, 200, nil); err != nil {
			return 0, err
		}
		var st struct {
			Status        string `json:"status"`
			Rounds        int    `json:"rounds"`
			InformedAlive int    `json:"informed_alive"`
			Alive         int    `json:"alive"`
			Completed     bool   `json:"completed"`
			DiedOut       bool   `json:"died_out"`
		}
		if err := c.getJSON(statusPath, 200, &st); err != nil {
			return 0, err
		}
		if st.Status == "in-flight" {
			continue
		}
		if !st.Completed {
			return 0, fmt.Errorf("%s: message finished without completing (died_out=%v, informed %d/%d after %d rounds)",
				statusPath, st.DiedOut, st.InformedAlive, st.Alive, st.Rounds)
		}
		if st.InformedAlive != st.Alive {
			return 0, fmt.Errorf("%s: completed but informed %d of %d alive nodes", statusPath, st.InformedAlive, st.Alive)
		}
		return st.Rounds, nil
	}
	return 0, fmt.Errorf("%s: no convergence within %d rounds", statusPath, maxRounds)
}

// probeUDP checks the fast path: ping, a liveness probe on id, and an
// informed probe against message 0 (completed by now, so the informed
// bit is legitimately 0 — the check is that the reply parses).
func probeUDP(addr string, id uint64) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return fmt.Errorf("udp %s: %w", addr, err)
	}
	defer conn.Close()
	ask := func(req, wantPrefix string) error {
		if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			return err
		}
		if _, err := conn.Write([]byte(req)); err != nil {
			return fmt.Errorf("udp %q: %w", req, err)
		}
		buf := make([]byte, 512)
		n, err := conn.Read(buf)
		if err != nil {
			return fmt.Errorf("udp %q: %w", req, err)
		}
		resp := string(buf[:n])
		if !strings.HasPrefix(resp, wantPrefix) {
			return fmt.Errorf("udp %q: got %q, want prefix %q", req, resp, wantPrefix)
		}
		return nil
	}
	if err := ask("ping", "ok v="); err != nil {
		return err
	}
	if err := ask(fmt.Sprintf("probe %d", id), "ok alive=1"); err != nil {
		return err
	}
	if err := ask(fmt.Sprintf("probe %d 0", id), "ok alive=1 informed="); err != nil {
		return err
	}
	if err := ask("probe notanumber", "err "); err != nil {
		return err
	}
	return nil
}

// --- HTTP plumbing ---

func (c *client) do(method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.http.Do(req)
}

func (c *client) getJSON(path string, wantStatus int, out any) error {
	return c.roundTrip("GET", path, nil, wantStatus, out)
}

func (c *client) postJSON(path string, body any, wantStatus int, out any) error {
	return c.roundTrip("POST", path, body, wantStatus, out)
}

func (c *client) roundTrip(method, path string, body any, wantStatus int, out any) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("%s %s: reading body: %w", method, path, err)
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, firstLine(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: bad JSON: %w (%s)", method, path, err, firstLine(raw))
		}
	}
	return nil
}

// expectErr asserts that the request fails with the given status AND a
// well-formed JSON error envelope carrying a non-empty message.
func (c *client) expectErr(method, path string, body any, wantStatus int) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("%s %s: reading body: %w", method, path, err)
	}
	if resp.StatusCode != wantStatus {
		return fmt.Errorf("%s %s: status %d (want error %d): %s", method, path, resp.StatusCode, wantStatus, firstLine(raw))
	}
	var envelope struct {
		Status int    `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		return fmt.Errorf("%s %s: error body is not the JSON envelope: %w (%s)", method, path, err, firstLine(raw))
	}
	if envelope.Status != wantStatus || envelope.Error == "" {
		return fmt.Errorf("%s %s: malformed error envelope %+v (want status %d and a message)", method, path, envelope, wantStatus)
	}
	return nil
}

func (c *client) getRaw(path string) ([]byte, error) {
	resp, err := c.do("GET", path, nil)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("GET %s: reading body: %w", path, err)
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, firstLine(raw))
	}
	return raw, nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
