package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxBodyBytes bounds request bodies; control-plane payloads are tiny.
const maxBodyBytes = 1 << 16

// Handler returns the HTTP control plane:
//
//	POST /join       {"count": k}            → {"ids": [...]}
//	POST /leave      {"id": n}               → {"ok": true}
//	POST /sim-crash  {"id": n}               → {"ok": true}
//	POST /inject     {"source": n}           → {"msg": id}   (source omitted = last joined)
//	POST /step       {"rounds": k}           → {"ok": true}
//	GET  /node-info/{id}                     → NodeInfo
//	GET  /status/{msg}                       → MsgView
//	GET  /expansion                          → {"observations": [...]}
//	GET  /snapshot                           → graphio edge-list stream (text/plain)
//	GET  /healthz                            → liveness + queue depth + snapshot age
//
// Errors are JSON envelopes {"status": code, "error": msg}: 404 unknown
// node/message, 410 departed node, 429 queue full, 503 overloaded or
// shutting down, 405/400 for protocol misuse. Handlers never touch the
// model — mutations go through the command queue, reads through the
// published snapshot.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("POST /leave", s.handleLeave)
	mux.HandleFunc("POST /sim-crash", s.handleCrash)
	mux.HandleFunc("POST /inject", s.handleInject)
	mux.HandleFunc("POST /step", s.handleStep)
	mux.HandleFunc("GET /node-info/{id}", s.handleNodeInfo)
	mux.HandleFunc("GET /status/{msg}", s.handleStatus)
	mux.HandleFunc("GET /expansion", s.handleExpansion)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // a client that hung up is its own problem
}

func writeErr(w http.ResponseWriter, err *APIError) {
	writeJSON(w, err.Status, err)
}

// decodeBody JSON-decodes an optional request body into v. An empty body
// leaves v at its zero value; trailing garbage and unknown fields are
// 400s so misuse fails loudly instead of silently acting on defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return true // empty body = all defaults
		}
		writeErr(w, &APIError{Status: 400, Msg: "bad request body: " + err.Error()})
		return false
	}
	if dec.More() {
		writeErr(w, &APIError{Status: 400, Msg: "bad request body: trailing data"})
		return false
	}
	return true
}

// pathID parses the trailing path segment as an unsigned ID.
func pathID(w http.ResponseWriter, r *http.Request, seg string) (uint64, bool) {
	raw := r.PathValue(seg)
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeErr(w, &APIError{Status: 400, Msg: "bad " + seg + " " + strconv.Quote(raw) + ": want a decimal id"})
		return 0, false
	}
	return id, true
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Count int `json:"count"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Count < 0 || req.Count > 1<<20 {
		writeErr(w, &APIError{Status: 400, Msg: "count out of range (want 0..1048576; 0 means 1)"})
		return
	}
	ids, version, err := s.Join(req.Count)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		IDs     []uint64 `json:"ids"`
		Version uint64   `json:"version"`
	}{ids, version})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.handleDepart(w, r, false)
}

func (s *Server) handleCrash(w http.ResponseWriter, r *http.Request) {
	s.handleDepart(w, r, true)
}

func (s *Server) handleDepart(w http.ResponseWriter, r *http.Request, crash bool) {
	var req struct {
		ID *uint64 `json:"id"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ID == nil {
		writeErr(w, &APIError{Status: 400, Msg: `missing "id"`})
		return
	}
	var version uint64
	var err *APIError
	if crash {
		version, err = s.Crash(*req.ID)
	} else {
		version, err = s.Leave(*req.ID)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK      bool   `json:"ok"`
		Version uint64 `json:"version"`
	}{true, version})
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Source *uint64 `json:"source"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	var src uint64
	useID := req.Source != nil
	if useID {
		src = *req.Source
	}
	msg, version, err := s.Inject(src, useID)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Msg     int    `json:"msg"`
		Version uint64 `json:"version"`
	}{int(msg), version})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rounds int `json:"rounds"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Rounds < 0 || req.Rounds > 1<<20 {
		writeErr(w, &APIError{Status: 400, Msg: "rounds out of range (want 0..1048576; 0 means 1)"})
		return
	}
	version, err := s.StepRounds(req.Rounds)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK      bool   `json:"ok"`
		Version uint64 `json:"version"`
	}{true, version})
}

func (s *Server) handleNodeInfo(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r, "id")
	if !ok {
		return
	}
	info, err := s.Current().NodeInfo(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r, "msg")
	if !ok {
		return
	}
	view, err := s.Current().MsgStatus(int(id))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleExpansion(w http.ResponseWriter, r *http.Request) {
	snap := s.Current()
	writeJSON(w, http.StatusOK, struct {
		Observations []ExpansionObs `json:"observations"`
		Version      uint64         `json:"version"`
	}{snap.Expansion(), snap.Version})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	buf, err := s.Dump()
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Current()
	writeJSON(w, http.StatusOK, struct {
		OK          bool    `json:"ok"`
		Version     uint64  `json:"version"`
		Steps       int     `json:"steps"`
		Time        float64 `json:"time"`
		Alive       int     `json:"alive"`
		Nodes       int     `json:"nodes_issued"`
		Msgs        int     `json:"msgs_injected"`
		QueueLen    int     `json:"queue_len"`
		QueueCap    int     `json:"queue_cap"`
		SnapshotAge float64 `json:"snapshot_age_ms"`
		Kind        string  `json:"kind"`
	}{
		OK:          !s.stopped.Load(),
		Version:     snap.Version,
		Steps:       snap.Steps,
		Time:        snap.Time,
		Alive:       snap.Alive,
		Nodes:       snap.NumNodes(),
		Msgs:        snap.NumMsgs(),
		QueueLen:    s.QueueLen(),
		QueueCap:    s.QueueCap(),
		SnapshotAge: float64(snap.Age(time.Now())) / float64(time.Millisecond),
		Kind:        strings.ToLower(s.model.SeedKind().String()),
	})
}
