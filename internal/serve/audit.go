package serve

import (
	"fmt"

	"github.com/dyngraph/churnnet/internal/flood"
)

// VerifySnapshot compares a published snapshot field by field against
// direct model and plane queries: alive totals, per-node liveness and
// births, per-message lifecycle and informed membership (totals and
// per-node bits). It is the consistency audit behind the serve bench's
// audit_ok column and the scenario tests.
//
// It must run with the writer quiescent and the snapshot freshly
// published — i.e. inside Server.Audit, which guarantees both.
func VerifySnapshot(m *LiveModel, plane *flood.Traffic, snap *Snapshot) error {
	g := m.Graph()
	if snap.Alive != g.NumAlive() {
		return fmt.Errorf("snapshot alive %d != model %d", snap.Alive, g.NumAlive())
	}
	if snap.Steps != plane.Steps() {
		return fmt.Errorf("snapshot steps %d != plane %d", snap.Steps, plane.Steps())
	}
	if snap.Time != m.Now() {
		return fmt.Errorf("snapshot time %g != model %g", snap.Time, m.Now())
	}
	if snap.NumMsgs() != plane.Injected() {
		return fmt.Errorf("snapshot has %d messages, plane admitted %d", snap.NumMsgs(), plane.Injected())
	}
	inFlight := snap.view.InFlight()
	if len(inFlight) != plane.Live() {
		return fmt.Errorf("snapshot tracks %d in-flight messages, plane has %d", len(inFlight), plane.Live())
	}
	aliveSeen := 0
	for id := range snap.nodes {
		rec := &snap.nodes[id]
		if rec.state != nodeAlive {
			if g.IsAlive(rec.h) {
				return fmt.Errorf("node %d departed in snapshot, alive in model", id)
			}
			continue
		}
		aliveSeen++
		if !g.IsAlive(rec.h) {
			return fmt.Errorf("node %d alive in snapshot, dead in model", id)
		}
		if got := g.BirthTime(rec.h); got != rec.birth {
			return fmt.Errorf("node %d birth %g in snapshot, %g in model", id, rec.birth, got)
		}
		for _, mid := range inFlight {
			if got, want := snap.view.Informed(mid, rec.h), plane.Informed(mid, rec.h); got != want {
				return fmt.Errorf("node %d msg %d informed: snapshot %v, plane %v", id, mid, got, want)
			}
		}
	}
	if aliveSeen != snap.Alive {
		return fmt.Errorf("snapshot lists %d alive nodes, totals say %d", aliveSeen, snap.Alive)
	}
	for i := 0; i < snap.NumMsgs(); i++ {
		mv, err := snap.MsgStatus(i)
		if err != nil {
			return fmt.Errorf("msg %d: %s", i, err.Msg)
		}
		mid := flood.MessageID(i)
		if mv.Status != plane.Status(mid).String() {
			return fmt.Errorf("msg %d status %q != plane %q", i, mv.Status, plane.Status(mid))
		}
		if mv.InformedAlive != plane.InformedAlive(mid) {
			return fmt.Errorf("msg %d informed %d != plane %d", i, mv.InformedAlive, plane.InformedAlive(mid))
		}
	}
	return nil
}
