package serve

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/graphio"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Config parameterizes a Server.
type Config struct {
	// Kind/N/D/Seed describe the seeded stationary snapshot the live
	// model starts from (N == 0 starts empty). See NewLiveModel.
	Kind core.Kind
	N, D int
	Seed uint64

	// Parallelism is the worker-shard count of the traffic plane and the
	// seeding snapshot fill (the flood.Options contract: 0/1 serial,
	// negative auto).
	Parallelism int

	// QueueDepth bounds the command queue; a full queue rejects
	// mutations with 429 instead of queueing unboundedly. Default 1024.
	QueueDepth int

	// Tick, when positive, advances the network one flooding round per
	// tick autonomously. Zero (the default) advances only on explicit
	// step commands — the fully deterministic mode.
	Tick time.Duration

	// MinPublishInterval rate-limits snapshot publication: after a
	// mutation batch, a new snapshot is published only if the current
	// one is at least this old (0 = publish after every batch). Reads
	// in between see a bounded-stale snapshot; /healthz reports the age.
	MinPublishInterval time.Duration

	// ObserveEvery, when positive, attaches an expansion.Tracker and
	// records an observation every that many rounds.
	ObserveEvery int
	// Tracker tunes the tracked witness families (zero value = package
	// defaults).
	Tracker expansion.TrackerConfig

	// MaxRounds caps each injected message's flooding rounds (0 selects
	// flood.DefaultMaxRounds of N).
	MaxRounds int

	// ReplyTimeout bounds how long a request handler waits for the
	// writer to execute its command before giving up with 503 (the
	// command itself still executes). Default 10s.
	ReplyTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.ReplyTimeout <= 0 {
		c.ReplyTimeout = 10 * time.Second
	}
	if c.D <= 0 {
		c.D = 1
	}
	if c.Kind == 0 {
		c.Kind = core.SDGR
	}
	return c
}

// APIError is a well-formed command failure: an HTTP status code and a
// message. It is what mutation commands return for unknown or departed
// nodes, overload, and shutdown — never a panic.
type APIError struct {
	Status int    `json:"status"`
	Msg    string `json:"error"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%d: %s", e.Status, e.Msg) }

var (
	errQueueFull = &APIError{Status: 429, Msg: "command queue full, retry later"}
	errStopped   = &APIError{Status: 503, Msg: "server is shutting down"}
	errTimeout   = &APIError{Status: 503, Msg: "command timed out awaiting the writer (it may still execute)"}
)

// nodeState is a served node's lifecycle phase.
type nodeState uint8

const (
	nodeAlive nodeState = iota
	nodeLeft
	nodeCrashed
)

// nodeRec is the writer's per-external-ID node bookkeeping; snapshots
// copy the slice wholesale.
type nodeRec struct {
	h     graph.Handle // generation-checked; meaningless after departure
	birth float64
	state nodeState
}

type cmdKind uint8

const (
	cmdJoin cmdKind = iota
	cmdLeave
	cmdCrash
	cmdInject
	cmdStep
	cmdDump
	cmdAudit
)

type command struct {
	kind  cmdKind
	id    uint64 // leave/crash target; inject source when useID
	useID bool   // inject: explicit source id vs last-born
	count int    // join nodes / step rounds
	fn    func() // audit closure, run on the writer goroutine
	reply chan cmdReply
}

type cmdReply struct {
	err     *APIError
	ids     []uint64
	msg     flood.MessageID
	buf     []byte
	version uint64
}

// Server hosts one LiveModel, its traffic plane and optional expansion
// tracker behind a single-writer loop. Construct with New, start the
// loop with Start, attach Handler/ServeUDP, and Stop to shut down.
type Server struct {
	cfg     Config
	model   *LiveModel
	plane   *flood.Traffic
	tracker *expansion.Tracker

	cmds    chan command
	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool

	snap atomic.Pointer[Snapshot]

	// Writer-goroutine state (never touched by request goroutines).
	nodes             []nodeRec
	version           uint64
	dirty             bool
	lastPublish       time.Time
	stepsSinceObserve int
	obsRing           []ExpansionObs
	pending           []pendingReply
	maxQueueLen       int
}

type pendingReply struct {
	ch chan cmdReply
	r  cmdReply
}

// New builds the server: seeds the live model (the expensive part at
// large N), attaches the tracker and the traffic plane, and publishes
// snapshot version 1. Call Start to begin serving commands.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		cmds: make(chan command, cfg.QueueDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.model = NewLiveModel(cfg.Kind, cfg.N, cfg.D, cfg.Seed, cfg.Parallelism)

	// Register the seeded population under dense external IDs in birth
	// order (0 = oldest), the graphio convention.
	g := s.model.Graph()
	hs := g.AliveHandles()
	sortByBirth(g, hs)
	s.nodes = make([]nodeRec, 0, len(hs))
	for _, h := range hs {
		s.nodes = append(s.nodes, nodeRec{h: h, birth: g.BirthTime(h), state: nodeAlive})
	}

	if cfg.ObserveEvery > 0 {
		s.tracker = expansion.NewTracker(s.model, rng.New(cfg.Seed^0x9e3779b97f4a7c15), cfg.Tracker)
	}
	s.plane = flood.NewTraffic(s.model, flood.TrafficOptions{
		MaxRounds:   cfg.MaxRounds,
		Parallelism: cfg.Parallelism,
	})
	s.publish(time.Now())
	return s
}

// sortByBirth orders handles oldest-first (insertion sort is fine for
// tests; real populations use the O(n log n) path).
func sortByBirth(g *graph.Graph, hs []graph.Handle) {
	sortHandles(hs, func(a, b graph.Handle) bool { return g.BirthSeq(a) < g.BirthSeq(b) })
}

// Start launches the writer loop.
func (s *Server) Start() {
	go s.loop()
}

// Stop shuts the writer down and detaches the plane and tracker. Pending
// and late requests fail with 503. Idempotent.
func (s *Server) Stop() {
	if s.stopped.Swap(true) {
		<-s.done
		return
	}
	close(s.stop)
	<-s.done
	s.plane.Close()
	if s.tracker != nil {
		s.tracker.Close()
	}
}

// Model exposes the underlying live model for the writer-side audit path
// and tests. Request handlers must never call this.
func (s *Server) Model() *LiveModel { return s.model }

// Plane exposes the traffic plane for the writer-side audit path and
// tests. Request handlers must never call this.
func (s *Server) Plane() *flood.Traffic { return s.plane }

// Current returns the latest published snapshot. Safe from any
// goroutine; the snapshot is immutable.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// QueueLen returns the current command-queue depth (approximate; safe
// from any goroutine).
func (s *Server) QueueLen() int { return len(s.cmds) }

// QueueCap returns the command-queue capacity.
func (s *Server) QueueCap() int { return cap(s.cmds) }

// --- the writer loop ---

func (s *Server) loop() {
	defer close(s.done)
	var tickC <-chan time.Time
	if s.cfg.Tick > 0 {
		t := time.NewTicker(s.cfg.Tick)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-s.stop:
			s.flushReplies()
			return
		case cmd := <-s.cmds:
			if n := len(s.cmds) + 1; n > s.maxQueueLen {
				s.maxQueueLen = n
			}
			s.apply(cmd)
			// Drain the batch: every command that arrived while we were
			// busy executes before the next round boundary.
		drain:
			for {
				select {
				case cmd := <-s.cmds:
					s.apply(cmd)
				default:
					break drain
				}
			}
		case <-tickC:
			s.stepRounds(1)
		}
		now := time.Now()
		if s.dirty && now.Sub(s.lastPublish) >= s.cfg.MinPublishInterval {
			s.publish(now)
		}
		s.flushReplies()
	}
}

func (s *Server) flushReplies() {
	for _, p := range s.pending {
		p.r.version = s.version
		p.ch <- p.r // buffered(1); never blocks
	}
	s.pending = s.pending[:0]
}

func (s *Server) apply(cmd command) {
	var r cmdReply
	switch cmd.kind {
	case cmdJoin:
		n := cmd.count
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			h := s.model.Join()
			id := uint64(len(s.nodes))
			s.nodes = append(s.nodes, nodeRec{h: h, birth: s.model.Now(), state: nodeAlive})
			r.ids = append(r.ids, id)
		}
		s.dirty = true
	case cmdLeave, cmdCrash:
		rec, err := s.aliveRec(cmd.id)
		if err != nil {
			r.err = err
			break
		}
		if cmd.kind == cmdLeave {
			s.model.Leave(rec.h)
			rec.state = nodeLeft
		} else {
			s.model.Crash(rec.h)
			rec.state = nodeCrashed
		}
		s.dirty = true
	case cmdInject:
		src := graph.Nil
		if cmd.useID {
			rec, err := s.aliveRec(cmd.id)
			if err != nil {
				r.err = err
				break
			}
			src = rec.h
		} else if s.model.LastBorn().IsNil() || !s.model.Graph().IsAlive(s.model.LastBorn()) {
			r.err = &APIError{Status: 409, Msg: "no alive default source; join a node first or name one"}
			break
		}
		r.msg = s.plane.Inject(src)
		s.dirty = true
	case cmdStep:
		n := cmd.count
		if n < 1 {
			n = 1
		}
		s.stepRounds(n)
	case cmdDump:
		// Publish first so the dump names a version that concurrent
		// snapshot readers can line up with, then serialize that state.
		s.publish(time.Now())
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# churnd snapshot version=%d round=%d time=%g alive=%d\n",
			s.version, s.plane.Steps(), s.model.Now(), s.model.Graph().NumAlive())
		if err := graphio.WriteEdgeList(&buf, s.model.Graph()); err != nil {
			r.err = &APIError{Status: 500, Msg: "snapshot serialization failed: " + err.Error()}
			break
		}
		r.buf = buf.Bytes()
	case cmdAudit:
		cmd.fn()
	}
	if cmd.reply != nil {
		s.pending = append(s.pending, pendingReply{ch: cmd.reply, r: r})
	}
}

// aliveRec resolves an external node ID to its live record, or a
// well-formed error: 404 for an ID never issued, 410 for a departed node
// (the message says whether it left or crashed).
func (s *Server) aliveRec(id uint64) (*nodeRec, *APIError) {
	if id >= uint64(len(s.nodes)) {
		return nil, &APIError{Status: 404, Msg: fmt.Sprintf("unknown node %d", id)}
	}
	rec := &s.nodes[id]
	switch rec.state {
	case nodeLeft:
		return nil, &APIError{Status: 410, Msg: fmt.Sprintf("node %d left the network", id)}
	case nodeCrashed:
		return nil, &APIError{Status: 410, Msg: fmt.Sprintf("node %d crashed", id)}
	}
	return rec, nil
}

func (s *Server) stepRounds(n int) {
	for i := 0; i < n; i++ {
		s.plane.Step()
		if s.tracker != nil {
			s.stepsSinceObserve++
			if s.stepsSinceObserve >= s.cfg.ObserveEvery {
				s.stepsSinceObserve = 0
				obs := s.tracker.Observe()
				s.obsRing = append(s.obsRing, newExpansionObs(obs, s.plane.Steps()))
				if len(s.obsRing) > obsRingCap {
					s.obsRing = s.obsRing[len(s.obsRing)-obsRingCap:]
				}
			}
		}
	}
	s.dirty = true
}

// publish builds and installs a fresh immutable snapshot.
func (s *Server) publish(now time.Time) {
	s.version++
	snap := &Snapshot{
		Version:     s.version,
		Steps:       s.plane.Steps(),
		Time:        s.model.Now(),
		Alive:       s.model.Graph().NumAlive(),
		QueueLen:    len(s.cmds),
		publishedAt: now,
		nodes:       append([]nodeRec(nil), s.nodes...),
		view:        s.plane.CaptureView(nil),
		expansion:   append([]ExpansionObs(nil), s.obsRing...),
	}
	snap.msgs = make([]MsgView, s.plane.Injected())
	for i := range snap.msgs {
		id := flood.MessageID(i)
		snap.msgs[i] = newMsgView(s.plane, id, snap.Version)
	}
	s.snap.Store(snap)
	s.dirty = false
	s.lastPublish = now
}

// --- the command API (what the HTTP layer and tests call) ---

// enqueue submits a command and waits for its reply. The returned
// version is the snapshot version current when the reply was flushed.
func (s *Server) enqueue(cmd command) (cmdReply, *APIError) {
	if s.stopped.Load() {
		return cmdReply{}, errStopped
	}
	cmd.reply = make(chan cmdReply, 1)
	select {
	case s.cmds <- cmd:
	default:
		return cmdReply{}, errQueueFull
	}
	timer := time.NewTimer(s.cfg.ReplyTimeout)
	defer timer.Stop()
	select {
	case r := <-cmd.reply:
		return r, r.err
	case <-timer.C:
		return cmdReply{}, errTimeout
	case <-s.done:
		return cmdReply{}, errStopped
	}
}

// Join admits count nodes (count < 1 admits one) and returns their
// external IDs.
func (s *Server) Join(count int) ([]uint64, uint64, *APIError) {
	r, err := s.enqueue(command{kind: cmdJoin, count: count})
	return r.ids, r.version, err
}

// Leave departs node id gracefully (survivors redial).
func (s *Server) Leave(id uint64) (uint64, *APIError) {
	r, err := s.enqueue(command{kind: cmdLeave, id: id})
	return r.version, err
}

// Crash departs node id abruptly (orphaned requests dangle).
func (s *Server) Crash(id uint64) (uint64, *APIError) {
	r, err := s.enqueue(command{kind: cmdCrash, id: id})
	return r.version, err
}

// Inject admits a broadcast sourced at node id (useID false selects the
// most recently joined node) and returns its MessageID.
func (s *Server) Inject(id uint64, useID bool) (flood.MessageID, uint64, *APIError) {
	r, err := s.enqueue(command{kind: cmdInject, id: id, useID: useID})
	return r.msg, r.version, err
}

// StepRounds advances the network n flooding rounds.
func (s *Server) StepRounds(n int) (uint64, *APIError) {
	r, err := s.enqueue(command{kind: cmdStep, count: n})
	return r.version, err
}

// Dump serializes the current graph in the graphio edge-list format
// (with a leading comment naming the version the dump corresponds to).
func (s *Server) Dump() ([]byte, *APIError) {
	r, err := s.enqueue(command{kind: cmdDump})
	return r.buf, err
}

// Audit runs fn on the writer goroutine with exclusive access to the
// model and plane, after forcing a fresh snapshot publish — so fn can
// compare the published snapshot against a direct model query at the
// same version. It is the consistency-audit hook of benchjson and the
// tests.
func (s *Server) Audit(fn func(model *LiveModel, plane *flood.Traffic, snap *Snapshot)) *APIError {
	wrapped := func() {
		s.publish(time.Now())
		fn(s.model, s.plane, s.snap.Load())
	}
	_, err := s.enqueue(command{kind: cmdAudit, fn: wrapped})
	return err
}

// MaxQueueLen reports the largest queue depth the writer has observed at
// batch start. Must be read via Audit (writer state).
func (s *Server) MaxQueueLen() int { return s.maxQueueLen }
