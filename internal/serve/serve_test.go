package serve

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/serve/driver"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

// TestServerScenario runs the full driver harness — the same payload the
// churnd-smoke CI job runs against a live daemon — over httptest and a
// loopback UDP socket.
func TestServerScenario(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.PDGR, N: 300, D: 3, Seed: 11, ObserveEvery: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("udp listen: %v", err)
	}
	defer conn.Close()
	go func() { _ = s.ServeUDP(conn) }()

	rep, err := driver.Run(ts.URL, driver.Options{
		Joins:      24,
		Departures: 8,
		UDPAddr:    conn.LocalAddr().String(),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	if rep.Broadcasts != 2 || rep.Joined != 24 || rep.Left+rep.Crashed != 8 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if rep.AliveFinal != rep.AliveInitial+24-8 {
		t.Fatalf("final alive %d, want %d", rep.AliveFinal, rep.AliveInitial+24-8)
	}
	// The scenario ran the tracker past observation ticks; /expansion
	// must have recorded some.
	if len(s.Current().Expansion()) == 0 {
		t.Fatalf("no expansion observations recorded")
	}
}

// TestServerConsistencyAudit is the audit the bench rows run: a freshly
// published snapshot must agree with a direct model query at the same
// version — alive counts, per-node liveness and births, per-message
// status and informed membership.
func TestServerConsistencyAudit(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDGR, N: 200, D: 2, Seed: 5})

	ids, _, aerr := s.Join(20)
	if aerr != nil {
		t.Fatalf("join: %v", aerr)
	}
	if _, _, aerr = s.Inject(0, false); aerr != nil {
		t.Fatalf("inject: %v", aerr)
	}
	if _, aerr = s.StepRounds(3); aerr != nil {
		t.Fatalf("step: %v", aerr)
	}
	for _, id := range ids[:5] {
		if _, aerr = s.Leave(id); aerr != nil {
			t.Fatalf("leave %d: %v", id, aerr)
		}
	}
	if _, aerr = s.Crash(ids[5]); aerr != nil {
		t.Fatalf("crash: %v", aerr)
	}
	if _, aerr = s.StepRounds(2); aerr != nil {
		t.Fatalf("step: %v", aerr)
	}

	aerr = s.Audit(func(m *LiveModel, plane *flood.Traffic, snap *Snapshot) {
		if err := VerifySnapshot(m, plane, snap); err != nil {
			t.Errorf("VerifySnapshot: %v", err)
		}
		if snap.Alive != m.Graph().NumAlive() {
			t.Errorf("snapshot alive %d != model %d", snap.Alive, m.Graph().NumAlive())
		}
		if snap.Steps != plane.Steps() {
			t.Errorf("snapshot steps %d != plane %d", snap.Steps, plane.Steps())
		}
		aliveInSnap := 0
		for id := range snap.nodes {
			rec := snap.nodes[id]
			if rec.state == nodeAlive {
				aliveInSnap++
				if !m.Graph().IsAlive(rec.h) {
					t.Errorf("node %d alive in snapshot, dead in model", id)
				}
				if got := m.Graph().BirthTime(rec.h); got != rec.birth {
					t.Errorf("node %d birth %g in snapshot, %g in model", id, rec.birth, got)
				}
				for _, mid := range snap.view.InFlight() {
					want := plane.Informed(mid, rec.h)
					if got := snap.view.Informed(mid, rec.h); got != want {
						t.Errorf("node %d msg %d informed: snapshot %v, plane %v", id, mid, got, want)
					}
				}
			} else if m.Graph().IsAlive(rec.h) {
				t.Errorf("node %d departed in snapshot, alive in model", id)
			}
		}
		if aliveInSnap != snap.Alive {
			t.Errorf("snapshot per-node alive %d != snapshot total %d", aliveInSnap, snap.Alive)
		}
		for i := 0; i < snap.NumMsgs(); i++ {
			mv, _ := snap.MsgStatus(i)
			mid := flood.MessageID(i)
			if mv.Status != plane.Status(mid).String() {
				t.Errorf("msg %d status %q != plane %q", i, mv.Status, plane.Status(mid))
			}
			if mv.InformedAlive != plane.InformedAlive(mid) {
				t.Errorf("msg %d informed %d != plane %d", i, mv.InformedAlive, plane.InformedAlive(mid))
			}
		}
	})
	if aerr != nil {
		t.Fatalf("audit: %v", aerr)
	}
}

// TestServerErrorShapes pins the mutation error contract: unknown IDs are
// 404, departed nodes 410 with leave/crash distinguished, and the empty
// network has no default broadcast source.
func TestServerErrorShapes(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDG, N: 0, D: 2, Seed: 3})

	if _, _, err := s.Inject(0, false); err == nil || err.Status != 409 {
		t.Fatalf("inject on empty network: %v, want 409", err)
	}
	if _, err := s.Leave(7); err == nil || err.Status != 404 {
		t.Fatalf("leave unknown: %v, want 404", err)
	}
	ids, _, err := s.Join(2)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := s.Leave(ids[0]); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if _, err := s.Leave(ids[0]); err == nil || err.Status != 410 {
		t.Fatalf("double leave: %v, want 410", err)
	}
	if _, err := s.Crash(ids[1]); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := s.Crash(ids[1]); err == nil || err.Status != 410 {
		t.Fatalf("double crash: %v, want 410", err)
	}
	// Every node is gone again: inject falls back to 409, not a panic.
	if _, _, err := s.Inject(0, false); err == nil || err.Status != 409 {
		t.Fatalf("inject on emptied network: %v, want 409", err)
	}
}

// TestServerSingleNodeBroadcast: a network of one node completes its own
// broadcast.
func TestServerSingleNodeBroadcast(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDGR, N: 0, D: 2, Seed: 9})
	if _, _, err := s.Join(1); err != nil {
		t.Fatalf("join: %v", err)
	}
	msg, _, err := s.Inject(0, false)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if _, err := s.StepRounds(2); err != nil {
		t.Fatalf("step: %v", err)
	}
	mv, merr := s.Current().MsgStatus(int(msg))
	if merr != nil {
		t.Fatalf("status: %v", merr)
	}
	if !mv.Completed || mv.InformedAlive != 1 {
		t.Fatalf("single-node broadcast did not complete: %+v", mv)
	}
}

// TestServerBackpressure: a full command queue answers 429 immediately
// and a stalled writer 503 — never blocking the caller indefinitely.
func TestServerBackpressure(t *testing.T) {
	s := New(Config{Kind: core.SDG, N: 10, D: 2, Seed: 1,
		QueueDepth: 1, ReplyTimeout: 50 * time.Millisecond})
	// The writer is intentionally not started: the first command fills
	// the queue and times out; the second finds the queue full.
	done := make(chan *APIError, 1)
	go func() {
		_, _, err := s.Join(1)
		done <- err
	}()
	// Wait until the first command occupies the queue, then overflow it.
	for i := 0; i < 1000 && s.QueueLen() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Join(1); err == nil || err.Status != 429 {
		t.Fatalf("overflow join: %v, want 429", err)
	}
	if err := <-done; err == nil || err.Status != 503 {
		t.Fatalf("stalled join: %v, want 503 timeout", err)
	}
	s.Start()
	s.Stop()
	// A stopped server refuses immediately.
	if _, _, err := s.Join(1); err == nil || err.Status != 503 {
		t.Fatalf("join after stop: %v, want 503", err)
	}
}

// TestServerDeterministicDump: two servers fed the identical command
// sequence serve bit-identical snapshots (the serve determinism
// contract: state is a pure function of seed and command order).
func TestServerDeterministicDump(t *testing.T) {
	run := func() []byte {
		s := newTestServer(t, Config{Kind: core.PDGR, N: 150, D: 3, Seed: 77})
		ids, _, err := s.Join(10)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		if _, _, err := s.Inject(ids[3], true); err != nil {
			t.Fatalf("inject: %v", err)
		}
		if _, err := s.StepRounds(4); err != nil {
			t.Fatalf("step: %v", err)
		}
		for _, id := range ids[:4] {
			if _, err := s.Leave(id); err != nil {
				t.Fatalf("leave: %v", err)
			}
		}
		if _, err := s.StepRounds(2); err != nil {
			t.Fatalf("step: %v", err)
		}
		buf, err := s.Dump()
		if err != nil {
			t.Fatalf("dump: %v", err)
		}
		// Strip the leading comment: it carries the snapshot version,
		// which depends on publish timing, not on served state.
		if i := bytes.IndexByte(buf, '\n'); i >= 0 && buf[0] == '#' {
			buf = buf[i+1:]
		}
		return buf
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same command sequence served different networks (%d vs %d bytes)", len(a), len(b))
	}
}

// TestServerNodeInfoInformedBits: /node-info reports per-message informed
// bits that match the plane.
func TestServerNodeInfoInformedBits(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDGR, N: 100, D: 2, Seed: 21})
	msg, _, err := s.Inject(0, true)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	if _, err := s.StepRounds(2); err != nil {
		t.Fatalf("step: %v", err)
	}
	info, ierr := s.Current().NodeInfo(0)
	if ierr != nil {
		t.Fatalf("node-info: %v", ierr)
	}
	found := false
	for _, mi := range info.Informed {
		if mi.Msg == int(msg) {
			found = true
			if !mi.Informed {
				t.Fatalf("source reports uninformed of its own message")
			}
		}
	}
	if !found {
		t.Fatalf("in-flight message %d missing from node-info informed list: %+v", msg, info)
	}
}

// TestServerHTTPMisuse: protocol misuse fails with 400/405 JSON
// envelopes, and unknown paths 404 — the daemon must not panic on any of
// them.
func TestServerHTTPMisuse(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDG, N: 20, D: 2, Seed: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/join", `{"count": -1}`, 400},
		{"POST", "/join", `{"bogus": true}`, 400},
		{"POST", "/join", `not json`, 400},
		{"POST", "/leave", `{}`, 400},
		{"GET", "/node-info/notanumber", "", 400},
		{"GET", "/status/-3", "", 400},
		{"GET", "/join", "", 405},
		{"POST", "/healthz", "", 405},
		{"GET", "/nosuch", "", 404},
	}
	for _, tc := range cases {
		var body *bytes.Reader
		if tc.body != "" {
			body = bytes.NewReader([]byte(tc.body))
		} else {
			body = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s (body %q): status %d, want %d", tc.method, tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
}

// TestServerTick: a positive tick advances the network autonomously.
func TestServerTick(t *testing.T) {
	s := newTestServer(t, Config{Kind: core.SDGR, N: 50, D: 2, Seed: 4,
		Tick: time.Millisecond, MinPublishInterval: 0})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Current().Steps >= 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("tick mode executed %d steps in 5s, want >= 3", s.Current().Steps)
}
