package serve

import (
	"bytes"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/graphio"
)

func TestLiveModelSeeding(t *testing.T) {
	m := NewLiveModel(core.PDGR, 200, 3, 42, 0)
	if m.Kind() != core.Live {
		t.Fatalf("Kind() = %v, want Live", m.Kind())
	}
	if m.SeedKind() != core.PDGR {
		t.Fatalf("SeedKind() = %v, want PDGR", m.SeedKind())
	}
	if m.N() != 200 || m.D() != 3 {
		t.Fatalf("N,D = %d,%d, want 200,3", m.N(), m.D())
	}
	// The stationary snapshot's population fluctuates around n.
	if got := m.Graph().NumAlive(); got < 100 || got > 400 {
		t.Fatalf("seeded %d alive nodes, want around 200", got)
	}
	if m.LastBorn().IsNil() || !m.Graph().IsAlive(m.LastBorn()) {
		t.Fatalf("LastBorn is not an alive node")
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatalf("seeded graph invariants: %v", err)
	}
}

func TestLiveModelEmptyStart(t *testing.T) {
	m := NewLiveModel(core.SDGR, 0, 2, 1, 0)
	if got := m.Graph().NumAlive(); got != 0 {
		t.Fatalf("empty model has %d alive nodes", got)
	}
	// The first node of an empty network has nobody to request from.
	h := m.Join()
	if !m.Graph().IsAlive(h) {
		t.Fatalf("first join not alive")
	}
	if got := m.Graph().OutSlotCount(h); got != 0 {
		t.Fatalf("first node has %d out edges, want 0", got)
	}
	// The second node must request the first (its only peer), twice.
	h2 := m.Join()
	if got := m.Graph().OutSlotCount(h2); got != 2 {
		t.Fatalf("second node has %d out edges, want d=2", got)
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatalf("invariants after joins: %v", err)
	}
}

// TestLiveModelHookLedger pins the edge-event contract: every placed or
// re-pointed edge fires OnEdge, every departure fires OnDeath while the
// node is still alive, joins fire OnBirth after their edges — and
// crashes regenerate nothing.
func TestLiveModelHookLedger(t *testing.T) {
	m := NewLiveModel(core.SDG, 50, 3, 7, 0)
	var births, deaths, edges int
	var deathAlive bool
	m.SetHooks(core.Hooks{
		OnBirth: func(h graph.Handle) { births++ },
		OnDeath: func(h graph.Handle) { deaths++; deathAlive = m.Graph().IsAlive(h) },
		OnEdge:  func(u, v graph.Handle) { edges++ },
	})

	h := m.Join()
	if births != 1 || edges != 3 {
		t.Fatalf("after join: births=%d edges=%d, want 1 and 3", births, edges)
	}

	// A graceful leave fires OnDeath and one OnEdge per orphaned
	// survivor request (the victim's in-degree).
	victim := m.Graph().Oldest()
	orphans := m.Graph().InDegreeLive(victim)
	edges = 0
	m.Leave(victim)
	if deaths != 1 || !deathAlive {
		t.Fatalf("leave: deaths=%d deathAlive=%v, want OnDeath fired pre-removal", deaths, deathAlive)
	}
	if edges != orphans {
		t.Fatalf("leave regenerated %d edges, want in-degree %d", edges, orphans)
	}

	// A crash fires OnDeath but regenerates nothing.
	edges = 0
	m.Crash(h)
	if deaths != 2 || edges != 0 {
		t.Fatalf("crash: deaths=%d edges=%d, want 2 and 0", deaths, edges)
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}

// TestLiveModelDeterminism: the same seed and command sequence produce a
// bit-identical network.
func TestLiveModelDeterminism(t *testing.T) {
	run := func() []byte {
		m := NewLiveModel(core.PDG, 120, 3, 99, 0)
		for i := 0; i < 10; i++ {
			m.Join()
		}
		for i := 0; i < 5; i++ {
			m.Leave(m.Graph().Oldest())
			m.Crash(m.Graph().Newest())
			m.AdvanceRound()
		}
		var buf bytes.Buffer
		if err := graphio.WriteEdgeList(&buf, m.Graph()); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same command sequence produced different networks (%d vs %d bytes)", len(a), len(b))
	}
}
