package serve

import (
	"fmt"
	"net"
	"strconv"
	"strings"
)

// ServeUDP answers the single-node probe fast path on conn until the
// connection is closed. The protocol is one ASCII datagram per probe:
//
//	request:  "ping"                → "ok v=<version>"
//	request:  "probe <id>"          → "ok alive=<0|1> v=<version>"
//	request:  "probe <id> <msg>"    → "ok alive=<0|1> informed=<0|1> v=<version>"
//	anything else / bad id / bad msg → "err <reason>"
//
// Probes are answered straight from the published snapshot — no command
// queue, no allocation-heavy JSON — so they stay cheap under load and
// report bounded-stale truth (the version tells the client how stale).
// Unknown and departed nodes answer alive=0; only protocol misuse and
// unknown messages are errors.
//
// Run it on its own goroutine: go srv.ServeUDP(conn). It returns the
// first non-timeout read error (net.ErrClosed after Stop-side close).
func (s *Server) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 512)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		resp := s.answerProbe(strings.TrimSpace(string(buf[:n])))
		_, _ = conn.WriteTo([]byte(resp), addr)
	}
}

func (s *Server) answerProbe(req string) string {
	snap := s.Current()
	fields := strings.Fields(req)
	if len(fields) == 0 {
		return "err empty probe"
	}
	switch fields[0] {
	case "ping":
		return fmt.Sprintf("ok v=%d", snap.Version)
	case "probe":
		if len(fields) < 2 || len(fields) > 3 {
			return "err want: probe <id> [msg]"
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "err bad node id " + strconv.Quote(fields[1])
		}
		msg := -1
		if len(fields) == 3 {
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return "err bad message id " + strconv.Quote(fields[2])
			}
			msg = m
		}
		alive, informed, perr := snap.Probe(id, msg)
		if perr != nil {
			return "err " + perr.Msg
		}
		if msg < 0 {
			return fmt.Sprintf("ok alive=%s v=%d", bit(alive), snap.Version)
		}
		return fmt.Sprintf("ok alive=%s informed=%s v=%d", bit(alive), bit(informed), snap.Version)
	default:
		return "err unknown probe verb " + strconv.Quote(fields[0])
	}
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
