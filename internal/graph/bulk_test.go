package graph

import (
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

// buildSpec draws a random edge spec over n fresh nodes: up to d targets
// per owner, uniform among the other slots.
func buildSpec(n, d int, r *rng.RNG) (starts []int32, targets []uint32) {
	starts = make([]int32, n+1)
	for s := 0; s < n; s++ {
		deg := r.Intn(d + 1)
		for j := 0; j < deg && n > 1; j++ {
			t := r.Intn(n - 1)
			if t >= s {
				t++
			}
			targets = append(targets, uint32(t))
		}
		starts[s+1] = int32(len(targets))
	}
	return starts, targets
}

func freshNodes(n int) (*Graph, []Handle) {
	g := New(n, 0)
	hs := make([]Handle, n)
	for i := range hs {
		hs[i] = g.AddNode(float64(i))
	}
	return g, hs
}

// TestWireSnapshotEdgesMatchesAddOutEdge pins the bulk path against the
// per-edge path: identical specs must produce graphs that agree on every
// adjacency observable, including in-list order (InSources visits sources
// in insertion order for both).
func TestWireSnapshotEdgesMatchesAddOutEdge(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 200, 20000} {
		starts, targets := buildSpec(n, 5, rng.New(uint64(n)))

		bulk, bh := freshNodes(n)
		bulk.WireSnapshotEdges(starts, targets)

		ref, rh := freshNodes(n)
		for s := 0; s < n; s++ {
			for _, tg := range targets[starts[s]:starts[s+1]] {
				ref.AddOutEdge(rh[s], rh[tg])
			}
		}

		if err := bulk.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: bulk invariants: %v", n, err)
		}
		for s := 0; s < n; s++ {
			hb, hr := bh[s], rh[s]
			if bulk.OutDegreeLive(hb) != ref.OutDegreeLive(hr) ||
				bulk.InDegreeLive(hb) != ref.InDegreeLive(hr) ||
				bulk.OutSlotCount(hb) != ref.OutSlotCount(hr) {
				t.Fatalf("n=%d slot %d: degree mismatch", n, s)
			}
			var ob, or []uint32
			bulk.OutTargets(hb, func(h Handle) bool { ob = append(ob, h.Slot); return true })
			ref.OutTargets(hr, func(h Handle) bool { or = append(or, h.Slot); return true })
			for i := range ob {
				if ob[i] != or[i] {
					t.Fatalf("n=%d slot %d: out target %d differs", n, s, i)
				}
			}
			ob, or = ob[:0], or[:0]
			bulk.InSources(hb, func(h Handle) bool { ob = append(ob, h.Slot); return true })
			ref.InSources(hr, func(h Handle) bool { or = append(or, h.Slot); return true })
			if len(ob) != len(or) {
				t.Fatalf("n=%d slot %d: in-list length differs", n, s)
			}
			for i := range ob {
				if ob[i] != or[i] {
					t.Fatalf("n=%d slot %d: in source %d differs (order)", n, s, i)
				}
			}
		}
	}
}

// TestWireSnapshotEdgesParMatchesSerial pins the sharded arena fill
// against the serial one: at every worker count the two must build graphs
// that agree on every adjacency observable, including the in-list order
// within each node (the sharded cursors stack per target in owner order,
// reproducing the serial layout bit for bit).
func TestWireSnapshotEdgesParMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 65, 200, 20000} {
		for _, workers := range []int{2, 3, 4, 8, 19} {
			starts, targets := buildSpec(n, 5, rng.New(uint64(n)))

			par, ph := freshNodes(n)
			par.WireSnapshotEdgesPar(starts, targets, workers)

			ser, sh := freshNodes(n)
			ser.WireSnapshotEdges(starts, targets)

			if err := par.CheckInvariants(); err != nil {
				t.Fatalf("n=%d workers=%d: invariants: %v", n, workers, err)
			}
			for s := 0; s < n; s++ {
				hp, hs := ph[s], sh[s]
				if par.OutSlotCount(hp) != ser.OutSlotCount(hs) {
					t.Fatalf("n=%d workers=%d slot %d: out-slot count differs", n, workers, s)
				}
				var op, os []uint32
				par.OutTargets(hp, func(h Handle) bool { op = append(op, h.Slot); return true })
				ser.OutTargets(hs, func(h Handle) bool { os = append(os, h.Slot); return true })
				if len(op) != len(os) {
					t.Fatalf("n=%d workers=%d slot %d: out degree differs", n, workers, s)
				}
				for i := range op {
					if op[i] != os[i] {
						t.Fatalf("n=%d workers=%d slot %d: out target %d differs", n, workers, s, i)
					}
				}
				op, os = op[:0], os[:0]
				par.InSources(hp, func(h Handle) bool { op = append(op, h.Slot); return true })
				ser.InSources(hs, func(h Handle) bool { os = append(os, h.Slot); return true })
				if len(op) != len(os) {
					t.Fatalf("n=%d workers=%d slot %d: in-list length differs", n, workers, s)
				}
				for i := range op {
					if op[i] != os[i] {
						t.Fatalf("n=%d workers=%d slot %d: in source %d differs (order)", n, workers, s, i)
					}
				}
			}
		}
	}
}

// TestAutoWorkersPolicy pins the shared auto-parallelism policy: always
// within [1, GOMAXPROCS], serial below the per-worker slot quota, and
// monotone non-decreasing in n.
func TestAutoWorkersPolicy(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	prev := 0
	for _, n := range []int{-5, 0, 100, autoWorkerSlotQuota - 1, autoWorkerSlotQuota,
		4 * autoWorkerSlotQuota, 1 << 22} {
		w := AutoWorkers(n)
		if w < 1 || w > max {
			t.Fatalf("AutoWorkers(%d) = %d, want within [1, %d]", n, w, max)
		}
		if w < prev {
			t.Fatalf("AutoWorkers not monotone: %d at n=%d after %d", w, n, prev)
		}
		prev = w
	}
	if AutoWorkers(autoWorkerSlotQuota-1) != 1 {
		t.Fatal("sub-quota networks must stay serial")
	}
}

// TestWireSnapshotEdgesAutoWorkers checks that a negative worker count
// resolves through AutoWorkers and still builds the serial layout.
func TestWireSnapshotEdgesAutoWorkers(t *testing.T) {
	const n = 500
	starts, targets := buildSpec(n, 4, rng.New(99))
	auto, ah := freshNodes(n)
	auto.WireSnapshotEdgesPar(starts, targets, -1)
	ser, sh := freshNodes(n)
	ser.WireSnapshotEdges(starts, targets)
	if err := auto.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		var oa, os []uint32
		auto.OutTargets(ah[s], func(h Handle) bool { oa = append(oa, h.Slot); return true })
		ser.OutTargets(sh[s], func(h Handle) bool { os = append(os, h.Slot); return true })
		if len(oa) != len(os) {
			t.Fatalf("slot %d: out degree differs under auto workers", s)
		}
		oa, os = oa[:0], os[:0]
		auto.InSources(ah[s], func(h Handle) bool { oa = append(oa, h.Slot); return true })
		ser.InSources(sh[s], func(h Handle) bool { os = append(os, h.Slot); return true })
		for i := range oa {
			if oa[i] != os[i] {
				t.Fatalf("slot %d: in source %d differs under auto workers", s, i)
			}
		}
	}
}

// TestWireSnapshotEdgesParPanics pins the sharded path's guard rails: the
// spec validation and the in-pass target checks must reject exactly what
// the serial path rejects, with the panic raised from the caller's
// goroutine.
func TestWireSnapshotEdgesParPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("self target", func() {
		g, _ := freshNodes(8)
		g.WireSnapshotEdgesPar([]int32{0, 1, 1, 1, 1, 1, 1, 1, 1}, []uint32{0}, 4)
	})
	expectPanic("target out of range", func() {
		g, _ := freshNodes(8)
		g.WireSnapshotEdgesPar([]int32{0, 1, 1, 1, 1, 1, 1, 1, 1}, []uint32{99}, 4)
	})
	expectPanic("decreasing starts", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdgesPar([]int32{0, 1, 0, 1}, []uint32{1}, 2)
	})
}

// TestWireSnapshotEdgesThenMutate checks the arena stays safe under the
// full mutation surface afterwards: redirects write in place, appends to a
// capacity-clamped in-list must reallocate rather than spill into the next
// node's segment, and removals regenerate cleanly.
func TestWireSnapshotEdgesThenMutate(t *testing.T) {
	n := 50
	g, hs := freshNodes(n)
	starts, targets := buildSpec(n, 4, rng.New(3))
	g.WireSnapshotEdges(starts, targets)

	// Grow node 0's in-list past its arena capacity: neighbors' lists must
	// be unaffected (a spill would corrupt slot order in their segments).
	before := make(map[int]int)
	for s := 1; s < n; s++ {
		before[s] = g.InDegreeLive(hs[s])
	}
	for i := 0; i < 8; i++ {
		h := g.AddNode(100)
		g.AddOutEdge(h, hs[0])
	}
	for s := 1; s < n; s++ {
		if g.InDegreeLive(hs[s]) != before[s] {
			t.Fatalf("slot %d in-degree changed after neighbor append", s)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after appends: %v", err)
	}

	// Kill a node and redirect every orphaned request (rule 3) — the
	// RemoveNode/RedirectOutEdge path over arena-backed lists.
	victim := hs[7]
	orphans := g.RemoveNode(victim, nil)
	r := rng.New(9)
	for _, e := range orphans {
		tgt := g.RandomAliveExcept(r, e.Src)
		g.RedirectOutEdge(e.Src, e.Slot, tgt)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after removal+redirect: %v", err)
	}
}

// TestWireSnapshotEdgesPanics pins the guard rails.
func TestWireSnapshotEdgesPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("bad starts length", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdges(make([]int32, 3), nil)
	})
	expectPanic("self target", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdges([]int32{0, 1, 1, 1}, []uint32{0})
	})
	expectPanic("target out of range", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdges([]int32{0, 1, 1, 1}, []uint32{9})
	})
	expectPanic("decreasing starts", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdges([]int32{0, 1, 0, 1}, []uint32{1})
	})
	expectPanic("starts do not cover targets", func() {
		g, _ := freshNodes(3)
		g.WireSnapshotEdges([]int32{0, 1, 1, 1}, []uint32{1, 2})
	})
	expectPanic("existing edges", func() {
		g, hs := freshNodes(3)
		g.AddOutEdge(hs[0], hs[1])
		g.WireSnapshotEdges([]int32{0, 0, 0, 0}, nil)
	})
	expectPanic("reused slot", func() {
		g, hs := freshNodes(3)
		g.RemoveNode(hs[1], nil)
		g.AddNode(5) // reuses the slot at generation 2
		g.WireSnapshotEdges([]int32{0, 0, 0, 0}, nil)
	})
	expectPanic("dead slot", func() {
		g, hs := freshNodes(3)
		g.RemoveNode(hs[2], nil)
		g.WireSnapshotEdges([]int32{0, 0, 0, 0}, nil)
	})
}
