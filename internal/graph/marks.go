package graph

// Marks is a reusable per-slot set of handles with O(1) clear, used by
// flooding and expansion code to deduplicate multigraph neighborhoods
// without allocating per query. A mark remembers the generation it was set
// for, so a slot reused by a later node never inherits a mark.
//
// The zero value is ready to use.
type Marks struct {
	epoch []uint64
	gen   []uint32
	cur   uint64
}

// Reset clears all marks in O(1).
func (m *Marks) Reset() { m.cur++ }

// Mark adds h to the set and reports whether it was newly added. Marking
// Nil is a no-op that returns false.
func (m *Marks) Mark(h Handle) bool {
	if h.IsNil() {
		return false
	}
	m.grow(int(h.Slot) + 1)
	if m.epoch[h.Slot] == m.cur+1 && m.gen[h.Slot] == h.Gen {
		return false
	}
	m.epoch[h.Slot] = m.cur + 1
	m.gen[h.Slot] = h.Gen
	return true
}

// Has reports whether h is in the set.
func (m *Marks) Has(h Handle) bool {
	if h.IsNil() || int(h.Slot) >= len(m.epoch) {
		return false
	}
	return m.epoch[h.Slot] == m.cur+1 && m.gen[h.Slot] == h.Gen
}

// Unmark removes h from the set. It is a no-op unless h is currently
// marked — the slot's mark must belong to the current epoch AND h's
// generation. Clearing on a generation match alone would mutate a stale
// entry left behind by a previous epoch, and structures sharing this
// epoch/gen discipline (the traffic plane's packed lane bitsets) rely on
// non-current state being inert.
func (m *Marks) Unmark(h Handle) {
	if m.Has(h) {
		m.epoch[h.Slot] = 0
	}
}

func (m *Marks) grow(n int) {
	if n <= len(m.epoch) {
		return
	}
	ne := make([]uint64, n*2)
	copy(ne, m.epoch)
	m.epoch = ne
	ng := make([]uint32, n*2)
	copy(ng, m.gen)
	m.gen = ng
}
