package graph

import (
	"sort"
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

// refGraph is a deliberately naive reference implementation of the same
// semantics: nodes keyed by unique ids, out-edges as (owner, slot, target)
// triples, eager cleanup on death. Long random operation scripts are run
// against both implementations and every observable is compared.
type refGraph struct {
	nextID int
	alive  map[int]bool
	birth  map[int]int
	out    map[int][]int // owner -> slot-indexed targets (-1 = dead target)
}

func newRefGraph() *refGraph {
	return &refGraph{alive: map[int]bool{}, birth: map[int]int{}, out: map[int][]int{}}
}

func (r *refGraph) addNode() int {
	id := r.nextID
	r.nextID++
	r.alive[id] = true
	r.birth[id] = id
	return id
}

func (r *refGraph) addEdge(u, v int) int {
	r.out[u] = append(r.out[u], v)
	return len(r.out[u]) - 1
}

func (r *refGraph) redirect(u, slot, v int) { r.out[u][slot] = v }

// remove kills id and returns the live in-edges (owner, slot) it had.
func (r *refGraph) remove(id int) [][2]int {
	var orphans [][2]int
	for u, targets := range r.out {
		if !r.alive[u] {
			continue
		}
		for slot, v := range targets {
			if v == id {
				orphans = append(orphans, [2]int{u, slot})
			}
		}
	}
	delete(r.alive, id)
	delete(r.out, id)
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i][0] != orphans[j][0] {
			return orphans[i][0] < orphans[j][0]
		}
		return orphans[i][1] < orphans[j][1]
	})
	return orphans
}

func (r *refGraph) neighbors(id int) map[int]int {
	ns := map[int]int{}
	for _, v := range r.out[id] {
		if r.alive[v] {
			ns[v]++
		}
	}
	for u, targets := range r.out {
		if !r.alive[u] {
			continue
		}
		for _, v := range targets {
			if v == id {
				ns[u]++
			}
		}
	}
	return ns
}

// TestGraphMatchesReference drives both implementations through the same
// random script and compares degrees, neighborhoods, orphan lists and
// counts after every operation batch.
func TestGraphMatchesReference(t *testing.T) {
	r := rng.New(2024)
	g := New(64, 3)
	ref := newRefGraph()

	// id <-> handle correspondence for alive nodes.
	toHandle := map[int]Handle{}
	toID := map[Handle]int{}
	var ids []int // alive ids, for uniform choices

	addNode := func() {
		h := g.AddNode(float64(len(ids)))
		id := ref.addNode()
		toHandle[id] = h
		toID[h] = id
		ids = append(ids, id)
	}
	removeID := func(i int) {
		id := ids[i]
		ids[i] = ids[len(ids)-1]
		ids = ids[:len(ids)-1]
		h := toHandle[id]

		gotOrphans := g.RemoveNode(h, nil)
		wantOrphans := ref.remove(id)
		if len(gotOrphans) != len(wantOrphans) {
			t.Fatalf("orphan count %d != %d", len(gotOrphans), len(wantOrphans))
		}
		got := make([][2]int, len(gotOrphans))
		for k, e := range gotOrphans {
			got[k] = [2]int{toID[e.Src], e.Slot}
		}
		sort.Slice(got, func(a, b int) bool {
			if got[a][0] != got[b][0] {
				return got[a][0] < got[b][0]
			}
			return got[a][1] < got[b][1]
		})
		for k := range got {
			if got[k] != wantOrphans[k] {
				t.Fatalf("orphans diverge: %v vs %v", got, wantOrphans)
			}
		}
		// Half the time, regenerate the orphaned slots identically —
		// iterating the canonical (sorted) order on both sides so the two
		// graphs apply the same redirects.
		if r.Bool() && len(ids) > 1 {
			for _, e := range got {
				srcID, slot := e[0], e[1]
				tgtID := ids[r.Intn(len(ids))]
				for tgtID == srcID {
					tgtID = ids[r.Intn(len(ids))]
				}
				g.RedirectOutEdge(toHandle[srcID], slot, toHandle[tgtID])
				ref.redirect(srcID, slot, tgtID)
			}
		}
		delete(toHandle, id)
		delete(toID, h)
	}
	addEdge := func() {
		if len(ids) < 2 {
			return
		}
		u := ids[r.Intn(len(ids))]
		v := ids[r.Intn(len(ids))]
		for v == u {
			v = ids[r.Intn(len(ids))]
		}
		gotSlot := g.AddOutEdge(toHandle[u], toHandle[v])
		wantSlot := ref.addEdge(u, v)
		if gotSlot != wantSlot {
			t.Fatalf("slot index %d != %d", gotSlot, wantSlot)
		}
	}
	check := func() {
		if g.NumAlive() != len(ref.alive) {
			t.Fatalf("alive %d != %d", g.NumAlive(), len(ref.alive))
		}
		for id, h := range toHandle {
			if !g.IsAlive(h) {
				t.Fatalf("node %d should be alive", id)
			}
			want := ref.neighbors(id)
			got := map[int]int{}
			g.Neighbors(h, func(v Handle) bool {
				got[toID[v]]++
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("node %d: neighbor sets differ: %v vs %v", id, got, want)
			}
			for v, c := range want {
				if got[v] != c {
					t.Fatalf("node %d: multiplicity of %d: %d vs %d", id, v, got[v], c)
				}
			}
			wantDeg := 0
			for _, c := range want {
				wantDeg += c
			}
			if d := g.DegreeLive(h); d != wantDeg {
				t.Fatalf("node %d: degree %d vs %d", id, d, wantDeg)
			}
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 3000; step++ {
		switch {
		case len(ids) < 3 || r.Float64() < 0.4:
			addNode()
		case r.Float64() < 0.55:
			addEdge()
		default:
			removeID(r.Intn(len(ids)))
		}
		if step%101 == 0 {
			check()
		}
	}
	check()
}
