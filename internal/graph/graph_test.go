package graph

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/rng"
)

func mustInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestAddNodeBasics(t *testing.T) {
	g := New(4, 2)
	if g.NumAlive() != 0 {
		t.Fatal("fresh graph not empty")
	}
	a := g.AddNode(1)
	b := g.AddNode(2)
	if !g.IsAlive(a) || !g.IsAlive(b) {
		t.Fatal("new nodes must be alive")
	}
	if g.NumAlive() != 2 {
		t.Fatalf("NumAlive = %d", g.NumAlive())
	}
	if a == b {
		t.Fatal("handles must differ")
	}
	if g.BirthTime(a) != 1 || g.BirthTime(b) != 2 {
		t.Fatal("birth times wrong")
	}
	if !g.Older(a, b) || g.Older(b, a) {
		t.Fatal("age order wrong")
	}
	mustInvariants(t, g)
}

func TestNilHandle(t *testing.T) {
	g := New(0, 0)
	if g.IsAlive(Nil) {
		t.Fatal("Nil must not be alive")
	}
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() false")
	}
	if Nil.String() != "nil" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	h := g.AddNode(0)
	if h.IsNil() {
		t.Fatal("real handle reported nil")
	}
}

func TestRemoveNodeInvalidates(t *testing.T) {
	g := New(2, 1)
	a := g.AddNode(0)
	g.RemoveNode(a, nil)
	if g.IsAlive(a) {
		t.Fatal("removed node still alive")
	}
	if g.NumAlive() != 0 {
		t.Fatal("NumAlive after removal")
	}
	mustInvariants(t, g)
}

func TestSlotReuseBumpsGeneration(t *testing.T) {
	g := New(1, 1)
	a := g.AddNode(0)
	g.RemoveNode(a, nil)
	b := g.AddNode(1)
	if b.Slot != a.Slot {
		t.Fatalf("expected slot reuse, got %v then %v", a, b)
	}
	if b.Gen == a.Gen {
		t.Fatal("generation not bumped on reuse")
	}
	if g.IsAlive(a) {
		t.Fatal("stale handle alive after reuse")
	}
	if !g.IsAlive(b) {
		t.Fatal("new handle not alive")
	}
}

func TestRemoveNodePanicsOnDead(t *testing.T) {
	g := New(1, 1)
	a := g.AddNode(0)
	g.RemoveNode(a, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double remove did not panic")
		}
	}()
	g.RemoveNode(a, nil)
}

func TestAddOutEdgeSymmetry(t *testing.T) {
	g := New(3, 2)
	u, v := g.AddNode(0), g.AddNode(1)
	idx := g.AddOutEdge(u, v)
	if idx != 0 {
		t.Fatalf("first out slot = %d", idx)
	}
	var outs, ins []Handle
	g.OutTargets(u, func(h Handle) bool { outs = append(outs, h); return true })
	g.InSources(v, func(h Handle) bool { ins = append(ins, h); return true })
	if len(outs) != 1 || outs[0] != v {
		t.Fatalf("OutTargets(u) = %v", outs)
	}
	if len(ins) != 1 || ins[0] != u {
		t.Fatalf("InSources(v) = %v", ins)
	}
	if g.OutDegreeLive(u) != 1 || g.InDegreeLive(v) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.DegreeLive(u) != 1 || g.DegreeLive(v) != 1 {
		t.Fatal("DegreeLive wrong")
	}
	mustInvariants(t, g)
}

func TestParallelEdgesKept(t *testing.T) {
	g := New(2, 2)
	u, v := g.AddNode(0), g.AddNode(1)
	g.AddOutEdge(u, v)
	g.AddOutEdge(u, v)
	if d := g.OutDegreeLive(u); d != 2 {
		t.Fatalf("parallel out-degree = %d", d)
	}
	if d := g.InDegreeLive(v); d != 2 {
		t.Fatalf("parallel in-degree = %d", d)
	}
	count := 0
	g.Neighbors(u, func(h Handle) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Neighbors yielded %d, want duplicate", count)
	}
	mustInvariants(t, g)
}

func TestDeadTargetSkipped(t *testing.T) {
	g := New(3, 1)
	u, v := g.AddNode(0), g.AddNode(1)
	g.AddOutEdge(u, v)
	g.RemoveNode(v, nil)
	if d := g.OutDegreeLive(u); d != 0 {
		t.Fatalf("out-degree after target death = %d", d)
	}
	if !g.IsIsolated(u) {
		t.Fatal("u should be isolated")
	}
	// The stale out-slot is retained (no-regeneration semantics).
	if n := g.OutSlotCount(u); n != 1 {
		t.Fatalf("OutSlotCount = %d", n)
	}
	if tgt, ok := g.OutTarget(u, 0); !ok || g.IsAlive(tgt) {
		t.Fatal("stale target should be reported dead")
	}
	mustInvariants(t, g)
}

func TestDeadSourceSkippedAndCompacted(t *testing.T) {
	g := New(3, 1)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, w)
	g.AddOutEdge(v, w)
	g.RemoveNode(u, nil)
	if d := g.InDegreeLive(w); d != 1 {
		t.Fatalf("in-degree after source death = %d", d)
	}
	// InSources compacts: internal in-list should now hold only v's ref.
	if n := len(g.nodes[w.Slot].in); n != 1 {
		t.Fatalf("in-list not compacted: %d entries", n)
	}
	mustInvariants(t, g)
}

func TestRemoveNodeReturnsLiveInEdges(t *testing.T) {
	g := New(4, 1)
	a, b, c := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	target := g.AddNode(3)
	g.AddOutEdge(a, target)
	g.AddOutEdge(b, target)
	g.AddOutEdge(c, target)
	g.RemoveNode(b, nil) // b's edge must not be reported
	got := g.RemoveNode(target, nil)
	if len(got) != 2 {
		t.Fatalf("live in-edges = %v", got)
	}
	seen := map[Handle]int{}
	for _, e := range got {
		seen[e.Src]++
		if e.Slot != 0 {
			t.Fatalf("unexpected slot %d", e.Slot)
		}
	}
	if seen[a] != 1 || seen[c] != 1 {
		t.Fatalf("wrong sources: %v", got)
	}
	mustInvariants(t, g)
}

func TestRemoveNodeAppendsToBuf(t *testing.T) {
	g := New(3, 1)
	u, v := g.AddNode(0), g.AddNode(1)
	g.AddOutEdge(u, v)
	buf := make([]InEdge, 0, 4)
	buf = append(buf, InEdge{}) // pre-existing sentinel
	buf = g.RemoveNode(v, buf)
	if len(buf) != 2 {
		t.Fatalf("buf = %v", buf)
	}
}

func TestRedirectOutEdge(t *testing.T) {
	g := New(4, 1)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, v)
	orphans := g.RemoveNode(v, nil)
	if len(orphans) != 1 || orphans[0].Src != u {
		t.Fatalf("orphans = %v", orphans)
	}
	g.RedirectOutEdge(u, orphans[0].Slot, w)
	if d := g.OutDegreeLive(u); d != 1 {
		t.Fatalf("out-degree after redirect = %d", d)
	}
	if d := g.InDegreeLive(w); d != 1 {
		t.Fatalf("w in-degree = %d", d)
	}
	mustInvariants(t, g)
}

func TestRedirectPanicsOverLiveEdge(t *testing.T) {
	g := New(3, 1)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, v)
	defer func() {
		if recover() == nil {
			t.Fatal("redirect over live edge did not panic")
		}
	}()
	g.RedirectOutEdge(u, 0, w)
}

func TestStaleInRefAfterSlotReuse(t *testing.T) {
	// u points at v; v dies; v's slot is reused by x. u's stale out-slot
	// must NOT count as an edge to x, and x must not list u as a source.
	g := New(3, 1)
	u := g.AddNode(0)
	v := g.AddNode(1)
	g.AddOutEdge(u, v)
	g.RemoveNode(v, nil)
	x := g.AddNode(2)
	if x.Slot != v.Slot {
		t.Skip("allocator did not reuse slot; test assumption broken")
	}
	if d := g.OutDegreeLive(u); d != 0 {
		t.Fatalf("stale edge resurrected: out-degree %d", d)
	}
	if d := g.InDegreeLive(x); d != 0 {
		t.Fatalf("reused slot inherited in-edges: %d", d)
	}
	mustInvariants(t, g)
}

func TestRedirectedAwayInRefInvalid(t *testing.T) {
	// u -> v, v dies, u redirected to w. If v's slot is reused by x, the
	// old in-ref in that slot was cleared on death; but also check the
	// subtler case: u -> v, then u's slot entry redirected; w's in-list
	// validity requires out[slot] to point back.
	g := New(4, 1)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, v)
	g.RemoveNode(v, nil)
	g.RedirectOutEdge(u, 0, w)
	// Now kill w; the returned orphan must be u's slot 0.
	orphans := g.RemoveNode(w, nil)
	if len(orphans) != 1 || orphans[0].Src != u || orphans[0].Slot != 0 {
		t.Fatalf("orphans = %v", orphans)
	}
	mustInvariants(t, g)
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := New(4, 3)
	u := g.AddNode(0)
	for i := 0; i < 3; i++ {
		v := g.AddNode(float64(i + 1))
		g.AddOutEdge(u, v)
	}
	count := 0
	g.Neighbors(u, func(Handle) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNeighborsCoverInAndOut(t *testing.T) {
	g := New(3, 1)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, v) // v's in
	g.AddOutEdge(v, w) // v's out
	var ns []Handle
	g.Neighbors(v, func(h Handle) bool { ns = append(ns, h); return true })
	if len(ns) != 2 {
		t.Fatalf("neighbors of v = %v", ns)
	}
	if !(ns[0] == w && ns[1] == u) { // out targets first, then in sources
		t.Fatalf("unexpected order/content: %v", ns)
	}
}

func TestForEachAliveAndAliveHandles(t *testing.T) {
	g := New(5, 1)
	var hs []Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, g.AddNode(float64(i)))
	}
	g.RemoveNode(hs[2], nil)
	all := g.AliveHandles()
	if len(all) != 4 {
		t.Fatalf("AliveHandles len = %d", len(all))
	}
	for _, h := range all {
		if !g.IsAlive(h) {
			t.Fatalf("dead handle in AliveHandles: %v", h)
		}
	}
	n := 0
	g.ForEachAlive(func(Handle) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatal("ForEachAlive early stop broken")
	}
}

func TestRandomAliveEmpty(t *testing.T) {
	g := New(0, 0)
	r := rng.New(1)
	if h := g.RandomAlive(r); !h.IsNil() {
		t.Fatal("RandomAlive on empty graph must be Nil")
	}
	if h := g.RandomAliveExcept(r, Nil); !h.IsNil() {
		t.Fatal("RandomAliveExcept on empty graph must be Nil")
	}
}

func TestRandomAliveExceptSingleton(t *testing.T) {
	g := New(1, 0)
	r := rng.New(2)
	a := g.AddNode(0)
	if h := g.RandomAliveExcept(r, a); !h.IsNil() {
		t.Fatal("no other node exists; want Nil")
	}
	if h := g.RandomAlive(r); h != a {
		t.Fatal("RandomAlive must return the only node")
	}
}

func TestRandomAliveExceptNeverReturnsExcluded(t *testing.T) {
	g := New(10, 0)
	r := rng.New(3)
	var hs []Handle
	for i := 0; i < 10; i++ {
		hs = append(hs, g.AddNode(float64(i)))
	}
	excl := hs[4]
	for i := 0; i < 5000; i++ {
		if got := g.RandomAliveExcept(r, excl); got == excl {
			t.Fatal("excluded handle returned")
		} else if !g.IsAlive(got) {
			t.Fatal("dead handle returned")
		}
	}
}

func TestRandomAliveExceptUniform(t *testing.T) {
	g := New(5, 0)
	r := rng.New(4)
	var hs []Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, g.AddNode(float64(i)))
	}
	counts := map[Handle]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[g.RandomAliveExcept(r, hs[0])]++
	}
	want := float64(draws) / 4
	for h, c := range counts {
		if h == hs[0] {
			t.Fatal("excluded drawn")
		}
		if diff := float64(c) - want; diff > 0.05*want || diff < -0.05*want {
			t.Fatalf("non-uniform draw: %v", counts)
		}
	}
}

func TestRandomAliveExceptDeadExclusion(t *testing.T) {
	g := New(3, 0)
	r := rng.New(5)
	a, b := g.AddNode(0), g.AddNode(1)
	g.RemoveNode(a, nil)
	// Excluding a dead handle behaves like no exclusion.
	for i := 0; i < 100; i++ {
		if got := g.RandomAliveExcept(r, a); got != b {
			t.Fatalf("got %v, want %v", got, b)
		}
	}
}

func TestOldestNewest(t *testing.T) {
	g := New(4, 0)
	a := g.AddNode(0)
	b := g.AddNode(1)
	c := g.AddNode(2)
	if g.Oldest() != a || g.Newest() != c {
		t.Fatal("oldest/newest wrong")
	}
	g.RemoveNode(a, nil)
	if g.Oldest() != b {
		t.Fatal("oldest after removal wrong")
	}
	empty := New(0, 0)
	if !empty.Oldest().IsNil() || !empty.Newest().IsNil() {
		t.Fatal("oldest/newest of empty graph must be Nil")
	}
}

func TestNumEdgesLive(t *testing.T) {
	g := New(4, 2)
	u, v, w := g.AddNode(0), g.AddNode(1), g.AddNode(2)
	g.AddOutEdge(u, v)
	g.AddOutEdge(u, w)
	g.AddOutEdge(v, w)
	if n := g.NumEdgesLive(); n != 3 {
		t.Fatalf("NumEdgesLive = %d", n)
	}
	g.RemoveNode(w, nil)
	if n := g.NumEdgesLive(); n != 1 {
		t.Fatalf("NumEdgesLive after removal = %d", n)
	}
}

func TestBirthSeqMonotone(t *testing.T) {
	g := New(3, 0)
	a := g.AddNode(0)
	g.RemoveNode(a, nil)
	b := g.AddNode(1) // reuses slot, must still get a later birth seq
	c := g.AddNode(2)
	if !(g.BirthSeq(b) < g.BirthSeq(c)) {
		t.Fatal("birth sequence not monotone")
	}
}

// --- randomized model-like workload property test ---

func TestRandomWorkloadInvariants(t *testing.T) {
	r := rng.New(42)
	g := New(64, 3)
	var live []Handle
	const d = 3
	for step := 0; step < 4000; step++ {
		switch {
		case len(live) < 2 || r.Float64() < 0.55:
			h := g.AddNode(float64(step))
			for i := 0; i < d; i++ {
				if tgt := g.RandomAliveExcept(r, h); !tgt.IsNil() {
					g.AddOutEdge(h, tgt)
				}
			}
			live = append(live, h)
		default:
			i := r.Intn(len(live))
			victim := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			orphans := g.RemoveNode(victim, nil)
			// Regenerate half the time, exercising both model families.
			if r.Bool() {
				for _, e := range orphans {
					if tgt := g.RandomAliveExcept(r, e.Src); !tgt.IsNil() {
						g.RedirectOutEdge(e.Src, e.Slot, tgt)
					}
				}
			}
		}
		if step%257 == 0 {
			mustInvariants(t, g)
		}
	}
	mustInvariants(t, g)
	if g.NumAlive() != len(live) {
		t.Fatalf("NumAlive=%d, tracked %d", g.NumAlive(), len(live))
	}
}

func TestRandomAliveUniformOverChurn(t *testing.T) {
	// After heavy churn, RandomAlive must still be uniform over survivors.
	r := rng.New(7)
	g := New(32, 0)
	var live []Handle
	for i := 0; i < 100; i++ {
		live = append(live, g.AddNode(float64(i)))
	}
	for i := 0; i < 80; i++ {
		j := r.Intn(len(live))
		g.RemoveNode(live[j], nil)
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	counts := map[Handle]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[g.RandomAlive(r)]++
	}
	want := float64(draws) / float64(len(live))
	for _, h := range live {
		c := float64(counts[h])
		if c < 0.9*want || c > 1.1*want {
			t.Fatalf("biased sampling: node %v drawn %v times, want ~%v", h, c, want)
		}
	}
}

// --- Marks ---

func TestMarksBasics(t *testing.T) {
	g := New(3, 0)
	a, b := g.AddNode(0), g.AddNode(1)
	var m Marks
	if m.Has(a) {
		t.Fatal("fresh marks not empty")
	}
	if !m.Mark(a) {
		t.Fatal("first Mark must report new")
	}
	if m.Mark(a) {
		t.Fatal("second Mark must report existing")
	}
	if !m.Has(a) || m.Has(b) {
		t.Fatal("Has wrong")
	}
	m.Reset()
	if m.Has(a) {
		t.Fatal("Reset did not clear")
	}
}

func TestMarksGenerationAware(t *testing.T) {
	g := New(1, 0)
	a := g.AddNode(0)
	var m Marks
	m.Mark(a)
	g.RemoveNode(a, nil)
	b := g.AddNode(1) // same slot, new generation
	if m.Has(b) {
		t.Fatal("mark leaked across generations")
	}
}

func TestMarksUnmark(t *testing.T) {
	g := New(1, 0)
	a := g.AddNode(0)
	var m Marks
	m.Mark(a)
	m.Unmark(a)
	if m.Has(a) {
		t.Fatal("Unmark failed")
	}
	if !m.Mark(a) {
		t.Fatal("Mark after Unmark must report new")
	}
	m.Unmark(Handle{Slot: 999, Gen: 3}) // out of range: no panic
	m.Unmark(Nil)                       // Nil: no panic
}

// TestMarksUnmarkEpochCurrency pins the epoch side of the Unmark contract:
// only a current-epoch mark may be cleared. A handle whose slot carries a
// mark from a previous epoch is non-current even when the generation
// matches, and unmarking it must leave the stored epoch word untouched —
// mutating stale state would break any structure reusing this epoch/gen
// discipline (the traffic plane's packed lane bitsets do).
func TestMarksUnmarkEpochCurrency(t *testing.T) {
	g := New(1, 0)
	a := g.AddNode(0)
	var m Marks
	m.Mark(a)
	stored := m.epoch[a.Slot]
	m.Reset() // a's mark is now stale: same gen, previous epoch
	if m.Has(a) {
		t.Fatal("Reset did not clear")
	}
	m.Unmark(a)
	if got := m.epoch[a.Slot]; got != stored {
		t.Fatalf("Unmark of a stale-epoch handle mutated the stored epoch: %d -> %d", stored, got)
	}
}

// TestMarksUnmarkGenCurrency: a gen-mismatched handle (slot reused by a
// later node) must not clear the current occupant's mark.
func TestMarksUnmarkGenCurrency(t *testing.T) {
	g := New(1, 0)
	a := g.AddNode(0)
	g.RemoveNode(a, nil)
	b := g.AddNode(1) // same slot, new generation
	var m Marks
	m.Mark(b)
	m.Unmark(a) // stale handle: must be a no-op
	if !m.Has(b) {
		t.Fatal("Unmark of a stale-generation handle cleared the current mark")
	}
}

func TestMarksNil(t *testing.T) {
	var m Marks
	if m.Mark(Nil) {
		t.Fatal("marking Nil must be a no-op")
	}
	if m.Has(Nil) {
		t.Fatal("Nil must never be marked")
	}
}

func TestMarksManyResets(t *testing.T) {
	g := New(2, 0)
	a := g.AddNode(0)
	var m Marks
	for i := 0; i < 1000; i++ {
		if m.Has(a) {
			t.Fatal("stale mark after reset")
		}
		m.Mark(a)
		if !m.Has(a) {
			t.Fatal("mark lost")
		}
		m.Reset()
	}
}

func BenchmarkAddRemoveNode(b *testing.B) {
	g := New(1024, 3)
	r := rng.New(1)
	var live []Handle
	for i := 0; i < 1024; i++ {
		live = append(live, g.AddNode(float64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := g.AddNode(float64(i))
		for j := 0; j < 3; j++ {
			if tgt := g.RandomAliveExcept(r, h); !tgt.IsNil() {
				g.AddOutEdge(h, tgt)
			}
		}
		live = append(live, h)
		victim := r.Intn(len(live))
		g.RemoveNode(live[victim], nil)
		live[victim] = live[len(live)-1]
		live = live[:len(live)-1]
	}
}

func BenchmarkNeighborsIteration(b *testing.B) {
	g := New(1024, 8)
	r := rng.New(1)
	var live []Handle
	for i := 0; i < 1024; i++ {
		h := g.AddNode(float64(i))
		for j := 0; j < 8; j++ {
			if tgt := g.RandomAliveExcept(r, h); !tgt.IsNil() {
				g.AddOutEdge(h, tgt)
			}
		}
		live = append(live, h)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		g.Neighbors(live[i%len(live)], func(Handle) bool { sink++; return true })
	}
	_ = sink
}
