package graph

import "fmt"

// WireSnapshotEdges bulk-installs request edges into a freshly built
// snapshot. The graph must have been constructed by AddNode calls alone:
// every arena slot alive at generation 1, no slot ever reused, no edge
// anywhere. Owners are the arena slots 0 … NumSlots()−1 in order; slot s
// makes the requests targets[starts[s]:starts[s+1]] (target arena slots,
// in out-slot order).
//
// The result is exactly what the corresponding AddOutEdge calls in owner
// order would build — pinned by TestWireSnapshotEdgesMatchesAddOutEdge —
// but the construction differs where it matters at scale: every out- and
// in-list is carved at exact capacity from one shared arena each, and the
// in-lists are filled by a counting sort over target slots. The per-edge
// path pays two aliveness checks and an amortized slice-growth append per
// edge — ~5× the wall time of the counting sort at n = 10⁶ — which is why
// this is the construction path of the stationary-snapshot samplers in
// package core (see DESIGN.md).
//
// Later mutation stays safe: the arena sub-slices are capacity-clamped, so
// a post-snapshot append to any node's in-list reallocates that node's
// slice instead of spilling into its neighbor's segment.
//
// It panics if the graph is not a fresh snapshot, the spec shape is
// inconsistent, or any target is out of range or equal to its owner.
func (g *Graph) WireSnapshotEdges(starts []int32, targets []uint32) {
	nSlots := len(g.nodes)
	if len(starts) != nSlots+1 {
		panic("graph: WireSnapshotEdges starts must have NumSlots()+1 entries")
	}
	if len(g.free) != 0 || len(g.alive) != nSlots {
		panic("graph: WireSnapshotEdges requires a fresh snapshot (no dead or reused slots)")
	}
	for s := 0; s < nSlots; s++ {
		nd := &g.nodes[s]
		if nd.gen != 1 || len(nd.out) != 0 || len(nd.in) != 0 {
			panic("graph: WireSnapshotEdges requires generation-1 nodes with no edges")
		}
	}
	if starts[0] != 0 || int(starts[nSlots]) != len(targets) {
		panic("graph: WireSnapshotEdges starts must cover targets exactly")
	}

	nEdges := len(targets)
	outArena := make([]Handle, nEdges)
	inDeg := make([]int32, nSlots)
	for s := 0; s < nSlots; s++ {
		a, b := starts[s], starts[s+1]
		if b < a {
			panic("graph: WireSnapshotEdges starts must be non-decreasing")
		}
		seg := outArena[a:b:b]
		for k, t := range targets[a:b] {
			if int(t) >= nSlots || int(t) == s {
				panic(fmt.Sprintf("graph: WireSnapshotEdges target %d of slot %d invalid", t, s))
			}
			seg[k] = Handle{Slot: t, Gen: 1}
			inDeg[t]++
		}
		g.nodes[s].out = seg
	}

	// Counting-sort the in-lists: prefix sums give each slot its segment of
	// the shared arena, then every in-ref drops at its slot's cursor.
	inStart := make([]int32, nSlots+1)
	for s := 0; s < nSlots; s++ {
		inStart[s+1] = inStart[s] + inDeg[s]
	}
	inArena := make([]inRef, nEdges)
	cursor := inDeg // reuse as cursors: rewind to segment starts
	copy(cursor, inStart[:nSlots])
	for s := 0; s < nSlots; s++ {
		src := Handle{Slot: uint32(s), Gen: 1}
		for k, t := range targets[starts[s]:starts[s+1]] {
			c := cursor[t]
			inArena[c] = inRef{src: src, slot: uint32(k)}
			cursor[t] = c + 1
		}
	}
	for s := 0; s < nSlots; s++ {
		a, b := inStart[s], inStart[s+1]
		if a != b {
			g.nodes[s].in = inArena[a:b:b]
		}
	}
}
