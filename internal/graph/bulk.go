package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// autoWorkerSlotQuota is the minimum per-worker slot count the AutoWorkers
// policy aims for: below it, goroutine spawn and barrier overhead on the
// sharded passes outweighs the per-slot work they parallelize.
const autoWorkerSlotQuota = 1 << 15

// AutoWorkers returns the worker-shard count the automatic parallelism
// policy picks for a structure of roughly n slots: one worker per
// autoWorkerSlotQuota slots, at least 1 and at most GOMAXPROCS. It backs
// every "0 = auto" parallelism knob (the cmds' -floodpar 0, the negative
// Parallelism sentinels of flood.Options and expansion.TrackerConfig, and
// negative worker counts here and in core.SampleStationaryPar): results
// are bit-for-bit identical at every worker count, so the policy only
// chooses how many cores to spend, never what is computed.
func AutoWorkers(n int) int {
	w := n / autoWorkerSlotQuota
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WireSnapshotEdges bulk-installs request edges into a freshly built
// snapshot. The graph must have been constructed by AddNode calls alone:
// every arena slot alive at generation 1, no slot ever reused, no edge
// anywhere. Owners are the arena slots 0 … NumSlots()−1 in order; slot s
// makes the requests targets[starts[s]:starts[s+1]] (target arena slots,
// in out-slot order).
//
// The result is exactly what the corresponding AddOutEdge calls in owner
// order would build — pinned by TestWireSnapshotEdgesMatchesAddOutEdge —
// but the construction differs where it matters at scale: every out- and
// in-list is carved at exact capacity from one shared arena each, and the
// in-lists are filled by a counting sort over target slots. The per-edge
// path pays two aliveness checks and an amortized slice-growth append per
// edge — ~5× the wall time of the counting sort at n = 10⁶ — which is why
// this is the construction path of the stationary-snapshot samplers in
// package core (see DESIGN.md).
//
// Later mutation stays safe: the arena sub-slices are capacity-clamped, so
// a post-snapshot append to any node's in-list reallocates that node's
// slice instead of spilling into its neighbor's segment.
//
// It panics if the graph is not a fresh snapshot, the spec shape is
// inconsistent, or any target is out of range or equal to its owner.
func (g *Graph) WireSnapshotEdges(starts []int32, targets []uint32) {
	g.WireSnapshotEdgesPar(starts, targets, 1)
}

// WireSnapshotEdgesPar is WireSnapshotEdges with the two counting-sort
// arena passes sharded over `workers` goroutines by slot range — the same
// per-slot-range idiom the flooding engine uses for its cut. The out pass
// splits the owner slots into contiguous ranges of roughly equal edge
// count; each worker fills its owners' out segments while histogramming
// target slots into a private count row. Stacking the rows per target
// (worker w's edges into slot t land at inStart[t] + Σ_{w'<w} counts[w'][t])
// turns them into exact disjoint cursors for the in pass, so the filled
// arenas — including the in-list order within every node — are bit-for-bit
// what the serial pass builds, at any worker count (pinned by
// TestWireSnapshotEdgesParMatchesSerial). workers == 0 or 1 runs serially,
// negative selects AutoWorkers(NumSlots()); the sharded path costs
// ~4·workers·NumSlots() bytes of transient count rows.
func (g *Graph) WireSnapshotEdgesPar(starts []int32, targets []uint32, workers int) {
	nSlots := len(g.nodes)
	if workers < 0 {
		workers = AutoWorkers(nSlots)
	}
	if len(starts) != nSlots+1 {
		panic("graph: WireSnapshotEdges starts must have NumSlots()+1 entries")
	}
	if len(g.free) != 0 || len(g.alive) != nSlots {
		panic("graph: WireSnapshotEdges requires a fresh snapshot (no dead or reused slots)")
	}
	for s := 0; s < nSlots; s++ {
		nd := &g.nodes[s]
		if nd.gen != 1 || len(nd.out) != 0 || len(nd.in) != 0 {
			panic("graph: WireSnapshotEdges requires generation-1 nodes with no edges")
		}
		if starts[s+1] < starts[s] {
			panic("graph: WireSnapshotEdges starts must be non-decreasing")
		}
	}
	if starts[0] != 0 || int(starts[nSlots]) != len(targets) {
		panic("graph: WireSnapshotEdges starts must cover targets exactly")
	}
	if workers > nSlots {
		workers = nSlots
	}
	if workers <= 1 {
		g.wireSerial(starts, targets)
		return
	}
	g.wireSharded(starts, targets, workers)
}

// wireSerial is the single-threaded arena fill.
func (g *Graph) wireSerial(starts []int32, targets []uint32) {
	nSlots := len(g.nodes)
	nEdges := len(targets)
	outArena := make([]Handle, nEdges)
	inDeg := make([]int32, nSlots)
	for s := 0; s < nSlots; s++ {
		a, b := starts[s], starts[s+1]
		seg := outArena[a:b:b]
		for k, t := range targets[a:b] {
			if int(t) >= nSlots || int(t) == s {
				panic(fmt.Sprintf("graph: WireSnapshotEdges target %d of slot %d invalid", t, s))
			}
			seg[k] = Handle{Slot: t, Gen: 1}
			inDeg[t]++
		}
		g.nodes[s].out = seg
	}

	// Counting-sort the in-lists: prefix sums give each slot its segment of
	// the shared arena, then every in-ref drops at its slot's cursor.
	inStart := make([]int32, nSlots+1)
	for s := 0; s < nSlots; s++ {
		inStart[s+1] = inStart[s] + inDeg[s]
	}
	inArena := make([]inRef, nEdges)
	cursor := inDeg // reuse as cursors: rewind to segment starts
	copy(cursor, inStart[:nSlots])
	for s := 0; s < nSlots; s++ {
		src := Handle{Slot: uint32(s), Gen: 1}
		for k, t := range targets[starts[s]:starts[s+1]] {
			c := cursor[t]
			inArena[c] = inRef{src: src, slot: uint32(k)}
			cursor[t] = c + 1
		}
	}
	for s := 0; s < nSlots; s++ {
		a, b := inStart[s], inStart[s+1]
		if a != b {
			g.nodes[s].in = inArena[a:b:b]
		}
	}
}

// wireSharded is the parallel arena fill; see WireSnapshotEdgesPar for the
// algorithm. Every pass writes disjoint index ranges (owner segments, one
// count/cursor row per worker, stacked in-arena cursors), so the phase
// barriers are the only synchronization.
func (g *Graph) wireSharded(starts []int32, targets []uint32, workers int) {
	nSlots := len(g.nodes)
	nEdges := len(targets)

	// Owner ranges balanced by edge count (degrees may be skewed), and
	// even target ranges for the per-target passes.
	ob := make([]int, workers+1)
	ob[workers] = nSlots
	for w := 1; w < workers; w++ {
		quota := int32(uint64(nEdges) * uint64(w) / uint64(workers))
		ob[w] = sort.Search(nSlots, func(s int) bool { return starts[s] >= quota })
	}
	tb := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		tb[w] = nSlots * w / workers
	}
	runRanges := func(fn func(w int)) {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
		wg.Wait()
	}

	// Out pass: fill owner segments, histogram targets per worker. Target
	// validation happens here (first sight of every edge); errors are
	// collected per worker and re-raised deterministically — lowest owner
	// range first, matching the serial scan order.
	outArena := make([]Handle, nEdges)
	counts := make([]int32, workers*nSlots)
	errs := make([]error, workers)
	runRanges(func(w int) {
		cnt := counts[w*nSlots : (w+1)*nSlots]
		for s := ob[w]; s < ob[w+1]; s++ {
			a, b := starts[s], starts[s+1]
			seg := outArena[a:b:b]
			for k, t := range targets[a:b] {
				if int(t) >= nSlots || int(t) == s {
					errs[w] = fmt.Errorf("graph: WireSnapshotEdges target %d of slot %d invalid", t, s)
					return
				}
				seg[k] = Handle{Slot: t, Gen: 1}
				cnt[t]++
			}
			g.nodes[s].out = seg
		}
	})
	for _, err := range errs {
		if err != nil {
			panic(err.Error())
		}
	}

	// Cursor pass: per-target totals, serial prefix sum, then stack the
	// count rows into each worker's private cursor row.
	inStart := make([]int32, nSlots+1)
	runRanges(func(w int) {
		for t := tb[w]; t < tb[w+1]; t++ {
			var sum int32
			for ww := 0; ww < workers; ww++ {
				sum += counts[ww*nSlots+t]
			}
			inStart[t+1] = sum
		}
	})
	for t := 0; t < nSlots; t++ {
		inStart[t+1] += inStart[t]
	}
	runRanges(func(w int) {
		for t := tb[w]; t < tb[w+1]; t++ {
			run := inStart[t]
			for ww := 0; ww < workers; ww++ {
				idx := ww*nSlots + t
				c := counts[idx]
				counts[idx] = run
				run += c
			}
		}
	})

	// In pass: every worker drops its owners' in-refs at its own cursors.
	// Owner ranges ascend with worker index, so each target's segment ends
	// up in global owner order — the serial layout.
	inArena := make([]inRef, nEdges)
	runRanges(func(w int) {
		cur := counts[w*nSlots : (w+1)*nSlots]
		for s := ob[w]; s < ob[w+1]; s++ {
			src := Handle{Slot: uint32(s), Gen: 1}
			for k, t := range targets[starts[s]:starts[s+1]] {
				c := cur[t]
				inArena[c] = inRef{src: src, slot: uint32(k)}
				cur[t] = c + 1
			}
		}
	})
	runRanges(func(w int) {
		for t := tb[w]; t < tb[w+1]; t++ {
			a, b := inStart[t], inStart[t+1]
			if a != b {
				g.nodes[t].in = inArena[a:b:b]
			}
		}
	})
}
