// Package graph implements the dynamic undirected multigraph underlying all
// four churnnet models (SDG, SDGR, PDG, PDGR).
//
// Nodes live in a slot arena and are addressed by Handle{Slot, Gen}: when a
// node dies its slot's generation is bumped, so stale references held
// anywhere — out-edge slots of no-regeneration models, in-edge lists of
// neighbors — are detected by a generation mismatch instead of eager
// cleanup. This mirrors the paper's edge semantics exactly: an edge (u, v)
// exists while both endpoints are alive (Definitions 3.4/3.13/4.9/4.14,
// rule 2), and in models without regeneration a node silently keeps
// "pointing at" dead targets.
//
// Every node records the *requests it made* (its out-edges, at most d of
// them) separately from the connections it accepted (its in-edges), because
// the paper's analysis — and the regeneration rule — distinguish the two:
// "our analysis will need to distinguish between out-edges from v, i.e.,
// those requested by v, and the in-edges" (Section 3.1).
//
// The graph is a multigraph: the d choices are independent and may repeat
// (rule 1). Neighborhood iteration can therefore yield duplicates; callers
// that need sets deduplicate with an epoch-marked scratch (see Marks).
package graph

import (
	"errors"
	"fmt"

	"github.com/dyngraph/churnnet/internal/rng"
)

// Handle identifies a node at a particular generation of its arena slot.
// The zero Handle is Nil and never refers to a live node (generations start
// at 1).
type Handle struct {
	Slot uint32
	Gen  uint32
}

// Nil is the invalid handle.
var Nil = Handle{}

// IsNil reports whether h is the invalid handle.
func (h Handle) IsNil() bool { return h.Gen == 0 }

// String renders the handle for debugging.
func (h Handle) String() string {
	if h.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d@%d", h.Slot, h.Gen)
}

// InEdge names one accepted connection: Src made its Slot-th request to
// this node.
type InEdge struct {
	Src  Handle
	Slot int
}

type node struct {
	gen       uint32
	birthSeq  uint64
	birthTime float64
	out       []Handle
	in        []inRef
}

type inRef struct {
	src  Handle
	slot uint32
}

// Graph is a dynamic multigraph with slot-reuse and O(1) uniform sampling
// of alive nodes. The zero value is not ready; use New.
type Graph struct {
	nodes    []node
	free     []uint32
	alive    []uint32 // dense list of alive slots
	alivePos []int32  // slot -> index into alive, -1 when dead
	birthSeq uint64   // next birth sequence number (monotone age order)
}

// New returns an empty graph with capacity hints for roughly n nodes of
// out-degree d.
func New(nHint, dHint int) *Graph {
	if nHint < 0 {
		nHint = 0
	}
	g := &Graph{
		nodes:    make([]node, 0, nHint),
		alive:    make([]uint32, 0, nHint),
		alivePos: make([]int32, 0, nHint),
	}
	_ = dHint // out slices are grown per node; hint kept for API stability
	return g
}

// NumAlive returns the number of alive nodes.
func (g *Graph) NumAlive() int { return len(g.alive) }

// NextBirthSeq returns the sequence number the next born node will get;
// nodes with BirthSeq below this value were born before this instant.
func (g *Graph) NextBirthSeq() uint64 { return g.birthSeq }

// NumSlots returns the arena size (alive + reusable slots); useful for
// sizing per-slot scratch arrays.
func (g *Graph) NumSlots() int { return len(g.nodes) }

// IsAlive reports whether h refers to a currently alive node.
func (g *Graph) IsAlive(h Handle) bool {
	if h.IsNil() || int(h.Slot) >= len(g.nodes) {
		return false
	}
	return g.nodes[h.Slot].gen == h.Gen && g.alivePos[h.Slot] >= 0
}

// AddNode births a node at the given model time and returns its handle.
// The node starts with no edges.
func (g *Graph) AddNode(birthTime float64) Handle {
	var slot uint32
	if n := len(g.free); n > 0 {
		slot = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		slot = uint32(len(g.nodes))
		g.nodes = append(g.nodes, node{})
		g.alivePos = append(g.alivePos, -1)
		g.nodes[slot].gen = 0 // bumped to >= 1 below
	}
	nd := &g.nodes[slot]
	nd.gen++
	nd.birthSeq = g.birthSeq
	nd.birthTime = birthTime
	nd.out = nd.out[:0]
	nd.in = nd.in[:0]
	g.birthSeq++

	g.alivePos[slot] = int32(len(g.alive))
	g.alive = append(g.alive, slot)
	return Handle{Slot: slot, Gen: nd.gen}
}

// AddOutEdge records that u made a request accepted by v and returns the
// out-slot index the edge occupies in u. It panics if either endpoint is
// not alive.
func (g *Graph) AddOutEdge(u, v Handle) int {
	if !g.IsAlive(u) || !g.IsAlive(v) {
		panic("graph: AddOutEdge endpoint not alive")
	}
	un := &g.nodes[u.Slot]
	idx := len(un.out)
	un.out = append(un.out, v)
	g.nodes[v.Slot].in = append(g.nodes[v.Slot].in, inRef{src: u, slot: uint32(idx)})
	return idx
}

// RedirectOutEdge re-points u's idx-th request at v — the edge-regeneration
// rule (rule 3 of Definitions 3.13 and 4.14). The previous target must be
// dead (regeneration is only ever triggered by a neighbor's death); it
// panics otherwise, and if u or v is not alive or idx is out of range.
func (g *Graph) RedirectOutEdge(u Handle, idx int, v Handle) {
	if !g.IsAlive(u) || !g.IsAlive(v) {
		panic("graph: RedirectOutEdge endpoint not alive")
	}
	un := &g.nodes[u.Slot]
	if idx < 0 || idx >= len(un.out) {
		panic("graph: RedirectOutEdge slot out of range")
	}
	if old := un.out[idx]; g.IsAlive(old) {
		panic("graph: RedirectOutEdge over a live edge")
	}
	un.out[idx] = v
	g.nodes[v.Slot].in = append(g.nodes[v.Slot].in, inRef{src: u, slot: uint32(idx)})
}

// RemoveNode kills h. All its incident edges disappear (rule 2). The live
// in-edges it had at the moment of death are appended to buf and returned,
// so models with regeneration can re-point each orphaned request; models
// without regeneration ignore the result. It panics if h is not alive.
func (g *Graph) RemoveNode(h Handle, buf []InEdge) []InEdge {
	if !g.IsAlive(h) {
		panic("graph: RemoveNode of non-alive handle")
	}
	nd := &g.nodes[h.Slot]
	// Collect the still-valid in-edges before invalidating the node.
	for _, ref := range nd.in {
		if g.inRefLive(ref, h) {
			buf = append(buf, InEdge{Src: ref.src, Slot: int(ref.slot)})
		}
	}
	nd.in = nd.in[:0]
	nd.out = nd.out[:0]
	nd.gen++ // invalidates every surviving reference to h

	pos := g.alivePos[h.Slot]
	last := uint32(len(g.alive) - 1)
	moved := g.alive[last]
	g.alive[pos] = moved
	g.alivePos[moved] = pos
	g.alive = g.alive[:last]
	g.alivePos[h.Slot] = -1
	g.free = append(g.free, h.Slot)
	return buf
}

// inRefLive reports whether the in-list entry still describes a live edge
// into owner: its source must be alive and its recorded out-slot must still
// point at owner (it may have been redirected after owner's slot was
// reused, or the source may have died).
func (g *Graph) inRefLive(ref inRef, owner Handle) bool {
	if !g.IsAlive(ref.src) {
		return false
	}
	out := g.nodes[ref.src.Slot].out
	return int(ref.slot) < len(out) && out[ref.slot] == owner
}

// OutTargets calls visit for every live target of h's requests, in slot
// order, including duplicates (the multigraph keeps parallel requests).
// Iteration stops early if visit returns false. Targets that died (possible
// only without regeneration) are skipped.
func (g *Graph) OutTargets(h Handle, visit func(Handle) bool) {
	if !g.IsAlive(h) {
		return
	}
	for _, t := range g.nodes[h.Slot].out {
		if g.IsAlive(t) {
			if !visit(t) {
				return
			}
		}
	}
}

// InSources calls visit for every live node whose request currently points
// at h, including duplicates. Stale in-list entries are compacted away as a
// side effect. Iteration stops early if visit returns false.
func (g *Graph) InSources(h Handle, visit func(Handle) bool) {
	if !g.IsAlive(h) {
		return
	}
	nd := &g.nodes[h.Slot]
	in := nd.in
	w := 0
	stopped := false
	for r := 0; r < len(in); r++ {
		ref := in[r]
		if !g.inRefLive(ref, h) {
			continue
		}
		in[w] = ref
		w++
		if !stopped && !visit(ref.src) {
			stopped = true
			// keep compacting the remainder without visiting
		}
	}
	nd.in = in[:w]
}

// Neighbors calls visit for every live neighbor of h (out-targets then
// in-sources), possibly with duplicates. Iteration stops early if visit
// returns false.
func (g *Graph) Neighbors(h Handle, visit func(Handle) bool) {
	stopped := false
	g.OutTargets(h, func(t Handle) bool {
		if !visit(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	g.InSources(h, visit)
}

// OutDegreeLive returns the number of h's requests whose target is alive.
func (g *Graph) OutDegreeLive(h Handle) int {
	n := 0
	g.OutTargets(h, func(Handle) bool { n++; return true })
	return n
}

// OutSlotCount returns the number of request slots h has ever created,
// whether or not their targets are alive.
func (g *Graph) OutSlotCount(h Handle) int {
	if !g.IsAlive(h) {
		return 0
	}
	return len(g.nodes[h.Slot].out)
}

// OutTarget returns the current target of h's idx-th request (it may be a
// dead handle in no-regeneration models) and whether idx is in range.
func (g *Graph) OutTarget(h Handle, idx int) (Handle, bool) {
	if !g.IsAlive(h) {
		return Nil, false
	}
	out := g.nodes[h.Slot].out
	if idx < 0 || idx >= len(out) {
		return Nil, false
	}
	return out[idx], true
}

// InDegreeLive returns the number of live requests pointing at h.
func (g *Graph) InDegreeLive(h Handle) int {
	n := 0
	g.InSources(h, func(Handle) bool { n++; return true })
	return n
}

// DegreeLive returns OutDegreeLive + InDegreeLive (parallel edges counted).
func (g *Graph) DegreeLive(h Handle) int {
	return g.OutDegreeLive(h) + g.InDegreeLive(h)
}

// IsIsolated reports whether h has no live incident edge.
func (g *Graph) IsIsolated(h Handle) bool {
	isolated := true
	g.Neighbors(h, func(Handle) bool { isolated = false; return false })
	return isolated
}

// BirthSeq returns the global birth sequence number of h: smaller is older.
// It panics if h is not alive.
func (g *Graph) BirthSeq(h Handle) uint64 {
	g.mustAlive(h)
	return g.nodes[h.Slot].birthSeq
}

// BirthTime returns the model time at which h was born. It panics if h is
// not alive.
func (g *Graph) BirthTime(h Handle) float64 {
	g.mustAlive(h)
	return g.nodes[h.Slot].birthTime
}

// Older reports whether a was born strictly before b. It panics if either
// is not alive.
func (g *Graph) Older(a, b Handle) bool {
	return g.BirthSeq(a) < g.BirthSeq(b)
}

func (g *Graph) mustAlive(h Handle) {
	if !g.IsAlive(h) {
		panic("graph: handle not alive: " + h.String())
	}
}

// ForEachAlive calls visit for every alive node; iteration order is
// arbitrary but deterministic. It stops early if visit returns false. The
// callback must not add or remove nodes.
func (g *Graph) ForEachAlive(visit func(Handle) bool) {
	for _, slot := range g.alive {
		if !visit(Handle{Slot: slot, Gen: g.nodes[slot].gen}) {
			return
		}
	}
}

// AliveHandles returns a fresh slice of all alive handles.
func (g *Graph) AliveHandles() []Handle {
	out := make([]Handle, 0, len(g.alive))
	g.ForEachAlive(func(h Handle) bool { out = append(out, h); return true })
	return out
}

// RandomAlive returns a uniformly random alive node, or Nil if the graph is
// empty.
func (g *Graph) RandomAlive(r *rng.RNG) Handle {
	if len(g.alive) == 0 {
		return Nil
	}
	slot := g.alive[r.Intn(len(g.alive))]
	return Handle{Slot: slot, Gen: g.nodes[slot].gen}
}

// RandomAliveExcept returns a uniformly random alive node different from
// excl, or Nil if no such node exists. This is the paper's "uniformly at
// random among the nodes in the network" destination draw, which excludes
// the requester (the 1/(n−1) in Lemma 3.14).
func (g *Graph) RandomAliveExcept(r *rng.RNG, excl Handle) Handle {
	n := len(g.alive)
	exclAlive := g.IsAlive(excl)
	if n == 0 || (n == 1 && exclAlive) {
		return Nil
	}
	if !exclAlive {
		return g.RandomAlive(r)
	}
	// Draw from n-1 by skipping the excluded position.
	i := r.Intn(n - 1)
	if pos := int(g.alivePos[excl.Slot]); i >= pos {
		i++
	}
	slot := g.alive[i]
	return Handle{Slot: slot, Gen: g.nodes[slot].gen}
}

// Oldest returns the alive node with the smallest birth sequence, or Nil if
// the graph is empty. O(alive); used by tests and analysis, not hot loops.
func (g *Graph) Oldest() Handle {
	var best Handle
	var bestSeq uint64
	first := true
	g.ForEachAlive(func(h Handle) bool {
		if s := g.nodes[h.Slot].birthSeq; first || s < bestSeq {
			best, bestSeq, first = h, s, false
		}
		return true
	})
	return best
}

// Newest returns the alive node with the largest birth sequence, or Nil.
func (g *Graph) Newest() Handle {
	var best Handle
	var bestSeq uint64
	first := true
	g.ForEachAlive(func(h Handle) bool {
		if s := g.nodes[h.Slot].birthSeq; first || s > bestSeq {
			best, bestSeq, first = h, s, false
		}
		return true
	})
	return best
}

// NumEdgesLive returns the number of live (request) edges; parallel edges
// counted separately. O(total out-slots).
func (g *Graph) NumEdgesLive() int {
	n := 0
	g.ForEachAlive(func(h Handle) bool {
		n += g.OutDegreeLive(h)
		return true
	})
	return n
}

// CheckInvariants exhaustively validates internal consistency; it is meant
// for tests and returns a descriptive error on the first violation.
func (g *Graph) CheckInvariants() error {
	// alive / alivePos / free bookkeeping.
	seen := make(map[uint32]bool, len(g.alive))
	for i, slot := range g.alive {
		if int(slot) >= len(g.nodes) {
			return fmt.Errorf("alive[%d]=%d out of range", i, slot)
		}
		if seen[slot] {
			return fmt.Errorf("slot %d appears twice in alive", slot)
		}
		seen[slot] = true
		if g.alivePos[slot] != int32(i) {
			return fmt.Errorf("alivePos[%d]=%d, want %d", slot, g.alivePos[slot], i)
		}
	}
	for slot := range g.nodes {
		if pos := g.alivePos[slot]; pos >= 0 && !seen[uint32(slot)] {
			return fmt.Errorf("slot %d has alivePos %d but is not in alive", slot, pos)
		}
	}
	for _, slot := range g.free {
		if seen[slot] {
			return fmt.Errorf("slot %d is both free and alive", slot)
		}
	}
	// Edge symmetry: every live out-edge must have exactly one matching
	// in-list entry, and every valid in-list entry a matching out-edge.
	for _, slot := range g.alive {
		u := Handle{Slot: slot, Gen: g.nodes[slot].gen}
		for idx, t := range g.nodes[slot].out {
			if !g.IsAlive(t) {
				continue
			}
			matches := 0
			for _, ref := range g.nodes[t.Slot].in {
				if ref.src == u && int(ref.slot) == idx {
					matches++
				}
			}
			if matches != 1 {
				return fmt.Errorf("edge %v.out[%d]=%v has %d in-list entries", u, idx, t, matches)
			}
		}
		for _, ref := range g.nodes[slot].in {
			if !g.inRefLive(ref, u) {
				continue // stale entries are legal until compaction
			}
			out := g.nodes[ref.src.Slot].out
			if out[ref.slot] != u {
				return errors.New("valid in-ref does not point back")
			}
		}
	}
	return nil
}
