package expansion

// This file implements the incremental expansion-witness engine: where
// Estimate rescans every candidate family from scratch on each snapshot
// (O(n·d) per call), the Tracker subscribes to the model's OnEdge/OnDeath
// event stream — the same core.EdgeEventSource contract the flooding
// engine rides — and maintains |S|, |∂out(S)| and the ratio of a
// configurable family of witness sets under churn in O(events).
//
// # Bookkeeping
//
// Membership is fixed between re-seeds, so the only quantities that move
// are the live-member count of each set and the per-node count of live
// edges into the set:
//
//	cnt[x][s] = number of live edges between node x and the live members
//	            of set s, for x not a member of s
//	|∂out(s)| = #{x : cnt[x][s] > 0}
//
// Every event that can change a count is visible on the hook stream:
//
//   - OnEdge(u, v) with exactly one endpoint a member of s adds one unit
//     to the other endpoint's count;
//   - a non-member death zeroes its counts (all its edges vanish,
//     rule 2), removing it from every boundary it was on;
//   - a member death removes one unit per live incident edge to a
//     non-member — the hook fires before removal, while the neighborhood
//     is still inspectable — and decrements the set's live size.
//
// Regeneration needs no special case: the orphaned edge disappears with
// the death that orphaned it, and the re-pointed request fires a fresh
// OnEdge (rule 3).
//
// # Two state planes, and the sharded flush
//
// State splits into a serial hook plane and a sharded flush plane. The
// hook plane — per-slot membership lists and per-set live counts — is read
// and written only while the model advances (hooks are strictly serial).
// Hook handlers do not apply boundary updates directly: they *resolve*
// each event against the membership lists into per-slot operations
// (increment/decrement one count, drop one node's counts) and append them
// to per-shard operation logs, routed by the block-cyclic slot ownership
// the flooding engine uses (owner(slot) = (slot/64) mod W).
//
// The flush plane — the per-slot count lists and per-set boundary sizes —
// is touched only by flush(), which fans the logs out across W workers:
// each worker applies its own shard's ops in log order (it owns every slot
// they touch) and accumulates per-set boundary deltas in a private row;
// the rows are summed at the barrier. Per-slot state evolves in log order
// no matter how slots map to workers, and integer sums are
// order-independent, so every observable is bit-for-bit identical at any
// W (pinned by TestTrackerParallelismInvariance) — the knob only spends
// more cores on re-seed scans and event bursts. Epoch tags make re-seeds
// O(1): bumping the tracker epoch invalidates every per-slot list lazily,
// the same trick graph.Marks uses for generations.
import (
	"sort"
	"sync"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Family identifies which candidate family a tracked set was seeded from.
type Family uint8

// The tracked witness families, mirroring Estimate's candidate passes.
const (
	// FamilySingleton sets hold one low-degree node each.
	FamilySingleton Family = iota
	// FamilyOldest sets hold the k oldest nodes at seed time.
	FamilyOldest
	// FamilyYoungest sets hold the k youngest nodes at seed time.
	FamilyYoungest
	// FamilyRandom sets are uniform k-samples of the alive nodes.
	FamilyRandom
	// FamilyBFS sets are BFS balls grown around low-degree seeds.
	FamilyBFS
	// FamilyGreedy sets come from greedy boundary-minimizing growth.
	FamilyGreedy
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilySingleton:
		return "singleton"
	case FamilyOldest:
		return "oldest"
	case FamilyYoungest:
		return "youngest"
	case FamilyRandom:
		return "random"
	case FamilyBFS:
		return "bfs"
	case FamilyGreedy:
		return "greedy"
	default:
		return "unknown"
	}
}

// TrackerConfig tunes a Tracker. The zero value selects the defaults
// noted per field; set a count negative to disable its family.
type TrackerConfig struct {
	// Singletons tracks this many size-1 sets, seeded on the
	// lowest-degree nodes (default 8).
	Singletons int
	// RandomSetsPerSize tracks this many uniform k-sets per ladder size
	// (default 2).
	RandomSetsPerSize int
	// SkipAgeSets disables the oldest-k/youngest-k pair tracked per
	// ladder size (the cohorts where no-regeneration models grow their
	// isolated nodes, Lemma 3.5).
	SkipAgeSets bool
	// LadderStride tracks every k-th rung of the geometric size ladder
	// for the age and random families (default 1 = every rung). The
	// ladder factor is 1.6, so stride 2 still bounds every band minimum
	// within a 2.56× size window while halving the dominant seeding cost,
	// Σ|S|·d — the right trade at n ≥ 10⁵.
	LadderStride int
	// BFSSeeds grows this many BFS balls around low-degree seeds
	// (default 4); MaxBFSSize caps each ball (default n/2).
	BFSSeeds   int
	MaxBFSSize int
	// GreedySeeds runs this many greedy boundary-minimizing growths
	// (default 2); MaxGreedySize caps each (default min(n/2, 2048) —
	// greedy growth is the one superlinear seeding pass).
	GreedySeeds   int
	MaxGreedySize int
	// ReseedEvery re-derives every family from the current snapshot on
	// each ReseedEvery-th Observe call (0 = seed once at construction).
	// Adaptive re-seeding keeps the low-degree and age families pointed
	// at the cohorts where churn currently concentrates weak witnesses;
	// a tracker that never re-seeds watches its frozen sets age out.
	ReseedEvery int
	// Parallelism is the worker-shard count of the flush plane: 0 or 1
	// serial, negative picks graph.AutoWorkers(n) from GOMAXPROCS and
	// the model size. Results are bit-for-bit identical at any setting.
	Parallelism int
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.Singletons == 0 {
		c.Singletons = 8
	}
	if c.RandomSetsPerSize == 0 {
		c.RandomSetsPerSize = 2
	}
	if c.LadderStride < 1 {
		c.LadderStride = 1
	}
	if c.BFSSeeds == 0 {
		c.BFSSeeds = 4
	}
	if c.GreedySeeds == 0 {
		c.GreedySeeds = 2
	}
	return c
}

// defaultMaxGreedyTracked caps greedy growth during seeding unless the
// config overrides it; beyond a few thousand members the growth's
// per-step boundary compaction dominates every other seeding pass.
const defaultMaxGreedyTracked = 2048

// trackerShardBlock is the per-slot-range ownership block width, matching
// the flooding engine's: slot s belongs to shard (s/64) mod W.
const trackerShardBlock = 64

// trackerFlushThreshold bounds the pending-operation backlog; seeding
// scans and long inter-observation windows flush incrementally instead of
// accumulating an O(Σ|S|·d) log.
const trackerFlushThreshold = 1 << 16

// Op kinds of the flush plane.
const (
	opIncr uint8 = iota // one more live edge between a set and a non-member
	opDecr              // one fewer (a member death severed an edge)
	opDrop              // a node died: zero all its boundary counts
)

// trackOp is one resolved per-slot update. Ops are appended in event
// order to the log of the shard owning their slot.
type trackOp struct {
	kind uint8
	slot uint32
	gen  uint32
	set  uint32
}

// slotSets lists the tracked sets a node belongs to (hook plane).
type slotSets struct {
	epoch uint32
	gen   uint32
	sets  []uint32
}

// slotBnd holds one node's live-edge counts into the sets it borders
// (flush plane; entries only for counts >= 1).
type slotBnd struct {
	epoch   uint32
	gen     uint32
	entries []bndEntry
}

type bndEntry struct {
	set uint32
	cnt int32
}

type trackedSet struct {
	family   Family
	members  []graph.Handle
	live     int // alive members (hook plane)
	boundary int // |∂out| (flush plane)
}

// SetState reports one tracked set; Members is the seeded list (dead
// members retained — BoundarySize and Ratio ignore them, so the list can
// be rescanned as-is by the oracle tests).
type SetState struct {
	Family   Family
	Members  []graph.Handle
	Live     int
	Boundary int
}

// Observation is one time-resolved expansion measurement.
type Observation struct {
	// Time is the model clock at the observation; N the alive count.
	Time float64
	N    int
	// Min is the smallest ratio over tracked sets with live size in
	// [1, N/2] (an h_out upper bound, +Inf if no tracked set qualifies),
	// achieved by MinWitness.
	Min        float64
	MinWitness Witness
	// Profile holds the best tracked witness per live set size — the
	// same shape Estimate returns, so band queries (MinInRange) work
	// unchanged on tracked measurements.
	Profile *Profile
}

// Tracker maintains expansion witnesses incrementally from a model's
// churn event stream. Construct with NewTracker, read with Observe (and
// Sets for per-set detail), release the hook chain with Close.
//
// The tracker chains onto the model's existing hooks and other observers
// chain onto the tracker — flood.Run over a tracked model works and drops
// no events (both follow the core.ChainHooks discipline; lifetimes must
// nest). All methods must be called from the goroutine advancing the
// model.
type Tracker struct {
	m   core.Model
	g   *graph.Graph
	r   *rng.RNG
	cfg TrackerConfig
	par int

	prev   core.Hooks
	closed bool

	epoch uint32
	sets  []trackedSet

	member []slotSets // hook plane, indexed by arena slot

	bnd    []slotBnd   // flush plane, indexed by arena slot
	ops    [][]trackOp // pending ops, one log per owner shard
	nOps   int
	deltas [][]int64 // per shard: per-set boundary deltas of one flush

	inSet graph.Marks // seeding scratch

	observations, reseeds int
	last                  Observation // most recent Observe result
}

// NewTracker attaches a tracker to m, seeds the witness families from the
// current snapshot (consuming r, which the tracker keeps for re-seeds) and
// returns it. It panics if the model does not guarantee the edge-event
// contract of core.EdgeEventSource — without it edge changes are
// invisible and incremental maintenance is impossible.
func NewTracker(m core.Model, r *rng.RNG, cfg TrackerConfig) *Tracker {
	es, ok := m.(core.EdgeEventSource)
	if !ok || !es.EmitsEdgeEvents() {
		panic("expansion: NewTracker requires a model with the edge-event contract (core.EdgeEventSource)")
	}
	cfg = cfg.withDefaults()
	par := cfg.Parallelism
	if par < 0 {
		par = graph.AutoWorkers(m.N())
	}
	if par < 1 {
		par = 1
	}
	t := &Tracker{m: m, g: m.Graph(), r: r, cfg: cfg, par: par}
	t.ops = make([][]trackOp, par)
	t.prev = m.Hooks()
	m.SetHooks(core.ChainHooks(core.Hooks{OnDeath: t.onDeath, OnEdge: t.onEdge}, t.prev))
	t.reseed()
	return t
}

// Close detaches the tracker, restoring the hooks the model had before
// NewTracker. Closing also unchains any observer installed after the
// tracker (lifetimes must nest). Idempotent.
func (t *Tracker) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.m.SetHooks(t.prev)
}

// Parallelism returns the resolved flush worker-shard count.
func (t *Tracker) Parallelism() int { return t.par }

// Observations returns how many Observe calls have been made.
func (t *Tracker) Observations() int { return t.observations }

// Reseeds returns how many times the families were (re-)seeded, the
// initial seeding included.
func (t *Tracker) Reseeds() int { return t.reseeds }

// NumSets returns the number of currently tracked sets.
func (t *Tracker) NumSets() int { return len(t.sets) }

// LastObservation returns the most recent Observe result without flushing
// pending events (a pure read — serving layers republish it between
// observation ticks). The second result is false before the first
// Observe.
func (t *Tracker) LastObservation() (Observation, bool) {
	return t.last, t.observations > 0
}

// Observe flushes pending events and returns the current measurement;
// on every cfg.ReseedEvery-th call it then re-derives the families from
// the current snapshot (the returned observation still reflects the sets
// tracked up to this instant).
func (t *Tracker) Observe() Observation {
	t.flush()
	p := &Profile{N: t.g.NumAlive(), BestBySize: make(map[int]Witness)}
	for i := range t.sets {
		st := &t.sets[i]
		if st.live <= 0 {
			continue
		}
		w := Witness{Size: st.live, Boundary: st.boundary, Ratio: float64(st.boundary) / float64(st.live)}
		if old, ok := p.BestBySize[st.live]; !ok || w.Ratio < old.Ratio {
			p.BestBySize[st.live] = w
		}
	}
	min, mw := p.Min()
	obs := Observation{Time: t.m.Now(), N: p.N, Min: min, MinWitness: mw, Profile: p}
	t.last = obs
	t.observations++
	if t.cfg.ReseedEvery > 0 && t.observations%t.cfg.ReseedEvery == 0 {
		t.reseed()
	}
	return obs
}

// Sets flushes pending events and returns every tracked set's state, in
// stable set-index order. The member slices are copies.
func (t *Tracker) Sets() []SetState {
	t.flush()
	out := make([]SetState, len(t.sets))
	for i := range t.sets {
		st := &t.sets[i]
		members := make([]graph.Handle, len(st.members))
		copy(members, st.members)
		out[i] = SetState{Family: st.family, Members: members, Live: st.live, Boundary: st.boundary}
	}
	return out
}

// --- hook plane ---

func (t *Tracker) owner(slot uint32) int {
	if t.par == 1 {
		return 0
	}
	return int(slot/trackerShardBlock) % t.par
}

func (t *Tracker) appendOp(op trackOp) {
	w := t.owner(op.slot)
	t.ops[w] = append(t.ops[w], op)
	t.nOps++
	if t.nOps >= trackerFlushThreshold {
		t.flush()
	}
}

// memberSets returns the sets h currently belongs to (nil for non-members
// and stale incarnations).
func (t *Tracker) memberSets(h graph.Handle) []uint32 {
	if int(h.Slot) >= len(t.member) {
		return nil
	}
	ss := &t.member[h.Slot]
	if ss.epoch != t.epoch || ss.gen != h.Gen {
		return nil
	}
	return ss.sets
}

func (t *Tracker) isMember(h graph.Handle, set uint32) bool {
	for _, s := range t.memberSets(h) {
		if s == set {
			return true
		}
	}
	return false
}

func (t *Tracker) addMember(h graph.Handle, set uint32) {
	t.growMember(int(h.Slot) + 1)
	ss := &t.member[h.Slot]
	if ss.epoch != t.epoch || ss.gen != h.Gen {
		ss.epoch, ss.gen = t.epoch, h.Gen
		ss.sets = ss.sets[:0]
	}
	ss.sets = append(ss.sets, set)
}

// onEdge resolves a fresh request edge u–v: for each set holding exactly
// one endpoint, the other endpoint gains one unit of boundary count.
func (t *Tracker) onEdge(u, v graph.Handle) {
	t.noteEdgeSide(u, v)
	t.noteEdgeSide(v, u)
}

func (t *Tracker) noteEdgeSide(m, x graph.Handle) {
	for _, s := range t.memberSets(m) {
		if !t.isMember(x, s) {
			t.appendOp(trackOp{kind: opIncr, slot: x.Slot, gen: x.Gen, set: s})
		}
	}
}

// onDeath resolves a death: the node leaves every boundary it was on
// (opDrop), and if it was a member its sets lose one live node plus one
// boundary unit per live incident edge to a non-member — resolved here,
// while the hook contract keeps the neighborhood inspectable.
func (t *Tracker) onDeath(h graph.Handle) {
	t.appendOp(trackOp{kind: opDrop, slot: h.Slot, gen: h.Gen})
	ms := t.memberSets(h)
	if len(ms) == 0 {
		return
	}
	for _, s := range ms {
		t.sets[s].live--
	}
	t.g.Neighbors(h, func(x graph.Handle) bool {
		for _, s := range ms {
			if !t.isMember(x, s) {
				t.appendOp(trackOp{kind: opDecr, slot: x.Slot, gen: x.Gen, set: s})
			}
		}
		return true
	})
	t.member[h.Slot].sets = t.member[h.Slot].sets[:0]
}

// --- flush plane ---

func (t *Tracker) growMember(n int) {
	if n <= len(t.member) {
		return
	}
	grown := make([]slotSets, n*2)
	copy(grown, t.member)
	t.member = grown
}

func (t *Tracker) growBnd(n int) {
	if n <= len(t.bnd) {
		return
	}
	grown := make([]slotBnd, n*2)
	copy(grown, t.bnd)
	t.bnd = grown
}

func (t *Tracker) ensureDeltas() {
	if t.deltas != nil && len(t.deltas[0]) == len(t.sets) {
		return
	}
	t.deltas = make([][]int64, t.par)
	for w := range t.deltas {
		t.deltas[w] = make([]int64, len(t.sets))
	}
}

// flush applies the pending per-shard op logs. Worker w owns every slot
// its log touches and accumulates boundary deltas in its private row, so
// the barrier is the only synchronization; the merge sums rows in shard
// order (integer sums — order never observable).
func (t *Tracker) flush() {
	if t.nOps == 0 {
		return
	}
	t.growBnd(t.g.NumSlots())
	t.ensureDeltas()
	if t.par == 1 {
		t.applyShard(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(t.par)
		for w := 0; w < t.par; w++ {
			go func(w int) {
				defer wg.Done()
				t.applyShard(w)
			}(w)
		}
		wg.Wait()
	}
	for w := 0; w < t.par; w++ {
		d := t.deltas[w]
		for s := range d {
			if d[s] != 0 {
				t.sets[s].boundary += int(d[s])
				d[s] = 0
			}
		}
		t.ops[w] = t.ops[w][:0]
	}
	t.nOps = 0
}

// applyShard replays one shard's op log in order over the slots it owns.
func (t *Tracker) applyShard(w int) {
	delta := t.deltas[w]
	for _, op := range t.ops[w] {
		b := &t.bnd[op.slot]
		switch op.kind {
		case opIncr:
			if b.epoch != t.epoch || b.gen != op.gen {
				// First count of this incarnation (or of this epoch):
				// any leftover entries belong to a drained past and were
				// already debited when it died or re-seeded.
				b.epoch, b.gen = t.epoch, op.gen
				b.entries = b.entries[:0]
			}
			found := false
			for i := range b.entries {
				if b.entries[i].set == op.set {
					b.entries[i].cnt++
					// Move-to-front: op streams hit the same (slot, set)
					// in bursts (seeding scans count one set at a time),
					// so the next search is O(1). The reordering is a
					// deterministic function of the per-slot op sequence,
					// which is identical at every worker count.
					b.entries[0], b.entries[i] = b.entries[i], b.entries[0]
					found = true
					break
				}
			}
			if !found {
				b.entries = append(b.entries, bndEntry{set: op.set, cnt: 1})
				last := len(b.entries) - 1
				b.entries[0], b.entries[last] = b.entries[last], b.entries[0]
				delta[op.set]++
			}
		case opDecr:
			// A decrement always finds its unit: the edge it retires was
			// counted either by the seeding scan or by an earlier opIncr
			// in this same slot-ordered log. A miss means the model broke
			// the edge-event contract (or an observer dropped events).
			ok := false
			if b.epoch == t.epoch && b.gen == op.gen {
				for i := range b.entries {
					if b.entries[i].set == op.set {
						if b.entries[i].cnt--; b.entries[i].cnt == 0 {
							last := len(b.entries) - 1
							b.entries[i] = b.entries[last]
							b.entries = b.entries[:last]
							delta[op.set]--
						} else {
							b.entries[0], b.entries[i] = b.entries[i], b.entries[0]
						}
						ok = true
						break
					}
				}
			}
			if !ok {
				panic("expansion: tracker boundary decrement without a matching count (edge-event contract violated)")
			}
		case opDrop:
			if b.epoch == t.epoch && b.gen == op.gen {
				for _, e := range b.entries {
					delta[e.set]--
				}
				b.entries = b.entries[:0]
			}
		}
	}
}

// --- seeding ---

// reseed derives every family from the current snapshot: epoch-invalidate
// all per-slot state, build the member lists (consuming the tracker RNG in
// a fixed order), install memberships, and run the per-set boundary scans
// through the op logs so the sharded flush absorbs them — seeding is the
// tracker's one O(Σ|S|·d) pass, and the one that benefits from W > 1.
func (t *Tracker) reseed() {
	t.flush()
	t.epoch++
	t.sets = t.sets[:0]
	t.deltas = nil
	t.reseeds++
	g, cfg := t.g, t.cfg
	hs := g.AliveHandles()
	n := len(hs)
	if n == 0 {
		return
	}

	add := func(f Family, members []graph.Handle) {
		t.sets = append(t.sets, trackedSet{family: f, members: members})
	}
	if cfg.Singletons > 0 {
		k := cfg.Singletons
		if k > n {
			k = n
		}
		for _, h := range lowDegreeSeeds(g, hs, k) {
			add(FamilySingleton, []graph.Handle{h})
		}
	}
	ladder := sizeLadder(n)
	if cfg.LadderStride > 1 {
		// Keep every stride-th rung plus the last (the n/2 band anchor).
		kept := ladder[:0]
		for i, k := range ladder {
			if i%cfg.LadderStride == 0 || i == len(ladder)-1 {
				kept = append(kept, k)
			}
		}
		ladder = kept
	}
	if !cfg.SkipAgeSets {
		byAge := make([]graph.Handle, n)
		copy(byAge, hs)
		sort.Slice(byAge, func(i, j int) bool { return g.BirthSeq(byAge[i]) < g.BirthSeq(byAge[j]) })
		for _, k := range ladder {
			oldest := make([]graph.Handle, k)
			copy(oldest, byAge[:k])
			add(FamilyOldest, oldest)
			youngest := make([]graph.Handle, k)
			copy(youngest, byAge[n-k:])
			add(FamilyYoungest, youngest)
		}
	}
	if cfg.RandomSetsPerSize > 0 {
		for _, k := range ladder {
			for i := 0; i < cfg.RandomSetsPerSize; i++ {
				set := make([]graph.Handle, 0, k)
				t.inSet.Reset()
				for len(set) < k {
					h := hs[t.r.Intn(n)]
					if t.inSet.Mark(h) {
						set = append(set, h)
					}
				}
				add(FamilyRandom, set)
			}
		}
	}
	if cfg.BFSSeeds > 0 {
		maxBFS := cfg.MaxBFSSize
		if maxBFS <= 0 || maxBFS > n/2 {
			maxBFS = n / 2
		}
		if maxBFS < 1 {
			maxBFS = 1
		}
		k := cfg.BFSSeeds
		if k > n {
			k = n
		}
		for _, seed := range lowDegreeSeeds(g, hs, k) {
			ball := bfsOrder(g, seed, maxBFS, &t.inSet)
			set := make([]graph.Handle, len(ball))
			copy(set, ball)
			add(FamilyBFS, set)
		}
	}
	if cfg.GreedySeeds > 0 {
		maxGreedy := cfg.MaxGreedySize
		if maxGreedy <= 0 {
			maxGreedy = defaultMaxGreedyTracked
		}
		if maxGreedy > n/2 {
			maxGreedy = n / 2
		}
		if maxGreedy < 1 {
			maxGreedy = 1
		}
		for i := 0; i < cfg.GreedySeeds; i++ {
			seed := hs[t.r.Intn(n)]
			add(FamilyGreedy, greedyGrow(g, seed, maxGreedy, t.r, func(int, int) {}))
		}
	}

	// Install memberships first — the boundary scans must see every
	// same-set co-member — then count each set's crossing edges with
	// multiplicity (so that later per-edge decrements net out exactly).
	for id := range t.sets {
		st := &t.sets[id]
		for _, h := range st.members {
			t.addMember(h, uint32(id))
		}
		st.live = len(st.members)
	}
	for id := range t.sets {
		st := &t.sets[id]
		sid := uint32(id)
		t.inSet.Reset()
		for _, h := range st.members {
			t.inSet.Mark(h)
		}
		for _, u := range st.members {
			g.Neighbors(u, func(x graph.Handle) bool {
				if !t.inSet.Has(x) {
					t.appendOp(trackOp{kind: opIncr, slot: x.Slot, gen: x.Gen, set: sid})
				}
				return true
			})
		}
	}
	t.flush()
}
