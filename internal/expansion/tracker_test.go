package expansion

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

// trackerTestPars sweeps the flush-plane worker counts the equivalence
// tests pin: serial, two intermediate shard counts, and the machine's
// core count (duplicates are fine).
func trackerTestPars() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// checkTrackerAgainstRescan compares every tracked set's incremental
// state with a from-scratch BoundarySize/Ratio rescan of its member list
// on the current snapshot.
func checkTrackerAgainstRescan(t *testing.T, g *graph.Graph, tr *Tracker, tag string) {
	t.Helper()
	for i, st := range tr.Sets() {
		live := 0
		for _, h := range st.Members {
			if g.IsAlive(h) {
				live++
			}
		}
		if st.Live != live {
			t.Fatalf("%s set %d (%s): tracked live %d, rescan %d", tag, i, st.Family, st.Live, live)
		}
		want := BoundarySize(g, st.Members)
		if st.Boundary != want {
			t.Fatalf("%s set %d (%s, |S|=%d live %d): tracked boundary %d, rescan %d",
				tag, i, st.Family, len(st.Members), live, st.Boundary, want)
		}
		if live > 0 {
			if got, want := float64(st.Boundary)/float64(st.Live), Ratio(g, st.Members); got != want {
				t.Fatalf("%s set %d (%s): tracked ratio %v, rescan %v", tag, i, st.Family, got, want)
			}
		}
	}
}

// TestTrackerMatchesRescan is the rescan-oracle equivalence property
// test: across all four models, two scales and 20 seeds — with the flush
// plane swept over every worker count — the tracker's boundary sizes and
// ratios must be bit-for-bit what fresh BoundarySize/Ratio rescans
// compute at every sampled round, through churn, slot reuse, both
// regeneration paths and periodic re-seeding.
func TestTrackerMatchesRescan(t *testing.T) {
	for _, kind := range core.Kinds() {
		for _, scale := range []int{60, 200} {
			kind, scale := kind, scale
			t.Run(fmt.Sprintf("%v-n%d", kind, scale), func(t *testing.T) {
				t.Parallel()
				for seed := uint64(0); seed < 20; seed++ {
					n := scale + int(seed%4)*scale/4
					d := 2 + int(seed%9)
					for _, par := range trackerTestPars() {
						m := core.New(kind, n, d, rng.New(seed))
						core.WarmUp(m)
						tr := NewTracker(m, rng.New(seed^0xabcd), TrackerConfig{
							ReseedEvery: 4,
							Parallelism: par,
						})
						for round := 1; round <= 24; round++ {
							m.AdvanceRound()
							if round%3 == 0 {
								tr.Observe() // exercises the re-seed cadence
								checkTrackerAgainstRescan(t, m.Graph(), tr, kind.String())
							}
						}
						tr.Close()
					}
				}
			})
		}
	}
}

// TestTrackerParallelismInvariance pins bit-for-bit equality across
// flush-plane worker counts: identically seeded runs must produce
// identical observations and identical per-set states at every W.
func TestTrackerParallelismInvariance(t *testing.T) {
	for _, kind := range []core.Kind{core.SDGR, core.PDG} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			type dump struct {
				Obs  []Observation
				Sets []SetState
			}
			run := func(par int) dump {
				m := core.New(kind, 240, 6, rng.New(7))
				core.WarmUp(m)
				tr := NewTracker(m, rng.New(9), TrackerConfig{ReseedEvery: 3, Parallelism: par})
				defer tr.Close()
				var d dump
				for round := 1; round <= 18; round++ {
					m.AdvanceRound()
					if round%2 == 0 {
						d.Obs = append(d.Obs, tr.Observe())
					}
				}
				d.Sets = tr.Sets()
				return d
			}
			want := run(1)
			for _, par := range trackerTestPars()[1:] {
				if got := run(par); !reflect.DeepEqual(got, want) {
					t.Fatalf("par %d diverged from serial tracker", par)
				}
			}
		})
	}
}

// TestTrackerNeverUndercutsExact is the exact-oracle statistical test: on
// graphs small enough for exhaustive enumeration, every tracked minimum
// is an upper bound on the true h_out — at every sampled round, under
// churn and re-seeding.
func TestTrackerNeverUndercutsExact(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 6; seed++ {
				m := core.New(kind, 10, 2+int(seed%3), rng.New(seed))
				core.WarmUp(m)
				tr := NewTracker(m, rng.New(seed^0x55), TrackerConfig{ReseedEvery: 2})
				for round := 1; round <= 30; round++ {
					m.AdvanceRound()
					g := m.Graph()
					if g.NumAlive() == 0 || g.NumAlive() > ExactLimit {
						continue // Poisson population drifted out of Exact range
					}
					exact, _ := Exact(g)
					obs := tr.Observe()
					if obs.Min < exact-1e-12 {
						t.Fatalf("seed %d round %d: tracker min %v undercuts exact h_out %v (witness %+v)",
							seed, round, obs.Min, exact, obs.MinWitness)
					}
				}
				tr.Close()
			}
		})
	}
}

// TestTrackerDichotomy reproduces the regeneration dichotomy of Theorems
// 3.15/4.16 under the tracker exactly as under Estimate: models without
// regeneration yield zero-ratio witnesses (isolated nodes persist), while
// models with regeneration never show a tracked or searched witness below
// the paper's 0.1 bound.
func TestTrackerDichotomy(t *testing.T) {
	t.Parallel()
	cases := []struct {
		kind core.Kind
		n, d int
		// regen models must stay >= 0.1; the rest must hit 0.
		expectZero bool
	}{
		{core.SDG, 2000, 3, true},
		{core.PDG, 2000, 3, true},
		{core.SDGR, 600, 14, false},
		{core.PDGR, 600, 35, false},
	}
	for _, c := range cases {
		m := core.New(c.kind, c.n, c.d, rng.New(11))
		core.WarmUp(m)

		// The searched baseline on the same warmed snapshot.
		estMin, _ := Estimate(m.Graph(), rng.New(12), Config{}).Min()

		tr := NewTracker(m, rng.New(13), TrackerConfig{ReseedEvery: 2})
		trackedMin := math.Inf(1)
		for round := 1; round <= 20; round++ {
			m.AdvanceRound()
			if obs := tr.Observe(); obs.Min < trackedMin {
				trackedMin = obs.Min
			}
		}
		tr.Close()

		if c.expectZero {
			if estMin != 0 {
				t.Errorf("%v: Estimate found no zero witness (min %v)", c.kind, estMin)
			}
			if trackedMin != 0 {
				t.Errorf("%v: tracker found no zero witness over the window (min %v)", c.kind, trackedMin)
			}
		} else {
			if estMin < 0.1 {
				t.Errorf("%v: Estimate witness below 0.1: %v", c.kind, estMin)
			}
			if trackedMin < 0.1 {
				t.Errorf("%v: tracked witness below 0.1: %v", c.kind, trackedMin)
			}
		}
	}
}

// TestTrackerStaleNegativeControl proves the rescan oracle has teeth: a
// deliberately stale tracker — its hooks detached for a churn window, so
// it drops events — must diverge from the rescan, and a fresh comparison
// must catch it.
func TestTrackerStaleNegativeControl(t *testing.T) {
	t.Parallel()
	m := core.New(core.SDGR, 300, 8, rng.New(21))
	core.WarmUp(m)
	tr := NewTracker(m, rng.New(22), TrackerConfig{})
	defer tr.Close()

	// Healthy phase: tracker matches the rescan.
	for i := 0; i < 5; i++ {
		m.AdvanceRound()
	}
	checkTrackerAgainstRescan(t, m.Graph(), tr, "healthy")

	// Stale phase: drop every event behind the tracker's back.
	chained := m.Hooks()
	m.SetHooks(core.Hooks{})
	for i := 0; i < 2*m.N(); i++ { // long enough to turn over every tracked set
		m.AdvanceRound()
	}
	m.SetHooks(chained)

	diverged := false
	g := m.Graph()
	for _, st := range tr.Sets() {
		live := 0
		for _, h := range st.Members {
			if g.IsAlive(h) {
				live++
			}
		}
		if st.Live != live || st.Boundary != BoundarySize(g, st.Members) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("stale tracker still matched the rescan oracle — the equivalence test cannot detect dropped events")
	}
}

// TestTrackerSharesHookChainWithFlood pins the multi-subscriber contract:
// with a tracker attached, flood.Run chains onto the same hook stream,
// and neither observer drops events — the flooding result is unchanged by
// the tracker's presence, the tracker still matches the rescan oracle
// after the broadcast, and an outer counting hook sees every event
// throughout.
func TestTrackerSharesHookChainWithFlood(t *testing.T) {
	t.Parallel()
	for _, kind := range []core.Kind{core.SDGR, core.PDGR} {
		build := func() core.Model {
			m := core.New(kind, 250, 8, rng.New(31))
			core.WarmUp(m)
			for !m.Graph().IsAlive(m.LastBorn()) {
				m.AdvanceRound()
			}
			return m
		}
		opts := flood.Options{MaxRounds: 20, RunToMax: true, KeepTrajectory: true}

		mPlain := build()
		opts.Source = mPlain.LastBorn()
		want := flood.Run(mPlain, opts)

		m := build()
		edges, deaths := 0, 0
		m.SetHooks(core.Hooks{
			OnEdge:  func(u, v graph.Handle) { edges++ },
			OnDeath: func(h graph.Handle) { deaths++ },
		})
		tr := NewTracker(m, rng.New(32), TrackerConfig{})
		got := flood.Run(m, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: flooding diverged with a tracker on the hook chain\ngot  %+v\nwant %+v", kind, got, want)
		}
		if edges == 0 || deaths == 0 {
			t.Fatalf("%v: outer counting hook lost events under the chain (edges %d, deaths %d)", kind, edges, deaths)
		}
		checkTrackerAgainstRescan(t, m.Graph(), tr, kind.String()+"-after-flood")
		tr.Close()
		after := m.Hooks()
		if after.OnEdge == nil || after.OnDeath == nil {
			t.Fatalf("%v: Close dropped the caller's hooks: %+v", kind, after)
		}
	}
}

// TestTrackerStaticAndOverlayModels extends the oracle to the churn-free
// static wrapper (no events at all — the tracked state must simply stay
// valid) and rejects models without the edge-event contract.
func TestTrackerStaticAndOverlayModels(t *testing.T) {
	t.Parallel()
	g, _ := staticgraph.DOut(300, 5, rng.New(41))
	m := core.NewStaticModel(g, 5)
	tr := NewTracker(m, rng.New(42), TrackerConfig{})
	for i := 0; i < 5; i++ {
		m.AdvanceRound()
	}
	tr.Observe()
	checkTrackerAgainstRescan(t, g, tr, "static")
	tr.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker accepted a model without the edge-event contract")
		}
	}()
	NewTracker(noEdgeEvents{m}, rng.New(43), TrackerConfig{})
}

// noEdgeEvents hides the wrapped model's EdgeEventSource implementation.
type noEdgeEvents struct{ core.Model }

func (noEdgeEvents) EmitsEdgeEvents() bool { return false }

// TestTrackerConfigKnobs exercises the family-disabling sentinels and the
// degenerate sizes.
func TestTrackerConfigKnobs(t *testing.T) {
	t.Parallel()
	m := core.New(core.SDGR, 100, 4, rng.New(51))
	core.WarmUp(m)
	tr := NewTracker(m, rng.New(52), TrackerConfig{
		Singletons:        -1,
		RandomSetsPerSize: -1,
		SkipAgeSets:       true,
		BFSSeeds:          -1,
		GreedySeeds:       3,
		MaxGreedySize:     5,
	})
	defer tr.Close()
	sets := tr.Sets()
	if len(sets) != 3 {
		t.Fatalf("tracked %d sets, want the 3 greedy ones", len(sets))
	}
	for _, st := range sets {
		if st.Family != FamilyGreedy {
			t.Fatalf("unexpected family %v with every other family disabled", st.Family)
		}
		if len(st.Members) > 5 {
			t.Fatalf("greedy set exceeded MaxGreedySize: %d", len(st.Members))
		}
	}
	m.AdvanceRound()
	checkTrackerAgainstRescan(t, m.Graph(), tr, "greedy-only")

	// Tiny model: every family degenerates without panicking.
	tiny := core.New(core.PDGR, 2, 2, rng.New(53))
	core.WarmUp(tiny)
	tr2 := NewTracker(tiny, rng.New(54), TrackerConfig{ReseedEvery: 1})
	defer tr2.Close()
	for i := 0; i < 10; i++ {
		tiny.AdvanceRound()
		tr2.Observe()
	}
	checkTrackerAgainstRescan(t, tiny.Graph(), tr2, "tiny")
}

// TestTrackerLastObservation: the pure-read accessor replays the latest
// Observe result without flushing, and reports absence before the first.
func TestTrackerLastObservation(t *testing.T) {
	m := core.NewStreaming(300, 4, true, rng.New(3))
	m.WarmUp()
	tr := NewTracker(m, rng.New(4), TrackerConfig{})
	defer tr.Close()
	if _, ok := tr.LastObservation(); ok {
		t.Fatal("LastObservation reported a value before the first Observe")
	}
	obs := tr.Observe()
	got, ok := tr.LastObservation()
	if !ok || got.Time != obs.Time || got.N != obs.N || got.Min != obs.Min {
		t.Fatalf("LastObservation %+v != Observe %+v", got, obs)
	}
	// Advancing the model must not change the stored observation (pure
	// read; no flush).
	m.AdvanceRound()
	got2, _ := tr.LastObservation()
	if got2.Time != obs.Time || got2.N != obs.N || got2.Min != obs.Min {
		t.Fatal("LastObservation mutated by model churn without Observe")
	}
}

// BenchmarkTrackerWindowSDGR measures tracking a 20-round window against
// BenchmarkEstimateSDGR's single-snapshot rescan (see expansion_test.go).
func BenchmarkTrackerWindowSDGR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := core.NewStreaming(1000, 14, true, rng.New(1))
		m.WarmUp()
		b.StartTimer()
		tr := NewTracker(m, rng.New(2), TrackerConfig{ReseedEvery: 10})
		for round := 1; round <= 20; round++ {
			m.AdvanceRound()
			tr.Observe()
		}
		tr.Close()
	}
}
