package expansion

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestSpectralGapDisconnected(t *testing.T) {
	g, _ := staticgraph.Disconnected(1, 5)
	if gap := SpectralGap(g, 200, rng.New(1)); gap > 0.02 {
		t.Fatalf("disconnected gap %v, want ~0", gap)
	}
	// Two cliques, no bridge.
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{5 + i, 5 + j})
		}
	}
	g2, _ := staticgraph.FromEdges(10, edges)
	if gap := SpectralGap(g2, 200, rng.New(2)); gap > 0.02 {
		t.Fatalf("two-clique gap %v, want ~0", gap)
	}
}

func TestSpectralGapCompleteGraph(t *testing.T) {
	g, _ := staticgraph.Complete(12)
	// λ2 of the normalized adjacency of K_n is −1/(n−1); the lazy gap is
	// (1 − λ2)/2 ≈ 0.545.
	gap := SpectralGap(g, 300, rng.New(3))
	want := (1.0 + 1.0/11) / 2
	if math.Abs(gap-want) > 0.02 {
		t.Fatalf("K12 gap %v, want ~%v", gap, want)
	}
}

func TestSpectralGapCycleSmall(t *testing.T) {
	g, _ := staticgraph.Cycle(40)
	// Lazy gap of C_n is (1 − cos(2π/n))/2 ≈ π²/n².
	gap := SpectralGap(g, 800, rng.New(4))
	want := (1 - math.Cos(2*math.Pi/40)) / 2
	if math.Abs(gap-want) > 0.01 {
		t.Fatalf("C40 gap %v, want ~%v", gap, want)
	}
}

func TestSpectralGapOrdersModels(t *testing.T) {
	// Expander (static 8-out) >> cycle; regen model ≈ expander baseline.
	r := rng.New(5)
	expander, _ := staticgraph.DOut(300, 8, r)
	cycle, _ := staticgraph.Cycle(300)
	gapExp := SpectralGap(expander, 120, rng.New(6))
	gapCyc := SpectralGap(cycle, 120, rng.New(7))
	if gapExp < 10*gapCyc {
		t.Fatalf("expander gap %v not well above cycle gap %v", gapExp, gapCyc)
	}
	m := core.NewStreaming(300, 14, true, rng.New(8))
	m.WarmUp()
	if gapRegen := SpectralGap(m.Graph(), 120, rng.New(9)); gapRegen < 0.05 {
		t.Fatalf("SDGR spectral gap %v too small", gapRegen)
	}
}

func TestSpectralGapNoRegenSmallD(t *testing.T) {
	// SDG at d=2 has isolated nodes -> disconnected -> near-zero gap,
	// matching the h_out = 0 witnesses of the search.
	m := core.NewStreaming(1500, 2, false, rng.New(10))
	m.WarmUp()
	if gap := SpectralGap(m.Graph(), 200, rng.New(11)); gap > 0.02 {
		t.Fatalf("SDG d=2 gap %v, want ~0", gap)
	}
}

func TestSpectralGapEdgeCases(t *testing.T) {
	if gap := SpectralGap(graph.New(0, 0), 10, rng.New(12)); gap != 0 {
		t.Fatalf("empty graph gap %v", gap)
	}
	g := graph.New(1, 0)
	g.AddNode(0)
	if gap := SpectralGap(g, 10, rng.New(13)); gap != 1 {
		t.Fatalf("singleton gap %v", gap)
	}
	// Edgeless multi-node graph.
	g2 := graph.New(3, 0)
	for i := 0; i < 3; i++ {
		g2.AddNode(float64(i))
	}
	if gap := SpectralGap(g2, 10, rng.New(14)); gap != 0 {
		t.Fatalf("edgeless gap %v", gap)
	}
}

func TestSpectralGapDeterministic(t *testing.T) {
	g, _ := staticgraph.DOut(100, 4, rng.New(15))
	a := SpectralGap(g, 80, rng.New(16))
	b := SpectralGap(g, 80, rng.New(16))
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func BenchmarkSpectralGap(b *testing.B) {
	m := core.NewStreaming(2000, 14, true, rng.New(1))
	m.WarmUp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpectralGap(m.Graph(), 60, rng.New(uint64(i)))
	}
}
