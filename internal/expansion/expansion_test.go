package expansion

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
)

func TestBoundarySizeCycleArc(t *testing.T) {
	g, hs := staticgraph.Cycle(8)
	// An arc of 3 consecutive nodes has boundary 2.
	if got := BoundarySize(g, hs[2:5]); got != 2 {
		t.Fatalf("arc boundary = %d", got)
	}
	// The whole cycle has empty boundary.
	if got := BoundarySize(g, hs); got != 0 {
		t.Fatalf("full-set boundary = %d", got)
	}
}

func TestBoundarySizeIgnoresDeadAndDuplicates(t *testing.T) {
	g, hs := staticgraph.Path(4)
	set := []graph.Handle{hs[0], hs[0], hs[1]}
	if got := BoundarySize(g, set); got != 1 {
		t.Fatalf("boundary with duplicates = %d", got)
	}
	g.RemoveNode(hs[0], nil)
	if got := BoundarySize(g, []graph.Handle{hs[0], hs[1]}); got != 1 {
		t.Fatalf("boundary with dead member = %d", got)
	}
}

func TestRatioPanicsOnEmpty(t *testing.T) {
	g, hs := staticgraph.Path(2)
	g.RemoveNode(hs[0], nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ratio(g, []graph.Handle{hs[0]})
}

func TestExactKnownFamilies(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, []graph.Handle)
		want  float64
	}{
		{"K6", func() (*graph.Graph, []graph.Handle) { return staticgraph.Complete(6) }, 1},
		{"C8", func() (*graph.Graph, []graph.Handle) { return staticgraph.Cycle(8) }, 0.5},
		{"P8", func() (*graph.Graph, []graph.Handle) { return staticgraph.Path(8) }, 0.25},
		{"Star8", func() (*graph.Graph, []graph.Handle) { return staticgraph.Star(8) }, 0.25},
		{"Disc2+4", func() (*graph.Graph, []graph.Handle) { return staticgraph.Disconnected(2, 4) }, 0},
	}
	for _, c := range cases {
		g, _ := c.build()
		got, witness := Exact(g)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Exact = %v, want %v (witness %v)", c.name, got, c.want, witness)
		}
		if len(witness) == 0 || len(witness) > g.NumAlive()/2 {
			t.Errorf("%s: witness size %d invalid", c.name, len(witness))
		}
		// The witness must actually achieve the reported ratio.
		if r := Ratio(g, witness); math.Abs(r-got) > 1e-12 {
			t.Errorf("%s: witness ratio %v != reported %v", c.name, r, got)
		}
	}
}

func TestExactPanicsOnLargeGraph(t *testing.T) {
	g, _ := staticgraph.Cycle(ExactLimit + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Exact(g)
}

func TestEstimateUpperBoundsExact(t *testing.T) {
	// On random graphs small enough for exhaustive search, every witness
	// the estimator finds must be >= the true minimum, and the singleton
	// pass must be exact for size-1 sets.
	for seed := uint64(0); seed < 8; seed++ {
		r := rng.New(seed)
		g, _ := staticgraph.DOut(14, 2, r)
		exact, _ := Exact(g)
		p := Estimate(g, r, Config{})
		est, _ := p.Min()
		if est < exact-1e-12 {
			t.Fatalf("seed %d: estimate %v below exact %v", seed, est, exact)
		}
	}
}

func TestEstimateFindsIsolatedNodes(t *testing.T) {
	g, _ := staticgraph.Disconnected(3, 10)
	p := Estimate(g, rng.New(1), Config{})
	min, w := p.Min()
	if min != 0 {
		t.Fatalf("estimate min = %v, want 0 (isolated nodes)", min)
	}
	if w.Size != 1 || w.Boundary != 0 {
		t.Fatalf("witness %+v, want isolated singleton", w)
	}
}

func TestEstimateFindsPlantedCut(t *testing.T) {
	// Barbell: two 15-cliques joined by one edge. The planted cut (one
	// clique) has ratio 1/15; greedy/BFS candidates must find it.
	const k = 15
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{k + i, k + j})
		}
	}
	edges = append(edges, [2]int{0, k})
	g, _ := staticgraph.FromEdges(2*k, edges)
	p := Estimate(g, rng.New(2), Config{})
	min, w := p.Min()
	if min > 1.0/float64(k)+1e-9 {
		t.Fatalf("estimate min = %v (witness %+v), want <= 1/%d", min, w, k)
	}
}

func TestEstimateRegenModelShape(t *testing.T) {
	// Theorem 3.15 shape: SDGR with d >= 14 has no witness below 0.1
	// anywhere (we check no witness below 0.1 is *found*).
	m := core.NewStreaming(600, 14, true, rng.New(3))
	m.WarmUp()
	p := Estimate(m.Graph(), rng.New(4), Config{})
	min, w := p.Min()
	if min < 0.1 {
		t.Fatalf("SDGR witness below 0.1: %+v", w)
	}
}

func TestEstimateNoRegenShape(t *testing.T) {
	// Lemma 3.5 + 3.6 shape for SDG with small d: zero-expansion
	// singletons exist, yet large sets (>= n·e^{-d/10}) still expand.
	m := core.NewStreaming(2000, 3, false, rng.New(5))
	m.WarmUp()
	p := Estimate(m.Graph(), rng.New(6), Config{})
	min, _ := p.MinInRange(1, 1)
	if min != 0 {
		t.Fatalf("no isolated singleton found in SDG d=3 (min=%v)", min)
	}
}

func TestProfileMinInRange(t *testing.T) {
	p := &Profile{N: 100, BestBySize: map[int]Witness{
		1:  {Size: 1, Boundary: 0, Ratio: 0},
		10: {Size: 10, Boundary: 5, Ratio: 0.5},
		50: {Size: 50, Boundary: 10, Ratio: 0.2},
	}}
	if min, _ := p.Min(); min != 0 {
		t.Fatalf("Min = %v", min)
	}
	if min, w := p.MinInRange(5, 50); min != 0.2 || w.Size != 50 {
		t.Fatalf("MinInRange = %v, %+v", min, w)
	}
	if min, _ := p.MinInRange(60, 90); !math.IsInf(min, 1) {
		t.Fatalf("empty range min = %v", min)
	}
}

func TestEstimateEmptyGraph(t *testing.T) {
	g := graph.New(0, 0)
	p := Estimate(g, rng.New(7), Config{})
	if len(p.BestBySize) != 0 {
		t.Fatal("empty graph must yield empty profile")
	}
	if min, _ := p.Min(); !math.IsInf(min, 1) {
		t.Fatalf("empty profile min = %v", min)
	}
}

func TestSizeLadder(t *testing.T) {
	l := sizeLadder(100)
	if len(l) == 0 || l[len(l)-1] != 50 {
		t.Fatalf("ladder %v must end at n/2", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not increasing: %v", l)
		}
	}
	if got := sizeLadder(3); len(got) != 0 {
		t.Fatalf("tiny ladder %v", got)
	}
	if got := sizeLadder(4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ladder(4) = %v", got)
	}
}

func TestGreedyGrowStopsAtComponent(t *testing.T) {
	// Greedy growth from an isolated node must terminate immediately with
	// a ratio-0 record and not spin.
	g, hs := staticgraph.Disconnected(1, 5)
	records := map[int]int{}
	greedyGrow(g, hs[0], 3, rng.New(1), func(size, boundary int) { records[size] = boundary })
	if b, ok := records[1]; !ok || b != 0 {
		t.Fatalf("records = %v", records)
	}
}

func TestExactWitnessStability(t *testing.T) {
	// Exact on a 2-clique pair must return one whole clique (ratio 0 is
	// impossible here: choose the correct min).
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{4 + i, 4 + j})
		}
	}
	edges = append(edges, [2]int{0, 4})
	g, _ := staticgraph.FromEdges(8, edges)
	min, w := Exact(g)
	if math.Abs(min-0.25) > 1e-12 {
		t.Fatalf("barbell exact = %v", min)
	}
	if len(w) != 4 {
		t.Fatalf("witness size %d", len(w))
	}
}

func BenchmarkEstimateSDGR(b *testing.B) {
	m := core.NewStreaming(1000, 14, true, rng.New(1))
	m.WarmUp()
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Estimate(m.Graph(), r, Config{})
	}
}

func BenchmarkExact16(b *testing.B) {
	g, _ := staticgraph.DOut(16, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}
