// Package expansion measures vertex expansion of graph snapshots.
//
// The vertex isoperimetric number of Definition 3.1,
//
//	h_out(G) = min over 0 < |S| <= |N|/2 of |∂out(S)| / |S|,
//
// is NP-hard to compute, so the package offers two regimes:
//
//   - Exact, by exhaustive subset enumeration, for graphs of at most
//     ExactLimit alive nodes — the oracle used in tests; and
//   - Estimate, a witness search over adversarial candidate families
//     (singletons, the k oldest/youngest nodes, random k-sets, BFS-grown
//     balls around low-degree seeds, and a greedy boundary-minimizing
//     growth). Every candidate yields an *upper bound* h_out <= ratio; the
//     per-size-band minima reproduce the shape of the paper's results:
//     zero-ratio witnesses (isolated nodes) in models without edge
//     regeneration versus no witness below ≈0.1 anywhere in models with
//     regeneration (Theorems 3.15/4.16), and >= 0.1 on large sets even
//     without regeneration (Lemmas 3.6/4.11).
package expansion

import (
	"math"
	"math/bits"
	"sort"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// ExactLimit is the largest alive-node count Exact will enumerate (2^20
// subsets).
const ExactLimit = 20

// BoundarySize returns |∂out(S)|: the number of distinct alive nodes
// outside set that are adjacent to it. Dead or duplicate handles in set are
// ignored.
func BoundarySize(g *graph.Graph, set []graph.Handle) int {
	var inSet, seen graph.Marks
	return boundarySize(g, set, &inSet, &seen)
}

func boundarySize(g *graph.Graph, set []graph.Handle, inSet, seen *graph.Marks) int {
	inSet.Reset()
	seen.Reset()
	for _, h := range set {
		if g.IsAlive(h) {
			inSet.Mark(h)
		}
	}
	n := 0
	for _, h := range set {
		if !g.IsAlive(h) {
			continue
		}
		g.Neighbors(h, func(v graph.Handle) bool {
			if !inSet.Has(v) && seen.Mark(v) {
				n++
			}
			return true
		})
	}
	return n
}

// Ratio returns |∂out(S)|/|S| for a non-empty set (its live members).
func Ratio(g *graph.Graph, set []graph.Handle) float64 {
	live := 0
	for _, h := range set {
		if g.IsAlive(h) {
			live++
		}
	}
	if live == 0 {
		panic("expansion: Ratio of empty set")
	}
	return float64(BoundarySize(g, set)) / float64(live)
}

// Witness is a candidate set's measurement.
type Witness struct {
	Size     int
	Boundary int
	Ratio    float64
}

// Exact computes h_out by enumerating every subset of size <= |N|/2. It
// panics if the graph has more than ExactLimit alive nodes. The returned
// witness slice holds one minimizing set.
func Exact(g *graph.Graph) (float64, []graph.Handle) {
	hs := g.AliveHandles()
	n := len(hs)
	if n == 0 {
		panic("expansion: Exact of empty graph")
	}
	if n > ExactLimit {
		panic("expansion: graph too large for Exact")
	}
	// Dense adjacency bitmasks (deduplicated, symmetric).
	idx := make(map[graph.Handle]int, n)
	for i, h := range hs {
		idx[h] = i
	}
	adj := make([]uint32, n)
	for i, h := range hs {
		g.Neighbors(h, func(v graph.Handle) bool {
			adj[i] |= 1 << uint(idx[v])
			return true
		})
		adj[i] &^= 1 << uint(i) // ignore self (possible via parallel weirdness)
	}

	best := math.Inf(1)
	var bestMask uint32
	half := n / 2
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		size := bits.OnesCount32(mask)
		if size > half {
			continue
		}
		var nb uint32
		m := mask
		for m != 0 {
			i := bits.TrailingZeros32(m)
			m &= m - 1
			nb |= adj[i]
		}
		nb &^= mask
		if ratio := float64(bits.OnesCount32(nb)) / float64(size); ratio < best {
			best = ratio
			bestMask = mask
		}
	}
	var witness []graph.Handle
	for i := 0; i < n; i++ {
		if bestMask&(1<<uint(i)) != 0 {
			witness = append(witness, hs[i])
		}
	}
	return best, witness
}

// Config tunes Estimate.
type Config struct {
	// SampleTrialsPerSize random k-sets are drawn for every ladder size
	// (default 24).
	SampleTrialsPerSize int
	// BFSSeeds low-degree seeds grow BFS balls (default 12).
	BFSSeeds int
	// GreedySeeds greedy boundary-minimizing growths are run (default 4).
	GreedySeeds int
	// MaxGreedySize caps greedy growth (default n/2).
	MaxGreedySize int
	// SkipSingletons disables the exhaustive size-1 pass.
	SkipSingletons bool
}

func (c Config) withDefaults() Config {
	if c.SampleTrialsPerSize == 0 {
		c.SampleTrialsPerSize = 24
	}
	if c.BFSSeeds == 0 {
		c.BFSSeeds = 12
	}
	if c.GreedySeeds == 0 {
		c.GreedySeeds = 4
	}
	return c
}

// Profile records, for every set size at which some candidate was
// evaluated, the best (smallest-ratio) witness found.
type Profile struct {
	// N is the number of alive nodes when the profile was taken.
	N int
	// BestBySize maps set size to the best witness of exactly that size.
	BestBySize map[int]Witness
}

// Min returns the smallest ratio over all witnesses (h_out upper bound),
// with its witness. Returns +Inf if the profile is empty.
func (p *Profile) Min() (float64, Witness) {
	return p.MinInRange(1, p.N/2)
}

// MinInRange returns the smallest ratio among witnesses with lo <= size <=
// hi (+Inf witness if none). Ratio ties break toward the smallest set
// size; iterating sizes in ascending order makes that — and the whole
// result — independent of map iteration order by construction (see the
// determinism contract in DESIGN.md).
func (p *Profile) MinInRange(lo, hi int) (float64, Witness) {
	sizes := make([]int, 0, len(p.BestBySize))
	for size := range p.BestBySize {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	best := math.Inf(1)
	var w Witness
	for _, size := range sizes {
		if size < lo || size > hi {
			continue
		}
		if cand := p.BestBySize[size]; cand.Ratio < best {
			best = cand.Ratio
			w = cand
		}
	}
	return best, w
}

// Estimate searches for low-expansion witnesses and returns the profile of
// the best candidates found per size. The search covers sizes 1..n/2.
func Estimate(g *graph.Graph, r *rng.RNG, cfg Config) *Profile {
	cfg = cfg.withDefaults()
	n := g.NumAlive()
	p := &Profile{N: n, BestBySize: make(map[int]Witness)}
	if n == 0 {
		return p
	}
	hs := g.AliveHandles()
	var inSet, seen graph.Marks
	record := func(size, boundary int) {
		w := Witness{Size: size, Boundary: boundary, Ratio: float64(boundary) / float64(size)}
		if old, ok := p.BestBySize[size]; !ok || w.Ratio < old.Ratio {
			p.BestBySize[size] = w
		}
	}

	// 1. Singletons: exact minimum over size-1 sets (catches isolated
	// nodes and the true min-degree witness).
	if !cfg.SkipSingletons {
		bestDeg := math.MaxInt
		single := make([]graph.Handle, 1)
		for _, h := range hs {
			single[0] = h
			b := boundarySize(g, single, &inSet, &seen)
			if b < bestDeg {
				bestDeg = b
			}
		}
		record(1, bestDeg)
	}

	ladder := sizeLadder(n)

	// 2. Demographic sets: the k oldest and k youngest nodes. In models
	// without regeneration the old cohort is edge-poor — the paper's
	// isolated nodes live there (Lemma 3.5).
	byAge := make([]graph.Handle, len(hs))
	copy(byAge, hs)
	sort.Slice(byAge, func(i, j int) bool { return g.BirthSeq(byAge[i]) < g.BirthSeq(byAge[j]) })
	for _, k := range ladder {
		record(k, boundarySize(g, byAge[:k], &inSet, &seen))
		record(k, boundarySize(g, byAge[len(byAge)-k:], &inSet, &seen))
	}

	// 3. Random k-sets.
	buf := make([]graph.Handle, 0, n/2+1)
	for _, k := range ladder {
		for trial := 0; trial < cfg.SampleTrialsPerSize; trial++ {
			buf = buf[:0]
			inSet.Reset()
			for len(buf) < k {
				h := hs[r.Intn(len(hs))]
				if inSet.Mark(h) {
					buf = append(buf, h)
				}
			}
			record(k, boundarySize(g, buf, &inSet, &seen))
		}
	}

	// 4. BFS balls around the lowest-degree seeds: connected candidate
	// sets whose boundaries are locally small.
	seeds := lowDegreeSeeds(g, hs, cfg.BFSSeeds)
	for _, seed := range seeds {
		ball := bfsOrder(g, seed, n/2, &inSet)
		evalPrefixes(g, ball, ladder, record, &inSet, &seen)
	}

	// 5. Greedy growth: from a random seed, repeatedly absorb the boundary
	// vertex with the fewest external neighbors.
	maxGreedy := cfg.MaxGreedySize
	if maxGreedy <= 0 || maxGreedy > n/2 {
		maxGreedy = n / 2
	}
	for i := 0; i < cfg.GreedySeeds && len(hs) > 0; i++ {
		seed := hs[r.Intn(len(hs))]
		greedyGrow(g, seed, maxGreedy, r, record)
	}
	return p
}

// sizeLadder returns a geometric ladder of set sizes 2..n/2.
func sizeLadder(n int) []int {
	var ladder []int
	last := 1
	for k := 2; k <= n/2; k = int(math.Ceil(float64(k) * 1.6)) {
		if k != last {
			ladder = append(ladder, k)
			last = k
		}
	}
	if n/2 >= 2 && (len(ladder) == 0 || ladder[len(ladder)-1] != n/2) {
		ladder = append(ladder, n/2)
	}
	return ladder
}

func lowDegreeSeeds(g *graph.Graph, hs []graph.Handle, k int) []graph.Handle {
	type nd struct {
		h graph.Handle
		d int
	}
	nodes := make([]nd, len(hs))
	for i, h := range hs {
		nodes[i] = nd{h: h, d: g.DegreeLive(h)}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].d < nodes[j].d })
	if k > len(nodes) {
		k = len(nodes)
	}
	out := make([]graph.Handle, k)
	for i := 0; i < k; i++ {
		out[i] = nodes[i].h
	}
	return out
}

// bfsOrder returns up to limit nodes in BFS order from seed.
func bfsOrder(g *graph.Graph, seed graph.Handle, limit int, visited *graph.Marks) []graph.Handle {
	visited.Reset()
	order := []graph.Handle{seed}
	visited.Mark(seed)
	for i := 0; i < len(order) && len(order) < limit; i++ {
		g.Neighbors(order[i], func(v graph.Handle) bool {
			if visited.Mark(v) {
				order = append(order, v)
			}
			return len(order) < limit
		})
	}
	if len(order) > limit {
		order = order[:limit]
	}
	return order
}

// evalPrefixes measures the boundary of prefix sets of the BFS order at
// each ladder size (and the full set).
func evalPrefixes(g *graph.Graph, order []graph.Handle, ladder []int, record func(size, boundary int), inSet, seen *graph.Marks) {
	for _, k := range ladder {
		if k > len(order) {
			break
		}
		record(k, boundarySize(g, order[:k], inSet, seen))
	}
	if n := len(order); n > 1 {
		record(n, boundarySize(g, order, inSet, seen))
	}
}

// greedyCandidateCap bounds how many boundary vertices a greedy step
// examines; larger boundaries are subsampled so that a step costs
// O(cap · degree) instead of O(boundary · degree).
const greedyCandidateCap = 64

// greedyGrow grows a set from seed, at each step absorbing the boundary
// vertex (among up to greedyCandidateCap sampled candidates) with the
// fewest neighbors outside the current set, recording every intermediate
// ratio. The grown set is returned so callers that track sets over time
// (the Tracker's greedy family) can keep it.
func greedyGrow(g *graph.Graph, seed graph.Handle, maxSize int, r *rng.RNG, record func(size, boundary int)) []graph.Handle {
	var inSet graph.Marks
	inSet.Mark(seed)
	set := []graph.Handle{seed}

	var onBoundary graph.Marks
	var boundary []graph.Handle
	addBoundary := func(h graph.Handle) {
		g.Neighbors(h, func(v graph.Handle) bool {
			if !inSet.Has(v) && onBoundary.Mark(v) {
				boundary = append(boundary, v)
			}
			return true
		})
	}
	addBoundary(seed)

	compact := func() {
		w := 0
		for _, b := range boundary {
			if g.IsAlive(b) && onBoundary.Has(b) && !inSet.Has(b) {
				boundary[w] = b
				w++
			}
		}
		boundary = boundary[:w]
	}

	for len(set) < maxSize {
		compact()
		record(len(set), len(boundary))
		if len(boundary) == 0 {
			return set // the connected component is exhausted
		}
		// Pick the boundary vertex with the fewest external neighbors,
		// examining at most greedyCandidateCap sampled candidates.
		bestIdx, bestExt := -1, math.MaxInt
		examine := len(boundary)
		if examine > greedyCandidateCap {
			examine = greedyCandidateCap
		}
		for c := 0; c < examine; c++ {
			i := c
			if len(boundary) > greedyCandidateCap {
				i = r.Intn(len(boundary))
			}
			ext := 0
			g.Neighbors(boundary[i], func(v graph.Handle) bool {
				if !inSet.Has(v) && !onBoundary.Has(v) {
					ext++
				}
				return true
			})
			if ext < bestExt {
				bestExt, bestIdx = ext, i
			}
		}
		pick := boundary[bestIdx]
		boundary[bestIdx] = boundary[len(boundary)-1]
		boundary = boundary[:len(boundary)-1]
		onBoundary.Unmark(pick)
		inSet.Mark(pick)
		set = append(set, pick)
		addBoundary(pick)
	}
	compact()
	record(len(set), len(boundary))
	return set
}
