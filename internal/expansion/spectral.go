package expansion

import (
	"math"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// SpectralGap estimates 1 − λ₂ of the lazy random walk on the alive graph
// — an independent, witness-free proxy for expansion: by Cheeger-type
// inequalities a constant vertex expander has a constant spectral gap,
// while a disconnected graph has gap 0. It complements the witness search
// of Estimate, which can only ever prove *upper* bounds on h_out.
//
// The estimate runs power iteration on the lazy normalized adjacency
// L = (I + D^{-1/2} A D^{-1/2})/2, deflating the top eigenvector
// (v₁ ∝ √deg), and returns 1 − λ₂(L) ∈ [0, 1]. Isolated nodes contribute a
// zero row, i.e. an eigenvalue 1/2 component, and any disconnected graph
// reports a gap near 0. More iterations sharpen the estimate.
func SpectralGap(g *graph.Graph, iters int, r *rng.RNG) float64 {
	hs := g.AliveHandles()
	n := len(hs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return 1 // trivially mixing
	}
	if iters <= 0 {
		iters = 50
	}

	idx := make(map[graph.Handle]int, n)
	for i, h := range hs {
		idx[h] = i
	}
	deg := make([]float64, n)
	for i, h := range hs {
		deg[i] = float64(g.DegreeLive(h))
	}
	// Top eigenvector of the normalized adjacency: v1_i = sqrt(deg_i).
	v1 := make([]float64, n)
	norm := 0.0
	for i := range v1 {
		v1[i] = math.Sqrt(deg[i])
		norm += v1[i] * v1[i]
	}
	if norm == 0 {
		return 0 // edgeless graph
	}
	norm = math.Sqrt(norm)
	for i := range v1 {
		v1[i] /= norm
	}

	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)

	lambda := 0.0
	for it := 0; it < iters; it++ {
		deflate(x, v1)
		if !normalize(x) {
			return 1 // x collapsed onto v1: no second component, gap maximal
		}
		// y = L x with L = (I + D^{-1/2} A D^{-1/2}) / 2.
		for i := range y {
			y[i] = 0
		}
		for i, h := range hs {
			if deg[i] == 0 {
				continue
			}
			xi := x[i] / math.Sqrt(deg[i])
			g.Neighbors(h, func(v graph.Handle) bool {
				j := idx[v]
				if deg[j] > 0 {
					y[j] += xi / math.Sqrt(deg[j])
				}
				return true
			})
		}
		for i := range y {
			if deg[i] == 0 {
				// A walker on an isolated node stays put: identity row,
				// eigenvalue 1, so isolation forces gap 0 as it must.
				y[i] = x[i]
				continue
			}
			y[i] = (x[i] + y[i]) / 2
		}
		// Rayleigh quotient (x is unit).
		lambda = dot(x, y)
		copy(x, y)
	}
	gap := 1 - lambda
	if gap < 0 {
		gap = 0
	}
	if gap > 1 {
		gap = 1
	}
	return gap
}

func deflate(x, v []float64) {
	c := dot(x, v)
	for i := range x {
		x[i] -= c * v[i]
	}
}

func normalize(x []float64) bool {
	n := math.Sqrt(dot(x, x))
	if n < 1e-300 {
		return false
	}
	for i := range x {
		x[i] /= n
	}
	return true
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
