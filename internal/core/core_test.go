package core

import (
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{SDG: "SDG", SDGR: "SDGR", PDG: "PDG", PDGR: "PDGR"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q", want, k.String())
		}
	}
	if Kind(0).String() != "Kind(0)" {
		t.Errorf("unknown kind string = %q", Kind(0).String())
	}
}

func TestKindPredicates(t *testing.T) {
	if SDG.Regen() || PDG.Regen() || !SDGR.Regen() || !PDGR.Regen() {
		t.Fatal("Regen predicate wrong")
	}
	if SDG.Poisson() || SDGR.Poisson() || !PDG.Poisson() || !PDGR.Poisson() {
		t.Fatal("Poisson predicate wrong")
	}
	if len(Kinds()) != 4 {
		t.Fatal("Kinds() must list all four models")
	}
}

func TestStreamingGrowthPhase(t *testing.T) {
	m := NewStreaming(10, 2, false, rng.New(1))
	for i := 1; i <= 10; i++ {
		m.Step()
		if got := m.Graph().NumAlive(); got != i {
			t.Fatalf("round %d: size %d", i, got)
		}
	}
	// Steady state: size pinned at n.
	for i := 0; i < 25; i++ {
		m.Step()
		if got := m.Graph().NumAlive(); got != 10 {
			t.Fatalf("steady round: size %d", got)
		}
	}
	if m.Round() != 35 {
		t.Fatalf("Round = %d", m.Round())
	}
}

func TestStreamingLifetimeExactlyN(t *testing.T) {
	const n = 20
	m := NewStreaming(n, 1, false, rng.New(2))
	births := map[graph.Handle]int{}
	m.SetHooks(Hooks{
		OnBirth: func(h graph.Handle) { births[h] = m.Round() },
		OnDeath: func(h graph.Handle) {
			if born, ok := births[h]; !ok {
				t.Fatalf("death of unknown node %v", h)
			} else if m.Round()-born != n {
				t.Fatalf("lifetime %d, want exactly %d", m.Round()-born, n)
			}
		},
	})
	for i := 0; i < 5*n; i++ {
		m.Step()
	}
}

func TestStreamingWarmUpRepresentative(t *testing.T) {
	const n, d = 500, 3
	m := NewStreaming(n, d, false, rng.New(3))
	m.WarmUp()
	g := m.Graph()
	if g.NumAlive() != n {
		t.Fatalf("size after warmup = %d", g.NumAlive())
	}
	// Every alive node was born into a full network, so it carries exactly
	// d out-slots (some targets possibly dead).
	g.ForEachAlive(func(h graph.Handle) bool {
		if got := g.OutSlotCount(h); got != d {
			t.Fatalf("node %v has %d out-slots", h, got)
		}
		return true
	})
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSDGExpectedDegreeLemma61(t *testing.T) {
	// Lemma 6.1: in the SDG snapshot every node has expected degree d.
	const n, d = 2000, 4
	m := NewStreaming(n, d, false, rng.New(4))
	m.WarmUp()
	g := m.Graph()
	sum := 0
	g.ForEachAlive(func(h graph.Handle) bool {
		sum += g.DegreeLive(h)
		return true
	})
	mean := float64(sum) / float64(n)
	if math.Abs(mean-d) > 0.15 {
		t.Fatalf("mean degree %v, want ~%d", mean, d)
	}
}

func TestSDGHasIsolatedNodes(t *testing.T) {
	// Lemma 3.5 shape: for constant d a linear fraction is isolated.
	const n, d = 3000, 2
	m := NewStreaming(n, d, false, rng.New(5))
	m.WarmUp()
	g := m.Graph()
	isolated := 0
	g.ForEachAlive(func(h graph.Handle) bool {
		if g.IsIsolated(h) {
			isolated++
		}
		return true
	})
	// Bound from the lemma: (1/6)·e^(-2d)·n ≈ 9 for these parameters. Ask
	// for at least that many (the true count is far larger).
	if want := int(float64(n) * math.Exp(-2*d) / 6); isolated < want {
		t.Fatalf("isolated = %d, want >= %d", isolated, want)
	}
}

func TestSDGRFullOutDegree(t *testing.T) {
	// With regeneration every node keeps exactly d live out-edges
	// (Definition 3.13), so there are exactly d·n live edges and no
	// isolated nodes.
	const n, d = 800, 3
	m := NewStreaming(n, d, true, rng.New(6))
	m.WarmUp()
	g := m.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		if got := g.OutDegreeLive(h); got != d {
			t.Fatalf("node %v live out-degree %d, want %d", h, got, d)
		}
		if g.IsIsolated(h) {
			t.Fatalf("isolated node %v in regen model", h)
		}
		return true
	})
	if got := g.NumEdgesLive(); got != n*d {
		t.Fatalf("live edges = %d, want %d", got, n*d)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingAdvanceRoundEqualsStep(t *testing.T) {
	a := NewStreaming(50, 2, true, rng.New(7))
	b := NewStreaming(50, 2, true, rng.New(7))
	for i := 0; i < 120; i++ {
		a.Step()
		b.AdvanceRound()
	}
	if a.Round() != b.Round() || a.Now() != b.Now() {
		t.Fatal("AdvanceRound and Step disagree")
	}
	if a.Graph().NumAlive() != b.Graph().NumAlive() {
		t.Fatal("sizes diverged")
	}
}

func TestStreamingLastBorn(t *testing.T) {
	m := NewStreaming(10, 2, false, rng.New(8))
	if !m.LastBorn().IsNil() {
		t.Fatal("LastBorn before any birth must be Nil")
	}
	m.Step()
	h := m.LastBorn()
	if !m.Graph().IsAlive(h) {
		t.Fatal("LastBorn not alive")
	}
	if m.Graph().Newest() != h {
		t.Fatal("LastBorn is not the newest node")
	}
}

func TestPoissonSizeConcentration(t *testing.T) {
	// Lemma 4.4 shape: after warmup, size within [0.9n, 1.1n].
	const n = 2000
	m := NewPoisson(n, 2, false, rng.New(9))
	m.WarmUpRounds(8 * n)
	for i := 0; i < 10; i++ {
		m.AdvanceTime(float64(n) / 10)
		size := m.Graph().NumAlive()
		if size < int(0.9*n) || size > int(1.1*n) {
			t.Fatalf("size %d outside [0.9n, 1.1n]", size)
		}
	}
}

func TestPoissonAdvanceRoundTime(t *testing.T) {
	m := NewPoisson(200, 2, true, rng.New(10))
	m.AdvanceRound()
	if math.Abs(m.Now()-1) > 1e-9 {
		t.Fatalf("Now = %v after one round", m.Now())
	}
	m.AdvanceTime(2.5)
	if math.Abs(m.Now()-3.5) > 1e-9 {
		t.Fatalf("Now = %v", m.Now())
	}
}

func TestPoissonRoundCounter(t *testing.T) {
	m := NewPoisson(100, 1, false, rng.New(11))
	for i := 0; i < 500; i++ {
		m.StepEvent()
	}
	if m.Round() != 500 {
		t.Fatalf("Round = %d", m.Round())
	}
}

func TestPDGRRegenInvariant(t *testing.T) {
	// After plenty of churn, every PDGR node that was born into a network
	// with other nodes keeps exactly d live out-edges.
	const n, d = 400, 3
	m := NewPoisson(n, d, true, rng.New(12))
	m.WarmUpRounds(20 * n)
	g := m.Graph()
	bad := 0
	g.ForEachAlive(func(h graph.Handle) bool {
		if g.OutDegreeLive(h) != d {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d of %d nodes lack full out-degree", bad, g.NumAlive())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPDGInvariants(t *testing.T) {
	m := NewPoisson(300, 2, false, rng.New(13))
	m.WarmUpRounds(3000)
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonHooks(t *testing.T) {
	m := NewPoisson(100, 2, true, rng.New(14))
	births, deaths := 0, 0
	m.SetHooks(Hooks{
		OnBirth: func(h graph.Handle) {
			births++
			if !m.Graph().IsAlive(h) {
				t.Fatal("OnBirth handle not alive")
			}
		},
		OnDeath: func(h graph.Handle) {
			deaths++
			if !m.Graph().IsAlive(h) {
				t.Fatal("OnDeath must fire before removal")
			}
		},
	})
	m.WarmUpRounds(2000)
	if births+deaths != 2000 {
		t.Fatalf("hooks fired %d times, want 2000", births+deaths)
	}
	if births-deaths != m.Graph().NumAlive() {
		t.Fatalf("births %d - deaths %d != alive %d", births, deaths, m.Graph().NumAlive())
	}
}

func TestPoissonLastBornNewest(t *testing.T) {
	m := NewPoisson(50, 2, false, rng.New(15))
	m.WarmUpRounds(500)
	h := m.LastBorn()
	// LastBorn may have died since; if alive it must be the newest.
	if m.Graph().IsAlive(h) && m.Graph().Newest() != h {
		t.Fatal("LastBorn is alive but not newest")
	}
}

func TestNewDispatch(t *testing.T) {
	r := rng.New(16)
	for _, k := range Kinds() {
		m := New(k, 50, 2, r.Split())
		if m.Kind() != k {
			t.Fatalf("New(%v).Kind() = %v", k, m.Kind())
		}
		if m.N() != 50 || m.D() != 2 {
			t.Fatal("params not preserved")
		}
		WarmUp(m)
		if m.Graph().NumAlive() == 0 {
			t.Fatalf("%v: empty after warmup", k)
		}
		if err := m.Graph().CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Kind(0)) did not panic")
		}
	}()
	New(Kind(0), 10, 2, rng.New(1))
}

func TestModelDeterminism(t *testing.T) {
	for _, k := range Kinds() {
		a := New(k, 100, 3, rng.New(321))
		b := New(k, 100, 3, rng.New(321))
		WarmUp(a)
		WarmUp(b)
		for i := 0; i < 20; i++ {
			a.AdvanceRound()
			b.AdvanceRound()
		}
		if a.Graph().NumAlive() != b.Graph().NumAlive() {
			t.Fatalf("%v: same seed diverged in size", k)
		}
		if a.Graph().NumEdgesLive() != b.Graph().NumEdgesLive() {
			t.Fatalf("%v: same seed diverged in edges", k)
		}
	}
}

func TestBootstrapFromEmpty(t *testing.T) {
	// The very first node cannot place requests; nothing should panic and
	// invariants must hold through the growth phase.
	for _, k := range Kinds() {
		m := New(k, 10, 3, rng.New(17))
		for i := 0; i < 50; i++ {
			m.AdvanceRound()
		}
		if err := m.Graph().CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestStreamingOldestAge(t *testing.T) {
	// In steady state the oldest alive node is exactly n rounds old
	// (born at t-n+1... lives to t+n-... precisely: ages span 1..n).
	const n = 30
	m := NewStreaming(n, 1, false, rng.New(18))
	m.WarmUp()
	g := m.Graph()
	oldest := g.Oldest()
	age := m.Now() - g.BirthTime(oldest)
	if int(age) != n-1 {
		t.Fatalf("oldest age %v rounds, want %d", age, n-1)
	}
}

func TestMakeRequestsParallelEdgesPossible(t *testing.T) {
	// With 2 nodes and d=5 all requests go to the single other node.
	g := graph.New(2, 5)
	r := rng.New(19)
	a := g.AddNode(0)
	b := g.AddNode(1)
	makeRequests(g, r, b, 5, nil)
	if got := g.OutDegreeLive(b); got != 5 {
		t.Fatalf("out-degree %d, want 5 parallel edges", got)
	}
	if got := g.InDegreeLive(a); got != 5 {
		t.Fatalf("in-degree %d", got)
	}
}

func BenchmarkStreamingStepSDGR(b *testing.B) {
	m := NewStreaming(10000, 20, true, rng.New(1))
	m.WarmUp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkPoissonRoundPDGR(b *testing.B) {
	m := NewPoisson(10000, 20, true, rng.New(1))
	m.WarmUpRounds(30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AdvanceRound()
	}
}
