package core

import (
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// DegreePolicy modifies how request destinations are drawn, exploring the
// paper's open question (Section 5): the plain models have Θ(log n)
// maximum degree, and "finding natural, fully-random topology dynamics
// that yield bounded-degree snapshots of good expansion properties is a
// challenging issue".
//
// Two natural mechanisms are provided:
//
//   - InCap > 0: a hard inbound cap — a request retries (boundedly) until
//     it finds a node below the cap, like Bitcoin Core's maximum inbound
//     connection count;
//   - Choices > 1: power-of-k choices — sample k candidates uniformly and
//     connect to the one with the smallest current in-degree, which
//     classically compresses the maximum load to O(log log n).
//
// The zero value is the paper's plain uniform draw.
type DegreePolicy struct {
	// InCap is the hard inbound-degree cap (0 = none). A draw retries up
	// to 64 times and then falls back to the last candidate, so the model
	// stays total even in pathological states.
	InCap int
	// Choices samples this many candidates and picks the least-loaded
	// (0 or 1 = plain uniform).
	Choices int
}

// IsPlain reports whether the policy is the paper's uniform draw.
func (p DegreePolicy) IsPlain() bool { return p.InCap == 0 && p.Choices <= 1 }

// String names the policy for reports.
func (p DegreePolicy) String() string {
	switch {
	case p.IsPlain():
		return "uniform"
	case p.Choices > 1 && p.InCap > 0:
		return "capped+choices"
	case p.Choices > 1:
		return "2-choice"
	default:
		return "capped"
	}
}

// capRetries bounds the rejection loop of the InCap policy.
const capRetries = 64

// pickTarget draws a destination for a request of src under the policy.
// It returns Nil only when no other node exists.
func (m *Poisson) pickTarget(src graph.Handle) graph.Handle {
	switch {
	case m.policy.Choices > 1:
		best := m.g.RandomAliveExcept(m.r, src)
		if best.IsNil() {
			return best
		}
		bestIn := m.g.InDegreeLive(best)
		for i := 1; i < m.policy.Choices; i++ {
			c := m.g.RandomAliveExcept(m.r, src)
			if in := m.g.InDegreeLive(c); in < bestIn {
				best, bestIn = c, in
			}
		}
		return best
	case m.policy.InCap > 0:
		var last graph.Handle
		for i := 0; i < capRetries; i++ {
			c := m.g.RandomAliveExcept(m.r, src)
			if c.IsNil() {
				return c
			}
			if m.g.InDegreeLive(c) < m.policy.InCap {
				return c
			}
			last = c
		}
		return last
	default:
		return m.g.RandomAliveExcept(m.r, src)
	}
}

// NewPoissonVariant builds a Poisson model whose destination draws follow
// the given policy; with the zero policy it is exactly NewPoisson.
func NewPoissonVariant(n, d int, regen bool, policy DegreePolicy, r *rng.RNG) *Poisson {
	m := NewPoisson(n, d, regen, r)
	m.policy = policy
	return m
}
