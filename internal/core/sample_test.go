package core

import (
	"fmt"
	"math"
	"testing"

	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/stats"
)

// ---------------------------------------------------------------------------
// The distributional-equivalence harness.
//
// SampleStationary's contract is statistical, not trajectory-exact: a
// sampled snapshot must be indistinguishable in distribution from a warmed
// one. The harness pools snapshots from both constructions over fixed seeds
// and compares four observables — age profile (two-sample KS), live
// in-degree distribution (two-sample chi-square), alive-population size and
// live-out-degree mean (z-scores) — and the negative controls prove every
// one of those tests can fail on a wrong sampler. All seeds are fixed, so
// each assertion is deterministic.
// ---------------------------------------------------------------------------

// snapshotPool accumulates the observables of several independent
// measurement-ready snapshots.
type snapshotPool struct {
	aliveCounts []float64
	ages        []float64
	inDeg       []int     // per alive node, pooled over snapshots
	liveOut     []float64 // per alive node, pooled over snapshots
}

func (p *snapshotPool) add(m Model) {
	g := m.Graph()
	p.aliveCounts = append(p.aliveCounts, float64(g.NumAlive()))
	now := m.Now()
	g.ForEachAlive(func(h graph.Handle) bool {
		p.ages = append(p.ages, now-g.BirthTime(h))
		p.inDeg = append(p.inDeg, g.InDegreeLive(h))
		p.liveOut = append(p.liveOut, float64(g.OutDegreeLive(h)))
		return true
	})
}

// pool builds `trials` independent snapshots with consecutive seeds.
func pool(trials int, seed uint64, build func(r *rng.RNG) Model) *snapshotPool {
	p := &snapshotPool{}
	for i := 0; i < trials; i++ {
		p.add(build(rng.New(seed + uint64(i))))
	}
	return p
}

// equivalenceReport holds every statistic the harness compares.
type equivalenceReport struct {
	ksD, ksP float64 // age profile, two-sample KS
	chiStat  float64 // in-degree histogram, two-sample chi-square
	chiDF    int
	chiP     float64
	aliveZ   float64 // alive-population mean difference in joint stderr units
	liveOutZ float64 // live-out-degree mean difference in joint stderr units
	aliveA   float64
	aliveB   float64
	liveOutA float64
	liveOutB float64
}

func (r equivalenceReport) String() string {
	return fmt.Sprintf("KS D=%.4f p=%.3g | chi2=%.1f df=%d p=%.3g | alive %.1f vs %.1f (z=%.2f) | liveout %.3f vs %.3f (z=%.2f)",
		r.ksD, r.ksP, r.chiStat, r.chiDF, r.chiP, r.aliveA, r.aliveB, r.aliveZ, r.liveOutA, r.liveOutB, r.liveOutZ)
}

// compare runs all four tests between two pools.
func compare(a, b *snapshotPool) equivalenceReport {
	var rep equivalenceReport
	rep.ksD, rep.ksP = stats.KolmogorovSmirnov(a.ages, b.ages)
	ha, hb := degreeHists(a.inDeg, b.inDeg)
	rep.chiStat, rep.chiDF, rep.chiP = stats.ChiSquareTwoSample(ha, hb)
	rep.aliveA, rep.aliveB, rep.aliveZ = meanZ(a.aliveCounts, b.aliveCounts)
	rep.liveOutA, rep.liveOutB, rep.liveOutZ = meanZ(a.liveOut, b.liveOut)
	return rep
}

// degreeHists bins both in-degree samples over shared cells, merging the
// sparse upper tail so every kept cell has a pooled count of at least 10
// (the usual chi-square validity rule).
func degreeHists(a, b []int) (ha, hb []int) {
	maxDeg := 0
	for _, v := range append(append([]int{}, a...), b...) {
		if v > maxDeg {
			maxDeg = v
		}
	}
	ha = make([]int, maxDeg+1)
	hb = make([]int, maxDeg+1)
	for _, v := range a {
		ha[v]++
	}
	for _, v := range b {
		hb[v]++
	}
	// Merge cells from the top until the tail cell is dense enough.
	for len(ha) > 2 && ha[len(ha)-1]+hb[len(hb)-1] < 10 {
		ha[len(ha)-2] += ha[len(ha)-1]
		hb[len(hb)-2] += hb[len(hb)-1]
		ha = ha[:len(ha)-1]
		hb = hb[:len(hb)-1]
	}
	return ha, hb
}

// meanZ returns both sample means and their difference in units of the
// combined standard error (Welch z).
func meanZ(a, b []float64) (ma, mb, z float64) {
	var accA, accB stats.Accumulator
	accA.AddN(a...)
	accB.AddN(b...)
	ma, mb = accA.Mean(), accB.Mean()
	se := math.Sqrt(accA.StdErr()*accA.StdErr() + accB.StdErr()*accB.StdErr())
	if se == 0 {
		if ma == mb {
			return ma, mb, 0
		}
		return ma, mb, math.Inf(1)
	}
	return ma, mb, (ma - mb) / se
}

// TestSampleStationaryMatchesWarmUp is the distributional-equivalence
// suite: for every model at n ∈ {300, 1000}, snapshots built by
// SampleStationary must be statistically indistinguishable from snapshots
// built by WarmUp. Thresholds are generous (p > 10⁻³, |z| < 5) and seeds
// are fixed, so the suite is deterministic; the realized statistics sit far
// inside the thresholds (logged with -v). The negative-control test below
// proves the same harness rejects wrong samplers by orders of magnitude.
func TestSampleStationaryMatchesWarmUp(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional suite needs full trial counts")
	}
	for _, kind := range Kinds() {
		for _, n := range []int{300, 1000} {
			kind, n := kind, n
			t.Run(fmt.Sprintf("%s-n%d", kind, n), func(t *testing.T) {
				t.Parallel()
				d := 7
				trials := 20
				warmed := pool(trials, 0xA0, func(r *rng.RNG) Model {
					m := New(kind, n, d, r)
					WarmUp(m)
					return m
				})
				sampled := pool(trials, 0xB0, func(r *rng.RNG) Model {
					return SampleStationary(kind, n, d, r)
				})
				rep := compare(warmed, sampled)
				t.Logf("%s n=%d: %v", kind, n, rep)

				if rep.ksP < 1e-3 {
					t.Errorf("age profiles diverge: %v", rep)
				}
				if rep.chiP < 1e-3 {
					t.Errorf("in-degree distributions diverge: %v", rep)
				}
				if math.Abs(rep.aliveZ) > 5 {
					t.Errorf("alive-population means diverge: %v", rep)
				}
				if math.Abs(rep.liveOutZ) > 5 {
					t.Errorf("live-out-degree means diverge: %v", rep)
				}
				if !kind.Poisson() {
					// Streaming stationarity is deterministic in these
					// observables: exactly n alive nodes with ages exactly
					// {0, …, n−1}, so the KS distance must vanish.
					if rep.ksD != 0 {
						t.Errorf("streaming age profile not exact: D=%v", rep.ksD)
					}
					for _, c := range append(warmed.aliveCounts, sampled.aliveCounts...) {
						if c != float64(n) {
							t.Fatalf("streaming population %v, want exactly %d", c, n)
						}
					}
				}
			})
		}
	}
}

// wrongStationaryPDGR is the deliberately wrong sampler of the negative
// control: it draws the population size correctly but gives nodes uniform
// ages on [0, 2n) instead of Exponential(1/n), and wires every request
// uniformly over all other snapshot nodes, ignoring the destination law —
// plausible-looking mistakes (mean age and mean degree are right) that the
// harness must nevertheless reject.
func wrongStationaryPDGR(n, d int, r *rng.RNG) Model {
	m := NewPoisson(n, d, true, r)
	pop := dist.Poisson(r, float64(n))
	handles := make([]graph.Handle, pop)
	m.time = 2 * float64(n)
	for i := range handles {
		handles[i] = m.g.AddNode(m.time * r.Float64())
	}
	if pop > 0 {
		m.last = handles[pop-1]
	}
	for _, u := range handles {
		for j := 0; j < d && pop > 1; j++ {
			v := handles[r.Intn(pop)]
			for v == u {
				v = handles[r.Intn(pop)]
			}
			m.g.AddOutEdge(u, v)
		}
	}
	return m
}

// TestEquivalenceHarnessNegativeControl proves the harness has power: a
// wrong Poisson sampler fails the age-profile KS and in-degree chi-square
// tests by many orders of magnitude, and an SDG sampler mislabeled as SDGR
// (exactly the "forgot to regenerate" bug) fails the live-out-degree and
// in-degree tests. Without this test a broken harness that always passes
// would silently validate any sampler.
func TestEquivalenceHarnessNegativeControl(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional suite needs full trial counts")
	}
	n, d, trials := 1000, 7, 20

	t.Run("wrong-ages-and-destinations", func(t *testing.T) {
		t.Parallel()
		warmed := pool(trials, 0xA0, func(r *rng.RNG) Model {
			m := New(PDGR, n, d, r)
			WarmUp(m)
			return m
		})
		wrong := pool(trials, 0xB0, func(r *rng.RNG) Model {
			return wrongStationaryPDGR(n, d, r)
		})
		rep := compare(warmed, wrong)
		t.Logf("negative control (uniform ages/destinations): %v", rep)
		if rep.ksP > 1e-6 {
			t.Errorf("KS failed to reject uniform ages: %v", rep)
		}
		if rep.chiP > 1e-6 {
			t.Errorf("chi-square failed to reject uniform destinations: %v", rep)
		}
	})

	t.Run("missing-regeneration", func(t *testing.T) {
		t.Parallel()
		warmed := pool(trials, 0xA0, func(r *rng.RNG) Model {
			m := New(SDGR, n, d, r)
			WarmUp(m)
			return m
		})
		wrong := pool(trials, 0xB0, func(r *rng.RNG) Model {
			return SampleStationary(SDG, n, d, r) // drops what SDGR would re-point
		})
		rep := compare(warmed, wrong)
		t.Logf("negative control (missing regeneration): %v", rep)
		if math.Abs(rep.liveOutZ) < 20 {
			t.Errorf("live-out-degree test failed to reject the no-regen law: %v", rep)
		}
		if rep.chiP > 1e-6 {
			t.Errorf("chi-square failed to reject the no-regen in-degree law: %v", rep)
		}
	})
}

// ---------------------------------------------------------------------------
// Structural and contract tests of the samplers themselves.
// ---------------------------------------------------------------------------

// TestSampleStationaryInvariants checks arena/edge consistency and the
// model-facing basics of sampled snapshots across kinds and corner sizes.
func TestSampleStationaryInvariants(t *testing.T) {
	for _, kind := range Kinds() {
		for _, n := range []int{1, 2, 3, 50, 400} {
			m := SampleStationary(kind, n, 5, rng.New(uint64(n)))
			g := m.Graph()
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if m.Kind() != kind || m.N() != n || m.D() != 5 {
				t.Fatalf("%v n=%d: metadata mismatch", kind, n)
			}
			if g.NumAlive() > 0 {
				if !g.IsAlive(m.LastBorn()) {
					t.Fatalf("%v n=%d: LastBorn not alive", kind, n)
				}
				if got := g.Newest(); got != m.LastBorn() {
					t.Fatalf("%v n=%d: LastBorn %v is not the newest node %v", kind, n, m.LastBorn(), got)
				}
			}
			if !kind.Poisson() && g.NumAlive() != n {
				t.Fatalf("%v n=%d: streaming population %d", kind, n, g.NumAlive())
			}
			if kind.Regen() && n >= 3 {
				// With regeneration every request stays live (n >= 3 avoids
				// the two-node drop corner).
				g.ForEachAlive(func(h graph.Handle) bool {
					if got := g.OutDegreeLive(h); got != 5 {
						t.Fatalf("%v n=%d: live out-degree %d, want 5", kind, n, got)
					}
					return true
				})
			}
		}
	}
}

// TestSampleStationaryEvolves pins the post-sampling contract: a sampled
// model must keep evolving exactly like a warmed one — the streaming ring
// and clock must agree (the node born n rounds ago dies each round), and
// the Poisson jump chain must continue from the sampled state — with graph
// invariants intact throughout.
func TestSampleStationaryEvolves(t *testing.T) {
	for _, kind := range Kinds() {
		n := 120
		m := SampleStationary(kind, n, 4, rng.New(9))
		births, deaths := 0, 0
		m.SetHooks(Hooks{
			OnBirth: func(graph.Handle) { births++ },
			OnDeath: func(graph.Handle) { deaths++ },
		})
		for i := 0; i < 2*n; i++ {
			m.AdvanceRound()
		}
		if err := m.Graph().CheckInvariants(); err != nil {
			t.Fatalf("%v: after evolution: %v", kind, err)
		}
		if !kind.Poisson() {
			if got := m.Graph().NumAlive(); got != n {
				t.Fatalf("%v: population %d after evolution, want %d", kind, got, n)
			}
			if births != 2*n || deaths != 2*n {
				t.Fatalf("%v: %d births / %d deaths over %d rounds, want %d each",
					kind, births, deaths, 2*n, 2*n)
			}
		} else {
			if births == 0 || deaths == 0 {
				t.Fatalf("%v: jump chain did not continue (births=%d deaths=%d)", kind, births, deaths)
			}
			got := m.Graph().NumAlive()
			if got < n/2 || got > 2*n {
				t.Fatalf("%v: population %d drifted far from n=%d", kind, got, n)
			}
		}
	}
}

// TestSampleStationaryDeterministic pins seed determinism: two samplers
// with equal seeds build identical snapshots (checked edge by edge).
func TestSampleStationaryDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := SampleStationary(kind, 200, 6, rng.New(7))
		b := SampleStationary(kind, 200, 6, rng.New(7))
		ga, gb := a.Graph(), b.Graph()
		if ga.NumAlive() != gb.NumAlive() || ga.NumEdgesLive() != gb.NumEdgesLive() {
			t.Fatalf("%v: snapshot shapes differ", kind)
		}
		if a.Now() != b.Now() || a.LastBorn() != b.LastBorn() {
			t.Fatalf("%v: clock or last-born differ", kind)
		}
		ga.ForEachAlive(func(h graph.Handle) bool {
			if ga.BirthTime(h) != gb.BirthTime(h) {
				t.Fatalf("%v: birth time of %v differs", kind, h)
			}
			var ta, tb []graph.Handle
			ga.OutTargets(h, func(x graph.Handle) bool { ta = append(ta, x); return true })
			gb.OutTargets(h, func(x graph.Handle) bool { tb = append(tb, x); return true })
			if len(ta) != len(tb) {
				t.Fatalf("%v: out-degree of %v differs", kind, h)
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("%v: out-edge %d of %v differs", kind, i, h)
				}
			}
			return true
		})
	}
}

// TestSampleStationaryFiresHooks checks that hooks installed before
// sampling observe the construction: one OnBirth per node, one OnEdge per
// materialized request, with both endpoints alive at every OnEdge.
func TestSampleStationaryFiresHooks(t *testing.T) {
	for _, kind := range Kinds() {
		var m Model
		births, edges := 0, 0
		hooks := Hooks{
			OnBirth: func(h graph.Handle) { births++ },
			OnEdge: func(u, v graph.Handle) {
				edges++
				if !m.Graph().IsAlive(u) || !m.Graph().IsAlive(v) {
					t.Fatalf("%v: OnEdge with dead endpoint", kind)
				}
			},
		}
		switch kind {
		case SDG, SDGR:
			sm := NewStreaming(300, 5, kind.Regen(), rng.New(3))
			m = sm
			sm.SetHooks(hooks)
			sm.SampleStationary()
		case PDG, PDGR:
			pm := NewPoisson(300, 5, kind.Regen(), rng.New(3))
			m = pm
			pm.SetHooks(hooks)
			pm.SampleStationary()
		}
		if births != m.Graph().NumAlive() {
			t.Fatalf("%v: %d OnBirth events for %d nodes", kind, births, m.Graph().NumAlive())
		}
		if edges != m.Graph().NumEdgesLive() {
			t.Fatalf("%v: %d OnEdge events for %d live edges", kind, edges, m.Graph().NumEdgesLive())
		}
	}
}

// TestSampleStationaryPanics pins the guard rails: reuse of a non-fresh
// model, unknown kinds, and bounded-degree policies are loud errors.
func TestSampleStationaryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("advanced streaming model", func() {
		m := NewStreaming(10, 2, true, rng.New(1))
		m.Step()
		m.SampleStationary()
	})
	expectPanic("advanced poisson model", func() {
		m := NewPoisson(10, 2, true, rng.New(1))
		m.StepEvent()
		m.SampleStationary()
	})
	expectPanic("sampled twice", func() {
		m := NewPoisson(10, 2, true, rng.New(1))
		m.SampleStationary()
		m.SampleStationary()
	})
	expectPanic("unknown kind", func() {
		SampleStationary(Static, 10, 2, rng.New(1))
	})
	expectPanic("degree policy", func() {
		m := NewPoissonVariant(10, 2, true, DegreePolicy{InCap: 4}, rng.New(1))
		m.SampleStationary()
	})
}

// TestNewReadyModel checks the FastWarmUp dispatch point both ways.
func TestNewReadyModel(t *testing.T) {
	warm := NewReadyModel(SDGR, 50, 3, rng.New(2), false)
	fast := NewReadyModel(SDGR, 50, 3, rng.New(2), true)
	if warm.Graph().NumAlive() != 50 || fast.Graph().NumAlive() != 50 {
		t.Fatalf("populations: warm %d, fast %d, want 50",
			warm.Graph().NumAlive(), fast.Graph().NumAlive())
	}
	if s, ok := warm.(*Streaming); !ok || s.Round() != 100 {
		t.Fatalf("warm path did not run the 2n-round warm-up")
	}
	if s, ok := fast.(*Streaming); !ok || s.Round() != 100 {
		t.Fatalf("fast path did not set the clock to the warmed round")
	}
}

// ---------------------------------------------------------------------------
// WarmUp dispatch regression tests (the WarmUpper interface).
// ---------------------------------------------------------------------------

// plainModel is a minimal third-party Model with no warm-up notion.
type plainModel struct{ Model }

// warmCounter records WarmUp calls through the interface.
type warmCounter struct {
	Model
	calls int
}

func (w *warmCounter) WarmUp() { w.calls++ }

// TestWarmUpNonCoreModels pins the WarmUpper contract: WarmUp warms models
// that implement the interface, and is a silent no-op — not a panic — for
// models that don't (static baselines, wrapper types). The wrapper case is
// the regression: wrapping a core model in a struct used to panic WarmUp
// even though the wrapped model was perfectly usable.
func TestWarmUpNonCoreModels(t *testing.T) {
	static := NewStaticModel(graph.New(0, 0), 0)
	WarmUp(static) // must not panic
	if static.Now() != 0 {
		t.Fatalf("static model advanced during WarmUp")
	}

	inner := New(SDGR, 40, 3, rng.New(5))
	wrapped := plainModel{inner}
	WarmUp(wrapped) // must not panic, must not advance
	if inner.Graph().NumAlive() != 0 {
		t.Fatalf("no-op WarmUp advanced the wrapped model")
	}

	wc := &warmCounter{Model: inner}
	WarmUp(wc)
	if wc.calls != 1 {
		t.Fatalf("WarmUpper implementation called %d times, want 1", wc.calls)
	}

	// The core models still warm through the interface.
	m := New(SDG, 30, 2, rng.New(6))
	WarmUp(m)
	if m.Graph().NumAlive() != 30 {
		t.Fatalf("core model not warmed: population %d", m.Graph().NumAlive())
	}
}
