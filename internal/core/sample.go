package core

import (
	"math"
	"sort"

	"github.com/dyngraph/churnnet/internal/dist"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// This file implements direct stationary-snapshot sampling: building the
// measurement-ready state of a model in O(n·d) expected work instead of
// simulating the warm-up transient (2n rounds, or 7·n·ln n jump events).
// The paper's stationary laws make the warmed state directly samplable —
// see DESIGN.md, "Stationary snapshot sampling", for the derivations.
//
// Streaming models (exact). At any round t > 2n the alive nodes are exactly
// those born at rounds t−n+1 … t, and churn is deterministic: the node born
// at round β dies at round β+n. A request of the node born at b therefore
// evolves as a chain of birth rounds: the initial destination is uniform
// over births [b−n+1, b−1] (the n−1 other nodes alive at round b, rule 1 /
// Lemma 3.14), and whenever the current destination β dies — at round β+n,
// if β+n ≤ t — the regeneration rule re-points it uniformly over births
// [β+1, β+n−1] minus b (the n−2 nodes alive at that instant other than the
// owner). Each chain step strictly increases β, so a request resolves in
// O(1) expected draws, and requests are conditionally independent given the
// (deterministic) churn, so the sampled snapshot has *exactly* the joint
// law of a warmed model. Without regeneration the chain stops after the
// initial draw; a destination born at or before t−n predeceased the
// snapshot and the request dangles (it is simply not materialized — dead
// out-slots are never read by SDG dynamics).
//
// Poisson models (exact marginals). The churn is the M/M/∞ queue with
// λ = 1, µ = 1/n, whose full trajectory is a marked Poisson process
// (birth time, Exp(1/n) lifetime). Stationarity gives the population
// directly: size ~ Poisson(n) with i.i.d. Exponential(1/n) ages. For the
// edges, a request (re)assigned at time s picks uniformly among the nodes
// alive at s other than its owner; those split into "survivors" — current
// snapshot nodes born before s, which by construction live past the
// snapshot and therefore terminate the request — and "ghosts" — nodes
// alive at s but dead by the snapshot time t. By the independence of a
// Poisson process over disjoint regions, conditional on the entire current
// snapshot the ghosts alive at s form a Poisson(n·(1−e^{−(t−s)/n}))
// population whose death times have density ∝ e^{−(δ−s)/n} on (s, t), so
// the request resolves by a survivor-vs-ghost recursion: pick a survivor
// (uniform among current nodes born before s, minus the owner) and stop,
// or pick a ghost, jump to its death time, and — in regenerating models —
// re-point there (rule 3; without regeneration the request dangles). Every
// step is an exact conditional law of the true process; the one
// approximation is that ghost populations are drawn independently per
// request, where the real process shares one trajectory across all
// requests. Marginals (per-node age, per-request destination, hence all
// per-node degree laws) are exact; only higher-order joint moments across
// requests deviate, bounded by the distributional-equivalence suite in
// sample_test.go.

// SampleStationary builds a measurement-ready model of the given kind by
// sampling its stationary snapshot directly, in O(n·d) expected time —
// the fast-warm-up alternative to New followed by WarmUp. The snapshot is
// drawn from the stationary law (exactly for streaming models, with exact
// marginals for Poisson models; see above), so measurements and subsequent
// evolution are statistically indistinguishable from a warmed model, but
// the two are distinct trajectories: a sampled model does not reproduce a
// warmed model's state bit for bit, only its distribution. It panics if
// n <= 0, d < 0, or kind is not one of the four dynamic models.
func SampleStationary(kind Kind, n, d int, r *rng.RNG) Model {
	return SampleStationaryPar(kind, n, d, r, 1)
}

// SampleStationaryPar is SampleStationary with the snapshot-wiring arena
// fill (graph.WireSnapshotEdgesPar) sharded over `workers` goroutines.
// The request-resolution draws stay serial — they consume the RNG — so
// the sampled model is bit-for-bit identical at every worker count;
// workers <= 1 is exactly SampleStationary.
func SampleStationaryPar(kind Kind, n, d int, r *rng.RNG, workers int) Model {
	switch kind {
	case SDG, SDGR:
		m := NewStreaming(n, d, kind.Regen(), r)
		m.SampleStationaryPar(workers)
		return m
	case PDG, PDGR:
		m := NewPoisson(n, d, kind.Regen(), r)
		m.SampleStationaryPar(workers)
		return m
	default:
		panic("core: SampleStationary of unknown model kind")
	}
}

// NewReadyModel builds a measurement-ready model: by direct stationary
// sampling when fastWarmUp is set, by simulating the warm-up transient
// otherwise. It is the dispatch point behind the FastWarmUp knobs of
// experiments.Config and the CLIs.
func NewReadyModel(kind Kind, n, d int, r *rng.RNG, fastWarmUp bool) Model {
	return NewReadyModelPar(kind, n, d, r, fastWarmUp, 1)
}

// NewReadyModelPar is NewReadyModel with the fast-warm-up snapshot wiring
// sharded over `workers` goroutines (simulated warm-up is inherently
// serial and ignores the knob). The built model is bit-for-bit identical
// at every worker count.
func NewReadyModelPar(kind Kind, n, d int, r *rng.RNG, fastWarmUp bool, workers int) Model {
	if fastWarmUp {
		return SampleStationaryPar(kind, n, d, r, workers)
	}
	m := New(kind, n, d, r)
	WarmUp(m)
	return m
}

// SampleStationary populates a freshly constructed streaming model with a
// stationary snapshot as if WarmUp had run: the clock stands at round 2n,
// the ring holds the n nodes born at rounds n+1 … 2n, and every request is
// drawn from its exact stationary law. Hooks installed before the call
// observe the construction: OnBirth fires once per node in birth order
// (before any edge exists — a snapshot is wired after its population, so
// the usual "after its requests" ordering cannot hold), then OnEdge fires
// once per materialized request, grouped by owner in birth order. It
// panics if the model has already been advanced or populated.
func (m *Streaming) SampleStationary() { m.SampleStationaryPar(1) }

// SampleStationaryPar is SampleStationary with the bulk snapshot wiring
// sharded over `workers` goroutines; the sampled model is bit-for-bit
// identical at every worker count.
func (m *Streaming) SampleStationaryPar(workers int) {
	if m.g.NumAlive() != 0 || m.clock.Round() != 0 {
		panic("core: SampleStationary requires a fresh model")
	}
	n, d := m.n, m.d
	t := 2 * n
	m.clock.FastForward(t)

	// Population: births t−n+1 … t, oldest first so birth-sequence order
	// matches age order. byBirth[i] holds the node born at round lo+i.
	lo := t - n + 1
	byBirth := make([]graph.Handle, n)
	for i := 0; i < n; i++ {
		b := lo + i
		h := m.g.AddNode(float64(b))
		m.ring[b%n] = h
		byBirth[i] = h
		if m.hooks.OnBirth != nil {
			m.hooks.OnBirth(h)
		}
	}
	m.last = byBirth[n-1]
	if n == 1 {
		return // no other node ever exists; no request can be placed
	}

	// Resolve every request to a target birth round (node born lo+i sits in
	// arena slot i), then bulk-wire the snapshot in one counting-sort pass.
	starts := make([]int32, n+1)
	targets := make([]uint32, 0, n*d)
	for i := 0; i < n; i++ {
		b := lo + i
		for j := 0; j < d; j++ {
			// Initial destination: uniform over births [b−n+1, b−1].
			beta := b - n + 1 + m.r.Intn(n-1)
			if m.kind.Regen() {
				// The destination born at beta dies at round beta+n; each
				// death before the snapshot re-points the request uniformly
				// over the births [beta+1, beta+n−1] minus b (the owner is
				// always alive and always in that window; see file comment).
				dropped := false
				for beta+n <= t {
					if n == 2 {
						// The only other candidate is the owner: the
						// re-pointed request cannot be placed and dangles
						// permanently (the bootstrap corner of rule 3).
						dropped = true
						break
					}
					c := beta + 1 + m.r.Intn(n-2)
					if c >= b {
						c++
					}
					beta = c
				}
				if dropped {
					continue
				}
			} else if beta < lo {
				continue // destination predeceased the snapshot: dangling request
			}
			targets = append(targets, uint32(beta-lo))
		}
		starts[i+1] = int32(len(targets))
	}
	m.g.WireSnapshotEdgesPar(starts, targets, workers)
	fireEdgeHooks(m.hooks.OnEdge, byBirth, starts, targets)
}

// fireEdgeHooks replays the bulk-wired edges to an OnEdge observer, grouped
// by owner in birth order — the same edges AddOutEdge calls would have
// announced one by one.
func fireEdgeHooks(onEdge func(u, v graph.Handle), byBirth []graph.Handle, starts []int32, targets []uint32) {
	if onEdge == nil {
		return
	}
	for i := range byBirth {
		for _, t := range targets[starts[i]:starts[i+1]] {
			onEdge(byBirth[i], byBirth[t])
		}
	}
}

// SampleStationary populates a freshly constructed Poisson model with a
// stationary snapshot: population size Poisson(n), i.i.d. Exponential(1/n)
// ages, and request destinations drawn by the survivor-vs-ghost recursion
// (see the file comment). The model clock is set to the oldest node's age
// (so every birth time is non-negative) and the jump-chain round counter
// restarts at 0 — it counts post-sampling events only. Hooks installed
// before the call observe the construction exactly as in the streaming
// sampler. It panics if the model has already been advanced or populated,
// or if the model carries a non-plain DegreePolicy (the stationary law of
// the bounded-degree variants has no closed form).
func (m *Poisson) SampleStationary() { m.SampleStationaryPar(1) }

// SampleStationaryPar is SampleStationary with the bulk snapshot wiring
// sharded over `workers` goroutines; the sampled model is bit-for-bit
// identical at every worker count.
func (m *Poisson) SampleStationaryPar(workers int) {
	if m.g.NumAlive() != 0 || m.round != 0 || m.time != 0 || m.hasPending {
		panic("core: SampleStationary requires a fresh model")
	}
	if !m.policy.IsPlain() {
		panic("core: SampleStationary does not support bounded-degree policies")
	}
	nf := float64(m.n)
	pop := dist.Poisson(m.r, nf)
	if pop == 0 {
		return // the empty snapshot has stationary probability e^{−n}
	}

	ages := make([]float64, pop)
	maxAge := 0.0
	for i := range ages {
		ages[i] = dist.Exponential(m.r, 1/nf)
		if ages[i] > maxAge {
			maxAge = ages[i]
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ages))) // oldest first
	m.time = maxAge

	births := make([]float64, pop)
	handles := make([]graph.Handle, pop)
	for i := range ages {
		births[i] = maxAge - ages[i]
		handles[i] = m.g.AddNode(births[i])
		if m.hooks.OnBirth != nil {
			m.hooks.OnBirth(handles[i])
		}
	}
	m.last = handles[pop-1]

	// Resolve every request to a destination index (node i sits in arena
	// slot i), then bulk-wire the snapshot in one counting-sort pass.
	starts := make([]int32, pop+1)
	targets := make([]uint32, 0, pop*m.d)
	for i := 0; i < pop; i++ {
		for j := 0; j < m.d; j++ {
			tgt := m.sampleRequestTarget(births, i)
			if tgt < 0 {
				continue // request dangles at the snapshot (or never placed)
			}
			targets = append(targets, uint32(tgt))
		}
		starts[i+1] = int32(len(targets))
	}
	m.g.WireSnapshotEdgesPar(starts, targets, workers)
	fireEdgeHooks(m.hooks.OnEdge, handles, starts, targets)
}

// sampleRequestTarget resolves one request of the node at index i (births
// sorted ascending) to the index of its destination in the current
// snapshot, or −1 when the request dangles at the snapshot: its
// destination predeceased it in a no-regeneration model, or no other node
// was alive at an assignment time (the bootstrap corner).
func (m *Poisson) sampleRequestTarget(births []float64, i int) int {
	nf := float64(m.n)
	t := m.time
	s := births[i] // current (re)assignment time
	// lo tracks the binary-search floor: s only moves forward along a
	// request chain, so earlier births never need re-scanning.
	lo := 0
	for {
		// Snapshot nodes born before s are alive at s and survive past t;
		// the owner is among them for every s > births[i]. Manual binary
		// search (first index with births[idx] >= s) — this is the hot
		// path, and sort.Search's closure overhead is measurable here.
		hi := len(births)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if births[mid] < s {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		surv := lo
		if surv > i {
			surv-- // exclude the owner from the survivor pool
		}
		// Ghosts: alive at s, dead by t — Poisson given the snapshot.
		tau := t - s
		q := 1 - math.Exp(-tau/nf)
		ghosts := dist.Poisson(m.r, nf*q)
		total := surv + ghosts
		if total == 0 {
			return -1 // no other node alive at the assignment time
		}
		pick := m.r.Intn(total)
		if pick < surv {
			// A survivor terminates the request: it is the destination at
			// the snapshot. Map the pick over the owner's index.
			if pick >= i {
				pick++
			}
			return pick
		}
		if !m.kind.Regen() {
			return -1 // the destination predeceased the snapshot
		}
		// A ghost dies before the snapshot at s+x, with x truncated-
		// exponential on (0, tau]; rule 3 re-points the request there.
		s += -nf * math.Log1p(-m.r.Float64()*q)
	}
}
