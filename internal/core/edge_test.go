package core

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Degenerate-parameter robustness: the models must stay consistent at the
// smallest sizes where most divisions and samplers degenerate.

func TestStreamingSizeOne(t *testing.T) {
	// n = 1: every round the only node dies and a new one is born; no
	// requests can ever be placed.
	m := NewStreaming(1, 3, true, rng.New(1))
	for i := 0; i < 50; i++ {
		m.Step()
		if m.Graph().NumAlive() != 1 {
			t.Fatalf("round %d: size %d", i, m.Graph().NumAlive())
		}
	}
	if m.Graph().NumEdgesLive() != 0 {
		t.Fatal("edges in a single-node network")
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingSizeTwo(t *testing.T) {
	// n = 2: every newborn connects all d requests to the single other
	// node (parallel edges).
	const d = 4
	m := NewStreaming(2, d, false, rng.New(2))
	m.WarmUp()
	g := m.Graph()
	if g.NumAlive() != 2 {
		t.Fatalf("size %d", g.NumAlive())
	}
	newest := g.Newest()
	if got := g.OutDegreeLive(newest); got != d {
		t.Fatalf("newest out-degree %d", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDegreeModels(t *testing.T) {
	for _, kind := range Kinds() {
		m := New(kind, 20, 0, rng.New(3))
		WarmUp(m)
		if m.Graph().NumEdgesLive() != 0 {
			t.Fatalf("%v: edges with d=0", kind)
		}
		isolatedAll := true
		m.Graph().ForEachAlive(func(h graph.Handle) bool {
			if !m.Graph().IsIsolated(h) {
				isolatedAll = false
			}
			return true
		})
		if !isolatedAll {
			t.Fatalf("%v: non-isolated node with d=0", kind)
		}
	}
}

func TestPoissonTinyN(t *testing.T) {
	m := NewPoisson(1, 2, true, rng.New(4))
	m.WarmUpRounds(500)
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.AdvanceTime(10)
	if m.Graph().NumAlive() > 20 {
		t.Fatalf("n=1 population exploded: %d", m.Graph().NumAlive())
	}
}

func TestPoissonVariantTinyN(t *testing.T) {
	for _, policy := range []DegreePolicy{{InCap: 1}, {Choices: 3}} {
		m := NewPoissonVariant(2, 3, true, policy, rng.New(5))
		m.WarmUpRounds(400)
		if err := m.Graph().CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}
