// Package core implements the four dynamic random-graph models of the
// paper, composing the churn processes of package churn with the edge
// dynamics over the arena of package graph:
//
//   - SDG  — streaming churn, no edge regeneration (Definition 3.4)
//   - SDGR — streaming churn, with edge regeneration (Definition 3.13)
//   - PDG  — Poisson churn, no edge regeneration (Definition 4.9)
//   - PDGR — Poisson churn, with edge regeneration (Definition 4.14)
//
// Shared edge dynamics (the numbered rules of those definitions):
//
//  1. A node entering the network makes d independent connection requests,
//     each to a node chosen uniformly at random among the other nodes
//     currently in the network (the paper's 1/(n−1) destination law,
//     Lemma 3.14). Requests may repeat a destination: the graph is a
//     multigraph.
//  2. When a node dies, all its incident edges disappear.
//  3. (Regeneration models only.) When a node loses one of its d outgoing
//     edges because the destination died, it immediately replaces it with a
//     fresh request to a uniformly random other node.
//
// Both model families implement Model, whose AdvanceRound advances the
// network by exactly one message-transmission time unit — one round in the
// streaming model, one unit of continuous time in the Poisson model (the
// paper chooses units with λ = 1 so that both coincide, Section 1.1).
package core

import (
	"fmt"
	"math"

	"github.com/dyngraph/churnnet/internal/churn"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Kind enumerates the four models.
type Kind uint8

// The four dynamic-graph models of the paper.
const (
	SDG Kind = iota + 1
	SDGR
	PDG
	PDGR
)

// String returns the paper's acronym for the model.
func (k Kind) String() string {
	switch k {
	case SDG:
		return "SDG"
	case SDGR:
		return "SDGR"
	case PDG:
		return "PDG"
	case PDGR:
		return "PDGR"
	case Static:
		return "STATIC"
	case Overlay:
		return "OVERLAY"
	case Live:
		return "LIVE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Regen reports whether the model regenerates edges (rule 3).
func (k Kind) Regen() bool { return k == SDGR || k == PDGR }

// Poisson reports whether the model uses Poisson churn.
func (k Kind) Poisson() bool { return k == PDG || k == PDGR }

// Kinds lists all four models in the paper's presentation order.
func Kinds() []Kind { return []Kind{SDG, SDGR, PDG, PDGR} }

// Hooks receive model events; any field may be nil. OnBirth runs after the
// newborn has made its requests; OnDeath runs just before the node is
// removed, while its edges are still inspectable. OnEdge runs right after a
// request edge u→v is created or re-pointed (rule 1 and rule 3), with both
// endpoints alive — it lets observers such as the incremental flooding
// engine track edge-set changes without rescanning neighborhoods.
type Hooks struct {
	OnBirth func(h graph.Handle)
	OnDeath func(h graph.Handle)
	OnEdge  func(u, v graph.Handle)
}

// ChainHooks composes two observers' hooks into one: every event invokes
// first's callback and then next's. Hooks deliberately holds plain funcs —
// a model carries exactly one Hooks value — so an observer that wants to
// listen without evicting an earlier one must chain: save the model's
// current Hooks, install ChainHooks(mine, saved), and restore saved when
// done. Both the incremental flooding engine (flood.Run) and the expansion
// tracker (expansion.Tracker) follow that discipline, which is what lets
// them ride one model's event stream simultaneously without dropping
// events (pinned by the hook-contract tests in hookchain_test.go and the
// shared-chain test in internal/expansion). Observer lifetimes must nest:
// restoring a saved Hooks value unchains everything installed after it.
func ChainHooks(first, next Hooks) Hooks {
	return Hooks{
		OnBirth: chain1(first.OnBirth, next.OnBirth),
		OnDeath: chain1(first.OnDeath, next.OnDeath),
		OnEdge:  chain2(first.OnEdge, next.OnEdge),
	}
}

func chain1(a, b func(graph.Handle)) func(graph.Handle) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(h graph.Handle) { a(h); b(h) }
}

func chain2(a, b func(u, v graph.Handle)) func(u, v graph.Handle) {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(u, v graph.Handle) { a(u, v); b(u, v) }
}

// EdgeEventSource is implemented by models whose edge set changes only
// through events observable via Hooks: every created or redirected edge
// fires Hooks.OnEdge, and every removal is implied by an OnDeath (rule 2 is
// the only way an edge disappears). Incremental observers — flood.Run's
// cut-set engine in particular — require this contract; models that mutate
// edges behind the hooks' back must not claim it.
type EdgeEventSource interface {
	// EmitsEdgeEvents reports whether the edge-event contract above holds.
	EmitsEdgeEvents() bool
}

// Model is the dynamic network seen by flooding and measurement code.
type Model interface {
	// Kind identifies the model.
	Kind() Kind
	// Graph exposes the current snapshot; callers must not mutate it.
	Graph() *graph.Graph
	// N returns the size parameter (steady-state size in the streaming
	// model, expected size λ/µ in the Poisson model).
	N() int
	// D returns the out-degree parameter.
	D() int
	// AdvanceRound advances by one message-transmission time unit.
	AdvanceRound()
	// Now returns elapsed model time in those units.
	Now() float64
	// LastBorn returns the most recently born node (the paper's flooding
	// source: "I_t0 contains the node joining the network at round t0"),
	// or Nil before any birth.
	LastBorn() graph.Handle
	// SetHooks installs event callbacks (replacing any previous ones).
	SetHooks(Hooks)
	// Hooks returns the currently installed callbacks, so observers that
	// need the event stream temporarily (e.g. flood.Run) can chain and
	// later restore them instead of silently dropping a caller's hooks.
	Hooks() Hooks
}

// --- streaming models ---

// Streaming is the SDG/SDGR model: deterministic churn per Definition 3.2
// plus the shared edge dynamics.
type Streaming struct {
	kind  Kind
	n, d  int
	r     *rng.RNG
	g     *graph.Graph
	clock *churn.Streaming
	ring  []graph.Handle // ring[t mod n] = node born at round t
	last  graph.Handle
	hooks Hooks
	buf   []graph.InEdge
}

// NewStreaming builds an empty SDG (regen=false) or SDGR (regen=true) model
// with steady-state size n and out-degree d. It panics if n <= 0 or d < 0.
func NewStreaming(n, d int, regen bool, r *rng.RNG) *Streaming {
	if n <= 0 || d < 0 {
		panic("core: NewStreaming requires n > 0 and d >= 0")
	}
	kind := SDG
	if regen {
		kind = SDGR
	}
	return &Streaming{
		kind:  kind,
		n:     n,
		d:     d,
		r:     r,
		g:     graph.New(n+1, d),
		clock: churn.NewStreaming(n),
		ring:  make([]graph.Handle, n),
	}
}

// Kind implements Model.
func (m *Streaming) Kind() Kind { return m.kind }

// Graph implements Model.
func (m *Streaming) Graph() *graph.Graph { return m.g }

// N implements Model.
func (m *Streaming) N() int { return m.n }

// D implements Model.
func (m *Streaming) D() int { return m.d }

// Now implements Model; streaming time is the round counter.
func (m *Streaming) Now() float64 { return float64(m.clock.Round()) }

// Round returns the current round t (number of Step calls).
func (m *Streaming) Round() int { return m.clock.Round() }

// LastBorn implements Model.
func (m *Streaming) LastBorn() graph.Handle { return m.last }

// SetHooks implements Model.
func (m *Streaming) SetHooks(h Hooks) { m.hooks = h }

// Hooks implements Model.
func (m *Streaming) Hooks() Hooks { return m.hooks }

// EmitsEdgeEvents implements EdgeEventSource: every streaming edge comes
// from makeRequests or regenerate, both of which fire OnEdge.
func (m *Streaming) EmitsEdgeEvents() bool { return true }

// Step advances one round of Definition 3.2: the node born n rounds ago
// (if any) dies, then a new node is born and makes its d requests.
func (m *Streaming) Step() {
	dies := m.clock.Tick()
	t := m.clock.Round()
	slot := t % m.n
	if dies {
		m.die(m.ring[slot])
	}
	m.born(t, slot)
}

// AdvanceRound implements Model: one streaming round per time unit.
func (m *Streaming) AdvanceRound() { m.Step() }

// WarmUp runs 2n rounds so that the network is full (size exactly n) and
// every alive node was born into an already-full network, making the
// snapshot distribution representative of the paper's "fixed t > n".
func (m *Streaming) WarmUp() {
	for i := 0; i < 2*m.n; i++ {
		m.Step()
	}
}

func (m *Streaming) die(h graph.Handle) {
	if m.hooks.OnDeath != nil {
		m.hooks.OnDeath(h)
	}
	m.buf = m.g.RemoveNode(h, m.buf[:0])
	if m.kind.Regen() {
		regenerate(m.g, m.r, m.buf, m.hooks.OnEdge)
	}
}

func (m *Streaming) born(round, slot int) {
	h := m.g.AddNode(float64(round))
	m.ring[slot] = h
	m.last = h
	makeRequests(m.g, m.r, h, m.d, m.hooks.OnEdge)
	if m.hooks.OnBirth != nil {
		m.hooks.OnBirth(h)
	}
}

// --- Poisson models ---

// Poisson is the PDG/PDGR model: jump-chain churn per Definition 4.5 plus
// the shared edge dynamics. The paper's normalization λ = 1, µ = 1/n is
// built in.
type Poisson struct {
	kind   Kind
	n, d   int
	r      *rng.RNG
	g      *graph.Graph
	proc   churn.Poisson
	policy DegreePolicy
	time   float64
	round  int
	last   graph.Handle
	hooks  Hooks
	buf    []graph.InEdge

	// pending is the jump-chain event whose exponential wait overshot the
	// last AdvanceTime horizon: the residual wait and the already-sampled
	// kind are carried to the next call, so AdvanceTime(a); AdvanceTime(b)
	// consumes the RNG exactly like AdvanceTime(a+b) (chunking invariance).
	// Valid because no event is applied between sampling and consumption:
	// the population — and with it both the exponential rate and the
	// birth/death split — is unchanged, and the exponential residual keeps
	// the same law by memorylessness.
	pendingDt   float64
	pendingKind churn.EventKind
	hasPending  bool
}

// NewPoisson builds an empty PDG (regen=false) or PDGR (regen=true) model
// with expected size n and out-degree d. It panics if n <= 0 or d < 0.
func NewPoisson(n, d int, regen bool, r *rng.RNG) *Poisson {
	if n <= 0 || d < 0 {
		panic("core: NewPoisson requires n > 0 and d >= 0")
	}
	kind := PDG
	if regen {
		kind = PDGR
	}
	return &Poisson{
		kind: kind,
		n:    n,
		d:    d,
		r:    r,
		g:    graph.New(n+n/2, d),
		proc: churn.NewPoisson(n),
	}
}

// Kind implements Model.
func (m *Poisson) Kind() Kind { return m.kind }

// Graph implements Model.
func (m *Poisson) Graph() *graph.Graph { return m.g }

// N implements Model.
func (m *Poisson) N() int { return m.n }

// D implements Model.
func (m *Poisson) D() int { return m.d }

// Now implements Model; Poisson time is continuous with λ = 1.
func (m *Poisson) Now() float64 { return m.time }

// Round returns the jump-chain round counter r of Definition 4.5.
func (m *Poisson) Round() int { return m.round }

// LastBorn implements Model.
func (m *Poisson) LastBorn() graph.Handle { return m.last }

// SetHooks implements Model.
func (m *Poisson) SetHooks(h Hooks) { m.hooks = h }

// Hooks implements Model.
func (m *Poisson) Hooks() Hooks { return m.hooks }

// EmitsEdgeEvents implements EdgeEventSource: every Poisson edge comes from
// the birth-request loop or death regeneration, both of which fire OnEdge.
func (m *Poisson) EmitsEdgeEvents() bool { return true }

// next returns the pending carried event if one exists, otherwise samples a
// fresh jump-chain step.
func (m *Poisson) next() (dt float64, kind churn.EventKind) {
	if m.hasPending {
		m.hasPending = false
		return m.pendingDt, m.pendingKind
	}
	return m.proc.Next(m.r, m.g.NumAlive())
}

// StepEvent advances one jump-chain round and returns the event kind.
func (m *Poisson) StepEvent() churn.EventKind {
	dt, kind := m.next()
	m.time += dt
	m.round++
	m.apply(kind)
	return kind
}

// AdvanceRound implements Model: process every churn event in the next
// unit of continuous time.
func (m *Poisson) AdvanceRound() { m.AdvanceTime(1) }

// AdvanceTime runs the model forward by duration time units. The event
// whose wait overshoots the horizon is carried — residual wait and kind —
// to the next call, so trajectories do not depend on how the timeline is
// chunked into AdvanceTime calls.
func (m *Poisson) AdvanceTime(duration float64) {
	target := m.time + duration
	for {
		dt, kind := m.next()
		if m.time+dt > target {
			m.pendingDt = m.time + dt - target
			m.pendingKind = kind
			m.hasPending = true
			m.time = target
			return
		}
		m.time += dt
		m.round++
		m.apply(kind)
	}
}

// WarmUpRounds advances k jump-chain rounds.
func (m *Poisson) WarmUpRounds(k int) {
	for i := 0; i < k; i++ {
		m.StepEvent()
	}
}

// WarmUp advances the jump chain for 7·n·ln(n) rounds, the horizon after
// which the paper's Poisson-model statements hold (fixed r >= 7·n·log n in
// Lemmas 4.8, 4.10 and Theorems 4.16, 4.20).
func (m *Poisson) WarmUp() {
	m.WarmUpRounds(int(7 * float64(m.n) * math.Log(float64(m.n)+1)))
}

func (m *Poisson) apply(kind churn.EventKind) {
	if kind == churn.Birth {
		h := m.g.AddNode(m.time)
		m.last = h
		for i := 0; i < m.d; i++ {
			tgt := m.pickTarget(h)
			if tgt.IsNil() {
				break
			}
			m.g.AddOutEdge(h, tgt)
			if m.hooks.OnEdge != nil {
				m.hooks.OnEdge(h, tgt)
			}
		}
		if m.hooks.OnBirth != nil {
			m.hooks.OnBirth(h)
		}
		return
	}
	victim := m.g.RandomAlive(m.r)
	if victim.IsNil() {
		return // cannot happen: death events need a non-empty population
	}
	if m.hooks.OnDeath != nil {
		m.hooks.OnDeath(victim)
	}
	m.buf = m.g.RemoveNode(victim, m.buf[:0])
	if m.kind.Regen() {
		for _, e := range m.buf {
			tgt := m.pickTarget(e.Src)
			if tgt.IsNil() {
				continue
			}
			m.g.RedirectOutEdge(e.Src, e.Slot, tgt)
			if m.hooks.OnEdge != nil {
				m.hooks.OnEdge(e.Src, tgt)
			}
		}
	}
}

// --- shared edge dynamics ---

// makeRequests performs rule 1: d independent uniform requests from h,
// firing onEdge (if non-nil) per placed edge. In a network with no other
// node (only during bootstrap) requests cannot be placed and are skipped.
func makeRequests(g *graph.Graph, r *rng.RNG, h graph.Handle, d int, onEdge func(u, v graph.Handle)) {
	for i := 0; i < d; i++ {
		tgt := g.RandomAliveExcept(r, h)
		if tgt.IsNil() {
			return
		}
		g.AddOutEdge(h, tgt)
		if onEdge != nil {
			onEdge(h, tgt)
		}
	}
}

// regenerate performs rule 3 for every request orphaned by a death, firing
// onEdge (if non-nil) per re-pointed edge. A request is dropped only if no
// other node exists (bootstrap corner case).
func regenerate(g *graph.Graph, r *rng.RNG, orphans []graph.InEdge, onEdge func(u, v graph.Handle)) {
	for _, e := range orphans {
		tgt := g.RandomAliveExcept(r, e.Src)
		if tgt.IsNil() {
			continue
		}
		g.RedirectOutEdge(e.Src, e.Slot, tgt)
		if onEdge != nil {
			onEdge(e.Src, tgt)
		}
	}
}

// New builds any of the four models from its Kind with a fresh graph.
func New(kind Kind, n, d int, r *rng.RNG) Model {
	switch kind {
	case SDG, SDGR:
		return NewStreaming(n, d, kind.Regen(), r)
	case PDG, PDGR:
		return NewPoisson(n, d, kind.Regen(), r)
	default:
		panic("core: unknown model kind")
	}
}

// WarmUpper is implemented by models that must simulate a transient before
// measurements are representative. The core models implement it (2n rounds
// for streaming, 7·n·ln n jump rounds for Poisson — the paper's horizons),
// and so does the address-gossip overlay.
type WarmUpper interface {
	// WarmUp advances the model to its measurement-ready state.
	WarmUp()
}

// WarmUp brings any model to its measurement-ready state via its WarmUpper
// implementation. Models without one — static wrappers, custom Model
// implementations whose initial state is already representative — are left
// untouched: WarmUp is deliberately a no-op for them, not a panic, so
// generic harness code can warm whatever Model it is handed.
func WarmUp(m Model) {
	if w, ok := m.(WarmUpper); ok {
		w.WarmUp()
	}
}
