package core

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// fingerprint captures everything observable about a Poisson model's state:
// clock, jump-chain position, and the full alive graph with every out-slot
// (dead targets included, since no-regeneration models keep them).
func fingerprint(t *testing.T, m *Poisson) []uint64 {
	t.Helper()
	g := m.Graph()
	fp := []uint64{
		uint64(m.Round()),
		uint64(g.NumAlive()),
		uint64(g.NextBirthSeq()),
	}
	g.ForEachAlive(func(h graph.Handle) bool {
		fp = append(fp, uint64(h.Slot), uint64(h.Gen), g.BirthSeq(h))
		for i := 0; i < g.OutSlotCount(h); i++ {
			tgt, _ := g.OutTarget(h, i)
			fp = append(fp, uint64(tgt.Slot), uint64(tgt.Gen))
		}
		return true
	})
	return fp
}

func equalFP(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPoissonAdvanceTimeChunkingInvariant is the regression test for the
// discarded-overshoot bug: AdvanceTime used to sample (dt, kind) and throw
// the kind away when dt overshot the horizon, so chunked advancement
// drained the RNG differently from one-shot advancement and identically
// seeded trajectories diverged with snapshot granularity. With the pending
// event carried across calls, any chunking of the same timeline must
// produce the same population and graph.
func TestPoissonAdvanceTimeChunkingInvariant(t *testing.T) {
	for _, regen := range []bool{false, true} {
		for seed := uint64(0); seed < 5; seed++ {
			const n, d = 120, 3
			oneShot := NewPoisson(n, d, regen, rng.New(seed))
			perUnit := NewPoisson(n, d, regen, rng.New(seed))
			ragged := NewPoisson(n, d, regen, rng.New(seed))

			const horizon = 40
			oneShot.AdvanceTime(horizon)
			for i := 0; i < horizon; i++ {
				perUnit.AdvanceTime(1)
			}
			for elapsed := 0.0; elapsed < horizon; elapsed += 0.7 {
				step := 0.7
				if horizon-elapsed < step {
					step = horizon - elapsed
				}
				ragged.AdvanceTime(step)
			}

			want := fingerprint(t, oneShot)
			if got := fingerprint(t, perUnit); !equalFP(got, want) {
				t.Fatalf("regen=%v seed %d: AdvanceTime(1)×%d diverged from AdvanceTime(%d)",
					regen, seed, horizon, horizon)
			}
			if got := fingerprint(t, ragged); !equalFP(got, want) {
				t.Fatalf("regen=%v seed %d: ragged chunking diverged from one-shot",
					regen, seed)
			}
			if oneShot.Now() != perUnit.Now() || oneShot.Now() != ragged.Now() {
				t.Fatalf("clocks diverged: %v %v %v", oneShot.Now(), perUnit.Now(), ragged.Now())
			}

			// The carried pending event must also keep subsequent jump-chain
			// stepping in lockstep.
			for i := 0; i < 50; i++ {
				ka := oneShot.StepEvent()
				kb := perUnit.StepEvent()
				if ka != kb {
					t.Fatalf("regen=%v seed %d: post-advance StepEvent %d diverged", regen, seed, i)
				}
			}
			if !equalFP(fingerprint(t, oneShot), fingerprint(t, perUnit)) {
				t.Fatalf("regen=%v seed %d: post-advance stepping diverged", regen, seed)
			}
		}
	}
}

// TestPoissonStepEventConsumesPending pins the StepEvent/AdvanceTime
// interleaving: the event whose wait straddled the horizon is the next
// event the jump chain delivers.
func TestPoissonStepEventConsumesPending(t *testing.T) {
	a := NewPoisson(80, 2, true, rng.New(7))
	b := NewPoisson(80, 2, true, rng.New(7))
	a.WarmUpRounds(500)
	b.WarmUpRounds(500)
	// a: split the next 5 units in two; b: one shot. Then step both.
	a.AdvanceTime(2.5)
	a.AdvanceTime(2.5)
	b.AdvanceTime(5)
	if a.Round() != b.Round() {
		t.Fatalf("rounds diverged: %d vs %d", a.Round(), b.Round())
	}
	for i := 0; i < 20; i++ {
		if a.StepEvent() != b.StepEvent() {
			t.Fatalf("step %d diverged after chunked advancement", i)
		}
	}
}
