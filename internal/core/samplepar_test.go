package core

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// TestSampleStationaryParInvariance pins that the snapshot-wiring worker
// count never surfaces in the sampled model: identical seeds must produce
// graphs that agree on every adjacency observable — including in-list
// order — at any workers setting. (The RNG-consuming draws are serial in
// both paths; only the arena fill shards.)
func TestSampleStationaryParInvariance(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 3; seed++ {
				serial := SampleStationary(kind, 400, 2+int(seed)*5, rng.New(seed))
				for _, workers := range []int{2, 8} {
					par := SampleStationaryPar(kind, 400, 2+int(seed)*5, rng.New(seed), workers)
					compareSnapshots(t, serial.Graph(), par.Graph(), kind, seed, workers)
					if serial.LastBorn() != par.LastBorn() {
						t.Fatalf("%v seed %d workers %d: LastBorn differs", kind, seed, workers)
					}
				}
			}
		})
	}
}

func compareSnapshots(t *testing.T, a, b *graph.Graph, kind Kind, seed uint64, workers int) {
	t.Helper()
	if a.NumAlive() != b.NumAlive() || a.NumSlots() != b.NumSlots() {
		t.Fatalf("%v seed %d workers %d: population differs (%d/%d vs %d/%d)",
			kind, seed, workers, a.NumAlive(), a.NumSlots(), b.NumAlive(), b.NumSlots())
	}
	a.ForEachAlive(func(h graph.Handle) bool {
		var oa, ob, ia, ib []graph.Handle
		a.OutTargets(h, func(x graph.Handle) bool { oa = append(oa, x); return true })
		b.OutTargets(h, func(x graph.Handle) bool { ob = append(ob, x); return true })
		a.InSources(h, func(x graph.Handle) bool { ia = append(ia, x); return true })
		b.InSources(h, func(x graph.Handle) bool { ib = append(ib, x); return true })
		if len(oa) != len(ob) || len(ia) != len(ib) {
			t.Fatalf("%v seed %d workers %d: node %v degree differs", kind, seed, workers, h)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("%v seed %d workers %d: node %v out target %d differs", kind, seed, workers, h, i)
			}
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("%v seed %d workers %d: node %v in source %d differs", kind, seed, workers, h, i)
			}
		}
		return true
	})
}
