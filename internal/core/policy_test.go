package core

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

func maxInDegree(g *graph.Graph) int {
	maxIn := 0
	g.ForEachAlive(func(h graph.Handle) bool {
		if in := g.InDegreeLive(h); in > maxIn {
			maxIn = in
		}
		return true
	})
	return maxIn
}

func TestDegreePolicyString(t *testing.T) {
	cases := map[string]DegreePolicy{
		"uniform":        {},
		"capped":         {InCap: 20},
		"2-choice":       {Choices: 2},
		"capped+choices": {InCap: 20, Choices: 2},
	}
	for want, p := range cases {
		if p.String() != want {
			t.Errorf("%+v.String() = %q, want %q", p, p.String(), want)
		}
	}
	if !(DegreePolicy{}).IsPlain() || (DegreePolicy{InCap: 1}).IsPlain() {
		t.Fatal("IsPlain wrong")
	}
}

func TestPlainVariantMatchesNewPoisson(t *testing.T) {
	a := NewPoisson(300, 5, true, rng.New(1))
	b := NewPoissonVariant(300, 5, true, DegreePolicy{}, rng.New(1))
	a.WarmUpRounds(3000)
	b.WarmUpRounds(3000)
	if a.Graph().NumAlive() != b.Graph().NumAlive() ||
		a.Graph().NumEdgesLive() != b.Graph().NumEdgesLive() {
		t.Fatal("zero policy changed the model")
	}
}

func TestInCapEnforced(t *testing.T) {
	const n, d, cap = 600, 10, 25
	m := NewPoissonVariant(n, d, true, DegreePolicy{InCap: cap}, rng.New(2))
	m.WarmUpRounds(12 * n)
	// The cap admits rare overflow (bounded retries), but at this head
	// room (mean in-degree d = 10 vs cap 25) none should occur.
	if got := maxInDegree(m.Graph()); got > cap {
		t.Fatalf("max in-degree %d exceeds cap %d", got, cap)
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChoiceCompressesMaxDegree(t *testing.T) {
	const n, d = 2000, 10
	plain := NewPoisson(n, d, true, rng.New(3))
	choice := NewPoissonVariant(n, d, true, DegreePolicy{Choices: 2}, rng.New(3))
	plain.WarmUpRounds(10 * n)
	choice.WarmUpRounds(10 * n)
	p, c := maxInDegree(plain.Graph()), maxInDegree(choice.Graph())
	if c >= p {
		t.Fatalf("2-choice max in-degree %d not below plain %d", c, p)
	}
}

func TestVariantStillFloodsAndExpands(t *testing.T) {
	// The open-question variant must keep the PDGR guarantees: full
	// out-degree and no isolated nodes.
	const n, d = 500, 20
	m := NewPoissonVariant(n, d, true, DegreePolicy{InCap: 3 * d}, rng.New(4))
	m.WarmUpRounds(10 * n)
	g := m.Graph()
	g.ForEachAlive(func(h graph.Handle) bool {
		if g.OutDegreeLive(h) != d {
			t.Fatalf("node %v out-degree %d", h, g.OutDegreeLive(h))
		}
		return true
	})
}

func TestCapFallbackKeepsModelTotal(t *testing.T) {
	// A cap below d is structurally impossible to respect (mean in-degree
	// is d); the bounded-retry fallback must keep the simulation running
	// rather than livelocking.
	m := NewPoissonVariant(200, 8, true, DegreePolicy{InCap: 2}, rng.New(5))
	m.WarmUpRounds(4000)
	if m.Graph().NumAlive() == 0 {
		t.Fatal("model died")
	}
	if err := m.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
