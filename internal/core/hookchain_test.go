package core

import (
	"testing"

	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

// Hook-contract regression tests: every edge-set change of every model
// must be observable through the OnEdge/OnDeath stream (the
// EdgeEventSource contract that both the flooding engine and the
// expansion tracker ride), and ChainHooks must let any number of
// observers share that stream without dropping events.

// TestChainHooksComposition pins ChainHooks semantics: nil slots pass the
// other side through, both callbacks fire, and first's runs before next's.
func TestChainHooksComposition(t *testing.T) {
	var order []string
	mk := func(tag string) Hooks {
		return Hooks{
			OnBirth: func(graph.Handle) { order = append(order, tag+"-birth") },
			OnDeath: func(graph.Handle) { order = append(order, tag+"-death") },
			OnEdge:  func(u, v graph.Handle) { order = append(order, tag+"-edge") },
		}
	}
	h := ChainHooks(mk("a"), ChainHooks(mk("b"), mk("c")))
	h.OnBirth(graph.Handle{})
	h.OnEdge(graph.Handle{}, graph.Handle{})
	h.OnDeath(graph.Handle{})
	want := []string{"a-birth", "b-birth", "c-birth", "a-edge", "b-edge", "c-edge", "a-death", "b-death", "c-death"}
	if len(order) != len(want) {
		t.Fatalf("chain fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("chain fired %v, want %v", order, want)
		}
	}

	// Nil slots must not install wrappers around nothing.
	h = ChainHooks(Hooks{}, Hooks{})
	if h.OnBirth != nil || h.OnDeath != nil || h.OnEdge != nil {
		t.Fatal("chaining empty hooks must stay empty")
	}
	births := 0
	h = ChainHooks(Hooks{OnBirth: func(graph.Handle) { births++ }}, Hooks{})
	if h.OnDeath != nil || h.OnEdge != nil {
		t.Fatal("nil slots leaked wrappers")
	}
	h.OnBirth(graph.Handle{})
	if births != 1 {
		t.Fatal("single-sided chain dropped the callback")
	}
}

// edgeLedger audits the event stream against the graph: it maintains the
// live-edge count from OnEdge/OnDeath alone, which balances with
// NumEdgesLive only if every emission path fires exactly once per edge
// change — birth requests (makeRequests and the Poisson birth loop), both
// regeneration paths, and rule-2 removals implied by deaths.
type edgeLedger struct {
	g      *graph.Graph
	edges  int
	births int
	deaths int
	onEdge int
}

func (l *edgeLedger) hooks() Hooks {
	return Hooks{
		OnBirth: func(graph.Handle) { l.births++ },
		OnDeath: func(h graph.Handle) {
			l.deaths++
			// The hook fires pre-removal: the dying node's live degree is
			// exactly the number of edges rule 2 is about to erase.
			l.edges -= l.g.DegreeLive(h)
		},
		OnEdge: func(u, v graph.Handle) {
			if !l.g.IsAlive(u) || !l.g.IsAlive(v) {
				panic("OnEdge fired with a dead endpoint")
			}
			l.onEdge++
			l.edges++
		},
	}
}

func (l *edgeLedger) check(t *testing.T, tag string, round int) {
	t.Helper()
	if got := l.g.NumEdgesLive(); got != l.edges {
		t.Fatalf("%s round %d: event-ledger edge count %d, graph has %d (births %d, deaths %d, onEdge %d)",
			tag, round, l.edges, got, l.births, l.deaths, l.onEdge)
	}
}

// TestEdgeEventLedgerAllModels balances the event ledger on every model
// kind and on the bounded-degree Poisson variants, so each emission path
// — makeRequests, the Poisson apply birth loop, and both regeneration
// paths — is pinned to fire exactly once per edge change.
func TestEdgeEventLedgerAllModels(t *testing.T) {
	build := []struct {
		tag string
		mk  func() Model
	}{
		{"SDG", func() Model { return New(SDG, 120, 5, rng.New(1)) }},
		{"SDGR", func() Model { return New(SDGR, 120, 5, rng.New(2)) }},
		{"PDG", func() Model { return New(PDG, 120, 5, rng.New(3)) }},
		{"PDGR", func() Model { return New(PDGR, 120, 5, rng.New(4)) }},
		{"PDGR-incap", func() Model { return NewPoissonVariant(120, 5, true, DegreePolicy{InCap: 10}, rng.New(5)) }},
		{"PDGR-choices", func() Model { return NewPoissonVariant(120, 5, true, DegreePolicy{Choices: 2}, rng.New(6)) }},
	}
	for _, c := range build {
		c := c
		t.Run(c.tag, func(t *testing.T) {
			t.Parallel()
			m := c.mk()
			WarmUp(m)
			led := &edgeLedger{g: m.Graph(), edges: m.Graph().NumEdgesLive()}
			m.SetHooks(led.hooks())
			for round := 1; round <= 40; round++ {
				m.AdvanceRound()
				led.check(t, c.tag, round)
			}
			if led.onEdge == 0 || led.deaths == 0 {
				t.Fatalf("%s: stream too quiet to be a regression test (onEdge %d, deaths %d)",
					c.tag, led.onEdge, led.deaths)
			}
			if m.Kind().Regen() && led.onEdge <= led.births*m.D() {
				t.Fatalf("%s: no regeneration edges observed (onEdge %d, births %d × d %d)",
					c.tag, led.onEdge, led.births, m.D())
			}
		})
	}
}

// TestChainedObserversSeeIdenticalStreams chains two independent counting
// observers through ChainHooks and checks that neither shadows the other
// — the multi-subscriber property the flooding engine and the expansion
// tracker rely on when they share one model.
func TestChainedObserversSeeIdenticalStreams(t *testing.T) {
	type counts struct{ births, deaths, edges int }
	count := func(c *counts) Hooks {
		return Hooks{
			OnBirth: func(graph.Handle) { c.births++ },
			OnDeath: func(graph.Handle) { c.deaths++ },
			OnEdge:  func(u, v graph.Handle) { c.edges++ },
		}
	}
	m := New(PDGR, 150, 6, rng.New(7))
	WarmUp(m)
	var inner, outer counts
	m.SetHooks(count(&inner))
	m.SetHooks(ChainHooks(count(&outer), m.Hooks()))
	for i := 0; i < 30; i++ {
		m.AdvanceRound()
	}
	if inner != outer {
		t.Fatalf("chained observers diverged: inner %+v, outer %+v", inner, outer)
	}
	if inner.edges == 0 || inner.deaths == 0 {
		t.Fatalf("stream too quiet: %+v", inner)
	}
}
