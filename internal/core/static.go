package core

import "github.com/dyngraph/churnnet/internal/graph"

// Static is the churn-free Kind used by the baseline model: the graph never
// changes. It is not part of Kinds().
const Static Kind = 5

// Overlay is the Kind reported by the address-gossip overlay of package
// overlay (the Bitcoin-style protocol of Section 1.1). Not part of Kinds().
const Overlay Kind = 6

// Live is the Kind reported by externally driven models: no autonomous
// churn — every join, leave and crash is commanded by a caller (the
// control-plane daemon of internal/serve). Not part of Kinds().
const Live Kind = 7

// StaticModel wraps a fixed graph as a Model with no churn: AdvanceRound
// only advances the clock. It is the substrate for the paper's static
// d-out baseline (Lemma B.1) and for unit-testing processes against known
// topologies.
type StaticModel struct {
	g    *graph.Graph
	n, d int
	now  float64
}

// NewStaticModel wraps g; n and d are reported as the model parameters.
func NewStaticModel(g *graph.Graph, d int) *StaticModel {
	return &StaticModel{g: g, n: g.NumAlive(), d: d}
}

// Kind implements Model.
func (m *StaticModel) Kind() Kind { return Static }

// Graph implements Model.
func (m *StaticModel) Graph() *graph.Graph { return m.g }

// N implements Model.
func (m *StaticModel) N() int { return m.n }

// D implements Model.
func (m *StaticModel) D() int { return m.d }

// AdvanceRound implements Model; only time passes.
func (m *StaticModel) AdvanceRound() { m.now++ }

// Now implements Model.
func (m *StaticModel) Now() float64 { return m.now }

// LastBorn implements Model; it is the newest node of the wrapped graph.
func (m *StaticModel) LastBorn() graph.Handle { return m.g.Newest() }

// SetHooks implements Model; a static model emits no events.
func (m *StaticModel) SetHooks(Hooks) {}

// Hooks implements Model; a static model holds no callbacks.
func (m *StaticModel) Hooks() Hooks { return Hooks{} }

// EmitsEdgeEvents implements EdgeEventSource: the edge-event contract holds
// vacuously — a static model never changes its edge set at all.
func (m *StaticModel) EmitsEdgeEvents() bool { return true }
