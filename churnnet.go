// Package churnnet is a library of dynamic random networks with node churn,
// reproducing “Expansion and Flooding in Dynamic Random Networks with Node
// Churn” (Becchetti, Clementi, Pasquale, Trevisan, Ziccardi; ICDCS 2021,
// arXiv:2007.14681).
//
// It provides:
//
//   - the paper's four network models — streaming or Poisson node churn,
//     each with or without edge regeneration (SDG, SDGR, PDG, PDGR);
//   - the flooding processes of Definitions 3.3, 4.2 and 4.3;
//   - vertex-expansion measurement (exact for small graphs, witness search
//     at scale);
//   - structural analysis (isolated nodes, degrees, age demographics);
//   - the onion-skin cascades used by the paper's proofs; and
//   - the full experiment suite regenerating every table and quantitative
//     claim of the paper (see EXPERIMENTS.md).
//
// Quickstart:
//
//	m := churnnet.NewWarmModel(churnnet.PDGR, 10_000, 35, 1)
//	res := churnnet.Flood(m, churnnet.FloodOptions{})
//	fmt.Printf("completed=%v in %d rounds\n", res.Completed, res.CompletionRound)
//
// All randomness flows from explicit seeds; identical seeds reproduce runs
// bit for bit.
package churnnet

import (
	"fmt"
	"io"

	"github.com/dyngraph/churnnet/internal/analysis"
	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/experiments"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/graphio"
	"github.com/dyngraph/churnnet/internal/onion"
	"github.com/dyngraph/churnnet/internal/overlay"
	"github.com/dyngraph/churnnet/internal/report"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/staticgraph"
	"github.com/dyngraph/churnnet/internal/trace"
)

// ModelKind identifies one of the paper's dynamic-graph models.
type ModelKind = core.Kind

// The four models of the paper plus the churn-free Static baseline wrapper.
const (
	// SDG is the streaming model without edge regeneration (Def. 3.4).
	SDG = core.SDG
	// SDGR is the streaming model with edge regeneration (Def. 3.13).
	SDGR = core.SDGR
	// PDG is the Poisson model without edge regeneration (Def. 4.9).
	PDG = core.PDG
	// PDGR is the Poisson model with edge regeneration (Def. 4.14).
	PDGR = core.PDGR
	// Static is the kind reported by churn-free baseline models.
	Static = core.Static
)

// ModelKinds lists the four dynamic models in the paper's order.
func ModelKinds() []ModelKind { return core.Kinds() }

// Model is a live dynamic network; see the core package for semantics.
type Model = core.Model

// Graph is the snapshot structure underlying every model.
type Graph = graph.Graph

// Handle identifies a node; invalidated when the node dies.
type Handle = graph.Handle

// Hooks receive birth, death and edge-creation callbacks from a model.
type Hooks = core.Hooks

// RNG is the deterministic generator used across the library.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewModel builds an empty (un-warmed) model of the given kind with size
// parameter n and out-degree d, seeded deterministically.
func NewModel(kind ModelKind, n, d int, seed uint64) Model {
	return core.New(kind, n, d, rng.New(seed))
}

// NewWarmModel builds a model and warms it to its measurement-ready state:
// 2n rounds for streaming models, 7·n·ln n churn events for Poisson models
// (the paper's horizons). For large n prefer NewStationaryModel, which
// reaches the same state distribution in O(n·d) by sampling it directly.
func NewWarmModel(kind ModelKind, n, d int, seed uint64) Model {
	m := NewModel(kind, n, d, seed)
	core.WarmUp(m)
	return m
}

// NewStationaryModel builds a measurement-ready model by sampling the
// stationary snapshot directly — the stationary age profile (the last n
// rounds for streaming models; a Poisson(n)-sized population with
// exponential ages for Poisson models) wired per the destination laws of
// Lemmas 3.14/4.15 — instead of simulating the warm-up transient. It is
// equivalent to NewWarmModel in distribution (exactly for SDG/SDGR, with
// exact marginals for PDG/PDGR; the contract is pinned by the
// distributional-equivalence suite in internal/core) but runs in O(n·d):
// at n = 10⁶ it replaces minutes of Poisson warm-up with about a second
// (see BENCH_warmup.json). Deterministic given the seed, though a
// different draw than NewWarmModel with the same seed.
func NewStationaryModel(kind ModelKind, n, d int, seed uint64) Model {
	return core.SampleStationary(kind, n, d, rng.New(seed))
}

// NewStationaryModelPar is NewStationaryModel with the snapshot-wiring
// arena fill sharded over `workers` goroutines (the counting-sort passes
// shard by slot range; see DESIGN.md, "Sharded cut execution"). The
// sampled model is bit-for-bit identical at every worker count — the knob
// only spends more cores on the O(n·d) fill.
func NewStationaryModelPar(kind ModelKind, n, d int, seed uint64, workers int) Model {
	return core.SampleStationaryPar(kind, n, d, rng.New(seed), workers)
}

// NewReadyModel builds a measurement-ready model: NewStationaryModel when
// fastWarmUp is set, NewWarmModel otherwise — the one dispatch point
// behind every fast-warm-up knob (ExperimentConfig.FastWarmUp, the CLIs'
// -fastwarmup flags).
func NewReadyModel(kind ModelKind, n, d int, seed uint64, fastWarmUp bool) Model {
	return core.NewReadyModel(kind, n, d, rng.New(seed), fastWarmUp)
}

// NewReadyModelPar is NewReadyModel with the fast-warm-up snapshot wiring
// sharded over `workers` goroutines (simulated warm-up is inherently
// serial and ignores the knob); the built model is bit-for-bit identical
// at every worker count. It backs the CLIs' -floodpar flag on -fastwarmup
// runs.
func NewReadyModelPar(kind ModelKind, n, d int, seed uint64, fastWarmUp bool, workers int) Model {
	return core.NewReadyModelPar(kind, n, d, rng.New(seed), fastWarmUp, workers)
}

// NewStaticModel wraps a fixed graph as a churn-free Model (the baseline of
// Lemma B.1 and a harness for custom topologies).
func NewStaticModel(g *Graph, d int) Model { return core.NewStaticModel(g, d) }

// NewDOutGraph builds the static random graph of Lemma B.1: n nodes, each
// making d uniform requests.
func NewDOutGraph(n, d int, seed uint64) (*Graph, []Handle) {
	return staticgraph.DOut(n, d, rng.New(seed))
}

// --- flooding ---

// FloodOptions configures a flooding run.
type FloodOptions = flood.Options

// FloodResult reports a flooding run.
type FloodResult = flood.Result

// FloodMode selects discretized (Def. 4.3) or asynchronous (Def. 4.2)
// semantics.
type FloodMode = flood.Mode

// Flooding modes.
const (
	// Discretized requires senders to survive the transmission interval.
	Discretized = flood.Discretized
	// Asynchronous admits receivers once the edge existed at the start of
	// the interval.
	Asynchronous = flood.Asynchronous
)

// FloodAuto, assigned to FloodOptions.Parallelism or passed as the worker
// count of NewReadyModelPar / NewStationaryModelPar, selects the automatic
// parallelism policy: the shard count is picked from GOMAXPROCS and the
// structure size (AutoParallelism). Results are bit-for-bit identical at
// every setting; the cmds' -floodpar 0 maps here.
const FloodAuto = flood.Auto

// AutoParallelism returns the worker-shard count the FloodAuto policy
// resolves to for a structure of roughly n nodes: one shard per 32Ki
// slots, clamped to [1, GOMAXPROCS].
func AutoParallelism(n int) int { return flood.AutoParallelism(n) }

// Flood broadcasts from opts.Source (default: the newest node) over m.
//
// All built-in models emit edge-level events, so Flood runs the
// incremental cut-set engine: it maintains the informed→uninformed
// candidate edges under churn instead of rescanning every informed
// neighborhood each round, with results bit-for-bit identical to the
// definition-level reference implementation (see DESIGN.md, "The cut-set
// flooding engine"). Third-party Model implementations that do not claim
// the edge-event contract fall back to the reference scan transparently.
func Flood(m Model, opts FloodOptions) FloodResult { return flood.Run(m, opts) }

// --- multi-message traffic ---

// Traffic is the multi-message traffic plane: M in-flight broadcasts over
// one model, one churn event stream and one hook chain, with the
// cut-maintenance passes batched across messages inside the same
// worker-shard sweep a single flood uses. Inject admits a message at the
// current round, Step advances the network one transmission unit for every
// in-flight message, and Retire releases a finished message's state so
// memory stays O(live messages). Per-message Results are bit-for-bit what
// M independent Flood calls replaying the same churn stream would produce
// (see DESIGN.md, "Multi-message traffic plane").
type Traffic = flood.Traffic

// TrafficOptions configures a traffic plane; options apply uniformly to
// every injected message. The Parallelism knob has the FloodOptions
// contract: 0 or 1 serial, FloodAuto (negative) automatic, identical
// results at every setting.
type TrafficOptions = flood.TrafficOptions

// MessageID identifies a message admitted to a Traffic plane; IDs are
// dense in admission order and never reused.
type MessageID = flood.MessageID

// MessageStatus is the lifecycle state of an injected message.
type MessageStatus = flood.MessageStatus

// Message lifecycle states.
const (
	// MessageInFlight marks a message that still floods on every Step.
	MessageInFlight = flood.MessageInFlight
	// MessageDone marks a finished message whose lane awaits Retire.
	MessageDone = flood.MessageDone
	// MessageRetired marks a released lane; the Result stays queryable.
	MessageRetired = flood.MessageRetired
)

// TrafficMemStats describes a plane's packed informed-state memory
// layout — slots, lanes, words per slot, and the packed footprint versus
// the one-Marks-per-lane baseline; see Traffic.MemStats.
type TrafficMemStats = flood.TrafficMemStats

// NewTraffic opens a traffic plane over m. The plane owns the model until
// Close: advance it only through Step. It panics if the model does not
// implement the edge-event contract (all built-in models do).
func NewTraffic(m Model, opts TrafficOptions) *Traffic { return flood.NewTraffic(m, opts) }

// TrafficSchedule generates the injection steps of a named schedule —
// "burst" (all messages at step 0), "staggered" (one every gap steps) or
// "poisson" (Poisson arrivals at rate 1/gap), deterministic in the seed.
// Message i of the returned slice is injected after that many plane Steps.
func TrafficSchedule(schedule string, messages, gap int, seed uint64) ([]int, error) {
	return flood.TrafficSchedule(schedule, messages, gap, seed)
}

// --- expansion ---

// ExpansionConfig tunes the witness search of EstimateExpansion.
type ExpansionConfig = expansion.Config

// ExpansionProfile holds the best low-expansion witnesses found per size.
type ExpansionProfile = expansion.Profile

// ExpansionWitness is one measured candidate set.
type ExpansionWitness = expansion.Witness

// EstimateExpansion searches g for low-expansion witnesses (upper bounds on
// the vertex isoperimetric number h_out of Definition 3.1).
func EstimateExpansion(g *Graph, seed uint64, cfg ExpansionConfig) *ExpansionProfile {
	return expansion.Estimate(g, rng.New(seed), cfg)
}

// ExactExpansion computes h_out exactly by exhaustive enumeration; it
// panics when the graph has more than expansion.ExactLimit (20) nodes.
func ExactExpansion(g *Graph) (float64, []Handle) { return expansion.Exact(g) }

// BoundarySize returns |∂out(S)| for a node set.
func BoundarySize(g *Graph, set []Handle) int { return expansion.BoundarySize(g, set) }

// ExpansionTracker is the incremental expansion-witness engine: it rides
// a model's OnEdge/OnDeath event stream (the same contract the flooding
// engine uses) and maintains |S|, |∂out(S)| and the ratio of a family of
// tracked witness sets under churn in O(events), instead of the O(n·d)
// per-snapshot rescan of EstimateExpansion. Its numbers are bit-for-bit
// what fresh BoundarySize rescans of the same sets would compute — pinned
// by the rescan-oracle suite in internal/expansion — and bit-for-bit
// invariant across its worker-shard counts. See DESIGN.md, "Incremental
// expansion tracking".
type ExpansionTracker = expansion.Tracker

// ExpansionTrackerConfig tunes the tracked witness families, the re-seed
// cadence and the flush-plane parallelism.
type ExpansionTrackerConfig = expansion.TrackerConfig

// ExpansionObservation is one time-resolved expansion measurement.
type ExpansionObservation = expansion.Observation

// ExpansionSetState reports one tracked set (ExpansionTracker.Sets).
type ExpansionSetState = expansion.SetState

// WitnessFamily identifies the candidate family a tracked set came from.
type WitnessFamily = expansion.Family

// TrackExpansion attaches an ExpansionTracker to m, seeded from the
// current snapshot: advance the model, call Observe for time-resolved
// h_out upper bounds, and Close to release the hook chain. The tracker
// chains onto existing hooks, and Flood may run over a tracked model —
// both observers share the event stream. It panics if the model does not
// implement the edge-event contract (all built-in models do).
func TrackExpansion(m Model, seed uint64, cfg ExpansionTrackerConfig) *ExpansionTracker {
	return expansion.NewTracker(m, rng.New(seed), cfg)
}

// SpectralGap estimates 1 − λ₂ of the lazy random walk on the snapshot: a
// witness-free expansion proxy (0 for disconnected graphs, constant for
// expanders) that cross-checks EstimateExpansion. iters <= 0 selects a
// default.
func SpectralGap(g *Graph, iters int, seed uint64) float64 {
	return expansion.SpectralGap(g, iters, rng.New(seed))
}

// --- analysis ---

// DegreeStats summarizes a snapshot's degree distribution.
type DegreeStats = analysis.DegreeStats

// Degrees measures the live-degree distribution of a snapshot.
func Degrees(g *Graph) DegreeStats { return analysis.Degrees(g) }

// IsolatedFraction returns the fraction of alive nodes with no live edge.
func IsolatedFraction(g *Graph) float64 { return analysis.IsolatedFraction(g) }

// LifetimeIsolationResult reports a LifetimeIsolation measurement.
type LifetimeIsolationResult = analysis.LifetimeIsolationResult

// LifetimeIsolation counts nodes that stay isolated for their whole
// remaining lifetime (Lemmas 3.5/4.10); models without regeneration only.
func LifetimeIsolation(m Model, maxRounds int) LifetimeIsolationResult {
	return analysis.LifetimeIsolation(m, maxRounds)
}

// InDegreeByAgeQuantile returns mean live in-degree per age cohort (oldest
// first) — the observable of the Lemma 3.14/4.15 destination laws.
func InDegreeByAgeQuantile(g *Graph, buckets int) []float64 {
	return analysis.InDegreeByAgeQuantile(g, buckets)
}

// AgeProfile counts alive nodes per age slice (Theorem 4.16's demographic
// vector).
func AgeProfile(g *Graph, now, sliceWidth float64) []int {
	return analysis.AgeProfile(g, now, sliceWidth)
}

// --- onion-skin cascades ---

// OnionResult reports an onion-skin cascade run.
type OnionResult = onion.Result

// OnionStreaming runs the Section 3.1.2 cascade for SDG parameters (n, d).
func OnionStreaming(n, d int, seed uint64) OnionResult {
	return onion.Streaming(n, d, rng.New(seed))
}

// OnionExtended runs the Section 7.2.4 cascade for PDG parameters; m <= 0
// samples the population from [0.9n, 1.1n].
func OnionExtended(n, d, m int, seed uint64) OnionResult {
	return onion.Extended(n, d, m, rng.New(seed))
}

// ComponentStats describes the connected-component structure of a snapshot.
type ComponentStats = analysis.ComponentStats

// Components computes the connected components of the alive graph.
func Components(g *Graph) ComponentStats { return analysis.Components(g) }

// --- extensions beyond the paper's core models ---

// DegreePolicy modifies destination draws in Poisson models, exploring the
// paper's Section 5 open question (bounded-degree dynamics): a hard
// inbound cap and/or power-of-k least-loaded choices.
type DegreePolicy = core.DegreePolicy

// NewPoissonVariantModel builds a PDG/PDGR model whose request
// destinations follow the policy (zero policy = the paper's uniform draw).
// The model is returned un-warmed.
func NewPoissonVariantModel(n, d int, regen bool, policy DegreePolicy, seed uint64) Model {
	return core.NewPoissonVariant(n, d, regen, policy, rng.New(seed))
}

// OverlayConfig parameterizes the Bitcoin-style address-gossip overlay.
type OverlayConfig = overlay.Config

// OverlayNetwork is the realistic P2P network of Section 1.1: bounded
// address books, DNS-seeded bootstrap, ADDR gossip and redial on peer
// loss. It implements Model, so Flood and the expansion estimators apply.
type OverlayNetwork = overlay.Overlay

// NewOverlay builds an empty overlay; call its WarmUp (or AdvanceTime) to
// populate it.
func NewOverlay(cfg OverlayConfig, seed uint64) *OverlayNetwork {
	return overlay.New(cfg, rng.New(seed))
}

// --- tracing ---

// TraceProbe samples one observable from a model.
type TraceProbe = trace.Probe

// TraceRecorder accumulates per-round samples and renders them as CSV.
type TraceRecorder = trace.Recorder

// NewTraceRecorder builds a recorder (default probes: time, size, edges,
// degree statistics, isolated fraction).
func NewTraceRecorder(probes ...TraceProbe) *TraceRecorder {
	return trace.NewRecorder(probes...)
}

// DefaultTraceProbes returns the standard probe set.
func DefaultTraceProbes() []TraceProbe { return trace.DefaultProbes() }

// --- snapshot serialization ---

// WriteDOT renders the alive graph as an undirected Graphviz graph.
func WriteDOT(w io.Writer, g *Graph, name string) error { return graphio.WriteDOT(w, g, name) }

// WriteEdgeList emits the snapshot in the plain edge-list format that
// ReadEdgeList parses back.
func WriteEdgeList(w io.Writer, g *Graph) error { return graphio.WriteEdgeList(w, g) }

// ReadEdgeList rebuilds a snapshot written by WriteEdgeList as a static
// graph; handles are returned in birth (ID) order.
func ReadEdgeList(r io.Reader) (*Graph, []Handle, error) { return graphio.ReadEdgeList(r) }

// --- experiment suite ---

// Scale selects experiment sizes.
type Scale = experiments.Scale

// Experiment scales.
const (
	// ScaleSmoke finishes in well under a second per experiment.
	ScaleSmoke = experiments.Smoke
	// ScaleStandard is the tablegen default (minutes for the suite).
	ScaleStandard = experiments.Standard
	// ScalePaper uses paper-sized parameters (tens of minutes).
	ScalePaper = experiments.Paper
)

// ParseScale converts "smoke", "standard" or "paper".
func ParseScale(s string) (Scale, error) { return experiments.ParseScale(s) }

// Experiment is one entry of the reproduction suite.
type Experiment = experiments.Experiment

// ExperimentConfig parameterizes experiment execution: scale, root seed,
// the trial-parallelism cap (0 = GOMAXPROCS, 1 = serial), an optional
// per-trial progress callback, the FastWarmUp knob that builds trial
// models by direct stationary sampling (NewStationaryModel) instead of
// simulated warm-up, and the FloodParallelism shard count applied inside
// each single flooding run and fast-warm-up snapshot fill (0 or 1 =
// serial — the right setting when trial-level parallelism already
// saturates the cores). Results are bit-identical at every parallelism
// setting, trial-level and intra-flood alike.
type ExperimentConfig = experiments.Config

// ResultTable is a rendered experiment result.
type ResultTable = report.Table

// ResultReport is the full suite output.
type ResultReport = report.Report

// Experiments lists the suite in order (T1, F1..F24).
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by ID on all available cores.
func RunExperiment(id string, scale Scale, seed uint64) (*ResultTable, error) {
	return RunExperimentWith(id, ExperimentConfig{Scale: scale, Seed: seed})
}

// RunExperimentWith executes one experiment by ID under the full config.
func RunExperimentWith(id string, cfg ExperimentConfig) (*ResultTable, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("churnnet: unknown experiment %q", id)
	}
	return e.Run(cfg), nil
}

// RunAllExperiments executes the whole suite on all available cores and
// returns the report whose Markdown form is EXPERIMENTS.md.
func RunAllExperiments(scale Scale, seed uint64) *ResultReport {
	return RunAllExperimentsWith(ExperimentConfig{Scale: scale, Seed: seed})
}

// RunAllExperimentsWith executes the whole suite under the full config.
func RunAllExperimentsWith(cfg ExperimentConfig) *ResultReport {
	return experiments.RunAll(cfg)
}

// NewExperimentReport returns the empty suite report (title and intro) for
// cfg — for callers such as cmd/tablegen that run experiments one at a
// time and want per-experiment progress.
func NewExperimentReport(cfg ExperimentConfig) *ResultReport {
	return experiments.NewReport(cfg)
}
