// Command churnvet runs the churnvet analyzer suite (detsource, maprange,
// hookfire, shardstage, cmdexit — see DESIGN.md "Static enforcement of the
// determinism contract").
//
// Two modes:
//
//	go vet -vettool=$(which churnvet) ./...   # the vet-tool protocol
//	go run ./cmd/churnvet ./...               # convenience: self-delegates
//
// In the second form churnvet re-executes `go vet -vettool=<itself>` with
// the given package patterns, so one offline command checks the whole tree
// (the analyzers and their x/tools dependencies are vendored; no network
// is needed beyond the go.mod deps already present).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/dyngraph/churnnet/internal/lint/churnvet"
)

func main() {
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		if delegate(patterns) != 0 {
			os.Exit(1)
		}
		os.Exit(0)
	}
	unitchecker.Main(churnvet.Analyzers()...)
}

// packagePatterns returns the argument list when it consists purely of
// package patterns (the convenience form). Any flag or unitchecker .cfg
// argument means the vet-tool protocol is in progress.
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

// delegate re-runs `go vet -vettool=<this binary>` on the patterns and
// returns the exit status to propagate.
func delegate(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnvet:", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "churnvet:", err)
		return 1
	}
	return 0
}
