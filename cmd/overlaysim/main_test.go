package main

import "testing"

// TestValidateFlags pins the flag guard rails: invalid values are rejected
// with the conventional usage exit, including the new -floodpar shard
// count.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                 string
		n, d, maxIn, book    int
		gossip               float64
		broadcasts, floodPar int
		wantErr              bool
	}{
		{"defaults", 4000, 16, 0, 256, 8, 10, 1, false},
		{"sharded broadcasts", 4000, 16, 128, 256, 8, 10, 4, false},
		{"zero n", 0, 16, 0, 256, 8, 10, 1, true},
		{"negative d", 4000, -1, 0, 256, 8, 10, 1, true},
		{"negative maxin", 4000, 16, -1, 256, 8, 10, 1, true},
		{"zero book", 4000, 16, 0, 0, 8, 10, 1, true},
		{"zero gossip", 4000, 16, 0, 256, 0, 10, 1, true},
		{"negative broadcasts", 4000, 16, 0, 256, 8, -1, 1, true},
		{"auto floodpar", 4000, 16, 0, 256, 8, 10, 0, false},
		{"negative floodpar", 4000, 16, 0, 256, 8, 10, -8, true},
	}
	for _, c := range cases {
		err := validateFlags(c.n, c.d, c.maxIn, c.book, c.gossip, c.broadcasts, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
