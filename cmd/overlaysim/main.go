// Command overlaysim runs the Bitcoin-style address-gossip overlay
// (the paper's Section 1.1 motivation) and reports how closely it tracks
// the idealized PDGR model: degrees, isolation, dial statistics and
// broadcast behavior.
//
// Usage:
//
//	overlaysim -n 4000 -d 16 -maxin 128 -broadcasts 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	var (
		n          = flag.Int("n", 4000, "expected population")
		d          = flag.Int("d", 16, "target outbound connections")
		maxIn      = flag.Int("maxin", 0, "inbound cap (0 = unlimited)")
		book       = flag.Int("book", 256, "address book capacity")
		gossip     = flag.Float64("gossip", 8, "ADDR gossip interval (time units)")
		broadcasts = flag.Int("broadcasts", 10, "number of test broadcasts")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		floodPar   = flag.Int("floodpar", 1, "worker shards inside each broadcast; 0 picks W from GOMAXPROCS and n; results are identical at any value")
	)
	flag.Parse()

	if err := validateFlags(*n, *d, *maxIn, *book, *gossip, *broadcasts, *floodPar); err != nil {
		usageError(err.Error())
	}
	if *floodPar == 0 {
		*floodPar = churnnet.FloodAuto
	}

	fmt.Printf("overlay: n=%d d=%d maxin=%d book=%d gossip=%.1f (seed %d)\n",
		*n, *d, *maxIn, *book, *gossip, *seed)
	ov := churnnet.NewOverlay(churnnet.OverlayConfig{
		N: *n, D: *d, MaxIn: *maxIn, AddrBookCap: *book, GossipInterval: *gossip,
	}, *seed)
	fmt.Println("warming up (3n time units)...")
	ov.WarmUp()

	g := ov.Graph()
	ds := churnnet.Degrees(g)
	fmt.Printf("\npopulation       %d\n", g.NumAlive())
	fmt.Printf("mean out-degree  %.2f (target %d)\n", ds.MeanOut, *d)
	fmt.Printf("max degree       %d\n", ds.Max)
	fmt.Printf("isolated         %.3f%%\n", 100*churnnet.IsolatedFraction(g))
	ok, stale, full := ov.DialStats()
	fmt.Printf("redials          %d ok / %d stale / %d peer-full\n", ok, stale, full)

	fmt.Printf("\nrunning %d broadcasts...\n", *broadcasts)
	var rounds []float64
	completed := 0
	for i := 0; i < *broadcasts; i++ {
		for j := 0; j < 5; j++ {
			ov.AdvanceRound()
		}
		// The most recent newborn may already have died; keep the clock
		// moving until a broadcast source exists (Flood panics otherwise).
		for !g.IsAlive(ov.LastBorn()) {
			ov.AdvanceRound()
		}
		res := churnnet.Flood(ov, churnnet.FloodOptions{Parallelism: *floodPar})
		if res.Completed {
			completed++
			rounds = append(rounds, float64(res.CompletionRound))
		}
	}
	fmt.Printf("completed        %d/%d\n", completed, *broadcasts)
	if len(rounds) > 0 {
		sort.Float64s(rounds)
		fmt.Printf("rounds           median %.0f, max %.0f\n",
			rounds[len(rounds)/2], rounds[len(rounds)-1])
	}
}

// validateFlags rejects invalid flag values before any work starts; the
// returned error names the offending flag. Kept separate from main so the
// flag paths are regression-testable (see main_test.go).
func validateFlags(n, d, maxIn, book int, gossip float64, broadcasts, floodPar int) error {
	switch {
	case n < 1:
		return errors.New("-n must be >= 1")
	case d < 0:
		return errors.New("-d must be >= 0")
	case maxIn < 0:
		return errors.New("-maxin must be >= 0 (0 = unlimited)")
	case book < 1:
		return errors.New("-book must be >= 1")
	case gossip <= 0:
		return errors.New("-gossip must be > 0")
	case broadcasts < 0:
		return errors.New("-broadcasts must be >= 0")
	case floodPar < 0:
		return errors.New("-floodpar must be >= 0 (0 = auto from GOMAXPROCS and n)")
	}
	return nil
}

// usageError reports a bad flag value and exits with the conventional
// usage status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "overlaysim:", msg)
	flag.Usage()
	os.Exit(2)
}
