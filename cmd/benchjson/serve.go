package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/rng"
	"github.com/dyngraph/churnnet/internal/serve"
)

// --- the control-plane daemon benchmark (-bench serve) ---

type serveCase struct {
	kind core.Kind
	n, d int
	// clients is the concurrent HTTP client count; reqs the requests
	// each one issues.
	clients, reqs int
	// publishMs is the snapshot MinPublishInterval in milliseconds (0 =
	// publish after every command batch; large populations pay a
	// multi-MB state copy per publish, so the 10⁶ rows rate-limit and
	// the snapshot-age columns report the staleness actually served).
	publishMs int
	// par is the seeding / traffic-plane worker-shard count.
	par int
}

type serveResult struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	D     int    `json:"d"`
	Seed  uint64 `json:"seed"`
	Reps  int    `json:"reps"`

	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// PublishIntervalMs is the configured snapshot rate limit.
	PublishIntervalMs int `json:"publish_interval_ms"`

	// SeedNs times serve.New — stationary sampling plus plane attach.
	SeedNs int64 `json:"seed_ns"`
	// ElapsedNs is the load phase's wall time (min over reps);
	// ReqPerSec divides the request total by it.
	ElapsedNs int64   `json:"elapsed_ns"`
	ReqPerSec float64 `json:"req_per_sec"`
	// P50Ns/P99Ns are per-request latency percentiles over the fastest
	// repetition's full sample (loopback HTTP round-trip included).
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	// The op mix actually executed (fastest repetition).
	Reads  int `json:"reads"`
	Joins  int `json:"joins"`
	Leaves int `json:"leaves"`
	Steps  int `json:"steps"`
	// Departed410 counts reads that landed on departed nodes (a valid
	// well-formed answer, not an error); Backpressure429 counts
	// queue-full/overload rejections — the bounded-queue contract
	// surfacing, not a failure. Any other non-2xx aborts the run.
	Departed410     int `json:"departed_410"`
	Backpressure429 int `json:"backpressure_429"`

	// MaxQueueDepth is the largest command-queue depth the writer
	// observed at a batch start, over the whole case.
	MaxQueueDepth int `json:"max_queue_depth"`
	// The snapshot-age columns sample the published snapshot's age every
	// 5ms while the load runs: how stale the state served to readers
	// actually was (worst repetition's mean and max).
	SnapshotAgeMeanMs float64 `json:"snapshot_age_mean_ms"`
	SnapshotAgeMaxMs  float64 `json:"snapshot_age_max_ms"`

	// AuditOK is the per-row consistency audit (serve.VerifySnapshot):
	// after the load, a fresh snapshot is published and compared field
	// by field against a direct model query at the same version. The
	// run aborts on a mismatch, so a committed record can never carry
	// false.
	AuditOK    bool `json:"audit_ok"`
	FinalAlive int  `json:"final_alive"`
}

type serveOutput struct {
	Benchmark  string        `json:"benchmark"`
	Scale      string        `json:"scale"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Generated  string        `json:"generated"`
	Cases      []serveResult `json:"cases"`
}

// runServeBench measures the live control-plane daemon (internal/serve)
// end to end over real loopback HTTP: concurrent clients issue a mixed
// read/mutate/step workload against the single-writer event loop, with
// snapshot staleness sampled while the load runs.
func runServeBench(out, scale string, seed uint64, reps int) {
	var cases []serveCase
	switch scale {
	case "smoke":
		cases = []serveCase{
			{kind: core.SDGR, n: 2000, d: 3, clients: 4, reqs: 200, publishMs: 0, par: 1},
			{kind: core.PDGR, n: 10000, d: 20, clients: 8, reqs: 200, publishMs: 5, par: 2},
		}
	case "large":
		cases = []serveCase{
			{kind: core.SDGR, n: 100000, d: 20, clients: 8, reqs: 1500, publishMs: 0, par: flood.Auto},
			{kind: core.SDGR, n: 100000, d: 20, clients: 16, reqs: 1500, publishMs: 10, par: flood.Auto},
			{kind: core.SDGR, n: 1000000, d: 20, clients: 16, reqs: 750, publishMs: 25, par: flood.Auto},
			{kind: core.PDGR, n: 1000000, d: 20, clients: 16, reqs: 750, publishMs: 25, par: flood.Auto},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := serveOutput{
		Benchmark:  "serve: live control-plane daemon under concurrent HTTP load",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runServeCase(c, seed, reps))
	}
	writeJSON(out, o, len(o.Cases))
}

// serveOpCounts tallies one repetition's executed op mix.
type serveOpCounts struct {
	reads, joins, leaves, steps int
	departed410, backpressure   int
}

func (a *serveOpCounts) add(b serveOpCounts) {
	a.reads += b.reads
	a.joins += b.joins
	a.leaves += b.leaves
	a.steps += b.steps
	a.departed410 += b.departed410
	a.backpressure += b.backpressure
}

func runServeCase(c serveCase, seed uint64, reps int) serveResult {
	fmt.Fprintf(os.Stderr, "benchjson: serve %s n=%d d=%d clients=%d reqs=%d publish=%dms...\n",
		c.kind, c.n, c.d, c.clients, c.reqs, c.publishMs)
	sr := serveResult{
		Model: c.kind.String(), N: c.n, D: c.d, Seed: seed, Reps: reps,
		Clients: c.clients, Requests: c.clients * c.reqs,
		PublishIntervalMs: c.publishMs,
	}

	runtime.GC()
	t0 := time.Now()
	s := serve.New(serve.Config{
		Kind: c.kind, N: c.n, D: c.d, Seed: seed,
		Parallelism:        c.par,
		MinPublishInterval: time.Duration(c.publishMs) * time.Millisecond,
	})
	sr.SeedNs = int64(time.Since(t0))
	s.Start()
	defer s.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	nodesIssued := s.Current().NumNodes()

	// One broadcast so the /status reads have a message to poll.
	if _, _, aerr := s.Inject(0, false); aerr != nil {
		fmt.Fprintln(os.Stderr, "benchjson: serve inject:", aerr)
		os.Exit(1)
	}

	for rep := 0; rep < reps; rep++ {
		lat, counts, elapsed, ageMean, ageMax := runServeLoad(base, s, c, seed+uint64(rep), nodesIssued)
		if ageMean > sr.SnapshotAgeMeanMs {
			sr.SnapshotAgeMeanMs = ageMean
		}
		if ageMax > sr.SnapshotAgeMaxMs {
			sr.SnapshotAgeMaxMs = ageMax
		}
		if rep == 0 || int64(elapsed) < sr.ElapsedNs {
			sr.ElapsedNs = int64(elapsed)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			sr.P50Ns = percentileNs(lat, 0.50)
			sr.P99Ns = percentileNs(lat, 0.99)
			sr.Reads = counts.reads
			sr.Joins = counts.joins
			sr.Leaves = counts.leaves
			sr.Steps = counts.steps
			sr.Departed410 = counts.departed410
			sr.Backpressure429 = counts.backpressure
		}
	}
	sr.ReqPerSec = float64(sr.Requests) / (float64(sr.ElapsedNs) / 1e9)

	// The per-row consistency audit, on the writer with a fresh publish.
	var auditErr error
	aerr := s.Audit(func(m *serve.LiveModel, plane *flood.Traffic, snap *serve.Snapshot) {
		auditErr = serve.VerifySnapshot(m, plane, snap)
		sr.FinalAlive = snap.Alive
		sr.MaxQueueDepth = s.MaxQueueLen()
	})
	if aerr != nil {
		fmt.Fprintln(os.Stderr, "benchjson: serve audit:", aerr)
		os.Exit(1)
	}
	if auditErr != nil {
		fmt.Fprintf(os.Stderr, "benchjson: ERROR: serve snapshot diverged from the model for %s n=%d: %v\n",
			c.kind, c.n, auditErr)
		os.Exit(1)
	}
	sr.AuditOK = true
	return sr
}

// runServeLoad drives one repetition: c.clients goroutines each issuing
// c.reqs timed requests of the mixed workload, plus a sampler reading
// the published snapshot's age every 5ms. Returns per-request
// latencies, the op tally, the wall time, and the age mean/max in ms.
func runServeLoad(base string, s *serve.Server, c serveCase, seed uint64, nodesIssued int) ([]int64, serveOpCounts, time.Duration, float64, float64) {
	transport := &http.Transport{MaxIdleConns: c.clients * 2, MaxIdleConnsPerHost: c.clients * 2}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	stopSampler := make(chan struct{})
	ageDone := make(chan [2]float64, 1)
	go func() {
		var sum, max float64
		samples := 0
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				mean := 0.0
				if samples > 0 {
					mean = sum / float64(samples)
				}
				ageDone <- [2]float64{mean, max}
				return
			case <-tick.C:
				age := float64(s.Current().Age(time.Now())) / float64(time.Millisecond)
				sum += age
				samples++
				if age > max {
					max = age
				}
			}
		}
	}()

	type clientTally struct {
		lat    []int64
		counts serveOpCounts
	}
	tallies := make([]clientTally, c.clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for cl := 0; cl < c.clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			ct := &tallies[cl]
			ct.lat = make([]int64, 0, c.reqs)
			r := rng.New(seed ^ (uint64(cl)+1)*0x9e3779b97f4a7c15)
			var myNodes []uint64 // ids this client joined and may depart
			for i := 0; i < c.reqs; i++ {
				var method, path string
				var body []byte
				isJoin := false
				switch {
				case cl == 0 && i%50 == 10:
					method, path, body = "POST", "/step", []byte(`{"rounds":1}`)
					ct.counts.steps++
				case i%10 == 3:
					method, path, isJoin = "POST", "/join", true
					ct.counts.joins++
				case i%10 == 7 && len(myNodes) > 0:
					id := myNodes[len(myNodes)-1]
					myNodes = myNodes[:len(myNodes)-1]
					method, path, body = "POST", "/leave", fmt.Appendf(nil, `{"id":%d}`, id)
					ct.counts.leaves++
				case i%5 == 4:
					method, path = "GET", "/status/0"
					ct.counts.reads++
				default:
					method, path = "GET", fmt.Sprintf("/node-info/%d", r.Intn(nodesIssued))
					ct.counts.reads++
				}
				rt0 := time.Now()
				status, resp := serveRequest(client, base, method, path, body)
				ct.lat = append(ct.lat, int64(time.Since(rt0)))
				switch status {
				case 200:
					if isJoin {
						var out struct {
							IDs []uint64 `json:"ids"`
						}
						if json.Unmarshal(resp, &out) == nil {
							myNodes = append(myNodes, out.IDs...)
						}
					}
				case 410:
					ct.counts.departed410++
				case 429, 503:
					ct.counts.backpressure++
				default:
					fmt.Fprintf(os.Stderr, "benchjson: ERROR: serve %s %s answered %d: %s\n",
						method, path, status, firstLineOf(resp))
					os.Exit(1)
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(stopSampler)
	ages := <-ageDone

	var lat []int64
	var counts serveOpCounts
	for i := range tallies {
		lat = append(lat, tallies[i].lat...)
		counts.add(tallies[i].counts)
	}
	return lat, counts, elapsed, ages[0], ages[1]
}

// serveRequest issues one request and returns the status code and body.
func serveRequest(client *http.Client, base, method, path string, body []byte) (int, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: serve request:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: serve response:", err)
		os.Exit(1)
	}
	return resp.StatusCode, data
}

func percentileNs(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

func firstLineOf(b []byte) string {
	s := string(b)
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
