package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestValidateFlags pins the flag guard rails: -reps keeps its >= 1
// contract, -max-ref-n its 0 = always meaning, and -floodpar accepts 0 as the
// automatic shard policy (main exits with status 2 on error).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                    string
		reps, maxRefN, floodPar int
		wantErr                 bool
	}{
		{"defaults", 3, 200000, 1, false},
		{"reference always", 1, 0, 1, false},
		{"sharded engine", 3, 200000, 8, false},
		{"zero reps", 0, 200000, 1, true},
		{"negative max-ref-n", 3, -1, 1, true},
		{"auto floodpar", 3, 200000, 0, false},
		{"negative floodpar", 3, 200000, -4, true},
	}
	for _, c := range cases {
		err := validateFlags(c.reps, c.maxRefN, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestFloodparEqualityColumnsSmoke regenerates the floodpar record at
// smoke scale and asserts every result-equality column is true — the
// guard the ROADMAP asked for so a multi-core regeneration of the
// committed record can never silently trade correctness for scaling.
// (Divergence also aborts the run with exit 1; the column check keeps the
// guarantee even if that aborting path regresses.)
func TestFloodparEqualityColumnsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("floodpar smoke bench skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "floodpar.json")
	runFloodParBench(out, "smoke", 1, 1)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var o floodparOutput
	if err := json.Unmarshal(data, &o); err != nil {
		t.Fatal(err)
	}
	assertFloodparEquality(t, &o, "smoke run")
}

// TestTrafficEqualityColumnsSmoke regenerates the traffic record at smoke
// scale and asserts every row's oracle_equal audit column is true — the
// per-message differential oracle the traffic plane ships with, kept as a
// CI-visible column so a regenerated record can never hide a cross-message
// bookkeeping divergence. (Divergence also aborts the run with exit 1; the
// column check keeps the guarantee even if that aborting path regresses.)
func TestTrafficEqualityColumnsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic smoke bench skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "traffic.json")
	runTrafficBench(out, "smoke", 1, 1)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var o trafficOutput
	if err := json.Unmarshal(data, &o); err != nil {
		t.Fatal(err)
	}
	assertTrafficEquality(t, &o, "smoke run")
}

// TestCommittedRecordsEqualityColumns parses the committed benchmark
// records and asserts their equality columns are all true, so a record
// regenerated elsewhere (e.g. the multi-core CI job) cannot be committed
// with a silent divergence.
func TestCommittedRecordsEqualityColumns(t *testing.T) {
	// Independent subtests: a missing record skips only its own check.
	t.Run("floodpar", func(t *testing.T) {
		data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_floodpar.json"))
		if err != nil {
			t.Skipf("no committed BENCH_floodpar.json: %v", err)
		}
		var o floodparOutput
		if err := json.Unmarshal(data, &o); err != nil {
			t.Fatal(err)
		}
		assertFloodparEquality(t, &o, "committed record")
	})
	t.Run("traffic", func(t *testing.T) {
		data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_traffic.json"))
		if err != nil {
			t.Skipf("no committed BENCH_traffic.json: %v", err)
		}
		var o trafficOutput
		if err := json.Unmarshal(data, &o); err != nil {
			t.Fatal(err)
		}
		assertTrafficEquality(t, &o, "committed record")
	})
	t.Run("expansion", func(t *testing.T) {
		data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_expansion.json"))
		if err != nil {
			t.Skipf("no committed BENCH_expansion.json: %v", err)
		}
		var e expansionOutput
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if len(e.Cases) == 0 {
			t.Fatal("committed BENCH_expansion.json has no cases")
		}
		for _, c := range e.Cases {
			if !c.RescanEqual {
				t.Errorf("committed expansion case %s n=%d: rescan_equal is false", c.Model, c.N)
			}
		}
	})
}

func assertTrafficEquality(t *testing.T, o *trafficOutput, tag string) {
	t.Helper()
	if len(o.Cases) == 0 {
		t.Fatalf("%s: empty traffic record", tag)
	}
	for _, c := range o.Cases {
		if !c.OracleEqual {
			t.Errorf("%s: %s n=%d %s gap=%d: oracle_equal is false",
				tag, c.Model, c.N, c.Schedule, c.Gap)
		}
		if c.OracleAudited < 1 {
			t.Errorf("%s: %s n=%d %s M=%d: oracle audited no messages",
				tag, c.Model, c.N, c.Schedule, c.Messages)
		}
		if c.Delivered > 0 && c.DeliveredPerSec <= 0 {
			t.Errorf("%s: %s n=%d %s: delivered %d but delivered_per_sec %v",
				tag, c.Model, c.N, c.Schedule, c.Delivered, c.DeliveredPerSec)
		}
		// The ISSUE 8 acceptance number: on burst rows the whole message
		// population floods at once, and from one full word of lanes up the
		// packed layout must undercut the Marks-per-lane baseline by >= 4x
		// (it lands near 38x at M = 64 and 87x at M = 1024).
		if c.Schedule == "burst" && c.Messages >= 64 && c.InformedReductionX < 4 {
			t.Errorf("%s: %s n=%d M=%d: informed_reduction_x = %.1f, want >= 4",
				tag, c.Model, c.N, c.Messages, c.InformedReductionX)
		}
	}
}

func assertFloodparEquality(t *testing.T, o *floodparOutput, tag string) {
	t.Helper()
	if len(o.Cases) == 0 || len(o.WireFill) == 0 {
		t.Fatalf("%s: empty floodpar record", tag)
	}
	for _, c := range o.Cases {
		if c.Par == 1 {
			if c.ResultsEqual != nil {
				t.Errorf("%s: serial row %s n=%d carries an equality column", tag, c.Model, c.N)
			}
			continue
		}
		if c.ResultsEqual == nil || !*c.ResultsEqual {
			t.Errorf("%s: %s n=%d par=%d results_equal not true", tag, c.Model, c.N, c.Par)
		}
	}
	for _, w := range o.WireFill {
		if w.Workers > 1 && (w.LayoutEqual == nil || !*w.LayoutEqual) {
			t.Errorf("%s: wire fill n=%d workers=%d layout_equal not true", tag, w.N, w.Workers)
		}
	}
}
