package main

import "testing"

// TestValidateFlags pins the flag guard rails: -reps keeps its >= 1
// contract, -max-ref-n its 0 = always meaning, and -floodpar requires an
// explicit positive shard count (main exits with status 2 on error).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                    string
		reps, maxRefN, floodPar int
		wantErr                 bool
	}{
		{"defaults", 3, 200000, 1, false},
		{"reference always", 1, 0, 1, false},
		{"sharded engine", 3, 200000, 8, false},
		{"zero reps", 0, 200000, 1, true},
		{"negative max-ref-n", 3, -1, 1, true},
		{"zero floodpar", 3, 200000, 0, true},
		{"negative floodpar", 3, 200000, -4, true},
	}
	for _, c := range cases {
		err := validateFlags(c.reps, c.maxRefN, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
