// Command benchjson writes machine-readable perf records as JSON — the
// artifacts CI uploads and EXPERIMENTS.md quotes for the large-n runs. It
// carries two benchmarks, selected by -bench:
//
//   - flood (default): the incremental cut-set flooding engine (flood.Run)
//     against the full-rescan reference (flood.RunReference) on identically
//     seeded warmed models — the BENCH_flood.json record. Every case builds
//     two models from the same seed (their churn streams are identical;
//     flooding consumes no randomness), floods one with each
//     implementation, verifies the Results are bit-for-bit equal, and
//     reports wall times and the speedup. Reference timing can be skipped
//     above a size cutoff so the n=10⁶ record stays obtainable in one
//     sitting.
//
//   - warmup: simulated core.WarmUp (2n rounds / 7·n·ln n jump events)
//     against direct stationary-snapshot sampling (core.SampleStationary)
//     — the BENCH_warmup.json record behind the -fastwarmup flags. Each
//     case times both constructions and records snapshot sanity numbers
//     (population, mean live out-degree) so a speedup can never hide a
//     wrong snapshot.
//
// Usage:
//
//	benchjson -out BENCH_flood.json                        # smoke scale (CI)
//	benchjson -scale large -out BENCH_flood.json           # committed large-n record
//	benchjson -bench warmup -out BENCH_warmup.json         # smoke scale (CI)
//	benchjson -bench warmup -scale large -reps 1 -out BENCH_warmup.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/rng"
)

type benchCase struct {
	kind core.Kind
	n, d int
	mode flood.Mode
	// window, when > 0, floods with RunToMax over that many rounds — the
	// measurement-window workload of experiments F6/F7/F19/F23, where the
	// broadcast keeps running under churn after completion. window == 0
	// runs to completion (or the default horizon), the F10/F11 workload.
	window int
}

func (c benchCase) workload() string {
	if c.window > 0 {
		return fmt.Sprintf("window-%d", c.window)
	}
	return "to-completion"
}

type caseResult struct {
	Model    string `json:"model"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Mode     string `json:"mode"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Reps     int    `json:"reps"`

	WarmupNs int64 `json:"warmup_ns"`

	EngineNs    int64  `json:"engine_ns"`
	ReferenceNs *int64 `json:"reference_ns,omitempty"`
	// Speedup is reference/engine wall time; omitted when the reference
	// was skipped.
	Speedup *float64 `json:"speedup,omitempty"`
	// ResultsEqual confirms the bit-for-bit equivalence contract held on
	// this run; omitted when the reference was skipped.
	ResultsEqual *bool `json:"results_equal,omitempty"`

	Completed       bool `json:"completed"`
	CompletionRound int  `json:"completion_round"`
	FinalInformed   int  `json:"final_informed"`
	FinalAlive      int  `json:"final_alive"`
}

type output struct {
	Benchmark string       `json:"benchmark"`
	Scale     string       `json:"scale"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Generated string       `json:"generated"`
	Cases     []caseResult `json:"cases"`
}

func main() {
	var (
		bench   = flag.String("bench", "flood", "flood (engine vs reference) or warmup (WarmUp vs SampleStationary)")
		out     = flag.String("out", "", "output path (- for stdout; default BENCH_<bench>.json)")
		scale   = flag.String("scale", "smoke", "smoke (CI, seconds) or large (the committed 10k..1M record)")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		reps    = flag.Int("reps", 3, "timed repetitions per implementation (min is reported)")
		maxRefN = flag.Int("max-ref-n", 200000, "flood only: time the reference only for n <= this (0 = always)")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -reps must be >= 1")
		os.Exit(2)
	}
	if *out == "" {
		*out = "BENCH_" + *bench + ".json"
	}
	switch *bench {
	case "flood":
		runFloodBench(*out, *scale, *seed, *reps, *maxRefN)
	case "warmup":
		runWarmupBench(*out, *scale, *seed, *reps)
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -bench %q (want flood or warmup)\n", *bench)
		os.Exit(2)
	}
}

func runFloodBench(out, scale string, seed uint64, reps, maxRefN int) {
	var cases []benchCase
	switch scale {
	case "smoke":
		cases = []benchCase{
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Asynchronous},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDG, n: 2000, d: 4, mode: flood.Discretized},
			{kind: core.PDG, n: 2000, d: 4, mode: flood.Discretized},
		}
	case "large":
		cases = []benchCase{
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 100000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized, window: 100},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := output{
		Benchmark: "flood: cut-set engine vs full-rescan reference",
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runCase(c, seed, reps, maxRefN))
	}
	writeJSON(out, o, len(o.Cases))
}

// writeJSON marshals any record to the output path (or stdout for "-").
func writeJSON(out string, v any, cases int) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d cases to %s\n", cases, out)
}

// runCase measures one configuration. Each timed repetition floods a
// freshly warmed model (flooding advances the network, so runs cannot
// share one), and the minimum over repetitions is reported — the standard
// way to suppress scheduler noise.
func runCase(c benchCase, seed uint64, reps, maxRefN int) caseResult {
	fmt.Fprintf(os.Stderr, "benchjson: %s n=%d d=%d %s %s...\n", c.kind, c.n, c.d, c.mode, c.workload())
	cr := caseResult{
		Model: c.kind.String(), N: c.n, D: c.d,
		Mode: c.mode.String(), Workload: c.workload(), Seed: seed, Reps: reps,
	}
	opts := flood.Options{Mode: c.mode}
	if c.window > 0 {
		opts.MaxRounds = c.window
		opts.RunToMax = true
	}
	timeRef := maxRefN == 0 || c.n <= maxRefN

	var engRes, refRes flood.Result
	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)

		t0 := time.Now()
		mEng := warm(c.kind, c.n, c.d, repSeed)
		warmup := time.Since(t0)
		if rep == 0 || int64(warmup) < cr.WarmupNs {
			cr.WarmupNs = int64(warmup)
		}

		t0 = time.Now()
		res := flood.Run(mEng, opts)
		engNs := int64(time.Since(t0))
		if rep == 0 || engNs < cr.EngineNs {
			cr.EngineNs = engNs
		}
		if rep == 0 {
			engRes = res
		}

		if timeRef {
			mRef := warm(c.kind, c.n, c.d, repSeed)
			t0 = time.Now()
			res := flood.RunReference(mRef, opts)
			refNs := int64(time.Since(t0))
			if cr.ReferenceNs == nil || refNs < *cr.ReferenceNs {
				cr.ReferenceNs = &refNs
			}
			if rep == 0 {
				refRes = res
			}
		}
	}

	cr.Completed = engRes.Completed
	cr.CompletionRound = engRes.CompletionRound
	cr.FinalInformed = engRes.FinalInformed
	cr.FinalAlive = engRes.FinalAlive
	if cr.ReferenceNs != nil {
		eq := reflect.DeepEqual(engRes, refRes)
		cr.ResultsEqual = &eq
		if !eq {
			fmt.Fprintf(os.Stderr, "benchjson: ERROR: engine/reference results diverged for %s n=%d d=%d\n",
				c.kind, c.n, c.d)
			os.Exit(1)
		}
		sp := float64(*cr.ReferenceNs) / float64(cr.EngineNs)
		cr.Speedup = &sp
	}
	return cr
}

func warm(kind core.Kind, n, d int, seed uint64) core.Model {
	m := core.New(kind, n, d, rng.New(seed))
	core.WarmUp(m)
	return m
}

// --- the warm-up benchmark (-bench warmup) ---

type warmupCase struct {
	kind core.Kind
	n, d int
}

type warmupResult struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	D     int    `json:"d"`
	Seed  uint64 `json:"seed"`
	// Reps is the -reps flag: the warm-up side's repetition count.
	// SampleReps records the sampling side's actual count — sampling is
	// cheap, so it always gets at least three repetitions even when the
	// minutes-per-rep simulated side runs once. Both columns report the
	// minimum over their own repetitions.
	Reps       int `json:"reps"`
	SampleReps int `json:"sample_reps"`

	WarmUpNs int64   `json:"warmup_ns"`
	SampleNs int64   `json:"sample_ns"`
	Speedup  float64 `json:"speedup"`

	// Snapshot sanity from the first repetition: a speedup only counts if
	// the sampled snapshot looks like the warmed one.
	WarmAlive          int     `json:"warm_alive"`
	SampledAlive       int     `json:"sampled_alive"`
	WarmLiveOutMean    float64 `json:"warm_live_out_mean"`
	SampledLiveOutMean float64 `json:"sampled_live_out_mean"`
}

type warmupOutput struct {
	Benchmark string         `json:"benchmark"`
	Scale     string         `json:"scale"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	Generated string         `json:"generated"`
	Cases     []warmupResult `json:"cases"`
}

func runWarmupBench(out, scale string, seed uint64, reps int) {
	var cases []warmupCase
	switch scale {
	case "smoke":
		cases = []warmupCase{
			{kind: core.SDG, n: 2000, d: 21},
			{kind: core.SDGR, n: 2000, d: 21},
			{kind: core.PDG, n: 2000, d: 35},
			{kind: core.PDGR, n: 2000, d: 35},
			{kind: core.SDGR, n: 10000, d: 21},
			{kind: core.PDGR, n: 10000, d: 35},
		}
	case "large":
		cases = []warmupCase{
			{kind: core.SDGR, n: 10000, d: 21},
			{kind: core.SDGR, n: 100000, d: 21},
			{kind: core.SDGR, n: 1000000, d: 21},
			{kind: core.PDGR, n: 10000, d: 35},
			{kind: core.PDGR, n: 100000, d: 35},
			{kind: core.PDGR, n: 1000000, d: 35},
			{kind: core.SDG, n: 1000000, d: 21},
			{kind: core.PDG, n: 1000000, d: 35},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := warmupOutput{
		Benchmark: "warmup: simulated WarmUp vs direct stationary sampling",
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runWarmupCase(c, seed, reps))
	}
	writeJSON(out, o, len(o.Cases))
}

// runWarmupCase times both constructions; the minimum over repetitions is
// reported, and the fastest repetition's snapshots provide the sanity
// numbers. The two sides are timed in separate phases with a forced
// collection between models, so neither construction pays the other's
// multi-hundred-MB live heap in GC pressure. Sampling is cheap enough that
// it always gets at least three repetitions, even when the expensive
// simulated side (minutes per repetition at n = 10⁶) runs with -reps 1.
func runWarmupCase(c warmupCase, seed uint64, reps int) warmupResult {
	fmt.Fprintf(os.Stderr, "benchjson: warmup %s n=%d d=%d...\n", c.kind, c.n, c.d)
	wr := warmupResult{Model: c.kind.String(), N: c.n, D: c.d, Seed: seed, Reps: reps}

	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		t0 := time.Now()
		m := warm(c.kind, c.n, c.d, seed+uint64(rep))
		warmNs := int64(time.Since(t0))
		if rep == 0 || warmNs < wr.WarmUpNs {
			wr.WarmUpNs = warmNs
			wr.WarmAlive = m.Graph().NumAlive()
			wr.WarmLiveOutMean = meanLiveOut(m)
		}
	}

	sampleReps := reps
	if sampleReps < 3 {
		sampleReps = 3
	}
	wr.SampleReps = sampleReps
	for rep := 0; rep < sampleReps; rep++ {
		runtime.GC()
		t0 := time.Now()
		m := core.SampleStationary(c.kind, c.n, c.d, rng.New(seed+uint64(rep)))
		sampNs := int64(time.Since(t0))
		if rep == 0 || sampNs < wr.SampleNs {
			wr.SampleNs = sampNs
			wr.SampledAlive = m.Graph().NumAlive()
			wr.SampledLiveOutMean = meanLiveOut(m)
		}
	}
	wr.Speedup = float64(wr.WarmUpNs) / float64(wr.SampleNs)
	return wr
}

func meanLiveOut(m core.Model) float64 {
	g := m.Graph()
	if g.NumAlive() == 0 {
		return 0
	}
	return float64(g.NumEdgesLive()) / float64(g.NumAlive())
}
