// Command benchjson times the incremental cut-set flooding engine
// (flood.Run) against the full-rescan reference (flood.RunReference) on
// identically seeded warmed models and writes the measurements as JSON —
// the machine-readable perf record that CI uploads as the BENCH_flood.json
// artifact and that EXPERIMENTS.md quotes for the large-n runs.
//
// Every case builds two models from the same seed (their churn streams are
// identical; flooding consumes no randomness), floods one with each
// implementation, verifies the Results are bit-for-bit equal, and reports
// wall times and the speedup. Reference timing can be skipped above a size
// cutoff so the n=10⁶ record stays obtainable in one sitting.
//
// Usage:
//
//	benchjson -out BENCH_flood.json                  # smoke scale (CI)
//	benchjson -scale large -out BENCH_flood.json     # committed large-n record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/rng"
)

type benchCase struct {
	kind core.Kind
	n, d int
	mode flood.Mode
	// window, when > 0, floods with RunToMax over that many rounds — the
	// measurement-window workload of experiments F6/F7/F19/F23, where the
	// broadcast keeps running under churn after completion. window == 0
	// runs to completion (or the default horizon), the F10/F11 workload.
	window int
}

func (c benchCase) workload() string {
	if c.window > 0 {
		return fmt.Sprintf("window-%d", c.window)
	}
	return "to-completion"
}

type caseResult struct {
	Model    string `json:"model"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Mode     string `json:"mode"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Reps     int    `json:"reps"`

	WarmupNs int64 `json:"warmup_ns"`

	EngineNs    int64  `json:"engine_ns"`
	ReferenceNs *int64 `json:"reference_ns,omitempty"`
	// Speedup is reference/engine wall time; omitted when the reference
	// was skipped.
	Speedup *float64 `json:"speedup,omitempty"`
	// ResultsEqual confirms the bit-for-bit equivalence contract held on
	// this run; omitted when the reference was skipped.
	ResultsEqual *bool `json:"results_equal,omitempty"`

	Completed       bool `json:"completed"`
	CompletionRound int  `json:"completion_round"`
	FinalInformed   int  `json:"final_informed"`
	FinalAlive      int  `json:"final_alive"`
}

type output struct {
	Benchmark string       `json:"benchmark"`
	Scale     string       `json:"scale"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Generated string       `json:"generated"`
	Cases     []caseResult `json:"cases"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_flood.json", "output path (- for stdout)")
		scale   = flag.String("scale", "smoke", "smoke (CI, seconds) or large (the 100k/1M record)")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		reps    = flag.Int("reps", 3, "timed repetitions per implementation (min is reported)")
		maxRefN = flag.Int("max-ref-n", 200000, "time the reference only for n <= this (0 = always)")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -reps must be >= 1")
		os.Exit(2)
	}

	var cases []benchCase
	switch *scale {
	case "smoke":
		cases = []benchCase{
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Asynchronous},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDG, n: 2000, d: 4, mode: flood.Discretized},
			{kind: core.PDG, n: 2000, d: 4, mode: flood.Discretized},
		}
	case "large":
		cases = []benchCase{
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 100000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized, window: 100},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", *scale)
		os.Exit(2)
	}

	o := output{
		Benchmark: "flood: cut-set engine vs full-rescan reference",
		Scale:     *scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runCase(c, *seed, *reps, *maxRefN))
	}

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d cases to %s\n", len(o.Cases), *out)
}

// runCase measures one configuration. Each timed repetition floods a
// freshly warmed model (flooding advances the network, so runs cannot
// share one), and the minimum over repetitions is reported — the standard
// way to suppress scheduler noise.
func runCase(c benchCase, seed uint64, reps, maxRefN int) caseResult {
	fmt.Fprintf(os.Stderr, "benchjson: %s n=%d d=%d %s %s...\n", c.kind, c.n, c.d, c.mode, c.workload())
	cr := caseResult{
		Model: c.kind.String(), N: c.n, D: c.d,
		Mode: c.mode.String(), Workload: c.workload(), Seed: seed, Reps: reps,
	}
	opts := flood.Options{Mode: c.mode}
	if c.window > 0 {
		opts.MaxRounds = c.window
		opts.RunToMax = true
	}
	timeRef := maxRefN == 0 || c.n <= maxRefN

	var engRes, refRes flood.Result
	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)

		t0 := time.Now()
		mEng := warm(c.kind, c.n, c.d, repSeed)
		warmup := time.Since(t0)
		if rep == 0 || int64(warmup) < cr.WarmupNs {
			cr.WarmupNs = int64(warmup)
		}

		t0 = time.Now()
		res := flood.Run(mEng, opts)
		engNs := int64(time.Since(t0))
		if rep == 0 || engNs < cr.EngineNs {
			cr.EngineNs = engNs
		}
		if rep == 0 {
			engRes = res
		}

		if timeRef {
			mRef := warm(c.kind, c.n, c.d, repSeed)
			t0 = time.Now()
			res := flood.RunReference(mRef, opts)
			refNs := int64(time.Since(t0))
			if cr.ReferenceNs == nil || refNs < *cr.ReferenceNs {
				cr.ReferenceNs = &refNs
			}
			if rep == 0 {
				refRes = res
			}
		}
	}

	cr.Completed = engRes.Completed
	cr.CompletionRound = engRes.CompletionRound
	cr.FinalInformed = engRes.FinalInformed
	cr.FinalAlive = engRes.FinalAlive
	if cr.ReferenceNs != nil {
		eq := reflect.DeepEqual(engRes, refRes)
		cr.ResultsEqual = &eq
		if !eq {
			fmt.Fprintf(os.Stderr, "benchjson: ERROR: engine/reference results diverged for %s n=%d d=%d\n",
				c.kind, c.n, c.d)
			os.Exit(1)
		}
		sp := float64(*cr.ReferenceNs) / float64(cr.EngineNs)
		cr.Speedup = &sp
	}
	return cr
}

func warm(kind core.Kind, n, d int, seed uint64) core.Model {
	m := core.New(kind, n, d, rng.New(seed))
	core.WarmUp(m)
	return m
}
