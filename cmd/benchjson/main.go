// Command benchjson writes machine-readable perf records as JSON — the
// artifacts CI uploads and EXPERIMENTS.md quotes for the large-n runs. It
// carries four benchmarks, selected by -bench:
//
//   - flood (default): the incremental cut-set flooding engine (flood.Run)
//     against the full-rescan reference (flood.RunReference) on identically
//     seeded warmed models — the BENCH_flood.json record. Every case builds
//     two models from the same seed (their churn streams are identical;
//     flooding consumes no randomness), floods one with each
//     implementation, verifies the Results are bit-for-bit equal, and
//     reports wall times and the speedup. Reference timing can be skipped
//     above a size cutoff so the n=10⁶ record stays obtainable in one
//     sitting.
//
//   - warmup: simulated core.WarmUp (2n rounds / 7·n·ln n jump events)
//     against direct stationary-snapshot sampling (core.SampleStationary)
//     — the BENCH_warmup.json record behind the -fastwarmup flags. Each
//     case times both constructions and records snapshot sanity numbers
//     (population, mean live out-degree) so a speedup can never hide a
//     wrong snapshot.
//
//   - floodpar: the sharded cut engine (flood.Options.Parallelism, the
//     -floodpar knob) — serial vs W ∈ {2, 4, 8} worker shards on one
//     broadcast per case, plus a parallel-vs-serial sweep of the
//     graph.WireSnapshotEdgesPar arena fill. Build and flood phases are
//     timed GC-isolated, every sharded Result is verified bit-for-bit
//     equal to the serial one, and the record carries GOMAXPROCS so a
//     single-core runner's parity rows read as what they are — the
//     BENCH_floodpar.json record.
//
//   - edgerate: the cut-set engine's event feed under the bounded-degree
//     policies (the F22/Section 5 open question): OnEdge events per time
//     unit, the regeneration share and per-death burst sizes, and an
//     engine-flooded broadcast, for the plain uniform draw vs the hard
//     inbound cap at n up to 10⁶ — the BENCH_edgerate.json record behind
//     the large-n F22 row in EXPERIMENTS.md. Policy models have no
//     closed-form stationary law, so the warm-up is simulated (minutes at
//     n = 10⁶; use -reps 1).
//
//   - serve: the live control-plane daemon (internal/serve) under
//     concurrent loopback-HTTP load — req/s and p50/p99 request latency
//     for a mixed read/join/leave/step workload at n up to 10⁶, with
//     queue-depth and snapshot-age (staleness actually served) columns —
//     the BENCH_serve.json record. Every row ends with a consistency
//     audit (serve.VerifySnapshot): a freshly published snapshot is
//     compared field by field against a direct model query at the same
//     version, and the run aborts on any divergence, so a throughput
//     number can never hide a stale or torn read.
//
//   - traffic: the multi-message traffic plane (flood.Traffic) — M
//     concurrent broadcasts injected per a burst/staggered/poisson schedule
//     over one churn stream, messages retired as they deliver — the
//     BENCH_traffic.json record: messages fully delivered per wall-second
//     at n = 10⁶ under churn, plus the completion-round histogram per
//     injection rate. Every row carries an oracle_equal audit column: each
//     of the row's messages is replayed as an independent single-message
//     flood.Run on an identically seeded model and the per-message Results
//     must be bit-for-bit equal, so a throughput number can never hide a
//     cross-message bookkeeping bug.
//
//   - expansion: the incremental expansion-witness tracker
//     (expansion.Tracker) against per-snapshot expansion.Estimate rescans
//     on identically seeded models — the BENCH_expansion.json record
//     behind the -trackexp flags. Each case tracks a churn window with an
//     observation per round; the rescan side runs a witness search at
//     every observation point. Tracked numbers are re-verified against
//     fresh BoundarySize rescans at sampled observations (the rescan_equal
//     column), so a speedup can never hide wrong bookkeeping.
//
// Usage:
//
//	benchjson -out BENCH_flood.json                        # smoke scale (CI)
//	benchjson -scale large -out BENCH_flood.json           # committed large-n record
//	benchjson -bench warmup -out BENCH_warmup.json         # smoke scale (CI)
//	benchjson -bench warmup -scale large -reps 1 -out BENCH_warmup.json
//	benchjson -bench floodpar -out BENCH_floodpar.json     # smoke scale (CI)
//	benchjson -bench floodpar -scale large -reps 1 -out BENCH_floodpar.json
//	benchjson -bench edgerate -scale large -reps 1 -out BENCH_edgerate.json
//	benchjson -bench expansion -out BENCH_expansion.json   # smoke scale (CI)
//	benchjson -bench expansion -scale large -reps 1 -out BENCH_expansion.json
//	benchjson -bench traffic -out BENCH_traffic.json       # smoke scale (CI)
//	benchjson -bench traffic -scale large -reps 1 -out BENCH_traffic.json
//	benchjson -bench serve -out BENCH_serve.json           # smoke scale (CI)
//	benchjson -bench serve -scale large -reps 1 -out BENCH_serve.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"reflect"
	"runtime"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/expansion"
	"github.com/dyngraph/churnnet/internal/flood"
	"github.com/dyngraph/churnnet/internal/graph"
	"github.com/dyngraph/churnnet/internal/rng"
)

type benchCase struct {
	kind core.Kind
	n, d int
	mode flood.Mode
	// window, when > 0, floods with RunToMax over that many rounds — the
	// measurement-window workload of experiments F6/F7/F19/F23, where the
	// broadcast keeps running under churn after completion. window == 0
	// runs to completion (or the default horizon), the F10/F11 workload.
	window int
}

func (c benchCase) workload() string {
	if c.window > 0 {
		return fmt.Sprintf("window-%d", c.window)
	}
	return "to-completion"
}

type caseResult struct {
	Model    string `json:"model"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Mode     string `json:"mode"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Reps     int    `json:"reps"`

	WarmupNs int64 `json:"warmup_ns"`

	EngineNs    int64  `json:"engine_ns"`
	ReferenceNs *int64 `json:"reference_ns,omitempty"`
	// Speedup is reference/engine wall time; omitted when the reference
	// was skipped.
	Speedup *float64 `json:"speedup,omitempty"`
	// ResultsEqual confirms the bit-for-bit equivalence contract held on
	// this run; omitted when the reference was skipped.
	ResultsEqual *bool `json:"results_equal,omitempty"`

	Completed       bool `json:"completed"`
	CompletionRound int  `json:"completion_round"`
	FinalInformed   int  `json:"final_informed"`
	FinalAlive      int  `json:"final_alive"`
}

type output struct {
	Benchmark  string       `json:"benchmark"`
	Scale      string       `json:"scale"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Generated  string       `json:"generated"`
	Cases      []caseResult `json:"cases"`
}

func main() {
	var (
		bench    = flag.String("bench", "flood", "flood (engine vs reference), warmup (WarmUp vs SampleStationary), floodpar (serial vs sharded engine + parallel snapshot wiring), edgerate (cut-event feed under bounded-degree policies), expansion (incremental tracker vs per-snapshot Estimate), traffic (multi-message plane vs per-message single-flood oracle) or serve (control-plane daemon under concurrent HTTP load)")
		out      = flag.String("out", "", "output path (- for stdout; default BENCH_<bench>.json)")
		scale    = flag.String("scale", "smoke", "smoke (CI, seconds) or large (the committed 10k..10M record)")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		reps     = flag.Int("reps", 3, "timed repetitions per implementation (min is reported)")
		maxRefN  = flag.Int("max-ref-n", 200000, "flood only: time the reference only for n <= this (0 = always)")
		floodPar = flag.Int("floodpar", 1, "flood only: worker shards inside each engine broadcast; 0 picks W from GOMAXPROCS and n (floodpar mode sweeps its own)")
	)
	flag.Parse()
	if err := validateFlags(*reps, *maxRefN, *floodPar); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if *floodPar == 0 {
		*floodPar = flood.Auto
	}
	if *out == "" {
		*out = "BENCH_" + *bench + ".json"
	}
	switch *bench {
	case "flood":
		runFloodBench(*out, *scale, *seed, *reps, *maxRefN, *floodPar)
	case "warmup":
		runWarmupBench(*out, *scale, *seed, *reps)
	case "floodpar":
		runFloodParBench(*out, *scale, *seed, *reps)
	case "edgerate":
		runEdgeRateBench(*out, *scale, *seed, *reps)
	case "expansion":
		runExpansionBench(*out, *scale, *seed, *reps)
	case "traffic":
		runTrafficBench(*out, *scale, *seed, *reps)
	case "serve":
		runServeBench(*out, *scale, *seed, *reps)
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -bench %q (want flood, warmup, floodpar, edgerate, expansion, traffic or serve)\n", *bench)
		os.Exit(2)
	}
}

// validateFlags rejects invalid flag values; the returned error names the
// offending flag. Kept separate from main so the flag paths are
// regression-testable (see main_test.go).
func validateFlags(reps, maxRefN, floodPar int) error {
	switch {
	case reps < 1:
		return errors.New("-reps must be >= 1")
	case maxRefN < 0:
		return errors.New("-max-ref-n must be >= 0 (0 = always)")
	case floodPar < 0:
		return errors.New("-floodpar must be >= 0 (0 = auto from GOMAXPROCS and n)")
	}
	return nil
}

func runFloodBench(out, scale string, seed uint64, reps, maxRefN, floodPar int) {
	var cases []benchCase
	switch scale {
	case "smoke":
		cases = []benchCase{
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Asynchronous},
			{kind: core.SDGR, n: 2000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized},
			{kind: core.PDGR, n: 2000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDG, n: 2000, d: 4, mode: flood.Discretized},
			{kind: core.PDG, n: 2000, d: 4, mode: flood.Discretized},
		}
	case "large":
		cases = []benchCase{
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 100000, d: 21, mode: flood.Discretized, window: 100},
			{kind: core.PDGR, n: 100000, d: 35, mode: flood.Discretized, window: 100},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized},
			{kind: core.SDGR, n: 1000000, d: 21, mode: flood.Discretized, window: 100},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := output{
		Benchmark:  "flood: cut-set engine vs full-rescan reference",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runCase(c, seed, reps, maxRefN, floodPar))
	}
	writeJSON(out, o, len(o.Cases))
}

// writeJSON marshals any record to the output path (or stdout for "-").
func writeJSON(out string, v any, cases int) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d cases to %s\n", cases, out)
}

// runCase measures one configuration. Each timed repetition floods a
// freshly warmed model (flooding advances the network, so runs cannot
// share one), and the minimum over repetitions is reported — the standard
// way to suppress scheduler noise.
func runCase(c benchCase, seed uint64, reps, maxRefN, floodPar int) caseResult {
	fmt.Fprintf(os.Stderr, "benchjson: %s n=%d d=%d %s %s...\n", c.kind, c.n, c.d, c.mode, c.workload())
	cr := caseResult{
		Model: c.kind.String(), N: c.n, D: c.d,
		Mode: c.mode.String(), Workload: c.workload(), Seed: seed, Reps: reps,
	}
	opts := flood.Options{Mode: c.mode, Parallelism: floodPar}
	if c.window > 0 {
		opts.MaxRounds = c.window
		opts.RunToMax = true
	}
	timeRef := maxRefN == 0 || c.n <= maxRefN

	var engRes, refRes flood.Result
	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)

		t0 := time.Now()
		mEng := warm(c.kind, c.n, c.d, repSeed)
		warmup := time.Since(t0)
		if rep == 0 || int64(warmup) < cr.WarmupNs {
			cr.WarmupNs = int64(warmup)
		}

		t0 = time.Now()
		res := flood.Run(mEng, opts)
		engNs := int64(time.Since(t0))
		if rep == 0 || engNs < cr.EngineNs {
			cr.EngineNs = engNs
		}
		if rep == 0 {
			engRes = res
		}

		if timeRef {
			mRef := warm(c.kind, c.n, c.d, repSeed)
			t0 = time.Now()
			res := flood.RunReference(mRef, opts)
			refNs := int64(time.Since(t0))
			if cr.ReferenceNs == nil || refNs < *cr.ReferenceNs {
				cr.ReferenceNs = &refNs
			}
			if rep == 0 {
				refRes = res
			}
		}
	}

	cr.Completed = engRes.Completed
	cr.CompletionRound = engRes.CompletionRound
	cr.FinalInformed = engRes.FinalInformed
	cr.FinalAlive = engRes.FinalAlive
	if cr.ReferenceNs != nil {
		eq := reflect.DeepEqual(engRes, refRes)
		cr.ResultsEqual = &eq
		if !eq {
			fmt.Fprintf(os.Stderr, "benchjson: ERROR: engine/reference results diverged for %s n=%d d=%d\n",
				c.kind, c.n, c.d)
			os.Exit(1)
		}
		sp := float64(*cr.ReferenceNs) / float64(cr.EngineNs)
		cr.Speedup = &sp
	}
	return cr
}

func warm(kind core.Kind, n, d int, seed uint64) core.Model {
	m := core.New(kind, n, d, rng.New(seed))
	core.WarmUp(m)
	return m
}

// --- the warm-up benchmark (-bench warmup) ---

type warmupCase struct {
	kind core.Kind
	n, d int
}

type warmupResult struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	D     int    `json:"d"`
	Seed  uint64 `json:"seed"`
	// Reps is the -reps flag: the warm-up side's repetition count.
	// SampleReps records the sampling side's actual count — sampling is
	// cheap, so it always gets at least three repetitions even when the
	// minutes-per-rep simulated side runs once. Both columns report the
	// minimum over their own repetitions.
	Reps       int `json:"reps"`
	SampleReps int `json:"sample_reps"`

	WarmUpNs int64   `json:"warmup_ns"`
	SampleNs int64   `json:"sample_ns"`
	Speedup  float64 `json:"speedup"`

	// Snapshot sanity from the first repetition: a speedup only counts if
	// the sampled snapshot looks like the warmed one.
	WarmAlive          int     `json:"warm_alive"`
	SampledAlive       int     `json:"sampled_alive"`
	WarmLiveOutMean    float64 `json:"warm_live_out_mean"`
	SampledLiveOutMean float64 `json:"sampled_live_out_mean"`
}

type warmupOutput struct {
	Benchmark string         `json:"benchmark"`
	Scale     string         `json:"scale"`
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	Generated string         `json:"generated"`
	Cases     []warmupResult `json:"cases"`
}

func runWarmupBench(out, scale string, seed uint64, reps int) {
	var cases []warmupCase
	switch scale {
	case "smoke":
		cases = []warmupCase{
			{kind: core.SDG, n: 2000, d: 21},
			{kind: core.SDGR, n: 2000, d: 21},
			{kind: core.PDG, n: 2000, d: 35},
			{kind: core.PDGR, n: 2000, d: 35},
			{kind: core.SDGR, n: 10000, d: 21},
			{kind: core.PDGR, n: 10000, d: 35},
		}
	case "large":
		cases = []warmupCase{
			{kind: core.SDGR, n: 10000, d: 21},
			{kind: core.SDGR, n: 100000, d: 21},
			{kind: core.SDGR, n: 1000000, d: 21},
			{kind: core.PDGR, n: 10000, d: 35},
			{kind: core.PDGR, n: 100000, d: 35},
			{kind: core.PDGR, n: 1000000, d: 35},
			{kind: core.SDG, n: 1000000, d: 21},
			{kind: core.PDG, n: 1000000, d: 35},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := warmupOutput{
		Benchmark: "warmup: simulated WarmUp vs direct stationary sampling",
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runWarmupCase(c, seed, reps))
	}
	writeJSON(out, o, len(o.Cases))
}

// runWarmupCase times both constructions; the minimum over repetitions is
// reported, and the fastest repetition's snapshots provide the sanity
// numbers. The two sides are timed in separate phases with a forced
// collection between models, so neither construction pays the other's
// multi-hundred-MB live heap in GC pressure. Sampling is cheap enough that
// it always gets at least three repetitions, even when the expensive
// simulated side (minutes per repetition at n = 10⁶) runs with -reps 1.
func runWarmupCase(c warmupCase, seed uint64, reps int) warmupResult {
	fmt.Fprintf(os.Stderr, "benchjson: warmup %s n=%d d=%d...\n", c.kind, c.n, c.d)
	wr := warmupResult{Model: c.kind.String(), N: c.n, D: c.d, Seed: seed, Reps: reps}

	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		t0 := time.Now()
		m := warm(c.kind, c.n, c.d, seed+uint64(rep))
		warmNs := int64(time.Since(t0))
		if rep == 0 || warmNs < wr.WarmUpNs {
			wr.WarmUpNs = warmNs
			wr.WarmAlive = m.Graph().NumAlive()
			wr.WarmLiveOutMean = meanLiveOut(m)
		}
	}

	sampleReps := reps
	if sampleReps < 3 {
		sampleReps = 3
	}
	wr.SampleReps = sampleReps
	for rep := 0; rep < sampleReps; rep++ {
		runtime.GC()
		t0 := time.Now()
		m := core.SampleStationary(c.kind, c.n, c.d, rng.New(seed+uint64(rep)))
		sampNs := int64(time.Since(t0))
		if rep == 0 || sampNs < wr.SampleNs {
			wr.SampleNs = sampNs
			wr.SampledAlive = m.Graph().NumAlive()
			wr.SampledLiveOutMean = meanLiveOut(m)
		}
	}
	wr.Speedup = float64(wr.WarmUpNs) / float64(wr.SampleNs)
	return wr
}

func meanLiveOut(m core.Model) float64 {
	g := m.Graph()
	if g.NumAlive() == 0 {
		return 0
	}
	return float64(g.NumEdgesLive()) / float64(g.NumAlive())
}

// --- the sharded-engine benchmark (-bench floodpar) ---

type floodparCase struct {
	kind core.Kind
	n, d int
	// window as in benchCase: > 0 floods RunToMax over that many rounds.
	window int
}

type floodparResult struct {
	Model    string `json:"model"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Reps     int    `json:"reps"`
	// Par is the engine's worker-shard count (flood.Options.Parallelism);
	// 1 is the serial baseline the other rows compare against.
	Par int `json:"par"`

	// BuildNs times core.SampleStationaryPar with the snapshot wiring
	// sharded at Par; FloodNs times flood.Run alone. The phases are
	// GC-isolated (a forced collection before each timed region).
	BuildNs int64 `json:"build_ns"`
	FloodNs int64 `json:"flood_ns"`

	// SpeedupVsSerial is serial-flood / this-flood wall time; omitted on
	// the serial row itself.
	SpeedupVsSerial *float64 `json:"speedup_vs_serial,omitempty"`
	// ResultsEqual confirms this row's Result is bit-for-bit the serial
	// engine's; omitted on the serial row.
	ResultsEqual *bool `json:"results_equal,omitempty"`

	Completed       bool `json:"completed"`
	CompletionRound int  `json:"completion_round"`
	FinalInformed   int  `json:"final_informed"`
	FinalAlive      int  `json:"final_alive"`
}

type wireFillResult struct {
	N       int    `json:"n"`
	D       int    `json:"d"`
	Workers int    `json:"workers"`
	Seed    uint64 `json:"seed"`
	Reps    int    `json:"reps"`
	WireNs  int64  `json:"wire_ns"`
	// SpeedupVsSerial is serial-fill / this-fill wall time; omitted on the
	// workers=1 row.
	SpeedupVsSerial *float64 `json:"speedup_vs_serial,omitempty"`
	// LayoutEqual confirms the filled adjacency (including in-list order)
	// hashes identically to the serial fill; omitted on the workers=1 row.
	LayoutEqual *bool `json:"layout_equal,omitempty"`
}

type floodparOutput struct {
	Benchmark  string           `json:"benchmark"`
	Scale      string           `json:"scale"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Generated  string           `json:"generated"`
	Cases      []floodparResult `json:"cases"`
	WireFill   []wireFillResult `json:"wire_fill"`
}

// runFloodParBench measures the sharded engine against its own serial
// mode, then the parallel WireSnapshotEdges fill against the serial one.
// Models are built by stationary sampling (simulated warm-up would
// dominate at n = 10⁷ and the engine contract is warm-up-agnostic);
// identical seeds build identical models at every Par, so the
// result-equality column is exact.
func runFloodParBench(out, scale string, seed uint64, reps int) {
	var cases []floodparCase
	var pars []int
	var wireNs []int
	switch scale {
	case "smoke":
		cases = []floodparCase{
			{kind: core.SDGR, n: 2000, d: 21},
			{kind: core.SDGR, n: 10000, d: 21, window: 50},
			{kind: core.PDGR, n: 10000, d: 35},
		}
		pars = []int{1, 2, 4}
		wireNs = []int{20000}
	case "large":
		cases = []floodparCase{
			{kind: core.SDGR, n: 100000, d: 21},
			{kind: core.SDGR, n: 1000000, d: 21},
			{kind: core.SDGR, n: 1000000, d: 21, window: 100},
			{kind: core.SDGR, n: 10000000, d: 21},
		}
		pars = []int{1, 2, 4, 8}
		wireNs = []int{100000, 1000000}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := floodparOutput{
		Benchmark:  "floodpar: serial vs sharded cut engine + parallel snapshot wiring",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		var serial floodparResult
		var serialRes flood.Result
		for _, par := range pars {
			fr, res := runFloodParCase(c, par, seed, reps)
			if par == 1 {
				serial, serialRes = fr, res
			} else {
				sp := float64(serial.FloodNs) / float64(fr.FloodNs)
				fr.SpeedupVsSerial = &sp
				eq := reflect.DeepEqual(res, serialRes)
				fr.ResultsEqual = &eq
				if !eq {
					fmt.Fprintf(os.Stderr, "benchjson: ERROR: par %d diverged from serial for %s n=%d\n",
						par, c.kind, c.n)
					os.Exit(1)
				}
			}
			o.Cases = append(o.Cases, fr)
		}
	}
	for _, n := range wireNs {
		var serial wireFillResult
		var serialHash uint64
		for _, w := range pars {
			wr, h := runWireFillCase(n, 21, w, seed, reps)
			if w == 1 {
				serial, serialHash = wr, h
			} else {
				sp := float64(serial.WireNs) / float64(wr.WireNs)
				wr.SpeedupVsSerial = &sp
				eq := h == serialHash
				wr.LayoutEqual = &eq
				if !eq {
					fmt.Fprintf(os.Stderr, "benchjson: ERROR: wire fill at %d workers diverged (n=%d)\n", w, n)
					os.Exit(1)
				}
			}
			o.WireFill = append(o.WireFill, wr)
		}
	}
	writeJSON(out, o, len(o.Cases)+len(o.WireFill))
}

func (c floodparCase) workload() string {
	if c.window > 0 {
		return fmt.Sprintf("window-%d", c.window)
	}
	return "to-completion"
}

func runFloodParCase(c floodparCase, par int, seed uint64, reps int) (floodparResult, flood.Result) {
	fmt.Fprintf(os.Stderr, "benchjson: floodpar %s n=%d d=%d %s par=%d...\n",
		c.kind, c.n, c.d, c.workload(), par)
	fr := floodparResult{
		Model: c.kind.String(), N: c.n, D: c.d,
		Workload: c.workload(), Seed: seed, Reps: reps, Par: par,
	}
	opts := flood.Options{Parallelism: par}
	if c.window > 0 {
		opts.MaxRounds = c.window
		opts.RunToMax = true
	}
	var first flood.Result
	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)
		runtime.GC()
		t0 := time.Now()
		m := core.SampleStationaryPar(c.kind, c.n, c.d, rng.New(repSeed), par)
		buildNs := int64(time.Since(t0))
		if rep == 0 || buildNs < fr.BuildNs {
			fr.BuildNs = buildNs
		}
		runtime.GC()
		t0 = time.Now()
		res := flood.Run(m, opts)
		floodNs := int64(time.Since(t0))
		if rep == 0 || floodNs < fr.FloodNs {
			fr.FloodNs = floodNs
		}
		if rep == 0 {
			first = res
		}
	}
	fr.Completed = first.Completed
	fr.CompletionRound = first.CompletionRound
	fr.FinalInformed = first.FinalInformed
	fr.FinalAlive = first.FinalAlive
	return fr, first
}

// runWireFillCase times graph.WireSnapshotEdgesPar alone on a synthetic
// uniform d-out spec (the snapshot samplers' workload shape) and returns
// an adjacency hash covering out-target and in-source order, so a layout
// divergence can never hide behind a fast fill.
//
//churnvet:hookexempt microbenchmark times the bare fill; no hook subscriber exists in this process
func runWireFillCase(n, d, workers int, seed uint64, reps int) (wireFillResult, uint64) {
	fmt.Fprintf(os.Stderr, "benchjson: wire fill n=%d d=%d workers=%d...\n", n, d, workers)
	wr := wireFillResult{N: n, D: d, Workers: workers, Seed: seed, Reps: reps}
	var hash uint64
	for rep := 0; rep < reps; rep++ {
		r := rng.New(seed) // same spec every rep and every worker count
		starts := make([]int32, n+1)
		targets := make([]uint32, 0, n*d)
		for s := 0; s < n; s++ {
			for j := 0; j < d && n > 1; j++ {
				t := r.Intn(n - 1)
				if t >= s {
					t++
				}
				targets = append(targets, uint32(t))
			}
			starts[s+1] = int32(len(targets))
		}
		g := graph.New(n, d)
		for i := 0; i < n; i++ {
			g.AddNode(float64(i))
		}
		runtime.GC()
		t0 := time.Now()
		g.WireSnapshotEdgesPar(starts, targets, workers)
		wireNs := int64(time.Since(t0))
		if rep == 0 || wireNs < wr.WireNs {
			wr.WireNs = wireNs
		}
		if rep == 0 {
			hash = adjacencyHash(g, n)
		}
	}
	return wr, hash
}

// adjacencyHash folds every node's out-target and in-source sequences
// (order included) into one FNV-64 value.
func adjacencyHash(g *graph.Graph, n int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	put := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf)
	}
	for s := 0; s < n; s++ {
		hd := graph.Handle{Slot: uint32(s), Gen: 1}
		put(^uint32(0)) // node separator
		g.OutTargets(hd, func(x graph.Handle) bool { put(x.Slot); return true })
		put(^uint32(1))
		g.InSources(hd, func(x graph.Handle) bool { put(x.Slot); return true })
	}
	return h.Sum64()
}

// --- the cut-event-feed benchmark (-bench edgerate) ---

type edgeRateResult struct {
	Model  string `json:"model"`
	Policy string `json:"policy"`
	N      int    `json:"n"`
	D      int    `json:"d"`
	Seed   uint64 `json:"seed"`

	WarmupNs int64 `json:"warmup_ns"`

	// Window is the measured span in time units; the counters below cover
	// exactly that span.
	Window float64 `json:"window"`
	Events int     `json:"on_edge_events"`
	Births int     `json:"births"`
	Deaths int     `json:"deaths"`
	// EventsPerUnit is the OnEdge rate the cut engine absorbs per
	// transmission time unit.
	EventsPerUnit float64 `json:"events_per_unit"`
	// RegenShare is the fraction of OnEdge events fired by rule-3
	// regeneration rather than birth requests.
	RegenShare float64 `json:"regen_share"`
	// MaxRegenBurst / MeanRegenBurst describe the per-death regeneration
	// bursts (the dying node's live in-degree) — the quantity the inbound
	// cap bounds.
	MaxRegenBurst  int     `json:"max_regen_burst"`
	MeanRegenBurst float64 `json:"mean_regen_burst"`

	// A broadcast on the measured network, run on the cut-set engine: the
	// F22 engine-reuse signal at scale.
	FloodNs         int64 `json:"flood_ns"`
	FloodCompleted  bool  `json:"flood_completed"`
	CompletionRound int   `json:"completion_round"`
}

type edgeRateOutput struct {
	Benchmark  string           `json:"benchmark"`
	Scale      string           `json:"scale"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Generated  string           `json:"generated"`
	Cases      []edgeRateResult `json:"cases"`
}

// runEdgeRateBench measures the OnEdge event stream feeding the cut
// engine under PDGR dynamics with the plain uniform draw vs the hard
// inbound cap (core.DegreePolicy{InCap: 2d}) — the F22 configuration.
// Policy variants have no closed-form stationary law, so warm-up is
// simulated; at n = 10⁶ expect minutes per case.
func runEdgeRateBench(out, scale string, seed uint64, reps int) {
	d := 20 // the F22 out-degree
	var ns []int
	var window float64
	switch scale {
	case "smoke":
		ns = []int{2000}
		window = 200
	case "large":
		ns = []int{100000, 1000000}
		window = 2000
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}
	_ = reps // warm-up dominates; each case runs once

	o := edgeRateOutput{
		Benchmark:  "edgerate: OnEdge feed of the cut engine under bounded-degree policies (F22)",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	policies := []core.DegreePolicy{{}, {InCap: 2 * d}}
	for _, n := range ns {
		for _, policy := range policies {
			o.Cases = append(o.Cases, runEdgeRateCase(n, d, policy, seed, window))
		}
	}
	writeJSON(out, o, len(o.Cases))
}

func runEdgeRateCase(n, d int, policy core.DegreePolicy, seed uint64, window float64) edgeRateResult {
	fmt.Fprintf(os.Stderr, "benchjson: edgerate %s n=%d d=%d (simulated warm-up)...\n", policy, n, d)
	er := edgeRateResult{
		Model: core.PDGR.String(), Policy: policy.String(), N: n, D: d, Seed: seed,
	}
	m := core.NewPoissonVariant(n, d, true, policy, rng.New(seed))
	t0 := time.Now()
	m.WarmUp()
	er.WarmupNs = int64(time.Since(t0))

	g := m.Graph()
	bursts := 0
	m.SetHooks(core.Hooks{
		OnBirth: func(graph.Handle) { er.Births++ },
		OnDeath: func(h graph.Handle) {
			er.Deaths++
			// The hook fires before removal: the live in-degree is exactly
			// the number of rule-3 regenerations this death triggers.
			b := g.InDegreeLive(h)
			bursts += b
			if b > er.MaxRegenBurst {
				er.MaxRegenBurst = b
			}
		},
		OnEdge: func(u, v graph.Handle) { er.Events++ },
	})
	m.AdvanceTime(window)
	m.SetHooks(core.Hooks{})
	er.Window = window
	er.EventsPerUnit = float64(er.Events) / window
	if er.Events > 0 {
		er.RegenShare = float64(er.Events-d*er.Births) / float64(er.Events)
	}
	if er.Deaths > 0 {
		er.MeanRegenBurst = float64(bursts) / float64(er.Deaths)
	}

	for !g.IsAlive(m.LastBorn()) {
		m.AdvanceRound()
	}
	runtime.GC()
	t0 = time.Now()
	res := flood.Run(m, flood.Options{Source: m.LastBorn()})
	er.FloodNs = int64(time.Since(t0))
	er.FloodCompleted = res.Completed
	er.CompletionRound = res.CompletionRound
	return er
}

// --- the incremental-expansion benchmark (-bench expansion) ---

type expansionCase struct {
	kind core.Kind
	n, d int
}

type expansionResult struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	D     int    `json:"d"`
	Seed  uint64 `json:"seed"`
	Reps  int    `json:"reps"`
	// Window is the tracked churn window in rounds, with one observation
	// per round (the standard tracking cadence); the rescan side runs one
	// Estimate search per observation point on an identically seeded
	// model. TrackerPar is the tracker's resolved flush worker count.
	Window       int `json:"window"`
	Observations int `json:"observations"`
	TrackedSets  int `json:"tracked_sets"`
	Reseeds      int `json:"reseeds"`
	TrackerPar   int `json:"tracker_par"`

	// BuildNs times the stationary-sampled model build (identical for
	// both sides); TrackerNs covers attach + window advancement +
	// per-round observations; EstimateNs covers the same advancement plus
	// the per-observation Estimate searches. All are minima over reps,
	// GC-isolated per phase.
	BuildNs    int64   `json:"build_ns"`
	TrackerNs  int64   `json:"tracker_ns"`
	EstimateNs int64   `json:"estimate_ns"`
	Speedup    float64 `json:"speedup"`

	// RescanEqual confirms that at the sampled observations (first,
	// middle, last) every tracked set's live size, boundary and ratio were
	// bit-for-bit what fresh BoundarySize/Ratio rescans computed.
	RescanEqual bool `json:"rescan_equal"`

	// Window minima from the first repetition (upper bounds on h_out over
	// time; the two searches track different candidate draws, so the
	// numbers are sanity context, not an equality).
	TrackerMin  float64 `json:"tracker_min"`
	EstimateMin float64 `json:"estimate_min"`
}

type expansionOutput struct {
	Benchmark  string            `json:"benchmark"`
	Scale      string            `json:"scale"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Generated  string            `json:"generated"`
	Cases      []expansionResult `json:"cases"`
}

// expansionBenchWindow is the tracked-window length (rounds, one
// observation each) of every expansion bench case — the standard
// tracking cadence: observe every round over an O(log n)-round window
// (the horizon flooding completes in at these sizes), re-seeding the
// adaptive families once mid-window.
const (
	expansionBenchWindow = 12
	expansionBenchReseed = 8
)

// runExpansionBench measures time-resolved expansion tracking: the
// event-driven tracker riding the churn stream versus re-running the
// per-snapshot witness search at every observation point. Models are
// built by stationary sampling (the tracker contract is warm-up-agnostic
// and simulated warm-up would dominate at n = 10⁶).
func runExpansionBench(out, scale string, seed uint64, reps int) {
	var cases []expansionCase
	switch scale {
	case "smoke":
		cases = []expansionCase{
			{kind: core.SDGR, n: 2000, d: 21},
			{kind: core.PDGR, n: 2000, d: 35},
			{kind: core.SDG, n: 2000, d: 4},
		}
	case "large":
		cases = []expansionCase{
			{kind: core.SDGR, n: 100000, d: 21},
			{kind: core.PDGR, n: 100000, d: 35},
			{kind: core.SDGR, n: 1000000, d: 21},
			{kind: core.PDGR, n: 1000000, d: 35},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := expansionOutput{
		Benchmark:  "expansion: incremental tracker vs per-snapshot Estimate rescans",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runExpansionCase(c, seed, reps, scale == "large"))
	}
	writeJSON(out, o, len(o.Cases))
}

// benchTrackerCfg keeps the tracked families comparable to the rescan
// side's search (benchEstimateCfg): the same ladder, the same adversarial
// family kinds, fewer random draws per size — the tracker keeps its sets
// between observations, the search redraws them every time.
func benchTrackerCfg(large bool) expansion.TrackerConfig {
	cfg := expansion.TrackerConfig{
		Singletons:        8,
		RandomSetsPerSize: 2,
		BFSSeeds:          4,
		GreedySeeds:       2,
		ReseedEvery:       expansionBenchReseed,
		Parallelism:       flood.Auto,
	}
	if large {
		cfg.LadderStride = 2
		cfg.MaxBFSSize = 1 << 16
		cfg.MaxGreedySize = 1024
	}
	return cfg
}

func benchEstimateCfg(large bool) expansion.Config {
	if !large {
		return expansion.Config{}
	}
	// Greedy growth is quadratic in its cap; cap it the same way the
	// tracker side does so the rescan side stays runnable at n = 10⁶.
	return expansion.Config{
		SampleTrialsPerSize: 8,
		BFSSeeds:            4,
		GreedySeeds:         2,
		MaxGreedySize:       1024,
	}
}

func runExpansionCase(c expansionCase, seed uint64, reps int, large bool) expansionResult {
	fmt.Fprintf(os.Stderr, "benchjson: expansion %s n=%d d=%d...\n", c.kind, c.n, c.d)
	er := expansionResult{
		Model: c.kind.String(), N: c.n, D: c.d, Seed: seed, Reps: reps,
		Window: expansionBenchWindow, Observations: expansionBenchWindow,
		RescanEqual: true,
	}
	checkAt := map[int]bool{1: true, expansionBenchWindow / 2: true, expansionBenchWindow: true}

	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)

		// Tracker side: attach, then advance the window observing every
		// round; rescan verification runs off the clock.
		runtime.GC()
		t0 := time.Now()
		m := core.SampleStationary(c.kind, c.n, c.d, rng.New(repSeed))
		buildNs := int64(time.Since(t0))
		if rep == 0 || buildNs < er.BuildNs {
			er.BuildNs = buildNs
		}
		runtime.GC()
		trackerMin := math.Inf(1)
		var trackerNs int64
		t0 = time.Now()
		tr := expansion.NewTracker(m, rng.New(repSeed^0xe1), benchTrackerCfg(large))
		for round := 1; round <= expansionBenchWindow; round++ {
			m.AdvanceRound()
			obs := tr.Observe()
			if obs.Min < trackerMin {
				trackerMin = obs.Min
			}
			if checkAt[round] {
				trackerNs += int64(time.Since(t0)) // pause for the untimed rescan audit
				if !rescanMatches(m.Graph(), tr) {
					er.RescanEqual = false
				}
				t0 = time.Now()
			}
		}
		trackerNs += int64(time.Since(t0))
		if rep == 0 {
			er.TrackerMin = trackerMin
			er.TrackedSets = tr.NumSets()
			er.Reseeds = tr.Reseeds()
			er.TrackerPar = tr.Parallelism()
		}
		tr.Close()
		if rep == 0 || trackerNs < er.TrackerNs {
			er.TrackerNs = trackerNs
		}

		// Rescan side: identical model and advancement, a fresh witness
		// search at every observation point.
		m2 := core.SampleStationary(c.kind, c.n, c.d, rng.New(repSeed))
		estR := rng.New(repSeed ^ 0xe2)
		estimateMin := math.Inf(1)
		runtime.GC()
		t0 = time.Now()
		for round := 1; round <= expansionBenchWindow; round++ {
			m2.AdvanceRound()
			if min, _ := expansion.Estimate(m2.Graph(), estR, benchEstimateCfg(large)).Min(); min < estimateMin {
				estimateMin = min
			}
		}
		estimateNs := int64(time.Since(t0))
		if rep == 0 {
			er.EstimateMin = estimateMin
		}
		if rep == 0 || estimateNs < er.EstimateNs {
			er.EstimateNs = estimateNs
		}
	}
	er.Speedup = float64(er.EstimateNs) / float64(er.TrackerNs)
	if !er.RescanEqual {
		fmt.Fprintf(os.Stderr, "benchjson: ERROR: tracker diverged from the rescan oracle for %s n=%d d=%d\n",
			c.kind, c.n, c.d)
		os.Exit(1)
	}
	return er
}

// rescanMatches audits every tracked set against a from-scratch
// BoundarySize rescan of its member list.
func rescanMatches(g *graph.Graph, tr *expansion.Tracker) bool {
	for _, st := range tr.Sets() {
		live := 0
		for _, h := range st.Members {
			if g.IsAlive(h) {
				live++
			}
		}
		if st.Live != live || st.Boundary != expansion.BoundarySize(g, st.Members) {
			return false
		}
	}
	return true
}

// --- the multi-message traffic benchmark (-bench traffic) ---

type trafficCase struct {
	kind     core.Kind
	n, d     int
	messages int
	schedule string
	gap      int
	par      int
}

type trafficResult struct {
	Model    string `json:"model"`
	N        int    `json:"n"`
	D        int    `json:"d"`
	Schedule string `json:"schedule"`
	// Gap is the injection spacing: rounds between injections (staggered)
	// or the mean inter-arrival (poisson); 1 for burst.
	Gap      int    `json:"gap"`
	Messages int    `json:"messages"`
	Seed     uint64 `json:"seed"`
	Reps     int    `json:"reps"`
	// Par is the plane's worker-shard count (TrafficOptions.Parallelism,
	// resolved; the Auto policy picks from GOMAXPROCS and n).
	Par int `json:"par"`

	// BuildNs times core.SampleStationaryPar; TrafficNs covers the whole
	// plane run — injections, Steps until every message finished, prompt
	// retirement of delivered messages. Both are minima over reps,
	// GC-isolated.
	BuildNs   int64 `json:"build_ns"`
	TrafficNs int64 `json:"traffic_ns"`

	// Steps is the plane rounds executed; Delivered counts messages that
	// completed (Definition 3.3); DeliveredPerSec divides by the traffic
	// wall time — the headline throughput number.
	Steps           int     `json:"steps"`
	Delivered       int     `json:"delivered"`
	DeliveredPerSec float64 `json:"delivered_per_sec"`

	// CompletionHistogram counts delivered messages per completion round
	// (relative to each message's injection): index r holds the messages
	// that completed in round r. Index 0 is structurally empty (completion
	// is checked after round 1 at the earliest) and kept so indexes read
	// as rounds.
	CompletionHistogram []int `json:"completion_histogram"`

	// Memory-layout columns of the packed lane bitsets (flood.TrafficMemStats,
	// captured at the end of the first repetition's plane run). Lanes is the
	// peak simultaneous message count (burst rows: Messages; staggered and
	// poisson rows: however many overlapped); WordsPerSlot = ceil(Lanes/64).
	// InformedBytesPerLane is the plane's packed informed-state footprint
	// divided by Lanes; the Baseline column is what one graph.Marks per lane
	// costs at the same slot span (12 bytes/slot/lane) and ReductionX their
	// ratio — the ISSUE 8 acceptance number (>= 4x at M = 1024).
	Lanes                        int     `json:"lanes"`
	WordsPerSlot                 int     `json:"words_per_slot"`
	InformedBytesPerLane         float64 `json:"informed_bytes_per_lane"`
	InformedBytesPerLaneBaseline float64 `json:"informed_bytes_per_lane_baseline"`
	InformedReductionX           float64 `json:"informed_reduction_x"`

	// TrafficAllocBytes is the heap allocated during the first repetition's
	// whole plane run (runtime.MemStats.TotalAlloc delta): injections,
	// steps, retirements.
	TrafficAllocBytes uint64 `json:"traffic_alloc_bytes"`

	// OracleNs times the audit: messages of the first repetition replayed
	// as independent single-message flood.Runs on identically seeded models
	// advanced to the injection round. All messages are replayed up to
	// trafficOracleSampleCap; above it an evenly spaced sample including the
	// first and last admissions is, with OracleAudited recording the count.
	// OracleEqual confirms every audited Result was bit-for-bit equal — the
	// run aborts otherwise, so a committed record can never carry false.
	OracleNs      int64 `json:"oracle_ns"`
	OracleAudited int   `json:"oracle_audited"`
	OracleEqual   bool  `json:"oracle_equal"`
}

// trafficOracleSampleCap bounds the per-row oracle replays: rows up to
// this many messages are audited in full (every M in the sweep's word-
// boundary band), larger rows by an evenly spaced sample — the replay arm
// rebuilds the model per message, which at M = 1024 would otherwise
// dominate the row by an order of magnitude.
const trafficOracleSampleCap = 64

type trafficOutput struct {
	Benchmark  string          `json:"benchmark"`
	Scale      string          `json:"scale"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Generated  string          `json:"generated"`
	Cases      []trafficResult `json:"cases"`
}

// runTrafficBench measures the multi-message traffic plane: delivered
// messages per wall-second and the completion-round histogram across
// injection schedules, with every row audited against the per-message
// single-flood oracle. Models are built by stationary sampling (the plane
// contract is warm-up-agnostic); identical seeds rebuild identical models
// for the oracle replays.
func runTrafficBench(out, scale string, seed uint64, reps int) {
	var cases []trafficCase
	switch scale {
	case "smoke":
		cases = []trafficCase{
			{kind: core.SDGR, n: 2000, d: 21, messages: 6, schedule: "burst", gap: 1, par: 1},
			{kind: core.SDGR, n: 2000, d: 21, messages: 6, schedule: "staggered", gap: 2, par: 2},
			{kind: core.PDGR, n: 2000, d: 35, messages: 6, schedule: "poisson", gap: 2, par: 1},
			// The M sweep: burst rows at message counts crossing the packed
			// bitset's word seams (1, 1, 4 and 16 words per slot), carrying
			// the bytes-per-lane and allocation columns.
			{kind: core.SDGR, n: 2000, d: 21, messages: 16, schedule: "burst", gap: 1, par: 2},
			{kind: core.SDGR, n: 2000, d: 21, messages: 64, schedule: "burst", gap: 1, par: 2},
			{kind: core.SDGR, n: 2000, d: 21, messages: 256, schedule: "burst", gap: 1, par: 2},
			{kind: core.SDGR, n: 2000, d: 21, messages: 1024, schedule: "burst", gap: 1, par: 2},
		}
	case "large":
		cases = []trafficCase{
			{kind: core.SDGR, n: 1000000, d: 21, messages: 16, schedule: "burst", gap: 1, par: flood.Auto},
			{kind: core.SDGR, n: 1000000, d: 21, messages: 16, schedule: "staggered", gap: 2, par: flood.Auto},
			{kind: core.PDGR, n: 1000000, d: 35, messages: 16, schedule: "poisson", gap: 2, par: flood.Auto},
			// The M sweep at n = 10^5: the lane population is the variable
			// under test, so the node count steps down from the headline
			// rows to keep the sweep's wall time in the same band as one
			// n = 10^6 row while M grows 64-fold.
			{kind: core.SDGR, n: 100000, d: 21, messages: 16, schedule: "burst", gap: 1, par: flood.Auto},
			{kind: core.SDGR, n: 100000, d: 21, messages: 64, schedule: "burst", gap: 1, par: flood.Auto},
			{kind: core.SDGR, n: 100000, d: 21, messages: 256, schedule: "burst", gap: 1, par: flood.Auto},
			{kind: core.SDGR, n: 100000, d: 21, messages: 1024, schedule: "burst", gap: 1, par: flood.Auto},
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -scale %q (want smoke or large)\n", scale)
		os.Exit(2)
	}

	o := trafficOutput{
		Benchmark:  "traffic: multi-message plane vs per-message single-flood oracle",
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		o.Cases = append(o.Cases, runTrafficCase(c, seed, reps))
	}
	writeJSON(out, o, len(o.Cases))
}

// trafficSource picks the injection source the way Flood defaults do —
// the most recently born node — falling back to the newest alive node
// when churn already evicted it (possible in Poisson models). Both are
// deterministic functions of the snapshot, and the oracle replays the
// recorded handle, so any deterministic rule is exact.
func trafficSource(m core.Model) graph.Handle {
	if src := m.LastBorn(); m.Graph().IsAlive(src) {
		return src
	}
	return m.Graph().Newest()
}

// trafficInjectionRecord remembers one admitted message for the oracle.
type trafficInjectionRecord struct {
	step int
	src  graph.Handle
	res  flood.Result
}

func runTrafficCase(c trafficCase, seed uint64, reps int) trafficResult {
	fmt.Fprintf(os.Stderr, "benchjson: traffic %s n=%d d=%d %s gap=%d M=%d...\n",
		c.kind, c.n, c.d, c.schedule, c.gap, c.messages)
	tr := trafficResult{
		Model: c.kind.String(), N: c.n, D: c.d,
		Schedule: c.schedule, Gap: c.gap, Messages: c.messages,
		Seed: seed, Reps: reps,
	}
	opts := flood.TrafficOptions{Parallelism: c.par}
	if c.par < 0 {
		tr.Par = flood.AutoParallelism(c.n)
	} else {
		tr.Par = c.par
	}

	var first []trafficInjectionRecord
	for rep := 0; rep < reps; rep++ {
		repSeed := seed + uint64(rep)
		steps, err := flood.TrafficSchedule(c.schedule, c.messages, c.gap, repSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}

		runtime.GC()
		t0 := time.Now()
		m := core.SampleStationaryPar(c.kind, c.n, c.d, rng.New(repSeed), tr.Par)
		buildNs := int64(time.Since(t0))
		if rep == 0 || buildNs < tr.BuildNs {
			tr.BuildNs = buildNs
		}

		runtime.GC()
		var ms0 runtime.MemStats
		if rep == 0 {
			runtime.ReadMemStats(&ms0)
		}
		t0 = time.Now()
		plane := flood.NewTraffic(m, opts)
		recs := make([]trafficInjectionRecord, 0, len(steps))
		ids := make([]flood.MessageID, 0, len(steps))
		next := 0
		for next < len(steps) || plane.Live() > 0 {
			for next < len(steps) && steps[next] == plane.Steps() {
				src := trafficSource(m)
				ids = append(ids, plane.Inject(src))
				recs = append(recs, trafficInjectionRecord{step: plane.Steps(), src: src})
				next++
			}
			plane.Step()
			for i, id := range ids {
				if plane.Status(id) == flood.MessageDone {
					recs[i].res = plane.Result(id)
					plane.Retire(id)
				}
			}
		}
		planeSteps := plane.Steps()
		mem := plane.MemStats()
		plane.Close()
		trafficNs := int64(time.Since(t0))
		if rep == 0 || trafficNs < tr.TrafficNs {
			tr.TrafficNs = trafficNs
		}
		if rep == 0 {
			var ms1 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			tr.TrafficAllocBytes = ms1.TotalAlloc - ms0.TotalAlloc
			tr.Steps = planeSteps
			first = recs
			tr.Lanes = mem.Lanes
			tr.WordsPerSlot = mem.WordsPerSlot
			if mem.Lanes > 0 {
				tr.InformedBytesPerLane = float64(mem.PackedInformedBytes) / float64(mem.Lanes)
				tr.InformedBytesPerLaneBaseline = float64(mem.MarksBaselineBytes) / float64(mem.Lanes)
				if tr.InformedBytesPerLane > 0 {
					tr.InformedReductionX = tr.InformedBytesPerLaneBaseline / tr.InformedBytesPerLane
				}
			}
		}
	}

	for _, rec := range first {
		if rec.res.Completed {
			tr.Delivered++
			for len(tr.CompletionHistogram) <= rec.res.CompletionRound {
				tr.CompletionHistogram = append(tr.CompletionHistogram, 0)
			}
			tr.CompletionHistogram[rec.res.CompletionRound]++
		}
	}
	tr.DeliveredPerSec = float64(tr.Delivered) / (float64(tr.TrafficNs) / 1e9)

	// The oracle audit: messages of the first repetition replayed as
	// independent single-message runs on identically seeded models — all of
	// them up to trafficOracleSampleCap, an evenly spaced sample (first and
	// last admissions always included) above it.
	audit := make([]int, 0, trafficOracleSampleCap)
	if len(first) <= trafficOracleSampleCap {
		for i := range first {
			audit = append(audit, i)
		}
	} else {
		prev := -1
		for k := 0; k < trafficOracleSampleCap; k++ {
			i := k * (len(first) - 1) / (trafficOracleSampleCap - 1)
			if i != prev {
				audit = append(audit, i)
				prev = i
			}
		}
	}
	t0 := time.Now()
	tr.OracleEqual = true
	for _, i := range audit {
		rec := first[i]
		m := core.SampleStationaryPar(c.kind, c.n, c.d, rng.New(seed), tr.Par)
		for s := 0; s < rec.step; s++ {
			m.AdvanceRound()
		}
		want := flood.Run(m, flood.Options{Source: rec.src, Parallelism: tr.Par})
		if !reflect.DeepEqual(rec.res, want) {
			tr.OracleEqual = false
			fmt.Fprintf(os.Stderr, "benchjson: ERROR: traffic message %d diverged from its single-flood replay for %s n=%d %s M=%d\n",
				i, c.kind, c.n, c.schedule, c.messages)
			os.Exit(1)
		}
	}
	tr.OracleAudited = len(audit)
	tr.OracleNs = int64(time.Since(t0))
	return tr
}
