// Command churnd is the live control-plane daemon: it hosts one
// externally driven churn network — seeded from a stationary snapshot of
// a paper model, up to 10⁶ simulated nodes — behind the single-writer
// event loop of internal/serve, and serves the HTTP/JSON control plane
// (join/leave/sim-crash/inject/step, node-info/status/expansion/
// snapshot/healthz) plus an optional UDP fast path for single-node
// informed/alive probes.
//
// Usage:
//
//	churnd -model PDGR -n 100000 -d 20 -seed 1 -http 127.0.0.1:8080
//	churnd -model SDGR -n 1000 -d 3 -http 127.0.0.1:8080 -udp 127.0.0.1:8081 -tick 50ms
//
// With -tick 0 (the default) the network advances only on POST /step —
// the fully deterministic mode: the served state is a pure function of
// the seed and the command order.
//
// Driver mode exercises a running daemon end to end and exits 0 only if
// the scenario converges and every error shape is well-formed:
//
//	churnd -drive -addr http://127.0.0.1:8080 [-udp 127.0.0.1:8081]
//
// It is the payload of the churnd-smoke CI job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dyngraph/churnnet/internal/core"
	"github.com/dyngraph/churnnet/internal/serve"
	"github.com/dyngraph/churnnet/internal/serve/driver"
)

func main() {
	var (
		modelName = flag.String("model", "PDGR", "seed-snapshot model: SDG, SDGR, PDG or PDGR")
		n         = flag.Int("n", 10000, "seed population (0 starts an empty network)")
		d         = flag.Int("d", 20, "out-degree: requests per node")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP control-plane listen address")
		udpAddr   = flag.String("udp", "", "UDP probe listen address (empty = disabled)")
		tick      = flag.Duration("tick", 0, "autonomous round cadence (0 = advance only on POST /step)")
		queue     = flag.Int("queue", 1024, "command queue depth (full queue answers 429)")
		pubEvery  = flag.Duration("publish-interval", 0, "minimum interval between snapshot publishes (0 = after every command batch)")
		observe   = flag.Int("observe-every", 0, "record an expansion observation every k rounds (0 = tracker off)")
		par       = flag.Int("par", 0, "worker shards for seeding and the traffic plane (0 = serial, -1 = auto)")
		maxRounds = flag.Int("maxrounds", 0, "per-message round cap (0 = 40·log2(n)+60)")

		drive    = flag.Bool("drive", false, "driver mode: exercise the daemon at -addr and exit")
		addr     = flag.String("addr", "", "driver mode: base URL of the daemon (e.g. http://127.0.0.1:8080)")
		joins    = flag.Int("drive-joins", 32, "driver mode: nodes to join")
		departs  = flag.Int("drive-departures", 0, "driver mode: nodes to depart (0 = joins/4)")
		driveMax = flag.Int("drive-maxrounds", 400, "driver mode: step budget per broadcast")
	)
	flag.Parse()

	if *drive {
		if err := validateDriveFlags(*addr, *joins, *driveMax); err != nil {
			fmt.Fprintln(os.Stderr, "churnd:", err)
			os.Exit(2)
		}
		rep, err := driver.Run(*addr, driver.Options{
			Joins:      *joins,
			Departures: *departs,
			MaxRounds:  *driveMax,
			UDPAddr:    *udpAddr,
			Logf:       log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "churnd: drive failed:", err)
			os.Exit(1)
		}
		fmt.Printf("drive ok: joined=%d left=%d crashed=%d broadcasts=%d rounds=%v alive=%d\n",
			rep.Joined, rep.Left, rep.Crashed, rep.Broadcasts, rep.Rounds, rep.AliveFinal)
		return
	}

	kind, err := parseKind(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnd:", err)
		os.Exit(2)
	}
	if err := validateServeFlags(*n, *d, *queue, *observe, *maxRounds, *tick, *pubEvery); err != nil {
		fmt.Fprintln(os.Stderr, "churnd:", err)
		os.Exit(2)
	}

	log.Printf("churnd: seeding %s n=%d d=%d (seed %d)...", kind, *n, *d, *seed)
	start := time.Now()
	s := serve.New(serve.Config{
		Kind:               kind,
		N:                  *n,
		D:                  *d,
		Seed:               *seed,
		Parallelism:        *par,
		QueueDepth:         *queue,
		Tick:               *tick,
		MinPublishInterval: *pubEvery,
		ObserveEvery:       *observe,
		MaxRounds:          *maxRounds,
	})
	s.Start()
	log.Printf("churnd: seeded %d alive nodes in %v", s.Current().Alive, time.Since(start).Round(time.Millisecond))

	httpLn, lnErr := net.Listen("tcp", *httpAddr)
	if lnErr != nil {
		fmt.Fprintln(os.Stderr, "churnd:", lnErr)
		os.Exit(1)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() {
		if err := hs.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("churnd: http: %v", err)
		}
	}()
	log.Printf("churnd: control plane on http://%s", httpLn.Addr())

	var udpConn net.PacketConn
	if *udpAddr != "" {
		conn, udpErr := net.ListenPacket("udp", *udpAddr)
		if udpErr != nil {
			fmt.Fprintln(os.Stderr, "churnd:", udpErr)
			os.Exit(1)
		}
		udpConn = conn
		go func() {
			if err := s.ServeUDP(udpConn); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("churnd: udp: %v", err)
			}
		}()
		log.Printf("churnd: probe fast path on udp://%s", udpConn.LocalAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("churnd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	if udpConn != nil {
		_ = udpConn.Close()
	}
	s.Stop()
}

func parseKind(name string) (core.Kind, error) {
	switch strings.ToUpper(name) {
	case "SDG":
		return core.SDG, nil
	case "SDGR":
		return core.SDGR, nil
	case "PDG":
		return core.PDG, nil
	case "PDGR":
		return core.PDGR, nil
	}
	return 0, fmt.Errorf("unknown model %q (want SDG, SDGR, PDG or PDGR)", name)
}

func validateServeFlags(n, d, queue, observe, maxRounds int, tick, pubEvery time.Duration) error {
	switch {
	case n < 0 || n > 1_000_000:
		return errors.New("-n must be in 0..1000000")
	case d < 1:
		return errors.New("-d must be at least 1")
	case queue < 1:
		return errors.New("-queue must be at least 1")
	case observe < 0:
		return errors.New("-observe-every must be non-negative")
	case maxRounds < 0:
		return errors.New("-maxrounds must be non-negative")
	case tick < 0:
		return errors.New("-tick must be non-negative")
	case pubEvery < 0:
		return errors.New("-publish-interval must be non-negative")
	}
	return nil
}

func validateDriveFlags(addr string, joins, maxRounds int) error {
	switch {
	case addr == "":
		return errors.New("-drive requires -addr (e.g. -addr http://127.0.0.1:8080)")
	case !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://"):
		return fmt.Errorf("-addr %q must be an http(s) base URL", addr)
	case joins < 1:
		return errors.New("-drive-joins must be at least 1")
	case maxRounds < 1:
		return errors.New("-drive-maxrounds must be at least 1")
	}
	return nil
}
