package main

import (
	"testing"
	"time"
)

// TestParseKind pins the model-name surface of the daemon.
func TestParseKind(t *testing.T) {
	for _, name := range []string{"SDG", "sdgr", "PDG", "pdgr"} {
		if _, err := parseKind(name); err != nil {
			t.Errorf("parseKind(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "STATIC", "LIVE", "pd"} {
		if _, err := parseKind(name); err == nil {
			t.Errorf("parseKind(%q) accepted an unknown model", name)
		}
	}
}

// TestValidateServeFlags pins the flag guard rails (bad values make main
// exit with the conventional usage status 2).
func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name                       string
		n, d, queue, observe, maxr int
		tick, pubEvery             time.Duration
		wantErr                    bool
	}{
		{"defaults", 10000, 20, 1024, 0, 0, 0, 0, false},
		{"empty start", 0, 3, 1, 4, 100, time.Millisecond, time.Millisecond, false},
		{"million nodes", 1_000_000, 20, 1024, 0, 0, 0, 0, false},
		{"negative n", -1, 20, 1024, 0, 0, 0, 0, true},
		{"too many nodes", 1_000_001, 20, 1024, 0, 0, 0, 0, true},
		{"zero d", 100, 0, 1024, 0, 0, 0, 0, true},
		{"zero queue", 100, 3, 0, 0, 0, 0, 0, true},
		{"negative observe", 100, 3, 8, -1, 0, 0, 0, true},
		{"negative maxrounds", 100, 3, 8, 0, -1, 0, 0, true},
		{"negative tick", 100, 3, 8, 0, 0, -time.Second, 0, true},
		{"negative publish interval", 100, 3, 8, 0, 0, 0, -time.Second, true},
	}
	for _, c := range cases {
		err := validateServeFlags(c.n, c.d, c.queue, c.observe, c.maxr, c.tick, c.pubEvery)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateServeFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestValidateDriveFlags pins driver-mode flag validation.
func TestValidateDriveFlags(t *testing.T) {
	cases := []struct {
		name    string
		addr    string
		joins   int
		maxr    int
		wantErr bool
	}{
		{"ok", "http://127.0.0.1:8080", 32, 400, false},
		{"https ok", "https://example.test", 1, 1, false},
		{"missing addr", "", 32, 400, true},
		{"bare host", "127.0.0.1:8080", 32, 400, true},
		{"zero joins", "http://x", 0, 400, true},
		{"zero budget", "http://x", 32, 0, true},
	}
	for _, c := range cases {
		err := validateDriveFlags(c.addr, c.joins, c.maxr)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateDriveFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
