package main

import "testing"

// TestValidateFlags pins the flag guard rails tablegen previously lacked:
// a negative -par was silently treated as all-cores; now both parallelism
// flags are validated up front (main exits with status 2 on error).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name          string
		par, floodPar int
		wantErr       bool
	}{
		{"defaults", 0, 1, false},
		{"serial", 1, 1, false},
		{"both parallel", 4, 8, false},
		{"negative par", -1, 1, true},
		{"auto floodpar", 0, 0, false},
		{"negative floodpar", 0, -2, true},
	}
	for _, c := range cases {
		err := validateFlags(c.par, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
