// Command tablegen regenerates the paper's tables and figures (the
// reproduction suite T1, F1..F24) and writes them as Markdown, CSV or
// aligned text. Its Markdown output at -scale standard is the source of
// EXPERIMENTS.md.
//
// Trials run on all cores by default; results are bit-identical at any
// -par setting, including -par 1.
//
// Usage:
//
//	tablegen                       # full suite, markdown, stdout
//	tablegen -scale paper -o EXPERIMENTS.md
//	tablegen -id F10 -format text  # one experiment, terminal table
//	tablegen -par 1 -progress      # serial run with live trial ticks
//	tablegen -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	var (
		scaleName = flag.String("scale", "standard", "smoke, standard or paper")
		seed      = flag.Uint64("seed", 1, "deterministic root seed")
		id        = flag.String("id", "", "run a single experiment (e.g. F10); empty = full suite")
		format    = flag.String("format", "markdown", "markdown, csv or text")
		out       = flag.String("o", "", "output file (default stdout)")
		list      = flag.Bool("list", false, "list the experiment suite and exit")
		par       = flag.Int("par", 0, "trial parallelism (0 = all cores, 1 = serial; output is identical either way)")
		progress  = flag.Bool("progress", false, "report per-trial progress on stderr")
		fastWarm  = flag.Bool("fastwarmup", false, "build trial models by direct stationary sampling instead of simulated warm-up (same distribution, different draw than the committed record)")
		floodPar  = flag.Int("floodpar", 1, "worker shards inside each flooding run, -fastwarmup snapshot fill and -trackexp tracker; 0 picks W from GOMAXPROCS and n; output is identical at any value")
		trackExp  = flag.Bool("trackexp", false, "measure the expansion experiments (F3/F4/F8/F9) with the incremental event-driven tracker over a churn window instead of per-snapshot witness searches (different draw than the committed record)")
	)
	flag.Parse()

	if *list {
		for _, e := range churnnet.Experiments() {
			fmt.Printf("%-4s [%s] %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}

	if err := validateFlags(*par, *floodPar); err != nil {
		fatal(err)
	}
	scale, err := churnnet.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *floodPar == 0 {
		*floodPar = churnnet.FloodAuto
	}
	cfg := churnnet.ExperimentConfig{Scale: scale, Seed: *seed, Parallelism: *par,
		FastWarmUp: *fastWarm, FloodParallelism: *floodPar,
		TrackExpansion: *trackExp, ExpansionParallelism: *floodPar}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	if *id != "" {
		if *progress {
			cfg.Progress = progressLine(*id)
		}
		tab, err := churnnet.RunExperimentWith(*id, cfg)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv":
			fmt.Fprint(w, tab.CSV())
		case "text":
			fmt.Fprint(w, tab.Text())
		default:
			fmt.Fprint(w, tab.Markdown())
		}
		fmt.Fprintf(os.Stderr, "tablegen: %s done in %v\n", *id, time.Since(start).Round(time.Millisecond))
		return
	}

	rep := churnnet.NewExperimentReport(cfg)
	for _, e := range churnnet.Experiments() {
		ecfg := cfg
		if *progress {
			ecfg.Progress = progressLine(e.ID)
		}
		expStart := time.Now()
		tab, err := churnnet.RunExperimentWith(e.ID, ecfg)
		if err != nil {
			fatal(err)
		}
		rep.Add(tab)
		fmt.Fprintf(os.Stderr, "tablegen: %-4s done in %v\n", e.ID,
			time.Since(expStart).Round(time.Millisecond))
	}
	switch *format {
	case "csv":
		for _, tab := range rep.Tables {
			fmt.Fprintf(w, "# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		}
	case "text":
		for _, tab := range rep.Tables {
			fmt.Fprintln(w, tab.Text())
		}
	default:
		fmt.Fprint(w, rep.Markdown())
		fmt.Fprintf(w, notes, *seed)
	}
	fmt.Fprintf(os.Stderr, "tablegen: suite done in %v\n", time.Since(start).Round(time.Millisecond))
}

// progressLine returns a Progress callback that rewrites one stderr line
// with the experiment's completed/total trial count.
func progressLine(id string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rtablegen: %-4s %d/%d trials", id, done, total)
		if done == total {
			// Blank the line so the following "done in ..." line does
			// not inherit a stale tail.
			fmt.Fprintf(os.Stderr, "\r%*s\r", 40, "")
		}
	}
}

// notes is the reproduction appendix emitted after the full markdown suite.
const notes = `---

## Reproduction notes

**Regenerating this file.** Every table above is produced by

` + "```sh\ngo run ./cmd/tablegen -scale standard -seed %d -o EXPERIMENTS.md\n```" + `

Single experiments: ` + "`go run ./cmd/tablegen -id F10 -format text`" + `. The
` + "`-scale paper`" + ` flag runs the largest parameterizations; ` + "`-scale smoke`" + ` is
the sub-second version exercised by ` + "`go test`" + ` and ` + "`go test -bench=.`" + `
(one benchmark per table, see ` + "`bench_test.go`" + `).

**How to read the numbers.**

- *w.h.p. claims* are reproduced as frequencies over independent seeded
  trials; "pass" columns check the claimed inequality on the measured
  values.
- *Expansion values* are witness-search results: upper bounds on the true
  minimum ratio h_out (computing it exactly is NP-hard). The suite
  therefore reproduces the paper's *shape* — zero-ratio witnesses exist
  exactly where the paper proves isolated nodes, and no witness below 0.1
  is ever found where the paper proves expansion. The spectral-gap column
  (F8/F9) is an independent witness-free cross-check, and expansion.Exact
  validates the search against exhaustive enumeration on small graphs in
  the test suite.
- *Flooding times* are in message-transmission units (one streaming round,
  one unit of Poisson time). The paper's lower-bound constants (e.g.
  Ω(e^(−d²)) in F5) are loose by design; measured rates dominate them
  wherever the bound is resolvable at the trial count.
- The paper proves asymptotic statements for sufficiently large d and n;
  the tables show the same inequalities already holding at the simulated
  sizes, with the theory constants (0.1 expansion, e^(−2d)/6 isolation,
  d/20 cascade growth) annotated inline.

**Flooding engine and the large-n record.** Every flooding number above
runs on the incremental cut-set engine (see DESIGN.md, "The cut-set
flooding engine"), which is pinned bit-for-bit against the definition-level
reference implementation. The committed BENCH_flood.json (regenerated by
` + "`go run ./cmd/benchjson -scale large`" + `) records the engine at sizes the
rescan implementation could not sustain: an SDGR n = 10⁶, d = 21 broadcast
completes in seconds, and on the 100-round measurement window used by
F6/F7/F19/F23 the engine beats the reference ≈ 55–64× at n = 10⁵–10⁶
(e.g. SDGR n = 10⁵: 0.32 s vs 20.7 s; n = 10⁶: 6.5 s vs 358 s, single
core).

**Warm-up.** Every model above is warmed by simulating the paper's
transient (2n rounds / 7·n·ln n jump events), which keeps this record
bit-reproducible. The ` + "`-fastwarmup`" + ` flag instead samples the stationary
snapshot directly (O(n·d); see DESIGN.md, "Stationary snapshot
sampling") — statistically equivalent, a different deterministic draw,
and ≥ 20× faster at n = 10⁶ per the committed BENCH_warmup.json.

**Sharded flooding.** The ` + "`-floodpar W`" + ` flag shards the cut engine
inside each single broadcast (and each ` + "`-fastwarmup`" + ` snapshot fill)
across W per-slot-range workers; ` + "`-floodpar 0`" + ` picks W automatically
from GOMAXPROCS and n. Output is bit-identical at every setting — the
committed record keeps the default (serial), and the sweep lives in
BENCH_floodpar.json (regenerated by
` + "`go run ./cmd/benchjson -bench floodpar -scale large -reps 1`" + `; see
DESIGN.md, "Sharded cut execution"). Every row of that record
re-verifies Result equality between the serial and sharded engines, at
n up to 10⁷.

**Incremental expansion tracking.** Every expansion number above comes
from per-snapshot witness searches (expansion.Estimate). The ` + "`-trackexp`" + `
flag instead measures F3/F4/F8/F9 with the incremental event-driven
tracker (expansion.Tracker): the witness families ride the churn event
stream across a short window and the tables report minima over time — a
strictly stronger reading of the paper's "every snapshot expands"
claims, bit-for-bit pinned against fresh boundary rescans and ≥ 10×
cheaper per observation at n = 10⁶ (see BENCH_expansion.json and
DESIGN.md, "Incremental expansion tracking"). The committed record keeps
the default (per-snapshot search), so its numbers are unchanged.

**Bounded degree at large n (the F22 row the suite cannot reach).** The
F22 table above stops at suite-sized n; the committed
BENCH_edgerate.json (` + "`go run ./cmd/benchjson -bench edgerate -scale large -reps 1`" + `,
simulated warm-up — the policy variants have no
closed-form stationary law) extends the bounded-degree comparison to
n = 10⁶ through the cut engine's own event feed (PDGR dynamics, d = 20,
inbound cap 2d = 40):

| policy | n | OnEdge events / time unit | regen share | max regen burst | mean burst | flood on engine | completed |
|---|---|---|---|---|---|---|---|
| uniform | 100 000 | 40.1 | 51.8%% | 57 | 20.2 | 0.53 s | round 5 |
| inbound cap 2d | 100 000 | 40.9 | 50.7%% | **40** (= cap) | 20.2 | 0.61 s | round 5 |
| uniform | 1 000 000 | 40.5 | 49.0%% | 52 | 19.9 | 6.1 s | round 5 |
| inbound cap 2d | 1 000 000 | 41.3 | 50.2%% | **40** (= cap) | 20.2 | 5.0 s | round 5 |

The OnEdge rate the engine absorbs is Θ(d) per transmission time unit —
*independent of n* — under both policies, so the bounded-degree variants
ride the incremental engine unchanged at any scale; what the cap changes
is the worst-case per-death regeneration burst (the dying node's live
in-degree), pinned to the cap instead of growing as Θ(log n / log log n).
Flooding on the capped network stays O(log n)-round complete, measured
on the engine at n = 10⁶ — the Section 5 conjecture's behavior at three
orders of magnitude beyond the F22 table.

**Substitutions.** None. The paper is self-contained mathematics; every
model, process and baseline is implemented directly (see DESIGN.md). The
extension experiments F21–F24 test the paper's informal Section 1.1/5
claims (overlay realism, bounded-degree dynamics, giant-component
structure) rather than formal theorems.
`

// validateFlags rejects invalid flag values before any work starts; the
// returned error names the offending flag. Kept separate from main so the
// flag paths are regression-testable (see main_test.go).
func validateFlags(par, floodPar int) error {
	switch {
	case par < 0:
		return errors.New("-par must be >= 0 (0 = all cores)")
	case floodPar < 0:
		return errors.New("-floodpar must be >= 0 (0 = auto from GOMAXPROCS and n)")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tablegen:", err)
	os.Exit(2)
}
