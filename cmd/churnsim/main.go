// Command churnsim builds one of the paper's dynamic network models, runs
// it, and prints snapshot statistics: population, edges, degree
// distribution, isolated nodes and age demographics.
//
// With -trials k > 1 it builds k independently seeded replicas of the
// model on a parallel worker pool (capped by -par) and prints per-replica
// plus aggregate snapshot statistics — a quick Monte-Carlo sweep without
// the full experiment suite.
//
// Usage:
//
//	churnsim -model PDGR -n 10000 -d 35 -rounds 100 -seed 1
//	churnsim -model SDG -n 5000 -d 3 -trials 8 -par 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	churnnet "github.com/dyngraph/churnnet"
	"github.com/dyngraph/churnnet/internal/runner"
)

func main() {
	var (
		modelName = flag.String("model", "PDGR", "model: SDG, SDGR, PDG or PDGR")
		n         = flag.Int("n", 10000, "size parameter (steady-state / expected population)")
		d         = flag.Int("d", 35, "out-degree: requests per node")
		rounds    = flag.Int("rounds", 0, "extra rounds to run after warm-up")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		expand    = flag.Bool("expansion", false, "also estimate vertex expansion (slower)")
		traceFile = flag.String("trace", "", "write a per-round CSV time series to this file")
		trials    = flag.Int("trials", 1, "independent replicas to build (seeds seed, seed+1, ...)")
		par       = flag.Int("par", 0, "worker-pool size for -trials (0 = all cores)")
		fastWarm  = flag.Bool("fastwarmup", false, "sample the stationary snapshot directly instead of simulating warm-up")
		floodPar  = flag.Int("floodpar", 1, "worker shards inside each -fastwarmup snapshot fill and -trackexp tracker; 0 picks W from GOMAXPROCS and n; results are identical at any value")
		trackExp  = flag.Bool("trackexp", false, "track expansion witnesses incrementally over the -rounds window (time-resolved h_out upper bounds)")
	)
	flag.Parse()

	kind, err := parseKind(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(2)
	}
	if err := validateFlags(*trials, *n, *d, *rounds, *par, *floodPar); err != nil {
		usageError(err.Error())
	}
	if *floodPar == 0 {
		*floodPar = churnnet.FloodAuto
	}

	if *trials > 1 {
		if *expand || *traceFile != "" || *trackExp {
			fmt.Fprintln(os.Stderr, "churnsim: -expansion, -trace and -trackexp apply to single-model runs; drop them or use -trials 1")
			os.Exit(2)
		}
		runTrials(kind, *n, *d, *rounds, *seed, *trials, *par, *fastWarm, *floodPar)
		return
	}
	if *trackExp && *traceFile != "" {
		fmt.Fprintln(os.Stderr, "churnsim: -trackexp and -trace both drive the round loop; pick one")
		os.Exit(2)
	}

	fmt.Printf("building %s with n=%d, d=%d (seed %d)...\n", kind, *n, *d, *seed)
	m := churnnet.NewReadyModelPar(kind, *n, *d, *seed, *fastWarm, *floodPar)
	if *trackExp {
		runTracked(m, *rounds, *seed, *floodPar)
	} else if *traceFile != "" {
		rec := churnnet.NewTraceRecorder()
		rec.Run(m, *rounds)
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "churnsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "churnsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace of %d rounds written to %s\n", *rounds, *traceFile)
	} else {
		for i := 0; i < *rounds; i++ {
			m.AdvanceRound()
		}
	}

	g := m.Graph()
	ds := churnnet.Degrees(g)
	fmt.Printf("\nsnapshot at t=%.1f\n", m.Now())
	fmt.Printf("  population        %d\n", g.NumAlive())
	fmt.Printf("  live edges        %d\n", g.NumEdgesLive())
	fmt.Printf("  mean degree       %.2f (out %.2f, in %.2f)\n", ds.Mean, ds.MeanOut, ds.MeanIn)
	fmt.Printf("  min/max degree    %d / %d\n", ds.Min, ds.Max)
	fmt.Printf("  isolated nodes    %d (%.3f%%)\n", ds.Isolated,
		100*churnnet.IsolatedFraction(g))

	profile := churnnet.AgeProfile(g, m.Now(), float64(*n)/4)
	fmt.Printf("  age slices (%d-wide): ", *n/4)
	for i, c := range profile {
		if i > 7 {
			fmt.Printf("…")
			break
		}
		fmt.Printf("%d ", c)
	}
	fmt.Println()

	if *expand {
		fmt.Println("\nestimating vertex expansion (witness search)...")
		p := churnnet.EstimateExpansion(g, *seed+1, churnnet.ExpansionConfig{})
		min, w := p.Min()
		fmt.Printf("  min ratio found   %.3f (witness size %d, boundary %d)\n",
			min, w.Size, w.Boundary)
		for _, band := range [][2]int{{1, 10}, {11, g.NumAlive() / 10}, {g.NumAlive()/10 + 1, g.NumAlive() / 2}} {
			if band[1] < band[0] {
				continue
			}
			v, bw := p.MinInRange(band[0], band[1])
			fmt.Printf("  sizes %6d..%-6d  min %.3f (witness %d)\n", band[0], band[1], v, bw.Size)
		}
	}
}

// runTracked attaches the incremental expansion tracker and prints the
// time-resolved h_out trajectory (minima over tracked witness sets) across
// the round window — the per-snapshot witness search of -expansion, made
// affordable per round by riding the churn event stream.
func runTracked(m churnnet.Model, rounds int, seed uint64, floodPar int) {
	if rounds <= 0 {
		rounds = 50
		fmt.Printf("(-trackexp without -rounds: defaulting to %d rounds)\n", rounds)
	}
	every := rounds / 10
	if every < 1 {
		every = 1
	}
	tr := churnnet.TrackExpansion(m, seed+2, churnnet.ExpansionTrackerConfig{
		ReseedEvery: 5,
		Parallelism: floodPar,
	})
	defer tr.Close()
	fmt.Printf("\ntracking %d expansion witness sets over %d rounds (observing every %d):\n",
		tr.NumSets(), rounds, every)
	fmt.Printf("  %8s %10s %12s %14s\n", "time", "alive", "min ratio", "witness size")
	for round := 1; round <= rounds; round++ {
		m.AdvanceRound()
		if round%every == 0 || round == rounds {
			obs := tr.Observe()
			fmt.Printf("  %8.1f %10d %12.4f %14d\n", obs.Time, obs.N, obs.Min, obs.MinWitness.Size)
		}
	}
}

// runTrials builds `trials` independently seeded replicas on the worker
// pool and prints per-replica and aggregate snapshot statistics.
func runTrials(kind churnnet.ModelKind, n, d, rounds int, seed uint64, trials, par int, fastWarm bool, floodPar int) {
	fmt.Printf("building %d × %s with n=%d, d=%d (seeds %d..%d, parallelism %d)...\n",
		trials, kind, n, d, seed, seed+uint64(trials)-1, par)

	type snapshot struct {
		pop, edges, isolated int
		meanDeg              float64
	}
	snaps := runner.MapIndexed(runner.Config{Workers: par}, trials, func(i int) snapshot {
		m := churnnet.NewReadyModelPar(kind, n, d, seed+uint64(i), fastWarm, floodPar)
		for r := 0; r < rounds; r++ {
			m.AdvanceRound()
		}
		g := m.Graph()
		ds := churnnet.Degrees(g)
		return snapshot{
			pop:      g.NumAlive(),
			edges:    g.NumEdgesLive(),
			isolated: ds.Isolated,
			meanDeg:  ds.Mean,
		}
	})

	fmt.Printf("\n  %-6s %10s %12s %12s %10s\n", "trial", "population", "live edges", "mean degree", "isolated")
	var popSum, edgeSum, isoSum, degSum float64
	for i, s := range snaps {
		fmt.Printf("  %-6d %10d %12d %12.2f %10d\n", i, s.pop, s.edges, s.meanDeg, s.isolated)
		popSum += float64(s.pop)
		edgeSum += float64(s.edges)
		isoSum += float64(s.isolated)
		degSum += s.meanDeg
	}
	k := float64(trials)
	fmt.Printf("  %-6s %10.1f %12.1f %12.2f %10.1f\n", "mean", popSum/k, edgeSum/k, degSum/k, isoSum/k)
}

// validateFlags rejects invalid flag values before any work starts; the
// returned error names the offending flag. Kept separate from main so the
// flag paths are regression-testable (see main_test.go).
func validateFlags(trials, n, d, rounds, par, floodPar int) error {
	switch {
	case trials < 1:
		return errors.New("-trials must be >= 1")
	case n < 1:
		return errors.New("-n must be >= 1")
	case d < 0:
		return errors.New("-d must be >= 0")
	case rounds < 0:
		return errors.New("-rounds must be >= 0")
	case par < 0:
		return errors.New("-par must be >= 0 (0 = all cores)")
	case floodPar < 0:
		return errors.New("-floodpar must be >= 0 (0 = auto from GOMAXPROCS and n)")
	}
	return nil
}

// usageError reports a bad flag value and exits with the conventional
// usage status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "churnsim:", msg)
	flag.Usage()
	os.Exit(2)
}

func parseKind(s string) (churnnet.ModelKind, error) {
	for _, k := range churnnet.ModelKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q (want SDG, SDGR, PDG or PDGR)", s)
}
