package main

import (
	"testing"

	churnnet "github.com/dyngraph/churnnet"
)

// TestValidateFlags pins the flag guard rails: invalid values are rejected
// (main exits with the conventional usage status 2), -par keeps its
// documented 0 = all-cores meaning, and -floodpar accepts 0 as the
// automatic GOMAXPROCS-and-n policy but rejects negatives.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                string
		trials, n, d, rounds, par, floodPar int
		wantErr                             bool
	}{
		{"defaults", 1, 10000, 35, 0, 0, 1, false},
		{"trials on pool", 8, 5000, 3, 10, 4, 1, false},
		{"sharded wiring", 1, 100000, 35, 0, 0, 8, false},
		{"auto floodpar", 1, 100000, 35, 0, 0, 0, false},
		{"zero trials", 0, 10000, 35, 0, 0, 1, true},
		{"zero n", 1, 0, 35, 0, 0, 1, true},
		{"negative d", 1, 10000, -1, 0, 0, 1, true},
		{"negative rounds", 1, 10000, 35, -5, 0, 1, true},
		{"negative par", 1, 10000, 35, 0, -1, 1, true},
		{"negative floodpar", 1, 10000, 35, 0, 0, -2, true},
	}
	for _, c := range cases {
		err := validateFlags(c.trials, c.n, c.d, c.rounds, c.par, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestRunTracked smoke-tests the -trackexp path end to end: a small model
// tracked over a short window prints a trajectory without panicking, at
// serial and auto tracker parallelism, and leaves the model's hook slot
// clean for later observers.
func TestRunTracked(t *testing.T) {
	for _, floodPar := range []int{1, churnnet.FloodAuto} {
		m := churnnet.NewWarmModel(churnnet.SDGR, 200, 8, 3)
		runTracked(m, 12, 3, floodPar)
		if h := m.Hooks(); h.OnEdge != nil || h.OnDeath != nil {
			t.Fatalf("runTracked left tracker hooks installed (floodPar %d)", floodPar)
		}
	}
}
