package main

import "testing"

// TestValidateFlags pins the flag guard rails: invalid values are rejected
// (main exits with the conventional usage status 2), -par keeps its
// documented 0 = all-cores meaning, and -floodpar requires an explicit
// positive shard count.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                string
		trials, n, d, rounds, par, floodPar int
		wantErr                             bool
	}{
		{"defaults", 1, 10000, 35, 0, 0, 1, false},
		{"trials on pool", 8, 5000, 3, 10, 4, 1, false},
		{"sharded wiring", 1, 100000, 35, 0, 0, 8, false},
		{"zero trials", 0, 10000, 35, 0, 0, 1, true},
		{"zero n", 1, 0, 35, 0, 0, 1, true},
		{"negative d", 1, 10000, -1, 0, 0, 1, true},
		{"negative rounds", 1, 10000, 35, -5, 0, 1, true},
		{"negative par", 1, 10000, 35, 0, -1, 1, true},
		{"zero floodpar", 1, 10000, 35, 0, 0, 0, true},
		{"negative floodpar", 1, 10000, 35, 0, 0, -2, true},
	}
	for _, c := range cases {
		err := validateFlags(c.trials, c.n, c.d, c.rounds, c.par, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
